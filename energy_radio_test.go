package cbtc

import (
	"bytes"
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"cbtc/internal/codec"
	"cbtc/internal/graph"
	"cbtc/internal/radio"
	"cbtc/internal/workload"
)

// radioStacks are the optimization stacks the PR 10 radio redesign is
// gated on — the same coverage axes as checkpointStacks, expressed as
// suffixes so each can be paired with either radio surface (legacy
// WithMaxRadius/WithPathLoss or the redesigned WithRadioModel).
var radioStacks = []struct {
	name string
	opts []Option
}{
	{"basic", nil},
	{"shrink-back", []Option{WithShrinkBack()}},
	{"all-ops", []Option{WithAllOptimizations()}},
	{"asym-2pi3", []Option{WithAlpha(AlphaAsymmetric), WithShrinkBack(), WithAsymmetricRemoval()}},
}

// requireResultsIdentical asserts two Results are byte-identical in
// every deterministic field — graphs, radii, powers, boundary flags and
// the Table 1 aggregates.
func requireResultsIdentical(t *testing.T, want, got *Result) {
	t.Helper()
	if !got.G.Equal(want.G) {
		t.Fatal("G differs")
	}
	if !got.GR.Equal(want.GR) {
		t.Fatal("GR differs")
	}
	if !reflect.DeepEqual(got.Pos, want.Pos) {
		t.Fatal("positions differ")
	}
	if !reflect.DeepEqual(got.Radii, want.Radii) || !reflect.DeepEqual(got.Powers, want.Powers) {
		t.Fatal("radii/powers differ")
	}
	if !reflect.DeepEqual(got.Boundary, want.Boundary) {
		t.Fatal("boundary flags differ")
	}
	if got.AvgDegree != want.AvgDegree || got.AvgRadius != want.AvgRadius {
		t.Fatalf("aggregates differ: (%v, %v) != (%v, %v)",
			got.AvgDegree, got.AvgRadius, want.AvgDegree, want.AvgRadius)
	}
}

// TestRadioModelEquivalence is the redesign's compatibility gate: the
// power-law model routed through WithRadioModel and the radio.Propagation
// interface produces byte-identical output to the legacy
// WithMaxRadius/WithPathLoss surface across every executor — oracle
// runs, seeded protocol simulations, baselines, and full session event
// histories — on every optimization stack.
func TestRadioModelEquivalence(t *testing.T) {
	nodes := someNetwork(77, 60)
	ctx := context.Background()
	for _, st := range radioStacks {
		st := st
		t.Run(st.name, func(t *testing.T) {
			legacy, err := New(append([]Option{WithMaxRadius(500), WithPathLoss(3)}, st.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			model, err := New(append([]Option{WithRadioModel(radio.Model{Exponent: 3, MaxRadius: 500, RefLoss: 1})}, st.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			if legacy.fingerprint() != model.fingerprint() {
				t.Fatalf("fingerprints differ:\n%+v\n%+v", legacy.fingerprint(), model.fingerprint())
			}

			wantRun, err := legacy.Run(ctx, nodes)
			if err != nil {
				t.Fatal(err)
			}
			gotRun, err := model.Run(ctx, nodes)
			if err != nil {
				t.Fatal(err)
			}
			requireResultsIdentical(t, wantRun, gotRun)

			sim := SimOptions{Seed: 9}
			wantSim, err := legacy.Simulate(ctx, nodes, sim)
			if err != nil {
				t.Fatal(err)
			}
			gotSim, err := model.Simulate(ctx, nodes, sim)
			if err != nil {
				t.Fatal(err)
			}
			requireResultsIdentical(t, wantSim, gotSim)

			for _, kind := range BaselineKinds() {
				wantB, err := legacy.Baseline(kind, nodes)
				if err != nil {
					t.Fatal(err)
				}
				gotB, err := model.Baseline(kind, nodes)
				if err != nil {
					t.Fatal(err)
				}
				requireResultsIdentical(t, wantB, gotB)
			}

			// Same random event history on both sessions: every report and
			// observation must match, and the final states must be identical.
			sessA, err := legacy.NewSession(ctx, nodes)
			if err != nil {
				t.Fatal(err)
			}
			sessB, err := model.NewSession(ctx, nodes)
			if err != nil {
				t.Fatal(err)
			}
			rngA, rngB := workload.Rand(13), workload.Rand(13)
			for step := 0; step < 8; step++ {
				batch := randomBatch(rngA, sessA, 4, 1500)
				if !reflect.DeepEqual(batch, randomBatch(rngB, sessB, 4, 1500)) {
					t.Fatalf("step %d: event streams diverged", step)
				}
				repA, tsA, errA := sessA.Tick(batch)
				repB, tsB, errB := sessB.Tick(batch)
				if errA != nil || errB != nil {
					t.Fatalf("step %d: %v / %v", step, errA, errB)
				}
				if !reflect.DeepEqual(repA, repB) || tsA != tsB {
					t.Fatalf("step %d: session histories diverge", step)
				}
			}
			requireSessionsIdentical(t, sessA, sessB)
		})
	}
}

// TestShadowingDeterminism pins the log-distance model's two contracts:
// the per-link shadowing realization is a pure function of (seed, u, v)
// — so runs and whole session histories are byte-identical at every
// worker count — and a nonzero sigma actually perturbs the realized
// topology away from the nominal power law.
func TestShadowingDeterminism(t *testing.T) {
	nodes := someNetwork(31, 60)
	ctx := context.Background()
	shadowOpts := func(extra ...Option) []Option {
		return append([]Option{WithMaxRadius(500), WithShrinkBack(), WithShadowing(8, 42)}, extra...)
	}

	var want *Result
	var wantSess *Session
	for _, workers := range []int{1, 2, 8} {
		eng, err := New(shadowOpts(WithWorkers(workers))...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(ctx, nodes)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := eng.NewSession(ctx, nodes)
		if err != nil {
			t.Fatal(err)
		}
		rng := workload.Rand(7)
		for step := 0; step < 6; step++ {
			if _, err := sess.ApplyBatch(randomBatch(rng, sess, 4, 1500)); err != nil {
				t.Fatal(err)
			}
		}
		if workers == 1 {
			want, wantSess = res, sess
			continue
		}
		requireResultsIdentical(t, want, res)
		requireSessionsIdentical(t, wantSess, sess)
	}

	// Sanity: 8 dB of shadowing must change the realized link set
	// relative to the nominal power law on a paper-density placement.
	plainEng, err := New(WithMaxRadius(500), WithShrinkBack())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := plainEng.Run(ctx, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if plain.GR.Equal(want.GR) && plain.G.Equal(want.G) {
		t.Fatal("shadowed run realized the exact nominal topology; shadowing had no effect")
	}
	// A different seed is a different radio environment.
	reseeded, err := New(WithMaxRadius(500), WithShrinkBack(), WithShadowing(8, 43))
	if err != nil {
		t.Fatal(err)
	}
	other, err := reseeded.Run(ctx, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if other.GR.Equal(want.GR) && other.G.Equal(want.G) {
		t.Fatal("different shadowing seeds realized identical topologies")
	}
}

// TestV2CheckpointRestores is the backward-compatibility gate of the
// codec version bump: a version-2 stream (pure power-law radio, no
// battery) still restores — the decoder implies RefLoss 1 — and the
// restored session continues byte-identically.
func TestV2CheckpointRestores(t *testing.T) {
	eng, err := New(WithMaxRadius(500), WithShrinkBack())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.NewSession(context.Background(), someNetwork(19, 40))
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.Rand(3)
	for step := 0; step < 6; step++ {
		if _, err := sess.ApplyBatch(randomBatch(rng, sess, 4, 1500)); err != nil {
			t.Fatal(err)
		}
	}

	sess.mu.Lock()
	st := sess.exportLocked()
	sess.mu.Unlock()
	var buf bytes.Buffer
	if err := codec.EncodeSessionVersion(&buf, st, 2); err != nil {
		t.Fatalf("v2 encode of power-law state: %v", err)
	}
	restored, err := eng.RestoreSession(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("v2 restore: %v", err)
	}
	requireSessionsIdentical(t, sess, restored)
	for step := 0; step < 4; step++ {
		batch := randomBatch(rng, sess, 4, 1500)
		repA, tsA, errA := sess.Tick(batch)
		repB, tsB, errB := restored.Tick(batch)
		if errA != nil || errB != nil {
			t.Fatalf("tick %d: %v / %v", step, errA, errB)
		}
		if !reflect.DeepEqual(repA, repB) || tsA != tsB {
			t.Fatalf("tick %d: v2-restored session diverges", step)
		}
	}
}

// TestV2CannotCarryEnergyState: downgrade encoding refuses states the
// version-2 format cannot represent — shadowed radios, non-unit
// reference losses and battery vectors — with the codec's typed
// version error.
func TestV2CannotCarryEnergyState(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name string
		opts []Option
	}{
		{"shadowed", []Option{WithMaxRadius(500), WithShadowing(4, 1)}},
		{"battery", []Option{WithMaxRadius(500), WithBattery(1e9, 1)}},
		{"ref-loss", []Option{WithRadioModel(radio.Model{Exponent: 2, MaxRadius: 500, RefLoss: 2})}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			eng, err := New(tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := eng.NewSession(ctx, someNetwork(4, 20))
			if err != nil {
				t.Fatal(err)
			}
			sess.mu.Lock()
			st := sess.exportLocked()
			sess.mu.Unlock()
			var buf bytes.Buffer
			if err := codec.EncodeSessionVersion(&buf, st, 2); !errors.Is(err, codec.ErrVersion) {
				t.Fatalf("v2 encode: got %v, want ErrVersion", err)
			}
			// The current version carries it fine, and only the producing
			// engine fingerprint restores it.
			var v3 bytes.Buffer
			if err := sess.Checkpoint(&v3); err != nil {
				t.Fatal(err)
			}
			if _, err := eng.RestoreSession(bytes.NewReader(v3.Bytes())); err != nil {
				t.Fatal(err)
			}
			plain, err := New(WithMaxRadius(500))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := plain.RestoreSession(bytes.NewReader(v3.Bytes())); !errors.Is(err, ErrConfigMismatch) {
				t.Fatalf("restore onto plain engine: got %v, want ErrConfigMismatch", err)
			}
		})
	}
}

// TestEnergyCheckpointRoundTrip: a session carrying the full PR 10 state
// — shadowed radio plus partially drained batteries — checkpoints and
// restores byte-identically, including the residual-battery vector and
// every subsequent drained observation.
func TestEnergyCheckpointRoundTrip(t *testing.T) {
	m := radio.Default(500)
	cap := 40 * m.MaxPower() // a few dozen max-power ticks
	eng, err := New(WithMaxRadius(500), WithShrinkBack(), WithShadowing(4, 11), WithBattery(cap, 1))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.NewSession(context.Background(), someNetwork(23, 40))
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.Rand(29)
	for step := 0; step < 5; step++ {
		if _, _, err := sess.Tick(randomBatch(rng, sess, 3, 1500)); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := sess.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := eng.RestoreSession(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	requireSessionsIdentical(t, sess, restored)
	for id := 0; id < sess.Len(); id++ {
		if a, b := sess.Residual(id), restored.Residual(id); a != b {
			t.Fatalf("node %d residual %v != %v after restore", id, b, a)
		}
	}
	for step := 0; step < 5; step++ {
		batch := randomBatch(rng, sess, 3, 1500)
		repA, tsA, errA := sess.Tick(batch)
		repB, tsB, errB := restored.Tick(batch)
		if errA != nil || errB != nil {
			t.Fatalf("tick %d: %v / %v", step, errA, errB)
		}
		if !reflect.DeepEqual(repA, repB) || tsA != tsB {
			t.Fatalf("tick %d: drained observations diverge: %+v != %+v", step, tsB, tsA)
		}
	}
}

// TestSnapshotRadiusFold pins the Summarize fold-down: the snapshot's
// radius and degree tables, assembled from the maintained per-node
// radius cache, are bitwise identical to re-deriving them from the
// snapshot graph.
func TestSnapshotRadiusFold(t *testing.T) {
	eng, err := New(WithMaxRadius(500), WithShrinkBack())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.NewSession(context.Background(), someNetwork(41, 50))
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.Rand(17)
	for step := 0; step < 8; step++ {
		if _, err := sess.ApplyBatch(randomBatch(rng, sess, 5, 1500)); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := sess.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for u := range snap.Radii {
		want := graph.NodeRadius(snap.G, snap.Pos, u)
		if snap.Radii[u] != want {
			t.Fatalf("node %d: folded radius %v != derived %v", u, snap.Radii[u], want)
		}
		sum += snap.Radii[u]
	}
	if want := graph.AvgDegree(snap.G); snap.AvgDegree != want {
		t.Fatalf("folded AvgDegree %v != derived %v", snap.AvgDegree, want)
	}
	if want := sum / float64(len(snap.Radii)); snap.AvgRadius != want {
		t.Fatalf("folded AvgRadius %v != derived %v", snap.AvgRadius, want)
	}
}

// TestBatteryDrainSemantics pins the energy model exactly: each tick a
// live node pays drain × p(radius) off its battery, batteries clamp at
// zero, Depleted lists the dead in ascending id order, and LifetimeTick
// converts them into applicable Leave events exactly once.
func TestBatteryDrainSemantics(t *testing.T) {
	m := radio.Default(500)
	cap := 2.5 * m.MaxPower() // every max-radius node dies on the third tick
	const drain = 1.0
	eng, err := New(WithMaxRadius(500), WithBattery(cap, drain))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.NewSession(context.Background(), someNetwork(53, 30))
	if err != nil {
		t.Fatal(err)
	}
	n := sess.Len()
	radii := make([]float64, n)
	for u := 0; u < n; u++ {
		r, err := sess.NodeRadius(u)
		if err != nil {
			t.Fatal(err)
		}
		radii[u] = r
	}

	if _, ts, err := sess.Tick(nil); err != nil {
		t.Fatal(err)
	} else if ts.Residual <= 0 || ts.Residual >= cap {
		t.Fatalf("one-tick mean residual %v out of (0, %v)", ts.Residual, cap)
	}
	for u := 0; u < n; u++ {
		want := cap - drain*m.PowerFor(radii[u])
		if want < 0 {
			want = 0
		}
		if got := sess.Residual(u); got != want {
			t.Fatalf("node %d: residual %v != %v after one tick", u, got, want)
		}
	}
	if dead := sess.Depleted(); dead != nil {
		t.Fatalf("nodes depleted after one tick at capacity 2.5 ticks: %v", dead)
	}

	// Drain three more ticks and check the death list against first
	// principles: after k quiescent ticks node u has paid k·drain·p(r_u),
	// so it is depleted exactly when that covers its capacity. The 2.5-tick
	// capacity guarantees a mix: wide-radius nodes die, narrow ones last.
	for i := 0; i < 3; i++ {
		if _, _, err := sess.Tick(nil); err != nil {
			t.Fatal(err)
		}
	}
	var want []int
	for u := 0; u < n; u++ {
		if sess.Alive(u) && m.PowerFor(radii[u]) > 0 && cap-4*drain*m.PowerFor(radii[u]) <= 0 {
			want = append(want, u)
		}
	}
	dead := sess.Depleted()
	if !reflect.DeepEqual(dead, want) {
		t.Fatalf("Depleted() = %v, want %v", dead, want)
	}
	if len(dead) == 0 || len(dead) == n {
		t.Fatalf("depletion split %d/%d is degenerate; pick a different capacity", len(dead), n)
	}

	// LifetimeTick with a quiescent profile emits exactly the death
	// leaves; applying them removes the dead and empties Depleted.
	tick := LifetimeTick(TickProfile{Width: 1500, Height: 1500})
	events := tick(0, 0, workload.Rand(1), sess)
	if len(events) != len(dead) {
		t.Fatalf("LifetimeTick emitted %d events for %d deaths: %v", len(events), len(dead), events)
	}
	for i, ev := range events {
		if ev.Kind != EventLeave || ev.ID != dead[i] {
			t.Fatalf("event %d = %+v, want leave of %d", i, ev, dead[i])
		}
	}
	// Apply without Tick's own drain so no fresh deaths muddy the check:
	// once the dead have left, nothing is depleted.
	if _, err := sess.ApplyBatch(events); err != nil {
		t.Fatalf("applying death leaves: %v", err)
	}
	if sess.Depleted() != nil {
		t.Fatalf("Depleted() non-empty after deaths applied: %v", sess.Depleted())
	}
	if got := sess.LiveCount(); got != n-len(dead) {
		t.Fatalf("LiveCount() = %d, want %d", got, n-len(dead))
	}
}

// TestLifetimeFleet runs a mixed fleet — one plain member, one
// battery-backed member — under LifetimeTick until the battery member
// dies out, asserting deaths only occur where there are batteries and
// that the pooled fleet observation reflects battery members alone.
func TestLifetimeFleet(t *testing.T) {
	ctx := context.Background()
	m := radio.Default(workload.PaperRadius)
	cap := 5 * m.MaxPower()
	eng := fleetEngine(t)
	members := []MemberSpec{
		{Placement: someNetwork(61, 30)},
		{Placement: someNetwork(62, 30), Options: []Option{WithBattery(cap, 1)}},
	}
	fleet, err := eng.NewFleet(ctx, FleetConfig{Members: members, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}

	// Before any draining the pooled residual is exactly the battery
	// member's full capacity — the plain member must not dilute it.
	obs, err := fleet.Observe()
	if err != nil {
		t.Fatal(err)
	}
	if obs.Residual != cap || obs.EnergyVar != 0 {
		t.Fatalf("fresh pooled observation = (%v, %v), want (%v, 0)", obs.Residual, obs.EnergyVar, cap)
	}

	tick := LifetimeTick(TickProfile{Moves: 2, Jitter: 40, Width: 1500, Height: 1500})
	rep, err := fleet.Run(ctx, 12, tick)
	if err != nil {
		t.Fatal(err)
	}
	// LifetimeTick's only leaves come from depletion: the plain member
	// keeps all 30 nodes while the battery member loses its wide-radius
	// nodes (narrow- and zero-radius nodes drain slower and may survive).
	if alive := fleet.Session(0).LiveCount(); alive != 30 {
		t.Fatalf("plain member has %d live nodes, want all 30", alive)
	}
	if alive := fleet.Session(1).LiveCount(); alive >= 30 {
		t.Fatalf("battery member still has %d live nodes after %d ticks at 5-tick capacity", alive, 12)
	}
	// The per-member series carry the battery streams: zeros for the
	// plain member, a positive decaying mean for the battery member.
	if s := rep.PerNetwork[0].Series.Residual; s.Count != 12 || s.MaxV != 0 {
		t.Fatalf("plain member residual stream = %+v, want 12 all-zero observations", s)
	}
	if s := rep.PerNetwork[1].Series.Residual; s.Count != 12 || s.MaxV <= 0 || s.MaxV >= cap || s.MinV >= s.MaxV {
		t.Fatalf("battery member residual stream = %+v, want a decaying positive mean below %v", s, cap)
	}
}

// TestRadioOptionConflicts: the redesigned surface keeps New's
// single-error contract — every conflicting or invalid combination is
// one ErrBadConfig.
func TestRadioOptionConflicts(t *testing.T) {
	okModel := radio.Model{Exponent: 2, MaxRadius: 500, RefLoss: 1}
	bad := [][]Option{
		{WithRadioModel(okModel), WithPathLoss(3)},
		{WithRadioModel(okModel), WithMaxRadius(400)},
		{WithRadioModel(okModel), WithConfig(Config{MaxRadius: 500})},
		{WithRadioModel(radio.Model{Exponent: 0.5, MaxRadius: 500, RefLoss: 1})},
		{WithRadioModel(radio.Model{Exponent: 2, MaxRadius: 500, RefLoss: -1})},
		{WithMaxRadius(500), WithBattery(0, 1)},
		{WithMaxRadius(500), WithBattery(-3, 1)},
		{WithMaxRadius(500), WithBattery(math.NaN(), 1)},
		{WithMaxRadius(500), WithBattery(10, -1)},
		{WithMaxRadius(500), WithBattery(10, math.Inf(1))},
		{WithMaxRadius(500), WithBattery(10, 1), WithPairwiseRemoval(PairwisePolicy(0))},
		{WithMaxRadius(500), WithBattery(10, 1), WithAllOptimizations()},
		{WithMaxRadius(500), WithShadowing(-1, 0)},
		{WithMaxRadius(500), WithShadowing(math.NaN(), 0)},
	}
	for i, opts := range bad {
		if _, err := New(opts...); !errors.Is(err, ErrBadConfig) {
			t.Errorf("case %d: New() error = %v, want ErrBadConfig", i, err)
		}
	}
	// A Config carrying no radio fields composes with WithRadioModel.
	eng, err := New(WithRadioModel(okModel), WithConfig(Config{Alpha: AlphaAsymmetric}), WithShrinkBack())
	if err != nil {
		t.Fatalf("radio-free WithConfig alongside WithRadioModel: %v", err)
	}
	if eng.Alpha() != AlphaAsymmetric || eng.RadioModel() != okModel {
		t.Fatalf("composed engine: alpha %v, model %+v", eng.Alpha(), eng.RadioModel())
	}
}

// TestEnergyMSTBaseline: the energy-balanced comparator spans exactly
// the max-power graph's partition, prices zero-residual nodes out of
// the forest entirely, and validates its residual vector.
func TestEnergyMSTBaseline(t *testing.T) {
	nodes := someNetwork(71, 60)
	eng, err := New(WithMaxRadius(500))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Baseline(BaselineEnergyMST, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if !res.G.IsSubgraphOf(res.GR) {
		t.Fatal("energy MST is not a subgraph of G_R")
	}
	if !graph.SamePartition(res.G, res.GR) {
		t.Fatal("energy MST does not span the max-power partition")
	}
	if res.G.EdgeCount() >= len(nodes) {
		t.Fatalf("forest has %d edges over %d nodes; not acyclic", res.G.EdgeCount(), len(nodes))
	}

	// A nil residual vector is the plain power-weighted MST.
	viaNil, err := eng.EnergyBaseline(nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !viaNil.G.Equal(res.G) {
		t.Fatal("EnergyBaseline(nil) differs from Baseline(BaselineEnergyMST)")
	}
	// Uniform residuals scale every weight identically: same forest.
	uniform := make([]float64, len(nodes))
	for i := range uniform {
		uniform[i] = 1
	}
	viaUniform, err := eng.EnergyBaseline(nodes, uniform)
	if err != nil {
		t.Fatal(err)
	}
	if !viaUniform.G.Equal(res.G) {
		t.Fatal("uniform residuals changed the forest")
	}
	// Dead nodes take no edges: the forest must reroute around them.
	drained := append([]float64(nil), uniform...)
	drained[7], drained[20] = 0, 0
	viaDrained, err := eng.EnergyBaseline(nodes, drained)
	if err != nil {
		t.Fatal(err)
	}
	if d := viaDrained.G.Degree(7) + viaDrained.G.Degree(20); d != 0 {
		t.Fatalf("zero-residual nodes carry %d edges", d)
	}
	if _, err := eng.EnergyBaseline(nodes, uniform[:10]); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("short residual vector: got %v, want ErrBadConfig", err)
	}
}
