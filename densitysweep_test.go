package cbtc

import (
	"strings"
	"testing"
)

func TestDensitySweepBoundedDegree(t *testing.T) {
	rows, err := RunDensitySweep(DensitySweepParams{
		NodeCounts: []int{50, 100, 200},
		Networks:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]

	// Uncontrolled degree grows roughly linearly with density.
	if last.MaxPowerDegree < 3*first.MaxPowerDegree {
		t.Errorf("max-power degree must scale with density: %v -> %v",
			first.MaxPowerDegree, last.MaxPowerDegree)
	}
	// CBTC degree stays bounded: within ±1.5 across a 4x density change.
	for _, r := range rows {
		if r.CBTCDegree < 2 || r.CBTCDegree > 4.5 {
			t.Errorf("n=%d: CBTC degree %v outside the bounded band", r.Nodes, r.CBTCDegree)
		}
	}
	// Radius shrinks with density (nearer neighbors close the cones).
	for i := 1; i < len(rows); i++ {
		if rows[i].CBTCRadius >= rows[i-1].CBTCRadius {
			t.Errorf("radius must shrink with density: %v -> %v at n=%d",
				rows[i-1].CBTCRadius, rows[i].CBTCRadius, rows[i].Nodes)
		}
	}
	// Interference stays flat (bounded) while density quadruples.
	for _, r := range rows {
		if r.Interference > 6 {
			t.Errorf("n=%d: interference %v not bounded", r.Nodes, r.Interference)
		}
	}
}

func TestRenderDensitySweep(t *testing.T) {
	out := RenderDensitySweep([]DensitySweepRow{
		{Nodes: 100, MaxPowerDegree: 25.9, CBTCDegree: 2.9, CBTCRadius: 158.2, Interference: 2.9},
	})
	for _, want := range []string{"100", "25.9", "2.90", "158.2"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// The algorithm is purely geometric: the resulting graph is invariant
// under the path-loss exponent (only the power VALUES change). A
// downstream user can swap radio environments without re-planning the
// topology.
func TestTopologyInvariantUnderPathLossExponent(t *testing.T) {
	nodes := someNetwork(33, 80)
	free, err := Run(nodes, Config{MaxRadius: 500, PathLossExponent: 2}.AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	urban, err := Run(nodes, Config{MaxRadius: 500, PathLossExponent: 4}.AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	if !free.G.Equal(urban.G) {
		t.Errorf("topology must not depend on the path-loss exponent")
	}
	for u := range nodes {
		if free.Radii[u] != urban.Radii[u] {
			t.Errorf("node %d: radii differ across exponents", u)
		}
		// Powers DO differ: p(d) = d^n.
	}
	samePowers := true
	for u := range nodes {
		if free.Powers[u] != urban.Powers[u] {
			samePowers = false
			break
		}
	}
	if samePowers {
		t.Errorf("powers must differ across exponents (d² vs d⁴)")
	}
}
