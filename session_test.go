package cbtc

import (
	"context"
	"errors"
	"sync"
	"testing"

	"cbtc/internal/workload"
)

// sessionLiveMap returns the session's live node ids (ascending) and
// their positions — the placement a fresh run would see.
func sessionLiveMap(s *Session) ([]int, []Point) {
	ids := make([]int, 0, s.Len())
	pos := make([]Point, 0, s.Len())
	for id := 0; id < s.Len(); id++ {
		if s.Alive(id) {
			ids = append(ids, id)
			pos = append(pos, s.Position(id))
		}
	}
	return ids, pos
}

// requireSessionMatchesFreshRun asserts the §4 convergence property:
// the incrementally-maintained topology equals a from-scratch Engine.Run
// over the current live placement, edge for edge and power for power.
func requireSessionMatchesFreshRun(t *testing.T, eng *Engine, s *Session) {
	t.Helper()
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ids, livePos := sessionLiveMap(s)
	fresh, err := eng.Run(context.Background(), livePos)
	if err != nil {
		t.Fatal(err)
	}
	for fi, u := range ids {
		for fj, v := range ids {
			if snap.G.HasEdge(u, v) != fresh.G.HasEdge(fi, fj) {
				t.Fatalf("edge {%d,%d}: session=%v fresh=%v",
					u, v, snap.G.HasEdge(u, v), fresh.G.HasEdge(fi, fj))
			}
		}
		if snap.Radii[u] != fresh.Radii[fi] {
			t.Fatalf("node %d: session radius %v, fresh %v", u, snap.Radii[u], fresh.Radii[fi])
		}
		if snap.Powers[u] != fresh.Powers[fi] {
			t.Fatalf("node %d: session power %v, fresh %v", u, snap.Powers[u], fresh.Powers[fi])
		}
		if snap.Boundary[u] != fresh.Boundary[fi] {
			t.Fatalf("node %d: session boundary %v, fresh %v", u, snap.Boundary[u], fresh.Boundary[fi])
		}
	}
	// The ground-truth G_R — incrementally maintained since PR 3 — must
	// match the fresh run's too.
	for fi, u := range ids {
		for fj, v := range ids {
			if snap.GR.HasEdge(u, v) != fresh.GR.HasEdge(fi, fj) {
				t.Fatalf("GR edge {%d,%d}: session=%v fresh=%v",
					u, v, snap.GR.HasEdge(u, v), fresh.GR.HasEdge(fi, fj))
			}
		}
	}
	// Departed nodes must be isolated.
	for id := 0; id < s.Len(); id++ {
		if !s.Alive(id) && snap.G.Degree(id) != 0 {
			t.Fatalf("departed node %d still has %d edges", id, snap.G.Degree(id))
		}
		if !s.Alive(id) && snap.GR.Degree(id) != 0 {
			t.Fatalf("departed node %d still has %d GR edges", id, snap.GR.Degree(id))
		}
	}
}

// The ISSUE's acceptance test: a join→leave→move event stream converges
// to the same topology as a fresh Engine.Run on the final placement —
// here checked after every single event, for the basic algorithm and
// for the full optimization stack.
func TestSessionConvergesToFreshRun(t *testing.T) {
	stacks := []struct {
		name string
		opts []Option
	}{
		{"basic", []Option{WithMaxRadius(500)}},
		{"all-ops", []Option{WithMaxRadius(500), WithAllOptimizations()}},
		{"asym-2pi3", []Option{WithMaxRadius(500), WithAlpha(AlphaAsymmetric), WithAllOptimizations()}},
		{"quantized", []Option{WithMaxRadius(500), WithShrinkBack(), WithShrinkBackSchedule(1.5)}},
	}
	for _, st := range stacks {
		st := st
		t.Run(st.name, func(t *testing.T) {
			eng, err := New(st.opts...)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := eng.NewSession(context.Background(), someNetwork(21, 40))
			if err != nil {
				t.Fatal(err)
			}
			requireSessionMatchesFreshRun(t, eng, sess)

			rng := workload.Rand(7)
			for step := 0; step < 18; step++ {
				switch step % 3 {
				case 0: // join somewhere in the region
					sess.Join(Pt(rng.Float64()*1500, rng.Float64()*1500))
				case 1: // leave a random live node
					ids, _ := sessionLiveMap(sess)
					if _, err := sess.Leave(ids[rng.IntN(len(ids))]); err != nil {
						t.Fatal(err)
					}
				case 2: // move a random live node, sometimes far away
					ids, _ := sessionLiveMap(sess)
					id := ids[rng.IntN(len(ids))]
					if _, err := sess.Move(id, Pt(rng.Float64()*1500, rng.Float64()*1500)); err != nil {
						t.Fatal(err)
					}
				}
				requireSessionMatchesFreshRun(t, eng, sess)
			}
		})
	}
}

// TestSessionLargeNIncrementalIndex runs a long mixed event stream over
// a dense several-hundred-node session — the regime the incremental
// spatial index exists for — and checks the maintained fixed point
// against a fresh run at checkpoints, plus the locality guarantee that
// each event only recomputes nodes near its site.
func TestSessionLargeNIncrementalIndex(t *testing.T) {
	const side = 3000.0
	eng, err := New(WithMaxRadius(500), WithAllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.Rand(31)
	sess, err := eng.NewSession(context.Background(), workload.Uniform(rng, 400, side, side))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 60; step++ {
		var rep EventReport
		var site Point
		switch step % 4 {
		case 0:
			site = Pt(rng.Float64()*side, rng.Float64()*side)
			_, rep = sess.Join(site)
		case 1:
			ids, _ := sessionLiveMap(sess)
			id := ids[rng.IntN(len(ids))]
			site = sess.Position(id)
			if rep, err = sess.Leave(id); err != nil {
				t.Fatal(err)
			}
		default:
			ids, _ := sessionLiveMap(sess)
			id := ids[rng.IntN(len(ids))]
			from := sess.Position(id)
			site = Pt(rng.Float64()*side, rng.Float64()*side)
			if rep, err = sess.Move(id, site); err != nil {
				t.Fatal(err)
			}
			// A move affects both the old and the new neighborhood.
			r := 2 * eng.Config().MaxRadius
			for _, u := range rep.Recomputed {
				p := sess.Position(u)
				if p.Dist(site) > r*(1+1e-9) && p.Dist(from) > r*(1+1e-9) {
					t.Fatalf("step %d: recomputed node %d at %v is outside both event neighborhoods", step, u, p)
				}
			}
			if step%10 == 0 {
				requireSessionMatchesFreshRun(t, eng, sess)
			}
			continue
		}
		r := 2 * eng.Config().MaxRadius
		for _, u := range rep.Recomputed {
			if sess.Position(u).Dist(site) > r*(1+1e-9) {
				t.Fatalf("step %d: recomputed node %d at %v is outside the event neighborhood of %v",
					step, u, sess.Position(u), site)
			}
		}
		if step%10 == 0 {
			requireSessionMatchesFreshRun(t, eng, sess)
		}
	}
	requireSessionMatchesFreshRun(t, eng, sess)
}

// Replaying cmd/dynsim's built-in crash/move/add demo through the public
// Session API must preserve connectivity at every checkpoint (the §4
// guarantee at the oracle fixed point).
func TestSessionReplaysDynsimDemo(t *testing.T) {
	eng, err := New(WithMaxRadius(500))
	if err != nil {
		t.Fatal(err)
	}
	nodes := []Point{Pt(0, 0), Pt(300, 0), Pt(600, 0), Pt(900, 0), Pt(1200, 0)}
	sess, err := eng.NewSession(context.Background(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	check := func(label string, wantComponents int) {
		t.Helper()
		snap, err := sess.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !snap.PreservesConnectivity() {
			t.Fatalf("%s: connectivity not preserved", label)
		}
		if got := snap.Components(); got != wantComponents {
			t.Errorf("%s: components = %d, want %d", label, got, wantComponents)
		}
	}

	check("steady state", 1)

	// The bridge node crashes: the chain splits, isolated crash slot
	// included the partition must still match G_R.
	if _, err := sess.Leave(2); err != nil {
		t.Fatal(err)
	}
	check("after bridge crash", 3) // {0,1}, {3,4}, {2 departed}

	// A replacement joins just off the old bridge position.
	if id, _ := sess.Join(Pt(600, 40)); id != 5 {
		t.Fatalf("replacement got id %d, want 5", id)
	}
	check("after replacement joins", 2) // {0,1,3,4,5}, {2 departed}

	// Move the replacement onto the exact bridge position.
	if _, err := sess.Move(5, Pt(600, 0)); err != nil {
		t.Fatal(err)
	}
	check("after replacement settles", 2)

	requireSessionMatchesFreshRun(t, eng, sess)

	st := sess.Stats()
	if st.Joins != 1 || st.Leaves != 1 || st.Moves != 1 {
		t.Errorf("stats = %+v, want 1 join / 1 leave / 1 move", st)
	}
	if st.Regrows == 0 {
		t.Errorf("crashing the only bridge must force at least one regrow, stats = %+v", st)
	}
}

func TestSessionEventErrors(t *testing.T) {
	eng, err := New(WithMaxRadius(500))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.NewSession(context.Background(), someNetwork(3, 10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Leave(99); !errors.Is(err, ErrBadEvent) {
		t.Errorf("leave of unknown node = %v, want ErrBadEvent", err)
	}
	if _, err := sess.Leave(4); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Leave(4); !errors.Is(err, ErrBadEvent) {
		t.Errorf("double leave = %v, want ErrBadEvent", err)
	}
	if _, err := sess.Move(4, Pt(0, 0)); !errors.Is(err, ErrBadEvent) {
		t.Errorf("move of departed node = %v, want ErrBadEvent", err)
	}
	if sess.Alive(4) {
		t.Errorf("node 4 still alive after leave")
	}
	if sess.LiveCount() != 9 {
		t.Errorf("live count = %d, want 9", sess.LiveCount())
	}
}

// Sessions serialize events internally; concurrent readers and writers
// must be race-free (exercised under -race in CI).
func TestSessionConcurrentUse(t *testing.T) {
	eng, err := New(WithMaxRadius(500))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.NewSession(context.Background(), someNetwork(5, 30))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				sess.Join(Pt(float64(100*g+i), float64(50*g)))
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := sess.Snapshot(); err != nil {
					t.Error(err)
					return
				}
				sess.Stats()
				sess.LiveCount()
			}
		}()
	}
	wg.Wait()
	requireSessionMatchesFreshRun(t, eng, sess)
}
