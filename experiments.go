package cbtc

import (
	"fmt"

	"cbtc/internal/core"
	"cbtc/internal/graph"
	"cbtc/internal/radio"
	"cbtc/internal/stats"
	"cbtc/internal/workload"
)

// Table1Params configures the reproduction of the paper's Table 1.
// The zero value reproduces the paper's setup: 100 networks of 100 nodes
// in a 1500×1500 region with maximum radius 500.
type Table1Params struct {
	Networks  int
	Nodes     int
	Width     float64
	Height    float64
	MaxRadius float64
	Seed      uint64
}

func (p Table1Params) withDefaults() Table1Params {
	if p.Networks == 0 {
		p.Networks = 100
	}
	if p.Nodes == 0 {
		p.Nodes = workload.PaperNodes
	}
	if p.Width == 0 {
		p.Width = workload.PaperRegionW
	}
	if p.Height == 0 {
		p.Height = workload.PaperRegionH
	}
	if p.MaxRadius == 0 {
		p.MaxRadius = workload.PaperRadius
	}
	return p
}

// Table1Column is one column of the paper's Table 1: an optimization
// stack at a cone angle, plus the values the paper reports for it.
type Table1Column struct {
	// Name is the column label, matching the paper's header.
	Name string
	// Alpha is the cone angle; 0 marks the max-power baseline.
	Alpha float64
	// Opts is the optimization stack (ignored for the baseline).
	Opts core.Options
	// MaxPower marks the no-topology-control baseline column.
	MaxPower bool
	// PaperDegree and PaperRadius are the values published in Table 1.
	PaperDegree, PaperRadius float64
}

// Table1Columns returns the eight columns of the paper's Table 1, in
// print order (op1 = shrink-back, op2 = asymmetric edge removal,
// op3 = pairwise edge removal).
func Table1Columns() []Table1Column {
	op1 := core.Options{ShrinkBack: true}
	op12 := core.Options{ShrinkBack: true, AsymmetricRemoval: true}
	all56 := core.Options{ShrinkBack: true, PairwiseRemoval: true}
	all23 := core.Options{ShrinkBack: true, AsymmetricRemoval: true, PairwiseRemoval: true}
	return []Table1Column{
		{Name: "basic α=5π/6", Alpha: AlphaConnectivity, PaperDegree: 12.3, PaperRadius: 436.8},
		{Name: "basic α=2π/3", Alpha: AlphaAsymmetric, PaperDegree: 15.4, PaperRadius: 457.4},
		{Name: "op1 α=5π/6", Alpha: AlphaConnectivity, Opts: op1, PaperDegree: 10.3, PaperRadius: 373.7},
		{Name: "op1 α=2π/3", Alpha: AlphaAsymmetric, Opts: op1, PaperDegree: 12.8, PaperRadius: 398.1},
		{Name: "op1+op2 α=2π/3", Alpha: AlphaAsymmetric, Opts: op12, PaperDegree: 7.0, PaperRadius: 276.8},
		{Name: "all α=5π/6", Alpha: AlphaConnectivity, Opts: all56, PaperDegree: 3.6, PaperRadius: 155.9},
		{Name: "all α=2π/3", Alpha: AlphaAsymmetric, Opts: all23, PaperDegree: 3.6, PaperRadius: 160.6},
		{Name: "max power", MaxPower: true, PaperDegree: 25.6, PaperRadius: 500},
	}
}

// Table1Cell is a measured (degree, radius) pair for one column.
type Table1Cell struct {
	AvgDegree float64
	AvgRadius float64
}

// Table1Result is the measured reproduction of Table 1.
type Table1Result struct {
	Params  Table1Params
	Columns []Table1Column
	// Cells holds the per-column measurements averaged over all
	// generated networks, aligned with Columns.
	Cells []Table1Cell
}

// RunTable1 regenerates the paper's Table 1: it draws Params.Networks
// random networks, runs every optimization stack on each, and averages
// the degree and radius statistics. Executions are shared across stacks
// with the same α, as the growing phase does not depend on the
// optimizations.
func RunTable1(params Table1Params) (*Table1Result, error) {
	p := params.withDefaults()
	m, err := radio.NewModel(radio.FreeSpaceExponent, p.MaxRadius, 1)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	cols := Table1Columns()
	degree := make([]stats.Sample, len(cols))
	radius := make([]stats.Sample, len(cols))

	// The paper's simulation ran the discrete protocol of Figure 1, whose
	// shrink-back operates on whole power levels of the growth schedule;
	// quantize the oracle's exact tags to a schedule of the same
	// granularity so op1 matches. The factor is calibrated against the
	// published op1 row (doubling is slightly too coarse, exact tags
	// slightly too fine; see EXPERIMENTS.md).
	inc, err := radio.Multiplicative(table1ScheduleFactor)
	if err != nil {
		return nil, err
	}
	schedule, err := radio.Schedule(m.MaxPower()/1024, m.MaxPower(), inc)
	if err != nil {
		return nil, err
	}

	for net := 0; net < p.Networks; net++ {
		pos := workload.Uniform(workload.Rand(p.Seed+uint64(net)), p.Nodes, p.Width, p.Height)
		execs := map[float64]*core.Execution{}
		for ci, col := range cols {
			if col.MaxPower {
				gr := core.MaxPowerGraph(pos, m)
				degree[ci].Add(graph.AvgDegree(gr))
				radius[ci].Add(p.MaxRadius)
				continue
			}
			exec, ok := execs[col.Alpha]
			if !ok {
				exec, err = core.Run(pos, m, col.Alpha)
				if err != nil {
					return nil, err
				}
				exec = core.QuantizeTags(exec, schedule)
				execs[col.Alpha] = exec
			}
			topo, err := core.BuildTopology(exec, col.Opts)
			if err != nil {
				return nil, err
			}
			s := topo.Summarize()
			degree[ci].Add(s.AvgDegree)
			radius[ci].Add(s.AvgRadius)
		}
	}

	res := &Table1Result{Params: p, Columns: cols, Cells: make([]Table1Cell, len(cols))}
	for ci := range cols {
		res.Cells[ci] = Table1Cell{
			AvgDegree: degree[ci].Mean(),
			AvgRadius: radius[ci].Mean(),
		}
	}
	return res, nil
}

// Render formats the result as an aligned paper-vs-measured table.
func (t *Table1Result) Render() string {
	tb := stats.NewTable("column", "degree(paper)", "degree(ours)", "radius(paper)", "radius(ours)")
	for i, col := range t.Columns {
		tb.AddRow(col.Name,
			stats.F(col.PaperDegree, 1), stats.F(t.Cells[i].AvgDegree, 1),
			stats.F(col.PaperRadius, 1), stats.F(t.Cells[i].AvgRadius, 1))
	}
	return tb.String()
}

// Panel is one of the eight topology snapshots of the paper's Figure 6.
type Panel struct {
	// Key is the paper's panel letter, "a" through "h".
	Key string
	// Title is the paper's caption for the panel.
	Title string
	// Result holds the topology for the panel.
	Result *Result
}

// Figure6Panels regenerates the paper's Figure 6 on one random network
// drawn with the paper's parameters: the same 100-node placement run
// through (a) no topology control, (b,c) the basic algorithm at 2π/3 and
// 5π/6, (d,e) with shrink-back, (f) shrink-back plus asymmetric edge
// removal at 2π/3, and (g,h) all applicable optimizations.
func Figure6Panels(seed uint64) ([]Panel, error) {
	pos := workload.PaperNetwork(seed)
	base := Config{MaxRadius: workload.PaperRadius}

	mk := func(key, title string, cfg Config, maxPower bool) (Panel, error) {
		var res *Result
		var err error
		if maxPower {
			res, err = MaxPowerTopology(pos, cfg)
		} else {
			res, err = Run(pos, cfg)
		}
		if err != nil {
			return Panel{}, fmt.Errorf("panel %s: %w", key, err)
		}
		return Panel{Key: key, Title: title, Result: res}, nil
	}

	cfg23 := base
	cfg23.Alpha = AlphaAsymmetric
	cfg56 := base
	cfg56.Alpha = AlphaConnectivity

	shrink := func(c Config) Config { c.ShrinkBack = true; return c }
	asym := func(c Config) Config { c.AsymmetricRemoval = true; return c }
	pairwise := func(c Config) Config { c.PairwiseRemoval = true; return c }

	specs := []struct {
		key, title string
		cfg        Config
		maxPower   bool
	}{
		{"a", "no topology control", base, true},
		{"b", "α=2π/3, basic algorithm", cfg23, false},
		{"c", "α=5π/6, basic algorithm", cfg56, false},
		{"d", "α=2π/3 with shrink-back", shrink(cfg23), false},
		{"e", "α=5π/6 with shrink-back", shrink(cfg56), false},
		{"f", "α=2π/3 with shrink-back and asymmetric edge removal", asym(shrink(cfg23)), false},
		{"g", "α=5π/6 with all applicable optimizations", pairwise(shrink(cfg56)), false},
		{"h", "α=2π/3 with all optimizations", pairwise(asym(shrink(cfg23))), false},
	}
	panels := make([]Panel, 0, len(specs))
	for _, sp := range specs {
		p, err := mk(sp.key, sp.title, sp.cfg, sp.maxPower)
		if err != nil {
			return nil, err
		}
		panels = append(panels, p)
	}
	return panels, nil
}

// table1ScheduleFactor is the power-growth factor assumed for the
// paper's protocol when quantizing shrink-back tags in RunTable1,
// calibrated so the op1 column reproduces the published averages.
const table1ScheduleFactor = 1.5
