package cbtc

import (
	"context"
	"fmt"

	"cbtc/internal/core"
	"cbtc/internal/stats"
	"cbtc/internal/workload"
)

// Table1Params configures the reproduction of the paper's Table 1.
// The zero value reproduces the paper's setup: 100 networks of 100 nodes
// in a 1500×1500 region with maximum radius 500.
type Table1Params struct {
	Networks  int
	Nodes     int
	Width     float64
	Height    float64
	MaxRadius float64
	Seed      uint64
}

func (p Table1Params) withDefaults() Table1Params {
	if p.Networks == 0 {
		p.Networks = 100
	}
	if p.Nodes == 0 {
		p.Nodes = workload.PaperNodes
	}
	if p.Width == 0 {
		p.Width = workload.PaperRegionW
	}
	if p.Height == 0 {
		p.Height = workload.PaperRegionH
	}
	if p.MaxRadius == 0 {
		p.MaxRadius = workload.PaperRadius
	}
	return p
}

// placements draws the random networks of the experiment, one per seed
// offset, so every driver shares the same sampling rule.
func (p Table1Params) placements() [][]Point {
	out := make([][]Point, p.Networks)
	for i := range out {
		out[i] = workload.Uniform(workload.Rand(p.Seed+uint64(i)), p.Nodes, p.Width, p.Height)
	}
	return out
}

// Table1Column is one column of the paper's Table 1: an optimization
// stack at a cone angle, plus the values the paper reports for it.
type Table1Column struct {
	// Name is the column label, matching the paper's header.
	Name string
	// Alpha is the cone angle; 0 marks the max-power baseline.
	Alpha float64
	// Opts is the optimization stack (ignored for the baseline).
	Opts core.Options
	// MaxPower marks the no-topology-control baseline column.
	MaxPower bool
	// PaperDegree and PaperRadius are the values published in Table 1.
	PaperDegree, PaperRadius float64
}

// Table1Columns returns the eight columns of the paper's Table 1, in
// print order (op1 = shrink-back, op2 = asymmetric edge removal,
// op3 = pairwise edge removal).
func Table1Columns() []Table1Column {
	op1 := core.Options{ShrinkBack: true}
	op12 := core.Options{ShrinkBack: true, AsymmetricRemoval: true}
	all56 := core.Options{ShrinkBack: true, PairwiseRemoval: true}
	all23 := core.Options{ShrinkBack: true, AsymmetricRemoval: true, PairwiseRemoval: true}
	return []Table1Column{
		{Name: "basic α=5π/6", Alpha: AlphaConnectivity, PaperDegree: 12.3, PaperRadius: 436.8},
		{Name: "basic α=2π/3", Alpha: AlphaAsymmetric, PaperDegree: 15.4, PaperRadius: 457.4},
		{Name: "op1 α=5π/6", Alpha: AlphaConnectivity, Opts: op1, PaperDegree: 10.3, PaperRadius: 373.7},
		{Name: "op1 α=2π/3", Alpha: AlphaAsymmetric, Opts: op1, PaperDegree: 12.8, PaperRadius: 398.1},
		{Name: "op1+op2 α=2π/3", Alpha: AlphaAsymmetric, Opts: op12, PaperDegree: 7.0, PaperRadius: 276.8},
		{Name: "all α=5π/6", Alpha: AlphaConnectivity, Opts: all56, PaperDegree: 3.6, PaperRadius: 155.9},
		{Name: "all α=2π/3", Alpha: AlphaAsymmetric, Opts: all23, PaperDegree: 3.6, PaperRadius: 160.6},
		{Name: "max power", MaxPower: true, PaperDegree: 25.6, PaperRadius: 500},
	}
}

// Table1Cell is a measured (degree, radius) pair for one column.
type Table1Cell struct {
	AvgDegree float64
	AvgRadius float64
}

// Table1Result is the measured reproduction of Table 1.
type Table1Result struct {
	Params  Table1Params
	Columns []Table1Column
	// Cells holds the per-column measurements averaged over all
	// generated networks, aligned with Columns.
	Cells []Table1Cell
}

// RunTable1 regenerates the paper's Table 1 with a background context;
// see RunTable1Context.
func RunTable1(params Table1Params) (*Table1Result, error) {
	return RunTable1Context(context.Background(), params)
}

// RunTable1Context regenerates the paper's Table 1: it draws
// Params.Networks random networks, runs every optimization stack on
// each, and averages the degree and radius statistics.
//
// The networks are independent, so the experiment is embarrassingly
// parallel: one Engine per cone angle pushes all placements through
// Engine.RunBatch (the growing phase is shared across the stacks at the
// same α, as it does not depend on the optimizations), and the
// optimization stacks are then derived per network on the same worker
// pool. Cancelling ctx aborts the run.
func RunTable1Context(ctx context.Context, params Table1Params) (*Table1Result, error) {
	p := params.withDefaults()
	placements := p.placements()
	cols := Table1Columns()

	// The paper's simulation ran the discrete protocol of Figure 1, whose
	// shrink-back operates on whole power levels of the growth schedule;
	// the engines quantize the oracle's exact tags to a schedule of the
	// same granularity so op1 matches. The factor is calibrated against
	// the published op1 row (doubling is slightly too coarse, exact tags
	// slightly too fine; see EXPERIMENTS.md).
	engines := map[float64]*Engine{}
	basics := map[float64][]*Result{}
	var anyEngine *Engine
	for _, col := range cols {
		if col.MaxPower {
			continue
		}
		if _, ok := engines[col.Alpha]; ok {
			continue
		}
		eng, err := New(
			WithMaxRadius(p.MaxRadius),
			WithAlpha(col.Alpha),
			WithShrinkBackSchedule(table1ScheduleFactor),
		)
		if err != nil {
			return nil, err
		}
		batch, err := eng.RunBatch(ctx, placements)
		if err != nil {
			return nil, err
		}
		engines[col.Alpha] = eng
		basics[col.Alpha] = batch
		anyEngine = eng
	}

	// Derive every optimization stack from the shared executions, still
	// fanned across the worker pool. Per-network cells are accumulated
	// into fixed slots so the averaging order — and hence the result —
	// is deterministic regardless of scheduling.
	cells := make([][]Table1Cell, len(cols))
	for ci := range cells {
		cells[ci] = make([]Table1Cell, p.Networks)
	}
	plan := planShards(0, p.Networks)
	// The only nested parallelism in the fan-out is MaxPower's G_R
	// build; pin a copy of the engine to the plan's inner budget so the
	// shard pool isn't multiplied by GOMAXPROCS radius queries.
	mpEngine := anyEngine.withWorkers(plan.inner)
	err := plan.run(ctx, p.Networks, func(ctx context.Context, net int) error {
		for ci, col := range cols {
			switch {
			case col.MaxPower:
				res, err := mpEngine.MaxPower(placements[net])
				if err != nil {
					return err
				}
				cells[ci][net] = Table1Cell{AvgDegree: res.AvgDegree, AvgRadius: res.AvgRadius}
			case col.Opts == (core.Options{}):
				base := basics[col.Alpha][net]
				cells[ci][net] = Table1Cell{AvgDegree: base.AvgDegree, AvgRadius: base.AvgRadius}
			default:
				topo, err := core.BuildTopology(basics[col.Alpha][net].topo.Exec, col.Opts)
				if err != nil {
					return err
				}
				s := topo.Summarize()
				cells[ci][net] = Table1Cell{AvgDegree: s.AvgDegree, AvgRadius: s.AvgRadius}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Table1Result{Params: p, Columns: cols, Cells: make([]Table1Cell, len(cols))}
	for ci := range cols {
		var degree, radius stats.Sample
		for net := 0; net < p.Networks; net++ {
			degree.Add(cells[ci][net].AvgDegree)
			radius.Add(cells[ci][net].AvgRadius)
		}
		res.Cells[ci] = Table1Cell{
			AvgDegree: degree.Mean(),
			AvgRadius: radius.Mean(),
		}
	}
	return res, nil
}

// Render formats the result as an aligned paper-vs-measured table.
func (t *Table1Result) Render() string {
	tb := stats.NewTable("column", "degree(paper)", "degree(ours)", "radius(paper)", "radius(ours)")
	for i, col := range t.Columns {
		tb.AddRow(col.Name,
			stats.F(col.PaperDegree, 1), stats.F(t.Cells[i].AvgDegree, 1),
			stats.F(col.PaperRadius, 1), stats.F(t.Cells[i].AvgRadius, 1))
	}
	return tb.String()
}

// Panel is one of the eight topology snapshots of the paper's Figure 6.
type Panel struct {
	// Key is the paper's panel letter, "a" through "h".
	Key string
	// Title is the paper's caption for the panel.
	Title string
	// Result holds the topology for the panel.
	Result *Result
}

// Figure6Panels regenerates the paper's Figure 6 with a background
// context; see Figure6PanelsContext.
func Figure6Panels(seed uint64) ([]Panel, error) {
	return Figure6PanelsContext(context.Background(), seed)
}

// Figure6PanelsContext regenerates the paper's Figure 6 on one random
// network drawn with the paper's parameters: the same 100-node placement
// run through (a) no topology control, (b,c) the basic algorithm at 2π/3
// and 5π/6, (d,e) with shrink-back, (f) shrink-back plus asymmetric edge
// removal at 2π/3, and (g,h) all applicable optimizations. The eight
// independent configurations run on the batch worker pool.
func Figure6PanelsContext(ctx context.Context, seed uint64) ([]Panel, error) {
	pos := workload.PaperNetwork(seed)
	base := Config{MaxRadius: workload.PaperRadius}

	cfg23 := base
	cfg23.Alpha = AlphaAsymmetric
	cfg56 := base
	cfg56.Alpha = AlphaConnectivity

	shrink := func(c Config) Config { c.ShrinkBack = true; return c }
	asym := func(c Config) Config { c.AsymmetricRemoval = true; return c }
	pairwise := func(c Config) Config { c.PairwiseRemoval = true; return c }

	specs := []struct {
		key, title string
		cfg        Config
		maxPower   bool
	}{
		{"a", "no topology control", base, true},
		{"b", "α=2π/3, basic algorithm", cfg23, false},
		{"c", "α=5π/6, basic algorithm", cfg56, false},
		{"d", "α=2π/3 with shrink-back", shrink(cfg23), false},
		{"e", "α=5π/6 with shrink-back", shrink(cfg56), false},
		{"f", "α=2π/3 with shrink-back and asymmetric edge removal", asym(shrink(cfg23)), false},
		{"g", "α=5π/6 with all applicable optimizations", pairwise(shrink(cfg56)), false},
		{"h", "α=2π/3 with all optimizations", pairwise(asym(shrink(cfg23))), false},
	}
	panels := make([]Panel, len(specs))
	plan := planShards(0, len(specs))
	err := plan.run(ctx, len(specs), func(ctx context.Context, i int) error {
		sp := specs[i]
		// Panel engines run inside the shard pool: give each the plan's
		// inner budget, not a full GOMAXPROCS pool of its own.
		eng, err := New(WithConfig(sp.cfg), WithWorkers(plan.inner))
		if err != nil {
			return fmt.Errorf("panel %s: %w", sp.key, err)
		}
		var res *Result
		if sp.maxPower {
			res, err = eng.MaxPower(pos)
		} else {
			res, err = eng.Run(ctx, pos)
		}
		if err != nil {
			return fmt.Errorf("panel %s: %w", sp.key, err)
		}
		panels[i] = Panel{Key: sp.key, Title: sp.title, Result: res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return panels, nil
}

// table1ScheduleFactor is the power-growth factor assumed for the
// paper's protocol when quantizing shrink-back tags in RunTable1,
// calibrated so the op1 column reproduces the published averages.
const table1ScheduleFactor = 1.5
