package cbtc

import (
	"context"
	"fmt"
	"math"

	"cbtc/internal/core"
	"cbtc/internal/graph"
	"cbtc/internal/netsim"
	"cbtc/internal/proto"
	"cbtc/internal/radio"
)

// Engine is a validated, reusable CBTC(α) executor. It is built once by
// New from functional options, is immutable afterwards, and is safe for
// concurrent use: any number of goroutines may call Run, Simulate,
// MaxPower, Baseline and RunBatch on the same Engine simultaneously —
// and any number of Sessions (NewSession) and Fleets (NewFleet) may
// evolve concurrently on top of it.
type Engine struct {
	cfg   Config
	model radio.Model // nominal power-law model (the hardware curve)
	// prop is the propagation authority every executor consults: the
	// nominal model itself, or a radio.LogDistance wrapping it when
	// WithShadowing installed per-link shadowing. prop.Nominal() == model
	// always holds.
	prop     radio.Propagation
	opts     core.Options
	schedule []float64 // non-nil: quantize discovery tags to these levels
	// scheduleFactor is the WithShrinkBackSchedule factor the schedule was
	// built from (0 = exact tags); it is part of the checkpoint config
	// fingerprint, since quantization changes the serialized fixed point.
	scheduleFactor float64
	workers        int // worker budget for Run/RunBatch/MaxPower/Session repair/Fleets; 0 = GOMAXPROCS

	// shadowing (WithShadowing); part of the checkpoint fingerprint.
	shadowed    bool
	shadowSigma float64
	shadowSeed  uint64
	// battery (WithBattery); part of the checkpoint fingerprint.
	battery      bool
	batteryCap   float64
	batteryDrain float64
}

// New builds an Engine from functional options, validating the combined
// configuration once. At minimum the maximum radius must be supplied
// (WithMaxRadius or WithConfig); every violation is reported as an error
// wrapping ErrBadConfig.
func New(options ...Option) (*Engine, error) {
	var s settings
	s.apply(options)
	return newEngine(s)
}

// apply folds options into the accumulated settings, resolving the
// AllOptimizations marker the way New always has: after every other
// option, so it composes with WithAlpha in either order.
func (s *settings) apply(options []Option) {
	for _, opt := range options {
		opt(s)
	}
	if s.allOpts {
		s.cfg = s.cfg.AllOptimizations()
		s.allOpts = false
	}
}

// newEngine validates accumulated settings into an immutable Engine —
// the shared back half of New and Engine.derive.
func newEngine(s settings) (*Engine, error) {
	if s.model != nil {
		if s.usedPathLoss || s.usedMaxRadius || s.usedConfig {
			return nil, fmt.Errorf("%w: WithRadioModel cannot be combined with WithPathLoss, WithMaxRadius, or a WithConfig carrying radio fields", ErrBadConfig)
		}
		if err := s.model.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		s.cfg.MaxRadius = s.model.MaxRadius
		s.cfg.PathLossExponent = s.model.Exponent
	}
	cfg, m, opts, err := s.cfg.resolve()
	if err != nil {
		return nil, err
	}
	if s.model != nil {
		m = *s.model // carry the reference loss; radius/exponent already agree
	} else if s.refLoss != 0 && s.refLoss != m.RefLoss {
		m.RefLoss = s.refLoss // derive carry-through of a non-unit reference loss
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
	}
	if s.workers < 0 {
		return nil, fmt.Errorf("%w: negative worker count %d", ErrBadConfig, s.workers)
	}
	eng := &Engine{cfg: cfg, model: m, prop: m, opts: opts, workers: s.workers}
	if s.useShadow {
		ld, err := radio.NewLogDistance(m, s.shadowSigma, s.shadowSeed)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		eng.prop = ld
		eng.shadowed = true
		eng.shadowSigma = s.shadowSigma
		eng.shadowSeed = s.shadowSeed
	}
	if s.useBattery {
		if math.IsNaN(s.batteryCap) || math.IsInf(s.batteryCap, 0) || s.batteryCap <= 0 {
			return nil, fmt.Errorf("%w: battery capacity %v must be positive and finite", ErrBadConfig, s.batteryCap)
		}
		if math.IsNaN(s.batteryDrain) || math.IsInf(s.batteryDrain, 0) || s.batteryDrain < 0 {
			return nil, fmt.Errorf("%w: battery drain %v must be non-negative and finite", ErrBadConfig, s.batteryDrain)
		}
		if cfg.PairwiseRemoval {
			return nil, fmt.Errorf("%w: WithBattery requires the incremental session stack and cannot be combined with pairwise edge removal", ErrBadConfig)
		}
		eng.battery = true
		eng.batteryCap = s.batteryCap
		eng.batteryDrain = s.batteryDrain
	}
	if s.scheduleFactor != 0 {
		inc, err := radio.Multiplicative(s.scheduleFactor)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		schedule, err := radio.Schedule(m.MaxPower()/1024, m.MaxPower(), inc)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		eng.schedule = schedule
		eng.scheduleFactor = s.scheduleFactor
	}
	return eng, nil
}

// derive builds a new Engine layered on this one: the engine's resolved
// configuration is reopened as settings and the given options applied on
// top, revalidated as a whole. With no options the engine itself is
// returned. Fleets use it to give heterogeneous members their own option
// stacks without losing the base engine's defaults.
func (e *Engine) derive(options ...Option) (*Engine, error) {
	if len(options) == 0 {
		return e, nil
	}
	s := settings{
		cfg:            e.cfg,
		scheduleFactor: e.scheduleFactor,
		workers:        e.workers,
		refLoss:        e.model.RefLoss,
		useShadow:      e.shadowed,
		shadowSigma:    e.shadowSigma,
		shadowSeed:     e.shadowSeed,
		useBattery:     e.battery,
		batteryCap:     e.batteryCap,
		batteryDrain:   e.batteryDrain,
	}
	s.apply(options)
	return newEngine(s)
}

// Config returns the fully-resolved configuration the Engine runs with
// (defaults filled in, pairwise policy resolved).
func (e *Engine) Config() Config { return e.cfg }

// RadioModel returns the nominal power-law radio model the Engine runs
// with — the hardware curve, before any per-link shadowing.
func (e *Engine) RadioModel() RadioModel { return e.model }

// Propagation returns the propagation authority the Engine consults for
// every link decision: the nominal model, or the shadowed log-distance
// model when WithShadowing is in effect.
func (e *Engine) Propagation() radio.Propagation { return e.prop }

// withWorkers returns a copy of the engine pinned to a different worker
// budget. Every executor is worker-count invariant, so the copy is
// interchangeable with the original except for scheduling; the
// experiment fan-outs use it to hand shard-pool inner budgets to nested
// runs.
func (e *Engine) withWorkers(n int) *Engine {
	c := *e
	c.workers = n
	return &c
}

// Alpha returns the cone angle the Engine runs with.
func (e *Engine) Alpha() float64 { return e.cfg.Alpha }

// Run executes CBTC(α) on the placement under the exact minimal-power
// semantics of the paper's analysis and applies the engine's
// optimization stack. The per-node cone tests are fanned across the
// engine's worker pool (WithWorkers; GOMAXPROCS by default) — the result
// is identical at every worker count. Cancelling ctx aborts the
// computation with ctx.Err().
func (e *Engine) Run(ctx context.Context, nodes []Point) (*Result, error) {
	return e.run(ctx, nodes, e.workers)
}

// run is Run with an explicit worker count; RunBatch pins it to 1 so
// batch-level parallelism is not multiplied by per-run parallelism.
func (e *Engine) run(ctx context.Context, nodes []Point, workers int) (*Result, error) {
	exec, err := core.RunParallel(ctx, nodes, e.prop, e.cfg.Alpha, workers)
	if err != nil {
		return nil, err
	}
	if e.schedule != nil {
		exec = core.QuantizeTags(exec, e.schedule)
	}
	topo, err := core.BuildTopology(exec, e.opts)
	if err != nil {
		return nil, err
	}
	return newResult(nodes, e.model, topo, workers), nil
}

// Simulate runs the distributed Hello/Ack protocol of the paper's
// Figure 1 on a discrete-event radio simulator and applies the engine's
// optimization stack to the outcome. Nodes act only on message powers
// and measured angles, exactly as the paper assumes. Cancelling ctx
// stops the event loop and returns ctx.Err().
func (e *Engine) Simulate(ctx context.Context, nodes []Point, sim SimOptions) (*Result, error) {
	exec, err := e.protoExec(ctx, nodes, sim)
	if err != nil {
		return nil, err
	}
	topo, err := core.BuildTopology(exec, e.opts)
	if err != nil {
		return nil, err
	}
	return newResult(nodes, e.model, topo, e.workers), nil
}

// protoExec runs the distributed Figure 1 protocol on the discrete-event
// radio simulator and returns the finished growing-phase execution — the
// shared front half of Simulate and NewProtocolSession.
func (e *Engine) protoExec(ctx context.Context, nodes []Point, sim SimOptions) (*core.Execution, error) {
	simOpts := netsim.Options{
		Model:    e.prop,
		Latency:  sim.Latency,
		Jitter:   sim.Jitter,
		DropProb: sim.DropProb,
		DupProb:  sim.DupProb,
		AoANoise: sim.AoANoise,
		Seed:     sim.Seed,
	}
	if simOpts.Latency == 0 {
		simOpts.Latency = 1
	}
	pcfg := proto.Config{
		Alpha:       e.cfg.Alpha,
		P0:          sim.InitialPower,
		AsymRemoval: e.cfg.AsymmetricRemoval,
	}
	if sim.IncreaseFactor != 0 {
		inc, err := radio.Multiplicative(sim.IncreaseFactor)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		pcfg.Increase = inc
	}
	exec, _, err := proto.RunCBTCContext(ctx, nodes, simOpts, pcfg)
	if err != nil {
		return nil, err
	}
	return exec, nil
}

// MaxPower returns the Result of using no topology control at all:
// every node transmits at maximum power (the paper's baseline column in
// Table 1). The G_R radius queries are fanned across the engine's worker
// pool. The engine's optimization stack does not apply.
func (e *Engine) MaxPower(nodes []Point) (*Result, error) {
	m := e.model
	gr := core.MaxPowerGraphParallel(nodes, e.prop, e.workers)
	radii := make([]float64, len(nodes))
	powers := make([]float64, len(nodes))
	boundary := make([]bool, len(nodes))
	for i := range nodes {
		radii[i] = m.MaxRadius // the baseline transmits at R regardless
		powers[i] = m.MaxPower()
	}
	return &Result{
		G:         gr,
		GR:        gr,
		Pos:       append([]Point(nil), nodes...),
		Radii:     radii,
		Powers:    powers,
		Boundary:  boundary,
		AvgDegree: graph.AvgDegree(gr),
		AvgRadius: m.MaxRadius,
		model:     m,
	}, nil
}
