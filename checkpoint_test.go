package cbtc

import (
	"bytes"
	"context"
	"errors"
	"math/rand/v2"
	"reflect"
	"sync/atomic"
	"testing"

	"cbtc/internal/workload"
)

// checkpointStacks are the option stacks the durability layer is gated
// on: the basic algorithm, the per-node-local optimizations (incremental
// sessions), the pairwise stack (non-incremental sessions), the
// asymmetric-removal regime, and tag quantization.
var checkpointStacks = []struct {
	name string
	opts []Option
}{
	{"basic", []Option{WithMaxRadius(500)}},
	{"shrink-back", []Option{WithMaxRadius(500), WithShrinkBack()}},
	{"all-ops", []Option{WithMaxRadius(500), WithAllOptimizations()}},
	{"asym-2pi3", []Option{WithMaxRadius(500), WithAlpha(AlphaAsymmetric), WithShrinkBack(), WithAsymmetricRemoval()}},
	{"quantized", []Option{WithMaxRadius(500), WithShrinkBack(), WithShrinkBackSchedule(1.5)}},
}

// requireSessionsIdentical asserts two sessions expose identical state:
// same snapshot graphs (G and the ground-truth G_R), radii, powers,
// liveness, statistics — and, for incremental sessions, identical
// maintained internal graphs including N_α.
func requireSessionsIdentical(t *testing.T, a, b *Session) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("id space %d != %d", a.Len(), b.Len())
	}
	for id := 0; id < a.Len(); id++ {
		if a.Alive(id) != b.Alive(id) {
			t.Fatalf("node %d liveness %v != %v", id, a.Alive(id), b.Alive(id))
		}
		if a.Position(id) != b.Position(id) {
			t.Fatalf("node %d position %v != %v", id, a.Position(id), b.Position(id))
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats %+v != %+v", a.Stats(), b.Stats())
	}
	if a.incremental != b.incremental {
		t.Fatalf("incremental %v != %v", a.incremental, b.incremental)
	}
	if a.incremental {
		if !a.nalpha.Equal(b.nalpha) {
			t.Fatal("maintained N_α differs")
		}
		if !a.g.Equal(b.g) {
			t.Fatal("maintained G differs")
		}
		if !a.gr.Equal(b.gr) {
			t.Fatal("maintained G_R differs")
		}
	}
	sa, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !sa.G.Equal(sb.G) {
		t.Fatal("snapshot G differs")
	}
	if !sa.GR.Equal(sb.GR) {
		t.Fatal("snapshot G_R differs")
	}
	if !reflect.DeepEqual(sa.Radii, sb.Radii) || !reflect.DeepEqual(sa.Powers, sb.Powers) {
		t.Fatal("snapshot radii/powers differ")
	}
	if !reflect.DeepEqual(sa.Boundary, sb.Boundary) {
		t.Fatal("snapshot boundary flags differ")
	}
}

// TestSessionCheckpointRoundTrip is the tentpole gate: across every
// option stack, a session that has seen a random event history
// checkpoints, restores edge-identically (including G_R), still matches
// a fresh run, and then evolves byte-identically to the original under
// the same continued event stream.
func TestSessionCheckpointRoundTrip(t *testing.T) {
	for _, st := range checkpointStacks {
		st := st
		t.Run(st.name, func(t *testing.T) {
			eng, err := New(st.opts...)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := eng.NewSession(context.Background(), someNetwork(21, 40))
			if err != nil {
				t.Fatal(err)
			}
			rng := workload.Rand(97)
			for step := 0; step < 6; step++ {
				if _, err := sess.ApplyBatch(randomBatch(rng, sess, 4, 1500)); err != nil {
					t.Fatal(err)
				}
			}

			var buf bytes.Buffer
			if err := sess.Checkpoint(&buf); err != nil {
				t.Fatal(err)
			}
			restored, err := eng.RestoreSession(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			requireSessionsIdentical(t, sess, restored)
			requireSessionMatchesFreshRun(t, eng, restored)

			// Continue both copies under the identical event stream: every
			// tick must produce byte-identical reports and observations.
			for step := 0; step < 6; step++ {
				batch := randomBatch(rng, sess, 4, 1500)
				repA, tsA, errA := sess.Tick(batch)
				repB, tsB, errB := restored.Tick(batch)
				if errA != nil || errB != nil {
					t.Fatalf("tick %d: %v / %v", step, errA, errB)
				}
				if !reflect.DeepEqual(repA, repB) {
					t.Fatalf("tick %d: reports diverge:\n%+v\n%+v", step, repA, repB)
				}
				if tsA != tsB {
					t.Fatalf("tick %d: observations diverge: %+v != %+v", step, tsA, tsB)
				}
			}
			requireSessionsIdentical(t, sess, restored)
			requireSessionMatchesFreshRun(t, eng, restored)
		})
	}
}

// TestSessionCheckpointConcurrent checkpoints a session while another
// goroutine keeps applying events. Every checkpoint must decode into a
// consistent session that matches a fresh run over its own live
// placement — the COW-snapshot contract of Checkpoint (and, under
// -race, proof that encoding off-lock shares no mutable state).
func TestSessionCheckpointConcurrent(t *testing.T) {
	eng, err := New(WithMaxRadius(500), WithShrinkBack())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.NewSession(context.Background(), someNetwork(3, 60))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		rng := workload.Rand(5)
		for i := 0; i < 40; i++ {
			if _, err := sess.ApplyBatch(randomBatch(rng, sess, 4, 1500)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 10; i++ {
		var buf bytes.Buffer
		if err := sess.Checkpoint(&buf); err != nil {
			t.Fatal(err)
		}
		restored, err := eng.RestoreSession(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		requireSessionMatchesFreshRun(t, eng, restored)
	}
	<-done
}

// TestCheckpointConfigMismatch: restoring under any different engine
// configuration is refused with ErrConfigMismatch, for sessions and
// fleets alike.
func TestCheckpointConfigMismatch(t *testing.T) {
	engA, err := New(WithMaxRadius(500), WithShrinkBack())
	if err != nil {
		t.Fatal(err)
	}
	others := [][]Option{
		{WithMaxRadius(500)},                                                // different stack
		{WithMaxRadius(400), WithShrinkBack()},                              // different radius
		{WithMaxRadius(500), WithShrinkBack(), WithAlpha(2.0)},              // different α
		{WithMaxRadius(500), WithShrinkBack(), WithPathLoss(4)},             // different model
		{WithMaxRadius(500), WithShrinkBack(), WithShrinkBackSchedule(1.5)}, // quantized
	}

	sess, err := engA.NewSession(context.Background(), someNetwork(9, 30))
	if err != nil {
		t.Fatal(err)
	}
	var sbuf bytes.Buffer
	if err := sess.Checkpoint(&sbuf); err != nil {
		t.Fatal(err)
	}
	fleet, err := engA.NewFleet(context.Background(), FleetConfig{Placements: [][]Point{someNetwork(9, 20), someNetwork(10, 20)}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var fbuf bytes.Buffer
	if err := fleet.Checkpoint(&fbuf); err != nil {
		t.Fatal(err)
	}

	for i, opts := range others {
		engB, err := New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := engB.RestoreSession(bytes.NewReader(sbuf.Bytes())); !errors.Is(err, ErrConfigMismatch) {
			t.Errorf("engine %d session restore: got %v, want ErrConfigMismatch", i, err)
		}
		if _, err := engB.RestoreFleet(bytes.NewReader(fbuf.Bytes())); !errors.Is(err, ErrConfigMismatch) {
			t.Errorf("engine %d fleet restore: got %v, want ErrConfigMismatch", i, err)
		}
	}
	// The producing engine itself restores fine.
	if _, err := engA.RestoreSession(bytes.NewReader(sbuf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if _, err := engA.RestoreFleet(bytes.NewReader(fbuf.Bytes())); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreErrorPaths: hostile and mangled inputs yield the typed
// public errors, never a panic.
func TestRestoreErrorPaths(t *testing.T) {
	eng, err := New(WithMaxRadius(500), WithShrinkBack())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.NewSession(context.Background(), someNetwork(2, 25))
	if err != nil {
		t.Fatal(err)
	}
	var sbuf bytes.Buffer
	if err := sess.Checkpoint(&sbuf); err != nil {
		t.Fatal(err)
	}
	fleet, err := eng.NewFleet(context.Background(), FleetConfig{Placements: [][]Point{someNetwork(4, 15)}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var fbuf bytes.Buffer
	if err := fleet.Checkpoint(&fbuf); err != nil {
		t.Fatal(err)
	}

	if _, err := eng.RestoreSession(bytes.NewReader([]byte("not a checkpoint"))); !errors.Is(err, ErrNotCheckpoint) {
		t.Errorf("garbage: got %v, want ErrNotCheckpoint", err)
	}
	verFlip := bytes.Clone(sbuf.Bytes())
	verFlip[4] ^= 0xff
	if _, err := eng.RestoreSession(bytes.NewReader(verFlip)); !errors.Is(err, ErrCheckpointVersion) {
		t.Errorf("version flip: got %v, want ErrCheckpointVersion", err)
	}
	if _, err := eng.RestoreSession(bytes.NewReader(fbuf.Bytes())); !errors.Is(err, ErrCheckpointKind) {
		t.Errorf("fleet into RestoreSession: got %v, want ErrCheckpointKind", err)
	}
	if _, err := eng.RestoreFleet(bytes.NewReader(sbuf.Bytes())); !errors.Is(err, ErrCheckpointKind) {
		t.Errorf("session into RestoreFleet: got %v, want ErrCheckpointKind", err)
	}
	// Every strict prefix of a valid checkpoint is truncated input.
	for _, cut := range []int{7, 16, sbuf.Len() / 2, sbuf.Len() - 1} {
		if _, err := eng.RestoreSession(bytes.NewReader(sbuf.Bytes()[:cut])); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Errorf("truncated at %d: got %v, want ErrCheckpointCorrupt", cut, err)
		}
	}
	for _, cut := range []int{7, fbuf.Len() / 2, fbuf.Len() - 1} {
		if _, err := eng.RestoreFleet(bytes.NewReader(fbuf.Bytes()[:cut])); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Errorf("fleet truncated at %d: got %v, want ErrCheckpointCorrupt", cut, err)
		}
	}
}

// TestFleetCheckpointRoundTrip is the fleet-level acceptance gate: a
// fleet checkpointed mid-run restores to an identical report, and —
// restored at several worker counts — continues to byte-identical
// reports versus the uninterrupted original.
func TestFleetCheckpointRoundTrip(t *testing.T) {
	sc := workload.Fleet(3, 50, "uniform")
	tick := DriftTick(TickProfile{
		Moves: sc.Moves, Jitter: sc.Jitter,
		JoinProb: sc.JoinProb, LeaveProb: sc.LeaveProb,
		Width: sc.Side, Height: sc.Side,
	})
	eng, err := New(WithMaxRadius(sc.Radius), WithShrinkBack())
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := eng.NewFleet(context.Background(), FleetConfig{Placements: sc.Placements(11), Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.Run(context.Background(), 5, tick); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := fleet.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	repAtCkpt, err := fleet.Report()
	if err != nil {
		t.Fatal(err)
	}
	// The uninterrupted reference: the original fleet keeps running.
	refRep, err := fleet.Run(context.Background(), 5, tick)
	if err != nil {
		t.Fatal(err)
	}
	// Scheduling telemetry measures wall clock and is not carried by
	// checkpoints; everything else must round-trip exactly.
	zeroSched(repAtCkpt)
	zeroSched(refRep)

	for _, w := range []int{0, 1, 3} {
		engW, err := New(WithMaxRadius(sc.Radius), WithShrinkBack(), WithWorkers(w))
		if err != nil {
			t.Fatal(err)
		}
		restored, err := engW.RestoreFleet(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		rep0, err := restored.Report()
		if err != nil {
			t.Fatal(err)
		}
		zeroSched(rep0)
		if !reflect.DeepEqual(rep0, repAtCkpt) {
			t.Fatalf("workers=%d: restored report differs from checkpoint-time report", w)
		}
		rep, err := restored.Run(context.Background(), 5, tick)
		if err != nil {
			t.Fatal(err)
		}
		zeroSched(rep)
		if !reflect.DeepEqual(rep, refRep) {
			t.Fatalf("workers=%d: continued report diverges from uninterrupted run", w)
		}
	}
}

// TestFleetRaggedCheckpointResume pins the determinism invariant across
// the full heterogeneity surface: a mixed oracle+protocol fleet with
// per-member option stacks and tick weights, checkpointed at RAGGED
// per-member clocks (a cancelled run leaves members mid-catch-up),
// restores and continues byte-identically at workers 1, 2 and 8.
func TestFleetRaggedCheckpointResume(t *testing.T) {
	const seed = 41
	ctx := context.Background()
	members := mixedMembers(t, seed)
	sc := workload.Fleet(len(members), 40, "uniform")
	tick := fleetTick(sc)
	eng := fleetEngine(t)

	fleet, err := eng.NewFleet(ctx, FleetConfig{Members: members, Seed: seed, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Cancel partway through the rounds so the clocks freeze at ragged,
	// target-lagging positions.
	cancelCtx, cancel := context.WithCancel(ctx)
	var calls atomic.Int32
	interrupting := func(net, tk int, rng *rand.Rand, s *Session) []Event {
		if calls.Add(1) == 10 {
			cancel()
		}
		return tick(net, tk, rng, s)
	}
	if err := fleet.Advance(cancelCtx, 3, interrupting); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted Advance error = %v, want context.Canceled", err)
	}
	wm := fleet.Watermarks()
	ragged := false
	for _, c := range wm.Members {
		if c.Ticks < c.Target {
			ragged = true
		}
	}
	if !ragged {
		t.Fatal("cancellation left no member behind its target; checkpoint would not be ragged")
	}

	var buf bytes.Buffer
	if err := fleet.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// The uninterrupted reference: the original fleet finishes the
	// remainder plus one more round.
	refRep, err := fleet.Run(ctx, 1, tick)
	if err != nil {
		t.Fatal(err)
	}
	zeroSched(refRep)

	for _, w := range []int{1, 2, 8} {
		engW := fleetEngine(t, WithWorkers(w))
		restored, err := engW.RestoreFleet(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		rwm := restored.Watermarks()
		if !reflect.DeepEqual(rwm, wm) {
			t.Fatalf("workers=%d: restored watermarks %+v != checkpointed %+v", w, rwm, wm)
		}
		rep, err := restored.Run(ctx, 1, tick)
		if err != nil {
			t.Fatal(err)
		}
		zeroSched(rep)
		if !reflect.DeepEqual(rep, refRep) {
			t.Fatalf("workers=%d: resumed report diverges from uninterrupted run", w)
		}
		for i := 0; i < restored.Size(); i++ {
			want, err := fleet.Session(i).Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			got, err := restored.Session(i).Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !got.G.Equal(want.G) || !got.GR.Equal(want.GR) {
				t.Errorf("workers=%d network %d: resumed topology differs", w, i)
			}
		}
	}
}

// TestFleetTickEvents covers the external-ingestion tick: equivalence
// with a Run over the same event schedule, all-or-nothing validation,
// and the batch-count contract.
func TestFleetTickEvents(t *testing.T) {
	placements := [][]Point{someNetwork(31, 30), someNetwork(32, 30)}
	newFleet := func() *Fleet {
		eng, err := New(WithMaxRadius(500), WithShrinkBack())
		if err != nil {
			t.Fatal(err)
		}
		f, err := eng.NewFleet(context.Background(), FleetConfig{Placements: placements, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}

	// A fixed three-tick schedule touching stable ids only. A nil slot
	// skips its member entirely (the clock stands still); an explicit
	// empty batch is a tick with no events.
	schedule := [][][]Event{
		{{JoinEvent(Pt(100, 100))}, {MoveEvent(2, Pt(40, 40))}},
		{{LeaveEvent(0), MoveEvent(3, Pt(700, 700))}, {}},
		{nil, {LeaveEvent(1), JoinEvent(Pt(900, 120))}},
	}

	viaEvents := newFleet()
	for _, batches := range schedule {
		if err := viaEvents.TickEvents(context.Background(), batches); err != nil {
			t.Fatal(err)
		}
	}
	// The skipped slots make the clocks ragged: member 0 ticked twice,
	// member 1 three times.
	wm := viaEvents.Watermarks()
	if wm.Ticks.Min != 2 || wm.Ticks.Max != 3 || wm.Members[0].Ticks != 2 {
		t.Fatalf("ragged watermarks = %+v, want member 0 at 2, member 1 at 3", wm)
	}

	// Per member, the same tick sequence via Run (with the skipped slots
	// removed) must produce the identical report slice.
	perNet := [][][]Event{
		{schedule[0][0], schedule[1][0]},
		{schedule[0][1], schedule[1][1], schedule[2][1]},
	}
	repEvents, err := viaEvents.Report()
	if err != nil {
		t.Fatal(err)
	}
	for net := range placements {
		single, err := newFleet().eng.NewFleet(context.Background(), FleetConfig{
			Members: []MemberSpec{{Placement: placements[net]}},
			Seed:    5,
		})
		if err != nil {
			t.Fatal(err)
		}
		repRun, err := single.Run(context.Background(), len(perNet[net]), func(_, tick int, _ *rand.Rand, _ *Session) []Event {
			return perNet[net][tick]
		})
		if err != nil {
			t.Fatal(err)
		}
		got, want := repEvents.PerNetwork[net], repRun.PerNetwork[0]
		got.Net, got.Sched = 0, MemberSchedStats{}
		want.Sched = MemberSchedStats{}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("network %d: TickEvents slice diverges from Run:\n%+v\n%+v", net, got, want)
		}
	}

	// Validation is all-or-nothing across the whole fleet.
	before, err := viaEvents.Report()
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]Event{{LeaveEvent(10_000)}, {JoinEvent(Pt(1, 1))}}
	if err := viaEvents.TickEvents(context.Background(), bad); !errors.Is(err, ErrBadEvent) {
		t.Fatalf("invalid batch: got %v, want ErrBadEvent", err)
	}
	after, err := viaEvents.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("rejected tick mutated the fleet")
	}
	if err := viaEvents.TickEvents(context.Background(), [][]Event{nil}); !errors.Is(err, ErrBadEvent) {
		t.Fatalf("batch-count mismatch: got %v, want ErrBadEvent", err)
	}
}
