package cbtc

// settings accumulates functional options before New validates them
// into an immutable Engine.
type settings struct {
	cfg            Config
	allOpts        bool
	scheduleFactor float64
	workers        int
}

// Option configures an Engine under construction. Options only record
// intent; New performs all validation, so an invalid combination
// surfaces as a single ErrBadConfig from New.
type Option func(*settings)

// WithConfig seeds every Engine parameter from a legacy Config. It is
// the migration path for code that already assembles Config values;
// options applied after it override individual fields.
func WithConfig(cfg Config) Option {
	return func(s *settings) { s.cfg = cfg }
}

// WithAlpha sets the cone angle in radians. Zero means AlphaConnectivity
// (5π/6); connectivity is only guaranteed for α ≤ 5π/6.
func WithAlpha(alpha float64) Option {
	return func(s *settings) { s.cfg.Alpha = alpha }
}

// WithMaxRadius sets R, the distance reachable at maximum power.
// Required unless supplied through WithConfig.
func WithMaxRadius(r float64) Option {
	return func(s *settings) { s.cfg.MaxRadius = r }
}

// WithPathLoss sets the power-law path-loss exponent n in p(d) = d^n.
// Zero means 2 (free space); realistic terrestrial environments use 2–4.
func WithPathLoss(exponent float64) Option {
	return func(s *settings) { s.cfg.PathLossExponent = exponent }
}

// WithShrinkBack enables optimization 1 (§3.1): after the growing phase
// each node drops trailing discovery-power levels whose removal leaves
// its cone coverage unchanged.
func WithShrinkBack() Option {
	return func(s *settings) { s.cfg.ShrinkBack = true }
}

// WithAsymmetricRemoval enables optimization 2 (§3.2): keep only mutual
// edges instead of the symmetric closure. Requires α ≤ 2π/3; New rejects
// larger angles.
func WithAsymmetricRemoval() Option {
	return func(s *settings) { s.cfg.AsymmetricRemoval = true }
}

// WithPairwiseRemoval enables optimization 3 (§3.3) under the given
// removal policy. Pass PairwiseLengthFiltered for the paper's practical
// rule; the zero policy value means the same default.
func WithPairwiseRemoval(policy PairwisePolicy) Option {
	return func(s *settings) {
		s.cfg.PairwiseRemoval = true
		s.cfg.PairwisePolicy = policy
	}
}

// WithAllOptimizations enables every optimization applicable at the
// engine's cone angle — the paper's "with all opt" configuration. It is
// applied at New time, after all other options, so it composes with
// WithAlpha in either order.
func WithAllOptimizations() Option {
	return func(s *settings) { s.allOpts = true }
}

// WithShrinkBackSchedule quantizes discovery-power tags to the discrete
// broadcast schedule p₀·factor^k (p₀ = MaxPower/1024), matching the
// power levels a real protocol run would use. The oracle's exact tags
// make shrink-back slightly too fine-grained compared to the paper's
// simulation; factor 1.5 reproduces the published Table 1 op1 row.
// Factor must exceed 1.
func WithShrinkBackSchedule(factor float64) Option {
	return func(s *settings) { s.scheduleFactor = factor }
}

// WithWorkers fixes the number of worker goroutines Engine.RunBatch
// fans placements across. Zero (the default) means GOMAXPROCS; one
// yields a deterministic serial batch.
func WithWorkers(n int) Option {
	return func(s *settings) { s.workers = n }
}
