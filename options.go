package cbtc

import "cbtc/internal/radio"

// settings accumulates functional options before New validates them
// into an immutable Engine.
type settings struct {
	cfg            Config
	allOpts        bool
	scheduleFactor float64
	workers        int

	// model is the explicit nominal radio model from WithRadioModel; nil
	// means derive it from the Config radio fields the legacy way. The
	// used* flags record which surface supplied radio parameters so New
	// can reject conflicting combinations with one ErrBadConfig.
	model         *radio.Model
	usedPathLoss  bool
	usedMaxRadius bool
	usedConfig    bool
	// refLoss carries a non-unit reference loss through Engine.derive,
	// where the base radio is reopened as Config fields (which cannot
	// express it). Zero means "whatever resolve produces".
	refLoss float64

	// shadowing (WithShadowing)
	useShadow   bool
	shadowSigma float64
	shadowSeed  uint64

	// battery (WithBattery)
	useBattery   bool
	batteryCap   float64
	batteryDrain float64
}

// Option configures an Engine under construction. Options only record
// intent; New performs all validation, so an invalid combination
// surfaces as a single ErrBadConfig from New.
type Option func(*settings)

// WithConfig seeds every Engine parameter from a legacy Config. It is
// the migration path for code that already assembles Config values;
// options applied after it override individual fields.
func WithConfig(cfg Config) Option {
	return func(s *settings) {
		s.cfg = cfg
		if cfg.MaxRadius != 0 || cfg.PathLossExponent != 0 {
			s.usedConfig = true
		}
	}
}

// WithAlpha sets the cone angle in radians. Zero means AlphaConnectivity
// (5π/6); connectivity is only guaranteed for α ≤ 5π/6.
func WithAlpha(alpha float64) Option {
	return func(s *settings) { s.cfg.Alpha = alpha }
}

// WithMaxRadius sets R, the distance reachable at maximum power.
// Required unless the radio is supplied through WithRadioModel or
// WithConfig.
//
// Deprecated: new code should describe the radio with
// WithRadioModel(RadioModel{...}); WithMaxRadius(r) is equivalent to
// WithRadioModel with Exponent 2 (or the WithPathLoss value) and
// RefLoss 1. The shim remains fully supported but cannot be combined
// with WithRadioModel.
func WithMaxRadius(r float64) Option {
	return func(s *settings) {
		s.cfg.MaxRadius = r
		s.usedMaxRadius = true
	}
}

// WithPathLoss sets the power-law path-loss exponent n in p(d) = d^n.
// Zero means 2 (free space); realistic terrestrial environments use 2–4.
//
// Deprecated: new code should describe the radio with
// WithRadioModel(RadioModel{...}), which also exposes the reference
// loss. The shim remains fully supported but cannot be combined with
// WithRadioModel.
func WithPathLoss(exponent float64) Option {
	return func(s *settings) {
		s.cfg.PathLossExponent = exponent
		s.usedPathLoss = true
	}
}

// RadioModel is the nominal power-law radio model: reaching distance d
// costs power RefLoss·d^Exponent, and MaxRadius is the distance
// reachable at maximum power. It aliases the internal propagation type
// so callers outside the module can construct one for WithRadioModel;
// New validates the fields (Exponent ≥ 1, positive finite MaxRadius and
// RefLoss) and rejects bad values with ErrBadConfig.
type RadioModel = radio.Model

// WithRadioModel installs the nominal power-law radio model wholesale —
// exponent, maximum radius and reference loss — replacing the piecemeal
// WithMaxRadius/WithPathLoss surface. Combining it with those options
// (or with a WithConfig carrying radio fields) is a configuration
// conflict New rejects with ErrBadConfig.
func WithRadioModel(m RadioModel) Option {
	return func(s *settings) {
		mc := m
		s.model = &mc
	}
}

// WithShadowing replaces the uniform power law with a deterministic
// log-distance model: each link (u, v) carries a shadowing term in
// [−sigmaDB, +sigmaDB] decibels hashed from (seed, u, v), perturbing the
// power the link needs. The nominal model (WithRadioModel or the legacy
// radio options) remains the hardware curve — maximum power, schedules
// and node-side distance estimation still derive from it. Zero sigmaDB
// is valid and degenerates to the nominal law.
func WithShadowing(sigmaDB float64, seed uint64) Option {
	return func(s *settings) {
		s.useShadow = true
		s.shadowSigma = sigmaDB
		s.shadowSeed = seed
	}
}

// WithBattery gives every node a battery of the given capacity (energy
// units) and enables per-tick drain in Sessions and Fleets: each tick a
// live node is charged drain × p(radius) — its transmit power at the
// installed broadcast radius scaled by the drain coefficient — and a
// node whose battery empties dies (Sessions surface it via Depleted;
// LifetimeTick converts deaths into Leave events). Capacity must be
// positive and drain non-negative; battery accounting requires the
// incremental session stack, so combining it with pairwise edge removal
// is rejected by New.
func WithBattery(capacity, drain float64) Option {
	return func(s *settings) {
		s.useBattery = true
		s.batteryCap = capacity
		s.batteryDrain = drain
	}
}

// WithShrinkBack enables optimization 1 (§3.1): after the growing phase
// each node drops trailing discovery-power levels whose removal leaves
// its cone coverage unchanged.
func WithShrinkBack() Option {
	return func(s *settings) { s.cfg.ShrinkBack = true }
}

// WithAsymmetricRemoval enables optimization 2 (§3.2): keep only mutual
// edges instead of the symmetric closure. Requires α ≤ 2π/3; New rejects
// larger angles.
func WithAsymmetricRemoval() Option {
	return func(s *settings) { s.cfg.AsymmetricRemoval = true }
}

// WithPairwiseRemoval enables optimization 3 (§3.3) under the given
// removal policy. Pass PairwiseLengthFiltered for the paper's practical
// rule; the zero policy value means the same default.
func WithPairwiseRemoval(policy PairwisePolicy) Option {
	return func(s *settings) {
		s.cfg.PairwiseRemoval = true
		s.cfg.PairwisePolicy = policy
	}
}

// WithAllOptimizations enables every optimization applicable at the
// engine's cone angle — the paper's "with all opt" configuration. It is
// applied at New time, after all other options, so it composes with
// WithAlpha in either order.
func WithAllOptimizations() Option {
	return func(s *settings) { s.allOpts = true }
}

// WithShrinkBackSchedule quantizes discovery-power tags to the discrete
// broadcast schedule p₀·factor^k (p₀ = MaxPower/1024), matching the
// power levels a real protocol run would use. The oracle's exact tags
// make shrink-back slightly too fine-grained compared to the paper's
// simulation; factor 1.5 reproduces the published Table 1 op1 row.
// Factor must exceed 1.
func WithShrinkBackSchedule(factor float64) Option {
	return func(s *settings) { s.scheduleFactor = factor }
}

// WithWorkers fixes the number of worker goroutines Engine.RunBatch
// fans placements across. Zero (the default) means GOMAXPROCS; one
// yields a deterministic serial batch.
func WithWorkers(n int) Option {
	return func(s *settings) { s.workers = n }
}
