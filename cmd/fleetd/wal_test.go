package main

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cbtc/internal/chaos"
)

func walPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "fleet.ckpt.wal")
}

func walRecs(n int) []walRecord {
	recs := make([]walRecord, n)
	for i := range recs {
		recs[i] = walRecord{Nets: []walBatch{
			{Net: 0, Tick: i + 1, Events: []wireEvent{{Op: "join", Net: 0, X: float64(i), Y: 1}}},
			{Net: 1, Tick: i + 1, Events: []wireEvent{{Op: "move", Net: 1, ID: i, X: 2, Y: 3}}},
		}}
	}
	return recs
}

func TestWALRoundTrip(t *testing.T) {
	path := walPath(t)
	w, recs, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log holds %d records", len(recs))
	}
	want := walRecs(5)
	for _, rec := range want {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w, got, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
	// The reopened log must keep appending at the right offset.
	extra := walRecord{Nets: []walBatch{{Net: 0, Tick: 6, Events: []wireEvent{{Op: "leave", ID: 4}}}}}
	if err := w.Append(extra); err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, got, err = openWAL(path); err != nil || len(got) != 6 {
		t.Fatalf("after reopen+append: %d records, err %v", len(got), err)
	}
}

// A crash mid-append leaves a torn tail: a partial header, a partial
// payload, or a complete-but-wrong-CRC record at end of file. All
// three must be truncated away, keeping every record before them.
func TestWALTornTail(t *testing.T) {
	for name, tear := range map[string]func([]byte) []byte{
		"partial-header":  func(b []byte) []byte { return append(b, 0x01, 0x02) },
		"partial-payload": func(b []byte) []byte { return append(b, 0xFF, 0x00, 0x00, 0x00, 0xAB, 0xCD, 0xEF, 0x01, '{') },
		"bad-tail-crc": func(b []byte) []byte {
			// Append a well-framed record whose CRC is wrong.
			payload := []byte(`{"nets":null}`)
			hdr := make([]byte, walHeaderLen)
			binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
			binary.LittleEndian.PutUint32(hdr[4:8], 0xDEADBEEF)
			return append(append(b, hdr...), payload...)
		},
	} {
		t.Run(name, func(t *testing.T) {
			path := walPath(t)
			w, _, err := openWAL(path)
			if err != nil {
				t.Fatal(err)
			}
			want := walRecs(3)
			for _, rec := range want {
				if err := w.Append(rec); err != nil {
					t.Fatal(err)
				}
			}
			w.Close()
			good, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tear(good), 0o644); err != nil {
				t.Fatal(err)
			}
			w, got, err := openWAL(path)
			if err != nil {
				t.Fatalf("openWAL on torn tail: %v", err)
			}
			defer w.Close()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("torn tail: recovered %d records, want %d intact", len(got), len(want))
			}
			// The tail was truncated: the file is exactly the good prefix
			// again, and appending resumes on a record boundary.
			if info, _ := os.Stat(path); info.Size() != int64(len(good)) {
				t.Fatalf("file is %d bytes after truncation, want %d", info.Size(), len(good))
			}
			if err := w.Append(walRecs(4)[3]); err != nil {
				t.Fatal(err)
			}
			if _, got, err := openWAL(path); err != nil || len(got) != 4 {
				t.Fatalf("append after truncation: %d records, err %v", len(got), err)
			}
		})
	}
}

// Corruption strictly inside the log — with intact records after it —
// is a hole replay cannot skip: acked events would be lost silently.
// openWAL must refuse rather than truncate good records away.
func TestWALMidFileCorruption(t *testing.T) {
	path := walPath(t)
	w, _, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range walRecs(4) {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first record's payload.
	data[walHeaderLen+2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := openWAL(path); !errors.Is(err, errWALCorrupt) {
		t.Fatalf("openWAL on mid-file corruption: %v, want errWALCorrupt", err)
	}
}

func TestWALCompact(t *testing.T) {
	path := walPath(t)
	w, _, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := walRecs(6)
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Keep only records past tick 4 — as recovery does for records the
	// oldest checkpoint generation already covers.
	w, err = w.compact(recs, func(rec walRecord) bool { return rec.Nets[0].Tick > 4 })
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walRecord{Nets: []walBatch{{Net: 0, Tick: 7}}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, got, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Nets[0].Tick != 5 || got[2].Nets[0].Tick != 7 {
		t.Fatalf("after compaction: %+v", got)
	}
}

// The chaos corruption primitive and the scanner agree: a flipped byte
// anywhere in a record makes that record unreadable, never silently
// wrong.
func TestWALChaosFlip(t *testing.T) {
	path := walPath(t)
	w, _, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walRecs(1)[0]); err != nil {
		t.Fatal(err)
	}
	w.Close()
	data, _ := os.ReadFile(path)
	chaos.FlipByte(99, data)
	os.WriteFile(path, data, 0o644)
	_, got, err := openWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("corrupted single-record log yielded %d records", len(got))
	}
}
