package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"testing/iotest"
	"time"

	"cbtc"
	"cbtc/internal/chaos"
	"cbtc/internal/workload"
)

// TestMain doubles as the fleetd entry point for the crash-recovery
// tests: the test binary re-execs itself with FLEETD_CHILD=1 and
// fleetd's own flags, so kill -9 lands on a real daemon process.
func TestMain(m *testing.M) {
	if os.Getenv("FLEETD_CHILD") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

const testScenario = "uniform"

func testEngine(t *testing.T, m, n int) (*cbtc.Engine, workload.FleetScenario) {
	t.Helper()
	sc := workload.Fleet(m, n, testScenario)
	eng, err := cbtc.New(cbtc.WithMaxRadius(sc.Radius), cbtc.WithShrinkBack())
	if err != nil {
		t.Fatal(err)
	}
	return eng, sc
}

// testDaemon builds an in-process daemon the way main does, with an
// optional checkpoint directory enabling the store and write-ahead log.
func testDaemon(t *testing.T, m, n, queueCap int, ckptDir string) *daemon {
	t.Helper()
	eng, sc := testEngine(t, m, n)
	d := &daemon{
		queue:   make(chan queueItem, queueCap),
		tickIvl: 10 * time.Millisecond,
	}
	if ckptDir != "" {
		d.store = &ckptStore{eng: eng, path: filepath.Join(ckptDir, "fleet.ckpt"), gens: 2}
	}
	if err := d.recover(eng, sc, 7); err != nil {
		t.Fatal(err)
	}
	if d.wal != nil {
		t.Cleanup(func() { d.wal.Close() })
	}
	return d
}

func (d *daemon) enqueue(t *testing.T, evs ...wireEvent) {
	t.Helper()
	for _, ev := range evs {
		select {
		case d.queue <- queueItem{ev: ev}:
		default:
			t.Fatal("test queue full")
		}
	}
}

// Join-then-leave-then-move of the same projected id inside one tick:
// the projection must admit the join, honor the leave against the
// projected liveness, and reject the move — exactly mirroring
// Session.ValidateBatch, or the whole tick would be refused.
func TestLiveProjectionSameTickJoinLeaveMove(t *testing.T) {
	d := testDaemon(t, 2, 20, 64, "")
	id := d.fleet.Session(0).Len() // the id the join will mint
	d.enqueue(t,
		wireEvent{Op: "join", Net: 0, X: 1, Y: 1},
		wireEvent{Op: "leave", Net: 0, ID: id},
		wireEvent{Op: "move", Net: 0, ID: id, X: 2, Y: 2},
	)
	d.tickOnce()
	if got := d.applied.Load(); got != 2 {
		t.Errorf("applied %d events, want 2 (join+leave)", got)
	}
	if got := d.rejected.Load(); got != 1 {
		t.Errorf("rejected %d events, want 1 (move of departed node)", got)
	}
	s := d.fleet.Session(0)
	if s.Len() != id+1 || s.Alive(id) {
		t.Errorf("session: Len %d Alive(%d)=%v, want %d and departed", s.Len(), id, s.Alive(id), id+1)
	}
}

// Cross-tick id reuse after a drop: rejected events must leave no
// residue in the projection, so a later tick's join mints the next id
// (never reusing the dropped one) and events on the new id validate
// cleanly against the session.
func TestLiveProjectionCrossTickReuse(t *testing.T) {
	d := testDaemon(t, 2, 20, 64, "")
	s := d.fleet.Session(0)
	base := s.Len()

	d.enqueue(t, wireEvent{Op: "leave", Net: 0, ID: 5})
	d.tickOnce()

	// Tick 2: a move of the departed id is rejected; a join mints id
	// base (not 5); a move of the freshly projected id is accepted.
	d.enqueue(t,
		wireEvent{Op: "move", Net: 0, ID: 5, X: 9, Y: 9},
		wireEvent{Op: "join", Net: 0, X: 3, Y: 3},
		wireEvent{Op: "move", Net: 0, ID: base, X: 4, Y: 4},
	)
	d.tickOnce()
	if got := d.applied.Load(); got != 3 {
		t.Errorf("applied %d events, want 3", got)
	}
	if got := d.rejected.Load(); got != 1 {
		t.Errorf("rejected %d events, want 1", got)
	}
	if s.Alive(5) || !s.Alive(base) || s.Len() != base+1 {
		t.Errorf("session desynced: Alive(5)=%v Alive(%d)=%v Len=%d", s.Alive(5), base, s.Alive(base), s.Len())
	}

	// Tick 3: the projection re-initializes from the session each tick;
	// the new node keeps working.
	d.enqueue(t, wireEvent{Op: "move", Net: 0, ID: base, X: 5, Y: 5})
	d.tickOnce()
	if got := d.applied.Load(); got != 4 {
		t.Errorf("applied %d events after tick 3, want 4", got)
	}
}

// An ingestion stream that dies mid-read — an oversized line or an
// I/O failure — must be surfaced and counted, not swallowed: the
// caller has to be able to tell "stream consumed" from "stream died".
func TestReadEventsStreamFailure(t *testing.T) {
	d := testDaemon(t, 1, 10, 64, "")

	huge := strings.Repeat("x", 2<<20)
	res := d.readEvents(strings.NewReader("{\"op\":\"join\",\"net\":0}\n"+huge+"\n"), false)
	if res.scanErr == nil {
		t.Fatal("oversized line: scanErr not surfaced")
	}
	if res.accepted != 1 {
		t.Errorf("events before the oversized line: accepted %d, want 1", res.accepted)
	}
	if got := d.ingestErrs.Load(); got != 1 {
		t.Errorf("ingest_errors %d, want 1", got)
	}

	broken := io.MultiReader(strings.NewReader("{\"op\":\"join\",\"net\":0}\n"), iotest.ErrReader(fmt.Errorf("conn reset")))
	res = d.readEvents(broken, false)
	if res.scanErr == nil || !strings.Contains(res.scanErr.Error(), "conn reset") {
		t.Fatalf("reader failure: scanErr %v", res.scanErr)
	}
	if got := d.ingestErrs.Load(); got != 2 {
		t.Errorf("ingest_errors %d, want 2", got)
	}
}

// POST /events answers 202 only after the accepted events are in the
// write-ahead log and applied; a full queue answers 429 with a
// Retry-After hint.
func TestEventsDurableAckAndRetryAfter(t *testing.T) {
	d := testDaemon(t, 1, 10, 4, t.TempDir())
	srv := httptest.NewServer(d.routes())
	defer srv.Close()

	// Fill the queue with no tick loop draining it: everything posted
	// now is refused, immediately, with a retry hint.
	d.enqueue(t,
		wireEvent{Op: "move", Net: 0, ID: 0, X: 1, Y: 1},
		wireEvent{Op: "move", Net: 0, ID: 1, X: 1, Y: 1},
		wireEvent{Op: "move", Net: 0, ID: 2, X: 1, Y: 1},
		wireEvent{Op: "move", Net: 0, ID: 3, X: 1, Y: 1},
	)
	resp, err := http.Post(srv.URL+"/events", "application/json",
		strings.NewReader("{\"op\":\"move\",\"net\":0,\"id\":4,\"x\":2,\"y\":2}\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// Drain with a pumped tick loop and post for real: the response may
	// only arrive after the events are fsynced to the log.
	stop := make(chan struct{})
	pumped := make(chan struct{})
	go func() {
		defer close(pumped)
		for {
			select {
			case <-stop:
				return
			default:
				d.tickOnce()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	body := "{\"op\":\"join\",\"net\":0,\"x\":7,\"y\":7}\n{\"op\":\"move\",\"net\":0,\"id\":5,\"x\":8,\"y\":8}\n"
	resp, err = http.Post(srv.URL+"/events", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ack map[string]any
	json.NewDecoder(resp.Body).Decode(&ack)
	resp.Body.Close()
	close(stop)
	<-pumped
	if resp.StatusCode != http.StatusAccepted || ack["accepted"].(float64) != 2 {
		t.Fatalf("post: status %d body %v", resp.StatusCode, ack)
	}
	// The 202 contract: the events are on disk now.
	w, recs, err := openWAL(d.store.path + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	logged := 0
	for _, rec := range recs {
		for _, nb := range rec.Nets {
			logged += len(nb.Events)
		}
	}
	// 4 queue-filler moves drained by the pump, plus the 2 acked events.
	if logged != 6 {
		t.Fatalf("write-ahead log holds %d events at ack time, want 6", logged)
	}

	// A malformed stream is a 400 with the failure surfaced.
	resp, err = http.Post(srv.URL+"/events", "application/json",
		strings.NewReader(strings.Repeat("y", 2<<20)+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	var bad map[string]any
	json.NewDecoder(resp.Body).Decode(&bad)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || bad["error"] == nil {
		t.Fatalf("oversized stream: status %d body %v", resp.StatusCode, bad)
	}
}

// Injected checkpoint-write failures surface in /healthz as degraded
// status with a failure count, and clear on the next success.
func TestCheckpointFaultDegradesHealth(t *testing.T) {
	d := testDaemon(t, 1, 10, 16, t.TempDir())
	srv := httptest.NewServer(d.routes())
	defer srv.Close()

	inj := chaos.New(chaos.Faults{Seed: 1, CheckpointFail: 1})
	ckptFaultHook = func(seq uint64) error {
		if inj.FailCheckpoint(seq) {
			return fmt.Errorf("chaos: injected checkpoint failure %d", seq)
		}
		return nil
	}
	defer func() { ckptFaultHook = nil }()

	if err := d.writeCheckpoint(); err == nil {
		t.Fatal("injected checkpoint failure did not fail the write")
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h map[string]any
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || h["status"] != "degraded" {
		t.Fatalf("healthz under checkpoint failure: status %d body %v", resp.StatusCode, h)
	}
	if h["checkpoint_failures"].(float64) < 1 {
		t.Errorf("checkpoint_failures = %v, want >= 1", h["checkpoint_failures"])
	}
	if h["last_checkpoint_age_ms"].(float64) < 0 {
		t.Errorf("last_checkpoint_age_ms = %v, want >= 0 (recovery checkpointed)", h["last_checkpoint_age_ms"])
	}

	ckptFaultHook = nil
	if err := d.writeCheckpoint(); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h["status"] != "ok" {
		t.Fatalf("healthz after recovery: status %d body %v", resp.StatusCode, h)
	}
}

// A member panicking mid-tick quarantines that member only: the daemon
// keeps serving, /healthz turns degraded, later events to the casualty
// are rejected, healthy members keep applying, and checkpoints are
// refused (the log keeps covering the gap).
func TestDaemonQuarantineDegraded(t *testing.T) {
	d := testDaemon(t, 2, 20, 64, t.TempDir())
	srv := httptest.NewServer(d.routes())
	defer srv.Close()

	d.fleet.SetTickHook(func(net, tick int) {
		if net == 0 {
			panic("chaos: boom")
		}
	})
	d.enqueue(t, wireEvent{Op: "move", Net: 0, ID: 1, X: 5, Y: 5})
	d.tickOnce()
	d.fleet.SetTickHook(nil)

	if h := d.fleet.Health(); h.Quarantined != 1 {
		t.Fatalf("quarantined %d members, want 1", h.Quarantined)
	}
	if got := d.applied.Load(); got != 0 {
		t.Errorf("casualty's events counted as applied: %d", got)
	}

	// The casualty rejects traffic; the healthy member keeps going.
	d.enqueue(t,
		wireEvent{Op: "move", Net: 0, ID: 2, X: 6, Y: 6},
		wireEvent{Op: "move", Net: 1, ID: 2, X: 6, Y: 6},
	)
	d.tickOnce()
	if got, rej := d.applied.Load(), d.rejected.Load(); got != 1 || rej != 1 {
		t.Errorf("after quarantine: applied %d rejected %d, want 1 and 1", got, rej)
	}

	if err := d.writeCheckpoint(); err == nil {
		t.Error("checkpoint under quarantine did not fail")
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h map[string]any
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || h["quarantined"].(float64) != 1 {
		t.Fatalf("healthz under quarantine: status %d body %v", resp.StatusCode, h)
	}
	rep, err := d.fleet.Report()
	if err != nil || rep.Quarantined != 1 {
		t.Fatalf("report: quarantined %d err %v", rep.Quarantined, err)
	}
}

// --- crash-kill recovery ---

// refReport plays evs through a fresh in-process fleet one event per
// tick and reports. Batched application is pinned equivalent to
// sequential application, so the daemon's final Live/Edges/Events —
// whatever tick grouping its timing produced — must match this
// reference exactly.
func refReport(t *testing.T, m, n int, seed uint64, evs []wireEvent) *cbtc.FleetReport {
	t.Helper()
	eng, sc := testEngine(t, m, n)
	fleet, err := freshFleet(eng, sc, seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		batches := make([][]cbtc.Event, fleet.Size())
		batches[ev.Net] = []cbtc.Event{toEvent(ev)}
		if err := fleet.TickEvents(context.Background(), batches); err != nil {
			t.Fatalf("reference apply %+v: %v", ev, err)
		}
	}
	rep, err := fleet.Report()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// compareReports checks the grouping-independent state: totals and
// per-member final topology. Ticks, Series and Sched legitimately
// differ (the daemon coalesces events by arrival timing).
func compareReports(t *testing.T, stage string, got, want *cbtc.FleetReport) {
	t.Helper()
	if got.Live != want.Live || got.Edges != want.Edges || got.Events != want.Events || got.Preserved != want.Preserved {
		t.Errorf("%s: fleet Live/Edges/Events/Preserved = %d/%d/%d/%d, want %d/%d/%d/%d", stage,
			got.Live, got.Edges, got.Events, got.Preserved, want.Live, want.Edges, want.Events, want.Preserved)
	}
	for i := range want.PerNetwork {
		g, w := got.PerNetwork[i], want.PerNetwork[i]
		if g.Events != w.Events || g.Final != w.Final || g.Preserved != w.Preserved {
			t.Errorf("%s: network %d: Events/Final/Preserved = %d/%+v/%v, want %d/%+v/%v", stage,
				i, g.Events, g.Final, g.Preserved, w.Events, w.Final, w.Preserved)
		}
	}
}

type child struct {
	cmd *exec.Cmd
	out *bytes.Buffer
}

func startFleetd(t *testing.T, addr string, args ...string) *child {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "FLEETD_CHILD=1")
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	c := &child{cmd: cmd, out: &out}
	t.Cleanup(func() { c.cmd.Process.Kill(); c.cmd.Wait() })
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			return c
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("fleetd did not come up on %s; output:\n%s", addr, out.String())
	return nil
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func postEvents(t *testing.T, addr string, evs []wireEvent) {
	t.Helper()
	var body strings.Builder
	for _, ev := range evs {
		b, _ := json.Marshal(ev)
		body.Write(b)
		body.WriteByte('\n')
	}
	resp, err := http.Post("http://"+addr+"/events", "application/json", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /events: status %d: %s", resp.StatusCode, msg)
	}
}

func getReport(t *testing.T, addr string) *cbtc.FleetReport {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep cbtc.FleetReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return &rep
}

// TestCrashRecovery is the end-to-end durability matrix: every event
// acknowledged with 202 must survive kill -9 — first via plain
// write-ahead-log replay, then with the newest checkpoint generation
// corrupted so recovery must fall back a generation and replay the
// log across the gap, and finally across a clean shutdown.
func TestCrashRecovery(t *testing.T) {
	const (
		m    = 2
		n    = 30
		seed = 11
	)
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "fleet.ckpt")
	addr := freeAddr(t)
	args := []string{
		"-checkpoint", ckpt, "-http", addr, "-tick", "5ms",
		"-checkpoint-interval", "0", "-generations", "2",
		"-m", fmt.Sprint(m), "-n", fmt.Sprint(n), "-kind", testScenario, "-seed", fmt.Sprint(seed),
	}

	batchA := []wireEvent{
		{Op: "join", Net: 0, X: 10, Y: 10},
		{Op: "join", Net: 0, X: 200, Y: 40},
		{Op: "move", Net: 0, ID: 3, X: 55, Y: 60},
		{Op: "leave", Net: 0, ID: 7},
		{Op: "move", Net: 1, ID: 0, X: 80, Y: 80},
		{Op: "join", Net: 1, X: 120, Y: 33},
		{Op: "leave", Net: 1, ID: 12},
	}
	batchB := []wireEvent{
		{Op: "move", Net: 0, ID: n, X: 15, Y: 15}, // the node batchA joined
		{Op: "leave", Net: 0, ID: n + 1},
		{Op: "join", Net: 1, X: 44, Y: 44},
		{Op: "move", Net: 1, ID: n, X: 90, Y: 90},
		{Op: "leave", Net: 1, ID: 4},
		{Op: "join", Net: 0, X: 66, Y: 66},
	}

	// Run 1: fresh fleet; ack batch A; kill -9 before any checkpoint of
	// the new state exists (interval checkpoints are off).
	c := startFleetd(t, addr, args...)
	postEvents(t, addr, batchA)
	c.cmd.Process.Kill()
	c.cmd.Wait()

	// Run 2: recovery = restore + log replay. The report must already
	// equal the uninterrupted reference over batch A.
	c = startFleetd(t, addr, args...)
	compareReports(t, "after replay of A", getReport(t, addr), refReport(t, m, n, seed, batchA))
	postEvents(t, addr, batchB)
	c.cmd.Process.Kill()
	c.cmd.Wait()

	// Corrupt the newest checkpoint generation (written during run 2's
	// recovery — it covers batch A). Recovery must detect it, fall back
	// to the older generation, and replay the whole log across the gap.
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	chaos.FlipByte(5, data)
	if err := os.WriteFile(ckpt, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Run 3: generation fallback + full replay. Zero acked-event loss.
	c = startFleetd(t, addr, args...)
	wantAB := refReport(t, m, n, seed, append(append([]wireEvent{}, batchA...), batchB...))
	compareReports(t, "after fallback+replay of A+B", getReport(t, addr), wantAB)

	// Clean shutdown, then one more start: state still intact.
	if err := c.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := c.cmd.Wait(); err != nil {
		t.Fatalf("clean shutdown: %v; output:\n%s", err, c.out.String())
	}
	c = startFleetd(t, addr, args...)
	compareReports(t, "after clean restart", getReport(t, addr), wantAB)
	c.cmd.Process.Signal(syscall.SIGTERM)
	c.cmd.Wait()
}
