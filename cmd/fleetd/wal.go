package main

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The write-ahead log closes fleetd's durability gap between
// checkpoints: every accepted event batch is appended and fsynced
// before its HTTP request is acknowledged, so a 202 means the events
// survive a crash. On restart the daemon restores the newest readable
// checkpoint generation and replays the log past the restored
// watermarks.
//
// The log is a flat sequence of length-prefixed records:
//
//	[u32 payload length][u32 CRC32-IEEE of payload][payload]
//
// (both integers little-endian). The payload is one JSON walRecord —
// the batches of a single coalescing tick, each stamped with the
// member tick it produced. Records are only ever appended, each
// followed by one fsync; a crash can therefore leave at most a
// truncated tail, which openWAL detects (short header, short payload,
// or CRC mismatch at end-of-file) and truncates away. The same checks
// guard against bit rot anywhere in the file: a bad record that is
// *not* at the tail means acked events after it would be lost, so
// openWAL refuses with errWALCorrupt rather than replaying a hole.
type wal struct {
	f    *os.File
	path string
	size int64 // committed length (end of last good record)
}

// errWALCorrupt reports a damaged record with intact records after it
// — a hole that replay cannot skip without losing acked events.
var errWALCorrupt = errors.New("fleetd: write-ahead log corrupt mid-file")

// walRecord is one coalescing tick's worth of accepted events.
type walRecord struct {
	Nets []walBatch `json:"nets"`
}

// walBatch is the accepted events one member received in one tick,
// stamped with the member tick the batch produced (the member's
// completed-tick clock after applying it). Replay uses the stamp to
// be idempotent: a batch whose tick the restored member has already
// completed is skipped, one exactly at clock+1 is applied, and any
// gap means the checkpoint and log disagree.
type walBatch struct {
	Net    int         `json:"net"`
	Tick   int         `json:"tick"`
	Events []wireEvent `json:"events"`
}

const walHeaderLen = 8 // u32 length + u32 CRC

// openWAL opens (creating if absent) the log at path, scans every
// record, truncates a torn tail, and leaves the file positioned for
// appending. The scanned records are returned for replay.
func openWAL(path string) (*wal, []walRecord, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	recs, good, err := scanWAL(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	// Drop a torn tail so the next append starts at a record boundary.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &wal{f: f, path: path, size: good}, recs, nil
}

// scanWAL reads records from the start of f, returning the decoded
// records and the offset just past the last good one. A damaged
// region at the tail is reported only through the offset (the caller
// truncates it); a damaged region with a good record after it is
// errWALCorrupt.
func scanWAL(f *os.File) ([]walRecord, int64, error) {
	info, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	total := info.Size()
	var (
		recs []walRecord
		off  int64
		hdr  [walHeaderLen]byte
	)
	for off < total {
		if total-off < walHeaderLen {
			break // torn header
		}
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			return nil, 0, err
		}
		n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if total-off-walHeaderLen < n {
			break // torn payload
		}
		payload := make([]byte, n)
		if _, err := f.ReadAt(payload, off+walHeaderLen); err != nil {
			return nil, 0, err
		}
		var rec walRecord
		if crc32.ChecksumIEEE(payload) != sum || json.Unmarshal(payload, &rec) != nil {
			// Bad record: tolerable only as the file's final region.
			if restIntact(f, off+walHeaderLen+n, total) {
				return nil, 0, errWALCorrupt
			}
			break
		}
		recs = append(recs, rec)
		off += walHeaderLen + n
	}
	return recs, off, nil
}

// restIntact reports whether [off, total) parses as at least one good
// record — which would make a preceding bad record a mid-file hole
// rather than a torn tail.
func restIntact(f *os.File, off, total int64) bool {
	var hdr [walHeaderLen]byte
	if total-off < walHeaderLen {
		return false
	}
	if _, err := f.ReadAt(hdr[:], off); err != nil {
		return false
	}
	n := int64(binary.LittleEndian.Uint32(hdr[0:4]))
	if total-off-walHeaderLen < n {
		return false
	}
	payload := make([]byte, n)
	if _, err := f.ReadAt(payload, off+walHeaderLen); err != nil {
		return false
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return false
	}
	var rec walRecord
	return json.Unmarshal(payload, &rec) == nil
}

// Append writes one record and fsyncs. Only after Append returns nil
// may the events in rec be acknowledged.
func (w *wal) Append(rec walRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	buf := make([]byte, walHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[walHeaderLen:], payload)
	if _, err := w.f.WriteAt(buf, w.size); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.size += int64(len(buf))
	return nil
}

// compact rewrites the log to hold only the records keep selects,
// replacing w: it writes a fresh file, fsyncs, renames it over the
// log, and reopens. The caller must not use w afterwards. The keep
// predicate encodes the retention invariant — a record may only be
// dropped once every retained checkpoint generation covers it, or a
// generation-fallback restore would find a hole where its missing
// events should be.
func (w *wal) compact(recs []walRecord, keep func(walRecord) bool) (*wal, error) {
	tmp := w.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	nw := &wal{f: f, path: tmp}
	for _, rec := range recs {
		if !keep(rec) {
			continue
		}
		if err := nw.Append(rec); err != nil {
			f.Close()
			os.Remove(tmp)
			return nil, err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return nil, err
	}
	w.f.Close()
	if err := os.Rename(tmp, w.path); err != nil {
		return nil, err
	}
	re, _, err := openWAL(w.path)
	return re, err
}

func (w *wal) Close() error { return w.f.Close() }
