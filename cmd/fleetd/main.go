// Command fleetd is a long-lived, fault-tolerant fleet daemon: it
// restores a CBTC(α) fleet from its newest readable checkpoint
// generation (or builds a fresh one), replays its write-ahead log,
// ingests a stream of Join/Leave/Move events, coalesces them into
// per-network fleet ticks, serves topology queries while ticking
// continues, and checkpoints the complete fleet state — sessions, RNG
// streams, per-member clocks, accumulators — on an interval and on
// graceful shutdown.
//
// Usage:
//
//	fleetd -checkpoint fleet.ckpt [-http :8080]
//	       [-m 4] [-n 100] [-kind uniform|clustered] [-seed 7]
//	       [-tick 100ms] [-checkpoint-interval 30s] [-generations 2]
//	       [-queue 4096] [-workers 0]
//	       [-battery-capacity 0] [-battery-drain 1]
//
// -battery-capacity > 0 gives every node a battery of that capacity,
// drained each tick by -battery-drain × p(radius); /healthz then
// reports the fleet's mean residual energy ("residual") and the pooled
// energy variance ("energy_var") alongside connectivity.
//
// # Durability
//
// Two artifacts cooperate so that no acknowledged event is ever lost:
//
//   - A write-ahead log at <checkpoint>.wal. Every accepted event
//     batch is appended — length-prefixed, CRC-checked, stamped with
//     the member tick it produces — and fsynced before it is applied
//     or acknowledged. A torn tail from a crash mid-append is detected
//     and truncated on restart.
//
//   - Generational checkpoints. Each checkpoint write is verified by
//     decoding it back before it is committed, then the previous
//     generations rotate down: <checkpoint> is newest, <checkpoint>.1
//     older, up to -generations. Restore tries newest to oldest, so a
//     generation corrupted on disk falls back to the next one.
//
// On startup the daemon restores the newest readable generation,
// replays the log past the restored per-member watermarks (replay is
// idempotent: batches at or below a member's clock are skipped), then
// writes a fresh verified checkpoint and compacts the log. Compaction
// drops only records that the oldest retained generation already
// covers — never merely the newest — so falling back to any older
// generation always finds the events it is missing still in the log,
// at the cost of the log holding roughly the event span of the
// generation window between restarts.
//
// The ack contract: a POST /events response is written only after the
// accepted events are fsynced to the log and applied, so 202 (and the
// "accepted" count of any response) means those events survive a
// kill -9 and will be present after restart. 429 means the queue was
// full and some events were refused (Retry-After says when to retry);
// those were not logged.
//
// # Failure isolation
//
// A member whose tick panics is quarantined by the fleet layer: its
// clock freezes, the panic and stack are recorded, and the other
// members keep ticking. fleetd keeps serving — events addressed to a
// quarantined member are rejected at ingestion, /healthz turns
// degraded (503) and reports the casualty count, and checkpoints are
// refused by the fleet until the member is readmitted, so the daemon
// falls back to its last good generations plus the log, which keeps
// accumulating. A fatal daemon error attempts one best-effort
// checkpoint before exiting; interval checkpoint failures are retried
// with jittered exponential backoff.
//
// # Ingestion and queries
//
// Events are newline-delimited JSON objects:
//
//	{"op":"join","net":0,"x":120.5,"y":340.0}
//	{"op":"leave","net":0,"id":17}
//	{"op":"move","net":1,"id":3,"x":88.0,"y":12.5}
//
// Without -http, events are read from stdin with blocking
// backpressure (EOF triggers a final tick, a checkpoint, and a clean
// exit). With -http, the daemon serves:
//
//	POST /events      ingest newline-framed events (202 = durable;
//	                  429 + Retry-After when the queue is full;
//	                  400 when the stream is malformed or a line
//	                  exceeds 1 MiB)
//	GET  /healthz     liveness, counters, watermarks, checkpoint age;
//	                  503 when degraded
//	GET  /report      the aggregated FleetReport as JSON
//	GET  /network/{i} one member's FleetNetworkReport as JSON
//	POST /checkpoint  force a checkpoint write now
//
// Ingestion is decoupled from repair by a bounded queue: each tick
// drains the queue, validates events against each network's projected
// liveness (bad events are counted and dropped, never crash a
// network), logs the survivors, and applies each network's burst as
// one batched repair (Fleet.TickEvents). Only networks that received
// traffic tick — the others' clocks stand still — so per-member tick
// counts diverge under skewed traffic; /report and /healthz expose the
// divergence as min/max watermarks plus per-member clocks. Queries run
// concurrently off copy-on-write snapshots; they never block the tick
// loop.
//
// SIGINT/SIGTERM drain the queue, apply a final tick, write a final
// checkpoint, and exit 0.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand/v2"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"cbtc"
	"cbtc/internal/workload"
)

func main() {
	var (
		ckptPath = flag.String("checkpoint", "", "checkpoint file (restore from it if present; write to it on interval and shutdown)")
		ckptIvl  = flag.Duration("checkpoint-interval", 30*time.Second, "periodic checkpoint interval (0 = only on shutdown)")
		gens     = flag.Int("generations", 2, "older checkpoint generations to retain (fleet.ckpt.1..N)")
		httpAddr = flag.String("http", "", "HTTP listen address (empty = read events from stdin)")
		tickIvl  = flag.Duration("tick", 100*time.Millisecond, "event-coalescing tick interval")
		queueCap = flag.Int("queue", 4096, "ingestion queue capacity (backpressure bound)")
		m        = flag.Int("m", 4, "networks in a fresh fleet")
		n        = flag.Int("n", 100, "nodes per network in a fresh fleet")
		kind     = flag.String("kind", "uniform", "fresh-fleet placement kind: uniform | clustered")
		seed     = flag.Uint64("seed", 7, "fresh-fleet base seed")
		workers  = flag.Int("workers", 0, "worker budget (0 = GOMAXPROCS)")
		batCap   = flag.Float64("battery-capacity", 0, "per-node battery capacity (0 = no battery model)")
		batDrain = flag.Float64("battery-drain", 1, "per-tick battery drain coefficient (scales p(radius))")
	)
	flag.Parse()
	if *tickIvl <= 0 || *queueCap <= 0 || *m <= 0 || *n <= 0 || *gens < 0 {
		fail(errors.New("fleetd: -tick, -queue, -m and -n must be positive and -generations non-negative"))
	}

	// The engine stack is fixed by the flags (paper radius, shrink-back
	// on, battery per -battery-*), so a checkpoint written by fleetd is
	// always restorable by a fleetd started with the same flags.
	sc := workload.Fleet(*m, *n, *kind)
	opts := []cbtc.Option{cbtc.WithMaxRadius(sc.Radius), cbtc.WithShrinkBack(), cbtc.WithWorkers(*workers)}
	if *batCap > 0 {
		opts = append(opts, cbtc.WithBattery(*batCap, *batDrain))
	}
	eng, err := cbtc.New(opts...)
	if err != nil {
		fail(err)
	}

	d := &daemon{
		queue:   make(chan queueItem, *queueCap),
		tickIvl: *tickIvl,
	}
	if *ckptPath != "" {
		d.store = &ckptStore{eng: eng, path: *ckptPath, gens: *gens}
	}
	if err := d.recover(eng, sc, *seed); err != nil {
		fail(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var srv *http.Server
	if *httpAddr != "" {
		srv = &http.Server{Addr: *httpAddr, Handler: d.routes()}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				d.fail(err)
			}
		}()
		log.Printf("fleetd: serving on %s", *httpAddr)
	} else {
		// stdin mode: enqueue with blocking backpressure; EOF initiates the
		// same graceful shutdown as a signal.
		go func() {
			res := d.readEvents(os.Stdin, true)
			if res.scanErr != nil {
				log.Printf("fleetd: stdin: %v", res.scanErr)
			}
			stop()
		}()
	}

	d.loop(ctx, *tickIvl, *ckptIvl)

	if srv != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
	}
	log.Printf("fleetd: shut down cleanly after %d ticks (%d events applied, %d rejected, %d dropped)",
		d.ticks.Load(), d.applied.Load(), d.rejected.Load(), d.dropped.Load())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fleetd:", err)
	os.Exit(1)
}

// wireEvent is the ingestion JSON shape, and the shape the write-ahead
// log stores.
type wireEvent struct {
	Op  string  `json:"op"`
	Net int     `json:"net"`
	ID  int     `json:"id"`
	X   float64 `json:"x"`
	Y   float64 `json:"y"`
}

// queueItem is one slot of the ingestion queue: an event, or — when
// ack is non-nil — a durability waiter. The tick loop answers a waiter
// after it has logged and applied every event queued before it, which
// is what lets POST /events respond only once its events are durable.
type queueItem struct {
	ev  wireEvent
	ack chan error
}

// daemon owns the tick loop; HTTP handlers and the stdin reader touch
// only the queue, the atomic counters, and the fleet's own thread-safe
// query surface. The tick loop is the single mutation path: ticks,
// log appends, checkpoints and the final drain never race.
type daemon struct {
	fleet   *cbtc.Fleet
	store   *ckptStore // nil without -checkpoint
	wal     *wal       // nil without -checkpoint
	queue   chan queueItem
	tickIvl time.Duration

	// ckptMu serializes checkpoint writes: the tick loop's interval and
	// shutdown checkpoints against POST /checkpoint handlers. The fleet
	// itself is internally synchronized; this guards the store's
	// generation rotation.
	ckptMu sync.Mutex

	ticks      atomic.Int64 // completed coalescing ticks
	applied    atomic.Int64 // events applied to sessions
	rejected   atomic.Int64 // events dropped at validation (bad net/id/liveness/quarantine)
	dropped    atomic.Int64 // events refused at ingestion (queue full)
	ingestErrs atomic.Int64 // ingestion streams that failed mid-read (oversized line, I/O error)
	ckptFails  atomic.Int64 // consecutive failed checkpoint attempts
	lastCkpt   atomic.Int64 // unix milli of last successful checkpoint (0 = never)
}

// recover brings the daemon to a servable state: restore the newest
// readable checkpoint generation (or build a fresh fleet), replay the
// write-ahead log past the restored watermarks, then checkpoint the
// recovered state and reset the log.
func (d *daemon) recover(eng *cbtc.Engine, sc workload.FleetScenario, seed uint64) error {
	if d.store == nil {
		fleet, err := freshFleet(eng, sc, seed)
		if err != nil {
			return err
		}
		d.fleet = fleet
		log.Printf("fleetd: built fresh fleet: %d networks × %d nodes (%s, seed %d)", sc.M, sc.N, sc.Kind, seed)
		return nil
	}
	fleet, from, err := d.store.Restore()
	switch {
	case err == nil:
		d.fleet = fleet
		log.Printf("fleetd: restored %d networks from %s", fleet.Size(), from)
	case os.IsNotExist(err):
		if d.fleet, err = freshFleet(eng, sc, seed); err != nil {
			return err
		}
		log.Printf("fleetd: built fresh fleet: %d networks × %d nodes (%s, seed %d)", sc.M, sc.N, sc.Kind, seed)
	default:
		return err
	}
	w, recs, err := openWAL(d.store.path + ".wal")
	if err != nil {
		return err
	}
	d.wal = w
	if len(recs) > 0 {
		ticks, events, lost, err := d.replay(recs)
		if err != nil {
			return fmt.Errorf("replay %s.wal: %w", d.store.path, err)
		}
		log.Printf("fleetd: replayed %d logged ticks (%d events, %d lost to quarantine)", ticks, events, lost)
	}
	// Checkpoint the recovered state, then compact the log down to what
	// the oldest retained generation does not cover. If the fleet came
	// up quarantined (a poison batch re-panicked during replay) the
	// checkpoint is refused; keep the whole log so nothing acked is
	// lost and start degraded.
	if err := d.writeCheckpoint(); err != nil {
		log.Printf("fleetd: post-recovery checkpoint failed (starting degraded, log retained): %v", err)
		return nil
	}
	if wm, ok := d.store.oldestWatermarks(); ok {
		keep := func(rec walRecord) bool {
			for _, nb := range rec.Nets {
				if nb.Net >= len(wm.Members) || nb.Tick > wm.Members[nb.Net].Ticks {
					return true
				}
			}
			return false
		}
		compacted, err := d.wal.compact(recs, keep)
		if err != nil {
			return fmt.Errorf("compact %s.wal: %w", d.store.path, err)
		}
		d.wal = compacted
	}
	return nil
}

func freshFleet(eng *cbtc.Engine, sc workload.FleetScenario, seed uint64) (*cbtc.Fleet, error) {
	members := make([]cbtc.MemberSpec, 0, sc.M)
	for _, placement := range sc.Placements(seed) {
		members = append(members, cbtc.MemberSpec{Placement: placement})
	}
	return eng.NewFleet(context.Background(), cbtc.FleetConfig{Members: members, Seed: seed})
}

// replay applies logged records the restored fleet has not yet seen.
// Replay is idempotent by watermark: a batch whose stamped tick the
// member has already completed came from before the checkpoint and is
// skipped; a batch exactly one past the member's clock applies; any
// gap means the checkpoint and log disagree and recovery must stop
// rather than corrupt state. A member that re-panics during replay is
// quarantined again — its remaining batches are counted as lost and
// replay continues for the others.
func (d *daemon) replay(recs []walRecord) (ticks, events, lost int, err error) {
	for _, rec := range recs {
		wm := d.fleet.Watermarks()
		batches := make([][]cbtc.Event, d.fleet.Size())
		stale := true
		for _, nb := range rec.Nets {
			if nb.Net < 0 || nb.Net >= d.fleet.Size() {
				return ticks, events, lost, fmt.Errorf("logged batch for network %d in a fleet of %d", nb.Net, d.fleet.Size())
			}
			mc := wm.Members[nb.Net]
			if mc.Health == cbtc.MemberQuarantined {
				lost += len(nb.Events)
				continue
			}
			switch {
			case nb.Tick <= mc.Ticks:
				// Already inside the restored checkpoint.
			case nb.Tick == mc.Ticks+1:
				batch := make([]cbtc.Event, 0, len(nb.Events))
				for _, ev := range nb.Events {
					batch = append(batch, toEvent(ev))
				}
				batches[nb.Net] = batch
				stale = false
			default:
				return ticks, events, lost, fmt.Errorf("network %d is at tick %d but the log resumes at tick %d", nb.Net, mc.Ticks, nb.Tick)
			}
		}
		if stale {
			continue
		}
		err := d.fleet.TickEvents(context.Background(), batches)
		var qe *cbtc.QuarantineError
		if errors.As(err, &qe) {
			for _, c := range qe.Casualties {
				log.Printf("fleetd: replay quarantined network %d at tick %d: %s", c.Net, c.Tick, c.Err)
				lost += len(batches[c.Net])
			}
			err = nil
		}
		if err != nil {
			return ticks, events, lost, err
		}
		ticks++
		for i, b := range batches {
			if b != nil && d.fleet.Watermarks().Members[i].Health == cbtc.MemberHealthy {
				events += len(b)
			}
		}
	}
	return ticks, events, lost, nil
}

func toEvent(ev wireEvent) cbtc.Event {
	switch ev.Op {
	case "join":
		return cbtc.JoinEvent(cbtc.Pt(ev.X, ev.Y))
	case "leave":
		return cbtc.LeaveEvent(ev.ID)
	default:
		return cbtc.MoveEvent(ev.ID, cbtc.Pt(ev.X, ev.Y))
	}
}

// Checkpoint retry backoff bounds (jittered exponential).
const (
	ckptRetryMin = 500 * time.Millisecond
	ckptRetryMax = 15 * time.Second
)

// loop is the daemon's single mutation path. Interval checkpoint
// failures schedule a jittered-backoff retry instead of waiting a full
// interval; /healthz reports degraded until one succeeds.
func (d *daemon) loop(ctx context.Context, tickIvl, ckptIvl time.Duration) {
	ticker := time.NewTicker(tickIvl)
	defer ticker.Stop()
	var ckptC <-chan time.Time
	if d.store != nil && ckptIvl > 0 {
		ck := time.NewTicker(ckptIvl)
		defer ck.Stop()
		ckptC = ck.C
	}
	var (
		retryC  <-chan time.Time
		backoff = ckptRetryMin
	)
	checkpoint := func() {
		if err := d.writeCheckpoint(); err != nil {
			delay := backoff/2 + rand.N(backoff/2+1)
			log.Printf("fleetd: checkpoint: %v (retrying in %v)", err, delay.Round(time.Millisecond))
			retryC = time.After(delay)
			backoff = min(backoff*2, ckptRetryMax)
			return
		}
		retryC, backoff = nil, ckptRetryMin
	}
	for {
		select {
		case <-ctx.Done():
			// Graceful shutdown: apply whatever is queued, then persist.
			// The log is never reset here — the next start compacts it
			// against the oldest generation, so a failed or corrupted
			// final checkpoint can still fall back losslessly.
			d.tickOnce()
			if err := d.writeCheckpoint(); err != nil {
				log.Printf("fleetd: final checkpoint failed (log retained): %v", err)
			}
			return
		case <-ticker.C:
			d.tickOnce()
		case <-ckptC:
			checkpoint()
		case <-retryC:
			checkpoint()
		}
	}
}

// tickOnce drains the queue, validates each event against its
// network's liveness as projected through the earlier events of the
// same tick (mirroring ApplyBatch's rules, so one bad event is dropped
// instead of voiding the whole batch), logs the accepted survivors,
// ticks the networks that received traffic, and finally answers the
// durability waiters drained alongside. Traffic-less networks keep a
// nil batch and are skipped — their clocks stand still, which is where
// ragged watermarks come from. Events addressed to a quarantined
// network are rejected, and a network that panics during this tick is
// quarantined by the fleet while the rest of the tick commits.
func (d *daemon) tickOnce() {
	var (
		batches = make([][]cbtc.Event, d.fleet.Size())
		wires   = make([][]wireEvent, d.fleet.Size())
		proj    = make([]liveProjection, d.fleet.Size())
		waiters []chan error
		applied int
		quar    = quarantinedSet(d.fleet)
	)
drain:
	for {
		select {
		case item := <-d.queue:
			if item.ack != nil {
				waiters = append(waiters, item.ack)
				continue
			}
			ev := item.ev
			if ev.Net < 0 || ev.Net >= d.fleet.Size() || quar[ev.Net] {
				d.rejected.Add(1)
				continue
			}
			p := &proj[ev.Net]
			p.init(d.fleet.Session(ev.Net))
			switch ev.Op {
			case "join":
				p.admit()
			case "leave":
				if !p.live(ev.ID) {
					d.rejected.Add(1)
					continue
				}
				p.depart(ev.ID)
			case "move":
				if !p.live(ev.ID) {
					d.rejected.Add(1)
					continue
				}
			default:
				d.rejected.Add(1)
				continue
			}
			batches[ev.Net] = append(batches[ev.Net], toEvent(ev))
			wires[ev.Net] = append(wires[ev.Net], ev)
			applied++
		default:
			break drain
		}
	}
	finish := func(err error) {
		for _, ack := range waiters {
			ack <- err
		}
	}
	if applied > 0 && d.wal != nil {
		wm := d.fleet.Watermarks()
		var rec walRecord
		for i, evs := range wires {
			if evs != nil {
				rec.Nets = append(rec.Nets, walBatch{Net: i, Tick: wm.Members[i].Ticks + 1, Events: evs})
			}
		}
		if err := d.wal.Append(rec); err != nil {
			// The events cannot be made durable: refuse the acks, then go
			// down (with a best-effort checkpoint) rather than silently
			// degrade the 202-means-durable contract.
			finish(err)
			d.fail(fmt.Errorf("write-ahead log append: %w", err))
		}
	}
	err := d.fleet.TickEvents(context.Background(), batches)
	var qe *cbtc.QuarantineError
	if errors.As(err, &qe) {
		// The casualties' batches did not commit, but they are in the
		// log: a restart replays them against the pre-panic state. The
		// healthy members' batches committed; keep serving degraded.
		for _, c := range qe.Casualties {
			log.Printf("fleetd: quarantined network %d at tick %d: %s", c.Net, c.Tick, c.Err)
			applied -= len(batches[c.Net])
		}
		err = nil
	}
	if err != nil {
		// Pre-validation makes this unreachable short of a fleet-level
		// failure; a half-applied tick must not keep serving.
		finish(err)
		d.fail(err)
	}
	d.ticks.Add(1)
	d.applied.Add(int64(applied))
	finish(nil)
}

// quarantinedSet snapshots which members are quarantined. The tick
// loop is the only mutation path, so the set is stable for the
// duration of a drain.
func quarantinedSet(f *cbtc.Fleet) map[int]bool {
	h := f.Health()
	if h.Quarantined == 0 {
		return nil
	}
	q := make(map[int]bool, h.Quarantined)
	for _, m := range h.Members {
		if m.Health == cbtc.MemberQuarantined {
			q[m.Net] = true
		}
	}
	return q
}

// fail attempts one best-effort checkpoint (the write-ahead log is NOT
// reset — if the checkpoint is bad or refused, the log still covers
// it) and exits. It must only be called from the tick loop or before
// serving starts.
func (d *daemon) fail(err error) {
	if d.store != nil && d.fleet != nil {
		d.ckptMu.Lock()
		defer d.ckptMu.Unlock()
		if cerr := d.store.Write(d.fleet); cerr != nil {
			log.Printf("fleetd: crash checkpoint failed: %v", cerr)
		} else {
			log.Printf("fleetd: crash checkpoint written to %s", d.store.path)
		}
	}
	fail(err)
}

// liveProjection tracks one network's liveness as this tick's batch
// would leave it, lazily initialized from the session.
type liveProjection struct {
	sess    *cbtc.Session
	next    int          // node-id space size after projected joins
	overlay map[int]bool // projected liveness where it differs
}

func (p *liveProjection) init(s *cbtc.Session) {
	if p.sess == nil {
		p.sess = s
		p.next = s.Len()
		p.overlay = make(map[int]bool)
	}
}

func (p *liveProjection) admit() { p.overlay[p.next] = true; p.next++ }

func (p *liveProjection) depart(id int) { p.overlay[id] = false }

func (p *liveProjection) live(id int) bool {
	if id < 0 || id >= p.next {
		return false
	}
	if v, ok := p.overlay[id]; ok {
		return v
	}
	return id < p.sess.Len() && p.sess.Alive(id)
}

// writeCheckpoint persists the fleet through the generational store
// and tracks checkpoint health for /healthz. It never resets the
// write-ahead log — only recovery and clean shutdown do that, after
// verifying the checkpoint that covers it.
func (d *daemon) writeCheckpoint() error {
	if d.store == nil {
		return nil
	}
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	if err := d.store.Write(d.fleet); err != nil {
		d.ckptFails.Add(1)
		return err
	}
	d.ckptFails.Store(0)
	d.lastCkpt.Store(time.Now().UnixMilli())
	return nil
}

// ingestResult summarizes one readEvents call.
type ingestResult struct {
	accepted, malformed, dropped int
	scanErr                      error // stream died mid-read: oversized line or I/O failure
}

// readEvents decodes newline-framed JSON events from r and enqueues
// them. When block is true a full queue exerts backpressure on the
// producer; otherwise the event is counted as dropped. A scanner
// failure — a line over the 1 MiB limit, or the reader erroring — is
// surfaced in the result and counted, never silently swallowed: the
// caller must be able to tell "stream consumed" from "stream died".
func (d *daemon) readEvents(r io.Reader, block bool) ingestResult {
	var res ingestResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev wireEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			res.malformed++
			d.rejected.Add(1)
			continue
		}
		if block {
			d.queue <- queueItem{ev: ev}
			res.accepted++
			continue
		}
		select {
		case d.queue <- queueItem{ev: ev}:
			res.accepted++
		default:
			res.dropped++
			d.dropped.Add(1)
		}
	}
	if err := sc.Err(); err != nil {
		res.scanErr = err
		d.ingestErrs.Add(1)
		log.Printf("fleetd: event stream failed mid-read: %v", err)
	}
	return res
}

// awaitDurable enqueues a durability waiter behind the caller's events
// and blocks until the tick loop has logged and applied them.
func (d *daemon) awaitDurable(ctx context.Context) error {
	ack := make(chan error, 1) // buffered: the loop never blocks on an abandoned waiter
	select {
	case d.queue <- queueItem{ack: ack}:
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case err := <-ack:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// routes builds the HTTP query/ingestion surface. Queries read the
// fleet through its own synchronized, snapshot-backed methods and never
// block the tick loop beyond a lock handoff.
func (d *daemon) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /events", func(w http.ResponseWriter, r *http.Request) {
		res := d.readEvents(r.Body, false)
		if res.accepted > 0 {
			// Hold the response until the accepted events are fsynced to
			// the log and applied: the reported counts are durable facts.
			if err := d.awaitDurable(r.Context()); err != nil {
				http.Error(w, "events accepted but not yet durable: "+err.Error(), http.StatusInternalServerError)
				return
			}
		}
		body := map[string]any{
			"accepted": res.accepted, "malformed": res.malformed, "dropped": res.dropped,
		}
		status := http.StatusAccepted
		switch {
		case res.scanErr != nil:
			status = http.StatusBadRequest
			body["error"] = res.scanErr.Error()
		case res.dropped > 0:
			status = http.StatusTooManyRequests
			// The queue drains every tick: that is when retrying can help.
			secs := int(d.tickIvl.Round(time.Second) / time.Second)
			w.Header().Set("Retry-After", strconv.Itoa(max(secs, 1)))
		}
		writeJSON(w, status, body)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		wm := d.fleet.Watermarks()
		health := d.fleet.Health()
		ckptAge := int64(-1)
		if t := d.lastCkpt.Load(); t > 0 {
			ckptAge = time.Now().UnixMilli() - t
		}
		degraded := health.Quarantined > 0 || d.ckptFails.Load() > 0
		status := http.StatusOK
		state := "ok"
		if degraded {
			status = http.StatusServiceUnavailable
			state = "degraded"
		}
		// Connectivity comes from the sessions' maintained component
		// structures — O(changed) per member, cheap enough for every
		// probe. A fleet of healthy connected networks reports
		// components == networks - quarantined.
		obs, obsErr := d.fleet.Observe()
		components, live := -1, -1
		residual, energyVar := 0.0, 0.0
		if obsErr == nil {
			components, live = obs.Components, obs.Live
			residual, energyVar = obs.Residual, obs.EnergyVar
		}
		writeJSON(w, status, map[string]any{
			"status":                 state,
			"networks":               d.fleet.Size(),
			"quarantined":            health.Quarantined,
			"components":             components,
			"live":                   live,
			"residual":               residual,
			"energy_var":             energyVar,
			"ticks":                  d.ticks.Load(),
			"ticks_min":              wm.Ticks.Min,
			"ticks_max":              wm.Ticks.Max,
			"applied":                d.applied.Load(),
			"rejected":               d.rejected.Load(),
			"dropped":                d.dropped.Load(),
			"ingest_errors":          d.ingestErrs.Load(),
			"queued":                 len(d.queue),
			"checkpoint_failures":    d.ckptFails.Load(),
			"last_checkpoint_age_ms": ckptAge,
		})
	})
	mux.HandleFunc("GET /report", func(w http.ResponseWriter, r *http.Request) {
		rep, err := d.fleet.Report()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	})
	mux.HandleFunc("GET /network/{i}", func(w http.ResponseWriter, r *http.Request) {
		i, err := strconv.Atoi(r.PathValue("i"))
		if err != nil || i < 0 || i >= d.fleet.Size() {
			http.Error(w, "no such network", http.StatusNotFound)
			return
		}
		// The JSON is the Go API's FleetNetworkReport verbatim — one
		// shape for HTTP and library consumers.
		nr, err := d.fleet.NetworkReport(i)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, http.StatusOK, nr)
	})
	mux.HandleFunc("POST /checkpoint", func(w http.ResponseWriter, r *http.Request) {
		if d.store == nil {
			http.Error(w, "no -checkpoint path configured", http.StatusConflict)
			return
		}
		if err := d.writeCheckpoint(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"checkpoint": d.store.path})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
