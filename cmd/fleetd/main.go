// Command fleetd is a long-lived fleet daemon: it restores a CBTC(α)
// fleet from a checkpoint (or builds a fresh one), ingests a stream of
// Join/Leave/Move events, coalesces them into per-network fleet ticks,
// serves topology queries while ticking continues, and checkpoints the
// complete fleet state — sessions, RNG streams, per-member clocks,
// accumulators — on an interval and on graceful shutdown. Restarting it
// from the checkpoint resumes exactly where it stopped: the restored
// topology is edge-identical, the RNG streams continue at their saved
// positions, and the per-member tick clocks — which go ragged under
// skewed traffic, since only networks with traffic tick — resume at
// their exact watermarks.
//
// Usage:
//
//	fleetd -checkpoint fleet.ckpt [-http :8080]
//	       [-m 4] [-n 100] [-kind uniform|clustered] [-seed 7]
//	       [-tick 100ms] [-checkpoint-interval 30s]
//	       [-queue 4096] [-workers 0]
//
// If the checkpoint file exists the fleet is restored from it and the
// scenario flags are ignored; otherwise a fresh fleet of M networks of
// N nodes is built. Checkpoint writes are atomic (temp file + rename),
// so a crash mid-write never corrupts the last good checkpoint.
//
// Events are newline-delimited JSON objects:
//
//	{"op":"join","net":0,"x":120.5,"y":340.0}
//	{"op":"leave","net":0,"id":17}
//	{"op":"move","net":1,"id":3,"x":88.0,"y":12.5}
//
// Without -http, events are read from stdin with blocking backpressure
// (EOF triggers a final tick, a checkpoint, and a clean exit). With
// -http, the daemon serves:
//
//	POST /events      ingest newline-framed events (429 when the queue is full)
//	GET  /healthz     liveness, ingestion counters and tick watermarks
//	GET  /report      the aggregated FleetReport as JSON
//	GET  /network/{i} one member's FleetNetworkReport as JSON
//	POST /checkpoint  force a checkpoint write now
//
// Ingestion is decoupled from repair by a bounded queue: each tick
// drains the queue, validates events against each network's projected
// liveness (bad events are counted and dropped, never crash a network),
// and applies each network's burst as one batched repair
// (Fleet.TickEvents). Only networks that received traffic tick — the
// others' clocks stand still — so per-member tick counts diverge under
// skewed traffic. /report and /healthz expose the divergence as
// min/max watermarks plus per-member clocks; any single "tick count"
// of the fleet is the min watermark (what every member has completed at
// least). Queries run concurrently off copy-on-write snapshots; they
// never block the tick loop.
//
// SIGINT/SIGTERM drain the queue, apply a final tick, write a final
// checkpoint, and exit 0.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"cbtc"
	"cbtc/internal/workload"
)

func main() {
	var (
		ckptPath = flag.String("checkpoint", "", "checkpoint file (restore from it if present; write to it on interval and shutdown)")
		ckptIvl  = flag.Duration("checkpoint-interval", 30*time.Second, "periodic checkpoint interval (0 = only on shutdown)")
		httpAddr = flag.String("http", "", "HTTP listen address (empty = read events from stdin)")
		tickIvl  = flag.Duration("tick", 100*time.Millisecond, "event-coalescing tick interval")
		queueCap = flag.Int("queue", 4096, "ingestion queue capacity (backpressure bound)")
		m        = flag.Int("m", 4, "networks in a fresh fleet")
		n        = flag.Int("n", 100, "nodes per network in a fresh fleet")
		kind     = flag.String("kind", "uniform", "fresh-fleet placement kind: uniform | clustered")
		seed     = flag.Uint64("seed", 7, "fresh-fleet base seed")
		workers  = flag.Int("workers", 0, "worker budget (0 = GOMAXPROCS)")
	)
	flag.Parse()
	if *tickIvl <= 0 || *queueCap <= 0 || *m <= 0 || *n <= 0 {
		fail(errors.New("fleetd: -tick, -queue, -m and -n must be positive"))
	}

	// The engine stack is fixed (paper radius, shrink-back on), so a
	// checkpoint written by fleetd is always restorable by fleetd.
	sc := workload.Fleet(*m, *n, *kind)
	eng, err := cbtc.New(cbtc.WithMaxRadius(sc.Radius), cbtc.WithShrinkBack(), cbtc.WithWorkers(*workers))
	if err != nil {
		fail(err)
	}

	fleet, restored, err := loadOrCreate(eng, *ckptPath, sc, *seed)
	if err != nil {
		fail(err)
	}
	d := &daemon{
		fleet:    fleet,
		ckptPath: *ckptPath,
		queue:    make(chan wireEvent, *queueCap),
	}
	if restored {
		log.Printf("fleetd: restored %d networks from %s", fleet.Size(), *ckptPath)
	} else {
		log.Printf("fleetd: built fresh fleet: %d networks × %d nodes (%s, seed %d)", *m, *n, *kind, *seed)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var srv *http.Server
	if *httpAddr != "" {
		srv = &http.Server{Addr: *httpAddr, Handler: d.routes()}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fail(err)
			}
		}()
		log.Printf("fleetd: serving on %s", *httpAddr)
	} else {
		// stdin mode: enqueue with blocking backpressure; EOF initiates the
		// same graceful shutdown as a signal.
		go func() {
			d.readEvents(os.Stdin, true)
			stop()
		}()
	}

	d.loop(ctx, *tickIvl, *ckptIvl)

	if srv != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutCtx)
	}
	log.Printf("fleetd: shut down cleanly after %d ticks (%d events applied, %d rejected, %d dropped)",
		d.ticks.Load(), d.applied.Load(), d.rejected.Load(), d.dropped.Load())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fleetd:", err)
	os.Exit(1)
}

// loadOrCreate restores the fleet from path when the file exists, and
// builds a fresh one from the scenario otherwise.
func loadOrCreate(eng *cbtc.Engine, path string, sc workload.FleetScenario, seed uint64) (*cbtc.Fleet, bool, error) {
	if path != "" {
		f, err := os.Open(path)
		switch {
		case err == nil:
			defer f.Close()
			fleet, err := eng.RestoreFleet(f)
			if err != nil {
				return nil, false, fmt.Errorf("restore %s: %w", path, err)
			}
			return fleet, true, nil
		case !os.IsNotExist(err):
			return nil, false, err
		}
	}
	members := make([]cbtc.MemberSpec, 0, sc.M)
	for _, placement := range sc.Placements(seed) {
		members = append(members, cbtc.MemberSpec{Placement: placement})
	}
	fleet, err := eng.NewFleet(context.Background(), cbtc.FleetConfig{Members: members, Seed: seed})
	return fleet, false, err
}

// wireEvent is the ingestion JSON shape.
type wireEvent struct {
	Op  string  `json:"op"`
	Net int     `json:"net"`
	ID  int     `json:"id"`
	X   float64 `json:"x"`
	Y   float64 `json:"y"`
}

// daemon owns the tick loop; HTTP handlers and the stdin reader touch
// only the queue, the atomic counters, and the fleet's own thread-safe
// query surface.
type daemon struct {
	fleet    *cbtc.Fleet
	ckptPath string
	queue    chan wireEvent

	ticks    atomic.Int64 // completed coalescing ticks
	applied  atomic.Int64 // events applied to sessions
	rejected atomic.Int64 // events dropped at validation (bad net/id/liveness)
	dropped  atomic.Int64 // events refused at ingestion (queue full)
}

// loop is the daemon's single mutation path: it alone advances the
// fleet, so ticks, checkpoints and the final drain never race.
func (d *daemon) loop(ctx context.Context, tickIvl, ckptIvl time.Duration) {
	ticker := time.NewTicker(tickIvl)
	defer ticker.Stop()
	var ckptC <-chan time.Time
	if d.ckptPath != "" && ckptIvl > 0 {
		ck := time.NewTicker(ckptIvl)
		defer ck.Stop()
		ckptC = ck.C
	}
	for {
		select {
		case <-ctx.Done():
			// Graceful shutdown: apply whatever is queued, then persist.
			d.tickOnce()
			if err := d.writeCheckpoint(); err != nil {
				fail(err)
			}
			return
		case <-ticker.C:
			d.tickOnce()
		case <-ckptC:
			if err := d.writeCheckpoint(); err != nil {
				log.Printf("fleetd: checkpoint: %v", err)
			}
		}
	}
}

// tickOnce drains the queue, validates each event against its network's
// liveness as projected through the earlier events of the same tick
// (mirroring ApplyBatch's rules, so one bad event is dropped instead of
// voiding the whole batch), and ticks the networks that received
// traffic. Traffic-less networks keep a nil batch and are skipped —
// their clocks stand still, which is where ragged watermarks come from.
func (d *daemon) tickOnce() {
	batches := make([][]cbtc.Event, d.fleet.Size())
	proj := make([]liveProjection, d.fleet.Size())
	applied := 0
drain:
	for {
		select {
		case ev := <-d.queue:
			if ev.Net < 0 || ev.Net >= d.fleet.Size() {
				d.rejected.Add(1)
				continue
			}
			p := &proj[ev.Net]
			p.init(d.fleet.Session(ev.Net))
			switch ev.Op {
			case "join":
				p.admit()
				batches[ev.Net] = append(batches[ev.Net], cbtc.JoinEvent(cbtc.Pt(ev.X, ev.Y)))
			case "leave":
				if !p.live(ev.ID) {
					d.rejected.Add(1)
					continue
				}
				p.depart(ev.ID)
				batches[ev.Net] = append(batches[ev.Net], cbtc.LeaveEvent(ev.ID))
			case "move":
				if !p.live(ev.ID) {
					d.rejected.Add(1)
					continue
				}
				batches[ev.Net] = append(batches[ev.Net], cbtc.MoveEvent(ev.ID, cbtc.Pt(ev.X, ev.Y)))
			default:
				d.rejected.Add(1)
				continue
			}
			applied++
		default:
			break drain
		}
	}
	if err := d.fleet.TickEvents(context.Background(), batches); err != nil {
		// Pre-validation makes this unreachable short of a fleet-level
		// failure; a half-applied tick must not keep serving.
		fail(err)
	}
	d.ticks.Add(1)
	d.applied.Add(int64(applied))
}

// liveProjection tracks one network's liveness as this tick's batch
// would leave it, lazily initialized from the session.
type liveProjection struct {
	sess    *cbtc.Session
	next    int          // node-id space size after projected joins
	overlay map[int]bool // projected liveness where it differs
}

func (p *liveProjection) init(s *cbtc.Session) {
	if p.sess == nil {
		p.sess = s
		p.next = s.Len()
		p.overlay = make(map[int]bool)
	}
}

func (p *liveProjection) admit() { p.overlay[p.next] = true; p.next++ }

func (p *liveProjection) depart(id int) { p.overlay[id] = false }

func (p *liveProjection) live(id int) bool {
	if id < 0 || id >= p.next {
		return false
	}
	if v, ok := p.overlay[id]; ok {
		return v
	}
	return id < p.sess.Len() && p.sess.Alive(id)
}

// writeCheckpoint persists the fleet atomically: full write to a temp
// file, fsync, rename over the target.
func (d *daemon) writeCheckpoint() error {
	if d.ckptPath == "" {
		return nil
	}
	tmp := d.ckptPath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := d.fleet.Checkpoint(f); err == nil {
		err = f.Sync()
	} else {
		_ = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, d.ckptPath)
}

// readEvents decodes newline-framed JSON events from r and enqueues
// them. When block is true a full queue exerts backpressure on the
// producer; otherwise the event is counted as dropped and the caller is
// told how many were accepted.
func (d *daemon) readEvents(r io.Reader, block bool) (accepted, malformed, droppedNow int) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev wireEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			malformed++
			d.rejected.Add(1)
			continue
		}
		if block {
			d.queue <- ev
			accepted++
			continue
		}
		select {
		case d.queue <- ev:
			accepted++
		default:
			droppedNow++
			d.dropped.Add(1)
		}
	}
	return accepted, malformed, droppedNow
}

// routes builds the HTTP query/ingestion surface. Queries read the
// fleet through its own synchronized, snapshot-backed methods and never
// block the tick loop beyond a lock handoff.
func (d *daemon) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /events", func(w http.ResponseWriter, r *http.Request) {
		accepted, malformed, droppedNow := d.readEvents(r.Body, false)
		status := http.StatusAccepted
		if droppedNow > 0 {
			status = http.StatusTooManyRequests
		}
		writeJSON(w, status, map[string]int{
			"accepted": accepted, "malformed": malformed, "dropped": droppedNow,
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		wm := d.fleet.Watermarks()
		writeJSON(w, http.StatusOK, map[string]int64{
			"networks":  int64(d.fleet.Size()),
			"ticks":     d.ticks.Load(),
			"ticks_min": int64(wm.Ticks.Min),
			"ticks_max": int64(wm.Ticks.Max),
			"applied":   d.applied.Load(),
			"rejected":  d.rejected.Load(),
			"dropped":   d.dropped.Load(),
			"queued":    int64(len(d.queue)),
		})
	})
	mux.HandleFunc("GET /report", func(w http.ResponseWriter, r *http.Request) {
		rep, err := d.fleet.Report()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	})
	mux.HandleFunc("GET /network/{i}", func(w http.ResponseWriter, r *http.Request) {
		i, err := strconv.Atoi(r.PathValue("i"))
		if err != nil || i < 0 || i >= d.fleet.Size() {
			http.Error(w, "no such network", http.StatusNotFound)
			return
		}
		// The JSON is the Go API's FleetNetworkReport verbatim — one
		// shape for HTTP and library consumers.
		nr, err := d.fleet.NetworkReport(i)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, http.StatusOK, nr)
	})
	mux.HandleFunc("POST /checkpoint", func(w http.ResponseWriter, r *http.Request) {
		if d.ckptPath == "" {
			http.Error(w, "no -checkpoint path configured", http.StatusConflict)
			return
		}
		if err := d.writeCheckpoint(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"checkpoint": d.ckptPath})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
