package main

import (
	"bytes"
	"errors"
	"fmt"
	"os"

	"cbtc"
)

// ckptFaultHook, when non-nil, is consulted before each checkpoint
// write attempt with the attempt's sequence number; returning an error
// fails the attempt. It exists for the chaos tests (injected
// checkpoint-write failures exercising the retry/backoff path) and is
// nil in production.
var ckptFaultHook func(seq uint64) error

// ckptStore writes and restores fleet checkpoints with generational
// rotation: the newest checkpoint lives at path, the previous one at
// path.1, and so on up to path.<gens>. Every write is verified before
// it is committed — the encoded bytes are decoded back through the
// engine — so a generation on disk was readable at least once; restore
// still tries newest to oldest so that later disk corruption of one
// generation (or a crash between the rotation renames) falls back to
// the next instead of killing the daemon. Combined with the
// write-ahead log, falling back to an older generation loses nothing:
// the log is only reset after a verified checkpoint, so it still holds
// every acked event past any retained generation's watermarks.
type ckptStore struct {
	eng  *cbtc.Engine
	path string
	gens int    // older generations retained beyond path itself
	seq  uint64 // write attempts, for the fault hook
}

// gen returns the path of generation i (0 = newest).
func (s *ckptStore) gen(i int) string {
	if i == 0 {
		return s.path
	}
	return fmt.Sprintf("%s.%d", s.path, i)
}

// Write checkpoints the fleet as the new newest generation: encode to
// memory, verify by decoding, write and fsync a temp file, rotate the
// existing generations down, and rename the temp file into place. A
// failure at any step leaves the previous generations untouched.
func (s *ckptStore) Write(fleet *cbtc.Fleet) error {
	seq := s.seq
	s.seq++
	if ckptFaultHook != nil {
		if err := ckptFaultHook(seq); err != nil {
			return err
		}
	}
	var buf bytes.Buffer
	if err := fleet.Checkpoint(&buf); err != nil {
		return err
	}
	// Verify-on-write: what we are about to commit must decode. This
	// catches encoding bugs and injected corruption before a bad byte
	// stream can shadow the good generations below it.
	if _, err := s.eng.RestoreFleet(bytes.NewReader(buf.Bytes())); err != nil {
		return fmt.Errorf("checkpoint failed verification: %w", err)
	}
	tmp := s.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	_, err = f.Write(buf.Bytes())
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return err
	}
	// Rotate: path.(gens-1) → path.gens, …, path → path.1. A missing
	// source (first writes, or a crash mid-rotation) is skipped.
	for i := s.gens - 1; i >= 0; i-- {
		if err := os.Rename(s.gen(i), s.gen(i+1)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return os.Rename(tmp, s.path)
}

// Restore tries each generation newest to oldest and returns the first
// fleet that decodes, along with the path it came from. A generation
// that is missing or fails to decode falls through to the next; only
// when no generation exists at all does Restore report
// (nil, "", os.ErrNotExist) so the caller can build a fresh fleet.
// When generations exist but none decodes, the accumulated errors are
// returned — starting fresh would silently discard state.
func (s *ckptStore) Restore() (*cbtc.Fleet, string, error) {
	var (
		errs  []error
		found bool
	)
	for i := 0; i <= s.gens; i++ {
		p := s.gen(i)
		f, err := os.Open(p)
		if err != nil {
			if !os.IsNotExist(err) {
				errs = append(errs, err)
				found = true
			}
			continue
		}
		found = true
		fleet, err := s.eng.RestoreFleet(f)
		f.Close()
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", p, err))
			continue
		}
		return fleet, p, nil
	}
	if !found {
		return nil, "", os.ErrNotExist
	}
	return nil, "", fmt.Errorf("no readable checkpoint generation: %w", errors.Join(errs...))
}

// oldestWatermarks decodes the oldest readable generation and returns
// its per-member tick clocks — the floor below which no fallback
// restore can land, and therefore the line behind which the
// write-ahead log may be compacted.
func (s *ckptStore) oldestWatermarks() (cbtc.FleetWatermarks, bool) {
	for i := s.gens; i >= 0; i-- {
		f, err := os.Open(s.gen(i))
		if err != nil {
			continue
		}
		fleet, err := s.eng.RestoreFleet(f)
		f.Close()
		if err != nil {
			continue
		}
		return fleet.Watermarks(), true
	}
	return cbtc.FleetWatermarks{}, false
}
