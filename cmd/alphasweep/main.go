// Command alphasweep sweeps the cone angle α across random networks and
// prints the trade-off curve behind the paper's analysis: smaller α
// means more neighbors and higher power; larger α means sparser and
// cheaper topologies — with 5π/6 the last angle where connectivity is
// guaranteed (Theorem 2.1/2.4).
//
// Usage:
//
//	alphasweep [-networks 20] [-nodes 100] [-radius 500] [-seed 1] [-steps 12]
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"

	"cbtc"
)

func main() {
	networks := flag.Int("networks", 20, "networks per angle")
	nodes := flag.Int("nodes", 100, "nodes per network")
	radius := flag.Float64("radius", 500, "maximum transmission radius R")
	seed := flag.Uint64("seed", 1, "base random seed")
	steps := flag.Int("steps", 12, "number of α values between π/6 and 5π/6")
	flag.Parse()

	var alphas []float64
	lo, hi := math.Pi/6, cbtc.AlphaConnectivity
	for i := 0; i < *steps; i++ {
		alphas = append(alphas, lo+(hi-lo)*float64(i)/float64(*steps-1))
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rows, err := cbtc.RunAlphaSweepContext(ctx, cbtc.AlphaSweepParams{
		Alphas:    alphas,
		Networks:  *networks,
		Nodes:     *nodes,
		MaxRadius: *radius,
		Seed:      *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "alphasweep:", err)
		os.Exit(1)
	}
	fmt.Printf("basic CBTC(α) sweep: %d networks × %d nodes, R=%g\n\n", *networks, *nodes, *radius)
	fmt.Print(cbtc.RenderAlphaSweep(rows))
	fmt.Println("\nα = 5π/6 ≈ 2.618 is the connectivity bound: beyond it, adversarial")
	fmt.Println("placements (see cmd/counterexample) disconnect, though random")
	fmt.Println("networks typically survive.")
}
