// Command fleetsim drives a fleet of independent CBTC(α) networks
// through mobility/membership ticks on the Engine's work-stealing fleet
// scheduler and reports cross-network aggregate statistics — the
// many-networks workload class of a topology-control simulation service.
//
// Usage:
//
//	fleetsim [-m 16] [-n 250] [-kind uniform|clustered] [-ticks 20]
//	         [-workers 0] [-seed 7] [-moves n/16] [-jitter R/8]
//	         [-churn 0.25] [-protocol 0] [-chaos spec] [-slo connected] [-v]
//
// Every network runs its own deterministic RNG stream: each member's
// results are reproducible from the flags alone, at any worker count.
// -protocol k builds the first k members with the paper's distributed
// Figure 1 protocol instead of the oracle, exercising a heterogeneous
// fleet. -workers 1 forces a serial drive — timing serial vs default
// (GOMAXPROCS) shows the scheduler's speedup on multi-core machines.
//
// -chaos injects deterministic faults into member ticks to demonstrate
// quarantine isolation: the spec is comma-separated key=value pairs
// (e.g. -chaos seed=3,panic=0.02,delay=0.05,delaymax=2ms). Fault
// decisions are pure functions of (chaos seed, network, tick), so the
// same members panic at the same ticks at any worker count; a
// panicking member is quarantined — clock frozen, panic recorded — and
// reported in a casualty table while the healthy members' results stay
// identical to a chaos-free run.
//
// -slo connected turns every tick into a connectivity gate: an
// ObserveHook watches each member's per-tick component count — an
// O(changed) read off the session's maintained structure, so the gate
// costs the run essentially nothing — and records the first tick a
// member partitioned. Any violation makes fleetsim print a violation
// table (member, first partitioned tick) and exit nonzero; the
// lifetime-to-first-partition number is the energy-balance literature's
// headline metric.
//
// -lifetime runs the network-lifetime workload instead: every node gets
// a battery (-capacity, 0 = 2R²; -drain) drained each tick by
// drain × p(radius) of its installed broadcast radius, depleted nodes
// die as Leave events (LifetimeTick), and the same first-partition
// machinery the SLO gate uses measures each member's
// lifetime-to-first-partition. The summary grows residual-energy and
// energy-variance rows plus a per-member lifetime table; partitioning
// is the workload's expected endpoint, so it is reported, not failed —
// combine with -slo connected to keep the hard gate.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"cbtc"
	"cbtc/internal/chaos"
	"cbtc/internal/stats"
	"cbtc/internal/workload"
)

func main() {
	var (
		m         = flag.Int("m", 16, "number of independent networks")
		n         = flag.Int("n", 250, "nodes per network")
		kind      = flag.String("kind", "uniform", "placement kind: uniform | clustered")
		ticks     = flag.Int("ticks", 20, "fleet rounds to drive")
		workers   = flag.Int("workers", 0, "scheduler pool size (0 = GOMAXPROCS, 1 = serial)")
		seed      = flag.Uint64("seed", 7, "base seed for placements and tick streams")
		moves     = flag.Int("moves", 0, "nodes drifting per tick (0 = n/16)")
		jitter    = flag.Float64("jitter", 0, "drift amplitude (0 = R/8)")
		churn     = flag.Float64("churn", 0.25, "per-tick join and leave probability")
		protocol  = flag.Int("protocol", 0, "build the first k members with the distributed protocol")
		chaosSpec = flag.String("chaos", "", "deterministic fault injection spec (seed=,panic=,delay=,delaymax=)")
		slo       = flag.String("slo", "", "per-tick SLO gate: 'connected' exits nonzero if any network ever partitions")
		lifetime  = flag.Bool("lifetime", false, "network-lifetime workload: batteries drain, depleted nodes die, lifetime-to-first-partition is reported")
		capacity  = flag.Float64("capacity", 0, "per-node battery capacity for -lifetime (0 = 2R²)")
		drain     = flag.Float64("drain", 1, "per-tick battery drain coefficient for -lifetime (scales p(radius))")
		verbose   = flag.Bool("v", false, "print the per-network table")
	)
	flag.Parse()
	faults, err := chaos.Parse(*chaosSpec)
	if err != nil {
		fail(err)
	}
	if *slo != "" && *slo != "connected" {
		fail(fmt.Errorf("unknown -slo gate %q (supported: connected)", *slo))
	}

	sc := workload.Fleet(*m, *n, *kind)
	if *moves > 0 {
		sc.Moves = *moves
	}
	if *jitter > 0 {
		sc.Jitter = *jitter
	}
	sc.JoinProb, sc.LeaveProb = *churn, *churn

	opts := []cbtc.Option{cbtc.WithMaxRadius(sc.Radius), cbtc.WithShrinkBack(), cbtc.WithWorkers(*workers)}
	if *lifetime {
		if *capacity == 0 {
			// ≈ a few dozen ticks at typical CBTC radii (r ≈ R/3 drains
			// 2R²/(R/3)² = 18 ticks' worth under the default exponent).
			*capacity = 2 * sc.Radius * sc.Radius
		}
		opts = append(opts, cbtc.WithBattery(*capacity, *drain))
	}
	eng, err := cbtc.New(opts...)
	if err != nil {
		fail(err)
	}
	members := make([]cbtc.MemberSpec, 0, sc.M)
	for i, placement := range sc.Placements(*seed) {
		spec := cbtc.MemberSpec{Placement: placement}
		if i < *protocol {
			spec.Kind = cbtc.MemberProtocol
		}
		members = append(members, spec)
	}
	cfg := cbtc.FleetConfig{Members: members, Seed: *seed}
	if *chaosSpec != "" {
		cfg.TickHook = chaos.New(faults).Tick
	}
	// The connectivity SLO — and the -lifetime workload's headline
	// lifetime-to-first-partition metric — watch every member tick
	// through the ObserveHook: per-member calls arrive in tick order, so
	// the CAS keeps exactly the first partitioned tick; members never
	// share a slot, so concurrent callbacks from different workers are
	// safe.
	var firstPartition []atomic.Int64
	if *slo == "connected" || *lifetime {
		firstPartition = make([]atomic.Int64, sc.M)
		for i := range firstPartition {
			firstPartition[i].Store(-1)
		}
		cfg.ObserveHook = func(net, tick int, ts cbtc.TickStats) {
			if ts.Components > 1 {
				firstPartition[net].CompareAndSwap(-1, int64(tick))
			}
		}
	}
	ctx := context.Background()
	buildStart := time.Now()
	fleet, err := eng.NewFleet(ctx, cfg)
	if err != nil {
		fail(err)
	}
	buildTime := time.Since(buildStart)

	profile := cbtc.TickProfile{
		Moves:     sc.Moves,
		Jitter:    sc.Jitter,
		JoinProb:  sc.JoinProb,
		LeaveProb: sc.LeaveProb,
		Width:     sc.Side,
		Height:    sc.Side,
	}
	tick := cbtc.DriftTick(profile)
	if *lifetime {
		tick = cbtc.LifetimeTick(profile)
	}
	runStart := time.Now()
	rep, err := fleet.Run(ctx, *ticks, tick)
	var quar *cbtc.QuarantineError
	if err != nil && !errors.As(err, &quar) {
		fail(err)
	}
	runTime := time.Since(runStart)

	fmt.Printf("fleet %s: %d networks × %d nodes, ticks %d..%d, workers=%d\n\n",
		sc.Name, rep.Networks, *n, rep.Watermarks.Min, rep.Watermarks.Max, *workers)
	tb := stats.NewTable("metric", "mean", "stddev", "min", "max")
	addStream := func(name string, s stats.Stream) {
		tb.AddRow(name, stats.F(s.Mean, 2), stats.F(s.StdDev(), 2), stats.F(s.Min(), 2), stats.F(s.Max(), 2))
	}
	addStream("avg degree", rep.Series.Degree)
	addStream("avg radius", rep.Series.Radius)
	addStream("components", rep.Series.Components)
	addStream("energy", rep.Series.Energy)
	if *lifetime {
		addStream("residual", rep.Series.Residual)
		addStream("energy var", rep.Series.EnergyVar)
	}
	fmt.Print(tb.String())
	fmt.Printf("\nlive nodes %d, edges %d, events %d, degree p50/p95 %d/%d, partition preserved %d/%d\n",
		rep.Live, rep.Edges, rep.Events,
		rep.DegreeDist.Quantile(0.5), rep.DegreeDist.Quantile(0.95),
		rep.Preserved, rep.Networks)
	var netTicks float64
	for _, nr := range rep.PerNetwork {
		netTicks += float64(nr.Ticks)
	}
	fmt.Printf("build %v; run %v — %.1f network-ticks/s, %.0f events/s\n",
		buildTime.Round(time.Millisecond), runTime.Round(time.Millisecond),
		netTicks/runTime.Seconds(), float64(rep.Events)/runTime.Seconds())

	if *verbose {
		fmt.Println()
		nt := stats.NewTable("net", "kind", "ticks", "events", "live", "edges", "comps", "degree", "radius", "max r", "energy", "tick µs", "preserved")
		for _, nr := range rep.PerNetwork {
			nt.AddRow(fmt.Sprint(nr.Net), nr.Kind.String(), fmt.Sprint(nr.Ticks), fmt.Sprint(nr.Events),
				fmt.Sprint(nr.Final.Live), fmt.Sprint(nr.Final.Edges), fmt.Sprint(nr.Final.Components),
				stats.F(nr.Final.AvgDegree, 2), stats.F(nr.Final.AvgRadius, 1), stats.F(maxRadius(fleet, &nr), 1),
				stats.F(nr.Final.Energy, 0), stats.F(float64(nr.Sched.TickNs)/1e3, 0), fmt.Sprint(nr.Preserved))
		}
		fmt.Print(nt.String())
	}
	if rep.Quarantined > 0 {
		fmt.Printf("\n%d network(s) quarantined:\n", rep.Quarantined)
		ct := stats.NewTable("net", "tick", "panic")
		for _, nr := range rep.PerNetwork {
			if nr.Quarantine != nil {
				ct.AddRow(fmt.Sprint(nr.Net), fmt.Sprint(nr.Quarantine.Tick), nr.Quarantine.Err)
			}
		}
		fmt.Print(ct.String())
	}
	// Quarantined members are excluded from Preserved (their sessions are
	// not readable), so the guarantee is judged over the healthy members.
	if rep.Preserved != rep.Networks-rep.Quarantined {
		fmt.Fprintln(os.Stderr, "fleetsim: SOME NETWORKS LOST THE GROUND-TRUTH PARTITION")
		os.Exit(1)
	}
	if *lifetime {
		// Partitioning is this workload's endpoint, not a failure: the
		// table reports each member's lifetime-to-first-partition next to
		// its energy balance, and the fleet's lifetime is the worst one.
		fmt.Println()
		lt := stats.NewTable("net", "kind", "first partition", "live", "residual", "energy var")
		fleetLifetime := int64(-1)
		for _, nr := range rep.PerNetwork {
			fp := "-"
			if t := firstPartition[nr.Net].Load(); t >= 0 {
				fp = fmt.Sprint(t)
				if fleetLifetime < 0 || t < fleetLifetime {
					fleetLifetime = t
				}
			}
			lt.AddRow(fmt.Sprint(nr.Net), nr.Kind.String(), fp,
				fmt.Sprint(nr.Final.Live), stats.F(nr.Final.Residual, 1), stats.F(nr.Final.EnergyVar, 1))
		}
		fmt.Print(lt.String())
		if fleetLifetime >= 0 {
			fmt.Printf("fleet lifetime: first partition at tick %d\n", fleetLifetime)
		} else {
			fmt.Println("fleet lifetime: no network partitioned within the run")
		}
	}
	if *slo == "connected" {
		violated := false
		vt := stats.NewTable("net", "first partitioned tick")
		for i := range firstPartition {
			if t := firstPartition[i].Load(); t >= 0 {
				violated = true
				vt.AddRow(fmt.Sprint(i), fmt.Sprint(t))
			}
		}
		if violated {
			fmt.Fprintln(os.Stderr, "\nfleetsim: SLO 'connected' VIOLATED:")
			fmt.Fprint(os.Stderr, vt.String())
			os.Exit(1)
		}
		fmt.Println("\nSLO 'connected' held: every network stayed connected at every tick")
	}
}

// maxRadius scans one member's live nodes through the session's cached
// per-node radii — Session.NodeRadius is an O(1) read on incremental
// stacks, so the whole column costs one pass over the id space.
func maxRadius(fleet *cbtc.Fleet, nr *cbtc.FleetNetworkReport) float64 {
	if nr.Health != cbtc.MemberHealthy {
		return 0
	}
	sess := fleet.Session(nr.Net)
	var r float64
	for id := 0; id < sess.Len(); id++ {
		if !sess.Alive(id) {
			continue
		}
		nr, err := sess.NodeRadius(id)
		if err != nil {
			return 0
		}
		if nr > r {
			r = nr
		}
	}
	return r
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fleetsim:", err)
	os.Exit(1)
}
