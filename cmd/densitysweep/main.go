// Command densitysweep demonstrates the scalability argument of the
// paper's introduction: as deployment density grows, the uncontrolled
// (max-power) degree explodes linearly while CBTC's degree stays
// essentially constant and its per-node radius shrinks.
//
// Usage:
//
//	densitysweep [-networks 10] [-radius 500] [-seed 1]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"cbtc"
)

func main() {
	networks := flag.Int("networks", 10, "networks per density")
	radius := flag.Float64("radius", 500, "maximum transmission radius R")
	seed := flag.Uint64("seed", 1, "base random seed")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	rows, err := cbtc.RunDensitySweepContext(ctx, cbtc.DensitySweepParams{
		Networks:  *networks,
		MaxRadius: *radius,
		Seed:      *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "densitysweep:", err)
		os.Exit(1)
	}
	fmt.Printf("density sweep: 1500x1500 region, R=%g, %d networks per density\n", *radius, *networks)
	fmt.Println("CBTC = α=5π/6 with shrink-back and pairwise removal")
	fmt.Println()
	fmt.Print(cbtc.RenderDensitySweep(rows))
	fmt.Println("\nMax-power degree grows linearly with density; CBTC's stays flat —")
	fmt.Println("the reason topology control scales to dense deployments.")
}
