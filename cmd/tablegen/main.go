// Command tablegen regenerates Table 1 of the paper: average node degree
// and average transmission radius of CBTC under each optimization stack,
// averaged over randomly generated networks, printed next to the values
// the paper reports.
//
// Usage:
//
//	tablegen [-networks 100] [-nodes 100] [-width 1500] [-height 1500]
//	         [-radius 500] [-seed 1] [-csv]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"cbtc"
	"cbtc/internal/stats"
)

func main() {
	networks := flag.Int("networks", 100, "number of random networks to average over")
	nodes := flag.Int("nodes", 100, "nodes per network")
	width := flag.Float64("width", 1500, "region width")
	height := flag.Float64("height", 1500, "region height")
	radius := flag.Float64("radius", 500, "maximum transmission radius R")
	seed := flag.Uint64("seed", 1, "base random seed")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	res, err := cbtc.RunTable1Context(ctx, cbtc.Table1Params{
		Networks:  *networks,
		Nodes:     *nodes,
		Width:     *width,
		Height:    *height,
		MaxRadius: *radius,
		Seed:      *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tablegen:", err)
		os.Exit(1)
	}

	fmt.Printf("Table 1 reproduction: %d networks × %d nodes, %gx%g region, R=%g\n\n",
		res.Params.Networks, res.Params.Nodes, res.Params.Width, res.Params.Height, res.Params.MaxRadius)
	if *csv {
		tb := stats.NewTable("column", "degree_paper", "degree_measured", "radius_paper", "radius_measured")
		for i, col := range res.Columns {
			tb.AddRow(col.Name,
				stats.F(col.PaperDegree, 1), stats.F(res.Cells[i].AvgDegree, 2),
				stats.F(col.PaperRadius, 1), stats.F(res.Cells[i].AvgRadius, 2))
		}
		fmt.Print(tb.CSV())
		return
	}
	fmt.Print(res.Render())
}
