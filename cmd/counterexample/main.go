// Command counterexample numerically verifies the two adversarial
// constructions of the paper:
//
//   - Example 2.1 (Figure 2): for 2π/3 < α ≤ 5π/6 the neighbor relation
//     N_α is not symmetric — v discovers u0 but u0 never reaches v.
//   - Theorem 2.4 (Figure 5): for α = 5π/6 + ε the graph G_α loses the
//     only bridge between two clusters and disconnects, even though G_R
//     is connected. At α = 5π/6 exactly, the same placement stays
//     connected: the bound is tight.
//
// Usage:
//
//	counterexample [-eps 0.1] [-radius 500]
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"slices"

	"cbtc"
	"cbtc/internal/workload"
)

func main() {
	eps := flag.Float64("eps", 0.1, "ε for Figure 5 (α = 5π/6 + ε); also sets Example 2.1's α = 2π/3 + 2ε")
	radius := flag.Float64("radius", 500, "maximum transmission radius R")
	flag.Parse()

	ctx := context.Background()
	ok := true
	ok = example21(ctx, *radius, 2*math.Pi/3+2**eps) && ok
	ok = figure5(ctx, *radius, *eps) && ok
	if !ok {
		os.Exit(1)
	}
}

func run(ctx context.Context, nodes []cbtc.Point, radius, alpha float64) (*cbtc.Result, error) {
	eng, err := cbtc.New(cbtc.WithMaxRadius(radius), cbtc.WithAlpha(alpha))
	if err != nil {
		return nil, err
	}
	return eng.Run(ctx, nodes)
}

func example21(ctx context.Context, radius, alpha float64) bool {
	fmt.Printf("=== Example 2.1: asymmetry of N_α (α = %.4f rad = %.1f°) ===\n",
		alpha, alpha*180/math.Pi)
	pos, err := workload.Example21(alpha, radius)
	if err != nil {
		fmt.Println("construction failed:", err)
		return false
	}
	res, err := run(ctx, pos, radius, alpha)
	if err != nil {
		fmt.Println("CBTC failed:", err)
		return false
	}
	const u0, v = 0, 4
	nu0 := sorted(res.DirectedNeighbors(u0))
	nv := sorted(res.DirectedNeighbors(v))
	fmt.Printf("  N_α(u0) = %v   (paper: [1 2 3])\n", nu0)
	fmt.Printf("  N_α(v)  = %v   (paper: [0])\n", nv)
	asymmetric := slices.Contains(nv, u0) && !slices.Contains(nu0, v)
	fmt.Printf("  (v,u0) ∈ N_α and (u0,v) ∉ N_α: %v\n", asymmetric)
	closureConnected := res.Components() == 1
	fmt.Printf("  symmetric closure connected: %v\n\n", closureConnected)
	return asymmetric && closureConnected
}

func figure5(ctx context.Context, radius, eps float64) bool {
	alpha := cbtc.AlphaConnectivity + eps
	fmt.Printf("=== Figure 5: disconnection above the 5π/6 bound (ε = %.4f) ===\n", eps)
	pos, err := workload.Figure5(eps, radius)
	if err != nil {
		fmt.Println("construction failed:", err)
		return false
	}
	above, err := run(ctx, pos, radius, alpha)
	if err != nil {
		fmt.Println("CBTC failed:", err)
		return false
	}
	// A max-power Result has G = G_R, so its Components() counts the
	// ground-truth components through the public API.
	eng, err := cbtc.New(cbtc.WithMaxRadius(radius))
	if err != nil {
		fmt.Println("bad config:", err)
		return false
	}
	mp, err := eng.MaxPower(pos)
	if err != nil {
		fmt.Println("max-power baseline failed:", err)
		return false
	}
	fmt.Printf("  G_R connected: %v (bridge u0-v0 present: %v)\n",
		mp.Components() == 1, mp.G.HasEdge(0, 4))
	fmt.Printf("  α = 5π/6+ε: components = %d, bridge present: %v  (paper: disconnected)\n",
		above.Components(), above.G.HasEdge(0, 4))

	at, err := run(ctx, pos, radius, cbtc.AlphaConnectivity)
	if err != nil {
		fmt.Println("CBTC failed:", err)
		return false
	}
	fmt.Printf("  α = 5π/6 exactly: components = %d  (bound is tight)\n", at.Components())

	return mp.Components() == 1 &&
		above.Components() > 1 &&
		at.Components() == 1
}

func sorted(xs []int) []int {
	slices.Sort(xs)
	return xs
}
