// Command counterexample numerically verifies the two adversarial
// constructions of the paper:
//
//   - Example 2.1 (Figure 2): for 2π/3 < α ≤ 5π/6 the neighbor relation
//     N_α is not symmetric — v discovers u0 but u0 never reaches v.
//   - Theorem 2.4 (Figure 5): for α = 5π/6 + ε the graph G_α loses the
//     only bridge between two clusters and disconnects, even though G_R
//     is connected. At α = 5π/6 exactly, the same placement stays
//     connected: the bound is tight.
//
// Usage:
//
//	counterexample [-eps 0.1] [-radius 500]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"cbtc/internal/core"
	"cbtc/internal/graph"
	"cbtc/internal/radio"
	"cbtc/internal/workload"
)

func main() {
	eps := flag.Float64("eps", 0.1, "ε for Figure 5 (α = 5π/6 + ε); also sets Example 2.1's α = 2π/3 + 2ε")
	radius := flag.Float64("radius", 500, "maximum transmission radius R")
	flag.Parse()

	m := radio.Default(*radius)
	ok := true
	ok = example21(m, 2*math.Pi/3+2**eps) && ok
	ok = figure5(m, *eps) && ok
	if !ok {
		os.Exit(1)
	}
}

func example21(m radio.Model, alpha float64) bool {
	fmt.Printf("=== Example 2.1: asymmetry of N_α (α = %.4f rad = %.1f°) ===\n",
		alpha, alpha*180/math.Pi)
	pos, err := workload.Example21(alpha, m.MaxRadius)
	if err != nil {
		fmt.Println("construction failed:", err)
		return false
	}
	exec, err := core.Run(pos, m, alpha)
	if err != nil {
		fmt.Println("CBTC failed:", err)
		return false
	}
	n := exec.Nalpha()
	const u0, v = 0, 4
	fmt.Printf("  N_α(u0) = %v   (paper: [u1 u2 u3])\n", n.Successors(u0))
	fmt.Printf("  N_α(v)  = %v   (paper: [u0])\n", n.Successors(v))
	asymmetric := n.HasArc(v, u0) && !n.HasArc(u0, v)
	fmt.Printf("  (v,u0) ∈ N_α and (u0,v) ∉ N_α: %v\n", asymmetric)
	closureConnected := graph.IsConnected(n.SymmetricClosure())
	fmt.Printf("  symmetric closure connected: %v\n\n", closureConnected)
	return asymmetric && closureConnected
}

func figure5(m radio.Model, eps float64) bool {
	alpha := core.AlphaConnectivity + eps
	fmt.Printf("=== Figure 5: disconnection above the 5π/6 bound (ε = %.4f) ===\n", eps)
	pos, err := workload.Figure5(eps, m.MaxRadius)
	if err != nil {
		fmt.Println("construction failed:", err)
		return false
	}
	gr := core.MaxPowerGraph(pos, m)
	fmt.Printf("  G_R connected: %v (bridge u0-v0 present: %v)\n",
		graph.IsConnected(gr), gr.HasEdge(0, 4))

	execAbove, err := core.Run(pos, m, alpha)
	if err != nil {
		fmt.Println("CBTC failed:", err)
		return false
	}
	gAbove := execAbove.Nalpha().SymmetricClosure()
	fmt.Printf("  α = 5π/6+ε: components = %d, bridge present: %v  (paper: disconnected)\n",
		graph.ComponentCount(gAbove), gAbove.HasEdge(0, 4))

	execAt, err := core.Run(pos, m, core.AlphaConnectivity)
	if err != nil {
		fmt.Println("CBTC failed:", err)
		return false
	}
	gAt := execAt.Nalpha().SymmetricClosure()
	fmt.Printf("  α = 5π/6 exactly: components = %d  (bound is tight)\n",
		graph.ComponentCount(gAt))

	return graph.IsConnected(gr) &&
		!graph.IsConnected(gAbove) &&
		graph.IsConnected(gAt)
}
