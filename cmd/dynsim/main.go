// Command dynsim executes a scripted dynamic-reconfiguration scenario
// (§4 of the paper) described as JSON: an initial placement plus a
// timeline of crash/move/add events and checkpoints.
//
// Two execution modes are available:
//
//   - "proto" (default) runs the distributed protocol with the Neighbor
//     Discovery Protocol enabled on the discrete-event simulator. At
//     every checkpoint the live topology — the symmetric closure of the
//     nodes' dynamic neighbor tables — is compared against the
//     ground-truth maximum-power graph over current positions.
//   - "session" replays the same events through the library's public
//     Session API: the §4 state machines repair the oracle topology
//     incrementally, with no message passing. Checkpoints report the
//     snapshot's connectivity-preservation guarantee.
//
// Usage:
//
//	dynsim -f scenario.json [-mode proto|session]
//	dynsim -demo            # run the built-in crash-and-replace demo
//
// In session mode the evolving state is durable: -checkpoint FILE
// writes the final session state as a versioned binary checkpoint, and
// -resume FILE starts from a previously written checkpoint instead of
// the scenario's initial placement (the scenario's engine parameters
// must match the ones the checkpoint was produced under), replaying the
// scenario's event timeline on top of the restored topology.
//
// Scenario format (times are relative to the end of the settle phase):
//
//	{
//	  "maxRadius": 500,
//	  "alpha": 2.618,
//	  "nodes": [[0,0], [300,0], [600,0]],
//	  "dropProb": 0.05,
//	  "events": [
//	    {"at": 50,  "op": "check", "label": "steady state"},
//	    {"at": 100, "op": "crash", "node": 1},
//	    {"at": 200, "op": "move",  "node": 2, "x": 450, "y": 0},
//	    {"at": 300, "op": "add",   "x": 300, "y": 50},
//	    {"at": 500, "op": "check", "label": "after repair"}
//	  ]
//	}
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"cbtc"
	"cbtc/internal/scenario"
	"cbtc/internal/stats"
)

const demoScenario = `{
  "maxRadius": 500,
  "nodes": [[0,0], [300,0], [600,0], [900,0], [1200,0]],
  "events": [
    {"at": 50,  "op": "check", "label": "steady state"},
    {"at": 100, "op": "crash", "node": 2},
    {"at": 300, "op": "check", "label": "after bridge crash"},
    {"at": 400, "op": "add",   "x": 600, "y": 40},
    {"at": 700, "op": "check", "label": "after replacement joins"}
  ]
}`

func main() {
	file := flag.String("f", "", "scenario JSON file")
	demo := flag.Bool("demo", false, "run the built-in demo scenario")
	mode := flag.String("mode", "proto", "execution mode: proto (distributed simulator) | session (library Session API)")
	ckpt := flag.String("checkpoint", "", "session mode: write the final session state to this file")
	resume := flag.String("resume", "", "session mode: restore the session from this checkpoint instead of the scenario placement")
	flag.Parse()

	var s *scenario.Scenario
	var err error
	switch {
	case *demo || *file == "":
		s, err = scenario.Parse(strings.NewReader(demoScenario))
	default:
		var f *os.File
		f, err = os.Open(*file)
		if err == nil {
			defer f.Close()
			s, err = scenario.Parse(f)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynsim:", err)
		os.Exit(1)
	}

	switch *mode {
	case "proto":
		if *ckpt != "" || *resume != "" {
			fmt.Fprintln(os.Stderr, "dynsim: -checkpoint and -resume require -mode session")
			os.Exit(1)
		}
		runProto(s)
	case "session":
		runSession(s, *ckpt, *resume)
	default:
		fmt.Fprintf(os.Stderr, "dynsim: unknown mode %q (want proto or session)\n", *mode)
		os.Exit(1)
	}
}

func runProto(s *scenario.Scenario) {
	report, err := scenario.Run(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynsim:", err)
		os.Exit(1)
	}

	fmt.Printf("dynamic scenario (distributed protocol): %d initial nodes, %d events\n\n",
		len(s.Nodes), len(s.Events))
	tb := stats.NewTable("time", "checkpoint", "components", "edges", "matches G_R")
	for _, cp := range report.Checkpoints {
		tb.AddRow(stats.F(cp.At, 0), cp.Label,
			fmt.Sprint(cp.Components), fmt.Sprint(cp.Edges), fmt.Sprint(cp.PartitionOK))
	}
	fmt.Print(tb.String())
	fmt.Printf("\nreconfiguration events: %d joins, %d leaves, %d angle changes, %d regrows\n",
		report.Joins, report.Leaves, report.AngleChanges, report.Regrows)
	if !report.FinalOK {
		fmt.Fprintln(os.Stderr, "dynsim: FINAL TOPOLOGY DOES NOT MATCH GROUND TRUTH")
		os.Exit(1)
	}
	fmt.Println("final topology preserves the ground-truth partition ✓")
}

// runSession replays the scenario through the public Session API: the
// oracle-level §4 reconfiguration with incremental repair, no message
// passing. Events between checkpoints are coalesced into one
// Session.ApplyBatch call — the timeline only observes the topology at
// checkpoints, so each inter-checkpoint burst repairs as a single
// region-union recompute.
func runSession(s *scenario.Scenario, ckpt, resume string) {
	opts := []cbtc.Option{cbtc.WithMaxRadius(s.MaxRadius)}
	if s.Alpha != 0 {
		opts = append(opts, cbtc.WithAlpha(s.Alpha))
	}
	eng, err := cbtc.New(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynsim:", err)
		os.Exit(1)
	}
	var sess *cbtc.Session
	if resume != "" {
		f, err := os.Open(resume)
		if err == nil {
			sess, err = eng.RestoreSession(f)
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynsim: resume:", err)
			os.Exit(1)
		}
	} else {
		nodes := make([]cbtc.Point, len(s.Nodes))
		for i, xy := range s.Nodes {
			nodes[i] = cbtc.Pt(xy[0], xy[1])
		}
		sess, err = eng.NewSession(context.Background(), nodes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynsim:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("dynamic scenario (library Session): %d initial nodes, %d events\n\n",
		len(s.Nodes), len(s.Events))
	tb := stats.NewTable("time", "checkpoint", "components", "edges", "matches G_R")
	check := func(at float64, label string) bool {
		snap, err := sess.Snapshot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynsim:", err)
			os.Exit(1)
		}
		ok := snap.PreservesConnectivity()
		tb.AddRow(stats.F(at, 0), label,
			fmt.Sprint(snap.Components()), fmt.Sprint(snap.G.EdgeCount()), fmt.Sprint(ok))
		return ok
	}

	var pending []cbtc.Event
	flush := func() {
		if len(pending) == 0 {
			return
		}
		if _, err := sess.ApplyBatch(pending); err != nil {
			fmt.Fprintln(os.Stderr, "dynsim:", err)
			os.Exit(1)
		}
		pending = pending[:0]
	}
	for _, ev := range s.SortedEvents() {
		switch ev.Op {
		case scenario.OpCrash:
			pending = append(pending, cbtc.LeaveEvent(ev.Node))
		case scenario.OpMove:
			pending = append(pending, cbtc.MoveEvent(ev.Node, cbtc.Pt(ev.X, ev.Y)))
		case scenario.OpAdd:
			pending = append(pending, cbtc.JoinEvent(cbtc.Pt(ev.X, ev.Y)))
		case scenario.OpCheck:
			flush()
			if !check(ev.At, ev.Label) {
				fmt.Print(tb.String())
				fmt.Fprintln(os.Stderr, "dynsim: CHECKPOINT LOST THE GROUND-TRUTH PARTITION")
				os.Exit(1)
			}
		}
	}
	flush()
	finalOK := check(-1, "final")
	fmt.Print(tb.String())

	if ckpt != "" {
		f, err := os.Create(ckpt)
		if err == nil {
			err = sess.Checkpoint(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynsim: checkpoint:", err)
			os.Exit(1)
		}
		fmt.Printf("\nsession state checkpointed to %s\n", ckpt)
	}

	st := sess.Stats()
	fmt.Printf("\nreconfiguration events: %d joins, %d leaves, %d moves, %d angle changes, %d regrows, %d repairs\n",
		st.Joins, st.Leaves, st.Moves, st.AngleChanges, st.Regrows, st.Repairs)
	if !finalOK {
		fmt.Fprintln(os.Stderr, "dynsim: FINAL TOPOLOGY DOES NOT MATCH GROUND TRUTH")
		os.Exit(1)
	}
	fmt.Println("final topology preserves the ground-truth partition ✓")
}
