// Command dynsim executes a scripted dynamic-reconfiguration scenario
// (§4 of the paper) described as JSON: an initial placement plus a
// timeline of crash/move/add events and checkpoints. At every checkpoint
// the live topology — the symmetric closure of the nodes' dynamic
// neighbor tables — is compared against the ground-truth maximum-power
// graph over current positions.
//
// Usage:
//
//	dynsim -f scenario.json
//	dynsim -demo            # run the built-in crash-and-replace demo
//
// Scenario format (times are relative to the end of the settle phase):
//
//	{
//	  "maxRadius": 500,
//	  "alpha": 2.618,
//	  "nodes": [[0,0], [300,0], [600,0]],
//	  "dropProb": 0.05,
//	  "events": [
//	    {"at": 50,  "op": "check", "label": "steady state"},
//	    {"at": 100, "op": "crash", "node": 1},
//	    {"at": 200, "op": "move",  "node": 2, "x": 450, "y": 0},
//	    {"at": 300, "op": "add",   "x": 300, "y": 50},
//	    {"at": 500, "op": "check", "label": "after repair"}
//	  ]
//	}
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cbtc/internal/scenario"
	"cbtc/internal/stats"
)

const demoScenario = `{
  "maxRadius": 500,
  "nodes": [[0,0], [300,0], [600,0], [900,0], [1200,0]],
  "events": [
    {"at": 50,  "op": "check", "label": "steady state"},
    {"at": 100, "op": "crash", "node": 2},
    {"at": 300, "op": "check", "label": "after bridge crash"},
    {"at": 400, "op": "add",   "x": 600, "y": 40},
    {"at": 700, "op": "check", "label": "after replacement joins"}
  ]
}`

func main() {
	file := flag.String("f", "", "scenario JSON file")
	demo := flag.Bool("demo", false, "run the built-in demo scenario")
	flag.Parse()

	var s *scenario.Scenario
	var err error
	switch {
	case *demo || *file == "":
		s, err = scenario.Parse(strings.NewReader(demoScenario))
	default:
		var f *os.File
		f, err = os.Open(*file)
		if err == nil {
			defer f.Close()
			s, err = scenario.Parse(f)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynsim:", err)
		os.Exit(1)
	}

	report, err := scenario.Run(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynsim:", err)
		os.Exit(1)
	}

	fmt.Printf("dynamic scenario: %d initial nodes, %d events\n\n", len(s.Nodes), len(s.Events))
	tb := stats.NewTable("time", "checkpoint", "components", "edges", "matches G_R")
	for _, cp := range report.Checkpoints {
		tb.AddRow(stats.F(cp.At, 0), cp.Label,
			fmt.Sprint(cp.Components), fmt.Sprint(cp.Edges), fmt.Sprint(cp.PartitionOK))
	}
	fmt.Print(tb.String())
	fmt.Printf("\nreconfiguration events: %d joins, %d leaves, %d angle changes, %d regrows\n",
		report.Joins, report.Leaves, report.AngleChanges, report.Regrows)
	if !report.FinalOK {
		fmt.Fprintln(os.Stderr, "dynsim: FINAL TOPOLOGY DOES NOT MATCH GROUND TRUTH")
		os.Exit(1)
	}
	fmt.Println("final topology preserves the ground-truth partition ✓")
}
