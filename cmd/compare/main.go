// Command compare runs CBTC (all optimization stacks) next to the
// position-based topology-control baselines from the paper's
// related-work section — relative neighborhood graph, Gabriel graph,
// Yao/θ-graph, and the centralized min-max-radius assignment — on the
// same random network, reporting degree, radius, route stretch,
// interference and robustness for each.
//
// Usage:
//
//	compare [-n 100] [-width 1500] [-height 1500] [-radius 500] [-seed 1]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"cbtc"
	"cbtc/internal/stats"
	"cbtc/internal/workload"
)

func main() {
	n := flag.Int("n", 100, "number of nodes")
	width := flag.Float64("width", 1500, "region width")
	height := flag.Float64("height", 1500, "region height")
	radius := flag.Float64("radius", 500, "maximum transmission radius R")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	nodes := workload.Uniform(workload.Rand(*seed), *n, *width, *height)
	rows, err := cbtc.CompareBaselines(ctx, nodes, cbtc.Config{MaxRadius: *radius})
	if err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(1)
	}

	fmt.Printf("topology comparison: %d nodes, %gx%g region, R=%g, seed=%d\n\n",
		*n, *width, *height, *radius, *seed)
	tb := stats.NewTable("topology", "edges", "deg", "radius", "maxrad",
		"power-stretch", "hop-stretch", "avg-intf", "diam", "biconn", "connected")
	for _, row := range rows {
		r := row.Result
		tb.AddRow(row.Name,
			fmt.Sprint(r.G.EdgeCount()),
			stats.F(r.AvgDegree, 1),
			stats.F(r.AvgRadius, 0),
			stats.F(r.MaxRadius(), 0),
			stats.F(r.PowerStretch(), 2),
			stats.F(r.HopStretch(), 2),
			stats.F(r.AvgInterference(), 1),
			fmt.Sprint(r.Diameter()),
			fmt.Sprint(r.IsBiconnected()),
			fmt.Sprint(r.PreservesConnectivity()))
	}
	fmt.Print(tb.String())
	fmt.Println("\nCBTC uses only angle-of-arrival information; the baselines require")
	fmt.Println("exact positions. The min-max-radius row is the centralized optimum")
	fmt.Println("for the maximum radius; its value equals the G_R bottleneck:",
		stats.F(rows[0].Result.BottleneckRadius(), 0))
}
