// Command compare runs CBTC (all optimization stacks) next to the
// position-based topology-control baselines from the paper's
// related-work section — relative neighborhood graph, Gabriel graph,
// Yao/θ-graph, and the centralized min-max-radius assignment — on the
// same random network, reporting degree, radius, route stretch,
// interference and robustness for each.
//
// Usage:
//
//	compare [-n 100] [-width 1500] [-height 1500] [-radius 500] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"cbtc"
	"cbtc/internal/stats"
	"cbtc/internal/workload"
)

func main() {
	n := flag.Int("n", 100, "number of nodes")
	width := flag.Float64("width", 1500, "region width")
	height := flag.Float64("height", 1500, "region height")
	radius := flag.Float64("radius", 500, "maximum transmission radius R")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	nodes := workload.Uniform(workload.Rand(*seed), *n, *width, *height)
	cfg := cbtc.Config{MaxRadius: *radius}

	type entry struct {
		name string
		res  *cbtc.Result
		err  error
	}
	var entries []entry
	add := func(name string, res *cbtc.Result, err error) {
		entries = append(entries, entry{name: name, res: res, err: err})
	}

	res, err := cbtc.MaxPowerTopology(nodes, cfg)
	add("max power", res, err)

	res, err = cbtc.Run(nodes, cfg)
	add("CBTC basic 5π/6", res, err)

	res, err = cbtc.Run(nodes, cfg.AllOptimizations())
	add("CBTC all-ops 5π/6", res, err)

	cfg23 := cfg
	cfg23.Alpha = cbtc.AlphaAsymmetric
	res, err = cbtc.Run(nodes, cfg23.AllOptimizations())
	add("CBTC all-ops 2π/3", res, err)

	for _, kind := range cbtc.BaselineKinds() {
		res, err = cbtc.RunBaseline(kind, nodes, cfg)
		add(kind.String()+" (positions)", res, err)
	}

	fmt.Printf("topology comparison: %d nodes, %gx%g region, R=%g, seed=%d\n\n",
		*n, *width, *height, *radius, *seed)
	tb := stats.NewTable("topology", "edges", "deg", "radius", "maxrad",
		"power-stretch", "hop-stretch", "avg-intf", "diam", "biconn", "connected")
	for _, e := range entries {
		if e.err != nil {
			fmt.Fprintf(os.Stderr, "compare: %s: %v\n", e.name, e.err)
			os.Exit(1)
		}
		r := e.res
		tb.AddRow(e.name,
			fmt.Sprint(r.G.EdgeCount()),
			stats.F(r.AvgDegree, 1),
			stats.F(r.AvgRadius, 0),
			stats.F(r.MaxRadius(), 0),
			stats.F(r.PowerStretch(), 2),
			stats.F(r.HopStretch(), 2),
			stats.F(r.AvgInterference(), 1),
			fmt.Sprint(r.Diameter()),
			fmt.Sprint(r.IsBiconnected()),
			fmt.Sprint(r.PreservesConnectivity()))
	}
	fmt.Print(tb.String())
	fmt.Println("\nCBTC uses only angle-of-arrival information; the baselines require")
	fmt.Println("exact positions. The min-max-radius row is the centralized optimum")
	fmt.Println("for the maximum radius; its value equals the G_R bottleneck:",
		stats.F(entries[0].res.BottleneckRadius(), 0))
}
