// Command cbtcsim runs cone-based topology control on one network and
// reports the resulting topology.
//
// Two execution modes are available: "oracle" computes the exact
// minimal-power outcome of the paper's analysis; "sim" runs the actual
// distributed Hello/Ack protocol of the paper's Figure 1 on a
// discrete-event radio simulator (optionally with loss, duplication,
// delivery jitter and angle-of-arrival noise).
//
// Usage:
//
//	cbtcsim [-n 100] [-width 1500] [-height 1500] [-radius 500]
//	        [-alpha 2.618] [-seed 1] [-mode oracle|sim]
//	        [-shrink] [-asym] [-pairwise] [-all]
//	        [-drop 0] [-dup 0] [-jitter 0] [-aoa-noise 0]
//	        [-edges] [-svg out.svg]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"

	"cbtc"
	"cbtc/internal/stats"
	"cbtc/internal/svgplot"
	"cbtc/internal/workload"
)

func main() {
	n := flag.Int("n", 100, "number of nodes")
	width := flag.Float64("width", 1500, "region width")
	height := flag.Float64("height", 1500, "region height")
	radius := flag.Float64("radius", 500, "maximum transmission radius R")
	alpha := flag.Float64("alpha", cbtc.AlphaConnectivity, "cone angle α in radians")
	seed := flag.Uint64("seed", 1, "random seed")
	mode := flag.String("mode", "oracle", "execution mode: oracle | sim")
	shrink := flag.Bool("shrink", false, "enable shrink-back (op1)")
	asym := flag.Bool("asym", false, "enable asymmetric edge removal (op2, needs α ≤ 2π/3)")
	pairwise := flag.Bool("pairwise", false, "enable pairwise edge removal (op3)")
	all := flag.Bool("all", false, "enable all optimizations applicable at α")
	drop := flag.Float64("drop", 0, "message drop probability (sim mode)")
	dup := flag.Float64("dup", 0, "message duplication probability (sim mode)")
	jitter := flag.Float64("jitter", 0, "delivery jitter (sim mode)")
	aoaNoise := flag.Float64("aoa-noise", 0, "angle-of-arrival noise std dev in radians (sim mode)")
	edges := flag.Bool("edges", false, "print the final edge list")
	svgOut := flag.String("svg", "", "write the topology as SVG to this file")
	jsonOut := flag.Bool("json", false, "emit the result summary as JSON")
	flag.Parse()

	nodes := workload.Uniform(workload.Rand(*seed), *n, *width, *height)
	opts := []cbtc.Option{
		cbtc.WithAlpha(*alpha),
		cbtc.WithMaxRadius(*radius),
	}
	if *shrink {
		opts = append(opts, cbtc.WithShrinkBack())
	}
	if *asym {
		opts = append(opts, cbtc.WithAsymmetricRemoval())
	}
	if *pairwise {
		opts = append(opts, cbtc.WithPairwiseRemoval(cbtc.PairwiseLengthFiltered))
	}
	if *all {
		opts = append(opts, cbtc.WithAllOptimizations())
	}
	eng, err := cbtc.New(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cbtcsim:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var res *cbtc.Result
	switch *mode {
	case "oracle":
		res, err = eng.Run(ctx, nodes)
	case "sim":
		res, err = eng.Simulate(ctx, nodes, cbtc.SimOptions{
			Seed:     *seed,
			DropProb: *drop,
			DupProb:  *dup,
			Jitter:   *jitter,
			AoANoise: *aoaNoise,
		})
	default:
		err = fmt.Errorf("unknown mode %q (want oracle or sim)", *mode)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cbtcsim:", err)
		os.Exit(1)
	}

	if *jsonOut {
		type edgeJSON struct {
			U, V int
			Dist float64
		}
		out := struct {
			Alpha         float64    `json:"alpha"`
			Nodes         int        `json:"nodes"`
			MaxRadius     float64    `json:"maxRadius"`
			Mode          string     `json:"mode"`
			EdgesGR       int        `json:"edgesGR"`
			EdgesG        int        `json:"edgesG"`
			AvgDegree     float64    `json:"avgDegree"`
			AvgRadius     float64    `json:"avgRadius"`
			Components    int        `json:"components"`
			Connected     bool       `json:"connectivityPreserved"`
			BoundaryNodes int        `json:"boundaryNodes"`
			Radii         []float64  `json:"radii"`
			Edges         []edgeJSON `json:"edges,omitempty"`
		}{
			Alpha:         *alpha,
			Nodes:         *n,
			MaxRadius:     *radius,
			Mode:          *mode,
			EdgesGR:       res.GR.EdgeCount(),
			EdgesG:        res.G.EdgeCount(),
			AvgDegree:     res.AvgDegree,
			AvgRadius:     res.AvgRadius,
			Components:    res.Components(),
			Connected:     res.PreservesConnectivity(),
			BoundaryNodes: res.BoundaryCount(),
			Radii:         res.Radii,
		}
		if *edges {
			for _, e := range res.G.Edges() {
				out.Edges = append(out.Edges, edgeJSON{U: e.U, V: e.V, Dist: res.Pos[e.U].Dist(res.Pos[e.V])})
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "cbtcsim:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("CBTC(α=%.4f rad = %.1f°), %d nodes, %gx%g region, R=%g, mode=%s\n\n",
		*alpha, *alpha*180/math.Pi, *n, *width, *height, *radius, *mode)
	tb := stats.NewTable("metric", "value")
	tb.AddRow("edges (G_R)", fmt.Sprint(res.GR.EdgeCount()))
	tb.AddRow("edges (G_α)", fmt.Sprint(res.G.EdgeCount()))
	tb.AddRow("avg degree", stats.F(res.AvgDegree, 2))
	tb.AddRow("avg radius", stats.F(res.AvgRadius, 1))
	tb.AddRow("components", fmt.Sprint(res.Components()))
	tb.AddRow("connectivity preserved", fmt.Sprint(res.PreservesConnectivity()))
	tb.AddRow("boundary nodes", fmt.Sprint(res.BoundaryCount()))
	tb.AddRow("removed redundant edges", fmt.Sprint(len(res.RemovedRedundant())))
	fmt.Print(tb.String())

	if *edges {
		fmt.Println("\nedges:")
		for _, e := range res.G.Edges() {
			fmt.Printf("  %d - %d  (%.1f)\n", e.U, e.V, res.Pos[e.U].Dist(res.Pos[e.V]))
		}
	}
	if *svgOut != "" {
		svg := svgplot.Render(res.G, res.Pos, svgplot.Style{
			Title: fmt.Sprintf("CBTC α=%.3f, %d nodes", *alpha, *n),
		})
		if err := os.WriteFile(*svgOut, []byte(svg), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "cbtcsim:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *svgOut)
	}
}
