// Command benchguard parses `go test -bench` output and gates benchmark
// regressions in CI.
//
// Parse mode converts benchmark text into a JSON report of ns/op — plus
// B/op and allocs/op where the benchmark ran with -benchmem or
// b.ReportAllocs() — per benchmark (CPU-count suffixes stripped, so
// names are stable across machines):
//
//	go test -run=- -bench=. -benchtime=1x . | tee bench.out
//	benchguard -parse bench.out -out current.json
//
// Check mode compares a current report against a committed baseline and
// exits non-zero if any tracked benchmark regressed beyond the
// tolerance, a tracked benchmark disappeared, a required speedup ratio
// (grid vs naive, parallel vs serial) is no longer met, or an
// allocation ceiling (allocs/op or B/op) is exceeded:
//
//	benchguard -check -baseline BENCH_PR3.json -current current.json
//
// The baseline's absolute ns/op values are machine-dependent — regenerate
// them (parse mode writes the same schema) when the CI runner class
// changes. The ratio checks compare two benchmarks from the same run and
// the allocation ceilings count deterministic allocator traffic; both are
// machine-independent and are the stronger guards.
//
// Under GitHub Actions, check mode additionally appends a markdown
// results table to $GITHUB_STEP_SUMMARY and emits an ::error workflow
// annotation per failed check naming the benchmark and the violated
// gate, so a red bench job is readable from the run page without
// downloading artifacts.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Report is the JSON schema shared by baselines and current runs.
type Report struct {
	// Note is free-form provenance (machine, date, command).
	Note string `json:"note,omitempty"`
	// Tolerance is the allowed relative regression for tracked
	// benchmarks (0.30 = 30%). Only read from baselines; a -tolerance
	// flag or BENCHGUARD_TOLERANCE env var overrides it.
	Tolerance float64 `json:"tolerance,omitempty"`
	// Benchmarks maps benchmark name (without -cpu suffix) to ns/op.
	Benchmarks map[string]float64 `json:"benchmarks"`
	// Bytes and Allocs map benchmark name to B/op and allocs/op, for
	// benchmarks that report them. Unlike ns/op these are deterministic
	// properties of the code, not the machine.
	Bytes  map[string]float64 `json:"bytes,omitempty"`
	Allocs map[string]float64 `json:"allocs,omitempty"`
	// Ratios are required speedups between two benchmarks of the same
	// run. Only read from baselines.
	Ratios []RatioCheck `json:"ratios,omitempty"`
	// Improvements are required speedups of the current run against a
	// frozen measurement from an earlier PR's baseline (carried inside
	// this baseline as BaselineNS). They encode "this PR's win must not
	// erode" where no same-run reference benchmark exists. Only read
	// from baselines.
	Improvements []ImprovementCheck `json:"improvements,omitempty"`
	// AllocCeilings and ByteCeilings cap the current run's allocs/op and
	// B/op per benchmark. Only read from baselines; they encode "the
	// allocation win must not erode" as a hard machine-independent gate.
	AllocCeilings map[string]float64 `json:"alloc_ceilings,omitempty"`
	ByteCeilings  map[string]float64 `json:"byte_ceilings,omitempty"`
}

// ImprovementCheck requires BaselineNS / current[Bench] ≥ Min: the
// current run must stay at least Min× faster than a measurement frozen
// from an earlier PR (e.g. the PR 4 COW snapshot against the PR 3
// full-clone snapshot time). Like the absolute gates it assumes the CI
// runner class; regenerate BaselineNS alongside the baseline when the
// runner changes.
type ImprovementCheck struct {
	Bench      string  `json:"bench"`
	BaselineNS float64 `json:"baseline_ns"`
	Min        float64 `json:"min"`
	// Note is free-form provenance for the frozen measurement.
	Note string `json:"note,omitempty"`
}

// RatioCheck requires Slow/Fast ≥ Min in the current run — e.g. the
// naive oracle must stay at least 5× slower than the grid oracle, or the
// serial oracle at least 3× slower than its 8-worker variant.
type RatioCheck struct {
	Slow string  `json:"slow"`
	Fast string  `json:"fast"`
	Min  float64 `json:"min"`
	// MinCores marks a ratio that only holds on sufficiently parallel
	// hardware (the parallel-vs-serial speedups). On machines with fewer
	// cores the check is reported as skipped instead of failed, so the
	// baseline can be regenerated anywhere while the CI runner class
	// still enforces the floor.
	MinCores int `json:"min_cores,omitempty"`
}

// benchLine matches one `go test -bench` result line, optionally with
// the -benchmem columns, e.g.
//
//	BenchmarkLargeN/uniform-5000/oracle/grid-8   3   22612579 ns/op   1198 B/op   22 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op(?:.*?\s([0-9]+) B/op)?(?:\s+([0-9]+) allocs/op)?`)

func main() {
	var (
		parse     = flag.String("parse", "", "parse `go test -bench` output from this file ('-' for stdin)")
		out       = flag.String("out", "", "write the parsed report to this file (default stdout)")
		note      = flag.String("note", "", "provenance note to embed in the parsed report")
		check     = flag.Bool("check", false, "compare -current against -baseline")
		baseline  = flag.String("baseline", "", "committed baseline report")
		current   = flag.String("current", "", "report from the current run")
		tolerance = flag.Float64("tolerance", 0, "override the baseline's regression tolerance (0.30 = 30%)")
	)
	flag.Parse()
	switch {
	case *parse != "":
		if err := runParse(*parse, *out, *note); err != nil {
			fatal(err)
		}
	case *check:
		if err := runCheck(*baseline, *current, *tolerance); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}

func runParse(in, out, note string) error {
	f := os.Stdin
	if in != "-" {
		var err error
		if f, err = os.Open(in); err != nil {
			return err
		}
		defer f.Close()
	}
	rep := Report{
		Note:       note,
		Benchmarks: map[string]float64{},
		Bytes:      map[string]float64{},
		Allocs:     map[string]float64{},
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		mm := benchLine.FindStringSubmatch(sc.Text())
		if mm == nil {
			continue
		}
		ns, err := strconv.ParseFloat(mm[2], 64)
		if err != nil {
			return fmt.Errorf("line %q: %v", sc.Text(), err)
		}
		rep.Benchmarks[mm[1]] = ns
		if mm[3] != "" {
			v, err := strconv.ParseFloat(mm[3], 64)
			if err != nil {
				return fmt.Errorf("line %q: %v", sc.Text(), err)
			}
			rep.Bytes[mm[1]] = v
		}
		if mm[4] != "" {
			v, err := strconv.ParseFloat(mm[4], 64)
			if err != nil {
				return fmt.Errorf("line %q: %v", sc.Text(), err)
			}
			rep.Allocs[mm[1]] = v
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results found in %s", in)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &rep, nil
}

func runCheck(basePath, curPath string, tolOverride float64) error {
	if basePath == "" || curPath == "" {
		return fmt.Errorf("-check needs both -baseline and -current")
	}
	base, err := readReport(basePath)
	if err != nil {
		return err
	}
	cur, err := readReport(curPath)
	if err != nil {
		return err
	}
	tol := base.Tolerance
	if env := os.Getenv("BENCHGUARD_TOLERANCE"); env != "" {
		if v, err := strconv.ParseFloat(env, 64); err == nil {
			tol = v
		}
	}
	if tolOverride > 0 {
		tol = tolOverride
	}
	if tol <= 0 {
		tol = 0.30
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	var rows []checkRow
	for _, name := range names {
		want := base.Benchmarks[name]
		got, ok := cur.Benchmarks[name]
		switch {
		case !ok:
			rows = append(rows, checkRow{"MISSING", "benchmark", name,
				"tracked benchmark not in current run", true})
		case got > want*(1+tol):
			rows = append(rows, checkRow{"REGRESS", "benchmark", name,
				fmt.Sprintf("%.0f ns/op -> %.0f ns/op (%+.1f%%, tolerance %.0f%%)",
					want, got, 100*(got/want-1), 100*tol), true})
		default:
			rows = append(rows, checkRow{"ok", "benchmark", name,
				fmt.Sprintf("%.0f ns/op -> %.0f ns/op (%+.1f%%)", want, got, 100*(got/want-1)), false})
		}
	}
	for _, rc := range base.Ratios {
		name := rc.Slow + " / " + rc.Fast
		if rc.MinCores > runtime.NumCPU() {
			rows = append(rows, checkRow{"skip", "ratio", name,
				fmt.Sprintf("needs >= %d cores, have %d", rc.MinCores, runtime.NumCPU()), false})
			continue
		}
		slow, okS := cur.Benchmarks[rc.Slow]
		fast, okF := cur.Benchmarks[rc.Fast]
		switch {
		case !okS || !okF:
			rows = append(rows, checkRow{"MISSING", "ratio", name,
				"benchmark absent from current run", true})
		case fast <= 0 || slow/fast < rc.Min:
			rows = append(rows, checkRow{"RATIO", "ratio", name,
				fmt.Sprintf("%.1fx, need >= %.1fx", slow/fast, rc.Min), true})
		default:
			rows = append(rows, checkRow{"ok", "ratio", name,
				fmt.Sprintf("%.1fx (>= %.1fx)", slow/fast, rc.Min), false})
		}
	}
	for _, ic := range base.Improvements {
		got, ok := cur.Benchmarks[ic.Bench]
		switch {
		case !ok:
			rows = append(rows, checkRow{"MISSING", "improvement", ic.Bench,
				"benchmark absent from current run", true})
		case got <= 0 || ic.BaselineNS/got < ic.Min:
			rows = append(rows, checkRow{"IMPROVE", "improvement", ic.Bench,
				fmt.Sprintf("%.1fx over frozen %.0f ns/op, need >= %.1fx",
					ic.BaselineNS/got, ic.BaselineNS, ic.Min), true})
		default:
			rows = append(rows, checkRow{"ok", "improvement", ic.Bench,
				fmt.Sprintf("%.1fx over frozen %.0f ns/op (>= %.1fx)",
					ic.BaselineNS/got, ic.BaselineNS, ic.Min), false})
		}
	}
	rows = append(rows, checkCeilings("allocs/op", base.AllocCeilings, cur.Allocs)...)
	rows = append(rows, checkCeilings("B/op", base.ByteCeilings, cur.Bytes)...)

	failures := 0
	for _, row := range rows {
		fmt.Printf("%-8s %-11s %-55s %s\n", row.status, row.kind, row.name, row.detail)
		if row.failed {
			failures++
		}
	}
	if err := writeStepSummary(rows, failures); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard: step summary:", err)
	}
	emitAnnotations(rows)
	if failures > 0 {
		return fmt.Errorf("%d benchmark check(s) failed", failures)
	}
	fmt.Printf("all %d tracked benchmarks, %d ratios, %d improvements and %d ceilings within tolerance\n",
		len(names), len(base.Ratios), len(base.Improvements), len(base.AllocCeilings)+len(base.ByteCeilings))
	return nil
}

// checkRow is one gate evaluation: the stdout line, the step-summary
// table row, and (when failed) the workflow annotation all render from
// it.
type checkRow struct {
	// status is "ok", "skip", or the failure class (MISSING, REGRESS,
	// RATIO, IMPROVE, CEILING).
	status string
	// kind names the gate family: benchmark, ratio, improvement,
	// allocs/op, B/op.
	kind string
	// name identifies the benchmark (or slow/fast pair) gated.
	name string
	// detail is the human-readable measurement vs limit.
	detail string
	failed bool
}

// checkCeilings enforces per-benchmark upper bounds on a deterministic
// metric (allocs/op or B/op).
func checkCeilings(unit string, ceilings map[string]float64, current map[string]float64) []checkRow {
	names := make([]string, 0, len(ceilings))
	for name := range ceilings {
		names = append(names, name)
	}
	sort.Strings(names)
	rows := make([]checkRow, 0, len(names))
	for _, name := range names {
		limit := ceilings[name]
		got, ok := current[name]
		switch {
		case !ok:
			rows = append(rows, checkRow{"MISSING", unit, name,
				fmt.Sprintf("no %s reported in current run", unit), true})
		case got > limit:
			rows = append(rows, checkRow{"CEILING", unit, name,
				fmt.Sprintf("%.0f %s, limit %.0f", got, unit, limit), true})
		default:
			rows = append(rows, checkRow{"ok", unit, name,
				fmt.Sprintf("%.0f %s (limit %.0f)", got, unit, limit), false})
		}
	}
	return rows
}

// writeStepSummary appends a markdown results table to the file named
// by $GITHUB_STEP_SUMMARY (the GitHub Actions job summary). Outside
// Actions the variable is unset and this is a no-op.
func writeStepSummary(rows []checkRow, failures int) error {
	path := os.Getenv("GITHUB_STEP_SUMMARY")
	if path == "" {
		return nil
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	var b strings.Builder
	if failures == 0 {
		fmt.Fprintf(&b, "### benchguard: all %d checks passed ✅\n\n", len(rows))
	} else {
		fmt.Fprintf(&b, "### benchguard: %d of %d checks failed ❌\n\n", failures, len(rows))
	}
	b.WriteString("| status | check | benchmark | result |\n|---|---|---|---|\n")
	for _, row := range rows {
		status := row.status
		if row.failed {
			status = "**" + status + "**"
		}
		fmt.Fprintf(&b, "| %s | %s | `%s` | %s |\n",
			status, row.kind, row.name, mdEscape(row.detail))
	}
	b.WriteByte('\n')
	_, err = f.WriteString(b.String())
	return err
}

// emitAnnotations prints one ::error workflow command per failed check,
// so the failure names the benchmark and the violated gate directly on
// the run page. Only active under GitHub Actions.
func emitAnnotations(rows []checkRow) {
	if os.Getenv("GITHUB_ACTIONS") != "true" {
		return
	}
	for _, row := range rows {
		if !row.failed {
			continue
		}
		fmt.Printf("::error title=benchguard %s %s::%s: %s\n",
			row.status, row.kind, annEscape(row.name), annEscape(row.detail))
	}
}

// annEscape escapes a workflow-command value per the Actions toolkit
// rules (%, CR and LF must be URL-encoded).
func annEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// mdEscape keeps table cells from breaking the summary's markdown grid.
func mdEscape(s string) string {
	return strings.ReplaceAll(s, "|", "\\|")
}
