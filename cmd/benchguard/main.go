// Command benchguard parses `go test -bench` output and gates benchmark
// regressions in CI.
//
// Parse mode converts benchmark text into a JSON report of ns/op — plus
// B/op and allocs/op where the benchmark ran with -benchmem or
// b.ReportAllocs() — per benchmark (CPU-count suffixes stripped, so
// names are stable across machines):
//
//	go test -run=- -bench=. -benchtime=1x . | tee bench.out
//	benchguard -parse bench.out -out current.json
//
// Check mode compares a current report against a committed baseline and
// exits non-zero if any tracked benchmark regressed beyond the
// tolerance, a tracked benchmark disappeared, a required speedup ratio
// (grid vs naive, parallel vs serial) is no longer met, or an
// allocation ceiling (allocs/op or B/op) is exceeded:
//
//	benchguard -check -baseline BENCH_PR3.json -current current.json
//
// The baseline's absolute ns/op values are machine-dependent — regenerate
// them (parse mode writes the same schema) when the CI runner class
// changes. The ratio checks compare two benchmarks from the same run and
// the allocation ceilings count deterministic allocator traffic; both are
// machine-independent and are the stronger guards.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
)

// Report is the JSON schema shared by baselines and current runs.
type Report struct {
	// Note is free-form provenance (machine, date, command).
	Note string `json:"note,omitempty"`
	// Tolerance is the allowed relative regression for tracked
	// benchmarks (0.30 = 30%). Only read from baselines; a -tolerance
	// flag or BENCHGUARD_TOLERANCE env var overrides it.
	Tolerance float64 `json:"tolerance,omitempty"`
	// Benchmarks maps benchmark name (without -cpu suffix) to ns/op.
	Benchmarks map[string]float64 `json:"benchmarks"`
	// Bytes and Allocs map benchmark name to B/op and allocs/op, for
	// benchmarks that report them. Unlike ns/op these are deterministic
	// properties of the code, not the machine.
	Bytes  map[string]float64 `json:"bytes,omitempty"`
	Allocs map[string]float64 `json:"allocs,omitempty"`
	// Ratios are required speedups between two benchmarks of the same
	// run. Only read from baselines.
	Ratios []RatioCheck `json:"ratios,omitempty"`
	// Improvements are required speedups of the current run against a
	// frozen measurement from an earlier PR's baseline (carried inside
	// this baseline as BaselineNS). They encode "this PR's win must not
	// erode" where no same-run reference benchmark exists. Only read
	// from baselines.
	Improvements []ImprovementCheck `json:"improvements,omitempty"`
	// AllocCeilings and ByteCeilings cap the current run's allocs/op and
	// B/op per benchmark. Only read from baselines; they encode "the
	// allocation win must not erode" as a hard machine-independent gate.
	AllocCeilings map[string]float64 `json:"alloc_ceilings,omitempty"`
	ByteCeilings  map[string]float64 `json:"byte_ceilings,omitempty"`
}

// ImprovementCheck requires BaselineNS / current[Bench] ≥ Min: the
// current run must stay at least Min× faster than a measurement frozen
// from an earlier PR (e.g. the PR 4 COW snapshot against the PR 3
// full-clone snapshot time). Like the absolute gates it assumes the CI
// runner class; regenerate BaselineNS alongside the baseline when the
// runner changes.
type ImprovementCheck struct {
	Bench      string  `json:"bench"`
	BaselineNS float64 `json:"baseline_ns"`
	Min        float64 `json:"min"`
	// Note is free-form provenance for the frozen measurement.
	Note string `json:"note,omitempty"`
}

// RatioCheck requires Slow/Fast ≥ Min in the current run — e.g. the
// naive oracle must stay at least 5× slower than the grid oracle, or the
// serial oracle at least 3× slower than its 8-worker variant.
type RatioCheck struct {
	Slow string  `json:"slow"`
	Fast string  `json:"fast"`
	Min  float64 `json:"min"`
	// MinCores marks a ratio that only holds on sufficiently parallel
	// hardware (the parallel-vs-serial speedups). On machines with fewer
	// cores the check is reported as skipped instead of failed, so the
	// baseline can be regenerated anywhere while the CI runner class
	// still enforces the floor.
	MinCores int `json:"min_cores,omitempty"`
}

// benchLine matches one `go test -bench` result line, optionally with
// the -benchmem columns, e.g.
//
//	BenchmarkLargeN/uniform-5000/oracle/grid-8   3   22612579 ns/op   1198 B/op   22 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op(?:.*?\s([0-9]+) B/op)?(?:\s+([0-9]+) allocs/op)?`)

func main() {
	var (
		parse     = flag.String("parse", "", "parse `go test -bench` output from this file ('-' for stdin)")
		out       = flag.String("out", "", "write the parsed report to this file (default stdout)")
		note      = flag.String("note", "", "provenance note to embed in the parsed report")
		check     = flag.Bool("check", false, "compare -current against -baseline")
		baseline  = flag.String("baseline", "", "committed baseline report")
		current   = flag.String("current", "", "report from the current run")
		tolerance = flag.Float64("tolerance", 0, "override the baseline's regression tolerance (0.30 = 30%)")
	)
	flag.Parse()
	switch {
	case *parse != "":
		if err := runParse(*parse, *out, *note); err != nil {
			fatal(err)
		}
	case *check:
		if err := runCheck(*baseline, *current, *tolerance); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}

func runParse(in, out, note string) error {
	f := os.Stdin
	if in != "-" {
		var err error
		if f, err = os.Open(in); err != nil {
			return err
		}
		defer f.Close()
	}
	rep := Report{
		Note:       note,
		Benchmarks: map[string]float64{},
		Bytes:      map[string]float64{},
		Allocs:     map[string]float64{},
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		mm := benchLine.FindStringSubmatch(sc.Text())
		if mm == nil {
			continue
		}
		ns, err := strconv.ParseFloat(mm[2], 64)
		if err != nil {
			return fmt.Errorf("line %q: %v", sc.Text(), err)
		}
		rep.Benchmarks[mm[1]] = ns
		if mm[3] != "" {
			v, err := strconv.ParseFloat(mm[3], 64)
			if err != nil {
				return fmt.Errorf("line %q: %v", sc.Text(), err)
			}
			rep.Bytes[mm[1]] = v
		}
		if mm[4] != "" {
			v, err := strconv.ParseFloat(mm[4], 64)
			if err != nil {
				return fmt.Errorf("line %q: %v", sc.Text(), err)
			}
			rep.Allocs[mm[1]] = v
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results found in %s", in)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &rep, nil
}

func runCheck(basePath, curPath string, tolOverride float64) error {
	if basePath == "" || curPath == "" {
		return fmt.Errorf("-check needs both -baseline and -current")
	}
	base, err := readReport(basePath)
	if err != nil {
		return err
	}
	cur, err := readReport(curPath)
	if err != nil {
		return err
	}
	tol := base.Tolerance
	if env := os.Getenv("BENCHGUARD_TOLERANCE"); env != "" {
		if v, err := strconv.ParseFloat(env, 64); err == nil {
			tol = v
		}
	}
	if tolOverride > 0 {
		tol = tolOverride
	}
	if tol <= 0 {
		tol = 0.30
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	failures := 0
	for _, name := range names {
		want := base.Benchmarks[name]
		got, ok := cur.Benchmarks[name]
		switch {
		case !ok:
			fmt.Printf("MISSING  %-55s tracked benchmark not in current run\n", name)
			failures++
		case got > want*(1+tol):
			fmt.Printf("REGRESS  %-55s %12.0f ns/op -> %12.0f ns/op (%+.1f%%, tolerance %.0f%%)\n",
				name, want, got, 100*(got/want-1), 100*tol)
			failures++
		default:
			fmt.Printf("ok       %-55s %12.0f ns/op -> %12.0f ns/op (%+.1f%%)\n",
				name, want, got, 100*(got/want-1))
		}
	}
	for _, rc := range base.Ratios {
		if rc.MinCores > runtime.NumCPU() {
			fmt.Printf("skip     ratio %s / %s: needs >= %d cores, have %d\n",
				rc.Slow, rc.Fast, rc.MinCores, runtime.NumCPU())
			continue
		}
		slow, okS := cur.Benchmarks[rc.Slow]
		fast, okF := cur.Benchmarks[rc.Fast]
		switch {
		case !okS || !okF:
			fmt.Printf("MISSING  ratio %s / %s: benchmark absent from current run\n", rc.Slow, rc.Fast)
			failures++
		case fast <= 0 || slow/fast < rc.Min:
			fmt.Printf("RATIO    %s / %s = %.1fx, need >= %.1fx\n", rc.Slow, rc.Fast, slow/fast, rc.Min)
			failures++
		default:
			fmt.Printf("ok       ratio %s / %s = %.1fx (>= %.1fx)\n", rc.Slow, rc.Fast, slow/fast, rc.Min)
		}
	}
	for _, ic := range base.Improvements {
		got, ok := cur.Benchmarks[ic.Bench]
		switch {
		case !ok:
			fmt.Printf("MISSING  improvement %s: benchmark absent from current run\n", ic.Bench)
			failures++
		case got <= 0 || ic.BaselineNS/got < ic.Min:
			fmt.Printf("IMPROVE  %s = %.1fx over frozen %.0f ns/op, need >= %.1fx\n",
				ic.Bench, ic.BaselineNS/got, ic.BaselineNS, ic.Min)
			failures++
		default:
			fmt.Printf("ok       improvement %s = %.1fx over frozen %.0f ns/op (>= %.1fx)\n",
				ic.Bench, ic.BaselineNS/got, ic.BaselineNS, ic.Min)
		}
	}
	failures += checkCeilings("allocs/op", base.AllocCeilings, cur.Allocs)
	failures += checkCeilings("B/op", base.ByteCeilings, cur.Bytes)
	if failures > 0 {
		return fmt.Errorf("%d benchmark check(s) failed", failures)
	}
	fmt.Printf("all %d tracked benchmarks, %d ratios, %d improvements and %d ceilings within tolerance\n",
		len(names), len(base.Ratios), len(base.Improvements), len(base.AllocCeilings)+len(base.ByteCeilings))
	return nil
}

// checkCeilings enforces per-benchmark upper bounds on a deterministic
// metric (allocs/op or B/op). It returns the number of failures.
func checkCeilings(unit string, ceilings map[string]float64, current map[string]float64) int {
	names := make([]string, 0, len(ceilings))
	for name := range ceilings {
		names = append(names, name)
	}
	sort.Strings(names)
	failures := 0
	for _, name := range names {
		limit := ceilings[name]
		got, ok := current[name]
		switch {
		case !ok:
			fmt.Printf("MISSING  %-55s no %s reported in current run\n", name, unit)
			failures++
		case got > limit:
			fmt.Printf("CEILING  %-55s %12.0f %s, limit %.0f\n", name, got, unit, limit)
			failures++
		default:
			fmt.Printf("ok       %-55s %12.0f %s (limit %.0f)\n", name, got, unit, limit)
		}
	}
	return failures
}
