// Command topoviz regenerates Figure 6 of the paper: eight SVG panels of
// the same random network under no topology control, the basic CBTC
// algorithm at α = 2π/3 and 5π/6, and each optimization stack. It also
// prints the per-panel statistics (edges, average degree, average
// radius).
//
// Usage:
//
//	topoviz [-seed 42] [-out figure6] [-labels]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cbtc"
	"cbtc/internal/stats"
	"cbtc/internal/svgplot"
)

func main() {
	seed := flag.Uint64("seed", 42, "random seed selecting the network")
	out := flag.String("out", "figure6", "output directory for the SVG panels")
	labels := flag.Bool("labels", false, "draw node indices, as the paper's figure does")
	flag.Parse()

	panels, err := cbtc.Figure6PanelsContext(context.Background(), *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topoviz:", err)
		os.Exit(1)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "topoviz:", err)
		os.Exit(1)
	}

	tb := stats.NewTable("panel", "configuration", "edges", "avg degree", "avg radius", "file")
	for _, p := range panels {
		name := fmt.Sprintf("panel_%s.svg", p.Key)
		path := filepath.Join(*out, name)
		svg := svgplot.Render(p.Result.G, p.Result.Pos, svgplot.Style{
			Labels: *labels,
			Title:  fmt.Sprintf("(%s) %s", p.Key, p.Title),
		})
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "topoviz:", err)
			os.Exit(1)
		}
		tb.AddRow("("+p.Key+")", p.Title,
			fmt.Sprint(p.Result.G.EdgeCount()),
			stats.F(p.Result.AvgDegree, 2),
			stats.F(p.Result.AvgRadius, 1),
			path)
	}
	fmt.Printf("Figure 6 reproduction (seed %d)\n\n%s", *seed, tb.String())
}
