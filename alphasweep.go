package cbtc

import (
	"context"
	"math"

	"cbtc/internal/core"
	"cbtc/internal/stats"
	"cbtc/internal/workload"
)

// AlphaSweepParams configures an α-sweep of the basic algorithm across
// random networks. The zero value sweeps 12 angles from π/6 to 5π/6 on
// 20 paper-sized networks.
type AlphaSweepParams struct {
	// Alphas are the cone angles to evaluate; nil means 12 evenly spaced
	// values in [π/6, 5π/6].
	Alphas []float64
	// Networks is the number of random networks per angle (0 = 20).
	Networks int
	// Nodes, Width, Height, MaxRadius default to the paper's setup.
	Nodes     int
	Width     float64
	Height    float64
	MaxRadius float64
	// Seed is the base seed.
	Seed uint64
}

// AlphaSweepRow is the sweep measurement at one cone angle.
type AlphaSweepRow struct {
	// Alpha is the cone angle.
	Alpha float64
	// AvgDegree and AvgRadius are Table 1's metrics for the basic
	// algorithm at this angle.
	AvgDegree float64
	AvgRadius float64
	// BoundaryFrac is the fraction of nodes finishing with an α-gap.
	BoundaryFrac float64
	// Connected is the fraction of networks whose G_α preserved the G_R
	// partition — 1.0 for every α ≤ 5π/6 (Theorem 2.1), and typically
	// below 1 above the bound on adversarial placements.
	Connected float64
}

// RunAlphaSweep sweeps with a background context; see
// RunAlphaSweepContext.
func RunAlphaSweep(params AlphaSweepParams) ([]AlphaSweepRow, error) {
	return RunAlphaSweepContext(context.Background(), params)
}

// RunAlphaSweepContext measures the basic algorithm across cone angles:
// the trade-off curve behind the paper's choice of the two α values in
// Table 1 (smaller α ⇒ more neighbors and power; larger α ⇒ sparser,
// cheaper, until connectivity fails past 5π/6). Each angle gets its own
// Engine and the shared placements run through Engine.RunBatch.
func RunAlphaSweepContext(ctx context.Context, params AlphaSweepParams) ([]AlphaSweepRow, error) {
	p := params
	if p.Networks == 0 {
		p.Networks = 20
	}
	if p.Nodes == 0 {
		p.Nodes = workload.PaperNodes
	}
	if p.Width == 0 {
		p.Width = workload.PaperRegionW
	}
	if p.Height == 0 {
		p.Height = workload.PaperRegionH
	}
	if p.MaxRadius == 0 {
		p.MaxRadius = workload.PaperRadius
	}
	if p.Alphas == nil {
		for i := 0; i < 12; i++ {
			lo, hi := math.Pi/6, core.AlphaConnectivity
			p.Alphas = append(p.Alphas, lo+(hi-lo)*float64(i)/11)
		}
	}
	placements := make([][]Point, p.Networks)
	for i := range placements {
		placements[i] = workload.Uniform(workload.Rand(p.Seed+uint64(i)), p.Nodes, p.Width, p.Height)
	}

	rows := make([]AlphaSweepRow, 0, len(p.Alphas))
	for _, alpha := range p.Alphas {
		eng, err := New(WithMaxRadius(p.MaxRadius), WithAlpha(alpha))
		if err != nil {
			return nil, err
		}
		batch, err := eng.RunBatch(ctx, placements)
		if err != nil {
			return nil, err
		}
		var degree, radius, boundary, connected stats.Sample
		for _, res := range batch {
			degree.Add(res.AvgDegree)
			radius.Add(res.AvgRadius)
			boundary.Add(float64(res.BoundaryCount()) / float64(p.Nodes))
			if res.PreservesConnectivity() {
				connected.Add(1)
			} else {
				connected.Add(0)
			}
		}
		rows = append(rows, AlphaSweepRow{
			Alpha:        alpha,
			AvgDegree:    degree.Mean(),
			AvgRadius:    radius.Mean(),
			BoundaryFrac: boundary.Mean(),
			Connected:    connected.Mean(),
		})
	}
	return rows, nil
}

// RenderAlphaSweep formats sweep rows as an aligned table.
func RenderAlphaSweep(rows []AlphaSweepRow) string {
	tb := stats.NewTable("alpha(rad)", "alpha(deg)", "avg degree", "avg radius", "boundary frac", "connected frac")
	for _, r := range rows {
		tb.AddRow(
			stats.F(r.Alpha, 3),
			stats.F(r.Alpha*180/math.Pi, 1),
			stats.F(r.AvgDegree, 2),
			stats.F(r.AvgRadius, 1),
			stats.F(r.BoundaryFrac, 3),
			stats.F(r.Connected, 2),
		)
	}
	return tb.String()
}
