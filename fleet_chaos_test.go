package cbtc

import (
	"bytes"
	"context"
	"errors"
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"
	"time"

	"cbtc/internal/chaos"
	"cbtc/internal/workload"
)

// chaosMembers builds m homogeneous oracle members of n nodes each.
func chaosMembers(seed uint64, m, n int) []MemberSpec {
	members := make([]MemberSpec, m)
	sz := workload.MemberSize{N: n, Side: workload.LargeNSide(n)}
	for i := range members {
		members[i] = MemberSpec{Placement: workload.MemberPlacement(seed, i, sz)}
	}
	return members
}

// firstPanicTick predicts the tick at which inj first panics member
// net within the first ticks ticks, or -1.
func firstPanicTick(inj *chaos.Injector, net, ticks int) int {
	for t := 0; t < ticks; t++ {
		if inj.PanicsAt(net, t) {
			return t
		}
	}
	return -1
}

// findChaosSeed searches injector seeds deterministically until the
// panic probability quarantines exactly want of m members within ticks
// ticks, none of them at tick 0 (mid-fleet casualties, not stillbirths).
func findChaosSeed(t *testing.T, m, ticks, want int) *chaos.Injector {
	t.Helper()
	for seed := uint64(1); seed < 5000; seed++ {
		inj := chaos.New(chaos.Faults{Seed: seed, TickPanic: 0.04})
		hit := 0
		midFleet := true
		for net := 0; net < m; net++ {
			switch ft := firstPanicTick(inj, net, ticks); {
			case ft == 0:
				midFleet = false
			case ft > 0:
				hit++
			}
		}
		if hit == want && midFleet {
			return inj
		}
	}
	t.Fatal("no chaos seed quarantines the wanted casualty count")
	return nil
}

// The PR 8 acceptance invariant: a seeded chaos run that panics 2 of 9
// members mid-fleet leaves the 7 healthy members byte-identical — report
// slice and topology — to a chaos-free run of the same seeds, at
// workers 1, 2 and 8. The casualty set itself is deterministic: the
// same two members fall, at the same ticks, at every worker count.
func TestFleetChaosQuarantineIsolation(t *testing.T) {
	const m, rounds = 9, 6
	members := chaosMembers(11, m, 30)
	sc := workload.Fleet(m, 30, "uniform")
	tick := fleetTick(sc)
	ctx := context.Background()
	inj := findChaosSeed(t, m, rounds, 2)

	wantQuar := map[int]int{} // net -> frozen clock (= first panicking tick)
	for net := 0; net < m; net++ {
		if ft := firstPanicTick(inj, net, rounds); ft >= 0 {
			wantQuar[net] = ft
		}
	}

	// The chaos-free reference.
	ref, err := fleetEngine(t).NewFleet(ctx, FleetConfig{Members: members, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	refRep, err := ref.Run(ctx, rounds, tick)
	if err != nil {
		t.Fatal(err)
	}
	zeroSched(refRep)
	refGraphs := make([]*Graph, m)
	for i := range refGraphs {
		snap, err := ref.Session(i).Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		refGraphs[i] = snap.G
	}

	for _, workers := range []int{1, 2, 8} {
		fleet, err := fleetEngine(t).NewFleet(ctx, FleetConfig{
			Members: members, Seed: 5, Workers: workers, TickHook: inj.Tick,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, runErr := fleet.Run(ctx, rounds, tick)
		var qe *QuarantineError
		if !errors.As(runErr, &qe) {
			t.Fatalf("workers=%d: Run error = %v, want *QuarantineError", workers, runErr)
		}
		if rep == nil {
			t.Fatalf("workers=%d: Run returned no report alongside the QuarantineError", workers)
		}
		zeroSched(rep)
		if len(qe.Casualties) != len(wantQuar) {
			t.Fatalf("workers=%d: %d casualties, want %d: %v", workers, len(qe.Casualties), len(wantQuar), qe)
		}
		for _, c := range qe.Casualties {
			if wantTick, ok := wantQuar[c.Net]; !ok || c.Tick != wantTick {
				t.Errorf("workers=%d: casualty %+v, want quarantine map %v", workers, c, wantQuar)
			}
			if !strings.Contains(c.Err, "chaos: injected panic") || !strings.Contains(c.Stack, "chaos") {
				t.Errorf("workers=%d: casualty record lacks cause/stack: err=%q", workers, c.Err)
			}
		}
		if rep.Quarantined != len(wantQuar) {
			t.Errorf("workers=%d: report counts %d quarantined, want %d", workers, rep.Quarantined, len(wantQuar))
		}

		health := fleet.Health()
		if health.Quarantined != len(wantQuar) || health.Healthy != m-len(wantQuar) {
			t.Errorf("workers=%d: health %d/%d, want %d/%d", workers,
				health.Healthy, health.Quarantined, m-len(wantQuar), len(wantQuar))
		}
		for i, nr := range rep.PerNetwork {
			frozenAt, quarantined := wantQuar[i]
			if quarantined {
				if nr.Health != MemberQuarantined || nr.Quarantine == nil {
					t.Errorf("workers=%d net %d: not reported quarantined", workers, i)
					continue
				}
				if nr.Ticks != frozenAt {
					t.Errorf("workers=%d net %d: clock %d, want frozen at %d", workers, i, nr.Ticks, frozenAt)
				}
				if got := nr.Series.Degree.N(); got != int64(frozenAt) {
					t.Errorf("workers=%d net %d: %d series observations, want %d", workers, i, got, frozenAt)
				}
				continue
			}
			// Healthy members: byte-identical report slice and topology.
			if !reflect.DeepEqual(nr, refRep.PerNetwork[i]) {
				t.Errorf("workers=%d net %d: healthy report slice differs from chaos-free run", workers, i)
			}
			snap, err := fleet.Session(i).Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !snap.G.Equal(refGraphs[i]) {
				t.Errorf("workers=%d net %d: healthy topology differs from chaos-free run", workers, i)
			}
		}

		// A further advance skips the casualties entirely — no new error,
		// frozen clocks — while the healthy members keep working.
		if err := fleet.Advance(ctx, 1, tick); err != nil {
			t.Fatalf("workers=%d: post-quarantine Advance: %v", workers, err)
		}
		for _, c := range fleet.Watermarks().Members {
			if want, ok := wantQuar[c.Net]; ok {
				if c.Health != MemberQuarantined || c.Ticks != want {
					t.Errorf("workers=%d net %d: clock moved under quarantine: %+v", workers, c.Net, c)
				}
			} else if c.Ticks != rounds+1 || c.Health != MemberHealthy {
				t.Errorf("workers=%d net %d: healthy member at %d/%s, want %d/healthy",
					workers, c.Net, c.Ticks, c.Health, rounds+1)
			}
		}
	}
}

// A quarantined member re-admitted from a checkpoint re-converges onto
// the byte-identical history its seed prescribes: session, RNG stream
// and accumulators resume from the checkpoint, and driving it to any
// clock matches the never-quarantined reference at that clock.
func TestFleetReadmit(t *testing.T) {
	const m = 4
	members := chaosMembers(3, m, 35)
	sc := workload.Fleet(m, 35, "uniform")
	tick := fleetTick(sc)
	ctx := context.Background()

	ref, err := fleetEngine(t).NewFleet(ctx, FleetConfig{Members: members, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	refRep, err := ref.Run(ctx, 7, tick)
	if err != nil {
		t.Fatal(err)
	}
	zeroSched(refRep)

	fleet, err := fleetEngine(t).NewFleet(ctx, FleetConfig{Members: members, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.Advance(ctx, 3, tick); err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := fleet.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}

	// Panic member 1 at its tick 4 (one tick past the checkpoint).
	fleet.SetTickHook(func(net, tick int) {
		if net == 1 && tick == 4 {
			panic("induced fault")
		}
	})
	err = fleet.Advance(ctx, 2, tick)
	var qe *QuarantineError
	if !errors.As(err, &qe) || len(qe.Casualties) != 1 || qe.Casualties[0].Net != 1 || qe.Casualties[0].Tick != 4 {
		t.Fatalf("Advance error = %v, want quarantine of net 1 at tick 4", err)
	}

	// While quarantined: checkpoints refuse, batches refuse, watermark is
	// frozen.
	if err := fleet.Checkpoint(&bytes.Buffer{}); !errors.As(err, &qe) {
		t.Fatalf("Checkpoint under quarantine = %v, want *QuarantineError", err)
	}
	batches := make([][]Event, m)
	batches[1] = []Event{}
	if err := fleet.TickEvents(ctx, batches); !errors.Is(err, ErrBadEvent) {
		t.Fatalf("TickEvents to quarantined member = %v, want ErrBadEvent", err)
	}

	// Readmitting a healthy member is refused; a session checkpoint is
	// the wrong kind; then the real readmission.
	if err := fleet.Readmit(0, bytes.NewReader(ckpt.Bytes())); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("Readmit of healthy member = %v, want ErrBadConfig", err)
	}
	var sessCkpt bytes.Buffer
	if err := fleet.Session(0).Checkpoint(&sessCkpt); err != nil {
		t.Fatal(err)
	}
	if err := fleet.Readmit(1, &sessCkpt); !errors.Is(err, ErrCheckpointKind) {
		t.Fatalf("Readmit from session checkpoint = %v, want ErrCheckpointKind", err)
	}
	fleet.SetTickHook(nil)
	if err := fleet.Readmit(1, bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatal(err)
	}
	if h := fleet.Health(); h.Quarantined != 0 || h.Healthy != m {
		t.Fatalf("post-readmit health %+v", h)
	}
	wm := fleet.Watermarks()
	if c := wm.Members[1]; c.Ticks != 3 || c.Target != 3 || c.Health != MemberHealthy {
		t.Fatalf("readmitted clock %+v, want 3/3 healthy", c)
	}

	// Drive member 1 from its restored clock 3 to 7: its slice of the
	// report must match the uninterrupted reference exactly.
	if err := fleet.Advance(ctx, 4, tick); err != nil {
		t.Fatal(err)
	}
	rep, err := fleet.Report()
	if err != nil {
		t.Fatal(err)
	}
	zeroSched(rep)
	if got, want := rep.PerNetwork[1], refRep.PerNetwork[1]; !reflect.DeepEqual(got, want) {
		t.Errorf("readmitted member report differs from reference:\ngot  %+v\nwant %+v", got, want)
	}
	snap, err := fleet.Session(1).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	refSnap, err := ref.Session(1).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !snap.G.Equal(refSnap.G) || !snap.GR.Equal(refSnap.GR) {
		t.Error("readmitted member topology differs from reference")
	}
}

// TickEvents quarantines a panicking member without losing the other
// members' batches, and refuses further traffic to the casualty.
func TestFleetTickEventsQuarantine(t *testing.T) {
	const m = 3
	members := chaosMembers(7, m, 30)
	ctx := context.Background()
	fleet, err := fleetEngine(t).NewFleet(ctx, FleetConfig{Members: members, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	fleet.SetTickHook(func(net, tick int) {
		if net == 1 {
			panic("boom")
		}
	})
	batches := [][]Event{
		{JoinEvent(Pt(10, 10))},
		{JoinEvent(Pt(20, 20))},
		{JoinEvent(Pt(30, 30))},
	}
	err = fleet.TickEvents(ctx, batches)
	var qe *QuarantineError
	if !errors.As(err, &qe) || len(qe.Casualties) != 1 || qe.Casualties[0].Net != 1 {
		t.Fatalf("TickEvents error = %v, want quarantine of net 1", err)
	}
	wm := fleet.Watermarks()
	for i, c := range wm.Members {
		switch i {
		case 1:
			if c.Ticks != 0 || c.Target != 1 || c.Health != MemberQuarantined {
				t.Errorf("casualty clock %+v", c)
			}
		default:
			if c.Ticks != 1 || c.Health != MemberHealthy {
				t.Errorf("healthy member %d clock %+v", i, c)
			}
		}
	}
	// The healthy members' joins committed; the casualty's did not.
	if n := fleet.Session(0).Len(); n != 31 {
		t.Errorf("net 0 has %d nodes, want 31", n)
	}
	rep, err := fleet.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined != 1 || rep.PerNetwork[1].Quarantine == nil {
		t.Errorf("report quarantine surface: %d, %+v", rep.Quarantined, rep.PerNetwork[1].Quarantine)
	}
	// nil slot for the casualty skips it; non-nil is refused.
	fleet.SetTickHook(nil)
	ok := [][]Event{{MoveEvent(0, Pt(5, 5))}, nil, {}}
	if err := fleet.TickEvents(ctx, ok); err != nil {
		t.Fatalf("TickEvents skipping the casualty: %v", err)
	}
	bad := [][]Event{nil, {}, nil}
	if err := fleet.TickEvents(ctx, bad); !errors.Is(err, ErrBadEvent) {
		t.Fatalf("TickEvents to casualty = %v, want ErrBadEvent", err)
	}
}

// A panic inside the session repair itself — not just the hook — is
// quarantined the same way: the member freezes, the fleet survives.
func TestFleetTickFuncPanicQuarantined(t *testing.T) {
	members := chaosMembers(5, 2, 25)
	ctx := context.Background()
	fleet, err := fleetEngine(t).NewFleet(ctx, FleetConfig{Members: members, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sc := workload.Fleet(2, 25, "uniform")
	drift := fleetTick(sc)
	_, err = fleet.Run(ctx, 3, func(net, tick int, rng *rand.Rand, s *Session) []Event {
		if net == 0 && tick == 1 {
			p := make([]Point, 2)
			_ = p[len(p)+1] // index out of range: a genuine runtime panic
		}
		return drift(net, tick, rng, s)
	})
	var qe *QuarantineError
	if !errors.As(err, &qe) {
		t.Fatalf("Run error = %v, want *QuarantineError", err)
	}
	if len(qe.Casualties) != 1 || qe.Casualties[0].Net != 0 || qe.Casualties[0].Tick != 1 {
		t.Fatalf("casualties = %+v", qe.Casualties)
	}
	if !strings.Contains(qe.Casualties[0].Err, "index out of range") {
		t.Errorf("casualty cause %q", qe.Casualties[0].Err)
	}
	if wm := fleet.Watermarks(); wm.Members[1].Ticks != 3 || wm.Members[0].Ticks != 1 {
		t.Errorf("watermarks %+v", wm.Members)
	}
}

// Seeded chaos soak for the -race matrix: panics and delays injected
// across a larger fleet, with every healthy member still byte-identical
// to the chaos-free reference.
func TestFleetChaosSoak(t *testing.T) {
	const m, rounds = 8, 8
	members := chaosMembers(21, m, 25)
	sc := workload.Fleet(m, 25, "uniform")
	tick := fleetTick(sc)
	ctx := context.Background()
	inj := chaos.New(chaos.Faults{Seed: 77, TickPanic: 0.02, TickDelay: 0.2, Delay: 200 * time.Microsecond})

	ref, err := fleetEngine(t).NewFleet(ctx, FleetConfig{Members: members, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	refRep, err := ref.Run(ctx, rounds, tick)
	if err != nil {
		t.Fatal(err)
	}
	zeroSched(refRep)

	fleet, err := fleetEngine(t).NewFleet(ctx, FleetConfig{
		Members: members, Seed: 6, Workers: 4, TickHook: inj.Tick,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, runErr := fleet.Run(ctx, rounds, tick)
	var qe *QuarantineError
	if runErr != nil && !errors.As(runErr, &qe) {
		t.Fatal(runErr)
	}
	zeroSched(rep)
	for i, nr := range rep.PerNetwork {
		if ft := firstPanicTick(inj, i, rounds); ft >= 0 {
			if nr.Health != MemberQuarantined || nr.Ticks != ft {
				t.Errorf("net %d: health %s clock %d, want quarantined at %d", i, nr.Health, nr.Ticks, ft)
			}
			continue
		}
		if !reflect.DeepEqual(nr, refRep.PerNetwork[i]) {
			t.Errorf("net %d: healthy member differs from chaos-free reference under soak", i)
		}
	}
}
