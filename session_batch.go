package cbtc

import "fmt"

// EventKind discriminates Session events for batched application.
type EventKind uint8

const (
	// EventJoin introduces a new node at Event.Pos.
	EventJoin EventKind = iota + 1
	// EventLeave removes node Event.ID.
	EventLeave
	// EventMove relocates node Event.ID to Event.Pos.
	EventMove
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventJoin:
		return "join"
	case EventLeave:
		return "leave"
	case EventMove:
		return "move"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one Session reconfiguration event, the element of
// Session.ApplyBatch. Use JoinEvent, LeaveEvent and MoveEvent to
// construct values.
type Event struct {
	// Kind selects the event type.
	Kind EventKind
	// ID is the target node for Leave and Move events. Join events
	// ignore it: the session assigns the next free id and reports it in
	// BatchReport.JoinIDs.
	ID int
	// Pos is the position for Join and Move events.
	Pos Point
}

// JoinEvent returns an Event introducing a new node at p.
func JoinEvent(p Point) Event { return Event{Kind: EventJoin, Pos: p} }

// LeaveEvent returns an Event removing node id.
func LeaveEvent(id int) Event { return Event{Kind: EventLeave, ID: id} }

// MoveEvent returns an Event relocating node id to p.
func MoveEvent(id int, p Point) Event { return Event{Kind: EventMove, ID: id, Pos: p} }

// BatchReport describes how one ApplyBatch call propagated. The
// embedded EventReport aggregates the classification counts of every
// event in the batch; Recomputed lists each affected node once, even
// when several events touched its neighborhood.
type BatchReport struct {
	EventReport
	// JoinIDs holds the ids assigned to the batch's Join events, in
	// event order.
	JoinIDs []int
}

// ApplyBatch applies a burst of Join/Leave/Move events as one repair:
// the structural changes (positions, liveness, the spatial index, the
// incremental ground-truth G_R) are applied strictly in event order,
// the affected regions of all events are unioned, and a single
// recompute rebuilds the union to the exact minimal-power fixed point —
// one region pass and one snapshot invalidation instead of one per
// event. This is the natural shape of mobility traces (many nodes
// drifting per tick), where the per-event affected regions overlap
// heavily and the shared recompute does the work once.
//
// The resulting topology — N_α, G and the ground-truth G_R — is
// identical, edge for edge, to applying the same events singly through
// Join/Leave/Move, and therefore to a fresh Engine.Run over the final
// live placement. Only the classification statistics may differ from
// the one-by-one path: a batch classifies every event against the §4
// state machines as they stood when that event was applied, without the
// intermediate recomputes a sequential application would run between
// events.
//
// Validation is all-or-nothing: every Leave and Move must target a node
// live at the point its event applies (accounting for earlier joins and
// leaves in the same batch), or ApplyBatch returns an ErrBadEvent error
// before touching any session state. An empty batch is a no-op.
func (s *Session) ApplyBatch(events []Event) (BatchReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyBatchLocked(events)
}

// Tick is the fleet-facing tick hook: it applies one batch of events
// and observes the repaired topology in the same critical section, so a
// synchronized fleet tick costs one lock acquisition and the observed
// TickStats cannot interleave with another driver's events. Applying an
// empty batch is a valid tick — the observation still runs. On engines
// built WithBattery the tick also charges every live node one tick's
// transmit energy (drain × p(radius), at the radius the batch's repairs
// just installed) before observing, so the observed residual stats
// reflect this tick's spend.
//
// On a validation error nothing is applied (ApplyBatch's all-or-nothing
// contract). If the observation itself fails — possible only on the
// pairwise-stack snapshot rebuild — the batch HAS been applied: the
// report is returned alongside the error so the caller's event
// accounting stays consistent with the session state.
func (s *Session) Tick(events []Event) (BatchReport, TickStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep, err := s.applyBatchLocked(events)
	if err != nil {
		return BatchReport{}, TickStats{}, err
	}
	s.drainLocked()
	ts, err := s.observeLocked()
	return rep, ts, err
}

func (s *Session) applyBatchLocked(events []Event) (BatchReport, error) {
	var rep BatchReport
	if len(events) == 0 {
		return rep, nil
	}
	if err := s.validateBatch(events); err != nil {
		return BatchReport{}, err
	}

	// Apply the structural changes in event order, classifying each
	// event's observers as the single-event paths do, and record every
	// site whose R-neighborhood the batch disturbed: join positions,
	// leave positions, and both endpoints of each move.
	ids := make([]int, 0, len(events))
	sites := make([]Point, 0, 2*len(events))
	for _, ev := range events {
		switch ev.Kind {
		case EventJoin:
			id := s.admit(ev.Pos)
			rep.JoinIDs = append(rep.JoinIDs, id)
			rep.Repairs += len(s.withinRange(id, ev.Pos))
			ids = append(ids, id)
			sites = append(sites, ev.Pos)
		case EventLeave:
			site := s.pos[ev.ID]
			s.depart(ev.ID)
			s.observeLeave(ev.ID, s.withinRange(ev.ID, site), &rep.EventReport)
			ids = append(ids, ev.ID)
			sites = append(sites, site)
		case EventMove:
			old := s.relocate(ev.ID, ev.Pos)
			observers := s.union(s.withinRange(ev.ID, old), s.withinRange(ev.ID, ev.Pos))
			s.observeMove(ev.ID, ev.Pos, observers, &rep.EventReport)
			rep.Regrows++ // the moved node reruns its growing phase
			ids = append(ids, ev.ID)
			sites = append(sites, old, ev.Pos)
		}
	}
	s.applyStats(&rep.EventReport)

	// One recompute over the union of affected regions. Non-event nodes
	// never move, so "within R of a disturbed site" is time-invariant
	// for them and the final spatial index answers it exactly; event
	// nodes are recomputed unconditionally.
	affected := ids
	for _, p := range sites {
		affected = append(affected, s.withinRange(-1, p)...)
	}
	rep.Recomputed = s.recompute(affected)
	return rep, nil
}

// ValidateBatch checks whether events would pass ApplyBatch's
// all-or-nothing validation against the session's current state, without
// applying anything. It returns nil for a valid batch and an ErrBadEvent
// error otherwise. External ingestion drivers (Fleet.TickEvents,
// cmd/fleetd) use it to reject bad traffic before committing a tick; the
// answer is only binding while no other goroutine mutates the session in
// between.
func (s *Session) ValidateBatch(events []Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.validateBatch(events)
}

// validateBatch checks every event against the liveness state projected
// through the batch's earlier events, without mutating the session.
func (s *Session) validateBatch(events []Event) error {
	next := len(s.pos)
	overlay := make(map[int]bool) // projected liveness where it differs
	for i, ev := range events {
		switch ev.Kind {
		case EventJoin:
			overlay[next] = true
			next++
		case EventLeave, EventMove:
			id := ev.ID
			if id < 0 || id >= next {
				return fmt.Errorf("%w: batch event %d (%s): node %d does not exist", ErrBadEvent, i, ev.Kind, id)
			}
			live, ok := overlay[id]
			if !ok {
				live = id < len(s.alive) && s.alive[id]
			}
			if !live {
				return fmt.Errorf("%w: batch event %d (%s): node %d already departed", ErrBadEvent, i, ev.Kind, id)
			}
			if ev.Kind == EventLeave {
				overlay[id] = false
			}
		default:
			return fmt.Errorf("%w: batch event %d has unknown kind %d", ErrBadEvent, i, uint8(ev.Kind))
		}
	}
	return nil
}
