package cbtc_test

import (
	"fmt"

	"cbtc"
)

// Build a topology with the paper's tight connectivity bound and all
// optimizations.
func ExampleRun() {
	nodes := []cbtc.Point{
		cbtc.Pt(0, 0), cbtc.Pt(300, 0), cbtc.Pt(150, 250), cbtc.Pt(450, 200),
	}
	cfg := cbtc.Config{MaxRadius: 400}.AllOptimizations()
	res, err := cbtc.Run(nodes, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("edges:", res.G.EdgeCount())
	fmt.Println("connectivity preserved:", res.PreservesConnectivity())
	// Output:
	// edges: 3
	// connectivity preserved: true
}

// Compare against a position-based baseline from the related work.
func ExampleRunBaseline() {
	nodes := []cbtc.Point{
		cbtc.Pt(0, 0), cbtc.Pt(100, 0), cbtc.Pt(50, 10),
	}
	res, err := cbtc.RunBaseline(cbtc.BaselineRNG, nodes, cbtc.Config{MaxRadius: 400})
	if err != nil {
		panic(err)
	}
	// The long 0-1 edge has a witness (node 2) and is eliminated.
	fmt.Println("0-1 present:", res.G.HasEdge(0, 1))
	fmt.Println("edges:", res.G.EdgeCount())
	// Output:
	// 0-1 present: false
	// edges: 2
}

// The asymmetric edge removal optimization is guarded by Theorem 3.2's
// angle bound.
func ExampleConfig_AllOptimizations() {
	at23 := cbtc.Config{MaxRadius: 400, Alpha: cbtc.AlphaAsymmetric}.AllOptimizations()
	at56 := cbtc.Config{MaxRadius: 400, Alpha: cbtc.AlphaConnectivity}.AllOptimizations()
	fmt.Println("asym removal at 2π/3:", at23.AsymmetricRemoval)
	fmt.Println("asym removal at 5π/6:", at56.AsymmetricRemoval)
	// Output:
	// asym removal at 2π/3: true
	// asym removal at 5π/6: false
}
