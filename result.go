package cbtc

import (
	"cbtc/internal/core"
	"cbtc/internal/graph"
	"cbtc/internal/radio"
)

// Result is the outcome of a topology-control run.
//
// The graphs a Result carries are read-only views: session snapshots
// hand out copy-on-write clones whose rows are structurally shared with
// the live session state (either side copies a row before mutating it),
// so a Result stays frozen at its snapshot moment at O(nodes) cost.
// Treat G and GR as immutable; clone them before making local edits.
type Result struct {
	// G is the final symmetric communication graph.
	G *Graph
	// GR is the maximum-power graph the run started from; G is always a
	// subgraph of GR and (for α ≤ 5π/6) preserves its connectivity.
	GR *Graph
	// Pos echoes the input placement; node i sits at Pos[i].
	Pos []Point
	// Radii holds each node's transmission radius in G: the distance to
	// its farthest neighbor (0 for isolated nodes).
	Radii []float64
	// Powers holds p_{u,α}: each node's final growing-phase power.
	Powers []float64
	// Boundary flags nodes that still had an α-gap at maximum power.
	Boundary []bool
	// AvgDegree and AvgRadius are the two statistics of the paper's
	// Table 1.
	AvgDegree float64
	// AvgRadius is the mean of Radii.
	AvgRadius float64

	topo  *core.Topology
	model radio.Model
}

func newResult(nodes []Point, m radio.Model, topo *core.Topology, workers int) *Result {
	return newResultWithGR(nodes, m, topo, core.MaxPowerGraphParallel(nodes, m, workers))
}

// newResultWithGR builds a Result against a caller-supplied ground-truth
// graph. Sessions use it: their G_R must isolate departed nodes, which
// the plain max-power graph over remembered positions would reconnect.
func newResultWithGR(nodes []Point, m radio.Model, topo *core.Topology, gr *Graph) *Result {
	n := len(nodes)
	r := &Result{
		G:        topo.G,
		GR:       gr,
		Pos:      append([]Point(nil), nodes...),
		Radii:    make([]float64, n),
		Powers:   make([]float64, n),
		Boundary: make([]bool, n),
		topo:     topo,
		model:    m,
	}
	for u := 0; u < n; u++ {
		r.Radii[u] = topo.Radius(u)
		r.Powers[u] = topo.Exec.Nodes[u].GrowPower
		r.Boundary[u] = topo.Exec.Nodes[u].Boundary
	}
	s := topo.Summarize()
	r.AvgDegree = s.AvgDegree
	r.AvgRadius = s.AvgRadius
	return r
}

// newResultFromRadii is newResultWithGR for callers that already
// maintain the per-node radius table of topo.G — sessions fold their
// incremental radius cache here instead of rescanning every adjacency
// row. radii[u] must equal graph.NodeRadius(topo.G, nodes, u) for every
// slot; the summary statistics are then derived with the same summation
// order as Topology.Summarize, so the Result is bitwise identical to the
// from-scratch path, just without its O(edges) radius pass.
func newResultFromRadii(nodes []Point, m radio.Model, topo *core.Topology, gr *Graph, radii []float64) *Result {
	n := len(nodes)
	r := &Result{
		G:        topo.G,
		GR:       gr,
		Pos:      append([]Point(nil), nodes...),
		Radii:    append([]float64(nil), radii...),
		Powers:   make([]float64, n),
		Boundary: make([]bool, n),
		topo:     topo,
		model:    m,
	}
	for u := 0; u < n; u++ {
		r.Powers[u] = topo.Exec.Nodes[u].GrowPower
		r.Boundary[u] = topo.Exec.Nodes[u].Boundary
	}
	r.AvgDegree = graph.AvgDegree(topo.G)
	if n > 0 {
		var sum float64
		for _, rad := range radii {
			sum += rad
		}
		r.AvgRadius = sum / float64(n)
	}
	return r
}

// Components returns the number of connected components of G.
func (r *Result) Components() int { return graph.ComponentCount(r.G) }

// PreservesConnectivity reports whether G induces exactly the same
// component partition as GR — the guarantee of Theorem 2.1.
func (r *Result) PreservesConnectivity() bool {
	return graph.SamePartition(r.GR, r.G)
}

// BoundaryCount returns the number of boundary nodes.
func (r *Result) BoundaryCount() int {
	n := 0
	for _, b := range r.Boundary {
		if b {
			n++
		}
	}
	return n
}

// BeaconPower returns the §4 beacon power node u must use so that
// dynamic reconfiguration preserves connectivity under the configured
// optimization stack. It is only meaningful for results produced by Run
// or Simulate (the max-power baseline simply beacons at max power).
func (r *Result) BeaconPower(u int) float64 {
	if r.topo == nil {
		return r.model.MaxPower()
	}
	return r.topo.BeaconPower(u)
}

// PowerCost returns the transmission power corresponding to a radius
// under the run's path-loss model: p(d) = d^n.
func (r *Result) PowerCost(radius float64) float64 { return r.model.PowerFor(radius) }

// PowerStretch returns the worst-case ratio between minimum-energy route
// costs in G versus GR, using p(d) = d^n per hop. The paper's §1 cites a
// k+2k·sin(α/2)-competitiveness bound for α ≤ π/2; this measures the
// actual value.
func (r *Result) PowerStretch() float64 {
	return graph.Stretch(r.GR, r.G, graph.PowerWeight(r.Pos, r.model.Exponent))
}

// DistanceStretch returns the worst-case ratio between shortest route
// lengths (in Euclidean distance) in G versus GR.
func (r *Result) DistanceStretch() float64 {
	return graph.Stretch(r.GR, r.G, graph.EuclideanWeight(r.Pos))
}

// HopStretch returns the worst-case ratio between hop counts in G versus
// GR.
func (r *Result) HopStretch() float64 {
	return graph.HopStretch(r.GR, r.G)
}

// DirectedNeighbors returns N_α(u): the directed neighbor set node u
// discovered during its growing phase, after per-node pruning. The
// relation is not symmetric for α > 2π/3 (Example 2.1); G is its
// symmetric closure (or mutual subset under asymmetric removal). It
// returns nil for results without an execution (the max-power baseline
// and the position-based baselines).
func (r *Result) DirectedNeighbors(u int) []int {
	if r.topo == nil {
		return nil
	}
	nbs := r.topo.Exec.Nodes[u].Neighbors
	out := make([]int, len(nbs))
	for i, nb := range nbs {
		out[i] = nb.ID
	}
	return out
}

// RemovedRedundant returns the edges deleted by pairwise edge removal
// (empty unless PairwiseRemoval was enabled).
func (r *Result) RemovedRedundant() []Edge {
	if r.topo == nil {
		return nil
	}
	return append([]Edge(nil), r.topo.RemovedRedundant...)
}
