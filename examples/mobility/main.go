// Mobility: dynamic reconfiguration under node movement and failure
// (§4 of the paper). The example runs the distributed protocol with the
// Neighbor Discovery Protocol enabled, then scripts a scenario: a relay
// node crashes, a new node wanders into the void, and the network heals
// itself through leave/join events and regrows — while the §4
// beacon-power rule keeps the live topology connectivity-preserving
// throughout.
//
//	go run ./examples/mobility
package main

import (
	"fmt"
	"log"

	"cbtc/internal/core"
	"cbtc/internal/geom"
	"cbtc/internal/graph"
	"cbtc/internal/netsim"
	"cbtc/internal/proto"
	"cbtc/internal/radio"
)

func main() {
	// Two towns bridged by a relay; node 7 starts far away in the south.
	pos := []geom.Point{
		geom.Pt(0, 0), geom.Pt(150, 50), geom.Pt(80, 160), // west town
		geom.Pt(520, 100),                                      // the relay, node 3
		geom.Pt(950, 0), geom.Pt(1050, 120), geom.Pt(900, 180), // east town
		geom.Pt(500, 1400), // wanderer, node 7
	}
	m := radio.Default(500)

	rt, err := proto.Start(pos, netsim.DefaultOptions(m), proto.Config{
		Alpha:        core.AlphaConnectivity,
		EnableNDP:    true,
		BeaconPeriod: 5,
		LeaveTimeout: 18,
	})
	if err != nil {
		log.Fatal(err)
	}

	report := func(when string) {
		g := rt.TableGraph()
		fmt.Printf("%-28s components=%d edges=%2d  (live neighbor tables)\n",
			when, graph.ComponentCount(g), g.EdgeCount())
	}

	// Let the growing phase converge, then script the scenario.
	rt.Sim.Run(100)
	report("after CBTC converges:")

	// t=150: the bridge relay dies. The towns must detect the failure
	// via missed beacons and split into (correct) separate components.
	rt.Sim.ScheduleAt(150, func() { rt.Sim.Crash(3) })
	rt.Sim.Run(400)
	report("after relay crash:")

	// t=450: the wanderer moves to the relay position, its beacons are
	// heard, join events fire, and the towns reconnect through it.
	rt.Sim.ScheduleAt(450, func() { rt.Sim.MoveNode(7, geom.Pt(520, 100)) })
	rt.Sim.Run(900)
	report("after wanderer takes over:")

	// Verify the live topology matches the ground truth at every stage.
	gr := currentGR(rt, m)
	fmt.Printf("\nlive topology preserves current G_R partition: %v\n",
		graph.SamePartition(gr, rt.TableGraph()))

	joins, leaves, regrows := 0, 0, 0
	for _, n := range rt.Nodes {
		joins += n.Joins
		leaves += n.Leaves
		regrows += n.Regrows
	}
	fmt.Printf("reconfiguration events: %d joins, %d leaves, %d regrows\n", joins, leaves, regrows)
}

// currentGR computes the maximum-power graph over the live positions,
// excluding the crashed relay.
func currentGR(rt *proto.Runtime, m radio.Model) *graph.Graph {
	pos := make([]geom.Point, rt.Sim.Len())
	for i := range pos {
		pos[i] = rt.Sim.Position(i)
	}
	gr := core.MaxPowerGraph(pos, m)
	for u := 0; u < gr.Len(); u++ {
		if rt.Sim.Crashed(u) {
			for _, v := range gr.Neighbors(u) {
				gr.RemoveEdge(u, v)
			}
		}
	}
	return gr
}
