// Mobility: dynamic reconfiguration under node movement and failure
// (§4 of the paper), driven entirely through the library's public
// Session API. The example builds a topology over two towns bridged by
// a relay, then scripts a scenario: the relay crashes, a distant
// wanderer moves in to take its place, and the network heals itself
// through the §4 join/leave/aChange events — with incremental repair
// (only nodes near each event recompute) and the connectivity guarantee
// holding at every step.
//
// For the same scenario at the message-passing level — beacons, leave
// timeouts, lossy channels — see `go run ./cmd/dynsim -demo` and the
// internal discrete-event simulator it drives.
//
//	go run ./examples/mobility
package main

import (
	"context"
	"fmt"
	"log"

	"cbtc"
)

func main() {
	// Two towns bridged by a relay; node 7 starts far away in the south.
	pos := []cbtc.Point{
		cbtc.Pt(0, 0), cbtc.Pt(150, 50), cbtc.Pt(80, 160), // west town
		cbtc.Pt(520, 100),                                      // the relay, node 3
		cbtc.Pt(950, 0), cbtc.Pt(1050, 120), cbtc.Pt(900, 180), // east town
		cbtc.Pt(500, 1400), // wanderer, node 7
	}

	eng, err := cbtc.New(
		cbtc.WithMaxRadius(500),
		cbtc.WithAlpha(cbtc.AlphaConnectivity),
	)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := eng.NewSession(context.Background(), pos)
	if err != nil {
		log.Fatal(err)
	}

	report := func(when string) {
		snap, err := sess.Snapshot()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s components=%d edges=%2d  connectivity preserved=%v\n",
			when, snap.Components(), snap.G.EdgeCount(), snap.PreservesConnectivity())
	}
	report("initial topology:")

	// The bridge relay dies. Its neighbors observe leave events; the
	// towns (correctly) split into separate components.
	rep, err := sess.Leave(3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  relay crash repaired %d nodes (%d regrows)\n", len(rep.Recomputed), rep.Regrows)
	report("after relay crash:")

	// The wanderer moves to the relay position: its beacon produces join
	// events in both towns and the network reconnects through it.
	rep, err = sess.Move(7, cbtc.Pt(520, 100))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  wanderer move repaired %d nodes (%d regrows, %d angle changes)\n",
		len(rep.Recomputed), rep.Regrows, rep.AngleChanges)
	report("after wanderer takes over:")

	// Reinforce the bridge with a brand-new node; IDs are stable, so the
	// newcomer gets the next free index.
	id, rep := sess.Join(cbtc.Pt(600, 40))
	fmt.Printf("  node %d joined, repairing %d nodes\n", id, len(rep.Recomputed))
	report("after reinforcement joins:")

	// A mobility tick: the whole east town drifts north together. Bursts
	// of correlated moves are the batch API's shape — ApplyBatch applies
	// every event, unions the affected regions, and repairs the union
	// with one recompute instead of one per move.
	batch, err := sess.ApplyBatch([]cbtc.Event{
		cbtc.MoveEvent(4, cbtc.Pt(950, 60)),
		cbtc.MoveEvent(5, cbtc.Pt(1050, 180)),
		cbtc.MoveEvent(6, cbtc.Pt(900, 240)),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  east-town drift batch repaired %d nodes once (%d regrows, %d angle changes)\n",
		len(batch.Recomputed), batch.Regrows, batch.AngleChanges)
	report("after east town drifts:")

	st := sess.Stats()
	fmt.Printf("\nreconfiguration events: %d joins, %d leaves, %d moves, %d angle changes, %d regrows, %d repairs\n",
		st.Joins, st.Leaves, st.Moves, st.AngleChanges, st.Regrows, st.Repairs)

	// The session's incremental state equals a from-scratch run over the
	// current live placement — the §4 convergence property.
	snap, err := sess.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live topology preserves current G_R partition: %v\n", snap.PreservesConnectivity())
}
