// Sensornet: the workload that motivates the paper's introduction — a
// dense, battery-powered sensor network where transmission power
// dominates energy consumption. The example compares every optimization
// stack on the same deployment, and translates radius reductions into an
// estimated network-lifetime factor under the p(d) = d² free-space
// model.
//
//	go run ./examples/sensornet
package main

import (
	"context"
	"fmt"
	"log"

	"cbtc"
	"cbtc/internal/stats"
	"cbtc/internal/workload"
)

func main() {
	// 300 sensors scattered over a 2km x 2km field, 500m max radio range:
	// a denser deployment than the paper's evaluation, where topology
	// control matters even more.
	nodes := workload.Uniform(workload.Rand(2024), 300, 2000, 2000)
	const maxRadius = 500
	ctx := context.Background()

	type stack struct {
		name string
		opts []cbtc.Option
	}
	stacks := []stack{
		{"basic α=5π/6", []cbtc.Option{cbtc.WithAlpha(cbtc.AlphaConnectivity)}},
		{"basic α=2π/3", []cbtc.Option{cbtc.WithAlpha(cbtc.AlphaAsymmetric)}},
		{"all ops α=5π/6", []cbtc.Option{cbtc.WithAlpha(cbtc.AlphaConnectivity), cbtc.WithAllOptimizations()}},
		{"all ops α=2π/3", []cbtc.Option{cbtc.WithAlpha(cbtc.AlphaAsymmetric), cbtc.WithAllOptimizations()}},
	}

	baseEng, err := cbtc.New(cbtc.WithMaxRadius(maxRadius))
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := baseEng.MaxPower(nodes)
	if err != nil {
		log.Fatal(err)
	}
	baselinePower := avgTxPower(baseline)

	fmt.Println("sensor network: 300 nodes, 2000x2000 field, R=500")
	tb := stats.NewTable("configuration", "edges", "avg degree", "avg radius",
		"avg tx power", "lifetime factor", "connected")
	tb.AddRow("max power", fmt.Sprint(baseline.G.EdgeCount()),
		stats.F(baseline.AvgDegree, 1), stats.F(baseline.AvgRadius, 1),
		stats.F(baselinePower, 0), "1.0", "true")

	for _, st := range stacks {
		eng, err := cbtc.New(append([]cbtc.Option{cbtc.WithMaxRadius(maxRadius)}, st.opts...)...)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Run(ctx, nodes)
		if err != nil {
			log.Fatal(err)
		}
		power := avgTxPower(res)
		tb.AddRow(st.name, fmt.Sprint(res.G.EdgeCount()),
			stats.F(res.AvgDegree, 1), stats.F(res.AvgRadius, 1),
			stats.F(power, 0),
			stats.F(baselinePower/power, 1),
			fmt.Sprint(res.PreservesConnectivity()))
	}
	fmt.Print(tb.String())

	fmt.Println("\nThe lifetime factor is the mean transmit-power reduction relative")
	fmt.Println("to max power: with all optimizations each radio spends an order of")
	fmt.Println("magnitude less energy per transmission while the network stays")
	fmt.Println("connected — the paper's headline result.")
}

// avgTxPower is the mean power needed to reach each node's farthest
// neighbor in the final topology.
func avgTxPower(res *cbtc.Result) float64 {
	var sum float64
	for _, r := range res.Radii {
		sum += res.PowerCost(r)
	}
	return sum / float64(len(res.Radii))
}
