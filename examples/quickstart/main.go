// Quickstart: run cone-based topology control on a small ad-hoc network
// and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"cbtc"
)

func main() {
	// A hand-placed 10-node ad-hoc network in a 1000x1000 field.
	// Distances are meters; radios reach 400m at maximum power.
	nodes := []cbtc.Point{
		cbtc.Pt(100, 100), cbtc.Pt(350, 120), cbtc.Pt(600, 80),
		cbtc.Pt(150, 400), cbtc.Pt(420, 380), cbtc.Pt(700, 420),
		cbtc.Pt(120, 700), cbtc.Pt(400, 650), cbtc.Pt(680, 720),
		cbtc.Pt(900, 500),
	}

	// Build the engine once: the paper's tight connectivity bound
	// α = 5π/6 with all applicable optimizations. The engine validates
	// here, is immutable afterwards, and may be shared by any number of
	// goroutines.
	eng, err := cbtc.New(
		cbtc.WithMaxRadius(400),
		cbtc.WithAlpha(cbtc.AlphaConnectivity),
		cbtc.WithAllOptimizations(),
	)
	if err != nil {
		log.Fatal(err)
	}

	res, err := eng.Run(context.Background(), nodes)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("cone-based topology control, α = 5π/6")
	fmt.Printf("  max-power graph: %d edges\n", res.GR.EdgeCount())
	fmt.Printf("  controlled topology: %d edges\n", res.G.EdgeCount())
	fmt.Printf("  connectivity preserved: %v\n", res.PreservesConnectivity())
	fmt.Printf("  average degree: %.2f (was %.2f)\n",
		res.AvgDegree, 2*float64(res.GR.EdgeCount())/float64(len(nodes)))
	fmt.Printf("  average radius: %.1f m (was %.1f m)\n\n", res.AvgRadius, 400.0)

	fmt.Println("per-node power assignment:")
	for u := range nodes {
		marker := ""
		if res.Boundary[u] {
			marker = "  (boundary node)"
		}
		fmt.Printf("  node %d: radius %6.1f m, tx power %10.0f, neighbors %v%s\n",
			u, res.Radii[u], res.PowerCost(res.Radii[u]), res.G.Neighbors(u), marker)
	}

	fmt.Println("\nroute quality versus the max-power graph:")
	fmt.Printf("  power stretch:    %.3f\n", res.PowerStretch())
	fmt.Printf("  distance stretch: %.3f\n", res.DistanceStretch())
	fmt.Printf("  hop stretch:      %.3f\n", res.HopStretch())
}
