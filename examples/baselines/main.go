// Baselines: how the cone-based algorithm stacks up against the
// position-based topology-control constructions from the paper's
// related-work section, on a single deployment. CBTC needs only
// directional estimates, yet lands in the same degree/radius class as
// graphs built from exact coordinates.
//
//	go run ./examples/baselines
package main

import (
	"fmt"
	"log"

	"cbtc"
	"cbtc/internal/stats"
	"cbtc/internal/workload"
)

func main() {
	nodes := workload.Uniform(workload.Rand(99), 150, 1500, 1500)
	cfg := cbtc.Config{MaxRadius: 500}

	cbtcRes, err := cbtc.Run(nodes, cfg.AllOptimizations())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("CBTC (directions only) vs position-based baselines, 150 nodes")
	tb := stats.NewTable("topology", "needs positions", "avg degree", "avg radius", "power stretch")
	tb.AddRow("CBTC all-ops 5π/6", "no",
		stats.F(cbtcRes.AvgDegree, 2), stats.F(cbtcRes.AvgRadius, 1),
		stats.F(cbtcRes.PowerStretch(), 2))

	for _, kind := range cbtc.BaselineKinds() {
		res, err := cbtc.RunBaseline(kind, nodes, cfg)
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRow(kind.String(), "yes",
			stats.F(res.AvgDegree, 2), stats.F(res.AvgRadius, 1),
			stats.F(res.PowerStretch(), 2))
	}
	fmt.Print(tb.String())

	fmt.Println("\nAll five topologies preserve the connectivity of the max-power")
	fmt.Println("graph; CBTC achieves it without any coordinate information, which")
	fmt.Println("is the paper's point.")
}
