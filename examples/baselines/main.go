// Baselines: how the cone-based algorithm stacks up against the
// position-based topology-control constructions from the paper's
// related-work section, on a single deployment. CBTC needs only
// directional estimates, yet lands in the same degree/radius class as
// graphs built from exact coordinates.
//
//	go run ./examples/baselines
package main

import (
	"context"
	"fmt"
	"log"

	"cbtc"
	"cbtc/internal/stats"
	"cbtc/internal/workload"
)

func main() {
	nodes := workload.Uniform(workload.Rand(99), 150, 1500, 1500)

	// CompareBaselines fans CBTC and every comparator across the batch
	// worker pool and returns one row per topology.
	rows, err := cbtc.CompareBaselines(context.Background(), nodes, cbtc.Config{MaxRadius: 500})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("CBTC (directions only) vs position-based baselines, 150 nodes")
	tb := stats.NewTable("topology", "needs positions", "avg degree", "avg radius", "power stretch")
	for _, row := range rows {
		if row.Name == "max power" || row.Name == "CBTC basic 5π/6" || row.Name == "CBTC all-ops 2π/3" {
			continue // keep the table focused on the all-ops stack vs comparators
		}
		needs := "no"
		if row.NeedsPositions {
			needs = "yes"
		}
		tb.AddRow(row.Name, needs,
			stats.F(row.Result.AvgDegree, 2), stats.F(row.Result.AvgRadius, 1),
			stats.F(row.Result.PowerStretch(), 2))
	}
	fmt.Print(tb.String())

	fmt.Println("\nAll five topologies preserve the connectivity of the max-power")
	fmt.Println("graph; CBTC achieves it without any coordinate information, which")
	fmt.Println("is the paper's point.")
}
