// Asymmetry: a walkthrough of Example 2.1 (Figure 2 of the paper) — why
// CBTC's neighbor relation needs a symmetric closure for α > 2π/3, and
// why asymmetric edge removal is only safe up to 2π/3.
//
//	go run ./examples/asymmetry
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"cbtc"
	"cbtc/internal/workload"
)

func main() {
	const r = 500.0
	alpha := 2*math.Pi/3 + 0.2 // ε = 0.1 in the paper's construction
	ctx := context.Background()

	// The five-node configuration of Figure 2: u0 with v at distance
	// exactly R, u1/u2 placed at angle α/2 so they cover v's direction
	// from u0's perspective, and u3 behind u0.
	nodes, err := workload.Example21(alpha, r)
	if err != nil {
		log.Fatal(err)
	}
	names := []string{"u0", "u1", "u2", "u3", "v"}

	fmt.Printf("Example 2.1 at α = %.3f rad (%.1f°)\n\n", alpha, alpha*180/math.Pi)
	for i, p := range nodes {
		fmt.Printf("  %-2s at (%7.1f, %7.1f), d(u0,·) = %.1f\n",
			names[i], p.X, p.Y, nodes[0].Dist(p))
	}

	eng, err := cbtc.New(cbtc.WithMaxRadius(r), cbtc.WithAlpha(alpha))
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(ctx, nodes)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nper-node outcome of CBTC(α):")
	for i := range nodes {
		fmt.Printf("  %-2s: radius %6.1f, boundary=%v\n", names[i], res.Radii[i], res.Boundary[i])
	}

	fmt.Println("\nthe asymmetry:")
	fmt.Printf("  v  reaches u0 only at max power, so (v,u0) ∈ N_α\n")
	fmt.Printf("  u0 stops growing once u1,u2,u3 cover every cone — before reaching v\n")
	fmt.Printf("  G_α keeps the edge anyway (symmetric closure): u0-v present = %v\n",
		res.G.HasEdge(0, 4))
	fmt.Printf("  connectivity preserved: %v\n", res.PreservesConnectivity())

	// At this α the library refuses to drop asymmetric edges: doing so
	// would disconnect v. The guard is the point of Theorem 3.2's 2π/3
	// bound — New rejects the combination outright.
	_, err = cbtc.New(cbtc.WithMaxRadius(r), cbtc.WithAlpha(alpha), cbtc.WithAsymmetricRemoval())
	fmt.Printf("\nasymmetric removal at α > 2π/3 rejected: %v\n", err != nil)

	// At α = 2π/3 the relation is "symmetric enough": the largest
	// mutual subgraph already preserves connectivity (Theorem 3.2).
	eng23, err := cbtc.New(
		cbtc.WithMaxRadius(r),
		cbtc.WithAlpha(cbtc.AlphaAsymmetric),
		cbtc.WithAsymmetricRemoval(),
	)
	if err != nil {
		log.Fatal(err)
	}
	res23, err := eng23.Run(ctx, nodes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("at α = 2π/3 with asymmetric removal: connected = %v\n",
		res23.PreservesConnectivity())
}
