// Fleet: many independent networks served by one Engine. A topology-
// control simulation service rarely runs a single deployment — it
// drives hundreds of networks, each evolving under its own mobility and
// membership churn. Engine.NewFleet owns M such networks, shards them
// across a goroutine pool, advances them through synchronized ticks
// (each tick one batched §4 repair per network), and aggregates the
// cross-network statistics with mergeable streaming accumulators.
//
// The fleet is deterministic: every network owns a private seeded RNG
// stream, so the same config produces byte-identical per-network
// results at any worker count — sharding changes only the wall-clock.
//
//	go run ./examples/fleet
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	"cbtc"
)

func main() {
	// Eight 60-node networks drawn from the paper's evaluation density.
	const networks, nodes = 8, 60
	placements := make([][]cbtc.Point, networks)
	for i := range placements {
		rng := rand.New(rand.NewPCG(uint64(i), 42))
		placements[i] = make([]cbtc.Point, nodes)
		for j := range placements[i] {
			placements[i][j] = cbtc.Pt(rng.Float64()*1200, rng.Float64()*1200)
		}
	}

	eng, err := cbtc.New(cbtc.WithMaxRadius(500), cbtc.WithShrinkBack())
	if err != nil {
		log.Fatal(err)
	}
	fleet, err := eng.NewFleet(context.Background(), cbtc.FleetConfig{
		Placements: placements,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Ten synchronized ticks of the standard drift/churn profile: a few
	// nodes wander each tick, nodes occasionally join and leave.
	rep, err := fleet.Run(context.Background(), 10, cbtc.DriftTick(cbtc.TickProfile{
		Moves:     4,
		Jitter:    60,
		JoinProb:  0.3,
		LeaveProb: 0.3,
		Width:     1200,
		Height:    1200,
	}))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fleet of %d networks, %d synchronized ticks, %d events applied\n",
		rep.Networks, rep.Ticks, rep.Events)
	fmt.Printf("degree  mean %.2f ± %.2f   (per-network per-tick observations)\n",
		rep.Degree.Mean, rep.Degree.StdDev())
	fmt.Printf("radius  mean %.1f (max power would be 500)\n", rep.Radius.Mean)
	fmt.Printf("degree distribution p50=%d p95=%d over %d live nodes\n",
		rep.DegreeDist.Quantile(0.5), rep.DegreeDist.Quantile(0.95), rep.Live)
	fmt.Printf("connectivity preserved in %d/%d networks\n", rep.Preserved, rep.Networks)

	// Individual sessions stay accessible for drill-down: Observe is the
	// cheap per-tick read (live nodes only), Snapshot the full Result.
	ts, err := fleet.Session(0).Observe()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network 0 drill-down: %d live nodes in %d components, %d edges, stats %+v\n",
		ts.Live, ts.Components, ts.Edges, fleet.Session(0).Stats())
}
