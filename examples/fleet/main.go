// Fleet: many independent networks served by one Engine. A topology-
// control simulation service rarely runs a single deployment — it
// drives hundreds of networks, each evolving under its own mobility and
// membership churn. Engine.NewFleet owns M such networks, described by
// heterogeneous MemberSpecs: members can be built by the exact oracle
// or by actually running the paper's distributed protocol, can override
// engine options, and can tick at different rates per fleet round. A
// work-stealing scheduler drives every member's private tick clock, so
// a slow member never stalls the rest.
//
// Each member owns a private seeded RNG stream: the same config
// produces byte-identical per-member results at any worker count —
// scheduling changes only the wall-clock.
//
//	go run ./examples/fleet
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	"cbtc"
)

func main() {
	// Eight 60-node networks drawn from the paper's evaluation density.
	const networks, nodes = 8, 60
	placement := func(i int) []cbtc.Point {
		rng := rand.New(rand.NewPCG(uint64(i), 42))
		pts := make([]cbtc.Point, nodes)
		for j := range pts {
			pts[j] = cbtc.Pt(rng.Float64()*1200, rng.Float64()*1200)
		}
		return pts
	}
	members := make([]cbtc.MemberSpec, networks)
	for i := range members {
		members[i] = cbtc.MemberSpec{Placement: placement(i)}
	}
	// Heterogeneity: member 0 is built by running the actual distributed
	// protocol, member 1 runs the full optimization stack and ticks twice
	// per fleet round.
	members[0].Kind = cbtc.MemberProtocol
	members[1].Options = []cbtc.Option{cbtc.WithAllOptimizations()}
	members[1].Ticks = 2

	eng, err := cbtc.New(cbtc.WithMaxRadius(500), cbtc.WithShrinkBack())
	if err != nil {
		log.Fatal(err)
	}
	fleet, err := eng.NewFleet(context.Background(), cbtc.FleetConfig{
		Members: members,
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Ten fleet rounds of the standard drift/churn profile: a few nodes
	// wander each tick, nodes occasionally join and leave. Member 1's
	// weight makes that 20 ticks on its clock.
	rep, err := fleet.Run(context.Background(), 10, cbtc.DriftTick(cbtc.TickProfile{
		Moves:     4,
		Jitter:    60,
		JoinProb:  0.3,
		LeaveProb: 0.3,
		Width:     1200,
		Height:    1200,
	}))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fleet of %d networks, ticks %d..%d per member, %d events applied\n",
		rep.Networks, rep.Watermarks.Min, rep.Watermarks.Max, rep.Events)
	fmt.Printf("degree  mean %.2f ± %.2f   (per-member per-tick observations)\n",
		rep.Series.Degree.Mean, rep.Series.Degree.StdDev())
	fmt.Printf("radius  mean %.1f (max power would be 500)\n", rep.Series.Radius.Mean)
	fmt.Printf("degree distribution p50=%d p95=%d over %d live nodes\n",
		rep.DegreeDist.Quantile(0.5), rep.DegreeDist.Quantile(0.95), rep.Live)
	fmt.Printf("connectivity preserved in %d/%d networks\n", rep.Preserved, rep.Networks)

	// Per-member drill-down: the same report shape fleetd serves over
	// HTTP, including the member's kind, clock and scheduler telemetry.
	nr := rep.PerNetwork[0]
	fmt.Printf("network 0 (%s): %d ticks, %d live nodes in %d components, %d leases (%d requeues)\n",
		nr.Kind, nr.Ticks, nr.Final.Live, nr.Final.Components, nr.Sched.Leases, nr.Sched.Requeues)
}
