package baseline

import (
	"math"
	"testing"
	"testing/quick"

	"cbtc/internal/geom"
	"cbtc/internal/graph"
	"cbtc/internal/workload"
)

const testRadius = 500.0

func maxPowerGraph(pos []geom.Point, r float64) *graph.Graph {
	g := graph.New(len(pos))
	for u := 0; u < len(pos); u++ {
		for v := u + 1; v < len(pos); v++ {
			if pos[u].Dist(pos[v]) <= r {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestRNGWitnessElimination(t *testing.T) {
	// Triangle where node 2 witnesses the long 0-1 edge.
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(50, 10)}
	g := RNG(pos, testRadius)
	if g.HasEdge(0, 1) {
		t.Errorf("witnessed edge must be eliminated")
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(1, 2) {
		t.Errorf("short edges must survive")
	}
}

func TestGabrielDiametralCircle(t *testing.T) {
	// Node 2 inside the diametral circle of 0-1 kills the edge; node 2
	// outside it (but witnessing the RNG lune) does not.
	inside := []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(50, 10)}
	if g := Gabriel(inside, testRadius); g.HasEdge(0, 1) {
		t.Errorf("edge with node inside diametral circle must go")
	}
	lune := []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(50, 60)}
	if g := Gabriel(lune, testRadius); !g.HasEdge(0, 1) {
		t.Errorf("node outside the diametral circle must not kill the edge")
	}
	if g := RNG(lune, testRadius); g.HasEdge(0, 1) {
		t.Errorf("the same node DOES witness the RNG lune (d<100 to both)")
	}
}

func TestYaoBasics(t *testing.T) {
	center := geom.Pt(0, 0)
	// Two nodes in the same sector: only the nearest gets the arc.
	pos := []geom.Point{center, center.Polar(100, 0.1), center.Polar(200, 0.2)}
	d, err := Yao(pos, testRadius, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !d.HasArc(0, 1) || d.HasArc(0, 2) {
		t.Errorf("Yao must keep only the nearest per sector: %v", d.Successors(0))
	}
	// Out-degree bounded by k.
	if got := d.OutDegree(0); got > 6 {
		t.Errorf("out-degree %d exceeds k", got)
	}
	if _, err := Yao(pos, testRadius, 0); err == nil {
		t.Errorf("k=0 must be rejected")
	}
}

func TestYaoRespectsRange(t *testing.T) {
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(600, 0)}
	d, err := Yao(pos, testRadius, 6)
	if err != nil {
		t.Fatal(err)
	}
	if d.ArcCount() != 0 {
		t.Errorf("out-of-range node must not get an arc")
	}
}

// Classical inclusion chain on random placements:
// EMST ⊆ RNG ⊆ Gabriel ⊆ G_R.
func TestInclusionChainProperty(t *testing.T) {
	f := func(seed uint64) bool {
		pos := workload.Uniform(workload.Rand(seed), 40, 1500, 1500)
		gr := maxPowerGraph(pos, testRadius)
		mst := graph.MST(gr, graph.EuclideanWeight(pos))
		rng := RNG(pos, testRadius)
		gg := Gabriel(pos, testRadius)
		return mst.IsSubgraphOf(rng) && rng.IsSubgraphOf(gg) && gg.IsSubgraphOf(gr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Every baseline preserves the G_R component partition (Yao needs k ≥ 6).
func TestBaselinesPreserveConnectivity(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		pos := workload.Uniform(workload.Rand(seed), 60, 1500, 1500)
		gr := maxPowerGraph(pos, testRadius)

		builders := map[string]func() *graph.Graph{
			"rng":     func() *graph.Graph { return RNG(pos, testRadius) },
			"gabriel": func() *graph.Graph { return Gabriel(pos, testRadius) },
			"yao6": func() *graph.Graph {
				g, err := YaoSymmetric(pos, testRadius, 6)
				if err != nil {
					t.Fatal(err)
				}
				return g
			},
			"yao8": func() *graph.Graph {
				g, err := YaoSymmetric(pos, testRadius, 8)
				if err != nil {
					t.Fatal(err)
				}
				return g
			},
			"minmax": func() *graph.Graph {
				g, _ := MinMaxRadius(pos, testRadius)
				return g
			},
		}
		for name, build := range builders {
			g := build()
			if !graph.SamePartition(gr, g) {
				t.Errorf("seed %d: %s changed the component partition", seed, name)
			}
			if !g.IsSubgraphOf(gr) {
				t.Errorf("seed %d: %s is not a subgraph of G_R", seed, name)
			}
		}
	}
}

func TestMinMaxRadiusProperties(t *testing.T) {
	pos := workload.Uniform(workload.Rand(3), 50, 1500, 1500)
	g, radii := MinMaxRadius(pos, testRadius)
	gr := maxPowerGraph(pos, testRadius)
	mst := graph.MST(gr, graph.EuclideanWeight(pos))

	// The spanning forest is contained in the induced graph.
	if !mst.IsSubgraphOf(g) {
		t.Errorf("MST must be contained in the min-max-radius graph")
	}
	// The maximum assigned radius equals the bottleneck radius.
	want := graph.BottleneckRadius(gr, graph.EuclideanWeight(pos))
	var got float64
	for _, r := range radii {
		if r > got {
			got = r
		}
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("max radius = %v, want bottleneck %v", got, want)
	}
	// No CBTC-style assignment can beat the bottleneck on max radius:
	// it is the optimum of the min-max objective.
	for u, r := range radii {
		if r > testRadius*(1+1e-9) {
			t.Errorf("node %d radius %v exceeds R", u, r)
		}
	}
}

// The RNG has bounded average degree on random instances (its expected
// degree is below 4 in the plane); sanity-check the construction is not
// degenerate.
func TestRNGDegreeSane(t *testing.T) {
	pos := workload.Uniform(workload.Rand(7), 100, 1500, 1500)
	g := RNG(pos, testRadius)
	if d := graph.AvgDegree(g); d <= 1 || d > 6 {
		t.Errorf("RNG average degree %v outside the plausible range (1, 6]", d)
	}
}

func TestYaoSectorBoundary(t *testing.T) {
	// A node exactly on the 0-bearing sector boundary must land in a
	// valid sector (no panic, one arc).
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0)}
	d, err := Yao(pos, testRadius, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !d.HasArc(0, 1) {
		t.Errorf("boundary-bearing neighbor lost")
	}
}

func TestBetaSkeletonSpecialCases(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		pos := workload.Uniform(workload.Rand(seed), 40, 1500, 1500)
		b1, err := BetaSkeleton(pos, testRadius, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !b1.Equal(Gabriel(pos, testRadius)) {
			t.Errorf("seed %d: β=1 skeleton must equal the Gabriel graph", seed)
		}
		b2, err := BetaSkeleton(pos, testRadius, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !b2.Equal(RNG(pos, testRadius)) {
			t.Errorf("seed %d: β=2 skeleton must equal the RNG", seed)
		}
	}
}

func TestBetaSkeletonMonotone(t *testing.T) {
	pos := workload.Uniform(workload.Rand(11), 50, 1500, 1500)
	var prev *graph.Graph
	for _, beta := range []float64{1, 1.3, 1.7, 2, 2.5} {
		g, err := BetaSkeleton(pos, testRadius, beta)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !g.IsSubgraphOf(prev) {
			t.Errorf("β=%v skeleton is not a subgraph of the previous (smaller β)", beta)
		}
		prev = g
	}
}

func TestBetaSkeletonValidation(t *testing.T) {
	if _, err := BetaSkeleton(nil, 500, 0.5); err == nil {
		t.Errorf("β < 1 must be rejected")
	}
}

// β ≤ 2 skeletons contain the RNG, hence the EMST: connectivity holds.
func TestBetaSkeletonConnectivity(t *testing.T) {
	for _, beta := range []float64{1, 1.5, 2} {
		pos := workload.Uniform(workload.Rand(13), 60, 1500, 1500)
		g, err := BetaSkeleton(pos, testRadius, beta)
		if err != nil {
			t.Fatal(err)
		}
		if !graph.SamePartition(maxPowerGraph(pos, testRadius), g) {
			t.Errorf("β=%v skeleton changed the partition", beta)
		}
	}
}
