package baseline

import (
	"math"
	"testing"

	"cbtc/internal/geom"
	"cbtc/internal/graph"
	"cbtc/internal/workload"
)

// The naive reference constructions below are the pre-index O(n²)/O(n³)
// implementations, kept verbatim as the ground truth the grid-accelerated
// package code must reproduce edge-for-edge.

func naiveRNG(pos []geom.Point, r float64) *graph.Graph {
	n := len(pos)
	g := graph.New(n)
	r2 := r * r
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d2 := pos[u].Dist2(pos[v])
			if d2 > r2*(1+1e-12) {
				continue
			}
			witness := false
			for w := 0; w < n; w++ {
				if w == u || w == v {
					continue
				}
				if pos[w].Dist2(pos[u]) < d2 && pos[w].Dist2(pos[v]) < d2 {
					witness = true
					break
				}
			}
			if !witness {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func naiveGabriel(pos []geom.Point, r float64) *graph.Graph {
	n := len(pos)
	g := graph.New(n)
	r2 := r * r
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d2 := pos[u].Dist2(pos[v])
			if d2 > r2*(1+1e-12) {
				continue
			}
			center := pos[u].Midpoint(pos[v])
			rad2 := d2 / 4
			inside := false
			for w := 0; w < n; w++ {
				if w == u || w == v {
					continue
				}
				if pos[w].Dist2(center) < rad2 {
					inside = true
					break
				}
			}
			if !inside {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func naiveYao(pos []geom.Point, r float64, k int) *graph.Digraph {
	n := len(pos)
	d := graph.NewDigraph(n)
	sector := geom.TwoPi / float64(k)
	r2 := r * r
	best := make([]int, k)
	bestD2 := make([]float64, k)
	for u := 0; u < n; u++ {
		for s := 0; s < k; s++ {
			best[s] = -1
			bestD2[s] = math.Inf(1)
		}
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			d2 := pos[u].Dist2(pos[v])
			if d2 > r2*(1+1e-12) {
				continue
			}
			s := int(pos[u].Bearing(pos[v]) / sector)
			if s >= k {
				s = k - 1
			}
			if d2 < bestD2[s] || (d2 == bestD2[s] && v < best[s]) {
				bestD2[s] = d2
				best[s] = v
			}
		}
		for s := 0; s < k; s++ {
			if best[s] >= 0 {
				d.AddArc(u, best[s])
			}
		}
	}
	return d
}

func naiveBetaSkeleton(pos []geom.Point, r, beta float64) *graph.Graph {
	n := len(pos)
	g := graph.New(n)
	r2 := r * r
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d2 := pos[u].Dist2(pos[v])
			if d2 > r2*(1+1e-12) {
				continue
			}
			lRad := beta * math.Sqrt(d2) / 2
			c1 := pos[u].Scale(1 - beta/2).Add(pos[v].Scale(beta / 2))
			c2 := pos[u].Scale(beta / 2).Add(pos[v].Scale(1 - beta/2))
			inside := false
			for w := 0; w < n; w++ {
				if w == u || w == v {
					continue
				}
				if pos[w].Dist(c1) < lRad && pos[w].Dist(c2) < lRad {
					inside = true
					break
				}
			}
			if !inside {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func naiveMinMaxRadius(pos []geom.Point, r float64) (*graph.Graph, []float64) {
	n := len(pos)
	gr := graph.New(n)
	r2 := r * r
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if pos[u].Dist2(pos[v]) <= r2*(1+1e-12) {
				gr.AddEdge(u, v)
			}
		}
	}
	mst := graph.MST(gr, graph.EuclideanWeight(pos))
	radii := make([]float64, n)
	for u := 0; u < n; u++ {
		radii[u] = graph.NodeRadius(mst, pos, u)
	}
	out := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d := pos[u].Dist(pos[v])
			if d <= radii[u]*(1+1e-12) && d <= radii[v]*(1+1e-12) {
				out.AddEdge(u, v)
			}
		}
	}
	return out, radii
}

func sameGraph(t *testing.T, label string, want, got *graph.Graph) {
	t.Helper()
	we, ge := want.Edges(), got.Edges()
	if len(we) != len(ge) {
		t.Fatalf("%s: edge counts diverge: naive %d, grid %d", label, len(we), len(ge))
	}
	for i := range we {
		if we[i] != ge[i] {
			t.Fatalf("%s: edge %d diverges: naive %v, grid %v", label, i, we[i], ge[i])
		}
	}
}

// TestGridMatchesNaiveConstructions asserts every grid-accelerated
// baseline reproduces its naive reference edge-for-edge across
// densities, including a tie-heavy lattice placement.
func TestGridMatchesNaiveConstructions(t *testing.T) {
	r := workload.PaperRadius
	for _, tc := range []struct {
		name string
		pos  []geom.Point
	}{
		{"sparse", workload.Uniform(workload.Rand(21), 60, 6000, 6000)},
		{"paper-density", workload.Uniform(workload.Rand(22), 100, 1500, 1500)},
		{"dense", workload.Uniform(workload.Rand(23), 120, 700, 700)},
		{"clustered", workload.Clustered(workload.Rand(24), 100, 4, 200, 3000, 3000)},
		{"lattice-ties", workload.Grid(workload.Rand(25), 64, 0, 1600, 1600)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ix := NewIndex(tc.pos, r)
			sameGraph(t, "rng", naiveRNG(tc.pos, r), ix.RNG())
			sameGraph(t, "gabriel", naiveGabriel(tc.pos, r), ix.Gabriel())
			yao, err := ix.Yao(6)
			if err != nil {
				t.Fatal(err)
			}
			sameGraph(t, "yao6", naiveYao(tc.pos, r, 6).SymmetricClosure(), yao.SymmetricClosure())
			for _, beta := range []float64{1, 1.5, 2} {
				bs, err := ix.BetaSkeleton(beta)
				if err != nil {
					t.Fatal(err)
				}
				sameGraph(t, "beta-skeleton", naiveBetaSkeleton(tc.pos, r, beta), bs)
			}
			wantG, wantRadii := naiveMinMaxRadius(tc.pos, r)
			gotG, gotRadii := ix.MinMaxRadius()
			sameGraph(t, "minmax-radius", wantG, gotG)
			for i := range wantRadii {
				if wantRadii[i] != gotRadii[i] {
					t.Fatalf("minmax radii diverge at %d: naive %v, grid %v", i, wantRadii[i], gotRadii[i])
				}
			}
			naiveGR := graph.New(len(tc.pos))
			for u := 0; u < len(tc.pos); u++ {
				for v := u + 1; v < len(tc.pos); v++ {
					if tc.pos[u].Dist2(tc.pos[v]) <= r*r*(1+1e-12) {
						naiveGR.AddEdge(u, v)
					}
				}
			}
			sameGraph(t, "max-power", naiveGR, ix.MaxPowerGraph())
		})
	}
}
