// Package baseline implements the position-based topology-control
// comparators the paper's related-work section cites: the relative
// neighborhood graph (Toussaint [15]), the Gabriel graph ([5]), the
// Yao/θ-graph ([3,7] — the position-based cousin of the cone idea), and
// the minimum-maximum-radius assignment in the spirit of Ramanathan &
// Rosales-Hain [12]. All constructions are restricted to the
// maximum-power graph G_R: only pairs within radius r are considered.
//
// Unlike CBTC, every baseline here requires exact position information —
// reproducing the paper's argument that CBTC achieves comparable
// topologies from directional measurements alone.
//
// Every construction is grid-accelerated: an Index built once over the
// placement answers the "nodes within r of p" queries that dominate both
// the pair enumeration and the witness scans, so the baselines scale the
// same way the CBTC oracle does. The package-level functions build a
// throwaway Index; callers constructing several baselines over one
// placement (CompareBaselines) should build the Index once and reuse it.
package baseline

import (
	"fmt"
	"math"

	"cbtc/internal/geom"
	"cbtc/internal/graph"
	"cbtc/internal/radio"
	"cbtc/internal/spatial"
)

// Index is a reusable spatial accelerator for one placement and radius:
// every baseline construction over the same placement shares the one
// grid. It is safe for concurrent use — all methods are read-only over
// the underlying grid.
type Index struct {
	pos  []geom.Point
	r    float64
	grid *spatial.Grid
	// prop is the propagation model the index answers link questions
	// with. linked records whether it carries per-link state (shadowing):
	// when false, the pure squared-distance admission check — byte-for-
	// byte the historical predicate — is used instead of a per-pair
	// interface dispatch.
	prop   radio.Propagation
	linked bool
}

// NewIndex builds the shared accelerator for the placement with
// maximum-power radius r under the pure distance predicate (equivalent
// to a power-law model with maximum radius r).
func NewIndex(pos []geom.Point, r float64) *Index {
	return &Index{pos: pos, r: r, grid: spatial.New(pos, r), prop: radio.Default(r)}
}

// NewPropagationIndex builds the shared accelerator for the placement
// under an arbitrary propagation model: the grid is sized to the model's
// per-link radius bound and every construction's admission check defers
// to the model's per-link range predicate. For a pure radio.Model this
// is identical to NewIndex(pos, m.MaxRadius).
func NewPropagationIndex(pos []geom.Point, p radio.Propagation) *Index {
	r := p.MaxLinkRadius()
	return &Index{pos: pos, r: r, grid: spatial.New(pos, r), prop: p, linked: !p.DistancePure()}
}

// inRange reports whether the pair (u,v) at squared distance d2 is a
// G_R link under the index's propagation model. Pure models keep the
// historical squared-distance comparison; link models take the exact
// per-link predicate on the candidates the slack-widened grid query
// returned.
func (ix *Index) inRange(u, v int, d2 float64) bool {
	if !ix.linked {
		return d2 <= ix.r*ix.r*(1+1e-12)
	}
	return ix.prop.LinkInRange(u, v, math.Sqrt(d2))
}

// within returns the ids within radius rad of p in ascending order — a
// tight superset query (widened by spatial.QuerySlack) whose results the
// callers re-check with their construction's exact predicate, so edge
// sets are identical to a naive full scan.
func (ix *Index) within(p geom.Point, rad float64) []int {
	return ix.grid.Within(p, rad*(1+spatial.QuerySlack))
}

// MaxPowerGraph returns G_R over the index's placement — every pair at
// distance ≤ r — for callers that want the ground truth from the same
// shared accelerator. The grid returns candidates ascending, so the
// per-node half rows feed the packed arena bulk constructor directly.
func (ix *Index) MaxPowerGraph() *graph.Graph {
	n := len(ix.pos)
	rows := make([][]int32, n)
	for u := 0; u < n; u++ {
		var row []int32
		for _, v := range ix.within(ix.pos[u], ix.r) {
			if v > u && ix.inRange(u, v, ix.pos[u].Dist2(ix.pos[v])) {
				row = append(row, int32(v))
			}
		}
		rows[u] = row
	}
	return graph.NewFromHalfRows(rows)
}

// RNG returns the relative neighborhood graph over G_R: the edge {u,v}
// (d(u,v) ≤ r) survives iff no witness w is strictly closer to both
// endpoints than they are to each other. The RNG contains the Euclidean
// MST of every component, so it preserves G_R's connectivity. Witnesses
// for {u,v} are strictly within d(u,v) of u, so the witness scan is a
// radius-d(u,v) query instead of a full placement pass.
func (ix *Index) RNG() *graph.Graph {
	n := len(ix.pos)
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for _, v := range ix.within(ix.pos[u], ix.r) {
			if v <= u {
				continue
			}
			d2 := ix.pos[u].Dist2(ix.pos[v])
			if !ix.inRange(u, v, d2) {
				continue
			}
			witness := false
			for _, w := range ix.within(ix.pos[u], math.Sqrt(d2)) {
				if w == u || w == v {
					continue
				}
				if ix.pos[w].Dist2(ix.pos[u]) < d2 && ix.pos[w].Dist2(ix.pos[v]) < d2 {
					witness = true
					break
				}
			}
			if !witness {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Gabriel returns the Gabriel graph over G_R: the edge {u,v} survives
// iff no other node lies strictly inside the circle having uv as its
// diameter. RNG ⊆ Gabriel ⊆ G_R. The blocking circle has radius
// d(u,v)/2, so the witness scan is a radius query around the midpoint.
func (ix *Index) Gabriel() *graph.Graph {
	n := len(ix.pos)
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for _, v := range ix.within(ix.pos[u], ix.r) {
			if v <= u {
				continue
			}
			d2 := ix.pos[u].Dist2(ix.pos[v])
			if !ix.inRange(u, v, d2) {
				continue
			}
			center := ix.pos[u].Midpoint(ix.pos[v])
			rad2 := d2 / 4
			inside := false
			for _, w := range ix.within(center, math.Sqrt(rad2)) {
				if w == u || w == v {
					continue
				}
				if ix.pos[w].Dist2(center) < rad2 {
					inside = true
					break
				}
			}
			if !inside {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Yao returns the Yao (θ-) digraph over G_R with k sectors: each node
// keeps, in each of k equal angular sectors, a directed edge to its
// nearest in-range neighbor (ties broken by index). For k ≥ 6 (sector
// angle ≤ π/3) the symmetric closure preserves G_R's connectivity — the
// positional analogue of CBTC's cone condition.
func (ix *Index) Yao(k int) (*graph.Digraph, error) {
	if k < 1 {
		return nil, fmt.Errorf("baseline: Yao needs k ≥ 1 sectors, got %d", k)
	}
	n := len(ix.pos)
	d := graph.NewDigraph(n)
	sector := geom.TwoPi / float64(k)
	best := make([]int, k)
	bestD2 := make([]float64, k)
	for u := 0; u < n; u++ {
		for s := 0; s < k; s++ {
			best[s] = -1
			bestD2[s] = math.Inf(1)
		}
		for _, v := range ix.within(ix.pos[u], ix.r) {
			if v == u {
				continue
			}
			d2 := ix.pos[u].Dist2(ix.pos[v])
			if !ix.inRange(u, v, d2) {
				continue
			}
			s := int(ix.pos[u].Bearing(ix.pos[v]) / sector)
			if s >= k { // bearing can round to exactly 2π
				s = k - 1
			}
			if d2 < bestD2[s] || (d2 == bestD2[s] && v < best[s]) {
				bestD2[s] = d2
				best[s] = v
			}
		}
		for s := 0; s < k; s++ {
			if best[s] >= 0 {
				d.AddArc(u, best[s])
			}
		}
	}
	return d, nil
}

// YaoSymmetric returns the symmetric closure of the Yao digraph.
func (ix *Index) YaoSymmetric(k int) (*graph.Graph, error) {
	d, err := ix.Yao(k)
	if err != nil {
		return nil, err
	}
	return d.SymmetricClosure(), nil
}

// BetaSkeleton returns the lune-based β-skeleton over G_R for β ≥ 1 —
// the "G_β graphs" family the paper cites alongside the RNG: the edge
// {u,v} survives iff no other node lies strictly inside the β-lune, the
// intersection of the two disks of radius β·d(u,v)/2 centered at the
// points (1-β/2)·u + (β/2)·v and (β/2)·u + (1-β/2)·v. β = 1 is the
// Gabriel graph; β = 2 is the relative neighborhood graph; the family
// is edge-monotone decreasing in β. Lune members lie within the first
// disk, so one radius query around its center bounds the witness scan.
func (ix *Index) BetaSkeleton(beta float64) (*graph.Graph, error) {
	if beta < 1 {
		return nil, fmt.Errorf("baseline: lune-based skeleton needs β ≥ 1, got %v", beta)
	}
	n := len(ix.pos)
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for _, v := range ix.within(ix.pos[u], ix.r) {
			if v <= u {
				continue
			}
			d2 := ix.pos[u].Dist2(ix.pos[v])
			if !ix.inRange(u, v, d2) {
				continue
			}
			lRad := beta * math.Sqrt(d2) / 2
			c1 := ix.pos[u].Scale(1 - beta/2).Add(ix.pos[v].Scale(beta / 2))
			c2 := ix.pos[u].Scale(beta / 2).Add(ix.pos[v].Scale(1 - beta/2))
			inside := false
			for _, w := range ix.within(c1, lRad) {
				if w == u || w == v {
					continue
				}
				if ix.pos[w].Dist(c1) < lRad && ix.pos[w].Dist(c2) < lRad {
					inside = true
					break
				}
			}
			if !inside {
				g.AddEdge(u, v)
			}
		}
	}
	return g, nil
}

// MinMaxRadius assigns each node the smallest radius that keeps the
// network connected under a common spanning structure — the objective of
// Ramanathan & Rosales-Hain's centralized algorithm. Each node's radius
// is its longest incident edge in the Euclidean minimum spanning forest
// of G_R; the returned graph contains every pair mutually within their
// assigned radii (which always includes the forest itself).
func (ix *Index) MinMaxRadius() (*graph.Graph, []float64) {
	n := len(ix.pos)
	gr := ix.MaxPowerGraph()
	mst := graph.MST(gr, graph.EuclideanWeight(ix.pos))
	radii := make([]float64, n)
	for u := 0; u < n; u++ {
		radii[u] = graph.NodeRadius(mst, ix.pos, u)
	}
	out := graph.New(n)
	for u := 0; u < n; u++ {
		ru := radii[u] * (1 + 1e-12)
		for _, v := range ix.within(ix.pos[u], ru) {
			if v <= u {
				continue
			}
			d := ix.pos[u].Dist(ix.pos[v])
			if d <= radii[u]*(1+1e-12) && d <= radii[v]*(1+1e-12) {
				out.AddEdge(u, v)
			}
		}
	}
	return out, radii
}

// EnergyMST returns the minimum spanning forest of G_R under per-link
// transmission energy — the backbone of the energy-balanced
// reconfiguration baseline. With residual nil the weight of {u,v} is the
// power the propagation model requires to establish the link, so the
// forest minimizes total transmit energy. With residual batteries given
// (one per node, in energy units), each link's energy cost is divided by
// the smaller of its endpoints' residuals: links leaning on nearly-drained
// nodes become expensive and the forest routes around them, spreading
// drain across the population. A fully-depleted endpoint cannot transmit
// at all: its links are dropped before the spanning pass, so dead nodes
// come out isolated and the forest reroutes around them.
func (ix *Index) EnergyMST(residual []float64) *graph.Graph {
	gr := ix.MaxPowerGraph()
	if residual != nil {
		pruned := graph.New(gr.Len())
		for u := 0; u < gr.Len(); u++ {
			if residual[u] <= 0 {
				continue
			}
			for _, v := range gr.Neighbors(u) {
				if u < v && residual[v] > 0 {
					pruned.AddEdge(u, v)
				}
			}
		}
		gr = pruned
	}
	w := func(u, v int) float64 {
		d := ix.pos[u].Dist(ix.pos[v])
		cost := ix.prop.LinkPower(u, v, d)
		if residual != nil {
			cost /= math.Min(residual[u], residual[v])
		}
		return cost
	}
	return graph.MST(gr, w)
}

// EnergyRadii assigns each node its longest incident edge in the given
// spanning structure — the per-node broadcast radius that realizes it.
func (ix *Index) EnergyRadii(forest *graph.Graph) []float64 {
	radii := make([]float64, len(ix.pos))
	for u := range ix.pos {
		radii[u] = graph.NodeRadius(forest, ix.pos, u)
	}
	return radii
}

// RNG builds the relative neighborhood graph with a throwaway Index.
func RNG(pos []geom.Point, r float64) *graph.Graph {
	return NewIndex(pos, r).RNG()
}

// Gabriel builds the Gabriel graph with a throwaway Index.
func Gabriel(pos []geom.Point, r float64) *graph.Graph {
	return NewIndex(pos, r).Gabriel()
}

// Yao builds the Yao digraph with a throwaway Index.
func Yao(pos []geom.Point, r float64, k int) (*graph.Digraph, error) {
	return NewIndex(pos, r).Yao(k)
}

// YaoSymmetric builds the symmetric Yao graph with a throwaway Index.
func YaoSymmetric(pos []geom.Point, r float64, k int) (*graph.Graph, error) {
	return NewIndex(pos, r).YaoSymmetric(k)
}

// BetaSkeleton builds the β-skeleton with a throwaway Index.
func BetaSkeleton(pos []geom.Point, r, beta float64) (*graph.Graph, error) {
	return NewIndex(pos, r).BetaSkeleton(beta)
}

// MinMaxRadius builds the min-max-radius assignment with a throwaway
// Index.
func MinMaxRadius(pos []geom.Point, r float64) (*graph.Graph, []float64) {
	return NewIndex(pos, r).MinMaxRadius()
}
