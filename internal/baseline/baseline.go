// Package baseline implements the position-based topology-control
// comparators the paper's related-work section cites: the relative
// neighborhood graph (Toussaint [15]), the Gabriel graph ([5]), the
// Yao/θ-graph ([3,7] — the position-based cousin of the cone idea), and
// the minimum-maximum-radius assignment in the spirit of Ramanathan &
// Rosales-Hain [12]. All constructions are restricted to the
// maximum-power graph G_R: only pairs within radius r are considered.
//
// Unlike CBTC, every baseline here requires exact position information —
// reproducing the paper's argument that CBTC achieves comparable
// topologies from directional measurements alone.
package baseline

import (
	"fmt"
	"math"

	"cbtc/internal/geom"
	"cbtc/internal/graph"
)

// RNG returns the relative neighborhood graph over G_R: the edge {u,v}
// (d(u,v) ≤ r) survives iff no witness w is strictly closer to both
// endpoints than they are to each other. The RNG contains the Euclidean
// MST of every component, so it preserves G_R's connectivity.
func RNG(pos []geom.Point, r float64) *graph.Graph {
	n := len(pos)
	g := graph.New(n)
	r2 := r * r
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d2 := pos[u].Dist2(pos[v])
			if d2 > r2*(1+1e-12) {
				continue
			}
			witness := false
			for w := 0; w < n; w++ {
				if w == u || w == v {
					continue
				}
				if pos[w].Dist2(pos[u]) < d2 && pos[w].Dist2(pos[v]) < d2 {
					witness = true
					break
				}
			}
			if !witness {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Gabriel returns the Gabriel graph over G_R: the edge {u,v} survives
// iff no other node lies strictly inside the circle having uv as its
// diameter. RNG ⊆ Gabriel ⊆ G_R.
func Gabriel(pos []geom.Point, r float64) *graph.Graph {
	n := len(pos)
	g := graph.New(n)
	r2 := r * r
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d2 := pos[u].Dist2(pos[v])
			if d2 > r2*(1+1e-12) {
				continue
			}
			center := pos[u].Midpoint(pos[v])
			rad2 := d2 / 4
			inside := false
			for w := 0; w < n; w++ {
				if w == u || w == v {
					continue
				}
				if pos[w].Dist2(center) < rad2 {
					inside = true
					break
				}
			}
			if !inside {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// Yao returns the Yao (θ-) digraph over G_R with k sectors: each node
// keeps, in each of k equal angular sectors, a directed edge to its
// nearest in-range neighbor (ties broken by index). For k ≥ 6 (sector
// angle ≤ π/3) the symmetric closure preserves G_R's connectivity — the
// positional analogue of CBTC's cone condition.
func Yao(pos []geom.Point, r float64, k int) (*graph.Digraph, error) {
	if k < 1 {
		return nil, fmt.Errorf("baseline: Yao needs k ≥ 1 sectors, got %d", k)
	}
	n := len(pos)
	d := graph.NewDigraph(n)
	sector := geom.TwoPi / float64(k)
	r2 := r * r
	best := make([]int, k)
	bestD2 := make([]float64, k)
	for u := 0; u < n; u++ {
		for s := 0; s < k; s++ {
			best[s] = -1
			bestD2[s] = math.Inf(1)
		}
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			d2 := pos[u].Dist2(pos[v])
			if d2 > r2*(1+1e-12) {
				continue
			}
			s := int(pos[u].Bearing(pos[v]) / sector)
			if s >= k { // bearing can round to exactly 2π
				s = k - 1
			}
			if d2 < bestD2[s] || (d2 == bestD2[s] && v < best[s]) {
				bestD2[s] = d2
				best[s] = v
			}
		}
		for s := 0; s < k; s++ {
			if best[s] >= 0 {
				d.AddArc(u, best[s])
			}
		}
	}
	return d, nil
}

// YaoSymmetric returns the symmetric closure of the Yao digraph.
func YaoSymmetric(pos []geom.Point, r float64, k int) (*graph.Graph, error) {
	d, err := Yao(pos, r, k)
	if err != nil {
		return nil, err
	}
	return d.SymmetricClosure(), nil
}

// BetaSkeleton returns the lune-based β-skeleton over G_R for β ≥ 1 —
// the "G_β graphs" family the paper cites alongside the RNG: the edge
// {u,v} survives iff no other node lies strictly inside the β-lune, the
// intersection of the two disks of radius β·d(u,v)/2 centered at the
// points (1-β/2)·u + (β/2)·v and (β/2)·u + (1-β/2)·v. β = 1 is the
// Gabriel graph; β = 2 is the relative neighborhood graph; the family
// is edge-monotone decreasing in β.
func BetaSkeleton(pos []geom.Point, r, beta float64) (*graph.Graph, error) {
	if beta < 1 {
		return nil, fmt.Errorf("baseline: lune-based skeleton needs β ≥ 1, got %v", beta)
	}
	n := len(pos)
	g := graph.New(n)
	r2 := r * r
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d2 := pos[u].Dist2(pos[v])
			if d2 > r2*(1+1e-12) {
				continue
			}
			lRad := beta * math.Sqrt(d2) / 2
			c1 := pos[u].Scale(1 - beta/2).Add(pos[v].Scale(beta / 2))
			c2 := pos[u].Scale(beta / 2).Add(pos[v].Scale(1 - beta/2))
			inside := false
			for w := 0; w < n; w++ {
				if w == u || w == v {
					continue
				}
				if pos[w].Dist(c1) < lRad && pos[w].Dist(c2) < lRad {
					inside = true
					break
				}
			}
			if !inside {
				g.AddEdge(u, v)
			}
		}
	}
	return g, nil
}

// MinMaxRadius assigns each node the smallest radius that keeps the
// network connected under a common spanning structure — the objective of
// Ramanathan & Rosales-Hain's centralized algorithm. Each node's radius
// is its longest incident edge in the Euclidean minimum spanning forest
// of G_R; the returned graph contains every pair mutually within their
// assigned radii (which always includes the forest itself).
func MinMaxRadius(pos []geom.Point, r float64) (*graph.Graph, []float64) {
	n := len(pos)
	gr := graph.New(n)
	r2 := r * r
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if pos[u].Dist2(pos[v]) <= r2*(1+1e-12) {
				gr.AddEdge(u, v)
			}
		}
	}
	mst := graph.MST(gr, graph.EuclideanWeight(pos))
	radii := make([]float64, n)
	for u := 0; u < n; u++ {
		radii[u] = graph.NodeRadius(mst, pos, u)
	}
	out := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			d := pos[u].Dist(pos[v])
			if d <= radii[u]*(1+1e-12) && d <= radii[v]*(1+1e-12) {
				out.AddEdge(u, v)
			}
		}
	}
	return out, radii
}
