package radio

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewModelValidation(t *testing.T) {
	tests := []struct {
		name                       string
		exponent, maxRadius, rloss float64
		wantErr                    bool
	}{
		{"default ok", 2, 500, 1, false},
		{"urban ok", 4, 250, 2.5, false},
		{"exponent below one", 0.5, 500, 1, true},
		{"nan exponent", math.NaN(), 500, 1, true},
		{"zero radius", 2, 0, 1, true},
		{"negative radius", 2, -10, 1, true},
		{"zero loss", 2, 500, 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewModel(tt.exponent, tt.maxRadius, tt.rloss)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewModel() error = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil && !errors.Is(err, ErrBadModel) {
				t.Errorf("error %v must wrap ErrBadModel", err)
			}
		})
	}
}

func TestPowerRangeRoundTrip(t *testing.T) {
	m := Default(500)
	f := func(d float64) bool {
		d = math.Mod(math.Abs(d), 500)
		if d == 0 {
			return m.PowerFor(0) == 0 && m.RangeFor(0) == 0
		}
		return math.Abs(m.RangeFor(m.PowerFor(d))-d) < 1e-9*d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxPower(t *testing.T) {
	m := Default(500)
	if got, want := m.MaxPower(), 250000.0; math.Abs(got-want) > 1e-6 {
		t.Errorf("MaxPower = %v, want %v", got, want)
	}
	u, err := NewModel(4, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := u.MaxPower(), 3*math.Pow(10, 4); math.Abs(got-want) > 1e-6 {
		t.Errorf("MaxPower = %v, want %v", got, want)
	}
}

func TestReaches(t *testing.T) {
	m := Default(500)
	p := m.MaxPower()
	tests := []struct {
		name string
		tx   float64
		d    float64
		want bool
	}{
		{"max power reaches R", p, 500, true},
		{"max power misses beyond R", p, 500.001, false},
		{"half radius needs quarter power", p / 4, 250, true},
		{"insufficient power", p/4 - 1, 250, false},
		{"zero distance always", 0.001, 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := m.Reaches(tt.tx, tt.d); got != tt.want {
				t.Errorf("Reaches(%v, %v) = %v, want %v", tt.tx, tt.d, got, tt.want)
			}
		})
	}
}

// NeededPower must recover p(d) exactly from (tx, rx), the assumption the
// paper's Ack mechanism relies on.
func TestNeededPowerRecoversTruth(t *testing.T) {
	for _, exp := range []float64{2, 3, 4} {
		m, err := NewModel(exp, 500, 1.7)
		if err != nil {
			t.Fatal(err)
		}
		f := func(dRaw, txRaw float64) bool {
			d := math.Mod(math.Abs(dRaw), 499) + 0.5
			tx := m.PowerFor(d) * (1 + math.Mod(math.Abs(txRaw), 4)) // any power ≥ p(d)
			rx := m.ReceivedPower(tx, d)
			got := m.NeededPower(tx, rx)
			want := m.PowerFor(d)
			return math.Abs(got-want) <= 1e-9*want
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("exponent %v: %v", exp, err)
		}
	}
}

func TestEstimateDistance(t *testing.T) {
	m := Default(500)
	f := func(dRaw float64) bool {
		d := math.Mod(math.Abs(dRaw), 499) + 0.5
		tx := m.MaxPower()
		rx := m.ReceivedPower(tx, d)
		return math.Abs(m.EstimateDistance(tx, rx)-d) < 1e-9*d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNeededPowerZeroRx(t *testing.T) {
	m := Default(500)
	if got := m.NeededPower(100, 0); !math.IsInf(got, 1) {
		t.Errorf("NeededPower with rx=0 = %v, want +Inf", got)
	}
}

// Power is strictly monotone in distance: farther nodes need more power.
func TestPowerMonotoneProperty(t *testing.T) {
	m := Default(500)
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		d1 := rng.Float64() * 500
		d2 := d1 + rng.Float64()*100 + 1e-6
		return m.PowerFor(d1) < m.PowerFor(d2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
