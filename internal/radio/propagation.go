package radio

import (
	"fmt"
	"math"
)

// reachTol is the relative tolerance of the reachability predicates: a
// link whose needed power equals the available power up to one part in
// 10¹² is considered established. It matches Model.Reaches, so the
// power-law model routed through the Propagation interface is
// bit-identical to the historical hardcoded paths.
const reachTol = 1e-12

// Propagation is the pluggable propagation authority: the single
// interface through which the oracle's power tags, the discrete-event
// simulator's delivery decisions, the baselines' maximum-power graph and
// Session repair all consult the radio substrate.
//
// The paper's uniform power law (Model) is the canonical implementation;
// LogDistance adds deterministic per-link log-normal-style shadowing in
// the spirit of the non-uniform path-loss literature (Sethu & Gerety).
// Implementations must be deterministic pure functions of (u, v, d) — the
// whole reproducibility story (worker-count invariance, checkpoint
// byte-identity) rests on it — and symmetric: LinkPower(u, v, d) ==
// LinkPower(v, u, d).
//
// The geometry/propagation split that keeps the spatial grid usable is
// encoded in the method pairs: MaxLinkRadius and RangeBound are
// conservative distance bounds that drive slack-widened grid queries,
// after which the per-link predicates (LinkInRange, LinkReaches) decide
// exactly.
type Propagation interface {
	// Validate checks the model parameters.
	Validate() error
	// Nominal returns the underlying power-law model: the hardware's
	// nominal power curve before per-link effects. Maximum transmit
	// power, power schedules and distance estimation all derive from it.
	Nominal() Model
	// MaxPower returns P, the common maximum transmission power
	// (identical to Nominal().MaxPower()).
	MaxPower() float64
	// MaxLinkRadius returns a distance no in-range link can exceed: the
	// radius spatial grids are built with. For the pure power law it is
	// exactly R; shadowed models widen it by the best-case gain.
	MaxLinkRadius() float64
	// RangeBound returns a distance no link reachable at transmission
	// power tx can exceed — the per-transmit analogue of MaxLinkRadius.
	RangeBound(tx float64) float64
	// DistancePure reports whether link power is a function of distance
	// alone (no per-link term). Pure models admit the historical
	// distance-ordered oracle path unchanged; impure models take the
	// need-ordered path with per-link re-checks.
	DistancePure() bool
	// LinkPower returns p_{uv}(d), the minimum transmission power that
	// establishes the u→v link at distance d.
	LinkPower(u, v int, d float64) float64
	// LinkInRange reports whether u and v at distance d can communicate
	// at maximum power — the edge predicate of the maximum-power graph
	// G_R.
	LinkInRange(u, v int, d float64) bool
	// LinkReaches reports whether a transmission by u with power tx is
	// decodable by v at distance d.
	LinkReaches(u, v int, tx, d float64) bool
	// LinkRxPower returns the reception power at v of a message u
	// transmitted with power tx over distance d.
	LinkRxPower(u, v int, tx, d float64) float64
}

// Model implements Propagation with link power depending on distance
// alone: the paper's uniform power law.

// Nominal returns the model itself — the power law has no per-link
// effects to strip.
func (m Model) Nominal() Model { return m }

// MaxLinkRadius returns R: under the pure power law no link longer than
// the maximum radius exists.
func (m Model) MaxLinkRadius() float64 { return m.MaxRadius }

// RangeBound returns RangeFor(tx): the power law's reach bound is exact.
func (m Model) RangeBound(tx float64) float64 { return m.RangeFor(tx) }

// DistancePure reports that link power is a function of distance alone.
func (m Model) DistancePure() bool { return true }

// LinkPower returns p(d) for every link.
func (m Model) LinkPower(_, _ int, d float64) float64 { return m.PowerFor(d) }

// LinkInRange reports d ≤ R up to the boundary tolerance.
func (m Model) LinkInRange(_, _ int, d float64) bool {
	return d <= m.MaxRadius*(1+reachTol)
}

// LinkReaches applies the distance-only Reaches predicate to every link.
func (m Model) LinkReaches(_, _ int, tx, d float64) bool { return m.Reaches(tx, d) }

// LinkRxPower applies the distance-only attenuation to every link.
func (m Model) LinkRxPower(_, _ int, tx, d float64) float64 { return m.ReceivedPower(tx, d) }

// LogDistance is a deterministic log-distance path-loss model with
// bounded per-link shadowing: link (u, v) at distance d needs power
//
//	p_{uv}(d) = p(d) · 10^(S(u,v)/10)
//
// where p is the nominal power law of Base and S(u,v) ∈ [−SigmaDB,
// +SigmaDB] is a shadowing term in decibels hashed from (Seed, u, v).
// Unlike the i.i.d. log-normal fading of measurement models, S is a
// deterministic symmetric pure function of the node pair, so every layer
// — oracle, repair, simulator, baseline — sees the same world at any
// worker count, and a checkpointed session restores onto identical link
// physics. The zero value is not usable; construct with NewLogDistance.
type LogDistance struct {
	// Base is the nominal power-law model; its MaxRadius R and MaxPower
	// P = p(R) remain the hardware's limits.
	Base Model
	// SigmaDB bounds the per-link shadowing magnitude in decibels.
	// SigmaDB = 0 degenerates to Base (though via the impure code paths).
	SigmaDB float64
	// Seed selects the shadowing realization.
	Seed uint64
}

// NewLogDistance validates and returns a shadowed log-distance model.
func NewLogDistance(base Model, sigmaDB float64, seed uint64) (LogDistance, error) {
	l := LogDistance{Base: base, SigmaDB: sigmaDB, Seed: seed}
	if err := l.Validate(); err != nil {
		return LogDistance{}, err
	}
	return l, nil
}

// Validate checks the model parameters.
func (l LogDistance) Validate() error {
	if err := l.Base.Validate(); err != nil {
		return err
	}
	if math.IsNaN(l.SigmaDB) || math.IsInf(l.SigmaDB, 0) || l.SigmaDB < 0 {
		return fmt.Errorf("%w: shadowing sigma %v dB must be finite and ≥ 0", ErrBadModel, l.SigmaDB)
	}
	return nil
}

// Nominal returns the underlying power-law model.
func (l LogDistance) Nominal() Model { return l.Base }

// MaxPower returns the nominal maximum transmission power: shadowing
// perturbs per-link attenuation, not the hardware's power budget.
func (l LogDistance) MaxPower() float64 { return l.Base.MaxPower() }

// gainBound is the best-case distance stretch 10^(σ/(10n)): a link with
// the most favorable shadowing reaches gainBound× the nominal range.
func (l LogDistance) gainBound() float64 {
	return math.Pow(10, l.SigmaDB/(10*l.Base.Exponent))
}

// MaxLinkRadius returns R · 10^(σ/(10n)), the longest distance any link
// can bridge at maximum power under the most favorable shadowing.
func (l LogDistance) MaxLinkRadius() float64 {
	return l.Base.MaxRadius * l.gainBound()
}

// RangeBound widens the nominal range for tx by the best-case gain.
func (l LogDistance) RangeBound(tx float64) float64 {
	return l.Base.RangeFor(tx) * l.gainBound()
}

// DistancePure reports that link power depends on the node pair, not
// distance alone.
func (l LogDistance) DistancePure() bool { return false }

// ShadowDB returns the shadowing term S(u,v) ∈ [−SigmaDB, +SigmaDB] in
// decibels: a symmetric deterministic hash of (Seed, u, v).
func (l LogDistance) ShadowDB(u, v int) float64 {
	if l.SigmaDB == 0 {
		return 0
	}
	lo, hi := uint64(uint32(u)), uint64(uint32(v))
	if lo > hi {
		lo, hi = hi, lo
	}
	z := mix64(l.Seed + (lo+1)*0x9e3779b97f4a7c15)
	z = mix64(z + (hi+1)*0x9e3779b97f4a7c15)
	// Top 53 bits → uniform in [0,1), mapped to [−σ, +σ].
	f := float64(z>>11) / (1 << 53)
	return (2*f - 1) * l.SigmaDB
}

// linkGain returns the power factor 10^(S(u,v)/10).
func (l LogDistance) linkGain(u, v int) float64 {
	if l.SigmaDB == 0 {
		return 1
	}
	return math.Pow(10, l.ShadowDB(u, v)/10)
}

// LinkPower returns p(d) · 10^(S(u,v)/10).
func (l LogDistance) LinkPower(u, v int, d float64) float64 {
	return l.Base.PowerFor(d) * l.linkGain(u, v)
}

// LinkInRange reports whether the link is establishable at maximum
// power: the G_R edge predicate under shadowing.
func (l LogDistance) LinkInRange(u, v int, d float64) bool {
	return l.LinkReaches(u, v, l.Base.MaxPower(), d)
}

// LinkReaches reports tx ≥ p_{uv}(d) up to the boundary tolerance.
func (l LogDistance) LinkReaches(u, v int, tx, d float64) bool {
	return tx >= l.LinkPower(u, v, d)*(1-reachTol)
}

// LinkRxPower returns tx divided by the shadowed attenuation. A zero
// distance is lossless, as in Model.Attenuation.
func (l LogDistance) LinkRxPower(u, v int, tx, d float64) float64 {
	return tx / (l.Base.Attenuation(d) * l.linkGain(u, v))
}

// mix64 is a splitmix64 finalization round — the same avalanche used for
// per-stream seed decorrelation elsewhere in the repo.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
