// Package radio models the wireless propagation substrate assumed by the
// paper: a power function p(d) giving the minimum transmission power
// needed to establish a link at distance d, a common maximum power P with
// p(R) = P, and the ability to estimate the needed power for a link from
// the transmission and reception powers of a received message (§2 of the
// paper calls this assumption "reasonable in practice").
//
// The model normalizes receiver sensitivity to 1: a message transmitted
// with power tx is received at distance d with power tx/attenuation(d),
// and is decodable iff that is at least 1, i.e. iff tx ≥ p(d).
package radio

import (
	"errors"
	"fmt"
	"math"
)

// Common path-loss exponents (Rappaport, Wireless Communications).
const (
	// FreeSpaceExponent is the free-space path-loss exponent n = 2.
	FreeSpaceExponent = 2.0
	// UrbanExponent is a typical urban-environment exponent n = 4.
	UrbanExponent = 4.0
)

// ErrBadModel reports an invalid radio model configuration.
var ErrBadModel = errors.New("radio: invalid model")

// Model is a deterministic path-loss radio model with transmission power
// p(d) = RefLoss · dⁿ and maximum communication radius R. The zero value
// is not usable; construct models with NewModel or Default.
type Model struct {
	// Exponent is the path-loss exponent n ≥ 1 (typically 2–4).
	Exponent float64
	// MaxRadius is R, the maximum distance at which two nodes can
	// communicate when transmitting with maximum power.
	MaxRadius float64
	// RefLoss is the proportionality constant of the power law. It scales
	// all powers uniformly and defaults to 1.
	RefLoss float64
}

// NewModel validates and returns a radio model.
func NewModel(exponent, maxRadius, refLoss float64) (Model, error) {
	m := Model{Exponent: exponent, MaxRadius: maxRadius, RefLoss: refLoss}
	if err := m.Validate(); err != nil {
		return Model{}, err
	}
	return m, nil
}

// Default returns the model used throughout the paper's evaluation:
// free-space exponent n = 2, maximum radius R, unit reference loss.
func Default(maxRadius float64) Model {
	return Model{Exponent: FreeSpaceExponent, MaxRadius: maxRadius, RefLoss: 1}
}

// Validate checks the model parameters.
func (m Model) Validate() error {
	switch {
	case math.IsNaN(m.Exponent) || m.Exponent < 1:
		return fmt.Errorf("%w: exponent %v must be ≥ 1", ErrBadModel, m.Exponent)
	case math.IsNaN(m.MaxRadius) || m.MaxRadius <= 0:
		return fmt.Errorf("%w: max radius %v must be > 0", ErrBadModel, m.MaxRadius)
	case math.IsNaN(m.RefLoss) || m.RefLoss <= 0:
		return fmt.Errorf("%w: reference loss %v must be > 0", ErrBadModel, m.RefLoss)
	}
	return nil
}

// PowerFor returns p(d), the minimum transmission power needed to reach a
// receiver at distance d. PowerFor(0) = 0.
func (m Model) PowerFor(d float64) float64 {
	if d <= 0 {
		return 0
	}
	return m.RefLoss * math.Pow(d, m.Exponent)
}

// RangeFor returns the maximum distance reachable with transmission
// power p (the inverse of PowerFor). RangeFor(0) = 0.
func (m Model) RangeFor(p float64) float64 {
	if p <= 0 {
		return 0
	}
	return math.Pow(p/m.RefLoss, 1/m.Exponent)
}

// MaxPower returns P = p(R), the common maximum transmission power.
func (m Model) MaxPower() float64 { return m.PowerFor(m.MaxRadius) }

// Attenuation returns the power division factor over distance d, so that
// rx = tx / Attenuation(d). Attenuation(d) = p(d) because receiver
// sensitivity is normalized to 1. Attenuation of a zero distance is 1
// (no loss).
func (m Model) Attenuation(d float64) float64 {
	if d <= 0 {
		return 1
	}
	return m.PowerFor(d)
}

// ReceivedPower returns the reception power of a message transmitted with
// power tx over distance d.
func (m Model) ReceivedPower(tx, d float64) float64 {
	return tx / m.Attenuation(d)
}

// Reaches reports whether a transmission with power tx is decodable at
// distance d (reception power at least the normalized sensitivity 1).
// A small relative tolerance keeps boundary links — the paper's
// constructions place nodes at distance exactly R — inside the graph.
func (m Model) Reaches(tx, d float64) bool {
	return tx >= m.PowerFor(d)*(1-1e-12)
}

// NeededPower estimates p(d(u,v)) from the transmission power tx a
// message was sent with and the reception power rx it arrived with.
// This is the estimate the paper assumes each node can perform (§2).
func (m Model) NeededPower(tx, rx float64) float64 {
	if rx <= 0 {
		return math.Inf(1)
	}
	return tx / rx
}

// EstimateDistance estimates the sender distance from the transmission
// and reception powers of a received message.
func (m Model) EstimateDistance(tx, rx float64) float64 {
	return m.RangeFor(m.NeededPower(tx, rx))
}
