package radio

import (
	"errors"
	"math"
	"testing"
)

func TestDoublingSchedule(t *testing.T) {
	steps, err := Schedule(1, 16, Doubling())
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 4, 8, 16}
	if len(steps) != len(want) {
		t.Fatalf("got %v, want %v", steps, want)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Errorf("step %d = %v, want %v", i, steps[i], want[i])
		}
	}
}

func TestScheduleCapsAtMax(t *testing.T) {
	steps, err := Schedule(3, 16, Doubling())
	if err != nil {
		t.Fatal(err)
	}
	// 3, 6, 12, then capped at 16.
	if got := steps[len(steps)-1]; got != 16 {
		t.Errorf("final step = %v, want exactly max power 16", got)
	}
	for i := 1; i < len(steps); i++ {
		if steps[i] <= steps[i-1] {
			t.Errorf("schedule not strictly increasing at %d: %v", i, steps)
		}
	}
}

func TestScheduleErrors(t *testing.T) {
	if _, err := Schedule(0, 16, Doubling()); !errors.Is(err, ErrBadSchedule) {
		t.Errorf("zero p0: err = %v, want ErrBadSchedule", err)
	}
	if _, err := Schedule(32, 16, Doubling()); !errors.Is(err, ErrBadSchedule) {
		t.Errorf("p0 > max: err = %v, want ErrBadSchedule", err)
	}
	stuck := Increase(func(p float64) float64 { return p })
	if _, err := Schedule(1, 16, stuck); !errors.Is(err, ErrBadSchedule) {
		t.Errorf("non-growing increase: err = %v, want ErrBadSchedule", err)
	}
}

func TestMultiplicative(t *testing.T) {
	inc, err := Multiplicative(1.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := inc(2); math.Abs(got-3) > 1e-12 {
		t.Errorf("inc(2) = %v, want 3", got)
	}
	if _, err := Multiplicative(1); !errors.Is(err, ErrBadSchedule) {
		t.Errorf("factor 1 must be rejected, got %v", err)
	}
	if _, err := Multiplicative(0.5); !errors.Is(err, ErrBadSchedule) {
		t.Errorf("factor < 1 must be rejected, got %v", err)
	}
}

func TestFineScheduleReachesMaxQuickly(t *testing.T) {
	inc, err := Multiplicative(1.05)
	if err != nil {
		t.Fatal(err)
	}
	m := Default(500)
	steps, err := Schedule(m.MaxPower()/1024, m.MaxPower(), inc)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 || steps[len(steps)-1] != m.MaxPower() {
		t.Fatalf("schedule must end exactly at max power, got %v steps", len(steps))
	}
	if len(steps) > 200 {
		t.Errorf("schedule unexpectedly long: %d steps", len(steps))
	}
}
