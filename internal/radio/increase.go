package radio

import (
	"errors"
	"fmt"
)

// ErrBadSchedule reports an invalid power-growth schedule.
var ErrBadSchedule = errors.New("radio: invalid power schedule")

// Increase is the paper's power-growth function: given the current
// broadcast power it returns the next, strictly larger one. The paper
// only requires that Increaseᵏ(p0) = P for sufficiently large k and
// suggests Increase(p) = 2p as the obvious choice.
type Increase func(p float64) float64

// Doubling returns the paper's suggested schedule Increase(p) = 2p.
func Doubling() Increase {
	return func(p float64) float64 { return 2 * p }
}

// Multiplicative returns Increase(p) = factor·p. Factors close to 1
// discover neighbors in nearly exact distance order at the cost of more
// growth rounds; the distributed executor uses this to approximate the
// analysis's minimal-power semantics.
func Multiplicative(factor float64) (Increase, error) {
	if factor <= 1 {
		return nil, fmt.Errorf("%w: factor %v must be > 1", ErrBadSchedule, factor)
	}
	return func(p float64) float64 { return factor * p }, nil
}

// Schedule enumerates the broadcast powers a node will use: p0,
// Increase(p0), ... capped at maxPower (the final entry is exactly
// maxPower). It returns an error if p0 is not in (0, maxPower] or the
// schedule would not terminate.
func Schedule(p0, maxPower float64, inc Increase) ([]float64, error) {
	if p0 <= 0 || p0 > maxPower {
		return nil, fmt.Errorf("%w: initial power %v not in (0, %v]", ErrBadSchedule, p0, maxPower)
	}
	var steps []float64
	p := p0
	for p < maxPower {
		steps = append(steps, p)
		next := inc(p)
		if next <= p {
			return nil, fmt.Errorf("%w: increase is not strictly growing at %v", ErrBadSchedule, p)
		}
		p = next
		if len(steps) > 10_000 {
			return nil, fmt.Errorf("%w: more than 10000 growth steps", ErrBadSchedule)
		}
	}
	steps = append(steps, maxPower)
	return steps, nil
}
