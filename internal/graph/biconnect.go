package graph

// ArticulationPoints returns the cut vertices of g: nodes whose removal
// increases the number of connected components. Topology-control papers
// care about them because a network without articulation points
// (biconnected) survives any single node failure — the robustness goal
// of Ramanathan & Rosales-Hain's biconnectivity augmentation.
func ArticulationPoints(g *Graph) []int {
	n := g.Len()
	disc := make([]int, n) // discovery times, 0 = unvisited
	low := make([]int, n)  // lowest discovery time reachable
	parent := make([]int, n)
	isArt := make([]bool, n)
	for i := range parent {
		parent[i] = -1
	}
	timer := 0

	// Iterative DFS to survive deep graphs without recursion limits. The
	// packed rows are stable while the graph is unmutated, so frames
	// borrow them directly instead of copying neighbor lists.
	type frame struct {
		u     int
		nbrs  []int32
		index int
	}
	for start := 0; start < n; start++ {
		if disc[start] != 0 {
			continue
		}
		timer++
		disc[start], low[start] = timer, timer
		stack := []frame{{u: start, nbrs: g.Row(start)}}
		rootChildren := 0
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.index < len(f.nbrs) {
				v := int(f.nbrs[f.index])
				f.index++
				switch {
				case disc[v] == 0:
					parent[v] = f.u
					if f.u == start {
						rootChildren++
					}
					timer++
					disc[v], low[v] = timer, timer
					stack = append(stack, frame{u: v, nbrs: g.Row(v)})
				case v != parent[f.u]:
					if disc[v] < low[f.u] {
						low[f.u] = disc[v]
					}
				}
				continue
			}
			// Post-order: propagate low to the parent.
			stack = stack[:len(stack)-1]
			if p := parent[f.u]; p != -1 {
				if low[f.u] < low[p] {
					low[p] = low[f.u]
				}
				if p != start && low[f.u] >= disc[p] {
					isArt[p] = true
				}
			}
		}
		if rootChildren > 1 {
			isArt[start] = true
		}
	}

	var out []int
	for u, a := range isArt {
		if a {
			out = append(out, u)
		}
	}
	return out
}

// IsBiconnected reports whether g is connected, has at least 3 nodes,
// and contains no articulation points: it survives any single node
// failure.
func IsBiconnected(g *Graph) bool {
	if g.Len() < 3 || !IsConnected(g) {
		return false
	}
	return len(ArticulationPoints(g)) == 0
}
