package graph

import (
	"errors"
	"math/rand/v2"
	"testing"
)

// randomGraph builds a random graph over n nodes with roughly density*n
// edges, exercising both arena-packed (bulk-built) and per-edge rows.
func randomGraph(rng *rand.Rand, n int) *Graph {
	g := New(n)
	for e := 0; e < 3*n; e++ {
		g.AddEdge(rng.IntN(n), rng.IntN(n))
	}
	return g
}

func TestGraphDumpRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 11))
	for _, n := range []int{0, 1, 2, 17, 100} {
		g := randomGraph(rng, n)
		lens, arena := g.Dump(nil, nil)
		back, err := NewFromDump(lens, arena)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !g.Equal(back) {
			t.Fatalf("n=%d: round-tripped graph differs", n)
		}
		if back.EdgeCount() != g.EdgeCount() {
			t.Fatalf("n=%d: edge count %d != %d", n, back.EdgeCount(), g.EdgeCount())
		}
		// The restored graph must be independently mutable (fresh arena).
		if n >= 2 {
			back.AddEdge(0, 1)
			back.RemoveEdge(0, 1)
		}
	}
}

func TestDigraphDumpRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	for _, n := range []int{0, 1, 2, 17, 100} {
		d := NewDigraph(n)
		for e := 0; e < 4*n; e++ {
			d.AddArc(rng.IntN(n), rng.IntN(n))
		}
		lens, arena := d.Dump(nil, nil)
		back, err := NewDigraphFromDump(lens, arena)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !d.Equal(back) {
			t.Fatalf("n=%d: round-tripped digraph differs", n)
		}
	}
}

func TestDumpBufferReuse(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	d := NewDigraph(2)
	d.AddArc(0, 1)

	// Appending two dumps into the same buffers must keep both intact.
	lens, arena := g.Dump(nil, nil)
	gEnd, aEnd := len(lens), len(arena)
	lens, arena = d.Dump(lens, arena)

	back, err := NewFromDump(lens[:gEnd], arena[:aEnd])
	if err != nil || !g.Equal(back) {
		t.Fatalf("graph half corrupted by append: %v", err)
	}
	dback, err := NewDigraphFromDump(lens[gEnd:], arena[aEnd:])
	if err != nil || !d.Equal(dback) {
		t.Fatalf("digraph half corrupted by append: %v", err)
	}
}

func TestNewFromDumpRejectsCorruption(t *testing.T) {
	cases := []struct {
		name  string
		lens  []int32
		arena []int32
	}{
		{"negative length", []int32{-1, 0}, nil},
		{"length sum mismatch", []int32{1, 1}, []int32{1}},
		{"odd total", []int32{1, 0}, []int32{1}},
		{"out of range", []int32{1, 1}, []int32{2, 0}},
		{"self loop", []int32{1, 1}, []int32{0, 0}},
		{"unsorted row", []int32{2, 1, 1}, []int32{2, 1, 0, 0}},
		{"asymmetric", []int32{1, 0, 1}, []int32{1, 0}},
	}
	for _, tc := range cases {
		if _, err := NewFromDump(tc.lens, tc.arena); !errors.Is(err, ErrBadDump) {
			t.Errorf("%s: got %v, want ErrBadDump", tc.name, err)
		}
	}
	if _, err := NewDigraphFromDump([]int32{1, 1}, []int32{1, 1}); !errors.Is(err, ErrBadDump) {
		t.Errorf("digraph self loop: got %v, want ErrBadDump", err)
	}
	// A digraph dump may legitimately be asymmetric.
	if _, err := NewDigraphFromDump([]int32{1, 0}, []int32{1}); err != nil {
		t.Errorf("asymmetric digraph dump rejected: %v", err)
	}
}
