package graph

// Components returns, for every node, the index of its connected
// component. Component indices are dense, assigned in increasing order of
// the smallest node they contain, so two runs over equal graphs produce
// identical labelings.
func Components(g *Graph) []int {
	comp := make([]int, g.Len())
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	var stack []int
	for s := 0; s < g.Len(); s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = next
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.Row(u) {
				if comp[v] == -1 {
					comp[v] = next
					stack = append(stack, int(v))
				}
			}
		}
		next++
	}
	return comp
}

// ComponentCount returns the number of connected components.
func ComponentCount(g *Graph) int {
	comp := Components(g)
	max := -1
	for _, c := range comp {
		if c > max {
			max = c
		}
	}
	return max + 1
}

// IsConnected reports whether the graph has at most one component.
// The empty graph is considered connected.
func IsConnected(g *Graph) bool { return ComponentCount(g) <= 1 }

// Connected reports whether u and v are in the same component.
func Connected(g *Graph, u, v int) bool {
	if u == v {
		return true
	}
	uf := unionFindOf(g)
	return uf.Connected(u, v)
}

// SamePartition reports whether two graphs over the same node set induce
// exactly the same partition into connected components. This is the
// statement of Theorem 2.1: u and v are connected in G_α iff they are
// connected in G_R.
func SamePartition(a, b *Graph) bool {
	if a.Len() != b.Len() {
		return false
	}
	ca, cb := Components(a), Components(b)
	// Dense canonical labelings are equal iff the partitions are equal.
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

// PreservesConnectivity reports whether the subgraph sub preserves the
// connectivity of base: any two nodes connected in base remain connected
// in sub. For sub ⊆ base this is equivalent to SamePartition.
func PreservesConnectivity(base, sub *Graph) bool {
	if base.Len() != sub.Len() {
		return false
	}
	uf := unionFindOf(sub)
	for _, e := range base.Edges() {
		if !uf.Connected(e.U, e.V) {
			return false
		}
	}
	return true
}

func unionFindOf(g *Graph) *UnionFind {
	uf := NewUnionFind(g.Len())
	for u := 0; u < g.Len(); u++ {
		for _, v := range g.Row(u) {
			if u < int(v) {
				uf.Union(u, int(v))
			}
		}
	}
	return uf
}
