package graph

import (
	"errors"
	"fmt"
	"math"
	"slices"
)

// ErrBadDump reports an arena dump that does not describe a valid graph.
// Unlike the trusted-input constructors (NewFromHalfRows,
// NewDigraphFromRows), the dump loaders never panic: dumps cross a
// process boundary — checkpoint files, wire frames — and a corrupt one
// is an input error, not a programming error.
var ErrBadDump = errors.New("graph: invalid arena dump")

// Dump exports the graph's packed adjacency as a row-length vector and
// one concatenated arena: lens[u] is node u's degree and the next
// lens[u] entries of arena are its ascending neighbor row. The two
// slices are appended to lens and arena (pass nil to allocate fresh),
// so a caller serializing several graphs can reuse one pair of buffers.
// This is the checkpoint wire shape: two bulk writes regardless of node
// count.
func (g *Graph) Dump(lens, arena []int32) ([]int32, []int32) {
	lens = slices.Grow(lens, g.n)
	arena = slices.Grow(arena, 2*g.edges)
	for u := 0; u < g.n; u++ {
		lens = append(lens, int32(len(g.adj[u])))
		arena = append(arena, g.adj[u]...)
	}
	return lens, arena
}

// NewFromDump rebuilds a graph from a Dump-shaped row-length vector and
// packed arena, validating everything a hostile dump could get wrong:
// consistent lengths, ascending in-range rows, no self-loops, and exact
// symmetry (v lists u iff u lists v). The rows are copied into one fresh
// arena; the input slices are not retained. It returns an ErrBadDump
// error instead of panicking on invalid input.
func NewFromDump(lens, arena []int32) (*Graph, error) {
	n := len(lens)
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("%w: node count %d exceeds the packed int32 id space", ErrBadDump, n)
	}
	total := 0
	for u, l := range lens {
		if l < 0 {
			return nil, fmt.Errorf("%w: negative row length %d at node %d", ErrBadDump, l, u)
		}
		total += int(l)
	}
	if total != len(arena) {
		return nil, fmt.Errorf("%w: row lengths sum to %d but arena holds %d entries", ErrBadDump, total, len(arena))
	}
	if total%2 != 0 {
		return nil, fmt.Errorf("%w: odd adjacency entry count %d cannot be symmetric", ErrBadDump, total)
	}
	g := &Graph{
		n:      n,
		edges:  total / 2,
		adj:    make([][]int32, n),
		shared: make([]bool, n),
	}
	packed := slices.Clone(arena)
	off := 0
	for u := 0; u < n; u++ {
		row := packed[off : off+int(lens[u]) : off+int(lens[u])]
		off += int(lens[u])
		if err := validateRow(u, n, row); err != nil {
			return nil, err
		}
		g.adj[u] = row
	}
	// Symmetry: every arc's reverse must exist. Rows are sorted, so one
	// binary search per directed entry suffices.
	for u := 0; u < n; u++ {
		for _, v := range g.adj[u] {
			if _, found := slices.BinarySearch(g.adj[v], int32(u)); !found {
				return nil, fmt.Errorf("%w: edge %d->%d has no reverse", ErrBadDump, u, v)
			}
		}
	}
	return g, nil
}

// Dump exports the digraph's packed successor rows in the same shape as
// Graph.Dump: a row-length vector plus one concatenated arena, appended
// to the passed buffers.
func (d *Digraph) Dump(lens, arena []int32) ([]int32, []int32) {
	lens = slices.Grow(lens, d.n)
	arena = slices.Grow(arena, d.arcs)
	for u := 0; u < d.n; u++ {
		lens = append(lens, int32(len(d.out[u])))
		arena = append(arena, d.out[u]...)
	}
	return lens, arena
}

// NewDigraphFromDump rebuilds a digraph from a Dump-shaped row-length
// vector and packed arena, validating row structure (ascending,
// in-range, no self-loops). The rows are copied; the input slices are
// not retained. It returns an ErrBadDump error instead of panicking on
// invalid input.
func NewDigraphFromDump(lens, arena []int32) (*Digraph, error) {
	n := len(lens)
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("%w: node count %d exceeds the packed int32 id space", ErrBadDump, n)
	}
	total := 0
	for u, l := range lens {
		if l < 0 {
			return nil, fmt.Errorf("%w: negative row length %d at node %d", ErrBadDump, l, u)
		}
		total += int(l)
	}
	if total != len(arena) {
		return nil, fmt.Errorf("%w: row lengths sum to %d but arena holds %d entries", ErrBadDump, total, len(arena))
	}
	d := &Digraph{
		n:      n,
		arcs:   total,
		out:    make([][]int32, n),
		shared: make([]bool, n),
	}
	packed := slices.Clone(arena)
	off := 0
	for u := 0; u < n; u++ {
		row := packed[off : off+int(lens[u]) : off+int(lens[u])]
		off += int(lens[u])
		if err := validateRow(u, n, row); err != nil {
			return nil, err
		}
		d.out[u] = row
	}
	return d, nil
}

// validateRow checks one dumped adjacency row: strictly ascending,
// in-range, no self-loop.
func validateRow(u, n int, row []int32) error {
	for i, v := range row {
		if int(v) < 0 || int(v) >= n {
			return fmt.Errorf("%w: node %d lists out-of-range neighbor %d", ErrBadDump, u, v)
		}
		if int(v) == u {
			return fmt.Errorf("%w: node %d lists itself", ErrBadDump, u)
		}
		if i > 0 && row[i-1] >= v {
			return fmt.Errorf("%w: node %d row not strictly ascending at %d", ErrBadDump, u, v)
		}
	}
	return nil
}
