package graph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func pathGraph(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(6)
	if uf.Sets() != 6 {
		t.Fatalf("Sets = %d, want 6", uf.Sets())
	}
	if !uf.Union(0, 1) || !uf.Union(1, 2) {
		t.Fatalf("fresh unions must merge")
	}
	if uf.Union(0, 2) {
		t.Errorf("union inside one set must report false")
	}
	if !uf.Connected(0, 2) {
		t.Errorf("0 and 2 must be connected")
	}
	if uf.Connected(0, 3) {
		t.Errorf("0 and 3 must be disconnected")
	}
	if uf.Sets() != 4 {
		t.Errorf("Sets = %d, want 4", uf.Sets())
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(4, 5)
	comp := Components(g)
	want := []int{0, 0, 0, 1, 2, 2}
	for i := range want {
		if comp[i] != want[i] {
			t.Errorf("comp[%d] = %d, want %d (all: %v)", i, comp[i], want[i], comp)
		}
	}
	if got := ComponentCount(g); got != 3 {
		t.Errorf("ComponentCount = %d, want 3", got)
	}
	if IsConnected(g) {
		t.Errorf("graph with 3 components is not connected")
	}
	if !IsConnected(pathGraph(10)) {
		t.Errorf("path graph must be connected")
	}
}

func TestConnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	if !Connected(g, 0, 1) || !Connected(g, 2, 2) {
		t.Errorf("expected connected pairs")
	}
	if Connected(g, 0, 2) {
		t.Errorf("expected disconnected pair")
	}
}

func TestSamePartition(t *testing.T) {
	a := pathGraph(5)
	// Same partition, different edges: a star instead of a path.
	b := New(5)
	for i := 1; i < 5; i++ {
		b.AddEdge(0, i)
	}
	if !SamePartition(a, b) {
		t.Errorf("path and star over same nodes are both one component")
	}
	c := New(5)
	c.AddEdge(0, 1)
	if SamePartition(a, c) {
		t.Errorf("different partitions must not compare equal")
	}
	if SamePartition(a, New(4)) {
		t.Errorf("different node counts must not compare equal")
	}
}

func TestPreservesConnectivity(t *testing.T) {
	base := New(4)
	base.AddEdge(0, 1)
	base.AddEdge(1, 2)
	base.AddEdge(0, 2) // triangle
	base.AddEdge(2, 3)

	sub := New(4)
	sub.AddEdge(0, 1)
	sub.AddEdge(1, 2)
	sub.AddEdge(2, 3)
	if !PreservesConnectivity(base, sub) {
		t.Errorf("dropping one triangle edge keeps connectivity")
	}

	broken := New(4)
	broken.AddEdge(0, 1)
	broken.AddEdge(1, 2)
	if PreservesConnectivity(base, broken) {
		t.Errorf("losing node 3 must be detected")
	}
}

// Union-find over edges and BFS components must agree on every random
// graph.
func TestUnionFindMatchesBFSProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 29))
		n := int(nRaw%30) + 2
		g := New(n)
		for i := 0; i < n; i++ {
			g.AddEdge(rng.IntN(n), rng.IntN(n))
		}
		comp := Components(g)
		uf := NewUnionFind(n)
		for _, e := range g.Edges() {
			uf.Union(e.U, e.V)
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if (comp[u] == comp[v]) != uf.Connected(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// A graph always has the same partition as itself, and adding an edge
// within a component preserves the partition.
func TestSamePartitionReflexiveProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 37))
		n := int(nRaw%20) + 3
		g := New(n)
		for i := 0; i < n; i++ {
			g.AddEdge(rng.IntN(n), rng.IntN(n))
		}
		if !SamePartition(g, g) {
			return false
		}
		comp := Components(g)
		// Find two distinct nodes in the same component, if any.
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if comp[u] == comp[v] && !g.HasEdge(u, v) {
					h := g.Clone()
					h.AddEdge(u, v)
					return SamePartition(g, h)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
