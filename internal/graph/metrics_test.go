package graph

import (
	"math"
	"testing"

	"cbtc/internal/geom"
)

func squareLayout() ([]geom.Point, *Graph) {
	// Unit square: 0 bottom-left, 1 bottom-right, 2 top-right, 3 top-left.
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)}
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	return pos, g
}

func TestAvgDegree(t *testing.T) {
	_, g := squareLayout()
	if got := AvgDegree(g); math.Abs(got-2) > 1e-12 {
		t.Errorf("AvgDegree = %v, want 2", got)
	}
	if got := AvgDegree(New(0)); got != 0 {
		t.Errorf("AvgDegree(empty) = %v, want 0", got)
	}
	if got := MaxDegree(g); got != 2 {
		t.Errorf("MaxDegree = %v, want 2", got)
	}
}

func TestNodeRadiusAndAvgRadius(t *testing.T) {
	pos, g := squareLayout()
	g.AddEdge(0, 2) // diagonal of length √2
	if got := NodeRadius(g, pos, 0); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Errorf("NodeRadius(0) = %v, want √2", got)
	}
	if got := NodeRadius(g, pos, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("NodeRadius(1) = %v, want 1", got)
	}
	want := (math.Sqrt2 + 1 + math.Sqrt2 + 1) / 4
	if got := AvgRadius(g, pos); math.Abs(got-want) > 1e-12 {
		t.Errorf("AvgRadius = %v, want %v", got, want)
	}
}

func TestNodeRadiusIsolated(t *testing.T) {
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 5)}
	g := New(2)
	if got := NodeRadius(g, pos, 0); got != 0 {
		t.Errorf("isolated radius = %v, want 0", got)
	}
}

func TestStretchIdentity(t *testing.T) {
	pos, g := squareLayout()
	if got := Stretch(g, g, EuclideanWeight(pos)); math.Abs(got-1) > 1e-12 {
		t.Errorf("self stretch = %v, want 1", got)
	}
	if got := HopStretch(g, g); math.Abs(got-1) > 1e-12 {
		t.Errorf("self hop stretch = %v, want 1", got)
	}
}

func TestStretchDetour(t *testing.T) {
	pos, base := squareLayout()
	base.AddEdge(0, 2) // direct diagonal
	sub := base.Clone()
	sub.RemoveEdge(0, 2) // force the 2-hop detour of length 2
	want := 2 / math.Sqrt2
	if got := Stretch(base, sub, EuclideanWeight(pos)); math.Abs(got-want) > 1e-9 {
		t.Errorf("Stretch = %v, want %v", got, want)
	}
	if got := HopStretch(base, sub); math.Abs(got-2) > 1e-9 {
		t.Errorf("HopStretch = %v, want 2", got)
	}
}

func TestStretchBrokenConnectivity(t *testing.T) {
	pos, base := squareLayout()
	sub := New(4)
	sub.AddEdge(0, 1)
	if got := Stretch(base, sub, EuclideanWeight(pos)); !math.IsInf(got, 1) {
		t.Errorf("Stretch with broken connectivity = %v, want +Inf", got)
	}
	if got := HopStretch(base, sub); !math.IsInf(got, 1) {
		t.Errorf("HopStretch with broken connectivity = %v, want +Inf", got)
	}
}

func TestPowerWeight(t *testing.T) {
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 4)}
	w := PowerWeight(pos, 2)
	if got := w(0, 1); math.Abs(got-25) > 1e-9 {
		t.Errorf("PowerWeight = %v, want 25", got)
	}
}

func TestEdgeLengths(t *testing.T) {
	pos, g := squareLayout()
	g.AddEdge(0, 2)
	lengths := EdgeLengths(g, pos)
	if len(lengths) != 5 {
		t.Fatalf("got %d lengths, want 5", len(lengths))
	}
	for i := 1; i < len(lengths); i++ {
		if lengths[i] < lengths[i-1] {
			t.Fatalf("lengths not sorted: %v", lengths)
		}
	}
	if math.Abs(lengths[4]-math.Sqrt2) > 1e-12 {
		t.Errorf("longest = %v, want √2", lengths[4])
	}
}
