package graph

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestHopDistances(t *testing.T) {
	g := pathGraph(5)
	g.AddEdge(0, 4) // ring
	dist := HopDistances(g, 0)
	want := []int{0, 1, 2, 2, 1}
	for i := range want {
		if dist[i] != want[i] {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want[i])
		}
	}
}

func TestHopDistancesUnreachable(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	dist := HopDistances(g, 0)
	if dist[2] != -1 {
		t.Errorf("dist[2] = %d, want -1 (unreachable)", dist[2])
	}
}

func TestShortestPaths(t *testing.T) {
	// Square with a shortcut: 0-1-2 costs 2, direct 0-2 costs 3.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	w := func(u, v int) float64 {
		if (u == 0 && v == 2) || (u == 2 && v == 0) {
			return 3
		}
		return 1
	}
	dist := ShortestPaths(g, 0, w)
	wantDist := []float64{0, 1, 2, 3}
	for i := range wantDist {
		if math.Abs(dist[i]-wantDist[i]) > 1e-12 {
			t.Errorf("dist[%d] = %v, want %v", i, dist[i], wantDist[i])
		}
	}
}

func TestShortestPathsUnreachable(t *testing.T) {
	g := New(2)
	dist := ShortestPaths(g, 0, func(u, v int) float64 { return 1 })
	if !math.IsInf(dist[1], 1) {
		t.Errorf("dist[1] = %v, want +Inf", dist[1])
	}
}

// With unit weights, Dijkstra must agree with BFS.
func TestDijkstraMatchesBFSProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 41))
		n := int(nRaw%25) + 2
		g := New(n)
		for i := 0; i < 2*n; i++ {
			g.AddEdge(rng.IntN(n), rng.IntN(n))
		}
		src := rng.IntN(n)
		hops := HopDistances(g, src)
		dist := ShortestPaths(g, src, func(u, v int) float64 { return 1 })
		for i := range hops {
			if hops[i] == -1 {
				if !math.IsInf(dist[i], 1) {
					return false
				}
				continue
			}
			if math.Abs(dist[i]-float64(hops[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Shortest path distances satisfy the triangle inequality through any
// intermediate node.
func TestDijkstraTriangleProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 43))
		n := 12
		g := New(n)
		weights := make(map[Edge]float64)
		for i := 0; i < 3*n; i++ {
			u, v := rng.IntN(n), rng.IntN(n)
			if u != v {
				g.AddEdge(u, v)
				weights[NewEdge(u, v)] = rng.Float64()*10 + 0.1
			}
		}
		w := func(u, v int) float64 { return weights[NewEdge(u, v)] }
		src := rng.IntN(n)
		dist := ShortestPaths(g, src, w)
		for u := 0; u < n; u++ {
			if math.IsInf(dist[u], 1) {
				continue
			}
			var bad bool
			g.EachNeighbor(u, func(v int) {
				if dist[v] > dist[u]+w(u, v)+1e-9 {
					bad = true
				}
			})
			if bad {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
