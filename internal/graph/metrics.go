package graph

import (
	"math"
	"sort"

	"cbtc/internal/geom"
)

// AvgDegree returns the average node degree, the first row of the
// paper's Table 1. It is 0 for the empty graph.
func AvgDegree(g *Graph) float64 {
	if g.Len() == 0 {
		return 0
	}
	return 2 * float64(g.EdgeCount()) / float64(g.Len())
}

// MaxDegree returns the largest node degree.
func MaxDegree(g *Graph) int {
	max := 0
	for u := 0; u < g.Len(); u++ {
		if d := g.Degree(u); d > max {
			max = d
		}
	}
	return max
}

// NodeRadius returns the Euclidean length of u's longest incident edge —
// the transmission radius node u needs to reach all its neighbors in g.
// Isolated nodes have radius 0.
func NodeRadius(g *Graph, pos []geom.Point, u int) float64 {
	var r float64
	for _, v := range g.Row(u) {
		if d := pos[u].Dist(pos[v]); d > r {
			r = d
		}
	}
	return r
}

// AvgRadius returns the average per-node transmission radius, the second
// row of the paper's Table 1.
func AvgRadius(g *Graph, pos []geom.Point) float64 {
	if g.Len() == 0 {
		return 0
	}
	var sum float64
	for u := 0; u < g.Len(); u++ {
		sum += NodeRadius(g, pos, u)
	}
	return sum / float64(g.Len())
}

// EuclideanWeight returns a WeightFunc measuring edge length.
func EuclideanWeight(pos []geom.Point) WeightFunc {
	return func(u, v int) float64 { return pos[u].Dist(pos[v]) }
}

// PowerWeight returns a WeightFunc measuring transmission energy
// d(u,v)^exponent, the per-hop cost used in minimum-energy routing.
func PowerWeight(pos []geom.Point, exponent float64) WeightFunc {
	return func(u, v int) float64 { return math.Pow(pos[u].Dist(pos[v]), exponent) }
}

// Stretch compares optimal route costs in a subgraph against a base
// graph: the maximum over connected pairs (u,v) of
// cost_sub(u,v) / cost_base(u,v). A stretch of 1 means the subgraph
// preserves optimal routes exactly; the §1 competitiveness discussion in
// the paper bounds the power stretch of G_α.
//
// Pairs disconnected in base are skipped; a pair connected in base but
// not in sub yields +Inf (connectivity was broken).
func Stretch(base, sub *Graph, w WeightFunc) float64 {
	if base.Len() != sub.Len() {
		return math.Inf(1)
	}
	worst := 1.0
	for src := 0; src < base.Len(); src++ {
		db := ShortestPaths(base, src, w)
		ds := ShortestPaths(sub, src, w)
		for v := range db {
			if v == src || math.IsInf(db[v], 1) {
				continue
			}
			if math.IsInf(ds[v], 1) {
				return math.Inf(1)
			}
			if db[v] == 0 {
				continue // coincident nodes: zero-cost route in both
			}
			if r := ds[v] / db[v]; r > worst {
				worst = r
			}
		}
	}
	return worst
}

// HopStretch compares hop-count routes the same way Stretch compares
// weighted routes.
func HopStretch(base, sub *Graph) float64 {
	if base.Len() != sub.Len() {
		return math.Inf(1)
	}
	worst := 1.0
	for src := 0; src < base.Len(); src++ {
		hb := HopDistances(base, src)
		hs := HopDistances(sub, src)
		for v := range hb {
			if v == src || hb[v] <= 0 {
				continue
			}
			if hs[v] < 0 {
				return math.Inf(1)
			}
			if r := float64(hs[v]) / float64(hb[v]); r > worst {
				worst = r
			}
		}
	}
	return worst
}

// EdgeLengths returns the sorted list of Euclidean edge lengths of g.
func EdgeLengths(g *Graph, pos []geom.Point) []float64 {
	edges := g.Edges()
	out := make([]float64, len(edges))
	for i, e := range edges {
		out[i] = pos[e.U].Dist(pos[e.V])
	}
	sort.Float64s(out)
	return out
}
