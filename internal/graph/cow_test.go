package graph

import (
	"math/rand/v2"
	"sort"
	"testing"
)

// refGraph is the map-backed reference model the packed copy-on-write
// Graph must match operation for operation — the representation the
// substrate replaced.
type refGraph struct {
	n   int
	adj []map[int]struct{}
}

func newRefGraph(n int) *refGraph {
	adj := make([]map[int]struct{}, n)
	for i := range adj {
		adj[i] = make(map[int]struct{})
	}
	return &refGraph{n: n, adj: adj}
}

func (r *refGraph) addEdge(u, v int) {
	if u == v {
		return
	}
	r.adj[u][v] = struct{}{}
	r.adj[v][u] = struct{}{}
}

func (r *refGraph) removeEdge(u, v int) {
	delete(r.adj[u], v)
	delete(r.adj[v], u)
}

func (r *refGraph) isolate(u int) {
	for v := range r.adj[u] {
		delete(r.adj[v], u)
	}
	r.adj[u] = make(map[int]struct{})
}

func (r *refGraph) grow(k int) {
	for i := 0; i < k; i++ {
		r.adj = append(r.adj, make(map[int]struct{}))
	}
	r.n += k
}

func (r *refGraph) clone() *refGraph {
	c := newRefGraph(r.n)
	for u := range r.adj {
		for v := range r.adj[u] {
			c.adj[u][v] = struct{}{}
		}
	}
	return c
}

func (r *refGraph) edges() []Edge {
	var out []Edge
	for u := range r.adj {
		for v := range r.adj[u] {
			if u < v {
				out = append(out, Edge{U: u, V: v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

func (r *refGraph) edgeCount() int {
	total := 0
	for _, m := range r.adj {
		total += len(m)
	}
	return total / 2
}

// assertMatchesRef checks every observable of the packed graph against
// the reference model.
func assertMatchesRef(t *testing.T, g *Graph, r *refGraph) {
	t.Helper()
	if g.Len() != r.n {
		t.Fatalf("Len = %d, want %d", g.Len(), r.n)
	}
	if g.EdgeCount() != r.edgeCount() {
		t.Fatalf("EdgeCount = %d, want %d", g.EdgeCount(), r.edgeCount())
	}
	ge, re := g.Edges(), r.edges()
	if len(ge) != len(re) {
		t.Fatalf("Edges: %d edges, want %d", len(ge), len(re))
	}
	for i := range ge {
		if ge[i] != re[i] {
			t.Fatalf("Edges[%d] = %v, want %v", i, ge[i], re[i])
		}
	}
	for u := 0; u < r.n; u++ {
		if g.Degree(u) != len(r.adj[u]) {
			t.Fatalf("Degree(%d) = %d, want %d", u, g.Degree(u), len(r.adj[u]))
		}
		row := g.Row(u)
		for i := 1; i < len(row); i++ {
			if row[i-1] >= row[i] {
				t.Fatalf("Row(%d) not strictly ascending: %v", u, row)
			}
		}
		for _, v := range row {
			if _, ok := r.adj[u][int(v)]; !ok {
				t.Fatalf("Row(%d) holds %d, absent from reference", u, v)
			}
		}
		nbrs := g.Neighbors(u)
		if len(nbrs) != len(row) {
			t.Fatalf("Neighbors(%d) len %d, Row len %d", u, len(nbrs), len(row))
		}
	}
}

// TestGraphMatchesMapReference drives random interleavings of every
// mutating operation — including clones that keep mutating both the
// original and the copy — through the packed COW graph and the old
// map-based semantics in lockstep.
func TestGraphMatchesMapReference(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewPCG(seed, 99))
		n := 2 + rng.IntN(12)
		g := New(n)
		r := newRefGraph(n)
		// A pool of live (packed, reference) pairs: clones join the pool
		// and keep receiving operations, exercising row sharing in both
		// directions.
		gs := []*Graph{g}
		rs := []*refGraph{r}
		for step := 0; step < 400; step++ {
			k := rng.IntN(len(gs))
			g, r := gs[k], rs[k]
			pick := func() int { return rng.IntN(g.Len()) }
			switch op := rng.IntN(10); {
			case op < 4:
				u, v := pick(), pick()
				g.AddEdge(u, v)
				r.addEdge(u, v)
			case op < 6:
				u, v := pick(), pick()
				g.RemoveEdge(u, v)
				if u != v {
					r.removeEdge(u, v)
				}
			case op < 7:
				u := pick()
				g.IsolateNode(u)
				r.isolate(u)
			case op < 8:
				g.Grow(1)
				r.grow(1)
			default:
				if len(gs) < 6 {
					gs = append(gs, g.Clone())
					rs = append(rs, r.clone())
				}
			}
		}
		for i := range gs {
			assertMatchesRef(t, gs[i], rs[i])
		}
	}
}

// TestGraphCloneIsolation hammers the COW sharing directly: mutations
// on either side of a clone must never leak to the other, and a deep
// clone must stay bit-identical to the snapshot moment.
func TestGraphCloneIsolation(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	g := New(20)
	for i := 0; i < 60; i++ {
		g.AddEdge(rng.IntN(20), rng.IntN(20))
	}
	snap := g.Clone()
	frozen := g.CloneDeep()
	if !snap.Equal(frozen) || !g.Equal(snap) {
		t.Fatal("clones must equal the original at snapshot time")
	}
	// Diverge both sides.
	for i := 0; i < 200; i++ {
		u, v := rng.IntN(20), rng.IntN(20)
		switch rng.IntN(3) {
		case 0:
			g.AddEdge(u, v)
		case 1:
			g.RemoveEdge(u, v)
		case 2:
			g.IsolateNode(u)
		}
	}
	if !snap.Equal(frozen) {
		t.Fatal("mutating the original leaked into the COW clone")
	}
	// And the other direction: mutate the clone, original untouched.
	before := g.CloneDeep()
	for i := 0; i < 200; i++ {
		u, v := rng.IntN(20), rng.IntN(20)
		if rng.IntN(2) == 0 {
			snap.AddEdge(u, v)
		} else {
			snap.RemoveEdge(u, v)
		}
	}
	if !g.Equal(before) {
		t.Fatal("mutating the COW clone leaked into the original")
	}
}

// refDigraph is the map-backed reference for the packed Digraph.
type refDigraph struct {
	n   int
	out []map[int]struct{}
}

func newRefDigraph(n int) *refDigraph {
	out := make([]map[int]struct{}, n)
	for i := range out {
		out[i] = make(map[int]struct{})
	}
	return &refDigraph{n: n, out: out}
}

func (r *refDigraph) clone() *refDigraph {
	c := newRefDigraph(r.n)
	for u := range r.out {
		for v := range r.out[u] {
			c.out[u][v] = struct{}{}
		}
	}
	return c
}

func TestDigraphMatchesMapReference(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewPCG(seed, 17))
		n := 2 + rng.IntN(12)
		ds := []*Digraph{NewDigraph(n)}
		rs := []*refDigraph{newRefDigraph(n)}
		for step := 0; step < 400; step++ {
			k := rng.IntN(len(ds))
			d, r := ds[k], rs[k]
			pick := func() int { return rng.IntN(d.Len()) }
			switch op := rng.IntN(10); {
			case op < 5:
				u, v := pick(), pick()
				d.AddArc(u, v)
				if u != v {
					r.out[u][v] = struct{}{}
				}
			case op < 7:
				u, v := pick(), pick()
				d.RemoveArc(u, v)
				delete(r.out[u], v)
			case op < 8:
				d.Grow(1)
				r.out = append(r.out, make(map[int]struct{}))
				r.n++
			default:
				if len(ds) < 6 {
					ds = append(ds, d.Clone())
					rs = append(rs, r.clone())
				}
			}
		}
		for i := range ds {
			d, r := ds[i], rs[i]
			if d.Len() != r.n {
				t.Fatalf("seed %d: Len = %d, want %d", seed, d.Len(), r.n)
			}
			arcs := 0
			for u := 0; u < r.n; u++ {
				arcs += len(r.out[u])
				if d.OutDegree(u) != len(r.out[u]) {
					t.Fatalf("seed %d: OutDegree(%d) = %d, want %d", seed, u, d.OutDegree(u), len(r.out[u]))
				}
				for _, v := range d.Row(u) {
					if _, ok := r.out[u][int(v)]; !ok {
						t.Fatalf("seed %d: stray arc %d→%d", seed, u, v)
					}
				}
				for v := range r.out[u] {
					if !d.HasArc(u, v) {
						t.Fatalf("seed %d: missing arc %d→%d", seed, u, v)
					}
				}
			}
			if d.ArcCount() != arcs {
				t.Fatalf("seed %d: ArcCount = %d, want %d", seed, d.ArcCount(), arcs)
			}
		}
	}
}

// TestNewFromHalfRowsMatchesAddEdge pins the arena bulk constructor to
// the incremental path.
func TestNewFromHalfRowsMatchesAddEdge(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewPCG(seed, 3))
		n := 1 + rng.IntN(30)
		rows := make([][]int32, n)
		inc := New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.IntN(3) == 0 {
					rows[u] = append(rows[u], int32(v))
					inc.AddEdge(u, v)
				}
			}
		}
		bulk := NewFromHalfRows(rows)
		if !bulk.Equal(inc) {
			t.Fatalf("seed %d: bulk-built graph differs from AddEdge build", seed)
		}
		// The arena rows must be safely mutable: appending to one row
		// must not corrupt its arena neighbors.
		if n >= 3 && !bulk.HasEdge(0, n-1) {
			before := bulk.CloneDeep()
			bulk.AddEdge(0, n-1)
			bulk.RemoveEdge(0, n-1)
			if !bulk.Equal(before) {
				t.Fatalf("seed %d: add/remove round trip disturbed the arena", seed)
			}
		}
	}
}

func TestDigraphFromRowsMatchesAddArc(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	n := 25
	rows := make([][]int32, n)
	inc := NewDigraph(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if v != u && rng.IntN(4) == 0 {
				rows[u] = append(rows[u], int32(v))
				inc.AddArc(u, v)
			}
		}
	}
	bulk := NewDigraphFromRows(rows)
	if !bulk.Equal(inc) {
		t.Fatal("bulk-built digraph differs from AddArc build")
	}
	if !bulk.SymmetricClosure().Equal(inc.SymmetricClosure()) {
		t.Fatal("symmetric closures differ")
	}
	if !bulk.MutualSubgraph().Equal(inc.MutualSubgraph()) {
		t.Fatal("mutual subgraphs differ")
	}
}
