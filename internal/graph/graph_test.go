package graph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestGraphBasics(t *testing.T) {
	g := New(5)
	if g.Len() != 5 {
		t.Fatalf("Len = %d, want 5", g.Len())
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 2) // self-loop ignored

	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Errorf("edges must be symmetric")
	}
	if g.HasEdge(2, 2) {
		t.Errorf("self-loops must be ignored")
	}
	if got := g.EdgeCount(); got != 2 {
		t.Errorf("EdgeCount = %d, want 2", got)
	}
	if got := g.Degree(1); got != 2 {
		t.Errorf("Degree(1) = %d, want 2", got)
	}
	if got := g.Neighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Neighbors(1) = %v, want [0 2]", got)
	}

	g.RemoveEdge(0, 1)
	if g.HasEdge(0, 1) {
		t.Errorf("edge must be removed")
	}
	g.RemoveEdge(0, 1) // idempotent
}

func TestGraphAddEdgeIdempotent(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(0, 1)
	if got := g.EdgeCount(); got != 1 {
		t.Errorf("EdgeCount = %d, want 1", got)
	}
}

func TestGraphEdgesCanonical(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 1)
	g.AddEdge(2, 0)
	g.AddEdge(1, 0)
	edges := g.Edges()
	want := []Edge{{0, 1}, {0, 2}, {1, 3}}
	if len(edges) != len(want) {
		t.Fatalf("Edges = %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Errorf("Edges[%d] = %v, want %v", i, edges[i], want[i])
		}
	}
}

func TestGraphCloneEqual(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatalf("clone must equal original")
	}
	c.AddEdge(1, 2)
	if g.Equal(c) {
		t.Errorf("modified clone must differ")
	}
	if g.HasEdge(1, 2) {
		t.Errorf("clone mutation leaked into original")
	}
	if !g.IsSubgraphOf(c) {
		t.Errorf("g must be a subgraph of g + extra edge")
	}
	if c.IsSubgraphOf(g) {
		t.Errorf("supergraph must not be a subgraph")
	}
}

func TestGraphPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for out-of-range node")
		}
	}()
	New(2).AddEdge(0, 5)
}

func TestNewEdgeCanonical(t *testing.T) {
	if e := NewEdge(5, 2); e.U != 2 || e.V != 5 {
		t.Errorf("NewEdge(5,2) = %v, want {2 5}", e)
	}
}

func TestDigraphBasics(t *testing.T) {
	d := NewDigraph(4)
	d.AddArc(0, 1)
	d.AddArc(1, 0)
	d.AddArc(2, 3)
	d.AddArc(3, 3) // ignored

	if !d.HasArc(0, 1) || !d.HasArc(1, 0) || !d.HasArc(2, 3) {
		t.Fatalf("missing arcs")
	}
	if d.HasArc(3, 2) {
		t.Errorf("reverse arc must be absent")
	}
	if got := d.ArcCount(); got != 3 {
		t.Errorf("ArcCount = %d, want 3", got)
	}
	if got := d.Successors(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("Successors(0) = %v, want [1]", got)
	}
	if got := d.OutDegree(3); got != 0 {
		t.Errorf("OutDegree(3) = %d, want 0", got)
	}

	d.RemoveArc(0, 1)
	if d.HasArc(0, 1) {
		t.Errorf("arc must be removed")
	}
}

func TestSymmetricClosureAndMutual(t *testing.T) {
	d := NewDigraph(4)
	d.AddArc(0, 1) // asymmetric
	d.AddArc(1, 2) // mutual
	d.AddArc(2, 1)
	d.AddArc(3, 0) // asymmetric

	closure := d.SymmetricClosure()
	for _, e := range []Edge{{0, 1}, {1, 2}, {0, 3}} {
		if !closure.HasEdge(e.U, e.V) {
			t.Errorf("closure missing %v", e)
		}
	}
	if closure.EdgeCount() != 3 {
		t.Errorf("closure EdgeCount = %d, want 3", closure.EdgeCount())
	}

	mutual := d.MutualSubgraph()
	if !mutual.HasEdge(1, 2) {
		t.Errorf("mutual must keep the 1-2 edge")
	}
	if mutual.EdgeCount() != 1 {
		t.Errorf("mutual EdgeCount = %d, want 1", mutual.EdgeCount())
	}

	asym := d.AsymmetricArcs()
	if len(asym) != 2 {
		t.Fatalf("AsymmetricArcs = %v, want 2 arcs", asym)
	}
	if asym[0] != (Edge{0, 1}) || asym[1] != (Edge{3, 0}) {
		t.Errorf("AsymmetricArcs = %v, want [{0 1} {3 0}]", asym)
	}
}

// The mutual subgraph is always a subgraph of the symmetric closure.
func TestMutualSubsetOfClosureProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 13))
		n := int(nRaw%20) + 2
		d := NewDigraph(n)
		arcs := rng.IntN(n * 2)
		for i := 0; i < arcs; i++ {
			d.AddArc(rng.IntN(n), rng.IntN(n))
		}
		return d.MutualSubgraph().IsSubgraphOf(d.SymmetricClosure())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDigraphClone(t *testing.T) {
	d := NewDigraph(3)
	d.AddArc(0, 1)
	c := d.Clone()
	c.AddArc(1, 2)
	if d.HasArc(1, 2) {
		t.Errorf("clone mutation leaked into original")
	}
	if !c.HasArc(0, 1) {
		t.Errorf("clone missing original arc")
	}
}
