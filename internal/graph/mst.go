package graph

import "sort"

// MST returns a minimum spanning forest of g under the given edge
// weights (Kruskal). For connected graphs this is the spanning tree
// minimizing total weight; with Euclidean weights its maximum edge also
// minimizes the maximum per-node transmission radius over all connected
// topologies — the objective of Ramanathan & Rosales-Hain's centralized
// algorithm, which the paper discusses as related work.
func MST(g *Graph, w WeightFunc) *Graph {
	type wedge struct {
		e      Edge
		weight float64
	}
	edges := g.Edges()
	weighted := make([]wedge, len(edges))
	for i, e := range edges {
		weighted[i] = wedge{e: e, weight: w(e.U, e.V)}
	}
	sort.Slice(weighted, func(i, j int) bool {
		if weighted[i].weight != weighted[j].weight {
			return weighted[i].weight < weighted[j].weight
		}
		// Deterministic tiebreak on the canonical edge order.
		if weighted[i].e.U != weighted[j].e.U {
			return weighted[i].e.U < weighted[j].e.U
		}
		return weighted[i].e.V < weighted[j].e.V
	})

	out := New(g.Len())
	uf := NewUnionFind(g.Len())
	for _, we := range weighted {
		if uf.Union(we.e.U, we.e.V) {
			out.AddEdge(we.e.U, we.e.V)
		}
	}
	return out
}

// BottleneckRadius returns the maximum edge weight of the minimum
// spanning forest: the smallest uniform transmission radius that keeps
// the graph's components connected. Returns 0 for edgeless graphs.
func BottleneckRadius(g *Graph, w WeightFunc) float64 {
	mst := MST(g, w)
	var max float64
	for _, e := range mst.Edges() {
		if d := w(e.U, e.V); d > max {
			max = d
		}
	}
	return max
}
