package graph

import "cbtc/internal/geom"

// EdgeInterference returns the coverage-based interference of the edge
// {u, v}: the number of other nodes inside the union of the two disks of
// radius d(u,v) centered at u and v — the nodes whose communication a
// transmission on this link can disturb. This is the standard
// link-interference measure used to quantify the paper's claim that
// fewer/shorter edges reduce interference.
func EdgeInterference(pos []geom.Point, u, v int) int {
	d2 := pos[u].Dist2(pos[v])
	count := 0
	for w, pw := range pos {
		if w == u || w == v {
			continue
		}
		if pw.Dist2(pos[u]) <= d2 || pw.Dist2(pos[v]) <= d2 {
			count++
		}
	}
	return count
}

// MaxInterference returns the maximum EdgeInterference over all edges
// of g (0 for edgeless graphs).
func MaxInterference(g *Graph, pos []geom.Point) int {
	max := 0
	for _, e := range g.Edges() {
		if c := EdgeInterference(pos, e.U, e.V); c > max {
			max = c
		}
	}
	return max
}

// AvgInterference returns the mean EdgeInterference over all edges of g
// (0 for edgeless graphs).
func AvgInterference(g *Graph, pos []geom.Point) float64 {
	edges := g.Edges()
	if len(edges) == 0 {
		return 0
	}
	total := 0
	for _, e := range edges {
		total += EdgeInterference(pos, e.U, e.V)
	}
	return float64(total) / float64(len(edges))
}

// Diameter returns the largest hop distance between any connected pair
// of nodes (0 for graphs with no multi-node component).
func Diameter(g *Graph) int {
	max := 0
	for u := 0; u < g.Len(); u++ {
		for _, d := range HopDistances(g, u) {
			if d > max {
				max = d
			}
		}
	}
	return max
}
