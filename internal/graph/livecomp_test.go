package graph

import (
	"math/rand/v2"
	"testing"
)

// recount is the reference: a full BFS component count over live nodes,
// plus a labeling for Same checks.
func recount(g *Graph, alive []bool) (int, []int) {
	label := make([]int, g.Len())
	for i := range label {
		label[i] = -1
	}
	count := 0
	var stack []int32
	for u, live := range alive {
		if !live || label[u] >= 0 {
			continue
		}
		count++
		label[u] = count
		stack = append(stack[:0], int32(u))
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.Row(int(x)) {
				if label[v] < 0 {
					label[v] = count
					stack = append(stack, v)
				}
			}
		}
	}
	return count, label
}

// checkAgainstReference asserts lc's Count and Same agree with a fresh
// BFS recount of (g, alive).
func checkAgainstReference(t *testing.T, step int, lc *LiveComponents, g *Graph, alive []bool, rng *rand.Rand) {
	t.Helper()
	want, label := recount(g, alive)
	if got := lc.Count(); got != want {
		t.Fatalf("step %d: Count = %d, want %d", step, got, want)
	}
	n := g.Len()
	if n == 0 {
		return
	}
	for k := 0; k < 4*n; k++ {
		u, v := rng.IntN(n), rng.IntN(n)
		want := label[u] > 0 && label[v] > 0 && label[u] == label[v]
		if got := lc.Same(u, v); got != want {
			t.Fatalf("step %d: Same(%d, %d) = %v, want %v (labels %d, %d)", step, u, v, got, want, label[u], label[v])
		}
	}
}

// applyMutations performs a batch of raw edge/liveness mutations on g,
// recording the exact Delta the way a Session's repair does (departures
// noted as they happen, edge ops recorded only when effective), then
// folds it into lc. It returns the recorded delta size for sanity.
type mutator struct {
	g     *Graph
	alive []bool
	lc    *LiveComponents
	d     Delta
}

func (m *mutator) join() int {
	id := m.g.Len()
	m.g.Grow(1)
	m.alive = append(m.alive, true)
	m.lc.Join(id)
	return id
}

func (m *mutator) depart(u int) {
	if !m.alive[u] {
		panic("depart of dead node")
	}
	m.alive[u] = false
	m.d.Departed = append(m.d.Departed, u)
	// A departing node loses all incident edges, like a Session repair
	// isolating it arc by arc.
	for _, v := range append([]int32(nil), m.g.Row(u)...) {
		m.removeEdge(u, int(v))
	}
}

func (m *mutator) addEdge(u, v int) {
	if u == v || !m.alive[u] || !m.alive[v] {
		return
	}
	if m.g.AddEdge(u, v) {
		m.d.Added = append(m.d.Added, NewEdge(u, v))
	}
}

func (m *mutator) removeEdge(u, v int) {
	if m.g.RemoveEdge(u, v) {
		m.d.Removed = append(m.d.Removed, NewEdge(u, v))
	}
}

func (m *mutator) commit() {
	m.lc.Apply(m.g, m.d)
	m.d = Delta{}
}

// TestLiveComponentsTargeted drives the structure through the known
// hard shapes of incremental connectivity.
func TestLiveComponentsTargeted(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))

	t.Run("cut-vertex-departure", func(t *testing.T) {
		// Path v0 - u(1) - v2: u departs, v0 and v2 must split.
		g := New(3)
		alive := []bool{true, true, true}
		g.AddEdge(0, 1)
		g.AddEdge(1, 2)
		lc := NewLiveComponents(g, alive)
		if lc.Count() != 1 {
			t.Fatalf("initial Count = %d, want 1", lc.Count())
		}
		m := &mutator{g: g, alive: alive, lc: lc}
		m.depart(1)
		m.commit()
		checkAgainstReference(t, 0, lc, g, alive, rng)
		if lc.Same(0, 2) {
			t.Fatal("v0 and v2 must be split after the cut vertex departs")
		}
	})

	t.Run("bridge-removal", func(t *testing.T) {
		// Two triangles joined by a bridge; removing the bridge splits.
		g := New(6)
		alive := []bool{true, true, true, true, true, true}
		for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}} {
			g.AddEdge(e[0], e[1])
		}
		lc := NewLiveComponents(g, alive)
		m := &mutator{g: g, alive: alive, lc: lc}
		m.removeEdge(2, 3)
		m.commit()
		checkAgainstReference(t, 0, lc, g, alive, rng)
	})

	t.Run("cycle-removal-no-split", func(t *testing.T) {
		g := New(4)
		alive := []bool{true, true, true, true}
		for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
			g.AddEdge(e[0], e[1])
		}
		lc := NewLiveComponents(g, alive)
		m := &mutator{g: g, alive: alive, lc: lc}
		m.removeEdge(0, 1)
		m.commit()
		if lc.Count() != 1 {
			t.Fatalf("cycle minus one edge must stay connected, Count = %d", lc.Count())
		}
	})

	t.Run("add-and-remove-same-edge", func(t *testing.T) {
		// An edge inserted and deleted within one delta: the spurious
		// union must be unwound by the seeded search.
		g := New(2)
		alive := []bool{true, true}
		lc := NewLiveComponents(g, alive)
		m := &mutator{g: g, alive: alive, lc: lc}
		m.addEdge(0, 1)
		m.removeEdge(0, 1)
		m.commit()
		if lc.Count() != 2 || lc.Same(0, 1) {
			t.Fatalf("transient edge must not merge: Count = %d Same = %v", lc.Count(), lc.Same(0, 1))
		}
	})

	t.Run("simultaneous-total-shatter", func(t *testing.T) {
		// A star loses its hub: every leaf becomes a singleton, and all
		// leaf searches complete in the same round — the remainder rule
		// must keep the count exact.
		g := New(5)
		alive := []bool{true, true, true, true, true}
		for v := 1; v < 5; v++ {
			g.AddEdge(0, v)
		}
		lc := NewLiveComponents(g, alive)
		m := &mutator{g: g, alive: alive, lc: lc}
		m.depart(0)
		m.commit()
		checkAgainstReference(t, 0, lc, g, alive, rng)
		if lc.Count() != 4 {
			t.Fatalf("shattered star: Count = %d, want 4", lc.Count())
		}
	})

	t.Run("merge-two-components", func(t *testing.T) {
		g := New(4)
		alive := []bool{true, true, true, true}
		g.AddEdge(0, 1)
		g.AddEdge(2, 3)
		lc := NewLiveComponents(g, alive)
		m := &mutator{g: g, alive: alive, lc: lc}
		m.addEdge(1, 2)
		m.commit()
		if lc.Count() != 1 || !lc.Same(0, 3) {
			t.Fatalf("merge: Count = %d Same(0,3) = %v", lc.Count(), lc.Same(0, 3))
		}
	})

	t.Run("join-then-link", func(t *testing.T) {
		g := New(2)
		alive := []bool{true, true}
		g.AddEdge(0, 1)
		lc := NewLiveComponents(g, alive)
		m := &mutator{g: g, alive: alive, lc: lc}
		id := m.join()
		if lc.Count() != 2 {
			t.Fatalf("joined singleton: Count = %d, want 2", lc.Count())
		}
		m.addEdge(id, 0)
		m.commit()
		if lc.Count() != 1 {
			t.Fatalf("linked newcomer: Count = %d, want 1", lc.Count())
		}
		checkAgainstReference(t, 0, lc, m.g, m.alive, rng)
	})
}

// TestLiveComponentsRandomLockstep drives random mutation batches and
// asserts Count/Same equal a fresh BFS recount after every commit.
func TestLiveComponentsRandomLockstep(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewPCG(seed, 42))
		n := 24 + int(seed)*8
		g := New(n)
		alive := make([]bool, n)
		for i := range alive {
			alive[i] = true
		}
		// Sparse random start.
		for k := 0; k < n; k++ {
			u, v := rng.IntN(n), rng.IntN(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		lc := NewLiveComponents(g, alive)
		m := &mutator{g: g, alive: alive, lc: lc}

		liveIDs := func() []int {
			var ids []int
			for u, a := range m.alive {
				if a {
					ids = append(ids, u)
				}
			}
			return ids
		}
		for step := 0; step < 160; step++ {
			// One batch: several raw mutations, then one Apply — the same
			// granularity as a Session repair.
			ops := 1 + rng.IntN(4)
			for k := 0; k < ops; k++ {
				ids := liveIDs()
				switch op := rng.IntN(10); {
				case op < 4 && len(ids) >= 2: // add edge
					m.addEdge(ids[rng.IntN(len(ids))], ids[rng.IntN(len(ids))])
				case op < 7: // remove a random existing edge
					edges := m.g.Edges()
					if len(edges) > 0 {
						e := edges[rng.IntN(len(edges))]
						m.removeEdge(e.U, e.V)
					}
				case op < 8 && len(ids) > 2: // departure
					m.depart(ids[rng.IntN(len(ids))])
				default: // join, sometimes immediately linked
					id := m.join()
					if ids := liveIDs(); len(ids) > 1 && rng.IntN(2) == 0 {
						m.addEdge(id, ids[rng.IntN(len(ids))])
					}
				}
			}
			m.commit()
			checkAgainstReference(t, step, m.lc, m.g, m.alive, rng)
		}
	}
}
