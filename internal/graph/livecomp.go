package graph

import "fmt"

// Delta describes one repair's worth of changes to a live graph, the
// unit LiveComponents.Apply consumes. A Session accumulates one Delta
// per recompute: the nodes that left the live set, and the exact edge
// insertions/removals its arc patches performed (Graph.AddEdge and
// RemoveEdge report effectiveness precisely so callers can record
// these without diffing rows).
type Delta struct {
	// Departed lists the nodes removed from the live set. Their incident
	// edge removals must appear in Removed (the Session's repair isolates
	// departed nodes edge by edge, so they do).
	Departed []int
	// Added lists the edges inserted. Both endpoints are live at Apply
	// time; edges touching a node departed in the same Delta are ignored.
	Added []Edge
	// Removed lists the edges deleted. Endpoints may include departed
	// nodes; the live endpoints seed the rebuild-on-split search.
	Removed []Edge
}

// LiveComponents maintains the connected components of an undirected
// graph restricted to its live nodes, under incremental change: node
// joins, node departures, edge insertions and edge removals. It is the
// structure behind a Session's O(changed) Observe — Count answers the
// per-tick connectivity metric without the full BFS a fresh recount
// pays.
//
// The design is union-find with one extra indirection: node2set maps a
// live node to a disjoint-set slot (or -1 once departed), and the
// union-find runs over slots. Insertions and joins are classic O(α)
// unions. Deletions — which plain union-find cannot unmerge — are
// handled by rebuild-on-split scoped to the repair region: the live
// endpoints of the removed edges seed a multi-source round-robin search
// over the final graph, racing one search per seed until at most one
// group per old component is still expanding. Every fragment of a split
// component necessarily contains a live endpoint of some removed edge,
// so each completed search group is exactly one new fragment and is
// carved into a fresh slot; the last group standing keeps the old slot,
// which means the search never pays for the (typically dominant)
// surviving fragment. When nothing split, the seeds' searches meet and
// merge after exploring only the repair's neighborhood.
//
// LiveComponents is not safe for concurrent use; its owner serializes
// access (the Session lock).
type LiveComponents struct {
	node2set []int32 // per node: union-find slot, -1 once departed
	parent   []int32 // union-find forest over slots
	rank     []uint8
	size     []int32 // live members per root slot
	count    int     // live components

	// visit/owner/visitGen are the epoch-stamped scratch of Apply's
	// rebuild-on-split search: node u is claimed this Apply iff
	// visit[u] == visitGen, and then owner[u] is the claiming search.
	visit    []int
	owner    []int32
	visitGen int
}

// NewLiveComponents builds the structure for g restricted to the live
// nodes, by one full BFS — the same recount the structure subsequently
// avoids. Edges must never touch non-live nodes (the Session invariant:
// repairs isolate departed nodes).
func NewLiveComponents(g *Graph, alive []bool) *LiveComponents {
	n := g.Len()
	if len(alive) != n {
		panic(fmt.Sprintf("graph: liveness vector length %d != node count %d", len(alive), n))
	}
	lc := &LiveComponents{node2set: make([]int32, n)}
	for u := range lc.node2set {
		lc.node2set[u] = -1
	}
	var stack []int32
	for u, live := range alive {
		if !live || lc.node2set[u] >= 0 {
			continue
		}
		slot := lc.newSlot()
		lc.count++
		members := int32(1)
		lc.node2set[u] = slot
		stack = append(stack[:0], int32(u))
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.Row(int(x)) {
				if lc.node2set[v] < 0 {
					lc.node2set[v] = slot
					members++
					stack = append(stack, v)
				}
			}
		}
		lc.size[slot] = members
	}
	return lc
}

// Count returns the number of connected components among live nodes.
func (lc *LiveComponents) Count() int { return lc.count }

// Same reports whether u and v are live and in the same component.
func (lc *LiveComponents) Same(u, v int) bool {
	su, sv := lc.node2set[u], lc.node2set[v]
	if su < 0 || sv < 0 {
		return false
	}
	return lc.find(su) == lc.find(sv)
}

// Len returns the size of the node id space.
func (lc *LiveComponents) Len() int { return len(lc.node2set) }

// Join admits node u — either the next fresh id (extending the id
// space) or an existing never-live slot — as a new singleton component.
func (lc *LiveComponents) Join(u int) {
	for len(lc.node2set) <= u {
		lc.node2set = append(lc.node2set, -1)
	}
	if lc.node2set[u] >= 0 {
		panic(fmt.Sprintf("graph: join of live node %d", u))
	}
	slot := lc.newSlot()
	lc.node2set[u] = slot
	lc.size[slot] = 1
	lc.count++
}

// Apply folds one repair's changes into the maintained components.
// g must already be in its post-repair state: the rebuild-on-split
// search traverses g's final rows. Departures are processed first, then
// insertions as unions, then removals via the seeded search.
func (lc *LiveComponents) Apply(g *Graph, d Delta) {
	for _, u := range d.Departed {
		slot := lc.node2set[u]
		if slot < 0 {
			continue
		}
		lc.node2set[u] = -1
		r := lc.find(slot)
		lc.size[r]--
		if lc.size[r] == 0 {
			lc.count--
		}
	}
	for _, e := range d.Added {
		su, sv := lc.node2set[e.U], lc.node2set[e.V]
		if su < 0 || sv < 0 {
			continue
		}
		lc.union(lc.find(su), lc.find(sv))
	}
	if len(d.Removed) > 0 {
		lc.splitRepair(g, d.Removed)
	}
}

// lcSearch is one seed's region of Apply's rebuild-on-split race.
type lcSearch struct {
	queue []int32 // BFS frontier
	nodes []int32 // every node claimed (fragment members, if carved)
	root  int32   // the old component's root slot
	dead  bool    // absorbed into another search of the same fragment
}

// splitRepair re-derives the components of every set that lost an edge.
// Seeds are the distinct live endpoints of the net-removed edges,
// grouped by their current root; a group with a single seed cannot have
// split (any fragment of a split contains such an endpoint: the first
// edge a cross-fragment walk uses is absent from the final graph), and
// each multi-seed group races its seeds' searches over the final graph.
// Removals undone within the same delta — a Move's repair strips and
// re-derives mostly the same arcs — are skipped outright: an edge the
// final graph still has cannot have caused a split.
func (lc *LiveComponents) splitRepair(g *Graph, removed []Edge) {
	gen := lc.nextGen()
	var searches []*lcSearch
	for _, e := range removed {
		if g.HasEdge(e.U, e.V) {
			continue
		}
		for _, u := range [2]int{e.U, e.V} {
			slot := lc.node2set[u]
			if slot < 0 || lc.visit[u] == gen {
				continue
			}
			lc.visit[u] = gen
			lc.owner[u] = int32(len(searches))
			searches = append(searches, &lcSearch{
				queue: []int32{int32(u)},
				nodes: []int32{int32(u)},
				root:  lc.find(slot),
			})
		}
	}
	// Group seeds by root in first-seen order, so slot allocation — and
	// with it the whole structure — is deterministic in the input.
	byRoot := make(map[int32][]int32, 2)
	var rootOrder []int32
	for i, s := range searches {
		if _, ok := byRoot[s.root]; !ok {
			rootOrder = append(rootOrder, s.root)
		}
		byRoot[s.root] = append(byRoot[s.root], int32(i))
	}
	// sparent is a small union-find over search indices: searches whose
	// frontiers meet belong to the same fragment.
	sparent := make([]int32, len(searches))
	for i := range sparent {
		sparent[i] = int32(i)
	}
	for _, root := range rootOrder {
		if members := byRoot[root]; len(members) > 1 {
			lc.raceSearches(g, gen, searches, sparent, members)
		}
	}
}

// raceSearches expands the group's searches round-robin, one frontier
// node per search per round, over the final graph. Searches that touch
// are merged (same fragment); a search whose frontier empties while
// others are still expanding has fully mapped its fragment and is
// carved into a fresh slot. When at most one search remains, its
// fragment — plus anything never reached, which by the seed invariant is
// part of the same fragment — keeps the old slot, so the dominant
// surviving fragment is never fully traversed.
func (lc *LiveComponents) raceSearches(g *Graph, gen int, searches []*lcSearch, sparent []int32, members []int32) {
	sfind := func(x int32) int32 {
		for sparent[x] != x {
			sparent[x] = sparent[sparent[x]]
			x = sparent[x]
		}
		return x
	}
	remaining := members
	for len(remaining) > 1 {
		next := remaining[:0]
		for _, si := range remaining {
			s := searches[si]
			if s.dead {
				continue
			}
			if len(s.queue) == 0 {
				// Completed while others still expand: a full fragment.
				lc.carve(s.root, s.nodes)
				continue
			}
			x := s.queue[len(s.queue)-1]
			s.queue = s.queue[:len(s.queue)-1]
			for _, v := range g.Row(int(x)) {
				if lc.visit[v] == gen {
					if j := sfind(lc.owner[v]); j != si {
						// Frontiers met: same fragment. Absorb j into si.
						o := searches[j]
						s.queue = append(s.queue, o.queue...)
						s.nodes = append(s.nodes, o.nodes...)
						o.queue, o.nodes, o.dead = nil, nil, true
						sparent[j] = si
					}
					continue
				}
				lc.visit[v] = gen
				lc.owner[v] = si
				s.queue = append(s.queue, v)
				s.nodes = append(s.nodes, v)
			}
			next = append(next, si)
		}
		remaining = next
	}
}

// carve moves one completed fragment out of its old component into a
// fresh slot. A fragment covering everything still in the old set is
// the remainder — every sibling fragment was carved before it — and
// keeps the old slot instead, so the component count stays exact even
// when the race's last two searches complete in the same round.
func (lc *LiveComponents) carve(root int32, nodes []int32) {
	r := lc.find(root)
	if int(lc.size[r]) == len(nodes) {
		return
	}
	slot := lc.newSlot()
	lc.size[slot] = int32(len(nodes))
	for _, u := range nodes {
		lc.node2set[u] = slot
	}
	lc.size[r] -= int32(len(nodes))
	lc.count++
}

// find returns slot x's root, with path halving.
func (lc *LiveComponents) find(x int32) int32 {
	for lc.parent[x] != x {
		lc.parent[x] = lc.parent[lc.parent[x]]
		x = lc.parent[x]
	}
	return x
}

// union merges two root slots by rank, folding sizes into the winner.
func (lc *LiveComponents) union(a, b int32) {
	if a == b {
		return
	}
	if lc.rank[a] < lc.rank[b] {
		a, b = b, a
	}
	lc.parent[b] = a
	lc.size[a] += lc.size[b]
	lc.size[b] = 0
	if lc.rank[a] == lc.rank[b] {
		lc.rank[a]++
	}
	lc.count--
}

// newSlot appends a fresh singleton union-find slot with size 0; the
// caller accounts for members and the component count.
func (lc *LiveComponents) newSlot() int32 {
	s := int32(len(lc.parent))
	lc.parent = append(lc.parent, s)
	lc.rank = append(lc.rank, 0)
	lc.size = append(lc.size, 0)
	return s
}

// nextGen starts a fresh visit epoch over the current id space.
func (lc *LiveComponents) nextGen() int {
	if len(lc.visit) < len(lc.node2set) {
		lc.visit = append(lc.visit, make([]int, len(lc.node2set)-len(lc.visit))...)
		lc.owner = append(lc.owner, make([]int32, len(lc.node2set)-len(lc.owner))...)
	}
	lc.visitGen++
	return lc.visitGen
}
