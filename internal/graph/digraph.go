package graph

import (
	"fmt"
	"sort"
)

// Digraph is a directed simple graph over nodes 0..N-1. It represents
// the asymmetric neighbor relation N_α = {(u,v) : v ∈ N_α(u)} computed
// by CBTC before any symmetrization.
type Digraph struct {
	n   int
	out []map[int]struct{}
}

// NewDigraph returns an empty directed graph with n nodes.
func NewDigraph(n int) *Digraph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	out := make([]map[int]struct{}, n)
	for i := range out {
		out[i] = make(map[int]struct{})
	}
	return &Digraph{n: n, out: out}
}

// Len returns the number of nodes.
func (d *Digraph) Len() int { return d.n }

// AddArc inserts the directed edge u→v. Self-loops are ignored.
func (d *Digraph) AddArc(u, v int) {
	d.check(u)
	d.check(v)
	if u == v {
		return
	}
	d.out[u][v] = struct{}{}
}

// RemoveArc deletes the directed edge u→v if present.
func (d *Digraph) RemoveArc(u, v int) {
	d.check(u)
	d.check(v)
	delete(d.out[u], v)
}

// HasArc reports whether the directed edge u→v is present.
func (d *Digraph) HasArc(u, v int) bool {
	d.check(u)
	d.check(v)
	_, ok := d.out[u][v]
	return ok
}

// OutDegree returns the number of outgoing edges of u.
func (d *Digraph) OutDegree(u int) int {
	d.check(u)
	return len(d.out[u])
}

// Successors returns the sorted list of v with u→v.
func (d *Digraph) Successors(u int) []int {
	d.check(u)
	out := make([]int, 0, len(d.out[u]))
	for v := range d.out[u] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// ArcCount returns the number of directed edges.
func (d *Digraph) ArcCount() int {
	total := 0
	for _, m := range d.out {
		total += len(m)
	}
	return total
}

// SymmetricClosure returns the smallest symmetric (undirected) graph
// containing every arc: {u,v} is an edge iff u→v or v→u. This is the
// paper's E_α.
func (d *Digraph) SymmetricClosure() *Graph {
	g := New(d.n)
	for u := 0; u < d.n; u++ {
		for v := range d.out[u] {
			g.AddEdge(u, v)
		}
	}
	return g
}

// MutualSubgraph returns the largest symmetric graph contained in the
// arc set: {u,v} is an edge iff both u→v and v→u. This is the paper's
// E⁻_α, used by the asymmetric edge removal optimization (§3.2).
func (d *Digraph) MutualSubgraph() *Graph {
	g := New(d.n)
	for u := 0; u < d.n; u++ {
		for v := range d.out[u] {
			if u < v && d.HasArc(v, u) {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// AsymmetricArcs returns every arc u→v whose reverse v→u is absent, in
// canonical order. These are the arcs the asymmetric-removal protocol
// message ("remove me from your neighbor set") travels along.
func (d *Digraph) AsymmetricArcs() []Edge {
	var arcs []Edge
	for u := 0; u < d.n; u++ {
		for v := range d.out[u] {
			if !d.HasArc(v, u) {
				arcs = append(arcs, Edge{U: u, V: v}) // directed: U→V
			}
		}
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].U != arcs[j].U {
			return arcs[i].U < arcs[j].U
		}
		return arcs[i].V < arcs[j].V
	})
	return arcs
}

// Grow appends k nodes with no arcs, extending the id space to Len()+k.
func (d *Digraph) Grow(k int) {
	if k < 0 {
		panic(fmt.Sprintf("graph: negative growth %d", k))
	}
	for i := 0; i < k; i++ {
		d.out = append(d.out, make(map[int]struct{}))
	}
	d.n += k
}

// Clone returns a deep copy.
func (d *Digraph) Clone() *Digraph {
	c := NewDigraph(d.n)
	for u := 0; u < d.n; u++ {
		for v := range d.out[u] {
			c.out[u][v] = struct{}{}
		}
	}
	return c
}

func (d *Digraph) check(u int) {
	if u < 0 || u >= d.n {
		panic(fmt.Sprintf("graph: node %d out of range [0, %d)", u, d.n))
	}
}
