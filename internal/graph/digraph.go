package graph

import (
	"fmt"
	"slices"
)

// Digraph is a directed simple graph over nodes 0..N-1. It represents
// the asymmetric neighbor relation N_α = {(u,v) : v ∈ N_α(u)} computed
// by CBTC before any symmetrization. Like Graph it stores packed sorted
// successor rows with copy-on-write clones; see the package comment.
type Digraph struct {
	n      int
	arcs   int       // cached arc count
	out    [][]int32 // per-node sorted successor rows
	shared []bool    // see Graph.shared
}

// NewDigraph returns an empty directed graph with n nodes.
func NewDigraph(n int) *Digraph {
	checkNodeCount(n)
	return &Digraph{
		n:      n,
		out:    make([][]int32, n),
		shared: make([]bool, n),
	}
}

// NewDigraphFromRows builds a digraph from per-node successor rows
// packed into one shared arena. rows[u] must be strictly ascending,
// in-range, and free of self-loops; the rows are copied, not retained.
func NewDigraphFromRows(rows [][]int32) *Digraph {
	n := len(rows)
	checkNodeCount(n)
	total := 0
	for u, row := range rows {
		for i, v := range row {
			if int(v) < 0 || int(v) >= n || int(v) == u || (i > 0 && row[i-1] >= v) {
				panic(fmt.Sprintf("graph: successor row %d invalid at %d", u, v))
			}
		}
		total += len(row)
	}
	arena := make([]int32, 0, total)
	d := &Digraph{
		n:      n,
		arcs:   total,
		out:    make([][]int32, n),
		shared: make([]bool, n),
	}
	for u, row := range rows {
		start := len(arena)
		arena = append(arena, row...)
		d.out[u] = arena[start:len(arena):len(arena)]
	}
	return d
}

// Len returns the number of nodes.
func (d *Digraph) Len() int { return d.n }

// owned returns node u's row ready for in-place mutation, copying it
// first if a clone may still reference the storage.
func (d *Digraph) owned(u int) []int32 {
	if d.shared[u] {
		d.out[u] = slices.Clone(d.out[u])
		d.shared[u] = false
	}
	return d.out[u]
}

// AddArc inserts the directed edge u→v. Self-loops are ignored.
func (d *Digraph) AddArc(u, v int) {
	d.check(u)
	d.check(v)
	if u == v {
		return
	}
	i, found := slices.BinarySearch(d.out[u], int32(v))
	if found {
		return
	}
	d.out[u] = slices.Insert(d.owned(u), i, int32(v))
	d.arcs++
}

// RemoveArc deletes the directed edge u→v if present.
func (d *Digraph) RemoveArc(u, v int) {
	d.check(u)
	d.check(v)
	i, found := slices.BinarySearch(d.out[u], int32(v))
	if !found {
		return
	}
	d.out[u] = slices.Delete(d.owned(u), i, i+1)
	d.arcs--
}

// HasArc reports whether the directed edge u→v is present.
func (d *Digraph) HasArc(u, v int) bool {
	d.check(u)
	d.check(v)
	_, found := slices.BinarySearch(d.out[u], int32(v))
	return found
}

// OutDegree returns the number of outgoing edges of u.
func (d *Digraph) OutDegree(u int) int {
	d.check(u)
	return len(d.out[u])
}

// Row returns node u's successor row: ascending node ids, backed by the
// digraph's internal storage. The caller must not mutate it, and the
// row is only valid until the digraph's next mutation.
func (d *Digraph) Row(u int) []int32 {
	d.check(u)
	return d.out[u]
}

// Successors returns the sorted list of v with u→v as a fresh slice.
func (d *Digraph) Successors(u int) []int {
	d.check(u)
	row := d.out[u]
	out := make([]int, len(row))
	for i, v := range row {
		out[i] = int(v)
	}
	return out
}

// ArcCount returns the number of directed edges.
func (d *Digraph) ArcCount() int { return d.arcs }

// SymmetricClosure returns the smallest symmetric (undirected) graph
// containing every arc: {u,v} is an edge iff u→v or v→u. This is the
// paper's E_α.
func (d *Digraph) SymmetricClosure() *Graph {
	g := New(d.n)
	for u := 0; u < d.n; u++ {
		for _, v := range d.out[u] {
			g.AddEdge(u, int(v))
		}
	}
	return g
}

// MutualSubgraph returns the largest symmetric graph contained in the
// arc set: {u,v} is an edge iff both u→v and v→u. This is the paper's
// E⁻_α, used by the asymmetric edge removal optimization (§3.2).
func (d *Digraph) MutualSubgraph() *Graph {
	g := New(d.n)
	for u := 0; u < d.n; u++ {
		for _, v := range d.out[u] {
			if u < int(v) && d.HasArc(int(v), u) {
				g.AddEdge(u, int(v))
			}
		}
	}
	return g
}

// AsymmetricArcs returns every arc u→v whose reverse v→u is absent, in
// canonical order (ascending U, then V — which the sorted rows yield by
// construction). These are the arcs the asymmetric-removal protocol
// message ("remove me from your neighbor set") travels along.
func (d *Digraph) AsymmetricArcs() []Edge {
	var arcs []Edge
	for u := 0; u < d.n; u++ {
		for _, v := range d.out[u] {
			if !d.HasArc(int(v), u) {
				arcs = append(arcs, Edge{U: u, V: int(v)}) // directed: U→V
			}
		}
	}
	return arcs
}

// Grow appends k nodes with no arcs, extending the id space to Len()+k.
func (d *Digraph) Grow(k int) {
	if k < 0 {
		panic(fmt.Sprintf("graph: negative growth %d", k))
	}
	checkNodeCount(d.n + k)
	d.out = append(d.out, make([][]int32, k)...)
	d.shared = append(d.shared, make([]bool, k)...)
	d.n += k
}

// Clone returns a copy-on-write clone sharing every successor row until
// one side mutates it; see Graph.Clone for the sharing contract (Clone
// counts as a mutation of the original for concurrency purposes).
func (d *Digraph) Clone() *Digraph {
	for i := range d.shared {
		d.shared[i] = true
	}
	c := &Digraph{
		n:      d.n,
		arcs:   d.arcs,
		out:    slices.Clone(d.out),
		shared: make([]bool, d.n),
	}
	for i := range c.shared {
		c.shared[i] = true
	}
	return c
}

// CloneDeep returns a fully materialized copy sharing no storage with
// the original; the reference for tests and clone benchmarks.
func (d *Digraph) CloneDeep() *Digraph {
	arena := make([]int32, 0, d.arcs)
	c := &Digraph{
		n:      d.n,
		arcs:   d.arcs,
		out:    make([][]int32, d.n),
		shared: make([]bool, d.n),
	}
	for u := 0; u < d.n; u++ {
		start := len(arena)
		arena = append(arena, d.out[u]...)
		c.out[u] = arena[start:len(arena):len(arena)]
	}
	return c
}

// Equal reports whether two digraphs have identical node and arc sets.
func (d *Digraph) Equal(o *Digraph) bool {
	if d.n != o.n || d.arcs != o.arcs {
		return false
	}
	for u := 0; u < d.n; u++ {
		if !slices.Equal(d.out[u], o.out[u]) {
			return false
		}
	}
	return true
}

func (d *Digraph) check(u int) {
	if u < 0 || u >= d.n {
		panic(fmt.Sprintf("graph: node %d out of range [0, %d)", u, d.n))
	}
}
