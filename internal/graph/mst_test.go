package graph

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"cbtc/internal/geom"
)

func TestMSTSquare(t *testing.T) {
	pos, g := squareLayout()
	g.AddEdge(0, 2) // diagonal, longest edge
	mst := MST(g, EuclideanWeight(pos))
	if mst.EdgeCount() != 3 {
		t.Fatalf("MST edges = %d, want 3", mst.EdgeCount())
	}
	if mst.HasEdge(0, 2) {
		t.Errorf("diagonal must not be in the MST")
	}
	if !IsConnected(mst) {
		t.Errorf("MST of a connected graph must be connected")
	}
}

func TestMSTForest(t *testing.T) {
	// Two components: MST must span each separately.
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(3, 4)
	w := func(u, v int) float64 { return float64(u + v) }
	mst := MST(g, w)
	if mst.EdgeCount() != 3 {
		t.Fatalf("forest edges = %d, want 3", mst.EdgeCount())
	}
	if !SamePartition(g, mst) {
		t.Errorf("MST forest must preserve the component partition")
	}
}

func TestBottleneckRadius(t *testing.T) {
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 40), geom.Pt(50, 40)}
	g := New(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			g.AddEdge(u, v)
		}
	}
	// MST is the chain 0-1-2-3 with max edge 40.
	if got := BottleneckRadius(g, EuclideanWeight(pos)); math.Abs(got-40) > 1e-9 {
		t.Errorf("BottleneckRadius = %v, want 40", got)
	}
	if got := BottleneckRadius(New(3), EuclideanWeight(pos)); got != 0 {
		t.Errorf("edgeless bottleneck = %v, want 0", got)
	}
}

// MST invariants on random geometric graphs: same partition, n-c edges,
// and no MST edge can be replaced by a strictly cheaper cut edge
// (verified via the cycle property on a sample).
func TestMSTInvariantsProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 51))
		n := int(nRaw%20) + 3
		pos := make([]geom.Point, n)
		for i := range pos {
			pos[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		g := New(n)
		for i := 0; i < 3*n; i++ {
			g.AddEdge(rng.IntN(n), rng.IntN(n))
		}
		w := EuclideanWeight(pos)
		mst := MST(g, w)
		if !SamePartition(g, mst) {
			return false
		}
		comps := ComponentCount(g)
		if mst.EdgeCount() != n-comps {
			return false
		}
		return mst.IsSubgraphOf(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestArticulationPoints(t *testing.T) {
	// Path 0-1-2: node 1 is a cut vertex.
	p := pathGraph(3)
	if got := ArticulationPoints(p); len(got) != 1 || got[0] != 1 {
		t.Errorf("path articulation = %v, want [1]", got)
	}
	// Triangle: none.
	tri := New(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(2, 0)
	if got := ArticulationPoints(tri); len(got) != 0 {
		t.Errorf("triangle articulation = %v, want none", got)
	}
	// Two triangles sharing node 2: node 2 cuts.
	bow := New(5)
	bow.AddEdge(0, 1)
	bow.AddEdge(1, 2)
	bow.AddEdge(2, 0)
	bow.AddEdge(2, 3)
	bow.AddEdge(3, 4)
	bow.AddEdge(4, 2)
	if got := ArticulationPoints(bow); len(got) != 1 || got[0] != 2 {
		t.Errorf("bowtie articulation = %v, want [2]", got)
	}
}

func TestIsBiconnected(t *testing.T) {
	tri := New(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(2, 0)
	if !IsBiconnected(tri) {
		t.Errorf("triangle must be biconnected")
	}
	if IsBiconnected(pathGraph(3)) {
		t.Errorf("path must not be biconnected")
	}
	if IsBiconnected(New(2)) {
		t.Errorf("two nodes cannot be biconnected")
	}
	disc := New(4)
	disc.AddEdge(0, 1)
	if IsBiconnected(disc) {
		t.Errorf("disconnected graph must not be biconnected")
	}
}

// Removing a non-articulation node keeps the component count among the
// remaining nodes; removing an articulation node raises it. This is the
// defining property — check it exhaustively on random graphs.
func TestArticulationDefinitionProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 53))
		n := int(nRaw%12) + 3
		g := New(n)
		for i := 0; i < 2*n; i++ {
			g.AddEdge(rng.IntN(n), rng.IntN(n))
		}
		arts := make(map[int]bool)
		for _, a := range ArticulationPoints(g) {
			arts[a] = true
		}
		for u := 0; u < n; u++ {
			if g.Degree(u) == 0 {
				continue
			}
			without := g.Clone()
			for _, v := range g.Neighbors(u) {
				without.RemoveEdge(u, v)
			}
			// Count components among nodes other than u.
			compBefore := componentsExcluding(g, u)
			compAfter := componentsExcluding(without, u)
			if arts[u] != (compAfter > compBefore) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func componentsExcluding(g *Graph, skip int) int {
	comp := Components(g)
	seen := make(map[int]bool)
	for u, c := range comp {
		if u == skip {
			continue
		}
		seen[c] = true
	}
	return len(seen)
}

func TestInterference(t *testing.T) {
	// Edge 0-1 of length 10 with a bystander inside the disks and one
	// outside.
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(5, 3), geom.Pt(100, 100)}
	g := New(4)
	g.AddEdge(0, 1)
	if got := EdgeInterference(pos, 0, 1); got != 1 {
		t.Errorf("EdgeInterference = %d, want 1", got)
	}
	if got := MaxInterference(g, pos); got != 1 {
		t.Errorf("MaxInterference = %d, want 1", got)
	}
	if got := AvgInterference(g, pos); math.Abs(got-1) > 1e-12 {
		t.Errorf("AvgInterference = %v, want 1", got)
	}
	if got := AvgInterference(New(4), pos); got != 0 {
		t.Errorf("edgeless AvgInterference = %v, want 0", got)
	}
}

// Subgraphs never have higher max interference than their supergraph.
func TestInterferenceMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 57))
		n := 12
		pos := make([]geom.Point, n)
		for i := range pos {
			pos[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		g := New(n)
		for i := 0; i < 3*n; i++ {
			g.AddEdge(rng.IntN(n), rng.IntN(n))
		}
		sub := g.Clone()
		edges := g.Edges()
		if len(edges) == 0 {
			return true
		}
		// Remove half the edges.
		for i, e := range edges {
			if i%2 == 0 {
				sub.RemoveEdge(e.U, e.V)
			}
		}
		return MaxInterference(sub, pos) <= MaxInterference(g, pos)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDiameter(t *testing.T) {
	if got := Diameter(pathGraph(5)); got != 4 {
		t.Errorf("path diameter = %d, want 4", got)
	}
	ring := pathGraph(6)
	ring.AddEdge(0, 5)
	if got := Diameter(ring); got != 3 {
		t.Errorf("ring diameter = %d, want 3", got)
	}
	if got := Diameter(New(3)); got != 0 {
		t.Errorf("edgeless diameter = %d, want 0", got)
	}
}
