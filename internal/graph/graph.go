// Package graph provides the graph substrate for topology control: the
// directed neighbor relation N_α computed by CBTC, its symmetric closure
// E_α and largest symmetric subset E⁻_α, connectivity queries (union-find
// and BFS), shortest paths, and the degree/radius/stretch metrics reported
// in the paper's evaluation.
//
// Nodes are dense integer indices 0..N-1, matching their position in the
// placement slice used by the rest of the system.
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected edge between two node indices with U < V.
type Edge struct {
	U, V int
}

// NewEdge returns the canonical (ordered) edge between a and b.
func NewEdge(a, b int) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{U: a, V: b}
}

// Graph is an undirected simple graph over nodes 0..N-1.
type Graph struct {
	n   int
	adj []map[int]struct{}
}

// New returns an empty undirected graph with n nodes.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	adj := make([]map[int]struct{}, n)
	for i := range adj {
		adj[i] = make(map[int]struct{})
	}
	return &Graph{n: n, adj: adj}
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return g.n }

// AddEdge inserts the undirected edge {u, v}. Self-loops are ignored.
// It panics on out-of-range indices: edges come from trusted internal
// computations and an out-of-range index is a programming error.
func (g *Graph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	if u == v {
		return
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
}

// RemoveEdge deletes the undirected edge {u, v} if present.
func (g *Graph) RemoveEdge(u, v int) {
	g.check(u)
	g.check(v)
	delete(g.adj[u], v)
	delete(g.adj[v], u)
}

// IsolateNode removes every edge incident to u, leaving it an isolated
// vertex. Dynamic scenarios use it to model departed nodes in a
// ground-truth graph.
func (g *Graph) IsolateNode(u int) {
	g.check(u)
	for v := range g.adj[u] {
		delete(g.adj[v], u)
	}
	g.adj[u] = make(map[int]struct{})
}

// HasEdge reports whether the undirected edge {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	_, ok := g.adj[u][v]
	return ok
}

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u int) int {
	g.check(u)
	return len(g.adj[u])
}

// Neighbors returns the sorted neighbor list of u.
func (g *Graph) Neighbors(u int) []int {
	g.check(u)
	out := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// EachNeighbor calls fn for every neighbor of u in unspecified order.
func (g *Graph) EachNeighbor(u int, fn func(v int)) {
	g.check(u)
	for v := range g.adj[u] {
		fn(v)
	}
}

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int {
	total := 0
	for _, m := range g.adj {
		total += len(m)
	}
	return total / 2
}

// Edges returns all edges in canonical order (sorted by U, then V).
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.EdgeCount())
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			if u < v {
				edges = append(edges, Edge{U: u, V: v})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	return edges
}

// Grow appends k isolated nodes, extending the id space to Len()+k.
// Dynamic scenarios use it when a session admits a joining node.
func (g *Graph) Grow(k int) {
	if k < 0 {
		panic(fmt.Sprintf("graph: negative growth %d", k))
	}
	for i := 0; i < k; i++ {
		g.adj = append(g.adj, make(map[int]struct{}))
	}
	g.n += k
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			c.adj[u][v] = struct{}{}
		}
	}
	return c
}

// Equal reports whether two graphs have identical node and edge sets.
func (g *Graph) Equal(o *Graph) bool {
	if g.n != o.n {
		return false
	}
	for u := 0; u < g.n; u++ {
		if len(g.adj[u]) != len(o.adj[u]) {
			return false
		}
		for v := range g.adj[u] {
			if _, ok := o.adj[u][v]; !ok {
				return false
			}
		}
	}
	return true
}

// IsSubgraphOf reports whether every edge of g is also an edge of o.
func (g *Graph) IsSubgraphOf(o *Graph) bool {
	if g.n != o.n {
		return false
	}
	for u := 0; u < g.n; u++ {
		for v := range g.adj[u] {
			if _, ok := o.adj[u][v]; !ok {
				return false
			}
		}
	}
	return true
}

func (g *Graph) check(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graph: node %d out of range [0, %d)", u, g.n))
	}
}
