// Package graph provides the graph substrate for topology control: the
// directed neighbor relation N_α computed by CBTC, its symmetric closure
// E_α and largest symmetric subset E⁻_α, connectivity queries (union-find
// and BFS), shortest paths, and the degree/radius/stretch metrics reported
// in the paper's evaluation.
//
// Nodes are dense integer indices 0..N-1, matching their position in the
// placement slice used by the rest of the system.
//
// # Representation
//
// Both Graph and Digraph store packed sorted adjacency: one ascending
// []int32 row per node, bulk-built graphs packing all rows into a single
// shared arena (CSR-style). Iteration order is therefore ascending by
// construction — every consumer is deterministic for free — and clones
// are copy-on-write: Clone shares the per-node rows with the original and
// either side copies a row only when it first mutates it. A long-lived
// Session snapshotting a 10k-node topology pays O(n) slice-header copies
// per snapshot plus O(dirty rows) copies per repair, instead of a full
// adjacency rebuild.
//
// Rows returned by Row are the live internal storage: callers must not
// mutate them, and a row is only valid until the graph's next mutation.
package graph

import (
	"fmt"
	"math"
	"slices"
)

// Edge is an undirected edge between two node indices with U < V.
type Edge struct {
	U, V int
}

// NewEdge returns the canonical (ordered) edge between a and b.
func NewEdge(a, b int) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{U: a, V: b}
}

// Graph is an undirected simple graph over nodes 0..N-1.
type Graph struct {
	n     int
	edges int       // cached undirected edge count
	adj   [][]int32 // per-node sorted neighbor rows
	// shared flags rows whose backing storage may be referenced by a
	// clone (or, after a bulk build, by sibling rows in the same arena
	// with adjacent capacity). A shared row is copied before its first
	// in-place mutation; flags are sticky until that copy happens.
	shared []bool
}

// New returns an empty undirected graph with n nodes.
func New(n int) *Graph {
	checkNodeCount(n)
	return &Graph{
		n:      n,
		adj:    make([][]int32, n),
		shared: make([]bool, n),
	}
}

// NewFromHalfRows builds a graph from per-node "upper" rows packed into
// one shared arena: rows[u] must list u's neighbors v > u in strictly
// ascending order. This is the bulk constructor the max-power graph
// builders use — degree counting plus two linear passes, no per-edge
// sorted inserts.
func NewFromHalfRows(rows [][]int32) *Graph {
	n := len(rows)
	checkNodeCount(n)
	deg := make([]int32, n)
	total := 0
	for u, row := range rows {
		for i, v := range row {
			if int(v) <= u || int(v) >= n || (i > 0 && row[i-1] >= v) {
				panic(fmt.Sprintf("graph: half row %d invalid at %d", u, v))
			}
			deg[u]++
			deg[v]++
		}
		total += 2 * len(row)
	}
	arena := make([]int32, total)
	g := &Graph{
		n:      n,
		edges:  total / 2,
		adj:    make([][]int32, n),
		shared: make([]bool, n),
	}
	off := 0
	for u := 0; u < n; u++ {
		// Full-capacity-limited so appends never bleed into the next row.
		g.adj[u] = arena[off : off : off+int(deg[u])]
		off += int(deg[u])
	}
	// A single ascending pass fills every row in ascending order: row u
	// first receives its smaller neighbors w < u (as w's own half rows are
	// walked, in increasing w), then its own ascending half row.
	for u, row := range rows {
		for _, v := range row {
			g.adj[u] = append(g.adj[u], v)
			g.adj[v] = append(g.adj[v], int32(u))
		}
	}
	return g
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return g.n }

// owned returns node u's row ready for in-place mutation, copying it
// first if a clone may still reference the storage.
func (g *Graph) owned(u int) []int32 {
	if g.shared[u] {
		g.adj[u] = slices.Clone(g.adj[u])
		g.shared[u] = false
	}
	return g.adj[u]
}

// insert adds v to node u's sorted row if absent; reports insertion.
func (g *Graph) insert(u int, v int32) bool {
	row := g.adj[u]
	i, found := slices.BinarySearch(row, v)
	if found {
		return false
	}
	row = g.owned(u)
	g.adj[u] = slices.Insert(row, i, v)
	return true
}

// remove deletes v from node u's sorted row if present; reports removal.
func (g *Graph) remove(u int, v int32) bool {
	row := g.adj[u]
	i, found := slices.BinarySearch(row, v)
	if !found {
		return false
	}
	row = g.owned(u)
	g.adj[u] = slices.Delete(row, i, i+1)
	return true
}

// AddEdge inserts the undirected edge {u, v}, reporting whether the
// edge was absent (so incremental consumers like LiveComponents can
// record the exact diff a mutation pass produced). Self-loops are
// ignored. It panics on out-of-range indices: edges come from trusted
// internal computations and an out-of-range index is a programming
// error.
func (g *Graph) AddEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if u == v {
		return false
	}
	if g.insert(u, int32(v)) {
		g.insert(v, int32(u))
		g.edges++
		return true
	}
	return false
}

// RemoveEdge deletes the undirected edge {u, v} if present, reporting
// whether it was.
func (g *Graph) RemoveEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	if u == v {
		return false
	}
	if g.remove(u, int32(v)) {
		g.remove(v, int32(u))
		g.edges--
		return true
	}
	return false
}

// IsolateNode removes every edge incident to u, leaving it an isolated
// vertex. Dynamic scenarios use it to model departed nodes in a
// ground-truth graph.
func (g *Graph) IsolateNode(u int) {
	g.check(u)
	row := g.adj[u]
	for _, v := range row {
		g.remove(int(v), int32(u))
	}
	g.edges -= len(row)
	g.adj[u] = nil
	g.shared[u] = false
}

// HasEdge reports whether the undirected edge {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	_, found := slices.BinarySearch(g.adj[u], int32(v))
	return found
}

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u int) int {
	g.check(u)
	return len(g.adj[u])
}

// Row returns node u's neighbor row: ascending node ids, backed by the
// graph's internal storage. The caller must not mutate it, and the row
// is only valid until the graph's next mutation. It is the zero-copy
// form of Neighbors for the traversal hot paths.
func (g *Graph) Row(u int) []int32 {
	g.check(u)
	return g.adj[u]
}

// Neighbors returns the sorted neighbor list of u as a fresh slice.
func (g *Graph) Neighbors(u int) []int {
	g.check(u)
	row := g.adj[u]
	out := make([]int, len(row))
	for i, v := range row {
		out[i] = int(v)
	}
	return out
}

// EachNeighbor calls fn for every neighbor of u in ascending order.
func (g *Graph) EachNeighbor(u int, fn func(v int)) {
	g.check(u)
	for _, v := range g.adj[u] {
		fn(int(v))
	}
}

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int { return g.edges }

// Edges returns all edges in canonical order (sorted by U, then V).
// Rows are ascending, so the canonical order falls out of one pass.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.edges)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if int(v) > u {
				edges = append(edges, Edge{U: u, V: int(v)})
			}
		}
	}
	return edges
}

// Grow appends k isolated nodes, extending the id space to Len()+k.
// Dynamic scenarios use it when a session admits a joining node.
func (g *Graph) Grow(k int) {
	if k < 0 {
		panic(fmt.Sprintf("graph: negative growth %d", k))
	}
	checkNodeCount(g.n + k)
	g.adj = append(g.adj, make([][]int32, k)...)
	g.shared = append(g.shared, make([]bool, k)...)
	g.n += k
}

// Clone returns a copy-on-write clone: both graphs share every per-node
// row until one side mutates it, at which point only that row is copied.
// Cloning is O(n) slice-header copies — independent of the edge count —
// which is what makes Session snapshots cheap. Clone marks the
// original's rows shared, so it counts as a mutation for concurrency
// purposes: do not clone a graph concurrently with other access to it.
func (g *Graph) Clone() *Graph {
	for i := range g.shared {
		g.shared[i] = true
	}
	c := &Graph{
		n:      g.n,
		edges:  g.edges,
		adj:    slices.Clone(g.adj),
		shared: make([]bool, g.n),
	}
	for i := range c.shared {
		c.shared[i] = true
	}
	return c
}

// CloneDeep returns a fully materialized copy sharing no storage with
// the original: every row is packed into one fresh arena. It is the
// reference the COW equivalence tests and the clone benchmarks compare
// against; prefer Clone everywhere else.
func (g *Graph) CloneDeep() *Graph {
	arena := make([]int32, 0, 2*g.edges)
	c := &Graph{
		n:      g.n,
		edges:  g.edges,
		adj:    make([][]int32, g.n),
		shared: make([]bool, g.n),
	}
	for u := 0; u < g.n; u++ {
		start := len(arena)
		arena = append(arena, g.adj[u]...)
		c.adj[u] = arena[start:len(arena):len(arena)]
	}
	return c
}

// Equal reports whether two graphs have identical node and edge sets.
func (g *Graph) Equal(o *Graph) bool {
	if g.n != o.n || g.edges != o.edges {
		return false
	}
	for u := 0; u < g.n; u++ {
		if !slices.Equal(g.adj[u], o.adj[u]) {
			return false
		}
	}
	return true
}

// IsSubgraphOf reports whether every edge of g is also an edge of o.
func (g *Graph) IsSubgraphOf(o *Graph) bool {
	if g.n != o.n {
		return false
	}
	for u := 0; u < g.n; u++ {
		mine, theirs := g.adj[u], o.adj[u]
		j := 0
		for _, v := range mine {
			// Both rows ascend: a merge walk beats per-edge binary search.
			for j < len(theirs) && theirs[j] < v {
				j++
			}
			if j == len(theirs) || theirs[j] != v {
				return false
			}
			j++
		}
	}
	return true
}

func (g *Graph) check(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graph: node %d out of range [0, %d)", u, g.n))
	}
}

func checkNodeCount(n int) {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	if n > math.MaxInt32 {
		panic(fmt.Sprintf("graph: node count %d exceeds the packed int32 id space", n))
	}
}
