package graph

import (
	"container/heap"
	"math"
)

// HopDistances returns the BFS hop count from src to every node, with -1
// for unreachable nodes.
func HopDistances(g *Graph, src int) []int {
	dist := make([]int, g.Len())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Row(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, int(v))
			}
		}
	}
	return dist
}

// WeightFunc assigns a non-negative weight to the edge {u, v}.
type WeightFunc func(u, v int) float64

// ShortestPaths runs Dijkstra from src under the given edge weights and
// returns the distance to every node (math.Inf(1) when unreachable).
func ShortestPaths(g *Graph, src int, w WeightFunc) []float64 {
	dist := make([]float64, g.Len())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &distHeap{{node: src, dist: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		if item.dist > dist[item.node] {
			continue // stale entry
		}
		u := item.node
		for _, v := range g.Row(u) {
			if d := item.dist + w(u, int(v)); d < dist[v] {
				dist[v] = d
				heap.Push(pq, distItem{node: int(v), dist: d})
			}
		}
	}
	return dist
}

type distItem struct {
	node int
	dist float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
