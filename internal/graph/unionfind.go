package graph

// UnionFind is a disjoint-set forest with union by rank and path
// compression. It answers the connectivity queries the reproduction uses
// to compare G_R against G_α.
type UnionFind struct {
	parent []int
	rank   []uint8
	sets   int
}

// NewUnionFind returns n singleton sets.
func NewUnionFind(n int) *UnionFind {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	return &UnionFind{parent: parent, rank: make([]uint8, n), sets: n}
}

// Find returns the canonical representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets of a and b; it reports whether a merge happened.
func (uf *UnionFind) Union(a, b int) bool {
	ra, rb := uf.Find(a), uf.Find(b)
	if ra == rb {
		return false
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
	uf.sets--
	return true
}

// Connected reports whether a and b are in the same set.
func (uf *UnionFind) Connected(a, b int) bool { return uf.Find(a) == uf.Find(b) }

// Sets returns the current number of disjoint sets.
func (uf *UnionFind) Sets() int { return uf.sets }
