package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// A Stream must agree with the retain-everything Sample on every shared
// statistic.
func TestStreamMatchesSample(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var st Stream
	var sm Sample
	for i := 0; i < 1000; i++ {
		v := rng.NormFloat64()*10 + 3
		st.Add(v)
		sm.Add(v)
	}
	if st.N() != int64(sm.N()) {
		t.Fatalf("N: stream %d, sample %d", st.N(), sm.N())
	}
	if !almostEqual(st.Mean, sm.Mean(), 1e-12) {
		t.Errorf("Mean: stream %v, sample %v", st.Mean, sm.Mean())
	}
	if !almostEqual(st.StdDev(), sm.StdDev(), 1e-12) {
		t.Errorf("StdDev: stream %v, sample %v", st.StdDev(), sm.StdDev())
	}
	if st.Min() != sm.Min() || st.Max() != sm.Max() {
		t.Errorf("extremes: stream [%v, %v], sample [%v, %v]", st.Min(), st.Max(), sm.Min(), sm.Max())
	}
}

// Merging split halves must equal accumulating the whole — the property
// the fleet report's per-network → aggregate rollup relies on.
func TestStreamMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	values := make([]float64, 501)
	for i := range values {
		values[i] = rng.Float64()*100 - 50
	}
	for _, split := range []int{0, 1, 250, 500, 501} {
		var whole, a, b Stream
		for _, v := range values {
			whole.Add(v)
		}
		for _, v := range values[:split] {
			a.Add(v)
		}
		for _, v := range values[split:] {
			b.Add(v)
		}
		a.Merge(&b)
		if a.Count != whole.Count || a.MinV != whole.MinV || a.MaxV != whole.MaxV {
			t.Fatalf("split %d: merged counts/extremes differ", split)
		}
		if !almostEqual(a.Mean, whole.Mean, 1e-12) || !almostEqual(a.StdDev(), whole.StdDev(), 1e-9) {
			t.Errorf("split %d: merged mean/stddev %v/%v, whole %v/%v",
				split, a.Mean, a.StdDev(), whole.Mean, whole.StdDev())
		}
	}
}

func TestStreamEmpty(t *testing.T) {
	var s Stream
	if s.N() != 0 || s.Mean != 0 || s.StdDev() != 0 {
		t.Errorf("zero stream reports N=%d mean=%v stddev=%v", s.N(), s.Mean, s.StdDev())
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Errorf("zero stream extremes [%v, %v], want [+Inf, -Inf]", s.Min(), s.Max())
	}
	var o Stream
	o.Add(2)
	s.Merge(&o)
	if s.Count != 1 || s.Mean != 2 || s.MinV != 2 || s.MaxV != 2 {
		t.Errorf("empty.Merge(singleton) = %+v", s)
	}
	o.Merge(&Stream{})
	if o.Count != 1 || o.Mean != 2 {
		t.Errorf("singleton.Merge(empty) = %+v", o)
	}
}

func TestIntHist(t *testing.T) {
	var h IntHist
	for _, k := range []int{0, 1, 1, 3, 3, 3, -2} {
		h.Add(k)
	}
	if h.N() != 7 {
		t.Fatalf("N = %d, want 7", h.N())
	}
	if got := h.Counts[0]; got != 2 { // the -2 clamps to bin 0
		t.Errorf("bin 0 = %d, want 2", got)
	}
	if !almostEqual(h.Mean(), 11.0/7, 1e-12) {
		t.Errorf("Mean = %v, want %v", h.Mean(), 11.0/7)
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Errorf("median = %d, want 1", q)
	}
	if q := h.Quantile(1); q != 3 {
		t.Errorf("max quantile = %d, want 3", q)
	}

	var a, b IntHist
	a.Add(0)
	a.Add(5)
	b.Add(2)
	b.Add(5)
	a.Merge(&b)
	if a.N() != 4 || a.Counts[5] != 2 || a.Counts[2] != 1 {
		t.Errorf("merged hist = %+v", a)
	}
	var empty IntHist
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Errorf("empty hist quantile/mean non-zero")
	}
}
