package stats

import "math"

// Stream is a streaming, mergeable scalar accumulator: it maintains
// count, mean, variance (Welford's algorithm), minimum and maximum in
// O(1) space, and two Streams combine exactly (Chan et al.'s parallel
// update) — Merge of two halves equals one Stream fed both halves'
// observations in order, up to float rounding. Unlike Sample it never
// retains observations, so per-shard accumulators stay allocation-free
// however long a fleet runs.
//
// The zero value is an empty, ready-to-use Stream. All fields are
// exported so reports carrying Streams compare with reflect.DeepEqual;
// mutate them only through Add and Merge.
type Stream struct {
	// Count is the number of observations.
	Count int64
	// Mean is the running arithmetic mean (0 when empty).
	Mean float64
	// M2 is the sum of squared deviations from the mean.
	M2 float64
	// MinV and MaxV are the extreme observations (undefined when empty).
	MinV, MaxV float64
}

// Add folds one observation into the stream.
func (s *Stream) Add(v float64) {
	s.Count++
	if s.Count == 1 {
		s.Mean, s.MinV, s.MaxV = v, v, v
		return
	}
	d := v - s.Mean
	s.Mean += d / float64(s.Count)
	s.M2 += d * (v - s.Mean)
	if v < s.MinV {
		s.MinV = v
	}
	if v > s.MaxV {
		s.MaxV = v
	}
}

// Merge folds another stream's accumulated state into s, as if s had
// also seen every observation o saw. o is unchanged.
func (s *Stream) Merge(o *Stream) {
	switch {
	case o.Count == 0:
		return
	case s.Count == 0:
		*s = *o
		return
	}
	d := o.Mean - s.Mean
	n := float64(s.Count + o.Count)
	s.M2 += o.M2 + d*d*float64(s.Count)*float64(o.Count)/n
	s.Mean += d * float64(o.Count) / n
	s.Count += o.Count
	if o.MinV < s.MinV {
		s.MinV = o.MinV
	}
	if o.MaxV > s.MaxV {
		s.MaxV = o.MaxV
	}
}

// N returns the number of observations.
func (s *Stream) N() int64 { return s.Count }

// Min returns the smallest observation (+Inf when empty, like Sample).
func (s *Stream) Min() float64 {
	if s.Count == 0 {
		return math.Inf(1)
	}
	return s.MinV
}

// Max returns the largest observation (-Inf when empty, like Sample).
func (s *Stream) Max() float64 {
	if s.Count == 0 {
		return math.Inf(-1)
	}
	return s.MaxV
}

// Variance returns the sample variance (0 for fewer than two
// observations).
func (s *Stream) Variance() float64 {
	if s.Count < 2 {
		return 0
	}
	return s.M2 / float64(s.Count-1)
}

// StdDev returns the sample standard deviation.
func (s *Stream) StdDev() float64 { return math.Sqrt(s.Variance()) }

// IntHist is a mergeable histogram over small non-negative integers —
// degree distributions, component counts. Counts[k] is the number of
// observations of value k; the slice grows on demand and merges
// bin-by-bin, so per-shard histograms combine deterministically.
//
// The zero value is an empty, ready-to-use histogram.
type IntHist struct {
	// Counts holds one bin per observed value.
	Counts []int64
}

// Add records one observation of k. Negative values are clamped to 0 so
// a sentinel can never grow an unbounded negative range.
func (h *IntHist) Add(k int) {
	if k < 0 {
		k = 0
	}
	for len(h.Counts) <= k {
		h.Counts = append(h.Counts, 0)
	}
	h.Counts[k]++
}

// Merge adds another histogram's bins into h. o is unchanged.
func (h *IntHist) Merge(o *IntHist) {
	for len(h.Counts) < len(o.Counts) {
		h.Counts = append(h.Counts, 0)
	}
	for k, c := range o.Counts {
		h.Counts[k] += c
	}
}

// N returns the total number of observations.
func (h *IntHist) N() int64 {
	var n int64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Mean returns the mean observed value (0 when empty).
func (h *IntHist) Mean() float64 {
	n := h.N()
	if n == 0 {
		return 0
	}
	var sum float64
	for k, c := range h.Counts {
		sum += float64(k) * float64(c)
	}
	return sum / float64(n)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the observed values:
// the smallest k such that at least q of the mass lies at or below k.
// It returns 0 for an empty histogram.
func (h *IntHist) Quantile(q float64) int {
	n := h.N()
	if n == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(n)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for k, c := range h.Counts {
		cum += c
		if cum >= target {
			return k
		}
	}
	return len(h.Counts) - 1
}
