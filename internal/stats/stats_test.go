package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.StdDev() != 0 {
		t.Errorf("empty sample must be all zeros")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d, want 8", s.N())
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample stddev of the classic dataset: sqrt(32/7).
	if got, want := s.StdDev(), math.Sqrt(32.0/7.0); math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestQuantile(t *testing.T) {
	var s Sample
	for i := 1; i <= 5; i++ {
		s.Add(float64(i))
	}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4},
	}
	for _, tt := range tests {
		if got := s.Quantile(tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	var empty Sample
	if empty.Quantile(0.5) != 0 {
		t.Errorf("empty quantile must be 0")
	}
}

// Mean is always between min and max; stddev is non-negative.
func TestSampleInvariantsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var s Sample
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			s.Add(math.Mod(v, 1e9))
		}
		if s.N() == 0 {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-9 && m <= s.Max()+1e-9 && s.StdDev() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Metric", "Paper", "Measured")
	tb.AddRow("degree", "12.3", "12.1")
	tb.AddRow("radius", "436.8") // short row padded
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Metric") {
		t.Errorf("header missing: %q", lines[0])
	}
	if !strings.Contains(lines[2], "12.3") || !strings.Contains(lines[2], "12.1") {
		t.Errorf("row content missing: %q", lines[2])
	}
	// Columns aligned: "Paper" column starts at the same offset in all rows.
	idx := strings.Index(lines[0], "Paper")
	if !strings.HasPrefix(lines[2][idx:], "12.3") {
		t.Errorf("column misaligned:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("plain", "with,comma")
	tb.AddRow("with\"quote", "x")
	csv := tb.CSV()
	want := "a,b\nplain,\"with,comma\"\n\"with\"\"quote\",x\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestFormatters(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Errorf("F = %q", F(3.14159, 2))
	}
	if Ratio(50, 100) != "50%" {
		t.Errorf("Ratio = %q", Ratio(50, 100))
	}
	if Ratio(1, 0) != "-" {
		t.Errorf("Ratio with zero paper value = %q", Ratio(1, 0))
	}
}
