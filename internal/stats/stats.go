// Package stats provides the aggregation and table-rendering helpers the
// experiment harness uses to reproduce the paper's Table 1 and report
// paper-vs-measured comparisons.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates observations of one scalar metric.
type Sample struct {
	values []float64
}

// Add appends an observation.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// StdDev returns the sample standard deviation (0 for fewer than two
// observations).
func (s *Sample) StdDev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, v := range s.values {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Min returns the smallest observation (+Inf for an empty sample).
func (s *Sample) Min() float64 {
	min := math.Inf(1)
	for _, v := range s.values {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest observation (-Inf for an empty sample).
func (s *Sample) Max() float64 {
	max := math.Inf(-1)
	for _, v := range s.values {
		if v > max {
			max = v
		}
	}
	return max
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation,
// or 0 for an empty sample.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.values...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Table renders aligned text tables for experiment reports.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with column alignment and a separator line.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing
// commas or quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float with the given number of decimals — shorthand for
// table cells.
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// Ratio formats measured/paper as a percentage string like "98%"; it
// returns "-" when the paper value is 0.
func Ratio(measured, paper float64) string {
	if paper == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*measured/paper)
}
