// Package spatial provides a uniform-grid point index for the radius
// queries the whole system is built on. The paper's protocol is local by
// design — only nodes within the maximum transmission radius R ever
// interact — so every hot path (radio delivery, the §2 oracle's candidate
// gather, §4 session repair, the position-based baselines) reduces to
// "which nodes lie within r of p?". The grid answers that in O(k) for k
// results instead of the O(n) placement scan, turning Θ(n²) pipelines
// into Θ(n·k) for bounded-density placements.
//
// Determinism contract: Within returns node IDs in ascending order, the
// same order a naive `for v := range pos` scan visits them. Callers that
// draw from a seeded PRNG per candidate (the simulator's drop/dup/jitter
// draws) therefore consume randomness in exactly the same sequence as the
// naive scan, so seeded results are byte-identical.
//
// Exactness contract: Within(p, r) returns every indexed id whose
// position q satisfies Dist2(p, q) ≤ r². Callers that must reproduce a
// legacy floating-point predicate exactly (e.g. `Dist(p, q) ≤ r` computed
// via math.Hypot) should query with a slightly widened radius and re-apply
// their own predicate to the returned superset; the widening only costs a
// few extra candidates.
package spatial

import (
	"fmt"
	"math"
	"sort"

	"cbtc/internal/geom"
)

// QuerySlack is the relative widening callers apply to a query radius
// when they re-check candidates with their own (hypot-based or
// tolerance-carrying) predicate. It comfortably covers the 1e-12-scale
// relative tolerances used throughout the system while keeping the
// candidate superset tight.
const QuerySlack = 1e-9

// Grid is a uniform-cell spatial index over node positions. Cell size is
// chosen at construction — pass the dominant query radius (the radio
// model's R) so a radius-R query touches at most 9 cells.
//
// A Grid is safe for concurrent readers (Within/AppendWithin/Position);
// mutations (Add/Remove/Move/Rebuild) must not race with reads.
type Grid struct {
	cell  float64
	pts   []geom.Point // position per id (last known, even if removed)
	in    []bool       // in[id]: id is currently indexed
	cells map[cellKey][]int
	count int
}

// cellKey packs the two cell coordinates into one int64 so lookups use
// the runtime's fast integer-key map path. Coordinates beyond ±2³¹ wrap
// and may alias another cell's bucket; the exact distance filter applied
// to every candidate keeps results correct regardless — aliasing only
// costs a few extra distance checks on absurdly distant placements.
type cellKey int64

func packKey(cx, cy int64) cellKey {
	return cellKey(int64(uint64(uint32(cx))<<32 | uint64(uint32(cy))))
}

// New builds a grid over the placement with the given cell size. Every
// finite position is indexed; non-finite positions (which no distance
// predicate can match) are stored but never returned. It panics on a
// non-positive or non-finite cell size: the cell comes from a validated
// radio model and an invalid value is a programming error.
func New(pts []geom.Point, cell float64) *Grid {
	if !(cell > 0) || math.IsInf(cell, 0) {
		panic(fmt.Sprintf("spatial: invalid cell size %v", cell))
	}
	g := &Grid{cell: cell}
	g.Rebuild(pts)
	return g
}

// Rebuild re-indexes the grid over a new placement, discarding all
// previous state but keeping the cell size.
func (g *Grid) Rebuild(pts []geom.Point) {
	g.pts = append(g.pts[:0], pts...)
	g.in = make([]bool, len(pts))
	g.cells = make(map[cellKey][]int, len(pts))
	g.count = 0
	for id, p := range g.pts {
		if finite(p) {
			g.insert(id, p)
		}
	}
}

// Len returns the number of currently indexed points.
func (g *Grid) Len() int { return g.count }

// Cap returns the size of the id space (indexed or not).
func (g *Grid) Cap() int { return len(g.pts) }

// Has reports whether id is currently indexed.
func (g *Grid) Has(id int) bool { return id >= 0 && id < len(g.in) && g.in[id] }

// Position returns the last position recorded for id.
func (g *Grid) Position(id int) geom.Point { return g.pts[id] }

// Add indexes id at p. The id must either extend the id space by exactly
// one (id == Cap(), the append case used by Sim.AddNode and Session.Join)
// or name an existing un-indexed slot (a re-join). Adding an id that is
// already indexed panics.
func (g *Grid) Add(id int, p geom.Point) {
	switch {
	case id == len(g.pts):
		g.pts = append(g.pts, p)
		g.in = append(g.in, false)
	case id >= 0 && id < len(g.pts):
		if g.in[id] {
			panic(fmt.Sprintf("spatial: node %d already indexed", id))
		}
		g.pts[id] = p
	default:
		panic(fmt.Sprintf("spatial: Add id %d out of range [0, %d]", id, len(g.pts)))
	}
	if finite(p) {
		g.insert(id, p)
	}
}

// Remove un-indexes id (a departed node). Removing an id that is not
// indexed is a no-op, matching the idempotence of §4 leave events.
func (g *Grid) Remove(id int) {
	if id < 0 || id >= len(g.in) || !g.in[id] {
		return
	}
	g.remove(id, g.pts[id])
}

// Move relocates id to p, updating its cell membership incrementally.
func (g *Grid) Move(id int, p geom.Point) {
	if id < 0 || id >= len(g.pts) {
		panic(fmt.Sprintf("spatial: Move id %d out of range [0, %d)", id, len(g.pts)))
	}
	old := g.pts[id]
	if g.in[id] {
		if finite(p) && g.key(old) == g.key(p) {
			g.pts[id] = p
			return
		}
		g.remove(id, old)
	}
	g.pts[id] = p
	if finite(p) {
		g.insert(id, p)
	}
}

// Within returns the ids of all indexed points q with Dist2(p, q) ≤ r²,
// in ascending id order. A zero radius is a coincident-point lookup
// (Dist2 ≤ 0 admits exact matches, like the naive scan); a negative or
// NaN radius or a non-finite query point yields no results.
func (g *Grid) Within(p geom.Point, r float64) []int {
	return g.AppendWithin(nil, p, r)
}

// AppendWithin is Within with caller-supplied result storage, for
// allocation-free queries on hot paths. Results are appended to dst and
// the extended slice returned; the appended ids are in ascending order
// (dst's existing contents are untouched).
func (g *Grid) AppendWithin(dst []int, p geom.Point, r float64) []int {
	start := len(dst)
	dst = g.AppendWithinUnordered(dst, p, r)
	sort.Ints(dst[start:])
	return dst
}

// AppendWithinUnordered is AppendWithin without the final ascending-id
// sort: ids arrive grouped by cell in unspecified cell order. It exists
// for callers that impose their own total order on the result anyway
// (the oracle re-sorts candidates by distance), where the id sort would
// be pure overhead. Callers relying on the naive-scan draw order must
// use Within/AppendWithin instead.
func (g *Grid) AppendWithinUnordered(dst []int, p geom.Point, r float64) []int {
	if !(r >= 0) || !finite(p) || g.count == 0 {
		return dst
	}
	r2 := r * r
	if math.IsInf(r, 1) {
		// Everything matches; avoid the implementation-defined ±Inf → int
		// cell-coordinate conversion entirely.
		for _, ids := range g.cells {
			dst = g.filterCell(dst, ids, p, r2)
		}
		return dst
	}
	cxMin := g.coord(p.X - r)
	cxMax := g.coord(p.X + r)
	cyMin := g.coord(p.Y - r)
	cyMax := g.coord(p.Y + r)

	// For huge radii the cell range can dwarf the number of occupied
	// cells; iterating the map is then strictly cheaper. The exact
	// distance filter makes both paths return the same set. The map-scan
	// range test works modulo 2³² (matching packKey's truncation), so it
	// never wrongly excludes a wrapped cell.
	nx, ny := cxMax-cxMin+1, cyMax-cyMin+1
	if nx <= 0 || ny <= 0 || nx > int64(len(g.cells))+1 || ny > int64(len(g.cells))+1 || nx*ny > int64(len(g.cells)) {
		spanX, spanY := uint64(cxMax-cxMin), uint64(cyMax-cyMin)
		wideX := nx <= 0 || spanX >= 1<<32
		wideY := ny <= 0 || spanY >= 1<<32
		for key, ids := range g.cells {
			kx := uint32(uint64(key) >> 32)
			ky := uint32(uint64(key))
			if !wideX && kx-uint32(cxMin) > uint32(spanX) {
				continue
			}
			if !wideY && ky-uint32(cyMin) > uint32(spanY) {
				continue
			}
			dst = g.filterCell(dst, ids, p, r2)
		}
	} else {
		for cx := cxMin; cx <= cxMax; cx++ {
			for cy := cyMin; cy <= cyMax; cy++ {
				if ids, ok := g.cells[packKey(cx, cy)]; ok {
					dst = g.filterCell(dst, ids, p, r2)
				}
			}
		}
	}
	return dst
}

func (g *Grid) filterCell(dst []int, ids []int, p geom.Point, r2 float64) []int {
	for _, id := range ids {
		if p.Dist2(g.pts[id]) <= r2 {
			dst = append(dst, id)
		}
	}
	return dst
}

func (g *Grid) coord(x float64) int64 {
	return int64(math.Floor(x / g.cell))
}

func (g *Grid) key(p geom.Point) cellKey {
	return packKey(g.coord(p.X), g.coord(p.Y))
}

func (g *Grid) insert(id int, p geom.Point) {
	k := g.key(p)
	ids := g.cells[k]
	i := sort.SearchInts(ids, id)
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	g.cells[k] = ids
	g.in[id] = true
	g.count++
}

func (g *Grid) remove(id int, p geom.Point) {
	k := g.key(p)
	ids := g.cells[k]
	i := sort.SearchInts(ids, id)
	if i < len(ids) && ids[i] == id {
		ids = append(ids[:i], ids[i+1:]...)
		if len(ids) == 0 {
			delete(g.cells, k)
		} else {
			g.cells[k] = ids
		}
	}
	g.in[id] = false
	g.count--
}

func finite(p geom.Point) bool {
	return !math.IsNaN(p.X) && !math.IsNaN(p.Y) && !math.IsInf(p.X, 0) && !math.IsInf(p.Y, 0)
}
