package spatial

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"

	"cbtc/internal/geom"
)

func naiveWithin(pts []geom.Point, in []bool, p geom.Point, r float64) []int {
	out := []int{}
	for v, q := range pts {
		if in != nil && !in[v] {
			continue
		}
		if p.Dist2(q) <= r*r {
			out = append(out, v)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randomPts(rng *rand.Rand, n int, w, h float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*w-w/4, rng.Float64()*h-h/4)
	}
	return pts
}

func TestWithinMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(200)
		cell := 10 + rng.Float64()*200
		pts := randomPts(rng, n, 1000, 1000)
		g := New(pts, cell)
		for q := 0; q < 20; q++ {
			p := geom.Pt(rng.Float64()*1200-300, rng.Float64()*1200-300)
			r := rng.Float64() * 400
			got := g.Within(p, r)
			want := naiveWithin(pts, nil, p, r)
			if !equalInts(got, want) {
				t.Fatalf("trial %d query %d: Within(%v, %v) = %v, want %v", trial, q, p, r, got, want)
			}
			if !sort.IntsAreSorted(got) {
				t.Fatalf("Within result not ascending: %v", got)
			}
		}
	}
}

func TestWithinExactBoundary(t *testing.T) {
	// A point at distance exactly r must be included (≤, not <).
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 4), geom.Pt(5.0000001, 0)}
	g := New(pts, 5)
	got := g.Within(geom.Pt(0, 0), 5)
	if !equalInts(got, []int{0, 1}) {
		t.Fatalf("boundary query = %v, want [0 1]", got)
	}
}

func TestDynamicOpsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	pts := randomPts(rng, 60, 800, 800)
	g := New(pts, 120)
	in := make([]bool, len(pts))
	for i := range in {
		in[i] = true
	}
	cur := append([]geom.Point(nil), pts...)

	check := func(step int) {
		p := geom.Pt(rng.Float64()*800, rng.Float64()*800)
		r := 50 + rng.Float64()*300
		got := g.Within(p, r)
		want := naiveWithin(cur, in, p, r)
		if !equalInts(got, want) {
			t.Fatalf("step %d: Within = %v, want %v", step, got, want)
		}
	}

	for step := 0; step < 500; step++ {
		switch op := rng.IntN(4); {
		case op == 0: // join (append)
			p := geom.Pt(rng.Float64()*800, rng.Float64()*800)
			g.Add(len(cur), p)
			cur = append(cur, p)
			in = append(in, true)
		case op == 1: // leave
			id := rng.IntN(len(cur))
			g.Remove(id)
			in[id] = false
		case op == 2: // move (possibly of a removed node's slot via re-add)
			id := rng.IntN(len(cur))
			p := geom.Pt(rng.Float64()*800, rng.Float64()*800)
			if in[id] {
				g.Move(id, p)
				cur[id] = p
			} else {
				g.Add(id, p) // re-join on the departed slot
				cur[id] = p
				in[id] = true
			}
		default: // small in-cell move
			id := rng.IntN(len(cur))
			if in[id] {
				p := geom.Pt(cur[id].X+rng.Float64()*2-1, cur[id].Y+rng.Float64()*2-1)
				g.Move(id, p)
				cur[id] = p
			}
		}
		check(step)
	}

	live := 0
	for _, ok := range in {
		if ok {
			live++
		}
	}
	if g.Len() != live {
		t.Fatalf("Len() = %d, want %d live", g.Len(), live)
	}
	if g.Cap() != len(cur) {
		t.Fatalf("Cap() = %d, want %d", g.Cap(), len(cur))
	}
}

func TestRebuild(t *testing.T) {
	g := New(randomPts(rand.New(rand.NewPCG(5, 6)), 30, 100, 100), 10)
	pts := []geom.Point{geom.Pt(1, 1), geom.Pt(2, 2), geom.Pt(50, 50)}
	g.Rebuild(pts)
	if g.Len() != 3 || g.Cap() != 3 {
		t.Fatalf("after Rebuild: Len=%d Cap=%d, want 3/3", g.Len(), g.Cap())
	}
	if got := g.Within(geom.Pt(0, 0), 5); !equalInts(got, []int{0, 1}) {
		t.Fatalf("post-rebuild query = %v, want [0 1]", got)
	}
}

func TestNonFinitePositions(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(math.NaN(), 0), geom.Pt(math.Inf(1), 3)}
	g := New(pts, 5)
	if g.Len() != 1 {
		t.Fatalf("Len() = %d, want 1 (non-finite points unindexed)", g.Len())
	}
	if got := g.Within(geom.Pt(0, 0), 1e9); !equalInts(got, []int{0}) {
		t.Fatalf("query = %v, want [0]", got)
	}
	if got := g.Within(geom.Pt(math.NaN(), 0), 10); len(got) != 0 {
		t.Fatalf("NaN query = %v, want empty", got)
	}
}

func TestHugeRadiusFallsBackToMapScan(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	pts := randomPts(rng, 100, 500, 500)
	g := New(pts, 50)
	got := g.Within(geom.Pt(0, 0), 1e18)
	if len(got) != 100 {
		t.Fatalf("huge-radius query returned %d ids, want all 100", len(got))
	}
	if !sort.IntsAreSorted(got) {
		t.Fatal("huge-radius result not ascending")
	}
}

func TestZeroAndInfiniteRadius(t *testing.T) {
	pts := []geom.Point{geom.Pt(2, 3), geom.Pt(2, 3), geom.Pt(2.0000001, 3), geom.Pt(80, 80)}
	g := New(pts, 5)
	// r = 0 is a coincident-point lookup: Dist2 ≤ 0 admits exact matches,
	// same as the naive scan's predicate.
	if got := g.Within(geom.Pt(2, 3), 0); !equalInts(got, []int{0, 1}) {
		t.Fatalf("zero-radius query = %v, want [0 1]", got)
	}
	if got := g.Within(geom.Pt(2, 3), math.Inf(1)); !equalInts(got, []int{0, 1, 2, 3}) {
		t.Fatalf("infinite-radius query = %v, want all", got)
	}
	if got := g.Within(geom.Pt(2, 3), -1); len(got) != 0 {
		t.Fatalf("negative-radius query = %v, want empty", got)
	}
	if got := g.Within(geom.Pt(2, 3), math.NaN()); len(got) != 0 {
		t.Fatalf("NaN-radius query = %v, want empty", got)
	}
}

func TestAppendWithinReuse(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(100, 100)}
	g := New(pts, 10)
	buf := make([]int, 0, 8)
	buf = g.AppendWithin(buf, geom.Pt(0, 0), 5)
	if !equalInts(buf, []int{0, 1}) {
		t.Fatalf("first query = %v", buf)
	}
	buf = g.AppendWithin(buf[:0], geom.Pt(100, 100), 5)
	if !equalInts(buf, []int{2}) {
		t.Fatalf("reused query = %v", buf)
	}
}
