package proto

import (
	"testing"

	"cbtc/internal/core"
	"cbtc/internal/geom"
	"cbtc/internal/graph"
	"cbtc/internal/netsim"
	"cbtc/internal/workload"
)

// ndpConfig returns a fast-paced NDP configuration for tests.
func ndpConfig(alpha float64) Config {
	return Config{
		Alpha:        alpha,
		EnableNDP:    true,
		BeaconPeriod: 5,
		LeaveTimeout: 18,
	}
}

// startNDP builds a runtime and runs it until the growing phase has
// finished everywhere (NDP keeps the queue busy, so run to a deadline).
func startNDP(t *testing.T, pos []geom.Point, opts netsim.Options, cfg Config) *Runtime {
	t.Helper()
	rt, err := Start(pos, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.Sim.Run(100)
	for i, n := range rt.Nodes {
		if !n.Finished() {
			t.Fatalf("node %d did not finish the growing phase by t=100", i)
		}
	}
	return rt
}

// survivorsGR returns G_R over the current positions with the crashed
// node's edges removed.
func survivorsGR(rt *Runtime) *graph.Graph {
	pos := make([]geom.Point, rt.Sim.Len())
	for i := range pos {
		pos[i] = rt.Sim.Position(i)
	}
	gr := core.MaxPowerGraph(pos, rt.Sim.Model())
	for u := 0; u < gr.Len(); u++ {
		if rt.Sim.Crashed(u) {
			for _, v := range gr.Neighbors(u) {
				gr.RemoveEdge(u, v)
			}
		}
	}
	return gr
}

func TestCrashTriggersLeaveAndRepair(t *testing.T) {
	m := testModel()
	// A ring with one node in the middle: crashing the middle node must
	// be detected and the ring stays connected.
	pos := workload.Ring(10, 300, 1500, 1500)
	pos = append(pos, geom.Pt(750, 750)) // center node, index 10
	rt := startNDP(t, pos, reliableOpts(m), ndpConfig(core.AlphaConnectivity))

	rt.Sim.ScheduleAt(150, func() { rt.Sim.Crash(10) })
	rt.Sim.Run(400)

	leaves := 0
	for i, n := range rt.Nodes {
		if i == 10 {
			continue
		}
		leaves += n.Leaves
		for _, nb := range n.TableNeighbors() {
			if nb.ID == 10 {
				t.Errorf("node %d still has the crashed node in its table", i)
			}
		}
	}
	if leaves == 0 {
		t.Errorf("no leave events observed after the crash")
	}
	if !graph.SamePartition(survivorsGR(rt), rt.TableGraph()) {
		t.Errorf("survivor topology does not preserve survivor G_R partition")
	}
}

func TestCrashOfCutVertexRegrows(t *testing.T) {
	m := testModel()
	// Two tight clusters bridged by distance: left cluster, a middle
	// relay, right cluster. Crashing the relay partitions G_R, and the
	// table graph must reflect exactly that partition (no phantom edges).
	pos := []geom.Point{
		geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(50, 80), // left
		geom.Pt(450, 0),                                    // relay, index 3
		geom.Pt(800, 0), geom.Pt(900, 0), geom.Pt(850, 80), // right
	}
	rt := startNDP(t, pos, reliableOpts(m), ndpConfig(core.AlphaConnectivity))
	if got := graph.ComponentCount(rt.TableGraph()); got != 1 {
		t.Fatalf("pre-crash components = %d, want 1", got)
	}

	rt.Sim.ScheduleAt(150, func() { rt.Sim.Crash(3) })
	rt.Sim.Run(500)

	if !graph.SamePartition(survivorsGR(rt), rt.TableGraph()) {
		t.Errorf("post-crash partition mismatch")
	}
	if got := graph.ComponentCount(rt.TableGraph()); got != 3 {
		// Two clusters plus the isolated crashed node.
		t.Errorf("post-crash components = %d, want 3", got)
	}
	regrows := 0
	for _, n := range rt.Nodes {
		regrows += n.Regrows
	}
	if regrows == 0 {
		t.Errorf("losing the only bridge must open an α-gap somewhere and trigger a regrow")
	}
}

func TestJoinOfNewNodeViaBeacons(t *testing.T) {
	m := testModel()
	// A pair far from a third node; the third moves into range later.
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(200, 0), geom.Pt(1400, 0)}
	rt := startNDP(t, pos, reliableOpts(m), ndpConfig(core.AlphaConnectivity))

	if rt.TableGraph().HasEdge(0, 2) || rt.TableGraph().HasEdge(1, 2) {
		t.Fatalf("node 2 must start disconnected")
	}
	rt.Sim.ScheduleAt(150, func() { rt.Sim.MoveNode(2, geom.Pt(600, 0)) })
	rt.Sim.Run(400)

	joins := rt.Nodes[0].Joins + rt.Nodes[1].Joins + rt.Nodes[2].Joins
	if joins == 0 {
		t.Errorf("no join events after the move")
	}
	if !graph.SamePartition(survivorsGR(rt), rt.TableGraph()) {
		t.Errorf("post-join partition mismatch: table graph %v components",
			graph.ComponentCount(rt.TableGraph()))
	}
}

func TestAngleChangeDetection(t *testing.T) {
	m := testModel()
	// Node 1 orbits node 0 from east to north: bearing change π/2 with
	// distance fixed, so only aChange events fire.
	pos := []geom.Point{geom.Pt(750, 750), geom.Pt(950, 750), geom.Pt(750, 550)}
	rt := startNDP(t, pos, reliableOpts(m), ndpConfig(core.AlphaConnectivity))

	center := geom.Pt(750, 750)
	for i := 1; i <= 6; i++ {
		step := float64(i) * geom.TwoPi / 24 // 15° per step
		at := 120.0 + 30*float64(i)
		rt.Sim.ScheduleAt(at, func() {
			rt.Sim.MoveNode(1, center.Polar(200, step))
		})
	}
	rt.Sim.Run(600)

	if rt.Nodes[0].AngleChanges == 0 {
		t.Errorf("orbiting neighbor produced no aChange events")
	}
	if !graph.SamePartition(survivorsGR(rt), rt.TableGraph()) {
		t.Errorf("post-orbit partition mismatch")
	}
}

// The §4 beacon-power counterexample, both ways: with the buggy
// shrunk-power beacons the re-joined clusters never reconnect; with the
// correct basic-power rule they do.
func TestBeaconPowerPartitionRejoin(t *testing.T) {
	m := testModel()
	s := workload.NewPartitionScenario(m.MaxRadius)

	run := func(policy BeaconPolicy) *Runtime {
		cfg := ndpConfig(core.AlphaConnectivity)
		cfg.Beacons = policy
		rt := startNDP(t, s.Pos, reliableOpts(m), cfg)
		rt.Sim.ScheduleAt(150, func() {
			moved := s.Moved()
			for i := s.Half; i < len(moved); i++ {
				rt.Sim.MoveNode(i, moved[i])
			}
		})
		rt.Sim.Run(800)
		return rt
	}

	t.Run("buggy shrunk-power beacons stay partitioned", func(t *testing.T) {
		rt := run(BeaconShrunkPower)
		if got := graph.ComponentCount(rt.TableGraph()); got < 2 {
			t.Errorf("components = %d, want ≥ 2 (the §4 failure mode)", got)
		}
		// Ground truth: the clusters ARE in range now.
		if graph.ComponentCount(survivorsGR(rt)) != 1 {
			t.Fatalf("scenario broken: moved G_R must be connected")
		}
	})

	t.Run("correct basic-power beacons reconnect", func(t *testing.T) {
		rt := run(BeaconBasicPower)
		if got := graph.ComponentCount(rt.TableGraph()); got != 1 {
			t.Errorf("components = %d, want 1 after re-join", got)
		}
		if !graph.SamePartition(survivorsGR(rt), rt.TableGraph()) {
			t.Errorf("re-joined partition mismatch")
		}
	})
}

// Under a lossy, jittery, duplicating channel the periodic beacons
// eventually repair every missing discovery: the table graph converges
// to the G_R partition.
func TestLossyChannelConvergesWithNDP(t *testing.T) {
	m := testModel()
	opts := reliableOpts(m)
	opts.DropProb = 0.15
	opts.DupProb = 0.05
	opts.Jitter = 0.5
	opts.Seed = 21

	pos := workload.Uniform(workload.Rand(21), 30, 1200, 1200)
	cfg := ndpConfig(core.AlphaConnectivity)
	rt, err := Start(pos, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.Sim.Run(1500)
	for i, n := range rt.Nodes {
		if !n.Finished() {
			t.Fatalf("node %d never finished growing under loss", i)
		}
	}
	if !graph.SamePartition(survivorsGR(rt), rt.TableGraph()) {
		t.Errorf("lossy-channel topology did not converge to the G_R partition")
	}
	if st := rt.Sim.Stats(); st.Dropped == 0 || st.Duplicated == 0 {
		t.Errorf("channel fault injection had no effect: %+v", st)
	}
}

// Random-waypoint mobility: after motion stops, the topology stabilizes
// to the G_R partition of the final placement — the paper's §4
// stabilization guarantee.
func TestMobilityStabilization(t *testing.T) {
	m := testModel()
	rng := workload.Rand(31)
	pos := workload.Uniform(rng, 20, 1000, 1000)
	trace := workload.RandomWaypointTrace(rng, pos, 1000, 1000, 8, 10, 200)

	rt := startNDP(t, pos, reliableOpts(m), ndpConfig(core.AlphaConnectivity))
	for _, wp := range trace {
		wp := wp
		rt.Sim.ScheduleAt(120+wp.At, func() { rt.Sim.MoveNode(wp.Node, wp.Pos) })
	}
	// Motion ends at t=320; give reconfiguration time to settle.
	rt.Sim.Run(900)

	if !graph.SamePartition(survivorsGR(rt), rt.TableGraph()) {
		t.Errorf("mobile network did not stabilize to the final G_R partition")
	}
	events := 0
	for _, n := range rt.Nodes {
		events += n.Joins + n.Leaves + n.AngleChanges
	}
	if events == 0 {
		t.Errorf("mobility produced no reconfiguration events")
	}
}

// A brand-new node added to a running network (the §4 join case for a
// genuinely new participant, not just a mover): it runs its own growing
// phase, discovers the network, and the topology converges.
func TestRuntimeAddNode(t *testing.T) {
	m := testModel()
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(300, 0), geom.Pt(150, 250)}
	rt := startNDP(t, pos, reliableOpts(m), ndpConfig(core.AlphaConnectivity))

	// Advance to t=150, then add the newcomer between event batches.
	rt.Sim.Run(150)
	newcomer := rt.AddNode(geom.Pt(450, 100))
	rt.Sim.Run(600)

	if !rt.Nodes[newcomer].Finished() {
		t.Fatalf("newcomer never finished its growing phase")
	}
	g := rt.TableGraph()
	if got := graph.ComponentCount(g); got != 1 {
		t.Errorf("network with newcomer must be one component, got %d", got)
	}
	if g.Degree(newcomer) == 0 {
		t.Errorf("newcomer has no links")
	}
	if !graph.SamePartition(survivorsGR(rt), g) {
		t.Errorf("post-join partition mismatch")
	}
}

// Churn stress: a long run with interleaved crashes, moves, and
// additions; after the churn stops, the network stabilizes to the
// ground-truth partition — §4's "if the topology ever stabilizes"
// guarantee under sustained change.
func TestChurnStabilization(t *testing.T) {
	m := testModel()
	pos := workload.Uniform(workload.Rand(51), 25, 1200, 1200)
	rt := startNDP(t, pos, reliableOpts(m), ndpConfig(core.AlphaConnectivity))

	rng := workload.Rand(99)
	at := 120.0
	for i := 0; i < 12; i++ {
		at += 25
		switch i % 3 {
		case 0: // crash a random original node (avoid repeats by offset)
			victim := int(rng.Uint64() % 20)
			rt.Sim.ScheduleAt(at, func() { rt.Sim.Crash(victim) })
		case 1: // move a random node
			mover := 20 + int(rng.Uint64()%5)
			dest := geom.Pt(rng.Float64()*1200, rng.Float64()*1200)
			rt.Sim.ScheduleAt(at, func() {
				if !rt.Sim.Crashed(mover) {
					rt.Sim.MoveNode(mover, dest)
				}
			})
		case 2: // add a newcomer
			p := geom.Pt(rng.Float64()*1200, rng.Float64()*1200)
			rt.Sim.ScheduleAt(at, func() { rt.AddNode(p) })
		}
	}
	// Churn ends at ~420; give several leave timeouts to settle.
	rt.Sim.Run(1000)

	for i, n := range rt.Nodes {
		if !rt.Sim.Crashed(i) && !n.Finished() {
			t.Fatalf("live node %d never finished a growing phase", i)
		}
	}
	if !graph.SamePartition(survivorsGR(rt), rt.TableGraph()) {
		t.Errorf("post-churn topology does not match ground truth")
	}
}
