package proto

import (
	"testing"

	"cbtc/internal/core"
	"cbtc/internal/geom"
	"cbtc/internal/workload"
)

// §5: "CBTC(5π/6) will terminate sooner than CBTC(2π/3) and so expend
// less power during its execution (since p_{u,5π/6} < p_{u,2π/3})."
// Measured as the total transmission energy of the growing phase.
func TestExecutionEnergyLowerAtWiderAlpha(t *testing.T) {
	m := testModel()
	for seed := uint64(0); seed < 5; seed++ {
		pos := workload.Uniform(workload.Rand(seed), 40, 1500, 1500)

		energy := func(alpha float64) float64 {
			_, rt, err := RunCBTC(pos, reliableOpts(m), Config{Alpha: alpha})
			if err != nil {
				t.Fatal(err)
			}
			return rt.Sim.TotalEnergy()
		}
		e56 := energy(core.AlphaConnectivity)
		e23 := energy(core.AlphaAsymmetric)
		if e56 >= e23 {
			t.Errorf("seed %d: growing-phase energy at 5π/6 (%.0f) must be below 2π/3 (%.0f)",
				seed, e56, e23)
		}
	}
}

// Per-node energy accounting is consistent: the total is the sum and
// every broadcaster spent something.
func TestEnergyAccounting(t *testing.T) {
	m := testModel()
	pos := workload.Uniform(workload.Rand(9), 20, 1200, 1200)
	_, rt, err := RunCBTC(pos, reliableOpts(m), Config{Alpha: core.AlphaConnectivity})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for u := range pos {
		e := rt.Sim.Energy(u)
		if e <= 0 {
			t.Errorf("node %d spent no energy despite broadcasting Hellos", u)
		}
		sum += e
	}
	if total := rt.Sim.TotalEnergy(); total != sum {
		t.Errorf("TotalEnergy %v != sum of per-node energies %v", total, sum)
	}
}

// Boundary nodes are the expensive case: the center of a tight 3x3 grid
// closes its cones at low power and stops, while a corner node has an
// empty quadrant and must double all the way to maximum power.
func TestEnergyInteriorVsBoundary(t *testing.T) {
	m := testModel()
	var pos []geom.Point
	for row := 0; row < 3; row++ {
		for col := 0; col < 3; col++ {
			pos = append(pos, geom.Pt(float64(col)*75, float64(row)*75))
		}
	}
	const center, corner = 4, 0
	exec, rt, err := RunCBTC(pos, reliableOpts(m), Config{Alpha: core.AlphaConnectivity})
	if err != nil {
		t.Fatal(err)
	}
	if exec.Nodes[center].Boundary {
		t.Fatalf("grid center must not be a boundary node")
	}
	if !exec.Nodes[corner].Boundary {
		t.Fatalf("grid corner must be a boundary node")
	}
	// The corner's Hello cascade to maximum power dominates; Acks (which
	// every node answers regardless) dilute the gap, so assert 2x.
	eCenter, eCorner := rt.Sim.Energy(center), rt.Sim.Energy(corner)
	if eCenter*2 > eCorner {
		t.Errorf("interior node energy %.0f must be well below boundary node %.0f", eCenter, eCorner)
	}
}
