package proto

import (
	"testing"

	"cbtc/internal/core"
	"cbtc/internal/netsim"
	"cbtc/internal/radio"
	"cbtc/internal/workload"
)

// The pooling contracts of the proto allocation pass: the per-round gap
// test runs entirely in the node's sorted direction scratch (MaxGap's
// normalize-and-sort copy is gone), the phase-end neighbor sort runs in
// a reused buffer, and the Reconfigurator's gap tests reuse its own
// scratch. These tests pin the reductions so they cannot silently erode;
// the benchguard alloc ceilings pin the macro effect on the full sim.

func allocTestNode(t *testing.T) *Node {
	t.Helper()
	m := radio.Default(400)
	pos := workload.Uniform(workload.Rand(21), 30, 900, 900)
	_, rt, err := RunCBTC(pos, netsim.DefaultOptions(m), Config{Alpha: core.AlphaConnectivity})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range rt.Nodes {
		if len(n.discovered) >= 4 {
			return n
		}
	}
	t.Fatal("no node with enough neighbors")
	return nil
}

func TestDirectionsGapTestAllocationFree(t *testing.T) {
	n := allocTestNode(t)
	n.directions() // warm the sorted scratch to steady-state capacity
	if avg := testing.AllocsPerRun(200, func() {
		_ = n.directions()
	}); avg != 0 {
		t.Fatalf("directions() allocates %.1f per call; the sorted scratch should make it 0", avg)
	}
}

func TestPhaseEndNeighborsPooled(t *testing.T) {
	n := allocTestNode(t)
	n.nbrScratch = n.AppendNeighbors(n.nbrScratch[:0]) // warm the buffer
	if avg := testing.AllocsPerRun(200, func() {
		n.nbrScratch = n.AppendNeighbors(n.nbrScratch[:0])
	}); avg != 0 {
		t.Fatalf("AppendNeighbors into a warmed buffer allocates %.1f per call, want 0", avg)
	}
	// The public form pays exactly its output slice.
	if avg := testing.AllocsPerRun(200, func() {
		_ = n.Neighbors()
	}); avg > 1 {
		t.Fatalf("Neighbors() allocates %.1f per call, want ≤ 1", avg)
	}
}

func TestReconfiguratorGapTestAllocationFree(t *testing.T) {
	n := allocTestNode(t)
	rec := core.NewReconfigurator(core.AlphaConnectivity, radio.Default(400), n.Neighbors())
	rec.HasGap() // warm the direction scratch
	if avg := testing.AllocsPerRun(200, func() {
		_ = rec.HasGap()
	}); avg != 0 {
		t.Fatalf("Reconfigurator.HasGap allocates %.1f per call, want 0", avg)
	}
}
