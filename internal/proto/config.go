// Package proto implements the distributed CBTC(α) protocol of the
// paper's Figure 1 on top of the discrete-event simulator: the Hello/Ack
// growing phase, asymmetric-removal notifications (§3.2), and the
// Neighbor Discovery Protocol with join/leave/aChange reconfiguration
// (§4).
//
// The protocol is position-oblivious: nodes act only on the transmission
// power carried in messages, the measured reception power, and the
// measured angle of arrival — exactly the information the paper assumes.
package proto

import (
	"errors"
	"fmt"
	"math"

	"cbtc/internal/geom"
	"cbtc/internal/radio"
)

// ErrBadConfig reports an invalid protocol configuration.
var ErrBadConfig = errors.New("proto: invalid config")

// BeaconPolicy selects the beacon power rule for the NDP (§4).
type BeaconPolicy int

const (
	// BeaconBasicPower is the correct §4 rule: beacon with the power of
	// the BASIC algorithm — enough to reach every node that ever sent a
	// Hello (the reverse edges of E_α), and maximum power for boundary
	// nodes. Guarantees re-joins are observed.
	BeaconBasicPower BeaconPolicy = iota + 1
	// BeaconShrunkPower is the buggy rule §4 warns about: beacon with
	// only the power needed for the shrunk-back neighbor set. Two
	// boundary nodes that shrank and later drift into range never hear
	// each other; the network can stay partitioned forever.
	BeaconShrunkPower
)

// String implements fmt.Stringer.
func (b BeaconPolicy) String() string {
	switch b {
	case BeaconBasicPower:
		return "basic-power"
	case BeaconShrunkPower:
		return "shrunk-power"
	default:
		return fmt.Sprintf("BeaconPolicy(%d)", int(b))
	}
}

// Config parameterizes the distributed protocol.
type Config struct {
	// Alpha is the cone angle.
	Alpha float64
	// P0 is the initial broadcast power p₀ of the growing phase. Zero
	// means MaxPower/1024.
	P0 float64
	// Increase is the power growth schedule; nil means doubling, the
	// paper's suggestion.
	Increase radio.Increase
	// RoundDuration is how long a node waits for Acks after each Hello
	// broadcast. Zero means 2·(latency+jitter)+1, which covers the
	// round trip in the worst case.
	RoundDuration float64
	// AsymRemoval enables the §3.2 notification messages: after
	// finishing, a node tells every Hello sender it did not itself
	// discover to drop the asymmetric edge.
	AsymRemoval bool

	// EnableNDP turns on beaconing and reconfiguration after the growing
	// phase finishes.
	EnableNDP bool
	// BeaconPeriod is the NDP beacon interval. Zero means 10.
	BeaconPeriod float64
	// LeaveTimeout is τ: a neighbor is considered failed when no beacon
	// arrives for this long. Zero means 3.5 beacon periods.
	LeaveTimeout float64
	// AngleThreshold is the bearing change that triggers an aChange
	// event. Zero means 0.15 rad.
	AngleThreshold float64
	// Beacons selects the §4 beacon power rule; zero means
	// BeaconBasicPower (the correct rule).
	Beacons BeaconPolicy
}

// withDefaults returns the config with zero fields resolved against the
// radio model and simulator delays.
func (c Config) withDefaults(m radio.Model, maxDelay float64) Config {
	if c.P0 == 0 {
		c.P0 = m.MaxPower() / 1024
	}
	if c.Increase == nil {
		c.Increase = radio.Doubling()
	}
	if c.RoundDuration == 0 {
		c.RoundDuration = 2*maxDelay + 1
	}
	if c.BeaconPeriod == 0 {
		c.BeaconPeriod = 10
	}
	if c.LeaveTimeout == 0 {
		c.LeaveTimeout = 3.5 * c.BeaconPeriod
	}
	if c.AngleThreshold == 0 {
		c.AngleThreshold = 0.15
	}
	if c.Beacons == 0 {
		c.Beacons = BeaconBasicPower
	}
	return c
}

// Validate checks the resolved configuration.
func (c Config) Validate(m radio.Model) error {
	if math.IsNaN(c.Alpha) || c.Alpha <= 0 || c.Alpha > geom.TwoPi {
		return fmt.Errorf("%w: alpha %v not in (0, 2π]", ErrBadConfig, c.Alpha)
	}
	if c.P0 <= 0 || c.P0 > m.MaxPower() {
		return fmt.Errorf("%w: p0 %v not in (0, max power]", ErrBadConfig, c.P0)
	}
	if c.RoundDuration <= 0 {
		return fmt.Errorf("%w: round duration %v must be > 0", ErrBadConfig, c.RoundDuration)
	}
	if c.BeaconPeriod <= 0 || c.LeaveTimeout <= c.BeaconPeriod {
		return fmt.Errorf("%w: leave timeout %v must exceed beacon period %v",
			ErrBadConfig, c.LeaveTimeout, c.BeaconPeriod)
	}
	return nil
}

// Message payloads. All carry their transmission power implicitly via
// the Delivery envelope; helloMsg repeats it in-band as the paper's
// Figure 1 does, and ackMsg echoes it so late Acks are tagged with the
// round that solicited them.
type (
	helloMsg struct {
		// Power is the broadcast power, included in the message ("the
		// power used to broadcast the message is included").
		Power float64
	}
	ackMsg struct {
		// HelloPower echoes the Hello's power tag.
		HelloPower float64
	}
	removeMsg struct{}
	beaconMsg struct{}
)
