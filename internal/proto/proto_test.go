package proto

import (
	"errors"
	"testing"

	"cbtc/internal/core"
	"cbtc/internal/geom"
	"cbtc/internal/graph"
	"cbtc/internal/netsim"
	"cbtc/internal/radio"
	"cbtc/internal/workload"
)

func testModel() radio.Model { return radio.Default(workload.PaperRadius) }

func reliableOpts(m radio.Model) netsim.Options {
	return netsim.DefaultOptions(m)
}

func TestConfigValidate(t *testing.T) {
	m := testModel()
	good := Config{Alpha: core.AlphaConnectivity}.withDefaults(m, 1)
	if err := good.Validate(m); err != nil {
		t.Fatalf("defaulted config must validate: %v", err)
	}
	bad := good
	bad.Alpha = 0
	if err := bad.Validate(m); !errors.Is(err, ErrBadConfig) {
		t.Errorf("alpha 0: err = %v, want ErrBadConfig", err)
	}
	bad = good
	bad.P0 = 2 * m.MaxPower()
	if err := bad.Validate(m); !errors.Is(err, ErrBadConfig) {
		t.Errorf("p0 > P: err = %v, want ErrBadConfig", err)
	}
	bad = good
	bad.LeaveTimeout = bad.BeaconPeriod / 2
	if err := bad.Validate(m); !errors.Is(err, ErrBadConfig) {
		t.Errorf("timeout < period: err = %v, want ErrBadConfig", err)
	}
}

func TestBeaconPolicyString(t *testing.T) {
	if BeaconBasicPower.String() != "basic-power" || BeaconShrunkPower.String() != "shrunk-power" {
		t.Errorf("unexpected strings: %v %v", BeaconBasicPower, BeaconShrunkPower)
	}
}

func TestRunCBTCRejectsNDP(t *testing.T) {
	m := testModel()
	_, _, err := RunCBTC(workload.Chain(3, 100), reliableOpts(m),
		Config{Alpha: core.AlphaConnectivity, EnableNDP: true})
	if !errors.Is(err, ErrBadConfig) {
		t.Errorf("err = %v, want ErrBadConfig", err)
	}
}

// The distributed protocol under reliable channels discovers a superset
// of the oracle's neighbor sets (the discrete power schedule overshoots
// the minimal power by at most one Increase step), preserves the G_R
// partition, and brackets the oracle's p_{u,α}.
func TestProtocolBracketsOracle(t *testing.T) {
	m := testModel()
	for seed := uint64(0); seed < 6; seed++ {
		pos := workload.Uniform(workload.Rand(seed), 40, 1500, 1500)
		cfg := Config{Alpha: core.AlphaConnectivity}
		exec, _, err := RunCBTC(pos, reliableOpts(m), cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		oracle, err := core.Run(pos, m, core.AlphaConnectivity)
		if err != nil {
			t.Fatal(err)
		}

		for u := range pos {
			po, pp := oracle.Nodes[u].GrowPower, exec.Nodes[u].GrowPower
			if pp < po-1e-6 {
				t.Errorf("seed %d node %d: protocol power %v below oracle %v", seed, u, pp, po)
			}
			if pp > 2*po+1e-6 && pp > m.MaxPower()/1024+1e-6 {
				t.Errorf("seed %d node %d: protocol power %v exceeds 2x oracle %v", seed, u, pp, po)
			}
			oracleIDs := make(map[int]bool)
			for _, nb := range oracle.Nodes[u].Neighbors {
				oracleIDs[nb.ID] = true
			}
			protoIDs := make(map[int]bool)
			for _, nb := range exec.Nodes[u].Neighbors {
				protoIDs[nb.ID] = true
			}
			for id := range oracleIDs {
				if !protoIDs[id] {
					t.Errorf("seed %d node %d: oracle neighbor %d missing from protocol", seed, u, id)
				}
			}
			if oracle.Nodes[u].Boundary != exec.Nodes[u].Boundary {
				t.Errorf("seed %d node %d: boundary flag mismatch", seed, u)
			}
		}

		gr := core.MaxPowerGraph(pos, m)
		if !graph.SamePartition(gr, exec.Nalpha().SymmetricClosure()) {
			t.Errorf("seed %d: distributed G_α changed the partition", seed)
		}
	}
}

// With a fine-grained power schedule the protocol's powers converge to
// the oracle's minimal powers.
func TestFineScheduleApproachesOracle(t *testing.T) {
	m := testModel()
	pos := workload.Uniform(workload.Rand(3), 35, 1500, 1500)
	inc, err := radio.Multiplicative(1.05)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Alpha: core.AlphaConnectivity, Increase: inc}
	exec, _, err := RunCBTC(pos, reliableOpts(m), cfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := core.Run(pos, m, core.AlphaConnectivity)
	if err != nil {
		t.Fatal(err)
	}
	for u := range pos {
		po, pp := oracle.Nodes[u].GrowPower, exec.Nodes[u].GrowPower
		if pp > 1.05*po+1e-6 && pp > m.MaxPower()/1024*1.05 {
			t.Errorf("node %d: fine-schedule power %v not within 5%% of oracle %v", u, pp, po)
		}
	}
}

// Distance and bearing estimates from (tx, rx) match the true geometry
// under a noiseless channel.
func TestProtocolEstimatesMatchGeometry(t *testing.T) {
	m := testModel()
	pos := workload.Uniform(workload.Rand(7), 25, 1200, 1200)
	exec, _, err := RunCBTC(pos, reliableOpts(m), Config{Alpha: core.AlphaConnectivity})
	if err != nil {
		t.Fatal(err)
	}
	for u := range pos {
		for _, nb := range exec.Nodes[u].Neighbors {
			trueDist := pos[u].Dist(pos[nb.ID])
			if !almostEq(nb.Dist, trueDist, 1e-6*trueDist) {
				t.Errorf("node %d -> %d: estimated dist %v, true %v", u, nb.ID, nb.Dist, trueDist)
			}
			trueDir := pos[u].Bearing(pos[nb.ID])
			if geom.AngularDist(nb.Dir, trueDir) > 1e-9 {
				t.Errorf("node %d -> %d: bearing %v, true %v", u, nb.ID, nb.Dir, trueDir)
			}
		}
	}
}

// The asymmetric-removal notification protocol produces exactly the
// mutual subgraph E⁻_α.
func TestAsymmetricNoticesMatchMutualSubgraph(t *testing.T) {
	m := testModel()
	for seed := uint64(0); seed < 5; seed++ {
		pos := workload.Uniform(workload.Rand(seed), 35, 1500, 1500)
		cfg := Config{Alpha: core.AlphaAsymmetric, AsymRemoval: true}
		exec, rt, err := RunCBTC(pos, reliableOpts(m), cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fromNotices := rt.AsymDigraph().SymmetricClosure()
		mutual := exec.Nalpha().MutualSubgraph()
		if !fromNotices.Equal(mutual) {
			t.Errorf("seed %d: notice-based E⁻_α differs from mutual subgraph", seed)
		}
		gr := core.MaxPowerGraph(pos, m)
		if !graph.SamePartition(gr, mutual) {
			t.Errorf("seed %d: distributed E⁻_α changed the partition", seed)
		}
	}
}

// All core optimization stacks apply unchanged to a distributed
// execution.
func TestOptimizationsOnDistributedExecution(t *testing.T) {
	m := testModel()
	pos := workload.Uniform(workload.Rand(11), 50, 1500, 1500)
	exec, _, err := RunCBTC(pos, reliableOpts(m), Config{Alpha: core.AlphaConnectivity})
	if err != nil {
		t.Fatal(err)
	}
	gr := core.MaxPowerGraph(pos, m)
	topo, err := core.BuildTopology(exec, core.Options{ShrinkBack: true, PairwiseRemoval: true})
	if err != nil {
		t.Fatal(err)
	}
	if !graph.SamePartition(gr, topo.G) {
		t.Errorf("all-ops stack on the distributed execution broke connectivity")
	}
}

func almostEq(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
