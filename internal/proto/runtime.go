package proto

import (
	"context"
	"errors"
	"fmt"

	"cbtc/internal/core"
	"cbtc/internal/geom"
	"cbtc/internal/graph"
	"cbtc/internal/netsim"
)

// Runtime couples a simulator with the protocol nodes installed on it,
// and converts protocol state into the core package's artifacts so the
// same analyses apply to distributed runs and oracle runs.
type Runtime struct {
	Sim   *netsim.Sim
	Nodes []*Node
	cfg   Config
}

// Start builds a simulator over the placement, installs a protocol node
// everywhere, and returns the runtime without running it. Callers script
// scenarios via rt.Sim and then call Run/RunUntilQuiet.
func Start(pos []geom.Point, simOpts netsim.Options, cfg Config) (*Runtime, error) {
	sim, err := netsim.New(pos, simOpts)
	if err != nil {
		return nil, err
	}
	// Node-side defaults derive from the nominal hardware curve: protocol
	// logic never sees per-link channel effects.
	cfg = cfg.withDefaults(simOpts.Model.Nominal(), simOpts.MaxDelay())
	if err := cfg.Validate(simOpts.Model.Nominal()); err != nil {
		return nil, err
	}
	nodes := make([]*Node, len(pos))
	for i := range pos {
		nodes[i] = NewNode(cfg)
		sim.SetProcess(i, nodes[i])
	}
	return &Runtime{Sim: sim, Nodes: nodes, cfg: cfg}, nil
}

// RunCBTC executes the full growing phase on a static network and
// returns the resulting Execution. The configuration must have NDP
// disabled (otherwise beacons keep the event queue busy forever; script
// those scenarios through Start and Sim.Run instead).
func RunCBTC(pos []geom.Point, simOpts netsim.Options, cfg Config) (*core.Execution, *Runtime, error) {
	return RunCBTCContext(context.Background(), pos, simOpts, cfg)
}

// RunCBTCContext is RunCBTC with cooperative cancellation: the context
// is polled between simulator events, and an ended context aborts the
// run with ctx.Err().
func RunCBTCContext(ctx context.Context, pos []geom.Point, simOpts netsim.Options, cfg Config) (*core.Execution, *Runtime, error) {
	if cfg.EnableNDP {
		return nil, nil, fmt.Errorf("%w: RunCBTC requires NDP disabled", ErrBadConfig)
	}
	rt, err := Start(pos, simOpts, cfg)
	if err != nil {
		return nil, nil, err
	}
	if ctx.Done() != nil {
		rt.Sim.SetInterrupt(func() bool { return ctx.Err() != nil })
	}
	// Generous convergence budget: rounds × duration plus message slack.
	limit := 10000 * (cfg.withDefaults(simOpts.Model.Nominal(), simOpts.MaxDelay()).RoundDuration + simOpts.MaxDelay())
	if err := rt.Sim.RunUntilQuiet(limit); err != nil {
		if errors.Is(err, netsim.ErrInterrupted) && ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
		return nil, nil, fmt.Errorf("proto: growing phase did not converge: %w", err)
	}
	for i, n := range rt.Nodes {
		if !n.Finished() {
			return nil, nil, fmt.Errorf("proto: node %d never finished its growing phase", i)
		}
	}
	// The returned Runtime outlives this call (callers script further
	// scenarios through rt.Sim); do not leave the ctx-bound interrupt
	// armed on it.
	rt.Sim.SetInterrupt(nil)
	return rt.Execution(), rt, nil
}

// AddNode introduces a brand-new protocol node at the given position
// while the simulation is running, as §4's join scenario describes. The
// newcomer runs its own growing phase (discovering whoever Acks) and
// participates in the NDP like everyone else. It returns the new ID.
func (rt *Runtime) AddNode(at geom.Point) int {
	id := rt.Sim.AddNode(at)
	n := NewNode(rt.cfg)
	rt.Nodes = append(rt.Nodes, n)
	rt.Sim.SetProcess(id, n)
	return id
}

// Execution snapshots the protocol state as a core.Execution, so every
// optimization and metric of the core package applies unchanged.
func (rt *Runtime) Execution() *core.Execution {
	e := &core.Execution{
		Alpha: rt.cfg.Alpha,
		Model: rt.Sim.Model(),
		Pos:   make([]geom.Point, rt.Sim.Len()),
		Nodes: make([]core.NodeResult, len(rt.Nodes)),
	}
	for i, n := range rt.Nodes {
		e.Pos[i] = rt.Sim.Position(i)
		e.Nodes[i] = core.NodeResult{
			Neighbors: n.Neighbors(),
			GrowPower: n.GrowPower(),
			Boundary:  n.Boundary(),
		}
	}
	return e
}

// AsymDigraph returns the neighbor relation with the §3.2 removal
// notices applied: N_α(u) minus the senders that told u to drop them.
// Under reliable channels its symmetric closure equals the mutual
// subgraph of N_α.
func (rt *Runtime) AsymDigraph() *graph.Digraph {
	d := graph.NewDigraph(len(rt.Nodes))
	for u, n := range rt.Nodes {
		removed := make(map[int]bool)
		for _, id := range n.RemovedBy() {
			removed[id] = true
		}
		for _, nb := range n.Neighbors() {
			if !removed[nb.ID] {
				d.AddArc(u, nb.ID)
			}
		}
	}
	return d
}

// TableGraph returns the symmetric closure of the current dynamic
// neighbor tables — the live topology during an NDP scenario. Crashed
// nodes contribute no arcs.
func (rt *Runtime) TableGraph() *graph.Graph {
	d := graph.NewDigraph(len(rt.Nodes))
	for u, n := range rt.Nodes {
		if rt.Sim.Crashed(u) {
			continue
		}
		for _, nb := range n.TableNeighbors() {
			if nb.ID < rt.Sim.Len() && !rt.Sim.Crashed(nb.ID) {
				d.AddArc(u, nb.ID)
			}
		}
	}
	return d.SymmetricClosure()
}
