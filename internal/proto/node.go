package proto

import (
	"math"
	"slices"
	"sort"

	"cbtc/internal/core"
	"cbtc/internal/geom"
	"cbtc/internal/netsim"
)

// Timer kinds.
const (
	timerRound = iota + 1 // growing-phase round deadline
	timerBeacon
	timerLeaveScan
)

// Node is the per-node protocol state machine: the CBTC(α) growing
// phase, the always-on Ack responder, asymmetric-removal notifications,
// and (optionally) the NDP with reconfiguration.
type Node struct {
	cfg Config

	// Growing phase.
	growing    bool
	power      float64 // current broadcast power
	round      int     // growing rounds executed (across regrows)
	finished   bool    // at least one growing phase completed
	boundary   bool
	growPower  float64 // p_{u,α} of the most recent completed phase
	discovered map[int]core.Discovery

	// Ack bookkeeping: nodes we Acked and the power needed to reach them
	// (these are exactly the reverse edges of E_α under reliable
	// channels: every Hello sender discovers us through our Ack).
	ackedTo map[int]float64

	// Asymmetric-removal notices received: neighbors to exclude when the
	// runtime constructs E⁻_α.
	removed map[int]bool

	// NDP state.
	reconf    *core.Reconfigurator
	lastHeard map[int]float64
	lastDir   map[int]float64

	// dirs is the reusable buffer behind directions(): the per-round gap
	// test is the hottest per-node path of the growing phase, and a fresh
	// slice per round was its dominant allocation. It is maintained
	// sorted (InsertSorted), so the gap test runs on HasGapSorted and
	// never takes MaxGap's per-call sort copy.
	dirs []float64
	// nbrScratch and idScratch are the phase-end buffers: the sorted
	// neighbor list handed to the Reconfigurator and the sorted Acked-id
	// list for asymmetric-removal notices, reused across regrows.
	nbrScratch []core.Discovery
	idScratch  []int

	// Events observed, for tests and reporting.
	Joins, Leaves, AngleChanges, Regrows int
}

// NewNode returns a protocol instance for one simulated node. The same
// config must be used for every node of a network.
func NewNode(cfg Config) *Node {
	return &Node{
		cfg:        cfg,
		discovered: make(map[int]core.Discovery),
		ackedTo:    make(map[int]float64),
		removed:    make(map[int]bool),
		lastHeard:  make(map[int]float64),
		lastDir:    make(map[int]float64),
	}
}

// Init starts the growing phase.
func (n *Node) Init(ctx *netsim.Context) {
	n.startGrowing(ctx, n.cfg.P0)
}

func (n *Node) startGrowing(ctx *netsim.Context, from float64) {
	n.growing = true
	n.power = math.Min(from, ctx.Model().MaxPower())
	n.broadcastHello(ctx)
}

func (n *Node) broadcastHello(ctx *netsim.Context) {
	n.round++
	ctx.Broadcast(n.power, helloMsg{Power: n.power})
	ctx.SetTimer(n.cfg.RoundDuration, timerRound, n.power)
}

// Recv dispatches on message type.
func (n *Node) Recv(ctx *netsim.Context, d netsim.Delivery) {
	switch msg := d.Payload.(type) {
	case helloMsg:
		n.onHello(ctx, d, msg)
	case ackMsg:
		n.onAck(ctx, d, msg)
	case removeMsg:
		n.removed[d.From] = true
	case beaconMsg:
		n.onBeacon(ctx, d)
	}
}

// onHello answers every Hello with an Ack transmitted with exactly the
// power needed to reach the sender, estimated from the transmission and
// reception powers (the paper's §2 assumption).
func (n *Node) onHello(ctx *netsim.Context, d netsim.Delivery, msg helloMsg) {
	needed := ctx.Model().NeededPower(msg.Power, d.RxPower)
	n.ackedTo[d.From] = needed
	ctx.Unicast(d.From, needed, ackMsg{HelloPower: msg.Power})

	// A finished node under asymmetric removal immediately tells Hello
	// senders it never discovered to drop the asymmetric edge.
	if n.cfg.AsymRemoval && n.finished && !n.growing {
		if _, ok := n.discovered[d.From]; !ok {
			ctx.Unicast(d.From, needed, removeMsg{})
		}
	}
}

// onAck records a discovery: the Ack's transmission power is what the
// neighbor needs to reach us; by channel symmetry it is also what we
// need to reach the neighbor. The discovery is tagged with the power of
// the Hello round that solicited it, as the shrink-back optimization
// requires.
func (n *Node) onAck(ctx *netsim.Context, d netsim.Delivery, msg ackMsg) {
	if _, ok := n.discovered[d.From]; ok {
		return // duplicate (channel duplication or a re-grow round)
	}
	needed := ctx.Model().NeededPower(d.TxPower, d.RxPower)
	disc := core.Discovery{
		ID:    d.From,
		Dist:  ctx.Model().EstimateDistance(d.TxPower, d.RxPower),
		Dir:   d.Bearing,
		Power: msg.HelloPower,
	}
	_ = needed // needed == PowerFor(disc.Dist); kept for clarity
	n.discovered[d.From] = disc
	if n.reconf != nil {
		n.reconf.Join(disc)
		// Track liveness from now on, or the leave scanner would never
		// notice this neighbor failing before its first beacon.
		n.lastHeard[d.From] = ctx.Now()
		n.lastDir[d.From] = d.Bearing
	}
}

// Timer dispatches on timer kind. Round timers carry the power of the
// round that armed them.
func (n *Node) Timer(ctx *netsim.Context, kind int, v float64) {
	switch kind {
	case timerRound:
		n.onRoundEnd(ctx, v)
	case timerBeacon:
		n.onBeaconTimer(ctx)
	case timerLeaveScan:
		n.onLeaveScan(ctx)
	}
}

// onRoundEnd evaluates the gap-α test over everything discovered so far
// and either grows the power or terminates the phase (Figure 1's while
// loop condition).
func (n *Node) onRoundEnd(ctx *netsim.Context, roundPower float64) {
	if !n.growing || roundPower != n.power {
		return // stale timer from an earlier round
	}
	maxPower := ctx.Model().MaxPower()
	if geom.HasGapSorted(n.directions(), n.cfg.Alpha) && n.power < maxPower {
		n.power = math.Min(n.cfg.Increase(n.power), maxPower)
		n.broadcastHello(ctx)
		return
	}
	n.finishGrowing(ctx)
}

func (n *Node) finishGrowing(ctx *netsim.Context) {
	n.growing = false
	firstFinish := !n.finished
	n.finished = true
	n.growPower = n.power
	n.boundary = geom.HasGapSorted(n.directions(), n.cfg.Alpha)

	if n.cfg.AsymRemoval {
		// Tell every Hello sender we did not discover to drop the
		// asymmetric edge (§3.2), in ascending id order: map iteration
		// would make the unicast emission order — and with it the
		// simulator's event history — depend on map layout.
		n.idScratch = n.idScratch[:0]
		for v := range n.ackedTo {
			n.idScratch = append(n.idScratch, v)
		}
		sort.Ints(n.idScratch)
		for _, v := range n.idScratch {
			if _, ok := n.discovered[v]; !ok {
				ctx.Unicast(v, n.ackedTo[v], removeMsg{})
			}
		}
	}

	if n.cfg.EnableNDP && firstFinish {
		// The Reconfigurator copies the list, so the phase-end neighbor
		// sort runs in a reused buffer instead of a fresh map dump.
		n.nbrScratch = n.AppendNeighbors(n.nbrScratch[:0])
		n.reconf = core.NewReconfigurator(n.cfg.Alpha, ctx.Model(), n.nbrScratch)
		now := ctx.Now()
		for id := range n.discovered {
			n.lastHeard[id] = now
			n.lastDir[id] = n.discovered[id].Dir
		}
		// Desynchronize beacons across nodes deterministically.
		offset := n.cfg.BeaconPeriod * ctx.Rand().Float64()
		ctx.SetTimer(offset, timerBeacon, 0)
		ctx.SetTimer(n.cfg.BeaconPeriod+offset, timerLeaveScan, 0)
	}
}

// --- NDP ---

func (n *Node) onBeaconTimer(ctx *netsim.Context) {
	ctx.Broadcast(n.beaconPower(ctx), beaconMsg{})
	ctx.SetTimer(n.cfg.BeaconPeriod, timerBeacon, 0)
}

// beaconPower applies the configured §4 rule.
func (n *Node) beaconPower(ctx *netsim.Context) float64 {
	switch n.cfg.Beacons {
	case BeaconShrunkPower:
		// The buggy rule: power for the shrunk-back neighbor set only.
		// ShrinkNeighbors copies its input, so the per-beacon neighbor
		// sort runs in the reused phase-end buffer.
		n.nbrScratch = n.AppendNeighbors(n.nbrScratch[:0])
		shrunk := core.ShrinkNeighbors(n.nbrScratch, n.cfg.Alpha)
		var p float64
		for _, d := range shrunk {
			p = math.Max(p, ctx.Model().PowerFor(d.Dist))
		}
		if p == 0 {
			p = n.cfg.P0
		}
		return p
	default:
		// Correct rule: reach every E_α neighbor (forward edges from the
		// current table, reverse edges from the Hello senders we Acked),
		// and the basic algorithm's power for boundary nodes.
		p := 0.0
		if n.reconf != nil {
			for _, d := range n.reconf.Neighbors() {
				p = math.Max(p, ctx.Model().PowerFor(d.Dist))
			}
		}
		for _, needed := range n.ackedTo {
			p = math.Max(p, needed)
		}
		if n.boundary {
			p = math.Max(p, n.growPower)
		}
		if p == 0 {
			p = n.growPower
		}
		return p
	}
}

// onBeacon processes a neighbor's liveness beacon: join for unknown
// senders, aChange when the bearing moved.
func (n *Node) onBeacon(ctx *netsim.Context, d netsim.Delivery) {
	if n.reconf == nil {
		return // still growing; beacons are handled once NDP starts
	}
	id := d.From
	n.lastHeard[id] = ctx.Now()

	dist := ctx.Model().EstimateDistance(d.TxPower, d.RxPower)
	needed := ctx.Model().NeededPower(d.TxPower, d.RxPower)

	if !n.reconf.Has(id) {
		n.Joins++
		n.lastDir[id] = d.Bearing
		disc := core.Discovery{ID: id, Dist: dist, Dir: d.Bearing, Power: needed}
		n.discovered[id] = disc
		n.reconf.Join(disc)
		return
	}
	if geom.AngularDist(n.lastDir[id], d.Bearing) > n.cfg.AngleThreshold {
		n.AngleChanges++
		n.lastDir[id] = d.Bearing
		if upd, ok := n.discovered[id]; ok {
			upd.Dir = d.Bearing
			upd.Dist = dist
			n.discovered[id] = upd
		}
		if n.reconf.AngleChange(id, d.Bearing) == core.ActionRegrow {
			n.regrow(ctx)
		}
	}
}

// onLeaveScan detects failed neighbors: no beacon for LeaveTimeout.
func (n *Node) onLeaveScan(ctx *netsim.Context) {
	now := ctx.Now()
	var gone []int
	for id, last := range n.lastHeard {
		if now-last > n.cfg.LeaveTimeout {
			gone = append(gone, id)
		}
	}
	sort.Ints(gone) // deterministic processing order
	needRegrow := false
	for _, id := range gone {
		n.Leaves++
		delete(n.lastHeard, id)
		delete(n.lastDir, id)
		delete(n.discovered, id)
		if n.reconf.Leave(id) == core.ActionRegrow {
			needRegrow = true
		}
	}
	if needRegrow {
		n.regrow(ctx)
	}
	ctx.SetTimer(n.cfg.BeaconPeriod, timerLeaveScan, 0)
}

// regrow re-enters the growing phase from p(rad⁻_{u,α}) as §4
// prescribes. The phase runs concurrently with beaconing.
func (n *Node) regrow(ctx *netsim.Context) {
	if n.growing {
		return // already regrowing; the running phase will cover it
	}
	n.Regrows++
	n.startGrowing(ctx, n.reconf.RegrowStartPower())
}

// --- State inspection (used by the runtime and tests) ---

// directions returns the discovered direction set, normalized and
// ascending, in the node's reusable buffer; the result is only valid
// until the next directions call. Sorted maintenance (InsertSorted per
// entry) replaces MaxGap's normalize-and-sort copy per gap test.
func (n *Node) directions() []float64 {
	out := n.dirs[:0]
	for _, d := range n.discovered {
		out = geom.InsertSorted(out, d.Dir)
	}
	n.dirs = out
	return out
}

// AppendNeighbors appends the discovered set to dst (a reused buffer,
// passed as dst[:0] or nil) sorted by (Power, Dist, ID) — the same
// order core uses — and returns the extended slice.
func (n *Node) AppendNeighbors(dst []core.Discovery) []core.Discovery {
	for _, d := range n.discovered {
		dst = append(dst, d)
	}
	slices.SortFunc(dst, func(a, b core.Discovery) int {
		switch {
		case a.Power != b.Power:
			if a.Power < b.Power {
				return -1
			}
			return 1
		case a.Dist != b.Dist:
			if a.Dist < b.Dist {
				return -1
			}
			return 1
		default:
			return a.ID - b.ID
		}
	})
	return dst
}

// Neighbors returns the discovered set sorted by (Power, Dist, ID) as a
// fresh slice.
func (n *Node) Neighbors() []core.Discovery {
	return n.AppendNeighbors(make([]core.Discovery, 0, len(n.discovered)))
}

// TableNeighbors returns the current reconfiguration table (the dynamic
// neighbor set), or the discovered set when NDP is off.
func (n *Node) TableNeighbors() []core.Discovery {
	if n.reconf == nil {
		return n.Neighbors()
	}
	return n.reconf.Neighbors()
}

// Finished reports whether the growing phase has completed at least
// once.
func (n *Node) Finished() bool { return n.finished }

// Rounds returns the number of Hello broadcasts the node has performed
// across all growing phases — the message-complexity figure of the
// algorithm (at most ⌈log(P/p₀)⌉+1 per phase under a doubling schedule).
func (n *Node) Rounds() int { return n.round }

// Boundary reports whether the node finished with an α-gap.
func (n *Node) Boundary() bool { return n.boundary }

// GrowPower returns p_{u,α} of the most recent completed phase.
func (n *Node) GrowPower() float64 { return n.growPower }

// RemovedBy reports the asymmetric-removal notices received.
func (n *Node) RemovedBy() []int {
	out := make([]int, 0, len(n.removed))
	for id := range n.removed {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
