package proto

import (
	"math"
	"testing"

	"cbtc/internal/core"
	"cbtc/internal/graph"
	"cbtc/internal/workload"
)

// Message complexity of the growing phase: each node broadcasts at most
// ⌈log₂(P/p₀)⌉ + 1 Hellos under the doubling schedule, and total
// transmissions are bounded by Hellos plus one Ack per received Hello.
func TestGrowingPhaseMessageComplexity(t *testing.T) {
	m := testModel()
	pos := workload.Uniform(workload.Rand(13), 40, 1500, 1500)
	_, rt, err := RunCBTC(pos, reliableOpts(m), Config{Alpha: core.AlphaConnectivity})
	if err != nil {
		t.Fatal(err)
	}
	maxRounds := int(math.Ceil(math.Log2(1024))) + 1 // p0 = P/1024
	totalRounds := 0
	for i, n := range rt.Nodes {
		if n.Rounds() > maxRounds {
			t.Errorf("node %d used %d rounds, bound is %d", i, n.Rounds(), maxRounds)
		}
		if n.Rounds() < 1 {
			t.Errorf("node %d never broadcast a Hello", i)
		}
		totalRounds += n.Rounds()
	}
	// Sent = Hellos + Acks; Acks ≤ deliveries of Hellos, so Sent is
	// bounded by rounds + delivered (loose but structural).
	st := rt.Sim.Stats()
	if st.Sent < totalRounds {
		t.Errorf("Sent %d below Hello count %d", st.Sent, totalRounds)
	}
	if st.Sent > totalRounds+st.Delivered {
		t.Errorf("Sent %d exceeds Hellos %d + deliveries %d", st.Sent, totalRounds, st.Delivered)
	}
}

// A node whose cones close immediately stops after few rounds; a lone
// boundary node runs the full schedule.
func TestRoundsReflectTermination(t *testing.T) {
	m := testModel()
	// A node at the center of a dense ring closes its cones at the first
	// power level that reaches the ring and stops early.
	ring := workload.Ring(8, 60, 1500, 1500)
	ringAndCenter := append(ring, ring[0].Midpoint(ring[4])) // center of the ring
	_, rt, err := RunCBTC(ringAndCenter, reliableOpts(m), Config{Alpha: core.AlphaConnectivity})
	if err != nil {
		t.Fatal(err)
	}
	centerIdx := len(ringAndCenter) - 1
	maxRounds := int(math.Ceil(math.Log2(1024))) + 1
	if got := rt.Nodes[centerIdx].Rounds(); got >= maxRounds {
		t.Errorf("ring center used %d rounds; must terminate early", got)
	}

	lone := workload.Chain(2, 1400) // two nodes out of range: full schedule
	_, rt2, err := RunCBTC(lone, reliableOpts(m), Config{Alpha: core.AlphaConnectivity})
	if err != nil {
		t.Fatal(err)
	}
	if got := rt2.Nodes[0].Rounds(); got != maxRounds {
		t.Errorf("isolated node used %d rounds, want the full schedule %d", got, maxRounds)
	}
}

// Losing asymmetric-removal notices is safe: the resulting graph lies
// between E⁻_α and E_α and still preserves the partition.
func TestLossyAsymNoticesStaySafe(t *testing.T) {
	m := testModel()
	opts := reliableOpts(m)
	opts.DropProb = 0.3
	opts.Seed = 77
	pos := workload.Uniform(workload.Rand(77), 40, 1500, 1500)
	exec, rt, err := RunCBTC(pos, opts, Config{Alpha: core.AlphaAsymmetric, AsymRemoval: true})
	if err != nil {
		t.Fatal(err)
	}
	gr := core.MaxPowerGraph(pos, m)
	got := rt.AsymDigraph().SymmetricClosure()
	upper := exec.Nalpha().SymmetricClosure()
	if !got.IsSubgraphOf(upper) {
		t.Errorf("notice-derived graph must stay within E_α")
	}
	if !graph.SamePartition(gr, got) {
		t.Errorf("lossy asym removal broke the partition")
	}
}
