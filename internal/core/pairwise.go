package core

import (
	"fmt"
	"math"
	"sort"

	"cbtc/internal/geom"
	"cbtc/internal/graph"
)

// PairwisePolicy selects which redundant edges the pairwise edge removal
// optimization (§3.3) actually deletes. Theorem 3.6 proves that removing
// *all* redundant edges preserves connectivity, so removing any subset is
// sound; the policies differ in the power/throughput trade-off.
type PairwisePolicy int

const (
	// PairwiseLengthFiltered is the paper's practical rule: a node that
	// detects an incident edge as redundant (it is the apex u of
	// Definition 3.5) removes it only when the edge is longer than the
	// longest non-redundant edge incident to that node — shorter
	// redundant edges do not reduce the node's transmission power but do
	// help throughput, so they stay.
	PairwiseLengthFiltered PairwisePolicy = iota + 1
	// PairwiseRemoveAll removes every redundant edge (the setting of
	// Theorem 3.6). Used by the degree-minimization ablation.
	PairwiseRemoveAll
	// PairwiseEitherEndpoint removes a redundant edge when it is longer
	// than the longest non-redundant edge at either endpoint, regardless
	// of which endpoint detected the redundancy. More aggressive than
	// the paper's rule; kept for the ablation.
	PairwiseEitherEndpoint
	// PairwiseBothEndpoints removes a redundant edge only when both
	// endpoints benefit. More conservative than the paper's rule; kept
	// for the ablation.
	PairwiseBothEndpoints
)

// String implements fmt.Stringer.
func (p PairwisePolicy) String() string {
	switch p {
	case PairwiseLengthFiltered:
		return "length-filtered"
	case PairwiseRemoveAll:
		return "remove-all"
	case PairwiseEitherEndpoint:
		return "either-endpoint"
	case PairwiseBothEndpoints:
		return "both-endpoints"
	default:
		return fmt.Sprintf("PairwisePolicy(%d)", int(p))
	}
}

// EdgeID is the paper's lexicographic edge identifier
// eid(u,v) = (d(u,v), max(ID_u, ID_v), min(ID_u, ID_v)). Node indices
// serve as the unique node IDs the optimization requires.
type EdgeID struct {
	Dist  float64
	MaxID int
	MinID int
}

// edgeID computes eid(u,v) for the placement.
func edgeID(pos []geom.Point, u, v int) EdgeID {
	id := EdgeID{Dist: pos[u].Dist(pos[v])}
	if u > v {
		id.MaxID, id.MinID = u, v
	} else {
		id.MaxID, id.MinID = v, u
	}
	return id
}

// Less orders edge IDs lexicographically.
func (a EdgeID) Less(b EdgeID) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	if a.MaxID != b.MaxID {
		return a.MaxID < b.MaxID
	}
	return a.MinID < b.MinID
}

// redundancy records, for every redundant edge, which endpoints detected
// it (served as the apex u of Definition 3.5).
type redundancy struct {
	edges map[graph.Edge]bool
	// list holds the redundant edges in canonical detection order — apex
	// id ascending, then the apex's ascending neighbor row. The removal
	// passes iterate list, never the map, so removal decisions and the
	// reported edge order are order-stable by construction.
	list []graph.Edge
	// atApex[u] holds the neighbors v for which u detected (u,v) as
	// redundant.
	atApex []map[int]bool
}

// redundantEdges evaluates Definition 3.5 over the whole graph: (u,v) is
// redundant if u has another neighbor w with ∠vuw < π/3 and
// eid(u,w) < eid(u,v). The angle comparison is strict (an Eps guard
// keeps exactly-π/3 configurations non-redundant, as the triangle
// argument of the proof requires).
func redundantEdges(g *graph.Graph, pos []geom.Point) redundancy {
	red := redundancy{
		edges:  make(map[graph.Edge]bool),
		atApex: make([]map[int]bool, g.Len()),
	}
	const third = math.Pi / 3
	for u := 0; u < g.Len(); u++ {
		red.atApex[u] = make(map[int]bool)
		nbrs := g.Row(u)
		for _, v32 := range nbrs {
			v := int(v32)
			eidUV := edgeID(pos, u, v)
			for _, w32 := range nbrs {
				w := int(w32)
				if w == v {
					continue
				}
				angle := geom.AngularDist(pos[u].Bearing(pos[v]), pos[u].Bearing(pos[w]))
				if angle < third-geom.Eps && edgeID(pos, u, w).Less(eidUV) {
					e := graph.NewEdge(u, v)
					if !red.edges[e] {
						red.edges[e] = true
						red.list = append(red.list, e)
					}
					red.atApex[u][v] = true
					break
				}
			}
		}
	}
	return red
}

// RedundantEdges returns the set of redundant edges of g under
// Definition 3.5.
func RedundantEdges(g *graph.Graph, pos []geom.Point) map[graph.Edge]bool {
	return redundantEdges(g, pos).edges
}

// PairwiseRemoval applies the pairwise edge removal optimization to the
// symmetric graph g and returns the pruned graph together with the edges
// it removed (sorted canonically, for reporting).
func PairwiseRemoval(g *graph.Graph, pos []geom.Point, policy PairwisePolicy) (*graph.Graph, []graph.Edge) {
	red := redundantEdges(g, pos)
	out := g.Clone()
	var removed []graph.Edge

	if policy == PairwiseRemoveAll {
		for _, e := range red.list {
			out.RemoveEdge(e.U, e.V)
			removed = append(removed, e)
		}
		sortEdges(removed)
		return out, removed
	}

	// Longest non-redundant incident edge per node. A node whose
	// incident edges are all redundant keeps them all (defensive: the
	// theorem implies this cannot happen for non-isolated nodes, but
	// floating-point edge cases must not isolate anyone).
	longestNR := make([]float64, g.Len())
	for u := 0; u < g.Len(); u++ {
		g.EachNeighbor(u, func(v int) {
			if !red.edges[graph.NewEdge(u, v)] {
				if d := pos[u].Dist(pos[v]); d > longestNR[u] {
					longestNR[u] = d
				}
			}
		})
	}
	benefits := func(u int, d float64) bool {
		return longestNR[u] > 0 && d > longestNR[u]
	}
	for _, e := range red.list {
		d := pos[e.U].Dist(pos[e.V])
		var drop bool
		switch policy {
		case PairwiseEitherEndpoint:
			drop = benefits(e.U, d) || benefits(e.V, d)
		case PairwiseBothEndpoints:
			drop = benefits(e.U, d) && benefits(e.V, d)
		default: // PairwiseLengthFiltered: the detecting apex must benefit
			drop = (red.atApex[e.U][e.V] && benefits(e.U, d)) ||
				(red.atApex[e.V][e.U] && benefits(e.V, d))
		}
		if drop {
			out.RemoveEdge(e.U, e.V)
			removed = append(removed, e)
		}
	}
	sortEdges(removed)
	return out, removed
}

func sortEdges(edges []graph.Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
}
