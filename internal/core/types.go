// Package core implements the paper's primary contribution: the
// cone-based topology control algorithm CBTC(α) (§2), its three
// optimizations — shrink-back, asymmetric edge removal, and pairwise
// edge removal (§3) — and the reconfiguration state machine (§4).
//
// The package contains two executors producing the same artifacts:
//
//   - The oracle executor (Run) computes each node's neighbor set under
//     the exact minimal-power semantics of the analysis: p_{u,α} is the
//     smallest power such that every cone of degree α around u contains a
//     reachable node. This matches the setting of Theorems 2.1–3.6 and is
//     what the evaluation harness uses.
//
//   - The distributed executor (package internal/proto) runs the actual
//     Hello/Ack message protocol of Figure 1 over the discrete-event
//     network simulator and produces an identical Execution value, which
//     tests cross-validate against the oracle.
//
// All optimizations are pure transformations over an Execution, so they
// apply uniformly to both executors.
package core

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"cbtc/internal/geom"
	"cbtc/internal/graph"
	"cbtc/internal/radio"
)

// AlphaConnectivity is 5π/6, the tight connectivity bound of the paper:
// CBTC(α) preserves connectivity iff α ≤ 5π/6 (Theorems 2.1 and 2.4).
const AlphaConnectivity = 5 * math.Pi / 6

// AlphaAsymmetric is 2π/3, the largest cone angle for which asymmetric
// edge removal is safe (Theorem 3.2).
const AlphaAsymmetric = 2 * math.Pi / 3

// Sentinel errors returned by the executors and transformations.
var (
	// ErrBadAlpha reports a cone angle outside (0, 2π].
	ErrBadAlpha = errors.New("core: alpha must be in (0, 2π]")
	// ErrAlphaTooLargeForAsym reports an attempt to apply asymmetric edge
	// removal with α > 2π/3, which Theorem 3.2 does not cover and which
	// can disconnect the network (Example 2.1).
	ErrAlphaTooLargeForAsym = errors.New("core: asymmetric edge removal requires alpha ≤ 2π/3")
	// ErrBadInput reports malformed positions or model parameters.
	ErrBadInput = errors.New("core: invalid input")
)

// Discovery records one neighbor found during the growing phase of
// CBTC(α), together with the information the algorithm retains about it.
type Discovery struct {
	// ID is the neighbor's node index.
	ID int
	// Dist is the distance to the neighbor. The oracle stores the true
	// distance; the distributed executor stores the estimate derived from
	// transmission and reception powers (§3.3).
	Dist float64
	// Dir is the bearing from the discovering node to the neighbor,
	// in [0, 2π) — the angle-of-arrival measurement.
	Dir float64
	// Power is the tag required by the shrink-back optimization: the
	// broadcast power of the round that first discovered this neighbor.
	// The oracle uses the exact minimum power p(Dist).
	Power float64
}

// NodeResult is the per-node outcome of the CBTC(α) growing phase.
type NodeResult struct {
	// Neighbors is N_α(u), sorted by (Power, Dist, ID).
	Neighbors []Discovery
	// GrowPower is p_{u,α}: the final broadcast power of the growing
	// phase. Boundary nodes hold the maximum power P. Reconfiguration
	// (§4) needs this value even after shrink-back trims Neighbors: it is
	// the power beacons must use to guarantee re-joins are observed.
	GrowPower float64
	// Boundary reports whether an α-gap remained at maximum power.
	Boundary bool
}

// Directions returns the bearing of every neighbor.
func (nr *NodeResult) Directions() []float64 {
	out := make([]float64, len(nr.Neighbors))
	for i, d := range nr.Neighbors {
		out[i] = d.Dir
	}
	return out
}

// Execution is the complete outcome of running CBTC(α) on a placement:
// everything the optimizations and the evaluation harness consume.
type Execution struct {
	// Alpha is the cone angle the algorithm ran with.
	Alpha float64
	// Model is the nominal power-law radio model in effect (the Nominal()
	// of the propagation model the execution ran under).
	Model radio.Model
	// Pos holds node positions; node i is Pos[i].
	Pos []geom.Point
	// Nodes holds the per-node results; Nodes[i] belongs to node i.
	Nodes []NodeResult
}

// Len returns the number of nodes.
func (e *Execution) Len() int { return len(e.Pos) }

// Nalpha returns the directed neighbor relation
// N_α = {(u,v) : v ∈ N_α(u)}, bulk-built into one packed arena: each
// node's (Power, Dist, ID)-ordered discovery list is re-sorted by id
// into its successor row.
func (e *Execution) Nalpha() *graph.Digraph {
	rows := make([][]int32, e.Len())
	for u := range e.Nodes {
		rows[u] = SuccessorRow(nil, e.Nodes[u].Neighbors)
	}
	return graph.NewDigraphFromRows(rows)
}

// SuccessorRow fills dst (a reused buffer, passed as dst[:0] or nil)
// with the neighbor ids of a discovery list in ascending order — the
// packed-digraph row for that node. Sessions use it to rebuild a
// repaired node's N_α row from its pruned neighbor set.
func SuccessorRow(dst []int32, nbrs []Discovery) []int32 {
	for _, nb := range nbrs {
		dst = append(dst, int32(nb.ID))
	}
	slices.Sort(dst)
	return dst
}

// Clone returns a deep copy of the execution. Transformations return
// fresh executions and never mutate their input.
func (e *Execution) Clone() *Execution {
	c := &Execution{
		Alpha: e.Alpha,
		Model: e.Model,
		Pos:   append([]geom.Point(nil), e.Pos...),
		Nodes: make([]NodeResult, len(e.Nodes)),
	}
	for i, nr := range e.Nodes {
		c.Nodes[i] = NodeResult{
			Neighbors: append([]Discovery(nil), nr.Neighbors...),
			GrowPower: nr.GrowPower,
			Boundary:  nr.Boundary,
		}
	}
	return c
}

func validateAlpha(alpha float64) error {
	if math.IsNaN(alpha) || alpha <= 0 || alpha > geom.TwoPi {
		return fmt.Errorf("%w: got %v", ErrBadAlpha, alpha)
	}
	return nil
}

func validateInput(pos []geom.Point, m radio.Propagation, alpha float64) error {
	if err := validateAlpha(alpha); err != nil {
		return err
	}
	if m == nil {
		return fmt.Errorf("%w: nil propagation model", ErrBadInput)
	}
	if err := m.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	for i, p := range pos {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
			return fmt.Errorf("%w: position %d is not finite: %v", ErrBadInput, i, p)
		}
	}
	return nil
}
