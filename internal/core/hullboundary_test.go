package core

import (
	"testing"

	"cbtc/internal/geom"
	"cbtc/internal/workload"
)

// Convex-hull vertices are an independent geometric oracle for boundary
// nodes: a hull vertex has an empty outward half-plane, so its direction
// set always leaves a gap of at least π > 5π/6 — CBTC must classify it
// as a boundary node no matter how dense the network is.
func TestHullVerticesAreBoundaryNodes(t *testing.T) {
	m := defaultModel()
	for seed := uint64(0); seed < 10; seed++ {
		pos := workload.Uniform(workload.Rand(seed), 100, 1500, 1500)
		exec := mustRun(t, pos, m, AlphaConnectivity)
		for _, v := range geom.ConvexHull(pos) {
			if !exec.Nodes[v].Boundary {
				t.Errorf("seed %d: hull vertex %d not classified as boundary", seed, v)
			}
		}
	}
}

// The converse does not hold in general (an interior node far from its
// neighbors can be a boundary node too), but in a DENSE placement the
// boundary set concentrates near the region border. Sanity-check: in a
// dense network, some interior nodes are non-boundary.
func TestDenseInteriorHasNonBoundaryNodes(t *testing.T) {
	m := defaultModel()
	pos := workload.Uniform(workload.Rand(5), 200, 1500, 1500)
	exec := mustRun(t, pos, m, AlphaConnectivity)
	interior := 0
	for u := range pos {
		if !exec.Nodes[u].Boundary {
			interior++
		}
	}
	if interior == 0 {
		t.Errorf("a 200-node dense network must have interior (non-boundary) nodes")
	}
	hull := geom.ConvexHull(pos)
	boundary := 0
	for _, nr := range exec.Nodes {
		if nr.Boundary {
			boundary++
		}
	}
	if boundary < len(hull) {
		t.Errorf("boundary count %d below hull size %d (hull ⊆ boundary)", boundary, len(hull))
	}
}
