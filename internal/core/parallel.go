package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelChunk is how many consecutive indices a worker claims per grab
// of the shared counter. Large enough that the atomic traffic vanishes
// against per-node work, small enough that uneven node costs (clustered
// placements) still balance across workers.
const parallelChunk = 64

// parallelMinNodes is the index-space size below which ParallelRange
// stays serial even when more workers were requested: goroutine startup
// would cost more than the work it wins.
const parallelMinNodes = 256

// ResolveWorkers normalizes a requested worker count against an index
// space of n items: non-positive means GOMAXPROCS, small inputs stay
// serial, and the pool never exceeds one worker per chunk. The result is
// the number of goroutines ParallelRange will actually use, which callers
// need when sizing per-worker scratch state.
func ResolveWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n < parallelMinNodes {
		return 1
	}
	if max := (n + parallelChunk - 1) / parallelChunk; workers > max {
		workers = max
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ParallelRange invokes fn(w, i) exactly once for every i in [0, n),
// fanned across `workers` goroutines (pass the value from ResolveWorkers;
// 1 runs inline). The worker index w ∈ [0, workers) lets callers give
// each goroutine its own scratch state. Indices are handed out in chunks
// through a shared atomic counter, so uneven per-index costs balance
// automatically; fn must be safe to call concurrently for distinct i.
//
// Cancellation: every worker polls ctx on its own ctxCheckStride of
// processed indices — cancellation latency stays at one stride of
// per-node work regardless of worker count, instead of growing as a
// shared stride would. On cancellation the pool stops early and
// ParallelRange returns ctx.Err(); some fn calls will simply never
// happen, so callers must discard partial output on error.
func ParallelRange(ctx context.Context, n, workers int, fn func(w, i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if i%ctxCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			fn(0, i)
		}
		return nil
	}
	// Small index spaces shrink the chunk so the work still spreads
	// across the pool: callers like session repair hand over a few dozen
	// expensive items, where a full-size chunk would serialize them all
	// onto the first worker.
	chunk := parallelChunk
	if n < workers*parallelChunk {
		chunk = n / (2 * workers)
		if chunk < 1 {
			chunk = 1
		}
	}
	var (
		next atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	poll := ctx.Done() != nil
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			processed := 0
			for {
				if stop.Load() {
					return
				}
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					if poll {
						if processed%ctxCheckStride == 0 && ctx.Err() != nil {
							stop.Store(true)
							return
						}
						processed++
					}
					fn(w, i)
				}
			}
		}(w)
	}
	wg.Wait()
	if stop.Load() {
		return ctx.Err()
	}
	return nil
}
