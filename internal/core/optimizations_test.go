package core

import (
	"errors"
	"math"
	"testing"

	"cbtc/internal/geom"
	"cbtc/internal/graph"
	"cbtc/internal/workload"
)

// --- Theorem 3.1: shrink-back preserves connectivity. ---

func TestShrinkBackPreservesConnectivity(t *testing.T) {
	m := defaultModel()
	for _, alpha := range []float64{AlphaAsymmetric, AlphaConnectivity} {
		for seed := uint64(0); seed < 15; seed++ {
			pos := workload.Uniform(workload.Rand(seed), 70, 1500, 1500)
			gr := MaxPowerGraph(pos, m)
			e := mustRun(t, pos, m, alpha)
			shrunk := ShrinkBack(e)
			gs := shrunk.Nalpha().SymmetricClosure()
			if !graph.SamePartition(gr, gs) {
				t.Errorf("alpha=%.3f seed=%d: G^s_α changed the partition", alpha, seed)
			}
		}
	}
}

func TestShrinkBackNeverGrows(t *testing.T) {
	m := defaultModel()
	for seed := uint64(0); seed < 10; seed++ {
		pos := workload.Uniform(workload.Rand(seed), 70, 1500, 1500)
		e := mustRun(t, pos, m, AlphaConnectivity)
		shrunk := ShrinkBack(e)
		for u := range pos {
			if len(shrunk.Nodes[u].Neighbors) > len(e.Nodes[u].Neighbors) {
				t.Fatalf("seed=%d node=%d: shrink-back added neighbors", seed, u)
			}
			// Kept neighbors are a subset of the discovered ones.
			discovered := make(map[int]bool, len(e.Nodes[u].Neighbors))
			for _, nb := range e.Nodes[u].Neighbors {
				discovered[nb.ID] = true
			}
			for _, nb := range shrunk.Nodes[u].Neighbors {
				if !discovered[nb.ID] {
					t.Fatalf("seed=%d node=%d: shrink-back invented neighbor %d", seed, u, nb.ID)
				}
			}
			// GrowPower is preserved for the §4 beacon rule.
			if shrunk.Nodes[u].GrowPower != e.Nodes[u].GrowPower {
				t.Fatalf("seed=%d node=%d: GrowPower changed", seed, u)
			}
		}
	}
}

func TestShrinkBackPreservesCoverage(t *testing.T) {
	m := defaultModel()
	for seed := uint64(0); seed < 10; seed++ {
		pos := workload.Uniform(workload.Rand(seed), 70, 1500, 1500)
		e := mustRun(t, pos, m, AlphaConnectivity)
		shrunk := ShrinkBack(e)
		for u := range pos {
			before := geom.Coverage(e.Nodes[u].Directions(), e.Alpha)
			after := geom.Coverage(shrunk.Nodes[u].Directions(), e.Alpha)
			if !before.Equal(after, 1e-6) {
				t.Errorf("seed=%d node=%d: coverage changed: %v -> %v", seed, u, before, after)
			}
		}
	}
}

// Interior (non-boundary) nodes cannot shrink: the growing phase stopped
// at the first power level that closed the gap.
func TestShrinkBackOnlyAffectsBoundaryNodes(t *testing.T) {
	m := defaultModel()
	pos := workload.Uniform(workload.Rand(4), 80, 1500, 1500)
	e := mustRun(t, pos, m, AlphaConnectivity)
	shrunk := ShrinkBack(e)
	for u := range pos {
		if !e.Nodes[u].Boundary && len(shrunk.Nodes[u].Neighbors) != len(e.Nodes[u].Neighbors) {
			t.Errorf("interior node %d shrank from %d to %d neighbors",
				u, len(e.Nodes[u].Neighbors), len(shrunk.Nodes[u].Neighbors))
		}
	}
}

// A hand-built boundary node does shrink: neighbors beyond the coverage-
// preserving level are dropped.
func TestShrinkBackDropsUselessFarNeighbor(t *testing.T) {
	m := defaultModel()
	center := geom.Pt(0, 0)
	// Three neighbors clustered in a quarter-plane close by, plus one far
	// node in the same sector: the far node adds no coverage.
	pos := []geom.Point{
		center,
		center.Polar(100, 0),
		center.Polar(110, 0.3),
		center.Polar(120, 0.6),
		center.Polar(450, 0.3), // covered direction, far away
	}
	e := mustRun(t, pos, m, AlphaConnectivity)
	if !e.Nodes[0].Boundary {
		t.Fatalf("node 0 must be a boundary node (three quarters of the plane empty)")
	}
	if len(e.Nodes[0].Neighbors) != 4 {
		t.Fatalf("node 0 must discover all 4 nodes, got %d", len(e.Nodes[0].Neighbors))
	}
	shrunk := ShrinkBack(e)
	for _, nb := range shrunk.Nodes[0].Neighbors {
		if nb.ID == 4 {
			t.Errorf("far neighbor with redundant direction must be shrunk away")
		}
	}
}

// --- Theorem 3.2: asymmetric edge removal preserves connectivity for ---
// --- α ≤ 2π/3 (and is rejected above).                               ---

func TestAsymmetricRemovalPreservesConnectivity(t *testing.T) {
	m := defaultModel()
	for _, alpha := range []float64{math.Pi / 2, AlphaAsymmetric} {
		for seed := uint64(0); seed < 15; seed++ {
			pos := workload.Uniform(workload.Rand(seed), 70, 1500, 1500)
			gr := MaxPowerGraph(pos, m)
			e := mustRun(t, pos, m, alpha)
			topo, err := BuildTopology(e, Options{ShrinkBack: true, AsymmetricRemoval: true})
			if err != nil {
				t.Fatalf("alpha=%.3f seed=%d: %v", alpha, seed, err)
			}
			if !graph.SamePartition(gr, topo.G) {
				t.Errorf("alpha=%.3f seed=%d: E⁻_α changed the partition", alpha, seed)
			}
		}
	}
}

func TestAsymmetricRemovalRejectedAboveTwoThirds(t *testing.T) {
	m := defaultModel()
	pos := workload.Uniform(workload.Rand(1), 20, 1500, 1500)
	e := mustRun(t, pos, m, AlphaConnectivity)
	_, err := BuildTopology(e, Options{AsymmetricRemoval: true})
	if !errors.Is(err, ErrAlphaTooLargeForAsym) {
		t.Errorf("BuildTopology error = %v, want ErrAlphaTooLargeForAsym", err)
	}
}

// On Example 2.1 with α > 2π/3, dropping asymmetric edges would
// disconnect the network — the reason Theorem 3.2 stops at 2π/3.
func TestAsymmetricRemovalWouldBreakExample21(t *testing.T) {
	m := defaultModel()
	alpha := 2*math.Pi/3 + 0.2
	pos, err := workload.Example21(alpha, m.MaxRadius)
	if err != nil {
		t.Fatal(err)
	}
	e := mustRun(t, pos, m, alpha)
	gr := MaxPowerGraph(pos, m)
	mutual := e.Nalpha().MutualSubgraph()
	if graph.SamePartition(gr, mutual) {
		t.Errorf("mutual subgraph must disconnect v on Example 2.1 (this is the counterexample)")
	}
}

// --- Theorem 3.6: pairwise edge removal preserves connectivity. ---

func TestPairwiseRemovalPreservesConnectivity(t *testing.T) {
	m := defaultModel()
	for _, policy := range []PairwisePolicy{PairwiseLengthFiltered, PairwiseRemoveAll} {
		for _, alpha := range []float64{AlphaAsymmetric, AlphaConnectivity} {
			for seed := uint64(0); seed < 15; seed++ {
				pos := workload.Uniform(workload.Rand(seed), 70, 1500, 1500)
				gr := MaxPowerGraph(pos, m)
				e := mustRun(t, pos, m, alpha)
				topo, err := BuildTopology(e, Options{
					ShrinkBack:      true,
					PairwiseRemoval: true,
					PairwisePolicy:  policy,
				})
				if err != nil {
					t.Fatalf("%v alpha=%.3f seed=%d: %v", policy, alpha, seed, err)
				}
				if !graph.SamePartition(gr, topo.G) {
					t.Errorf("%v alpha=%.3f seed=%d: pairwise removal broke connectivity",
						policy, alpha, seed)
				}
			}
		}
	}
}

func TestRedundantEdgesDefinition(t *testing.T) {
	// Triangle with a tight angle at node 0: neighbors 1 and 2 with
	// ∠1,0,2 = π/6 < π/3. The longer edge (0,2) is redundant.
	pos := []geom.Point{
		geom.Pt(0, 0),
		geom.Pt(100, 0).RotateAround(geom.Pt(0, 0), 0),
		geom.Pt(200, 0).RotateAround(geom.Pt(0, 0), math.Pi/6),
	}
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	red := RedundantEdges(g, pos)
	if !red[graph.NewEdge(0, 2)] {
		t.Errorf("(0,2) must be redundant")
	}
	if red[graph.NewEdge(0, 1)] {
		t.Errorf("(0,1) is the shorter edge; must not be redundant")
	}
}

func TestRedundantEdgesWideAngle(t *testing.T) {
	// ∠1,0,2 = π/2 > π/3: nothing is redundant.
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(0, 200)}
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	if red := RedundantEdges(g, pos); len(red) != 0 {
		t.Errorf("no redundancy expected at wide angles, got %v", red)
	}
}

// Equal-length edges: the ID tiebreak makes exactly one of them
// redundant, never both.
func TestRedundantEdgesTiebreak(t *testing.T) {
	pos := []geom.Point{
		geom.Pt(0, 0),
		geom.Pt(100, 0),
		geom.Pt(60, 80), // exactly length 100 (3-4-5), ∠ = acos(0.6) < π/3
	}
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	red := RedundantEdges(g, pos)
	if len(red) != 1 {
		t.Fatalf("exactly one of the equal edges must be redundant, got %v", red)
	}
	// eid tiebreak: (0,2) has maxID 2 > maxID 1 of (0,1), so (0,2) loses.
	if !red[graph.NewEdge(0, 2)] {
		t.Errorf("(0,2) must lose the ID tiebreak, got %v", red)
	}
}

func TestPairwisePolicies(t *testing.T) {
	m := defaultModel()
	pos := workload.Uniform(workload.Rand(9), 100, 1500, 1500)
	e := mustRun(t, pos, m, AlphaConnectivity)
	base, err := BuildTopology(e, Options{ShrinkBack: true})
	if err != nil {
		t.Fatal(err)
	}
	filtered, removedF := PairwiseRemoval(base.G, pos, PairwiseLengthFiltered)
	all, removedA := PairwiseRemoval(base.G, pos, PairwiseRemoveAll)

	if len(removedA) < len(removedF) {
		t.Errorf("remove-all must remove at least as many edges: %d vs %d",
			len(removedA), len(removedF))
	}
	if !all.IsSubgraphOf(filtered) {
		t.Errorf("remove-all result must be a subgraph of the filtered result")
	}
	if !filtered.IsSubgraphOf(base.G) {
		t.Errorf("pairwise removal must only remove edges")
	}
	// Both policies preserve connectivity.
	gr := MaxPowerGraph(pos, m)
	for name, g := range map[string]*graph.Graph{"filtered": filtered, "all": all} {
		if !graph.SamePartition(gr, g) {
			t.Errorf("policy %s broke connectivity", name)
		}
	}
}

// The removal never isolates a node that had neighbors.
func TestPairwiseRemovalNeverIsolates(t *testing.T) {
	m := defaultModel()
	for seed := uint64(0); seed < 10; seed++ {
		pos := workload.Uniform(workload.Rand(seed), 90, 1500, 1500)
		e := mustRun(t, pos, m, AlphaConnectivity)
		topo, err := BuildTopology(e, Options{ShrinkBack: true, PairwiseRemoval: true, PairwisePolicy: PairwiseRemoveAll})
		if err != nil {
			t.Fatal(err)
		}
		before := e.Nalpha().SymmetricClosure()
		for u := 0; u < len(pos); u++ {
			if before.Degree(u) > 0 && topo.G.Degree(u) == 0 {
				t.Errorf("seed=%d: node %d was isolated by pairwise removal", seed, u)
			}
		}
	}
}

func TestPairwisePolicyString(t *testing.T) {
	if PairwiseLengthFiltered.String() != "length-filtered" {
		t.Errorf("unexpected: %v", PairwiseLengthFiltered)
	}
	if PairwiseRemoveAll.String() != "remove-all" {
		t.Errorf("unexpected: %v", PairwiseRemoveAll)
	}
	if got := PairwisePolicy(99).String(); got != "PairwisePolicy(99)" {
		t.Errorf("unexpected: %v", got)
	}
}

// --- Full stacks: the Table 1 configurations all preserve connectivity. ---

func TestAllOptimizationStacksPreserveConnectivity(t *testing.T) {
	m := defaultModel()
	stacks := []struct {
		name  string
		alpha float64
		opts  Options
	}{
		{"basic 5π/6", AlphaConnectivity, Options{}},
		{"basic 2π/3", AlphaAsymmetric, Options{}},
		{"op1 5π/6", AlphaConnectivity, Options{ShrinkBack: true}},
		{"op1 2π/3", AlphaAsymmetric, Options{ShrinkBack: true}},
		{"op1+op2 2π/3", AlphaAsymmetric, Options{ShrinkBack: true, AsymmetricRemoval: true}},
		{"all 5π/6", AlphaConnectivity, Options{ShrinkBack: true, PairwiseRemoval: true}},
		{"all 2π/3", AlphaAsymmetric, Options{ShrinkBack: true, AsymmetricRemoval: true, PairwiseRemoval: true}},
		{"noncontrib 5π/6", AlphaConnectivity, Options{ShrinkBack: true, NonContributing: true}},
	}
	for _, st := range stacks {
		t.Run(st.name, func(t *testing.T) {
			for seed := uint64(100); seed < 110; seed++ {
				pos := workload.Uniform(workload.Rand(seed), 80, 1500, 1500)
				gr := MaxPowerGraph(pos, m)
				e := mustRun(t, pos, m, st.alpha)
				topo, err := BuildTopology(e, st.opts)
				if err != nil {
					t.Fatal(err)
				}
				if !graph.SamePartition(gr, topo.G) {
					t.Errorf("seed=%d: stack broke connectivity", seed)
				}
				if !topo.G.IsSubgraphOf(gr) {
					t.Errorf("seed=%d: topology is not a subgraph of G_R", seed)
				}
			}
		})
	}
}

func TestSummarize(t *testing.T) {
	m := defaultModel()
	pos := workload.Uniform(workload.Rand(8), 100, 1500, 1500)
	e := mustRun(t, pos, m, AlphaConnectivity)
	basic, err := BuildTopology(e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	allOps, err := BuildTopology(e, Options{ShrinkBack: true, PairwiseRemoval: true})
	if err != nil {
		t.Fatal(err)
	}
	sBasic, sAll := basic.Summarize(), allOps.Summarize()
	if sAll.AvgDegree > sBasic.AvgDegree {
		t.Errorf("optimizations must not increase degree: %v > %v", sAll.AvgDegree, sBasic.AvgDegree)
	}
	if sAll.AvgRadius > sBasic.AvgRadius+1e-9 {
		t.Errorf("optimizations must not increase radius: %v > %v", sAll.AvgRadius, sBasic.AvgRadius)
	}
	if sBasic.Edges != basic.G.EdgeCount() {
		t.Errorf("edge count mismatch")
	}
	if sBasic.BoundaryNodes == 0 {
		t.Errorf("a 1500x1500 region with R=500 must produce boundary nodes")
	}
}
