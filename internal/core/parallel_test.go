package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"cbtc/internal/geom"
	"cbtc/internal/radio"
	"cbtc/internal/workload"
)

// parallelTestPlacements returns placements large enough to clear the
// stay-serial floor, in both density regimes.
func parallelTestPlacements() map[string][]geom.Point {
	return map[string][]geom.Point{
		"uniform":   workload.Uniform(workload.Rand(3), 1500, 3000, 3000),
		"clustered": workload.Clustered(workload.Rand(4), 1500, 12, 260, 3000, 3000),
	}
}

// The tentpole determinism contract: RunParallel produces an Execution
// identical to the serial path at every worker count — same neighbors in
// the same order, same powers, same boundary flags, bit for bit.
func TestRunParallelDeterministic(t *testing.T) {
	m := radio.Default(500)
	for name, pos := range parallelTestPlacements() {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			serial, err := RunContext(ctx, pos, m, AlphaConnectivity)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 8, 0} {
				par, err := RunParallel(ctx, pos, m, AlphaConnectivity, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if !reflect.DeepEqual(serial, par) {
					for u := range serial.Nodes {
						if !reflect.DeepEqual(serial.Nodes[u], par.Nodes[u]) {
							t.Fatalf("workers=%d: node %d diverged:\nserial: %+v\npar:    %+v",
								workers, u, serial.Nodes[u], par.Nodes[u])
						}
					}
					t.Fatalf("workers=%d: executions diverged outside Nodes", workers)
				}
			}
			// The naive full-scan reference must agree too.
			naive, err := RunNaive(ctx, pos, m, AlphaConnectivity)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, naive) {
				t.Fatal("serial grid path and naive reference diverged")
			}
		})
	}
}

// MaxPowerGraphParallel must build exactly the serial graph.
func TestMaxPowerGraphParallelEquivalence(t *testing.T) {
	m := radio.Default(500)
	for name, pos := range parallelTestPlacements() {
		t.Run(name, func(t *testing.T) {
			want := MaxPowerGraph(pos, m)
			for _, workers := range []int{1, 3, 8} {
				if got := MaxPowerGraphParallel(pos, m, workers); !got.Equal(want) {
					t.Fatalf("workers=%d: parallel G_R differs from serial", workers)
				}
			}
		})
	}
}

// A context that is already cancelled must abort the pool before any
// meaningful work, at every worker count.
func TestRunParallelPreCancelled(t *testing.T) {
	m := radio.Default(500)
	pos := workload.Uniform(workload.Rand(5), 2000, 3500, 3500)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 8} {
		exec, err := RunParallel(ctx, pos, m, AlphaConnectivity, workers)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: want context.Canceled, got %v", workers, err)
		}
		if exec != nil {
			t.Fatalf("workers=%d: partial execution escaped on cancellation", workers)
		}
	}
}

// Cancellation arriving mid-run must stop a wide worker pool promptly:
// every worker polls ctx on its own stride, so latency is one stride of
// per-node work, not workers × stride. The run must either finish clean
// or report exactly ctx.Err() with no partial output.
func TestRunParallelCancelledMidRun(t *testing.T) {
	m := radio.Default(500)
	pos := workload.Uniform(workload.Rand(6), 5000, 5600, 5600)
	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		exec *Execution
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		exec, err := RunParallel(ctx, pos, m, AlphaConnectivity, 8)
		done <- outcome{exec, err}
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case out := <-done:
		switch {
		case out.err == nil:
			if out.exec == nil || len(out.exec.Nodes) != len(pos) {
				t.Fatal("clean finish without a complete execution")
			}
		case errors.Is(out.err, context.Canceled):
			if out.exec != nil {
				t.Fatal("partial execution escaped on cancellation")
			}
		default:
			t.Fatalf("unexpected error: %v", out.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker pool did not react to cancellation")
	}
}

// ParallelRange must call fn exactly once per index regardless of pool
// size, including the small ranges where the chunk shrinks to keep all
// workers busy.
func TestParallelRangeCoverage(t *testing.T) {
	for _, n := range []int{1, 17, 63, 64, 65, 640} {
		for _, workers := range []int{1, 2, 7, 16} {
			counts := make([]int32, n)
			err := ParallelRange(context.Background(), n, workers, func(_, i int) {
				counts[i]++
			})
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, c)
				}
			}
		}
	}
}
