package core

import (
	"math"
	"testing"

	"cbtc/internal/geom"
	"cbtc/internal/graph"
	"cbtc/internal/workload"
)

// --- Theorem 2.1: for α ≤ 5π/6 the symmetric closure G_α preserves ---
// --- the connectivity of G_R.                                       ---

func TestConnectivityPreservedTheorem21(t *testing.T) {
	m := defaultModel()
	alphas := []float64{math.Pi / 3, math.Pi / 2, AlphaAsymmetric, 2.3, AlphaConnectivity}
	for _, alpha := range alphas {
		for seed := uint64(0); seed < 20; seed++ {
			pos := workload.Uniform(workload.Rand(seed), 70, 1500, 1500)
			gr := MaxPowerGraph(pos, m)
			e := mustRun(t, pos, m, alpha)
			galpha := e.Nalpha().SymmetricClosure()
			if !graph.SamePartition(gr, galpha) {
				t.Errorf("alpha=%.4f seed=%d: G_α changed the component partition", alpha, seed)
			}
		}
	}
}

func TestConnectivityPreservedOnStructuredLayouts(t *testing.T) {
	m := defaultModel()
	layouts := map[string][]geom.Point{
		"chain":     workload.Chain(30, 400),
		"ring":      workload.Ring(24, 700, 1500, 1500),
		"grid":      workload.Grid(workload.Rand(2), 49, 40, 1500, 1500),
		"clustered": workload.Clustered(workload.Rand(3), 60, 4, 120, 1500, 1500),
	}
	for name, pos := range layouts {
		t.Run(name, func(t *testing.T) {
			gr := MaxPowerGraph(pos, m)
			e := mustRun(t, pos, m, AlphaConnectivity)
			if !graph.SamePartition(gr, e.Nalpha().SymmetricClosure()) {
				t.Errorf("G_α changed the component partition")
			}
		})
	}
}

// --- Theorem 2.4: for α > 5π/6 connectivity can break (Figure 5). ---

func TestFigure5DisconnectsTheorem24(t *testing.T) {
	m := defaultModel()
	for _, eps := range []float64{0.05, 0.1, 0.3} {
		alpha := AlphaConnectivity + eps
		pos, err := workload.Figure5(eps, m.MaxRadius)
		if err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		gr := MaxPowerGraph(pos, m)
		if !graph.IsConnected(gr) {
			t.Fatalf("eps=%v: G_R must be connected", eps)
		}
		e := mustRun(t, pos, m, alpha)
		galpha := e.Nalpha().SymmetricClosure()
		if graph.IsConnected(galpha) {
			t.Errorf("eps=%v: G_α must be disconnected for α = 5π/6 + %v", eps, eps)
		}
		if got := graph.ComponentCount(galpha); got != 2 {
			t.Errorf("eps=%v: components = %d, want the 2 clusters", eps, got)
		}
		// The failure is precisely the loss of the (u0, v0) bridge.
		if galpha.HasEdge(0, 4) {
			t.Errorf("eps=%v: bridge edge (u0,v0) unexpectedly present", eps)
		}
		if !gr.HasEdge(0, 4) {
			t.Errorf("eps=%v: bridge edge (u0,v0) missing from G_R", eps)
		}
	}
}

// The same placement stays connected when run at exactly α = 5π/6: the
// bound is tight from both sides.
func TestFigure5ConnectedAtTightBound(t *testing.T) {
	m := defaultModel()
	pos, err := workload.Figure5(0.1, m.MaxRadius)
	if err != nil {
		t.Fatal(err)
	}
	e := mustRun(t, pos, m, AlphaConnectivity)
	galpha := e.Nalpha().SymmetricClosure()
	if !graph.IsConnected(galpha) {
		t.Errorf("G_{5π/6} must stay connected on the Figure 5 placement")
	}
}

// --- Example 2.1: N_α is not symmetric for 2π/3 < α ≤ 5π/6. ---

func TestExample21Asymmetry(t *testing.T) {
	m := defaultModel()
	for _, alpha := range []float64{2*math.Pi/3 + 0.1, 2*math.Pi/3 + 0.2, AlphaConnectivity} {
		pos, err := workload.Example21(alpha, m.MaxRadius)
		if err != nil {
			t.Fatalf("alpha=%v: %v", alpha, err)
		}
		e := mustRun(t, pos, m, alpha)
		n := e.Nalpha()

		const u0, v = 0, 4
		if !n.HasArc(v, u0) {
			t.Errorf("alpha=%v: (v,u0) must be in N_α", alpha)
		}
		if n.HasArc(u0, v) {
			t.Errorf("alpha=%v: (u0,v) must NOT be in N_α", alpha)
		}
		// The paper states N_α(u0) = {u1, u2, u3} and N_α(v) = {u0}.
		if got := n.Successors(u0); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
			t.Errorf("alpha=%v: N_α(u0) = %v, want [1 2 3]", alpha, got)
		}
		if got := n.Successors(v); len(got) != 1 || got[0] != u0 {
			t.Errorf("alpha=%v: N_α(v) = %v, want [0]", alpha, got)
		}

		// Without the symmetric closure, u0 and v would be disconnected;
		// the closure restores the edge (the reason E_α is defined as the
		// closure).
		if !n.SymmetricClosure().HasEdge(u0, v) {
			t.Errorf("alpha=%v: symmetric closure must contain (u0,v)", alpha)
		}
		if n.MutualSubgraph().HasEdge(u0, v) {
			t.Errorf("alpha=%v: mutual subgraph must not contain (u0,v)", alpha)
		}
	}
}

// For α ≤ 2π/3 the relation needs no closure on Example 2.1-style
// configurations: Lemma 3.3's regime.
func TestNoAsymmetryBreakageBelowTwoThirds(t *testing.T) {
	m := defaultModel()
	for seed := uint64(0); seed < 15; seed++ {
		pos := workload.Uniform(workload.Rand(seed), 60, 1500, 1500)
		gr := MaxPowerGraph(pos, m)
		e := mustRun(t, pos, m, AlphaAsymmetric)
		mutual := e.Nalpha().MutualSubgraph()
		if !graph.SamePartition(gr, mutual) {
			t.Errorf("seed=%d: E⁻_{2π/3} changed the component partition", seed)
		}
	}
}
