package core

import (
	"context"
	"slices"

	"cbtc/internal/geom"
	"cbtc/internal/graph"
	"cbtc/internal/radio"
	"cbtc/internal/spatial"
)

// Index is the candidate provider the oracle's hot paths query instead
// of scanning the whole placement: Within(p, r) must return every node id
// whose position lies within distance r of p, in ascending id order.
// *spatial.Grid satisfies it. A nil Index means a full placement scan —
// the naive reference path the equivalence tests compare against.
type Index interface {
	Within(p geom.Point, r float64) []int
}

// unorderedIndex is the optional fast path an Index can provide when the
// caller imposes its own total order on the candidates (as the oracle's
// (dist, id) sort does), making the index's ascending-id sort redundant.
type unorderedIndex interface {
	AppendWithinUnordered(dst []int, p geom.Point, r float64) []int
}

// distTieTol is the relative tolerance under which two candidate
// distances (or, on the link-dependent path, two candidate link powers)
// are treated as equal. Equidistant nodes become reachable at the same
// power, so the growing phase discovers them as one group.
const distTieTol = 1e-12

// Run executes CBTC(α) on every node under the exact minimal-power
// semantics of the paper's analysis: node u's final power p_{u,α} is the
// smallest power at which every cone of degree α around u contains a
// reachable node, capped at the model's maximum power P (u is then a
// boundary node).
//
// Equivalently: u discovers neighbors in increasing needed-power order
// (for the pure power law, increasing distance order; equal-power nodes
// as one group) and stops at the first prefix whose direction set has no
// α-gap. The propagation model m decides per-link reachability; the
// distance-pure power law takes the historical distance-ordered path,
// bit-identical to when the oracle hardcoded it.
func Run(pos []geom.Point, m radio.Propagation, alpha float64) (*Execution, error) {
	return RunContext(context.Background(), pos, m, alpha)
}

// ctxCheckStride is how many nodes RunContext processes between context
// polls: frequent enough to abort large runs promptly, rare enough that
// the poll cost vanishes against the per-node O(n log n) work.
const ctxCheckStride = 16

// RunContext is Run with cooperative cancellation: it polls ctx between
// node computations and returns ctx.Err() if the context ends before the
// execution completes. A uniform grid with cell size MaxLinkRadius is
// built once over the placement and shared by every per-node candidate
// gather, making the oracle Θ(n·k) for k in-range neighbors instead of
// Θ(n²).
func RunContext(ctx context.Context, pos []geom.Point, m radio.Propagation, alpha float64) (*Execution, error) {
	return runContext(ctx, pos, m, alpha, true, 1)
}

// RunParallel is RunContext with the per-node computations fanned across
// a pool of `workers` goroutines (non-positive means GOMAXPROCS; 1 is the
// serial path). Each node's cone test depends only on the read-only
// placement, the shared immutable grid and the deterministic propagation
// model, so workers claim chunks of the node range from an atomic
// counter, keep private gather scratch, and write disjoint Execution
// slots. The output is identical — edge for edge, bit for bit — at every
// worker count; only wall-clock changes. Cancellation is polled per
// worker on its own stride, so latency does not grow with the pool size.
func RunParallel(ctx context.Context, pos []geom.Point, m radio.Propagation, alpha float64, workers int) (*Execution, error) {
	return runContext(ctx, pos, m, alpha, true, workers)
}

// RunNaive is RunContext without the spatial index: every candidate
// gather scans the full placement. It is the reference implementation the
// naive-vs-grid equivalence tests and benchmarks compare against; both
// paths produce identical Executions.
func RunNaive(ctx context.Context, pos []geom.Point, m radio.Propagation, alpha float64) (*Execution, error) {
	return runContext(ctx, pos, m, alpha, false, 1)
}

func runContext(ctx context.Context, pos []geom.Point, m radio.Propagation, alpha float64, indexed bool, workers int) (*Execution, error) {
	if err := validateInput(pos, m, alpha); err != nil {
		return nil, err
	}
	var idx Index
	if indexed {
		idx = spatial.New(pos, m.MaxLinkRadius())
	}
	exec := &Execution{
		Alpha: alpha,
		Model: m.Nominal(),
		Pos:   append([]geom.Point(nil), pos...),
		Nodes: make([]NodeResult, len(pos)),
	}
	workers = ResolveWorkers(workers, len(pos))
	scratch := make([]gatherScratch, workers)
	err := ParallelRange(ctx, len(pos), workers, func(w, u int) {
		exec.Nodes[u] = runNode(pos, nil, m, alpha, u, idx, &scratch[w])
	})
	if err != nil {
		return nil, err
	}
	return exec, nil
}

// NodeRunner is a reusable RunNode executor: it owns the gather scratch
// buffers a bare RunNode call would allocate fresh, so callers that
// recompute many nodes (session batch repair, the parallel oracle's
// workers) amortize the buffers across calls. A NodeRunner is not safe
// for concurrent use — give each worker its own.
type NodeRunner struct {
	scr gatherScratch
}

// RunNode computes N_α(u) exactly as the package-level RunNode does,
// reusing the runner's scratch buffers.
func (r *NodeRunner) RunNode(pos []geom.Point, alive []bool, m radio.Propagation, alpha float64, u int, idx Index) NodeResult {
	return runNode(pos, alive, m, alpha, u, idx, &r.scr)
}

// gatherScratch holds the per-node gather buffers RunContext reuses
// across nodes; nothing stored in it outlives a single runNode call.
type gatherScratch struct {
	ids    []int
	cands  []candidate
	lcands []linkCandidate
	dirs   []float64
}

// candidate is a node reachable at maximum power, ordered by distance.
// Its bearing is computed lazily at admission time: candidates past the
// stopping prefix never need the (comparatively expensive) atan2.
type candidate struct {
	id   int
	dist float64
}

// linkCandidate is the link-dependent path's candidate: under per-link
// propagation, discovery order is needed-power order, which no longer
// coincides with distance order.
type linkCandidate struct {
	id   int
	dist float64
	need float64
}

// RunNode computes N_α(u) for a single node under the minimal-power
// semantics, considering only nodes v with alive[v] as candidates (a nil
// mask means every node is alive). The per-node form is what incremental
// §4 reconfiguration uses: after a join/leave/move, only the nodes whose
// candidate set changed need recomputing. The candidate provider idx
// restricts the gather to nodes within MaxLinkRadius of u; nil falls
// back to a full placement scan. Both paths admit exactly the same
// candidates.
func RunNode(pos []geom.Point, alive []bool, m radio.Propagation, alpha float64, u int, idx Index) NodeResult {
	return runNode(pos, alive, m, alpha, u, idx, &gatherScratch{})
}

// runNode dispatches on the model's purity: the distance-pure power law
// takes the historical hot path on the concrete nominal model — zero
// per-candidate interface dispatch, arithmetic bit-identical to the
// pre-interface oracle — while link-dependent models take the
// need-ordered path with per-link admission.
func runNode(pos []geom.Point, alive []bool, m radio.Propagation, alpha float64, u int, idx Index, scr *gatherScratch) NodeResult {
	if m.DistancePure() {
		return runNodePure(pos, alive, m.Nominal(), alpha, u, idx, scr)
	}
	return runNodeLink(pos, alive, m, alpha, u, idx, scr)
}

func runNodePure(pos []geom.Point, alive []bool, m radio.Model, alpha float64, u int, idx Index, scr *gatherScratch) NodeResult {
	cands := reachableCandidates(pos, alive, m, u, idx, scr)

	neighbors := make([]Discovery, 0, len(cands))
	// Directions are kept normalized and sorted incrementally, so the
	// per-group gap test is a linear scan instead of a fresh sort — the
	// arithmetic matches geom.HasGap bit-for-bit.
	dirs := scr.dirs[:0]
	defer func() { scr.dirs = dirs[:0] }()

	i := 0
	for i < len(cands) {
		// Admit the whole group of (approximately) equidistant nodes: they
		// become reachable at the same power.
		groupEnd := i + 1
		for groupEnd < len(cands) && sameDist(cands[groupEnd].dist, cands[i].dist) {
			groupEnd++
		}
		groupDist := cands[groupEnd-1].dist
		groupPower := m.PowerFor(groupDist)
		for ; i < groupEnd; i++ {
			c := cands[i]
			dir := pos[u].Bearing(pos[c.id])
			neighbors = append(neighbors, Discovery{
				ID:    c.id,
				Dist:  c.dist,
				Dir:   dir,
				Power: groupPower,
			})
			dirs = geom.InsertSorted(dirs, dir)
		}
		if !geom.HasGapSorted(dirs, alpha) {
			return NodeResult{
				Neighbors: neighbors,
				GrowPower: groupPower,
				Boundary:  false,
			}
		}
	}
	// Exhausted all reachable nodes with an α-gap remaining: u is a
	// boundary node and has been broadcasting at maximum power.
	return NodeResult{
		Neighbors: neighbors,
		GrowPower: m.MaxPower(),
		Boundary:  true,
	}
}

// runNodeLink is the growing phase under link-dependent propagation:
// candidates are admitted per link, ordered by needed power, and grouped
// by (approximately) equal need — the power at which they all become
// reachable. Discovery.Power carries the group's needed power, so the
// quantized-tag and reconfiguration machinery downstream see the same
// shape the pure path produces.
func runNodeLink(pos []geom.Point, alive []bool, m radio.Propagation, alpha float64, u int, idx Index, scr *gatherScratch) NodeResult {
	cands := linkCandidates(pos, alive, m, u, idx, scr)

	neighbors := make([]Discovery, 0, len(cands))
	dirs := scr.dirs[:0]
	defer func() { scr.dirs = dirs[:0] }()

	i := 0
	for i < len(cands) {
		groupEnd := i + 1
		for groupEnd < len(cands) && sameDist(cands[groupEnd].need, cands[i].need) {
			groupEnd++
		}
		groupPower := cands[groupEnd-1].need
		for ; i < groupEnd; i++ {
			c := cands[i]
			dir := pos[u].Bearing(pos[c.id])
			neighbors = append(neighbors, Discovery{
				ID:    c.id,
				Dist:  c.dist,
				Dir:   dir,
				Power: groupPower,
			})
			dirs = geom.InsertSorted(dirs, dir)
		}
		if !geom.HasGapSorted(dirs, alpha) {
			return NodeResult{
				Neighbors: neighbors,
				GrowPower: groupPower,
				Boundary:  false,
			}
		}
	}
	return NodeResult{
		Neighbors: neighbors,
		GrowPower: m.MaxPower(),
		Boundary:  true,
	}
}

// reachableCandidates returns the live nodes within communication range
// R of u, sorted by distance (ties broken by index for determinism).
// With an index the gather only touches nodes near u: the query radius is
// widened by spatial.QuerySlack and the naive path's exact hypot-based
// predicate re-applied, so both paths admit identical candidate sets.
func reachableCandidates(pos []geom.Point, alive []bool, m radio.Model, u int, idx Index, scr *gatherScratch) []candidate {
	rr := m.MaxRadius * (1 + distTieTol)
	out := scr.cands[:0]
	admit := func(v int, pv geom.Point) {
		if v == u || (alive != nil && !alive[v]) {
			return
		}
		d := pos[u].Dist(pv)
		if d <= rr {
			out = append(out, candidate{id: v, dist: d})
		}
	}
	switch {
	case idx == nil:
		for v, pv := range pos {
			admit(v, pv)
		}
	default:
		// The (dist, id) sort below imposes its own total order, so the
		// query can skip the index's ascending-id pass when available.
		qr := rr * (1 + spatial.QuerySlack)
		if g, ok := idx.(unorderedIndex); ok {
			scr.ids = g.AppendWithinUnordered(scr.ids[:0], pos[u], qr)
		} else {
			scr.ids = append(scr.ids[:0], idx.Within(pos[u], qr)...)
		}
		for _, v := range scr.ids {
			admit(v, pos[v])
		}
	}
	scr.cands = out[:0]
	// (dist, id) is a strict total order — ids are distinct — so any
	// comparison sort yields the same unique sequence; SortFunc avoids
	// sort.Slice's reflection overhead on this hot path.
	slices.SortFunc(out, func(a, b candidate) int {
		if a.dist != b.dist {
			if a.dist < b.dist {
				return -1
			}
			return 1
		}
		return a.id - b.id
	})
	return out
}

// linkCandidates returns the live nodes whose link to u is establishable
// at maximum power under link-dependent propagation, sorted by
// (need, dist, id). The grid query is widened to the model's conservative
// MaxLinkRadius bound and the exact per-link predicate re-applied, so the
// indexed and naive paths admit identical candidate sets.
func linkCandidates(pos []geom.Point, alive []bool, m radio.Propagation, u int, idx Index, scr *gatherScratch) []linkCandidate {
	rr := m.MaxLinkRadius() * (1 + distTieTol)
	out := scr.lcands[:0]
	admit := func(v int, pv geom.Point) {
		if v == u || (alive != nil && !alive[v]) {
			return
		}
		d := pos[u].Dist(pv)
		if d <= rr && m.LinkInRange(u, v, d) {
			out = append(out, linkCandidate{id: v, dist: d, need: m.LinkPower(u, v, d)})
		}
	}
	switch {
	case idx == nil:
		for v, pv := range pos {
			admit(v, pv)
		}
	default:
		qr := rr * (1 + spatial.QuerySlack)
		if g, ok := idx.(unorderedIndex); ok {
			scr.ids = g.AppendWithinUnordered(scr.ids[:0], pos[u], qr)
		} else {
			scr.ids = append(scr.ids[:0], idx.Within(pos[u], qr)...)
		}
		for _, v := range scr.ids {
			admit(v, pos[v])
		}
	}
	scr.lcands = out[:0]
	// (need, dist, id) is a strict total order — ids are distinct — so
	// the discovery sequence is unique and worker-count invariant.
	slices.SortFunc(out, func(a, b linkCandidate) int {
		if a.need != b.need {
			if a.need < b.need {
				return -1
			}
			return 1
		}
		if a.dist != b.dist {
			if a.dist < b.dist {
				return -1
			}
			return 1
		}
		return a.id - b.id
	})
	return out
}

func sameDist(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if b > a {
		scale = b
	}
	return diff <= distTieTol*(1+scale)
}

// MaxPowerGraph returns G_R: the graph induced by every node transmitting
// with maximum power — for the pure power law, edges between all pairs at
// distance ≤ R; for link-dependent models, pairs whose link is
// establishable at maximum power. It builds a throwaway grid over the
// placement, replacing the quadratic all-pairs scan with per-node radius
// queries; MaxPowerGraphIndexed accepts a caller-maintained index
// instead.
func MaxPowerGraph(pos []geom.Point, m radio.Propagation) *graph.Graph {
	return MaxPowerGraphIndexed(pos, m, spatial.New(pos, m.MaxLinkRadius()))
}

// MaxPowerGraphIndexed is MaxPowerGraph over a caller-supplied candidate
// index (nil falls back to the naive all-pairs scan). The edge set is
// identical on both paths: the index pre-filters and the exact per-link
// predicate decides. Both paths emit per-node ascending half rows, so
// the graph is bulk-built into one packed arena instead of edge by edge.
func MaxPowerGraphIndexed(pos []geom.Point, m radio.Propagation, idx Index) *graph.Graph {
	rows := make([][]int32, len(pos))
	if idx == nil {
		rr, _ := maxPowerRadii(m)
		pure := m.DistancePure()
		for u := 0; u < len(pos); u++ {
			var row []int32
			for v := u + 1; v < len(pos); v++ {
				d := pos[u].Dist(pos[v])
				if d <= rr && (pure || m.LinkInRange(u, v, d)) {
					row = append(row, int32(v))
				}
			}
			rows[u] = row
		}
		return graph.NewFromHalfRows(rows)
	}
	var scratch []int
	for u := 0; u < len(pos); u++ {
		// The grid returns ascending ids, so the v > u filter keeps the
		// half row sorted by construction.
		scratch = appendMaxPowerNeighbors(scratch[:0], pos, m, u, idx)
		var row []int32
		for _, v := range scratch {
			if v > u {
				row = append(row, int32(v))
			}
		}
		rows[u] = row
	}
	return graph.NewFromHalfRows(rows)
}

// MaxPowerGraphParallel is MaxPowerGraph with the per-node radius queries
// fanned across a worker pool (non-positive workers means GOMAXPROCS);
// MaxPowerGraphParallelIndexed reuses a caller-maintained index instead
// of building one. The distance filtering — the Θ(n·k) part — runs in
// parallel over the read-only grid; the edge assembly is a cheap serial
// pass, so the graph is identical to the serial build at every worker
// count.
func MaxPowerGraphParallel(pos []geom.Point, m radio.Propagation, workers int) *graph.Graph {
	return MaxPowerGraphParallelIndexed(pos, m, spatial.New(pos, m.MaxLinkRadius()), workers)
}

// MaxPowerGraphParallelIndexed is MaxPowerGraphParallel over a
// caller-supplied candidate index (Sessions pass their live-node grid to
// avoid rebuilding one over the same placement).
func MaxPowerGraphParallelIndexed(pos []geom.Point, m radio.Propagation, idx Index, workers int) *graph.Graph {
	workers = ResolveWorkers(workers, len(pos))
	if workers <= 1 {
		return MaxPowerGraphIndexed(pos, m, idx)
	}
	rows := make([][]int32, len(pos))
	scratch := make([][]int, workers)
	// ctx is inert here: the gather is pure computation with no caller to
	// cancel it (Engine.MaxPower has no context parameter).
	_ = ParallelRange(context.Background(), len(pos), workers, func(w, u int) {
		scratch[w] = appendMaxPowerNeighbors(scratch[w][:0], pos, m, u, idx)
		var row []int32
		for _, v := range scratch[w] {
			if v > u {
				row = append(row, int32(v))
			}
		}
		rows[u] = row
	})
	// The parallel gather produced exactly the ascending half rows the
	// packed bulk constructor wants; assembly is one serial arena fill.
	return graph.NewFromHalfRows(rows)
}

// AppendMaxPowerNeighbors appends the ids of indexed nodes within
// maximum-power range of pos[u] — exactly the nodes MaxPowerGraph would
// connect to u. Sessions use it to maintain their ground-truth G_R
// incrementally instead of rebuilding the full graph per snapshot.
func AppendMaxPowerNeighbors(dst []int, pos []geom.Point, m radio.Propagation, u int, idx Index) []int {
	return appendMaxPowerNeighbors(dst, pos, m, u, idx)
}

// maxPowerRadii is the single source of the max-power reachability
// predicate's radii: the tolerance-carrying exact distance bound rr, and
// the slack-widened query radius qr whose superset the exact recheck
// filters. Every G_R construction site must derive its candidates from
// these two values, or the incrementally-maintained session G_R would
// drift from the from-scratch builds. For distance-pure models `dist ≤
// rr` IS the edge predicate; link-dependent models additionally apply
// LinkInRange per candidate.
func maxPowerRadii(m radio.Propagation) (rr, qr float64) {
	rr = m.MaxLinkRadius() * (1 + distTieTol)
	return rr, rr * (1 + spatial.QuerySlack)
}

// appendMaxPowerNeighbors appends every indexed v ≠ u whose link to u is
// establishable at maximum power, in the index's ascending-id order.
func appendMaxPowerNeighbors(dst []int, pos []geom.Point, m radio.Propagation, u int, idx Index) []int {
	rr, qr := maxPowerRadii(m)
	if m.DistancePure() {
		for _, v := range idx.Within(pos[u], qr) {
			if v != u && pos[u].Dist(pos[v]) <= rr {
				dst = append(dst, v)
			}
		}
		return dst
	}
	for _, v := range idx.Within(pos[u], qr) {
		if v == u {
			continue
		}
		d := pos[u].Dist(pos[v])
		if d <= rr && m.LinkInRange(u, v, d) {
			dst = append(dst, v)
		}
	}
	return dst
}
