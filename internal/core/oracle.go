package core

import (
	"context"
	"slices"

	"cbtc/internal/geom"
	"cbtc/internal/graph"
	"cbtc/internal/radio"
	"cbtc/internal/spatial"
)

// Index is the candidate provider the oracle's hot paths query instead
// of scanning the whole placement: Within(p, r) must return every node id
// whose position lies within distance r of p, in ascending id order.
// *spatial.Grid satisfies it. A nil Index means a full placement scan —
// the naive reference path the equivalence tests compare against.
type Index interface {
	Within(p geom.Point, r float64) []int
}

// unorderedIndex is the optional fast path an Index can provide when the
// caller imposes its own total order on the candidates (as the oracle's
// (dist, id) sort does), making the index's ascending-id sort redundant.
type unorderedIndex interface {
	AppendWithinUnordered(dst []int, p geom.Point, r float64) []int
}

// distTieTol is the relative tolerance under which two candidate
// distances are treated as equal. Equidistant nodes become reachable at
// the same power, so the growing phase discovers them as one group.
const distTieTol = 1e-12

// Run executes CBTC(α) on every node under the exact minimal-power
// semantics of the paper's analysis: node u's final power p_{u,α} is the
// smallest power at which every cone of degree α around u contains a
// reachable node, capped at the model's maximum power P (u is then a
// boundary node).
//
// Equivalently: u discovers neighbors in increasing distance order
// (equidistant nodes as one group) and stops at the first prefix whose
// direction set has no α-gap.
func Run(pos []geom.Point, m radio.Model, alpha float64) (*Execution, error) {
	return RunContext(context.Background(), pos, m, alpha)
}

// ctxCheckStride is how many nodes RunContext processes between context
// polls: frequent enough to abort large runs promptly, rare enough that
// the poll cost vanishes against the per-node O(n log n) work.
const ctxCheckStride = 16

// RunContext is Run with cooperative cancellation: it polls ctx between
// node computations and returns ctx.Err() if the context ends before the
// execution completes. A uniform grid with cell size R is built once over
// the placement and shared by every per-node candidate gather, making the
// oracle Θ(n·k) for k in-range neighbors instead of Θ(n²).
func RunContext(ctx context.Context, pos []geom.Point, m radio.Model, alpha float64) (*Execution, error) {
	return runContext(ctx, pos, m, alpha, true)
}

// RunNaive is RunContext without the spatial index: every candidate
// gather scans the full placement. It is the reference implementation the
// naive-vs-grid equivalence tests and benchmarks compare against; both
// paths produce identical Executions.
func RunNaive(ctx context.Context, pos []geom.Point, m radio.Model, alpha float64) (*Execution, error) {
	return runContext(ctx, pos, m, alpha, false)
}

func runContext(ctx context.Context, pos []geom.Point, m radio.Model, alpha float64, indexed bool) (*Execution, error) {
	if err := validateInput(pos, m, alpha); err != nil {
		return nil, err
	}
	var idx Index
	if indexed {
		idx = spatial.New(pos, m.MaxRadius)
	}
	exec := &Execution{
		Alpha: alpha,
		Model: m,
		Pos:   append([]geom.Point(nil), pos...),
		Nodes: make([]NodeResult, len(pos)),
	}
	var scr gatherScratch
	for u := range pos {
		if u%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		exec.Nodes[u] = runNode(pos, nil, m, alpha, u, idx, &scr)
	}
	return exec, nil
}

// gatherScratch holds the per-node gather buffers RunContext reuses
// across nodes; nothing stored in it outlives a single runNode call.
type gatherScratch struct {
	ids   []int
	cands []candidate
	dirs  []float64
}

// candidate is a node reachable at maximum power, ordered by distance.
// Its bearing is computed lazily at admission time: candidates past the
// stopping prefix never need the (comparatively expensive) atan2.
type candidate struct {
	id   int
	dist float64
}

// RunNode computes N_α(u) for a single node under the minimal-power
// semantics, considering only nodes v with alive[v] as candidates (a nil
// mask means every node is alive). The per-node form is what incremental
// §4 reconfiguration uses: after a join/leave/move, only the nodes whose
// candidate set changed need recomputing. The candidate provider idx
// restricts the gather to nodes within R of u; nil falls back to a full
// placement scan. Both paths admit exactly the same candidates.
func RunNode(pos []geom.Point, alive []bool, m radio.Model, alpha float64, u int, idx Index) NodeResult {
	return runNode(pos, alive, m, alpha, u, idx, &gatherScratch{})
}

func runNode(pos []geom.Point, alive []bool, m radio.Model, alpha float64, u int, idx Index, scr *gatherScratch) NodeResult {
	cands := reachableCandidates(pos, alive, m, u, idx, scr)

	neighbors := make([]Discovery, 0, len(cands))
	// Directions are kept normalized and sorted incrementally, so the
	// per-group gap test is a linear scan instead of a fresh sort — the
	// arithmetic matches geom.HasGap bit-for-bit.
	dirs := scr.dirs[:0]
	defer func() { scr.dirs = dirs[:0] }()

	i := 0
	for i < len(cands) {
		// Admit the whole group of (approximately) equidistant nodes: they
		// become reachable at the same power.
		groupEnd := i + 1
		for groupEnd < len(cands) && sameDist(cands[groupEnd].dist, cands[i].dist) {
			groupEnd++
		}
		groupDist := cands[groupEnd-1].dist
		groupPower := m.PowerFor(groupDist)
		for ; i < groupEnd; i++ {
			c := cands[i]
			dir := pos[u].Bearing(pos[c.id])
			neighbors = append(neighbors, Discovery{
				ID:    c.id,
				Dist:  c.dist,
				Dir:   dir,
				Power: groupPower,
			})
			dirs = geom.InsertSorted(dirs, dir)
		}
		if !geom.HasGapSorted(dirs, alpha) {
			return NodeResult{
				Neighbors: neighbors,
				GrowPower: groupPower,
				Boundary:  false,
			}
		}
	}
	// Exhausted all reachable nodes with an α-gap remaining: u is a
	// boundary node and has been broadcasting at maximum power.
	return NodeResult{
		Neighbors: neighbors,
		GrowPower: m.MaxPower(),
		Boundary:  true,
	}
}

// reachableCandidates returns the live nodes within communication range
// R of u, sorted by distance (ties broken by index for determinism).
// With an index the gather only touches nodes near u: the query radius is
// widened by spatial.QuerySlack and the naive path's exact hypot-based
// predicate re-applied, so both paths admit identical candidate sets.
func reachableCandidates(pos []geom.Point, alive []bool, m radio.Model, u int, idx Index, scr *gatherScratch) []candidate {
	rr := m.MaxRadius * (1 + distTieTol)
	out := scr.cands[:0]
	admit := func(v int, pv geom.Point) {
		if v == u || (alive != nil && !alive[v]) {
			return
		}
		d := pos[u].Dist(pv)
		if d <= rr {
			out = append(out, candidate{id: v, dist: d})
		}
	}
	switch {
	case idx == nil:
		for v, pv := range pos {
			admit(v, pv)
		}
	default:
		// The (dist, id) sort below imposes its own total order, so the
		// query can skip the index's ascending-id pass when available.
		qr := rr * (1 + spatial.QuerySlack)
		if g, ok := idx.(unorderedIndex); ok {
			scr.ids = g.AppendWithinUnordered(scr.ids[:0], pos[u], qr)
		} else {
			scr.ids = append(scr.ids[:0], idx.Within(pos[u], qr)...)
		}
		for _, v := range scr.ids {
			admit(v, pos[v])
		}
	}
	scr.cands = out[:0]
	// (dist, id) is a strict total order — ids are distinct — so any
	// comparison sort yields the same unique sequence; SortFunc avoids
	// sort.Slice's reflection overhead on this hot path.
	slices.SortFunc(out, func(a, b candidate) int {
		if a.dist != b.dist {
			if a.dist < b.dist {
				return -1
			}
			return 1
		}
		return a.id - b.id
	})
	return out
}

func sameDist(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if b > a {
		scale = b
	}
	return diff <= distTieTol*(1+scale)
}

// MaxPowerGraph returns G_R: the graph induced by every node transmitting
// with maximum power, i.e. edges between all pairs at distance ≤ R. It
// builds a throwaway grid over the placement, replacing the quadratic
// all-pairs scan with per-node radius queries; MaxPowerGraphIndexed
// accepts a caller-maintained index instead.
func MaxPowerGraph(pos []geom.Point, m radio.Model) *graph.Graph {
	return MaxPowerGraphIndexed(pos, m, spatial.New(pos, m.MaxRadius))
}

// MaxPowerGraphIndexed is MaxPowerGraph over a caller-supplied candidate
// index (nil falls back to the naive all-pairs scan). The edge set is
// identical on both paths: the index pre-filters and the exact distance
// predicate decides.
func MaxPowerGraphIndexed(pos []geom.Point, m radio.Model, idx Index) *graph.Graph {
	g := graph.New(len(pos))
	rr := m.MaxRadius * (1 + distTieTol)
	if idx == nil {
		for u := 0; u < len(pos); u++ {
			for v := u + 1; v < len(pos); v++ {
				if pos[u].Dist(pos[v]) <= rr {
					g.AddEdge(u, v)
				}
			}
		}
		return g
	}
	for u := 0; u < len(pos); u++ {
		for _, v := range idx.Within(pos[u], rr*(1+spatial.QuerySlack)) {
			if v > u && pos[u].Dist(pos[v]) <= rr {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}
