package core

import (
	"context"
	"sort"

	"cbtc/internal/geom"
	"cbtc/internal/graph"
	"cbtc/internal/radio"
)

// distTieTol is the relative tolerance under which two candidate
// distances are treated as equal. Equidistant nodes become reachable at
// the same power, so the growing phase discovers them as one group.
const distTieTol = 1e-12

// Run executes CBTC(α) on every node under the exact minimal-power
// semantics of the paper's analysis: node u's final power p_{u,α} is the
// smallest power at which every cone of degree α around u contains a
// reachable node, capped at the model's maximum power P (u is then a
// boundary node).
//
// Equivalently: u discovers neighbors in increasing distance order
// (equidistant nodes as one group) and stops at the first prefix whose
// direction set has no α-gap.
func Run(pos []geom.Point, m radio.Model, alpha float64) (*Execution, error) {
	return RunContext(context.Background(), pos, m, alpha)
}

// ctxCheckStride is how many nodes RunContext processes between context
// polls: frequent enough to abort large runs promptly, rare enough that
// the poll cost vanishes against the per-node O(n log n) work.
const ctxCheckStride = 16

// RunContext is Run with cooperative cancellation: it polls ctx between
// node computations and returns ctx.Err() if the context ends before the
// execution completes.
func RunContext(ctx context.Context, pos []geom.Point, m radio.Model, alpha float64) (*Execution, error) {
	if err := validateInput(pos, m, alpha); err != nil {
		return nil, err
	}
	exec := &Execution{
		Alpha: alpha,
		Model: m,
		Pos:   append([]geom.Point(nil), pos...),
		Nodes: make([]NodeResult, len(pos)),
	}
	for u := range pos {
		if u%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		exec.Nodes[u] = RunNode(pos, nil, m, alpha, u)
	}
	return exec, nil
}

// candidate is a node reachable at maximum power, ordered by distance.
type candidate struct {
	id   int
	dist float64
	dir  float64
}

// RunNode computes N_α(u) for a single node under the minimal-power
// semantics, considering only nodes v with alive[v] as candidates (a nil
// mask means every node is alive). The per-node form is what incremental
// §4 reconfiguration uses: after a join/leave/move, only the nodes whose
// candidate set changed need recomputing.
func RunNode(pos []geom.Point, alive []bool, m radio.Model, alpha float64, u int) NodeResult {
	cands := reachableCandidates(pos, alive, m, u)

	neighbors := make([]Discovery, 0, len(cands))
	dirs := make([]float64, 0, len(cands))

	i := 0
	for i < len(cands) {
		// Admit the whole group of (approximately) equidistant nodes: they
		// become reachable at the same power.
		groupEnd := i + 1
		for groupEnd < len(cands) && sameDist(cands[groupEnd].dist, cands[i].dist) {
			groupEnd++
		}
		groupDist := cands[groupEnd-1].dist
		groupPower := m.PowerFor(groupDist)
		for ; i < groupEnd; i++ {
			c := cands[i]
			neighbors = append(neighbors, Discovery{
				ID:    c.id,
				Dist:  c.dist,
				Dir:   c.dir,
				Power: groupPower,
			})
			dirs = append(dirs, c.dir)
		}
		if !geom.HasGap(dirs, alpha) {
			return NodeResult{
				Neighbors: neighbors,
				GrowPower: groupPower,
				Boundary:  false,
			}
		}
	}
	// Exhausted all reachable nodes with an α-gap remaining: u is a
	// boundary node and has been broadcasting at maximum power.
	return NodeResult{
		Neighbors: neighbors,
		GrowPower: m.MaxPower(),
		Boundary:  true,
	}
}

// reachableCandidates returns the live nodes within communication range
// R of u, sorted by distance (ties broken by index for determinism).
func reachableCandidates(pos []geom.Point, alive []bool, m radio.Model, u int) []candidate {
	r := m.MaxRadius
	out := make([]candidate, 0, 16)
	for v, pv := range pos {
		if v == u || (alive != nil && !alive[v]) {
			continue
		}
		d := pos[u].Dist(pv)
		if d <= r*(1+distTieTol) {
			out = append(out, candidate{id: v, dist: d, dir: pos[u].Bearing(pv)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].dist != out[j].dist {
			return out[i].dist < out[j].dist
		}
		return out[i].id < out[j].id
	})
	return out
}

func sameDist(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if b > a {
		scale = b
	}
	return diff <= distTieTol*(1+scale)
}

// MaxPowerGraph returns G_R: the graph induced by every node transmitting
// with maximum power, i.e. edges between all pairs at distance ≤ R.
func MaxPowerGraph(pos []geom.Point, m radio.Model) *graph.Graph {
	g := graph.New(len(pos))
	r := m.MaxRadius
	for u := 0; u < len(pos); u++ {
		for v := u + 1; v < len(pos); v++ {
			if pos[u].Dist(pos[v]) <= r*(1+distTieTol) {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}
