package core

import (
	"fmt"

	"cbtc/internal/geom"
	"cbtc/internal/graph"
)

// Options selects which of the paper's optimizations (§3) to apply on
// top of the basic CBTC(α) growing phase. The zero value is the basic
// algorithm.
type Options struct {
	// ShrinkBack enables op1 (§3.1).
	ShrinkBack bool
	// AsymmetricRemoval enables op2 (§3.2): keep only mutual edges
	// (E⁻_α) instead of the symmetric closure (E_α). Valid only for
	// α ≤ 2π/3; BuildTopology rejects larger angles.
	AsymmetricRemoval bool
	// PairwiseRemoval enables op3 (§3.3).
	PairwiseRemoval bool
	// PairwisePolicy selects the op3 removal rule; the zero value means
	// PairwiseLengthFiltered, the paper's practical rule.
	PairwisePolicy PairwisePolicy
	// NonContributing additionally drops any neighbor that does not
	// contribute to cone coverage (the degree-reduction note at the end
	// of §3.1). Not part of the paper's Table 1 stacks.
	NonContributing bool
}

// Validate checks option consistency against the cone angle.
func (o Options) Validate(alpha float64) error {
	if o.AsymmetricRemoval && alpha > AlphaAsymmetric+geom.Eps {
		return fmt.Errorf("%w: alpha = %v", ErrAlphaTooLargeForAsym, alpha)
	}
	return nil
}

// Topology is the final output of the CBTC pipeline: the symmetric
// communication graph plus everything needed to analyze it.
type Topology struct {
	// Exec is the (possibly shrunk) execution the graph was derived from.
	Exec *Execution
	// Nalpha is the directed neighbor relation after per-node pruning
	// (shrink-back / non-contributing removal).
	Nalpha *graph.Digraph
	// G is the final symmetric graph: E_α, E^s_α, E⁻_α or the pairwise-
	// pruned variant, depending on Options.
	G *graph.Graph
	// Gpre is the symmetric graph before pairwise edge removal. The §4
	// beacon rule needs it: beacons must reach all neighbors in E_α, not
	// just the pairwise-pruned E^nr_α. Equal to G when op3 is off.
	Gpre *graph.Graph
	// RemovedRedundant lists the edges deleted by pairwise removal.
	RemovedRedundant []graph.Edge
	// Opts records the options the pipeline ran with.
	Opts Options
}

// BuildTopology applies the selected optimization stack to a CBTC
// execution, in the paper's order: shrink-back (op1), then symmetrization
// — closure for the basic algorithm, mutual subset under asymmetric edge
// removal (op2) — then pairwise edge removal (op3).
func BuildTopology(e *Execution, opts Options) (*Topology, error) {
	if err := opts.Validate(e.Alpha); err != nil {
		return nil, err
	}

	exec := e
	if opts.ShrinkBack {
		exec = ShrinkBack(exec)
	}
	if opts.NonContributing {
		exec = RemoveNonContributing(exec)
	}

	n := exec.Nalpha()
	var g *graph.Graph
	if opts.AsymmetricRemoval {
		g = n.MutualSubgraph()
	} else {
		g = n.SymmetricClosure()
	}

	gpre := g
	var removed []graph.Edge
	if opts.PairwiseRemoval {
		policy := opts.PairwisePolicy
		if policy == 0 {
			policy = PairwiseLengthFiltered
		}
		g, removed = PairwiseRemoval(g, exec.Pos, policy)
	}

	return &Topology{
		Exec:             exec,
		Nalpha:           n,
		G:                g,
		Gpre:             gpre,
		RemovedRedundant: removed,
		Opts:             opts,
	}, nil
}

// BeaconPower returns the power node u's NDP beacon must use so that
// reconfiguration preserves connectivity (§4):
//
//   - reach every neighbor in the pre-pairwise symmetric graph (E_α, or
//     E⁻_α under asymmetric removal) — pairwise-removed edges still need
//     beacon coverage;
//   - if shrink-back is on, boundary nodes must beacon with the power
//     the BASIC algorithm computed (maximum power), or two shrunk-back
//     boundary nodes drifting into range would never hear each other and
//     a re-joined network would stay partitioned.
func (t *Topology) BeaconPower(u int) float64 {
	p := t.Exec.Model.PowerFor(graph.NodeRadius(t.Gpre, t.Exec.Pos, u))
	if t.Opts.ShrinkBack && t.Exec.Nodes[u].Boundary {
		// GrowPower of a boundary node is the maximum power P.
		if gp := t.Exec.Nodes[u].GrowPower; gp > p {
			p = gp
		}
	}
	return p
}

// Radius returns node u's transmission radius in the final graph: the
// distance to its farthest neighbor in G.
func (t *Topology) Radius(u int) float64 {
	return graph.NodeRadius(t.G, t.Exec.Pos, u)
}

// Summary holds the aggregate statistics the paper's Table 1 reports.
type Summary struct {
	// AvgDegree is the mean node degree of the final graph.
	AvgDegree float64
	// AvgRadius is the mean per-node transmission radius.
	AvgRadius float64
	// Edges is the number of edges in the final graph.
	Edges int
	// Components is the number of connected components.
	Components int
	// BoundaryNodes counts nodes that still had an α-gap at max power.
	BoundaryNodes int
}

// Summarize computes the aggregate statistics of the topology.
func (t *Topology) Summarize() Summary {
	boundary := 0
	for _, nr := range t.Exec.Nodes {
		if nr.Boundary {
			boundary++
		}
	}
	return Summary{
		AvgDegree:     graph.AvgDegree(t.G),
		AvgRadius:     graph.AvgRadius(t.G, t.Exec.Pos),
		Edges:         t.G.EdgeCount(),
		Components:    graph.ComponentCount(t.G),
		BoundaryNodes: boundary,
	}
}
