package core

import (
	"math"
	"testing"
	"testing/quick"

	"cbtc/internal/graph"
	"cbtc/internal/workload"
)

// Theorem 2.1 as a quick property: any placement, any α ≤ 5π/6.
func TestQuickConnectivityPreserved(t *testing.T) {
	m := defaultModel()
	f := func(seed uint64, nRaw uint8, alphaRaw float64) bool {
		if math.IsNaN(alphaRaw) {
			return true
		}
		n := int(nRaw%50) + 5
		alpha := 0.3 + math.Mod(math.Abs(alphaRaw), 1)*(AlphaConnectivity-0.3)
		pos := workload.Uniform(workload.Rand(seed), n, 1500, 1500)
		exec, err := Run(pos, m, alpha)
		if err != nil {
			return false
		}
		return graph.SamePartition(MaxPowerGraph(pos, m), exec.Nalpha().SymmetricClosure())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The oracle is a pure function of its inputs.
func TestQuickOracleDeterministic(t *testing.T) {
	m := defaultModel()
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%40) + 2
		pos := workload.Uniform(workload.Rand(seed), n, 1500, 1500)
		a, err := Run(pos, m, AlphaConnectivity)
		if err != nil {
			return false
		}
		b, err := Run(pos, m, AlphaConnectivity)
		if err != nil {
			return false
		}
		for u := range pos {
			if a.Nodes[u].GrowPower != b.Nodes[u].GrowPower ||
				a.Nodes[u].Boundary != b.Nodes[u].Boundary ||
				len(a.Nodes[u].Neighbors) != len(b.Nodes[u].Neighbors) {
				return false
			}
			for i := range a.Nodes[u].Neighbors {
				if a.Nodes[u].Neighbors[i] != b.Nodes[u].Neighbors[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Per-node growing power is monotone non-increasing in α.
func TestQuickPowerMonotoneInAlpha(t *testing.T) {
	m := defaultModel()
	f := func(seed uint64, aRaw, bRaw float64) bool {
		if math.IsNaN(aRaw) || math.IsNaN(bRaw) {
			return true
		}
		a := 0.3 + math.Mod(math.Abs(aRaw), 1)*(AlphaConnectivity-0.3)
		b := 0.3 + math.Mod(math.Abs(bRaw), 1)*(AlphaConnectivity-0.3)
		if a > b {
			a, b = b, a
		}
		pos := workload.Uniform(workload.Rand(seed), 30, 1500, 1500)
		ea, err := Run(pos, m, a)
		if err != nil {
			return false
		}
		eb, err := Run(pos, m, b)
		if err != nil {
			return false
		}
		for u := range pos {
			// Wider cone (b ≥ a) is weaker: p_{u,b} ≤ p_{u,a}.
			if eb.Nodes[u].GrowPower > ea.Nodes[u].GrowPower+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The optimization pipeline only ever removes: all-ops ⊆ shrink-closure
// ⊆ basic closure ⊆ G_R.
func TestQuickPipelineSubgraphChain(t *testing.T) {
	m := defaultModel()
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%60) + 5
		pos := workload.Uniform(workload.Rand(seed), n, 1500, 1500)
		exec, err := Run(pos, m, AlphaConnectivity)
		if err != nil {
			return false
		}
		basic, err := BuildTopology(exec, Options{})
		if err != nil {
			return false
		}
		shrunk, err := BuildTopology(exec, Options{ShrinkBack: true})
		if err != nil {
			return false
		}
		all, err := BuildTopology(exec, Options{ShrinkBack: true, PairwiseRemoval: true})
		if err != nil {
			return false
		}
		gr := MaxPowerGraph(pos, m)
		return all.G.IsSubgraphOf(shrunk.G) &&
			shrunk.G.IsSubgraphOf(basic.G) &&
			basic.G.IsSubgraphOf(gr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Shrink-back and non-contributing removal are idempotent.
func TestQuickShrinkIdempotent(t *testing.T) {
	m := defaultModel()
	f := func(seed uint64) bool {
		pos := workload.Uniform(workload.Rand(seed), 40, 1500, 1500)
		exec, err := Run(pos, m, AlphaConnectivity)
		if err != nil {
			return false
		}
		once := ShrinkBack(exec)
		twice := ShrinkBack(once)
		for u := range pos {
			if len(once.Nodes[u].Neighbors) != len(twice.Nodes[u].Neighbors) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Clone isolation: transformations never mutate their input.
func TestQuickTransformsDoNotMutate(t *testing.T) {
	m := defaultModel()
	f := func(seed uint64) bool {
		pos := workload.Uniform(workload.Rand(seed), 30, 1500, 1500)
		exec, err := Run(pos, m, AlphaConnectivity)
		if err != nil {
			return false
		}
		before := exec.Clone()
		_ = ShrinkBack(exec)
		_ = RemoveNonContributing(exec)
		if _, err := BuildTopology(exec, Options{ShrinkBack: true, PairwiseRemoval: true}); err != nil {
			return false
		}
		for u := range pos {
			if len(exec.Nodes[u].Neighbors) != len(before.Nodes[u].Neighbors) {
				return false
			}
			for i := range exec.Nodes[u].Neighbors {
				if exec.Nodes[u].Neighbors[i] != before.Nodes[u].Neighbors[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
