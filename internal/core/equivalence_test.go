package core

import (
	"context"
	"testing"

	"cbtc/internal/geom"
	"cbtc/internal/radio"
	"cbtc/internal/spatial"
	"cbtc/internal/workload"
)

func sameExecution(t *testing.T, label string, a, b *Execution) {
	t.Helper()
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("%s: node counts diverge: %d vs %d", label, len(a.Nodes), len(b.Nodes))
	}
	for u := range a.Nodes {
		na, nb := a.Nodes[u], b.Nodes[u]
		if na.GrowPower != nb.GrowPower || na.Boundary != nb.Boundary {
			t.Fatalf("%s: node %d outcome diverges: (%v,%v) vs (%v,%v)",
				label, u, na.GrowPower, na.Boundary, nb.GrowPower, nb.Boundary)
		}
		if len(na.Neighbors) != len(nb.Neighbors) {
			t.Fatalf("%s: node %d neighbor counts diverge: %d vs %d",
				label, u, len(na.Neighbors), len(nb.Neighbors))
		}
		for i := range na.Neighbors {
			if na.Neighbors[i] != nb.Neighbors[i] {
				t.Fatalf("%s: node %d neighbor %d diverges: %+v vs %+v",
					label, u, i, na.Neighbors[i], nb.Neighbors[i])
			}
		}
	}
}

// TestOracleGridMatchesNaive is the oracle half of the naive-vs-grid
// equivalence guarantee: the grid-backed candidate gather produces an
// Execution identical — every neighbor, tag, power, boundary flag — to
// the full placement scan, across densities and cone angles, including
// exact-distance tie constructions.
func TestOracleGridMatchesNaive(t *testing.T) {
	ctx := context.Background()
	m := radio.Default(workload.PaperRadius)
	for _, tc := range []struct {
		name string
		pos  []geom.Point
	}{
		{"sparse", workload.Uniform(workload.Rand(1), 60, 6000, 6000)},
		{"paper-density", workload.Uniform(workload.Rand(2), 100, 1500, 1500)},
		{"dense", workload.Uniform(workload.Rand(3), 120, 700, 700)},
		{"clustered", workload.Clustered(workload.Rand(4), 120, 5, 200, 3000, 3000)},
		{"chain-exact-R", workload.Chain(20, workload.PaperRadius)},
		{"ring-ties", workload.Ring(24, workload.PaperRadius/2, 2000, 2000)},
	} {
		for _, alpha := range []float64{AlphaConnectivity, AlphaAsymmetric} {
			naive, err := RunNaive(ctx, tc.pos, m, alpha)
			if err != nil {
				t.Fatalf("%s: naive: %v", tc.name, err)
			}
			grid, err := RunContext(ctx, tc.pos, m, alpha)
			if err != nil {
				t.Fatalf("%s: grid: %v", tc.name, err)
			}
			sameExecution(t, tc.name, naive, grid)
		}
	}
}

// TestMaxPowerGraphGridMatchesNaive pins G_R construction to the naive
// all-pairs edge set.
func TestMaxPowerGraphGridMatchesNaive(t *testing.T) {
	m := radio.Default(workload.PaperRadius)
	for seed := uint64(0); seed < 5; seed++ {
		pos := workload.Uniform(workload.Rand(seed), 150, 2000, 2000)
		naive := MaxPowerGraphIndexed(pos, m, nil)
		grid := MaxPowerGraph(pos, m)
		ne, ge := naive.Edges(), grid.Edges()
		if len(ne) != len(ge) {
			t.Fatalf("seed %d: edge counts diverge: %d vs %d", seed, len(ne), len(ge))
		}
		for i := range ne {
			if ne[i] != ge[i] {
				t.Fatalf("seed %d: edge %d diverges: %v vs %v", seed, i, ne[i], ge[i])
			}
		}
	}
}

// TestRunNodeAliveMaskWithIndex checks that the alive mask and a live-only
// index compose: a grid holding only live nodes and a full grid with the
// mask applied both match the naive masked scan.
func TestRunNodeAliveMaskWithIndex(t *testing.T) {
	m := radio.Default(workload.PaperRadius)
	pos := workload.Uniform(workload.Rand(11), 80, 1500, 1500)
	alive := make([]bool, len(pos))
	for i := range alive {
		alive[i] = i%3 != 0
	}
	full := spatial.New(pos, m.MaxRadius)
	liveOnly := spatial.New(pos, m.MaxRadius)
	for i, ok := range alive {
		if !ok {
			liveOnly.Remove(i)
		}
	}
	for u := range pos {
		if !alive[u] {
			continue
		}
		want := RunNode(pos, alive, m, AlphaConnectivity, u, nil)
		gotFull := RunNode(pos, alive, m, AlphaConnectivity, u, full)
		gotLive := RunNode(pos, alive, m, AlphaConnectivity, u, liveOnly)
		for _, got := range []NodeResult{gotFull, gotLive} {
			if got.GrowPower != want.GrowPower || got.Boundary != want.Boundary || len(got.Neighbors) != len(want.Neighbors) {
				t.Fatalf("node %d: masked results diverge: %+v vs %+v", u, got, want)
			}
			for i := range want.Neighbors {
				if got.Neighbors[i] != want.Neighbors[i] {
					t.Fatalf("node %d neighbor %d diverges: %+v vs %+v", u, i, got.Neighbors[i], want.Neighbors[i])
				}
			}
		}
	}
}
