package core

import (
	"errors"
	"math"
	"testing"

	"cbtc/internal/geom"
	"cbtc/internal/radio"
	"cbtc/internal/workload"
)

func defaultModel() radio.Model { return radio.Default(workload.PaperRadius) }

func mustRun(t *testing.T, pos []geom.Point, m radio.Model, alpha float64) *Execution {
	t.Helper()
	e, err := Run(pos, m, alpha)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return e
}

func TestRunValidation(t *testing.T) {
	m := defaultModel()
	pos := []geom.Point{geom.Pt(0, 0)}
	tests := []struct {
		name    string
		alpha   float64
		wantErr error
	}{
		{"zero alpha", 0, ErrBadAlpha},
		{"negative alpha", -1, ErrBadAlpha},
		{"alpha above 2π", 7, ErrBadAlpha},
		{"nan alpha", math.NaN(), ErrBadAlpha},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Run(pos, m, tt.alpha); !errors.Is(err, tt.wantErr) {
				t.Errorf("Run error = %v, want %v", err, tt.wantErr)
			}
		})
	}
	if _, err := Run([]geom.Point{{X: math.NaN()}}, m, math.Pi); !errors.Is(err, ErrBadInput) {
		t.Errorf("NaN position must be rejected")
	}
	if _, err := Run(pos, radio.Model{}, math.Pi); !errors.Is(err, ErrBadInput) {
		t.Errorf("invalid model must be rejected")
	}
}

func TestRunEmptyAndSingle(t *testing.T) {
	m := defaultModel()
	e := mustRun(t, nil, m, AlphaConnectivity)
	if e.Len() != 0 {
		t.Errorf("empty network must stay empty")
	}
	e = mustRun(t, []geom.Point{geom.Pt(0, 0)}, m, AlphaConnectivity)
	nr := e.Nodes[0]
	if !nr.Boundary || nr.GrowPower != m.MaxPower() || len(nr.Neighbors) != 0 {
		t.Errorf("a lone node is a boundary node at max power: %+v", nr)
	}
}

func TestRunPair(t *testing.T) {
	m := defaultModel()
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0)}
	e := mustRun(t, pos, m, AlphaConnectivity)
	for u := 0; u < 2; u++ {
		nr := e.Nodes[u]
		// A pair can never close every cone: both are boundary nodes, but
		// they do discover each other.
		if !nr.Boundary {
			t.Errorf("node %d: want boundary", u)
		}
		if len(nr.Neighbors) != 1 || nr.Neighbors[0].ID != 1-u {
			t.Errorf("node %d neighbors = %+v, want the other node", u, nr.Neighbors)
		}
		if !almostEq(nr.Neighbors[0].Dist, 100, 1e-9) {
			t.Errorf("node %d neighbor dist = %v, want 100", u, nr.Neighbors[0].Dist)
		}
	}
}

func TestRunOutOfRangePair(t *testing.T) {
	m := defaultModel()
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(501, 0)}
	e := mustRun(t, pos, m, AlphaConnectivity)
	for u := 0; u < 2; u++ {
		if len(e.Nodes[u].Neighbors) != 0 {
			t.Errorf("node %d discovered an out-of-range neighbor", u)
		}
	}
}

// A node surrounded by a tight ring of neighbors stops at the ring
// distance: the minimal-power semantics.
func TestRunStopsAtMinimalPower(t *testing.T) {
	m := defaultModel()
	center := geom.Pt(750, 750)
	pos := []geom.Point{center}
	// 8 ring nodes at distance 100: consecutive angular gaps π/4 < 5π/6.
	for i := 0; i < 8; i++ {
		pos = append(pos, center.Polar(100, float64(i)*geom.TwoPi/8))
	}
	// A far node at distance 400 that must NOT be discovered by node 0.
	pos = append(pos, center.Polar(400, 0.3))

	e := mustRun(t, pos, m, AlphaConnectivity)
	nr := e.Nodes[0]
	if nr.Boundary {
		t.Fatalf("ring closes every cone; node 0 must not be a boundary node")
	}
	if !almostEq(nr.GrowPower, m.PowerFor(100), 1e-6) {
		t.Errorf("GrowPower = %v, want p(100) = %v", nr.GrowPower, m.PowerFor(100))
	}
	if len(nr.Neighbors) != 8 {
		t.Errorf("node 0 discovered %d neighbors, want exactly the 8-ring", len(nr.Neighbors))
	}
	for _, nb := range nr.Neighbors {
		if nb.ID == 9 {
			t.Errorf("far node was discovered despite closed cones")
		}
	}
}

// Growing stops only when the gap closes: with all ring nodes in a
// half-plane, the node keeps growing to max power.
func TestRunBoundaryWhenHalfPlaneEmpty(t *testing.T) {
	m := defaultModel()
	center := geom.Pt(100, 100)
	pos := []geom.Point{center}
	for i := 0; i < 5; i++ {
		// All neighbors in bearings [0, π/2].
		pos = append(pos, center.Polar(50+float64(i)*10, float64(i)*math.Pi/8))
	}
	e := mustRun(t, pos, m, AlphaConnectivity)
	nr := e.Nodes[0]
	if !nr.Boundary {
		t.Errorf("node with a 3π/2 empty sector must be a boundary node")
	}
	if nr.GrowPower != m.MaxPower() {
		t.Errorf("boundary node GrowPower = %v, want max power", nr.GrowPower)
	}
	if len(nr.Neighbors) != 5 {
		t.Errorf("boundary node must still discover all reachable nodes")
	}
}

// Power tags are the exact minimal powers in the oracle.
func TestRunPowerTags(t *testing.T) {
	m := defaultModel()
	center := geom.Pt(750, 750)
	pos := []geom.Point{center,
		center.Polar(100, 0),
		center.Polar(200, math.Pi/2),
		center.Polar(300, math.Pi),
		center.Polar(400, 3*math.Pi/2),
	}
	e := mustRun(t, pos, m, AlphaConnectivity)
	for _, nb := range e.Nodes[0].Neighbors {
		if want := m.PowerFor(nb.Dist); !almostEq(nb.Power, want, 1e-6) {
			t.Errorf("neighbor %d power tag = %v, want p(dist) = %v", nb.ID, nb.Power, want)
		}
	}
}

// Equidistant nodes are admitted together.
func TestRunEquidistantGroup(t *testing.T) {
	m := defaultModel()
	center := geom.Pt(750, 750)
	pos := []geom.Point{center}
	for i := 0; i < 4; i++ {
		pos = append(pos, center.Polar(200, float64(i)*math.Pi/2))
	}
	e := mustRun(t, pos, m, 3*math.Pi/2)
	nr := e.Nodes[0]
	// With α = 3π/2, a single node would leave a gap of 2π > α; two
	// opposite nodes leave π < 3π/2, so the first group suffices — but
	// all four are equidistant, so all four are discovered at once.
	if len(nr.Neighbors) != 4 {
		t.Errorf("equidistant group split: got %d neighbors, want 4", len(nr.Neighbors))
	}
}

func TestMaxPowerGraph(t *testing.T) {
	m := defaultModel()
	pos := []geom.Point{
		geom.Pt(0, 0), geom.Pt(500, 0), // exactly R apart: edge
		geom.Pt(0, 501), // out of range of node 0
	}
	g := MaxPowerGraph(pos, m)
	if !g.HasEdge(0, 1) {
		t.Errorf("distance exactly R must be an edge")
	}
	if g.HasEdge(0, 2) {
		t.Errorf("distance R+1 must not be an edge")
	}
	if !g.HasEdge(1, 2) {
		// d = sqrt(500² + 501²) ≈ 708 > 500.
		t.Skip("unreachable: documented for clarity")
	}
}

// p_{u,α} is monotone non-increasing in α: a wider cone is easier to
// cover, so the growing phase stops no later.
func TestGrowPowerMonotoneInAlpha(t *testing.T) {
	m := defaultModel()
	for seed := uint64(0); seed < 8; seed++ {
		pos := workload.Uniform(workload.Rand(seed), 60, 1500, 1500)
		e23 := mustRun(t, pos, m, AlphaAsymmetric)
		e56 := mustRun(t, pos, m, AlphaConnectivity)
		for u := range pos {
			if e56.Nodes[u].GrowPower > e23.Nodes[u].GrowPower+1e-6 {
				t.Errorf("seed %d node %d: p_{u,5π/6} = %v > p_{u,2π/3} = %v",
					seed, u, e56.Nodes[u].GrowPower, e23.Nodes[u].GrowPower)
			}
		}
	}
}

// Every discovered neighbor is within range, and the relation N_α only
// contains G_R edges.
func TestNalphaSubgraphOfGR(t *testing.T) {
	m := defaultModel()
	for seed := uint64(0); seed < 5; seed++ {
		pos := workload.Uniform(workload.Rand(seed), 80, 1500, 1500)
		e := mustRun(t, pos, m, AlphaConnectivity)
		gr := MaxPowerGraph(pos, m)
		if !e.Nalpha().SymmetricClosure().IsSubgraphOf(gr) {
			t.Errorf("seed %d: G_α is not a subgraph of G_R", seed)
		}
	}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
