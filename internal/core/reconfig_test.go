package core

import (
	"math"
	"testing"

	"cbtc/internal/geom"
	"cbtc/internal/workload"
)

// fourQuadrantNeighbors builds a neighbor set with one node per
// quadrant, all at distance 100 — gaps of π/2 everywhere.
func fourQuadrantNeighbors(m interface{ PowerFor(float64) float64 }) []Discovery {
	out := make([]Discovery, 4)
	for i := range out {
		dir := math.Pi/4 + float64(i)*math.Pi/2
		out[i] = Discovery{ID: i + 1, Dist: 100, Dir: dir, Power: m.PowerFor(100)}
	}
	return out
}

func TestReconfiguratorLeave(t *testing.T) {
	m := defaultModel()
	r := NewReconfigurator(AlphaConnectivity, m, fourQuadrantNeighbors(m))
	if r.HasGap() {
		t.Fatalf("four quadrants at α=5π/6 must have no gap")
	}
	// Dropping one quadrant opens a gap of π > 5π/6.
	if got := r.Leave(2); got != ActionRegrow {
		t.Errorf("Leave(2) = %v, want ActionRegrow", got)
	}
	if r.Has(2) {
		t.Errorf("left neighbor must be gone")
	}
	// Leaving an unknown node is a no-op.
	if got := r.Leave(99); got != ActionNone {
		t.Errorf("Leave(unknown) = %v, want ActionNone", got)
	}
}

func TestReconfiguratorLeaveNoGap(t *testing.T) {
	m := defaultModel()
	// Six neighbors at π/3 spacing: dropping one leaves 2π/3 ≤ 5π/6.
	var nbs []Discovery
	for i := 0; i < 6; i++ {
		nbs = append(nbs, Discovery{ID: i + 1, Dist: 100, Dir: float64(i) * math.Pi / 3, Power: m.PowerFor(100)})
	}
	r := NewReconfigurator(AlphaConnectivity, m, nbs)
	if got := r.Leave(1); got != ActionNone {
		t.Errorf("Leave with remaining coverage = %v, want ActionNone", got)
	}
}

func TestReconfiguratorJoinShrinks(t *testing.T) {
	m := defaultModel()
	r := NewReconfigurator(AlphaConnectivity, m, fourQuadrantNeighbors(m))
	// A far neighbor in an already-covered direction is dropped by the
	// farthest-first shrink.
	if got := r.Join(Discovery{ID: 9, Dist: 450, Dir: math.Pi / 4, Power: m.PowerFor(450)}); got != ActionNone {
		t.Errorf("Join = %v, want ActionNone", got)
	}
	if r.Has(9) {
		t.Errorf("redundant far joiner must be shrunk away")
	}
	for i := 1; i <= 4; i++ {
		if !r.Has(i) {
			t.Errorf("original neighbor %d must survive", i)
		}
	}
}

func TestReconfiguratorJoinKeepsUseful(t *testing.T) {
	m := defaultModel()
	// Only two neighbors, big gaps: a joiner filling a gap must be kept.
	nbs := []Discovery{
		{ID: 1, Dist: 100, Dir: 0, Power: m.PowerFor(100)},
		{ID: 2, Dist: 100, Dir: math.Pi / 2, Power: m.PowerFor(100)},
	}
	r := NewReconfigurator(AlphaConnectivity, m, nbs)
	r.Join(Discovery{ID: 3, Dist: 400, Dir: math.Pi, Power: m.PowerFor(400)})
	if !r.Has(3) {
		t.Errorf("gap-filling joiner must be kept")
	}
}

func TestReconfiguratorAngleChange(t *testing.T) {
	m := defaultModel()
	r := NewReconfigurator(AlphaConnectivity, m, fourQuadrantNeighbors(m))
	// Small wobble: no gap, no action.
	if got := r.AngleChange(1, math.Pi/4+0.05); got != ActionNone {
		t.Errorf("small angle change = %v, want ActionNone", got)
	}
	// Node 1 swings into node 2's quadrant: the first quadrant empties,
	// gap opens (max gap grows past 5π/6... 3π/2 between node 4 and the
	// moved node going counterclockwise through the empty quadrant).
	if got := r.AngleChange(1, 3*math.Pi/4); got != ActionRegrow {
		t.Errorf("large angle change = %v, want ActionRegrow", got)
	}
	if got := r.AngleChange(42, 1.0); got != ActionNone {
		t.Errorf("angle change of unknown node = %v, want ActionNone", got)
	}
}

func TestRegrowStartPower(t *testing.T) {
	m := defaultModel()
	r := NewReconfigurator(AlphaConnectivity, m, fourQuadrantNeighbors(m))
	if got, want := r.RegrowStartPower(), m.PowerFor(100); !almostEq(got, want, 1e-9) {
		t.Errorf("RegrowStartPower = %v, want p(100) = %v", got, want)
	}
	empty := NewReconfigurator(AlphaConnectivity, m, nil)
	if got := empty.RegrowStartPower(); got <= 0 || got > m.MaxPower() {
		t.Errorf("empty RegrowStartPower = %v, want in (0, P]", got)
	}
}

func TestActionString(t *testing.T) {
	if ActionNone.String() != "none" || ActionRegrow.String() != "regrow" {
		t.Errorf("unexpected Action strings: %v %v", ActionNone, ActionRegrow)
	}
	if Action(0).String() != "unknown" {
		t.Errorf("zero Action must stringify as unknown")
	}
}

func TestBeaconPowerRules(t *testing.T) {
	m := defaultModel()
	pos := workload.Uniform(workload.Rand(6), 80, 1500, 1500)
	e := mustRun(t, pos, m, AlphaConnectivity)

	basic, err := BuildTopology(e, Options{})
	if err != nil {
		t.Fatal(err)
	}
	shrunk, err := BuildTopology(e, Options{ShrinkBack: true})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := BuildTopology(e, Options{ShrinkBack: true, PairwiseRemoval: true})
	if err != nil {
		t.Fatal(err)
	}

	for u := range pos {
		// Basic rule: beacon reaches every E_α neighbor.
		want := m.PowerFor(basic.Radius(u))
		if got := basic.BeaconPower(u); !almostEq(got, want, 1e-6) {
			t.Errorf("node %d basic beacon = %v, want %v", u, got, want)
		}
		// Shrink-back rule: boundary nodes beacon at the basic power
		// (maximum power), never below.
		if e.Nodes[u].Boundary {
			if got := shrunk.BeaconPower(u); !almostEq(got, m.MaxPower(), 1e-6) {
				t.Errorf("boundary node %d shrunk beacon = %v, want max power", u, got)
			}
		}
		// Pairwise rule: beacon power covers the pre-pairwise graph, so
		// it is never below the power for the final (pruned) graph.
		if pruned.BeaconPower(u) < m.PowerFor(pruned.Radius(u))-1e-6 {
			t.Errorf("node %d pairwise beacon below final radius", u)
		}
	}
}

func TestBeaconPowerCoversGpre(t *testing.T) {
	m := defaultModel()
	pos := workload.Uniform(workload.Rand(12), 80, 1500, 1500)
	e := mustRun(t, pos, m, AlphaConnectivity)
	topo, err := BuildTopology(e, Options{ShrinkBack: true, PairwiseRemoval: true})
	if err != nil {
		t.Fatal(err)
	}
	for u := range pos {
		beacon := topo.BeaconPower(u)
		var bad bool
		topo.Gpre.EachNeighbor(u, func(v int) {
			if !m.Reaches(beacon, pos[u].Dist(pos[v])) {
				bad = true
			}
		})
		if bad {
			t.Errorf("node %d beacon power %v does not cover its E_α neighbors", u, beacon)
		}
	}
}

// A regrow round-trip: after Leave opens a gap, rerunning the oracle
// from the placement repairs the neighbor set.
func TestReconfigRegrowRoundTrip(t *testing.T) {
	m := defaultModel()
	center := geom.Pt(750, 750)
	pos := []geom.Point{center}
	for i := 0; i < 6; i++ {
		pos = append(pos, center.Polar(150, float64(i)*math.Pi/3))
	}
	e := mustRun(t, pos, m, AlphaConnectivity)
	r := NewReconfigurator(AlphaConnectivity, m, e.Nodes[0].Neighbors)

	// Two adjacent ring nodes die: a gap of π opens.
	r.Leave(1)
	if got := r.Leave(2); got != ActionRegrow {
		t.Fatalf("second leave must trigger regrow, got %v", got)
	}

	// The protocol would now rerun CBTC; the oracle over the surviving
	// placement stands in for it.
	survivors := []geom.Point{pos[0], pos[3], pos[4], pos[5], pos[6]}
	e2 := mustRun(t, survivors, m, AlphaConnectivity)
	if len(e2.Nodes[0].Neighbors) != 4 {
		t.Errorf("regrown node 0 must see the 4 survivors, got %d", len(e2.Nodes[0].Neighbors))
	}
}
