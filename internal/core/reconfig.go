package core

import (
	"sort"

	"cbtc/internal/geom"
	"cbtc/internal/radio"
)

// Action is what a reconfiguration event requires of the enclosing
// protocol after the Reconfigurator has updated its local state.
type Action int

const (
	// ActionNone means the local state was repaired in place; no protocol
	// activity is needed.
	ActionNone Action = iota + 1
	// ActionRegrow means an α-gap opened: the node must rerun the
	// CBTC(α) growing phase, starting from RegrowStartPower().
	ActionRegrow
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ActionNone:
		return "none"
	case ActionRegrow:
		return "regrow"
	default:
		return "unknown"
	}
}

// Reconfigurator is the per-node reconfiguration state machine of §4.
// It maintains the node's neighbor set across joinᵤ(v), leaveᵤ(v) and
// aChangeᵤ(v) events detected by the Neighbor Discovery Protocol, and
// tells the protocol when a full regrow is needed.
//
// The Reconfigurator is not safe for concurrent use; the discrete-event
// simulator serializes all events of a node.
type Reconfigurator struct {
	alpha     float64
	model     radio.Model
	neighbors map[int]Discovery
}

// NewReconfigurator builds the state machine from the node's CBTC
// result.
func NewReconfigurator(alpha float64, model radio.Model, initial []Discovery) *Reconfigurator {
	r := &Reconfigurator{
		alpha:     alpha,
		model:     model,
		neighbors: make(map[int]Discovery, len(initial)),
	}
	for _, d := range initial {
		r.neighbors[d.ID] = d
	}
	return r
}

// Leave handles a leaveᵤ(v) event: v's beacons stopped. If dropping v
// opens an α-gap the node must regrow (the paper restarts CBTC from
// p(rad⁻_{u,α}) rather than from p₀).
func (r *Reconfigurator) Leave(id int) Action {
	if _, ok := r.neighbors[id]; !ok {
		return ActionNone
	}
	delete(r.neighbors, id)
	if geom.HasGap(r.Directions(), r.alpha) {
		return ActionRegrow
	}
	return ActionNone
}

// Join handles a joinᵤ(v) event: a beacon from a new neighbor. The node
// records the direction and needed power, then — as in the shrink-back
// operation — removes the farthest neighbors whose removal leaves the
// coverage unchanged.
func (r *Reconfigurator) Join(d Discovery) Action {
	r.neighbors[d.ID] = d
	r.shrink()
	return ActionNone
}

// AngleChange handles an aChangeᵤ(v) event: v's bearing moved. If the
// new direction set has an α-gap the node regrows; otherwise it shrinks
// as after a join.
func (r *Reconfigurator) AngleChange(id int, newDir float64) Action {
	d, ok := r.neighbors[id]
	if !ok {
		return ActionNone
	}
	d.Dir = geom.Normalize(newDir)
	r.neighbors[id] = d
	if geom.HasGap(r.Directions(), r.alpha) {
		return ActionRegrow
	}
	r.shrink()
	return ActionNone
}

// shrink removes neighbors farthest-first while coverage is unchanged,
// stopping at the first neighbor whose removal would reduce coverage.
func (r *Reconfigurator) shrink() {
	list := r.Neighbors()
	sort.Slice(list, func(i, j int) bool { return list[i].Dist > list[j].Dist })
	full := geom.Coverage(r.Directions(), r.alpha)
	for _, d := range list {
		delete(r.neighbors, d.ID)
		if !geom.Coverage(r.Directions(), r.alpha).Equal(full, 10*geom.Eps) {
			r.neighbors[d.ID] = d // removal changed coverage: keep and stop
			return
		}
	}
}

// Neighbors returns the current neighbor set sorted by ID.
func (r *Reconfigurator) Neighbors() []Discovery {
	out := make([]Discovery, 0, len(r.neighbors))
	for _, d := range r.neighbors {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Has reports whether id is currently a neighbor.
func (r *Reconfigurator) Has(id int) bool {
	_, ok := r.neighbors[id]
	return ok
}

// Directions returns the current direction set.
func (r *Reconfigurator) Directions() []float64 {
	out := make([]float64, 0, len(r.neighbors))
	for _, d := range r.neighbors {
		out = append(out, d.Dir)
	}
	return out
}

// HasGap reports whether the current direction set leaves an α-gap.
func (r *Reconfigurator) HasGap() bool {
	return geom.HasGap(r.Directions(), r.alpha)
}

// RegrowStartPower returns p(rad⁻_{u,α}) for the current neighbor set —
// the power the paper restarts the growing phase from. With no neighbors
// it falls back to a small fraction of maximum power.
func (r *Reconfigurator) RegrowStartPower() float64 {
	var maxDist float64
	for _, d := range r.neighbors {
		if d.Dist > maxDist {
			maxDist = d.Dist
		}
	}
	if maxDist == 0 {
		return r.model.MaxPower() / 1024
	}
	return r.model.PowerFor(maxDist)
}
