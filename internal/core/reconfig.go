package core

import (
	"slices"

	"cbtc/internal/geom"
	"cbtc/internal/radio"
)

// Action is what a reconfiguration event requires of the enclosing
// protocol after the Reconfigurator has updated its local state.
type Action int

const (
	// ActionNone means the local state was repaired in place; no protocol
	// activity is needed.
	ActionNone Action = iota + 1
	// ActionRegrow means an α-gap opened: the node must rerun the
	// CBTC(α) growing phase, starting from RegrowStartPower().
	ActionRegrow
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ActionNone:
		return "none"
	case ActionRegrow:
		return "regrow"
	default:
		return "unknown"
	}
}

// Reconfigurator is the per-node reconfiguration state machine of §4.
// It maintains the node's neighbor set across joinᵤ(v), leaveᵤ(v) and
// aChangeᵤ(v) events detected by the Neighbor Discovery Protocol, and
// tells the protocol when a full regrow is needed.
//
// The neighbor set is a compact id-sorted slice (neighbor counts are
// small and sessions build one machine per recomputed node, so the
// slice beats a map on both allocation and iteration order — every
// derived list is deterministic by construction). The Reconfigurator is
// not safe for concurrent use; the discrete-event simulator serializes
// all events of a node.
type Reconfigurator struct {
	alpha float64
	model radio.Model
	nbrs  []Discovery // current neighbor set, ascending ID
	dirs  []float64   // scratch: sorted direction set for gap tests
	dist  []Discovery // scratch: shrink's farthest-first order
}

// NewReconfigurator builds the state machine from the node's CBTC
// result. The initial list is copied, never retained, so callers may
// pass a reused buffer.
func NewReconfigurator(alpha float64, model radio.Model, initial []Discovery) *Reconfigurator {
	r := &Reconfigurator{
		alpha: alpha,
		model: model,
		nbrs:  make([]Discovery, 0, len(initial)),
	}
	for _, d := range initial {
		r.set(d)
	}
	return r
}

// find returns the position of id in the sorted neighbor slice.
func (r *Reconfigurator) find(id int) (int, bool) {
	return slices.BinarySearchFunc(r.nbrs, id, func(d Discovery, id int) int {
		return d.ID - id
	})
}

// set inserts d, replacing any existing entry with the same ID.
func (r *Reconfigurator) set(d Discovery) {
	i, ok := r.find(d.ID)
	if ok {
		r.nbrs[i] = d
		return
	}
	r.nbrs = slices.Insert(r.nbrs, i, d)
}

// sortedDirs fills the reusable direction scratch with the current
// bearings in ascending (normalized) order, ready for HasGapSorted.
func (r *Reconfigurator) sortedDirs() []float64 {
	out := r.dirs[:0]
	for _, d := range r.nbrs {
		out = geom.InsertSorted(out, d.Dir)
	}
	r.dirs = out
	return out
}

// hasGap is the §4 gap-α test over the current neighbor set, run on the
// reusable sorted scratch instead of MaxGap's per-call sort copy.
func (r *Reconfigurator) hasGap() bool {
	return geom.HasGapSorted(r.sortedDirs(), r.alpha)
}

// Leave handles a leaveᵤ(v) event: v's beacons stopped. If dropping v
// opens an α-gap the node must regrow (the paper restarts CBTC from
// p(rad⁻_{u,α}) rather than from p₀).
func (r *Reconfigurator) Leave(id int) Action {
	i, ok := r.find(id)
	if !ok {
		return ActionNone
	}
	r.nbrs = slices.Delete(r.nbrs, i, i+1)
	if r.hasGap() {
		return ActionRegrow
	}
	return ActionNone
}

// Join handles a joinᵤ(v) event: a beacon from a new neighbor. The node
// records the direction and needed power, then — as in the shrink-back
// operation — removes the farthest neighbors whose removal leaves the
// coverage unchanged.
func (r *Reconfigurator) Join(d Discovery) Action {
	r.set(d)
	r.shrink()
	return ActionNone
}

// AngleChange handles an aChangeᵤ(v) event: v's bearing moved. If the
// new direction set has an α-gap the node regrows; otherwise it shrinks
// as after a join.
func (r *Reconfigurator) AngleChange(id int, newDir float64) Action {
	i, ok := r.find(id)
	if !ok {
		return ActionNone
	}
	r.nbrs[i].Dir = geom.Normalize(newDir)
	if r.hasGap() {
		return ActionRegrow
	}
	r.shrink()
	return ActionNone
}

// shrink removes neighbors farthest-first while coverage is unchanged,
// stopping at the first neighbor whose removal would reduce coverage.
// Candidates are ordered by (distance descending, id ascending) — a
// total order, so removal decisions are deterministic.
func (r *Reconfigurator) shrink() {
	r.dist = append(r.dist[:0], r.nbrs...)
	slices.SortFunc(r.dist, func(a, b Discovery) int {
		if a.Dist != b.Dist {
			if a.Dist > b.Dist {
				return -1
			}
			return 1
		}
		return a.ID - b.ID
	})
	full := geom.Coverage(r.sortedDirs(), r.alpha)
	for _, d := range r.dist {
		i, ok := r.find(d.ID)
		if !ok {
			continue
		}
		r.nbrs = slices.Delete(r.nbrs, i, i+1)
		if !geom.Coverage(r.sortedDirs(), r.alpha).Equal(full, 10*geom.Eps) {
			r.set(d) // removal changed coverage: keep and stop
			return
		}
	}
}

// Neighbors returns the current neighbor set sorted by ID.
func (r *Reconfigurator) Neighbors() []Discovery {
	return slices.Clone(r.nbrs)
}

// Has reports whether id is currently a neighbor.
func (r *Reconfigurator) Has(id int) bool {
	_, ok := r.find(id)
	return ok
}

// Directions returns the current direction set, in neighbor-id order.
func (r *Reconfigurator) Directions() []float64 {
	out := make([]float64, len(r.nbrs))
	for i, d := range r.nbrs {
		out[i] = d.Dir
	}
	return out
}

// HasGap reports whether the current direction set leaves an α-gap.
func (r *Reconfigurator) HasGap() bool { return r.hasGap() }

// RegrowStartPower returns p(rad⁻_{u,α}) for the current neighbor set —
// the power the paper restarts the growing phase from. With no neighbors
// it falls back to a small fraction of maximum power.
func (r *Reconfigurator) RegrowStartPower() float64 {
	var maxDist float64
	for _, d := range r.nbrs {
		if d.Dist > maxDist {
			maxDist = d.Dist
		}
	}
	if maxDist == 0 {
		return r.model.MaxPower() / 1024
	}
	return r.model.PowerFor(maxDist)
}
