package core

import (
	"sort"

	"cbtc/internal/geom"
)

// ShrinkBack applies the paper's first optimization (§3.1, Theorem 3.1):
// after the growing phase, each node successively drops the neighbors
// tagged with the highest discovery power, as long as dropping the whole
// tag level leaves the α-cone coverage unchanged. Boundary nodes — which
// finished broadcasting at maximum power — are the ones that typically
// shrink; for interior nodes the final power level closed the last gap
// and cannot be dropped.
//
// The result is a new Execution whose neighbor sets are N^s_α(u);
// GrowPower is preserved because reconfiguration beacons must still use
// the basic algorithm's power (§4).
func ShrinkBack(e *Execution) *Execution {
	out := e.Clone()
	for u := range out.Nodes {
		out.Nodes[u].Neighbors = ShrinkNeighbors(out.Nodes[u].Neighbors, e.Alpha)
	}
	return out
}

// ShrinkNeighbors performs the shrink-back operation for a single node:
// it keeps the minimal prefix of discovery-power levels whose α-coverage
// equals the coverage of the full set. The distributed protocol uses it
// directly when computing (possibly incorrectly reduced) beacon powers.
func ShrinkNeighbors(neighbors []Discovery, alpha float64) []Discovery {
	if len(neighbors) == 0 {
		return neighbors
	}
	sorted := append([]Discovery(nil), neighbors...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Power != sorted[j].Power {
			return sorted[i].Power < sorted[j].Power
		}
		if sorted[i].Dist != sorted[j].Dist {
			return sorted[i].Dist < sorted[j].Dist
		}
		return sorted[i].ID < sorted[j].ID
	})

	allDirs := make([]float64, len(sorted))
	for i, nb := range sorted {
		allDirs[i] = nb.Dir
	}
	full := geom.Coverage(allDirs, alpha)

	// Find the minimal power-level prefix with identical coverage. Levels
	// are contiguous runs of equal Power; binary search does not apply
	// because coverage equality is not monotone in arbitrary prefixes,
	// but it is monotone in whole levels: walk levels from the front.
	i := 0
	for i < len(sorted) {
		levelEnd := i + 1
		for levelEnd < len(sorted) && samePower(sorted[levelEnd].Power, sorted[i].Power) {
			levelEnd++
		}
		if geom.Coverage(allDirs[:levelEnd], alpha).Equal(full, 10*geom.Eps) {
			return sorted[:levelEnd]
		}
		i = levelEnd
	}
	return sorted
}

// QuantizeTags returns an execution whose discovery-power tags are
// rounded up to the given broadcast schedule (e.g. the doubling schedule
// of Figure 1). The oracle tags each neighbor with its exact minimal
// power; a real protocol run only knows the discrete power level of the
// round that discovered the neighbor. Quantizing the oracle's tags
// reproduces the protocol's coarser shrink-back granularity without
// running the simulator — the evaluation harness uses it to match the
// paper's setup. Tags above the last schedule entry are clamped to it.
func QuantizeTags(e *Execution, schedule []float64) *Execution {
	out := e.Clone()
	for u := range out.Nodes {
		for i, nb := range out.Nodes[u].Neighbors {
			out.Nodes[u].Neighbors[i].Power = quantizeUp(nb.Power, schedule)
		}
	}
	return out
}

// QuantizeNeighbors is the per-node form of QuantizeTags: it returns a
// copy of the neighbor list with discovery-power tags rounded up to the
// schedule. Incremental reconfiguration uses it to keep regrown nodes on
// the same tag granularity as the initial execution.
func QuantizeNeighbors(neighbors []Discovery, schedule []float64) []Discovery {
	out := append([]Discovery(nil), neighbors...)
	for i, nb := range out {
		out[i].Power = quantizeUp(nb.Power, schedule)
	}
	return out
}

func quantizeUp(p float64, schedule []float64) float64 {
	for _, s := range schedule {
		if s >= p {
			return s
		}
	}
	if len(schedule) > 0 {
		return schedule[len(schedule)-1]
	}
	return p
}

func samePower(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if b > a {
		scale = b
	}
	return diff <= distTieTol*(1+scale)
}

// RemoveNonContributing is the further degree-reduction the paper
// mentions at the end of §3.1: any neighbor whose removal leaves the
// coverage unchanged may be dropped, not just whole trailing power
// levels. Neighbors are considered farthest-first so the longest edges
// go first. Connectivity is preserved by the same argument as
// Theorem 3.1 (the proof depends only on cone coverage).
//
// This is not part of the paper's Table 1 stacks; it exists for the
// degree-minimization ablation.
func RemoveNonContributing(e *Execution) *Execution {
	out := e.Clone()
	for u := range out.Nodes {
		out.Nodes[u].Neighbors = removeNonContributing(out.Nodes[u].Neighbors, e.Alpha)
	}
	return out
}

// RemoveNonContributingNeighbors is the per-node form of
// RemoveNonContributing, for callers (incremental session snapshots)
// that maintain pruned neighbor sets one node at a time.
func RemoveNonContributingNeighbors(neighbors []Discovery, alpha float64) []Discovery {
	return removeNonContributing(neighbors, alpha)
}

func removeNonContributing(neighbors []Discovery, alpha float64) []Discovery {
	kept := append([]Discovery(nil), neighbors...)
	sort.Slice(kept, func(i, j int) bool { return kept[i].Dist > kept[j].Dist }) // farthest first

	dirsOf := func(list []Discovery) []float64 {
		ds := make([]float64, len(list))
		for i, nb := range list {
			ds[i] = nb.Dir
		}
		return ds
	}
	full := geom.Coverage(dirsOf(kept), alpha)

	for i := 0; i < len(kept); {
		without := make([]Discovery, 0, len(kept)-1)
		without = append(without, kept[:i]...)
		without = append(without, kept[i+1:]...)
		if geom.Coverage(dirsOf(without), alpha).Equal(full, 10*geom.Eps) {
			kept = without
			continue // re-test index i, now a different neighbor
		}
		i++
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Power != kept[j].Power {
			return kept[i].Power < kept[j].Power
		}
		return kept[i].ID < kept[j].ID
	})
	return kept
}
