package chaos

import (
	"math"
	"testing"
	"time"
)

// Decisions are pure functions of (seed, site): the same injector asked
// in any order — or a second injector with the same spec — agrees at
// every site. This is the property the fleet's worker-count-invariance
// chaos tests lean on.
func TestDeterministicDecisions(t *testing.T) {
	f := Faults{Seed: 42, TickPanic: 0.1, TickDelay: 0.2, Delay: time.Millisecond, CheckpointFail: 0.3, Corrupt: 0.5}
	a, b := New(f), New(f)
	for net := 0; net < 16; net++ {
		for tick := 0; tick < 64; tick++ {
			if a.PanicsAt(net, tick) != b.PanicsAt(net, tick) {
				t.Fatalf("panic decision at (%d,%d) not deterministic", net, tick)
			}
			if a.DelayAt(net, tick) != b.DelayAt(net, tick) {
				t.Fatalf("delay decision at (%d,%d) not deterministic", net, tick)
			}
		}
	}
	// Reverse iteration order must not change anything: no hidden
	// sequential state.
	for net := 15; net >= 0; net-- {
		for tick := 63; tick >= 0; tick-- {
			if a.PanicsAt(net, tick) != b.PanicsAt(net, tick) {
				t.Fatalf("panic decision at (%d,%d) order-dependent", net, tick)
			}
		}
	}
	for seq := uint64(0); seq < 64; seq++ {
		if a.FailCheckpoint(seq) != b.FailCheckpoint(seq) {
			t.Fatalf("checkpoint decision at %d not deterministic", seq)
		}
	}
}

// Distinct seeds and distinct fault domains draw independent decisions:
// the empirical rates track the configured probabilities.
func TestRatesTrackProbabilities(t *testing.T) {
	const sites = 20000
	for _, p := range []float64{0.05, 0.25, 0.75} {
		in := New(Faults{Seed: 9, TickPanic: p})
		hits := 0
		for i := 0; i < sites; i++ {
			if in.PanicsAt(i%97, i/97) {
				hits++
			}
		}
		got := float64(hits) / sites
		if math.Abs(got-p) > 0.02 {
			t.Errorf("panic rate %v for p=%v", got, p)
		}
	}
	// Zero-probability injector is a strict no-op.
	none := New(Faults{Seed: 9})
	for i := 0; i < 1000; i++ {
		if none.PanicsAt(i, i) || none.DelayAt(i, i) != 0 || none.FailCheckpoint(uint64(i)) {
			t.Fatal("zero faults injected something")
		}
		if _, ok := none.CorruptAt(uint64(i), 100); ok {
			t.Fatal("zero faults corrupted something")
		}
	}
}

// Tick panics carry the site so quarantine records identify injected
// faults, and delays stay within the configured bound.
func TestTickFaultShapes(t *testing.T) {
	in := New(Faults{Seed: 3, TickPanic: 1, TickDelay: 1, Delay: 100 * time.Microsecond})
	func() {
		defer func() {
			p, ok := recover().(Panic)
			if !ok || p.Net != 4 || p.Tick != 7 {
				t.Errorf("recovered %#v, want Panic{4,7}", p)
			}
		}()
		in.Tick(4, 7)
	}()
	for net := 0; net < 8; net++ {
		for tick := 0; tick < 32; tick++ {
			if d := in.DelayAt(net, tick); d <= 0 || d > 100*time.Microsecond {
				t.Fatalf("delay %v at (%d,%d) outside (0, 100µs]", d, net, tick)
			}
		}
	}
}

func TestCorruption(t *testing.T) {
	in := New(Faults{Seed: 5, Corrupt: 1})
	data := make([]byte, 64)
	i, ok := in.Corrupt(11, data)
	if !ok || data[i] != 0xFF {
		t.Fatalf("Corrupt: flipped=%v index=%d byte=%x", ok, i, data[i])
	}
	clean := make([]byte, 64)
	j := FlipByte(5, clean)
	if clean[j] != 0xFF {
		t.Fatalf("FlipByte left byte %d at %x", j, clean[j])
	}
	// Same seed, same buffer length → same index.
	again := make([]byte, 64)
	if k := FlipByte(5, again); k != j {
		t.Fatalf("FlipByte index not deterministic: %d vs %d", k, j)
	}
}

func TestParse(t *testing.T) {
	f, err := Parse("seed=7,panic=0.02,delay=0.1,delaymax=5ms,ckpt=0.3,corrupt=0.25")
	if err != nil {
		t.Fatal(err)
	}
	want := Faults{Seed: 7, TickPanic: 0.02, TickDelay: 0.1, Delay: 5 * time.Millisecond, CheckpointFail: 0.3, Corrupt: 0.25}
	if f != want {
		t.Fatalf("Parse = %+v, want %+v", f, want)
	}
	if f, err := Parse(""); err != nil || f != (Faults{}) {
		t.Fatalf("empty spec: %+v, %v", f, err)
	}
	for _, bad := range []string{"panic", "panic=2", "panic=-0.1", "wat=1", "delaymax=fast", "seed=x"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}
