// Package chaos is a seeded, deterministic fault injector for the
// fault-tolerance test matrix: member-tick panics, member-tick delays,
// checkpoint-write failures and single-byte corruption.
//
// Every decision is a pure function of the injector's seed and the
// fault site's coordinates — hash(seed, domain, a, b) mapped to [0, 1)
// — never of a sequential RNG stream. That is what makes the injector
// usable under the fleet's work-stealing scheduler: member ticks run in
// a scheduling-dependent order across worker counts, but a fault keyed
// on (net, tick) fires at the same site every run, so "panic 2 of 9
// members" produces the same two casualties at workers 1, 2 and 8 and
// the healthy members stay byte-identical to a chaos-free run.
//
// The injector plugs into the production surfaces it exercises:
// Injector.Tick matches cbtc's fleet TickHook signature (panicking
// there quarantines the member exactly as a real tick panic would),
// FailCheckpoint gates fleetd's checkpoint writer, and FlipByte mutates
// checkpoint bytes for the generation-fallback tests.
package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Fault-site domains, folded into the decision hash so the same
// (net, tick) pair draws independent decisions for each fault kind.
const (
	domTickPanic uint64 = 0x70616e6963 // "panic"
	domTickDelay uint64 = 0x64656c6179 // "delay"
	domCkptFail  uint64 = 0x636b7074   // "ckpt"
	domCorrupt   uint64 = 0x666c6970   // "flip"
)

// Faults configures an Injector: one seed and a probability per fault
// class. Zero probabilities inject nothing, so the zero value is a
// no-op injector.
type Faults struct {
	// Seed keys every decision. Two injectors with the same Faults make
	// identical decisions at every site.
	Seed uint64
	// TickPanic is the probability that a given member tick panics.
	TickPanic float64
	// TickDelay is the probability that a given member tick is delayed
	// by a deterministic duration in (0, Delay].
	TickDelay float64
	// Delay bounds an injected tick delay. Zero with TickDelay > 0
	// defaults to 1ms.
	Delay time.Duration
	// CheckpointFail is the probability that a checkpoint write attempt
	// fails (keyed on the attempt sequence number).
	CheckpointFail float64
	// Corrupt is the probability that Corrupt flips a byte of the buffer
	// it is offered (keyed on the caller's site key).
	Corrupt float64
}

// Injector makes deterministic fault decisions from a Faults spec. The
// zero value injects nothing. Injector is stateless and safe for
// concurrent use from any number of goroutines.
type Injector struct {
	f Faults
}

// New builds an Injector for the given fault spec.
func New(f Faults) *Injector {
	if f.TickDelay > 0 && f.Delay <= 0 {
		f.Delay = time.Millisecond
	}
	return &Injector{f: f}
}

// Faults returns the injector's spec.
func (in *Injector) Faults() Faults { return in.f }

// Panic is the value an injected tick panic carries, so tests (and
// quarantine records) can recognize injected faults and their site.
type Panic struct {
	Net, Tick int
}

func (p Panic) String() string {
	return fmt.Sprintf("chaos: injected panic at net %d tick %d", p.Net, p.Tick)
}

// Tick injects this site's tick faults: it panics with a Panic value
// when the site draws a panic, and sleeps the site's deterministic
// delay when it draws a delay. Its signature matches the fleet
// TickHook, so wiring chaos into a fleet is one assignment.
func (in *Injector) Tick(net, tick int) {
	if d := in.DelayAt(net, tick); d > 0 {
		time.Sleep(d)
	}
	if in.PanicsAt(net, tick) {
		panic(Panic{Net: net, Tick: tick})
	}
}

// PanicsAt reports whether the (net, tick) site draws an injected
// panic — the prediction tests use to derive the expected casualty set.
func (in *Injector) PanicsAt(net, tick int) bool {
	return in.decide(domTickPanic, uint64(net), uint64(tick)) < in.f.TickPanic
}

// DelayAt returns the deterministic delay injected at (net, tick), or
// zero when the site draws none.
func (in *Injector) DelayAt(net, tick int) time.Duration {
	if in.f.TickDelay <= 0 {
		return 0
	}
	u := in.decide(domTickDelay, uint64(net), uint64(tick))
	if u >= in.f.TickDelay {
		return 0
	}
	// Rescale the sub-threshold draw to (0, Delay] so the delay length
	// is itself deterministic per site.
	frac := u / in.f.TickDelay
	d := time.Duration(frac * float64(in.f.Delay))
	if d <= 0 {
		d = 1
	}
	return d
}

// FailCheckpoint reports whether checkpoint write attempt seq should
// fail.
func (in *Injector) FailCheckpoint(seq uint64) bool {
	return in.decide(domCkptFail, seq, 0) < in.f.CheckpointFail
}

// CorruptAt reports whether the buffer keyed by key draws corruption,
// and if so which byte index of a buffer of length n to flip.
func (in *Injector) CorruptAt(key uint64, n int) (int, bool) {
	if n <= 0 || in.decide(domCorrupt, key, 0) >= in.f.Corrupt {
		return 0, false
	}
	return int(hash(in.f.Seed, domCorrupt, key, 1) % uint64(n)), true
}

// Corrupt flips one deterministic byte of data when the site keyed by
// key draws corruption, reporting the flipped index.
func (in *Injector) Corrupt(key uint64, data []byte) (int, bool) {
	i, ok := in.CorruptAt(key, len(data))
	if ok {
		data[i] ^= 0xFF
	}
	return i, ok
}

// FlipByte unconditionally flips one seed-chosen byte of data and
// returns its index — the primitive the checkpoint generation-fallback
// tests use to damage exactly one on-disk generation. It panics on an
// empty buffer.
func FlipByte(seed uint64, data []byte) int {
	if len(data) == 0 {
		panic("chaos: FlipByte on empty buffer")
	}
	i := int(hash(seed, domCorrupt, 0, 2) % uint64(len(data)))
	data[i] ^= 0xFF
	return i
}

// decide maps a fault site to a uniform draw in [0, 1).
func (in *Injector) decide(domain, a, b uint64) float64 {
	return float64(hash(in.f.Seed, domain, a, b)>>11) / float64(1<<53)
}

// hash is a splitmix64 finalization over the folded site coordinates.
// It is the package's single source of randomness.
func hash(seed, domain, a, b uint64) uint64 {
	x := seed
	for _, v := range [...]uint64{domain, a, b} {
		x ^= v + 0x9e3779b97f4a7c15
		x = mix(x)
	}
	return mix(x)
}

func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Parse decodes a -chaos flag spec: comma-separated key=value pairs
// over the keys seed, panic, delay, delaymax, ckpt and corrupt, e.g.
//
//	seed=7,panic=0.02,delay=0.1,delaymax=5ms
//
// Probabilities must be in [0, 1]; delaymax takes a Go duration. An
// empty spec yields the zero (no-op) Faults.
func Parse(spec string) (Faults, error) {
	var f Faults
	if strings.TrimSpace(spec) == "" {
		return f, nil
	}
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return Faults{}, fmt.Errorf("chaos: bad spec element %q (want key=value)", part)
		}
		var err error
		switch key {
		case "seed":
			f.Seed, err = strconv.ParseUint(val, 10, 64)
		case "panic":
			f.TickPanic, err = parseProb(val)
		case "delay":
			f.TickDelay, err = parseProb(val)
		case "delaymax":
			f.Delay, err = time.ParseDuration(val)
		case "ckpt":
			f.CheckpointFail, err = parseProb(val)
		case "corrupt":
			f.Corrupt, err = parseProb(val)
		default:
			return Faults{}, fmt.Errorf("chaos: unknown spec key %q", key)
		}
		if err != nil {
			return Faults{}, fmt.Errorf("chaos: bad value for %q: %v", key, err)
		}
	}
	return f, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0, 1]", p)
	}
	return p, nil
}
