package codec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"cbtc/internal/core"
	"cbtc/internal/geom"
	"cbtc/internal/stats"
)

// EncodeSession writes a session checkpoint to w at the current format
// version. The state is read only; it is safe to encode a snapshot whose
// graphs are COW clones of a live session.
func EncodeSession(w io.Writer, st *SessionState) error {
	return EncodeSessionVersion(w, st, Version)
}

// EncodeSessionVersion writes a session checkpoint at an explicit format
// version in [MinVersion, Version] — the compatibility hook the
// downgrade-decode tests exercise. Older versions can only represent
// states without version-3 extensions (pure power-law radio with unit
// reference loss, no battery); anything else is rejected.
func EncodeSessionVersion(w io.Writer, st *SessionState, ver uint16) error {
	e, err := newEncoderVersion(w, ver)
	if err != nil {
		return err
	}
	if err := checkDowngrade(&st.Config, st, ver); err != nil {
		return err
	}
	e.header(KindSession)
	e.sessionState(st)
	e.u32(footer)
	return e.flush()
}

// EncodeFleet writes a fleet checkpoint to w at the current format
// version.
func EncodeFleet(w io.Writer, st *FleetState) error {
	return EncodeFleetVersion(w, st, Version)
}

// EncodeFleetVersion is EncodeSessionVersion's fleet counterpart.
func EncodeFleetVersion(w io.Writer, st *FleetState, ver uint16) error {
	e, err := newEncoderVersion(w, ver)
	if err != nil {
		return err
	}
	if err := checkDowngrade(&st.Config, nil, ver); err != nil {
		return err
	}
	for i := range st.Nets {
		if err := checkDowngrade(&st.Nets[i].Config, &st.Nets[i].Session, ver); err != nil {
			return err
		}
	}
	e.header(KindFleet)
	e.engineConfig(&st.Config)
	e.u32(uint32(len(st.Nets)))
	for i := range st.Nets {
		n := &st.Nets[i]
		e.engineConfig(&n.Config)
		e.u8(n.Kind)
		e.i64(n.Weight)
		e.bytes(n.RNG)
		e.i64(n.Done)
		e.i64(n.Target)
		e.i64(n.Events)
		e.stream(&n.Degree)
		e.stream(&n.Radius)
		e.stream(&n.Components)
		e.stream(&n.Energy)
		if e.ver >= 3 {
			e.stream(&n.Residual)
			e.stream(&n.EnergyVar)
		}
		e.sessionBody(&n.Session)
	}
	e.u32(footer)
	return e.flush()
}

// checkDowngrade rejects states a pre-3 stream cannot represent.
func checkDowngrade(c *EngineConfig, st *SessionState, ver uint16) error {
	if ver >= 3 {
		return nil
	}
	if c.RadioKind != 0 || (c.RefLoss != 0 && c.RefLoss != 1) || c.ShadowSigmaDB != 0 ||
		c.ShadowSeed != 0 || c.BatteryCapacity != 0 || c.BatteryDrain != 0 ||
		(st != nil && st.Battery != nil) {
		return fmt.Errorf("%w: version %d cannot represent radio/battery extensions", ErrVersion, ver)
	}
	return nil
}

// encoder wraps a buffered writer with the primitive little-endian
// writes the format is made of. The first write error sticks; every
// subsequent write is a no-op, so encoding code reads straight-line.
type encoder struct {
	w   *bufio.Writer
	buf [8]byte
	err error
	ver uint16
}

func newEncoderVersion(w io.Writer, ver uint16) (*encoder, error) {
	if ver < MinVersion || ver > Version {
		return nil, fmt.Errorf("%w: cannot encode version %d (support %d–%d)", ErrVersion, ver, MinVersion, Version)
	}
	return &encoder{w: bufio.NewWriterSize(w, 1<<16), ver: ver}, nil
}

func (e *encoder) flush() error {
	if e.err != nil {
		return e.err
	}
	return e.w.Flush()
}

func (e *encoder) write(p []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(p)
}

func (e *encoder) u8(v uint8) { e.write([]byte{v}) }

func (e *encoder) u16(v uint16) {
	binary.LittleEndian.PutUint16(e.buf[:2], v)
	e.write(e.buf[:2])
}

func (e *encoder) u32(v uint32) {
	binary.LittleEndian.PutUint32(e.buf[:4], v)
	e.write(e.buf[:4])
}

func (e *encoder) u64(v uint64) {
	binary.LittleEndian.PutUint64(e.buf[:8], v)
	e.write(e.buf[:8])
}

func (e *encoder) i64(v int64)   { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *encoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

// bytes writes a length-prefixed opaque byte section.
func (e *encoder) bytes(p []byte) {
	e.u32(uint32(len(p)))
	e.write(p)
}

func (e *encoder) header(kind uint8) {
	e.write(magic[:])
	e.u16(e.ver)
	e.u8(kind)
}

func (e *encoder) engineConfig(c *EngineConfig) {
	e.f64(c.Alpha)
	e.f64(c.MaxRadius)
	e.f64(c.PathLossExponent)
	e.bool(c.ShrinkBack)
	e.bool(c.AsymmetricRemoval)
	e.bool(c.PairwiseRemoval)
	e.bool(c.NonContributing)
	e.u8(c.PairwisePolicy)
	e.f64(c.ScheduleFactor)
	if e.ver >= 3 {
		e.f64(c.RefLoss)
		e.u8(c.RadioKind)
		e.f64(c.ShadowSigmaDB)
		e.u64(c.ShadowSeed)
		e.f64(c.BatteryCapacity)
		e.f64(c.BatteryDrain)
	}
}

func (e *encoder) stream(s *stats.Stream) {
	e.i64(s.Count)
	e.f64(s.Mean)
	e.f64(s.M2)
	e.f64(s.MinV)
	e.f64(s.MaxV)
}

// sessionState writes the config fingerprint followed by the session
// body — the standalone-session payload.
func (e *encoder) sessionState(st *SessionState) {
	e.engineConfig(&st.Config)
	e.sessionBody(st)
}

// sessionBody writes everything after the fingerprint. Fleet payloads
// embed it per network without repeating the shared config.
func (e *encoder) sessionBody(st *SessionState) {
	n := len(st.Pos)
	e.u32(uint32(n))
	e.points(st.Pos)
	e.bitset(st.Alive)

	// Per-node scalar vectors, then the discovery rows as one
	// length-vector + one flat entry stream.
	for i := range st.Nodes {
		e.f64(st.Nodes[i].GrowPower)
	}
	bounds := make([]bool, n)
	for i := range st.Nodes {
		bounds[i] = st.Nodes[i].Boundary
	}
	e.bitset(bounds)
	for i := range st.Nodes {
		e.u32(uint32(len(st.Nodes[i].Neighbors)))
	}
	for i := range st.Nodes {
		e.discoveries(st.Nodes[i].Neighbors)
	}

	e.i64(st.Stats.Joins)
	e.i64(st.Stats.Leaves)
	e.i64(st.Stats.Moves)
	e.i64(st.Stats.AngleChanges)
	e.i64(st.Stats.Regrows)
	e.i64(st.Stats.Repairs)

	if e.ver >= 3 {
		e.bool(st.Battery != nil)
		for _, b := range st.Battery {
			e.f64(b)
		}
	}

	e.bool(st.Incremental)
	if !st.Incremental {
		return
	}
	for i := range st.Pruned {
		e.u32(uint32(len(st.Pruned[i])))
	}
	for i := range st.Pruned {
		e.discoveries(st.Pruned[i])
	}
	lens, arena := st.Nalpha.Dump(nil, nil)
	e.rows(lens, arena)
	lens, arena = st.G.Dump(lens[:0], arena[:0])
	e.rows(lens, arena)
	lens, arena = st.GR.Dump(lens[:0], arena[:0])
	e.rows(lens, arena)
}

func (e *encoder) points(pts []geom.Point) {
	for _, p := range pts {
		e.f64(p.X)
		e.f64(p.Y)
	}
}

// bitset packs a bool vector 8 per byte (LSB first). The length is not
// written: callers always know it from the node count.
func (e *encoder) bitset(bits []bool) {
	var b byte
	for i, v := range bits {
		if v {
			b |= 1 << (i % 8)
		}
		if i%8 == 7 {
			e.u8(b)
			b = 0
		}
	}
	if len(bits)%8 != 0 {
		e.u8(b)
	}
}

// discoveries writes one node's discovery row as flat fixed-width
// entries: id int32, dist, dir, power float64 — 28 bytes each.
func (e *encoder) discoveries(row []core.Discovery) {
	for _, d := range row {
		e.u32(uint32(int32(d.ID)))
		e.f64(d.Dist)
		e.f64(d.Dir)
		e.f64(d.Power)
	}
}

// rows writes one graph arena dump: the row-length vector, then the
// packed arena, each as a bulk int32 stream. The node count is not
// repeated — it is the session's n.
func (e *encoder) rows(lens, arena []int32) {
	e.int32s(lens)
	e.u64(uint64(len(arena)))
	e.int32s(arena)
}

// int32s bulk-writes an int32 slice through the staging buffer in
// chunks, so a 10k-node arena costs a few large Writes.
func (e *encoder) int32s(vs []int32) {
	if e.err != nil {
		return
	}
	var chunk [4096]byte
	for len(vs) > 0 {
		k := len(vs)
		if k > len(chunk)/4 {
			k = len(chunk) / 4
		}
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint32(chunk[4*i:], uint32(vs[i]))
		}
		e.write(chunk[:4*k])
		vs = vs[k:]
	}
}
