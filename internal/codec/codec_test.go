package codec

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"reflect"
	"testing"

	"cbtc/internal/core"
	"cbtc/internal/geom"
	"cbtc/internal/graph"
	"cbtc/internal/stats"
)

func testConfig() EngineConfig {
	return EngineConfig{
		Alpha:            2.618,
		MaxRadius:        500,
		PathLossExponent: 2,
		ShrinkBack:       true,
		ScheduleFactor:   1.5,
		RefLoss:          1,
	}
}

// validSession builds a small consistent session state: four nodes,
// node 3 departed (isolated everywhere), a 0–1–2 path topology.
func validSession(incremental bool) *SessionState {
	row := func(ids ...int) []core.Discovery {
		out := make([]core.Discovery, 0, len(ids))
		for _, id := range ids {
			out = append(out, core.Discovery{ID: id, Dist: 100 + float64(id), Dir: 0.5 * float64(id), Power: 40 + float64(id)})
		}
		return out
	}
	st := &SessionState{
		Config: testConfig(),
		Pos:    []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 200, Y: 0}, {X: 50, Y: 50}},
		Alive:  []bool{true, true, true, false},
		Nodes: []core.NodeResult{
			{Neighbors: row(1), GrowPower: 41, Boundary: false},
			{Neighbors: row(0, 2), GrowPower: 42, Boundary: true},
			{Neighbors: row(1), GrowPower: 43, Boundary: false},
			{Neighbors: row()},
		},
		Stats:       SessionCounters{Joins: 1, Leaves: 2, Moves: 3, AngleChanges: 4, Regrows: 5, Repairs: 6},
		Incremental: incremental,
	}
	if !incremental {
		return st
	}
	st.Pruned = [][]core.Discovery{row(1), row(0, 2), row(1), row()}
	st.Nalpha = graph.NewDigraph(4)
	st.Nalpha.AddArc(0, 1)
	st.Nalpha.AddArc(1, 0)
	st.Nalpha.AddArc(1, 2)
	st.Nalpha.AddArc(2, 1)
	st.G = graph.New(4)
	st.G.AddEdge(0, 1)
	st.G.AddEdge(1, 2)
	st.GR = graph.New(4)
	st.GR.AddEdge(0, 1)
	st.GR.AddEdge(1, 2)
	st.GR.AddEdge(0, 2)
	return st
}

func validFleet(t testing.TB) *FleetState {
	rng1, err := rand.NewPCG(1, 2).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	rng2, err := rand.NewPCG(3, 4).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	stream := func(c int64, mean float64) stats.Stream {
		return stats.Stream{Count: c, Mean: mean, M2: 0.25, MinV: mean - 1, MaxV: mean + 1}
	}
	// Member 1 is heterogeneous: its own fingerprint, protocol-built,
	// weight 3, and a clock lagging its target (ragged checkpoint).
	altConfig := testConfig()
	altConfig.Alpha = 2.0944
	altSession := *validSession(true)
	altSession.Config = altConfig
	return &FleetState{
		Config: testConfig(),
		Nets: []NetworkState{
			{Config: testConfig(), Kind: 0, Weight: 1, RNG: rng1, Done: 7, Target: 7, Events: 12, Degree: stream(7, 4), Radius: stream(7, 300), Components: stream(7, 1), Energy: stream(7, 9e5), Session: *validSession(true)},
			{Config: altConfig, Kind: 1, Weight: 3, RNG: rng2, Done: 7, Target: 9, Events: 9, Degree: stream(7, 5), Radius: stream(7, 280), Components: stream(7, 2), Energy: stream(7, 8e5), Session: altSession},
		},
	}
}

// requireSessionEqual compares decoded state against the original,
// using graph.Equal for the graphs (their internal arenas legitimately
// differ in layout).
func requireSessionEqual(t *testing.T, want, got *SessionState) {
	t.Helper()
	if got.Config != want.Config {
		t.Fatalf("config %+v != %+v", got.Config, want.Config)
	}
	if !reflect.DeepEqual(got.Pos, want.Pos) || !reflect.DeepEqual(got.Alive, want.Alive) {
		t.Fatal("positions/liveness differ")
	}
	if !reflect.DeepEqual(got.Nodes, want.Nodes) {
		t.Fatalf("nodes differ:\n%+v\n%+v", got.Nodes, want.Nodes)
	}
	if got.Stats != want.Stats {
		t.Fatalf("stats %+v != %+v", got.Stats, want.Stats)
	}
	if got.Incremental != want.Incremental {
		t.Fatalf("incremental %v != %v", got.Incremental, want.Incremental)
	}
	if !want.Incremental {
		return
	}
	if !reflect.DeepEqual(got.Pruned, want.Pruned) {
		t.Fatal("pruned rows differ")
	}
	if !got.Nalpha.Equal(want.Nalpha) || !got.G.Equal(want.G) || !got.GR.Equal(want.GR) {
		t.Fatal("graphs differ")
	}
}

func encodeSession(t testing.TB, st *SessionState) []byte {
	var buf bytes.Buffer
	if err := EncodeSession(&buf, st); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func encodeFleet(t testing.TB, st *FleetState) []byte {
	var buf bytes.Buffer
	if err := EncodeFleet(&buf, st); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSessionRoundTrip(t *testing.T) {
	for _, incremental := range []bool{true, false} {
		want := validSession(incremental)
		got, err := DecodeSession(bytes.NewReader(encodeSession(t, want)))
		if err != nil {
			t.Fatalf("incremental=%v: %v", incremental, err)
		}
		requireSessionEqual(t, want, got)
	}
}

func TestFleetRoundTrip(t *testing.T) {
	want := validFleet(t)
	got, err := DecodeFleet(bytes.NewReader(encodeFleet(t, want)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Config != want.Config || len(got.Nets) != len(want.Nets) {
		t.Fatalf("fleet header differs: %+v", got)
	}
	for i := range want.Nets {
		w, g := &want.Nets[i], &got.Nets[i]
		if g.Config != w.Config || g.Kind != w.Kind || g.Weight != w.Weight {
			t.Fatalf("net %d member spec differs: %+v", i, g)
		}
		if !bytes.Equal(w.RNG, g.RNG) || w.Done != g.Done || w.Target != g.Target || w.Events != g.Events {
			t.Fatalf("net %d counters differ", i)
		}
		if w.Degree != g.Degree || w.Radius != g.Radius || w.Components != g.Components || w.Energy != g.Energy {
			t.Fatalf("net %d streams differ", i)
		}
		requireSessionEqual(t, &w.Session, &g.Session)
	}
}

// TestDecodeTruncation: every strict prefix of a valid checkpoint is an
// error (usually ErrCorrupt; header prefixes report ErrBadMagic), and
// never a panic.
func TestDecodeTruncation(t *testing.T) {
	enc := encodeSession(t, validSession(true))
	for i := 0; i < len(enc); i++ {
		if _, err := DecodeSession(bytes.NewReader(enc[:i])); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", i, len(enc))
		}
	}
	fenc := encodeFleet(t, validFleet(t))
	for i := 0; i < len(fenc); i++ {
		if _, err := DecodeFleet(bytes.NewReader(fenc[:i])); err == nil {
			t.Fatalf("fleet prefix of %d/%d bytes decoded without error", i, len(fenc))
		}
	}
}

// TestDecodeBitFlips flips every byte of a valid checkpoint one at a
// time: each mutation must either decode cleanly (benign field change)
// or fail with one of the four typed errors — never panic, never
// return an untyped error.
func TestDecodeBitFlips(t *testing.T) {
	enc := encodeSession(t, validSession(true))
	mut := make([]byte, len(enc))
	for i := 0; i < len(enc); i++ {
		copy(mut, enc)
		mut[i] ^= 0xff
		_, err := DecodeSession(bytes.NewReader(mut))
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) &&
			!errors.Is(err, ErrWrongKind) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at byte %d: untyped error %v", i, err)
		}
	}
}

func TestDecodeHeaderErrors(t *testing.T) {
	enc := encodeSession(t, validSession(true))

	bad := bytes.Clone(enc)
	bad[0] = 'X'
	if _, err := DecodeSession(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("magic: got %v", err)
	}
	bad = bytes.Clone(enc)
	bad[4] = 0xfe // version low byte
	if _, err := DecodeSession(bytes.NewReader(bad)); !errors.Is(err, ErrVersion) {
		t.Errorf("version: got %v", err)
	}
	if _, err := DecodeFleet(bytes.NewReader(enc)); !errors.Is(err, ErrWrongKind) {
		t.Errorf("kind: got %v", err)
	}
	bad = bytes.Clone(enc)
	bad[len(bad)-1] ^= 0xff // footer
	if _, err := DecodeSession(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("footer: got %v", err)
	}
	// A hostile node count cannot force a giant allocation — it runs out
	// of real bytes first and reports corruption.
	huge := append(bytes.Clone(enc[:7+8*3+4+1+8]), 0xff, 0xff, 0xff, 0x7f)
	if _, err := DecodeSession(bytes.NewReader(huge)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("huge count: got %v", err)
	}
}

// TestEncodeDeterministic: the format has one canonical encoding per
// state — checkpoint diffing and the daemon's atomic-rename flow rely
// on byte-stable output.
func TestEncodeDeterministic(t *testing.T) {
	if !bytes.Equal(encodeSession(t, validSession(true)), encodeSession(t, validSession(true))) {
		t.Fatal("session encoding not deterministic")
	}
	if !bytes.Equal(encodeFleet(t, validFleet(t)), encodeFleet(t, validFleet(t))) {
		t.Fatal("fleet encoding not deterministic")
	}
}

func FuzzDecodeSession(f *testing.F) {
	valid := encodeSession(f, validSession(true))
	f.Add(valid)
	f.Add(encodeSession(f, validSession(false)))
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("CBTC"))
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeSession(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything the decoder accepts must re-encode and re-decode: the
		// validated state is inside the format's domain.
		var buf bytes.Buffer
		if err := EncodeSession(&buf, st); err != nil {
			t.Fatalf("re-encode of accepted state failed: %v", err)
		}
		if _, err := DecodeSession(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("re-decode of accepted state failed: %v", err)
		}
	})
}

func FuzzDecodeFleet(f *testing.F) {
	valid := encodeFleet(f, validFleet(f))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeFleet(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := EncodeFleet(&buf, st); err != nil {
			t.Fatalf("re-encode of accepted state failed: %v", err)
		}
		if _, err := DecodeFleet(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("re-decode of accepted state failed: %v", err)
		}
	})
}
