// Package codec implements the versioned binary serialization of
// Session and Fleet state — the durability layer behind
// Session.Checkpoint / Engine.RestoreSession and their Fleet
// counterparts, and the on-disk format of the fleetd daemon.
//
// # Format
//
// A checkpoint is a little-endian byte stream:
//
//	magic   "CBTC"            (4 bytes)
//	version uint16            (currently 2)
//	kind    uint8             (1 = session, 2 = fleet)
//	payload                   (kind-dependent, length-prefixed sections)
//	footer  uint32 0xC0DEC0DE (truncation sentinel)
//
// Every variable-length section is prefixed with its element count, and
// the bulk payloads are the packed arenas the in-memory representation
// already uses: node positions, power/liveness vectors, the per-node
// discovery rows, and the CSR row dumps of the maintained N_α/G/G_R
// graphs (internal/graph Dump). A 10k-node checkpoint is therefore a
// handful of bulk writes, not a per-edge walk.
//
// # Compatibility and safety
//
// The payload embeds the engine configuration fingerprint that produced
// the state; restoring layers (package cbtc) must verify it against the
// restoring engine so a checkpoint can never silently continue under
// different protocol parameters. Decoding is total: any input — hostile,
// truncated, or bit-flipped — yields a typed error (ErrBadMagic,
// ErrVersion, ErrWrongKind, ErrCorrupt), never a panic, and decode
// memory stays proportional to the bytes actually supplied.
package codec

import (
	"errors"

	"cbtc/internal/core"
	"cbtc/internal/geom"
	"cbtc/internal/graph"
	"cbtc/internal/stats"
)

// Version is the current checkpoint format version. Decoders accept
// this version and the previous one: version 3 extended the fingerprint
// with the radio-model identity (reference loss, propagation kind,
// shadowing parameters) and the battery configuration, added per-node
// residual-battery vectors to session bodies, and added the
// residual/energy-variance streams to fleet members. A version-2 stream
// decodes as the implied power-law radio (RefLoss 1, no shadowing, no
// battery). Version 2 made fleet members heterogeneous: each network
// carries its own engine fingerprint, member kind, tick weight and tick
// target, and the fleet-global tick target is gone.
const Version = 3

// MinVersion is the oldest format version the decoders still accept.
const MinVersion = 2

// Kinds discriminate the two checkpoint payloads.
const (
	// KindSession marks a single-Session checkpoint.
	KindSession = 1
	// KindFleet marks a whole-Fleet checkpoint.
	KindFleet = 2
)

// magic identifies a cbtc checkpoint stream.
var magic = [4]byte{'C', 'B', 'T', 'C'}

// footer terminates a well-formed stream; its absence means truncation.
const footer uint32 = 0xC0DEC0DE

// Typed decode errors. Encoding only fails on writer errors, which pass
// through unwrapped.
var (
	// ErrBadMagic reports input that is not a cbtc checkpoint at all.
	ErrBadMagic = errors.New("codec: not a cbtc checkpoint")
	// ErrVersion reports a checkpoint written by an incompatible format
	// version.
	ErrVersion = errors.New("codec: unsupported checkpoint version")
	// ErrWrongKind reports a session checkpoint fed to the fleet decoder
	// or vice versa.
	ErrWrongKind = errors.New("codec: wrong checkpoint kind")
	// ErrCorrupt reports a structurally invalid or truncated checkpoint.
	ErrCorrupt = errors.New("codec: corrupt checkpoint")
)

// EngineConfig is the engine fingerprint embedded in every checkpoint:
// the full resolved protocol configuration of the engine that produced
// the state. Restore must only proceed when the restoring engine's
// fingerprint is identical — α, the radio model and the optimization
// stack all change what the serialized fixed point means.
type EngineConfig struct {
	// Alpha is the cone angle in radians (resolved, never zero).
	Alpha float64
	// MaxRadius is R, the maximum transmission radius.
	MaxRadius float64
	// PathLossExponent is the resolved path-loss exponent.
	PathLossExponent float64
	// ShrinkBack, AsymmetricRemoval, PairwiseRemoval and NonContributing
	// mirror the optimization stack.
	ShrinkBack, AsymmetricRemoval, PairwiseRemoval, NonContributing bool
	// PairwisePolicy is the resolved §3.3 policy ordinal.
	PairwisePolicy uint8
	// ScheduleFactor is the shrink-back quantization factor (0 = exact
	// tags).
	ScheduleFactor float64

	// RefLoss is the nominal model's reference loss (version-2 streams
	// imply 1).
	RefLoss float64
	// RadioKind identifies the propagation model: 0 = pure power law,
	// 1 = log-distance with per-link shadowing.
	RadioKind uint8
	// ShadowSigmaDB and ShadowSeed parameterize the shadowing realization
	// when RadioKind is 1; both zero otherwise.
	ShadowSigmaDB float64
	ShadowSeed    uint64
	// BatteryCapacity and BatteryDrain carry the engine's battery model;
	// capacity 0 means no battery.
	BatteryCapacity float64
	BatteryDrain    float64
}

// SessionCounters mirrors cbtc.SessionStats in fixed-width form.
type SessionCounters struct {
	Joins, Leaves, Moves, AngleChanges, Regrows, Repairs int64
}

// SessionState is the complete serializable state of one Session. All
// slices are indexed by node id over the session's full id space
// (departed nodes keep their slot).
type SessionState struct {
	// Config is the engine fingerprint the state was produced under.
	Config EngineConfig
	// Pos holds every node's position (last position for departed nodes).
	Pos []geom.Point
	// Alive flags live nodes.
	Alive []bool
	// Nodes holds each node's growing-phase outcome: the discovery row,
	// p_{u,α} and the boundary flag. Departed nodes hold the zero value.
	Nodes []core.NodeResult
	// Stats are the session's cumulative §4 counters.
	Stats SessionCounters
	// Incremental reports whether the incremental-snapshot state below is
	// present (pairwise removal off).
	Incremental bool
	// Pruned is the per-node neighbor row after per-node-local pruning;
	// nil when Incremental is false.
	Pruned [][]core.Discovery
	// Nalpha, G and GR are the maintained graphs; nil when Incremental is
	// false.
	Nalpha *graph.Digraph
	G, GR  *graph.Graph
	// Battery holds each node's residual energy when the engine has a
	// battery model (Config.BatteryCapacity > 0); nil otherwise and in
	// version-2 streams.
	Battery []float64
}

// NetworkState is one fleet member's slice of a FleetState.
type NetworkState struct {
	// Config is the member's own engine fingerprint — members are
	// heterogeneous, so each carries the full resolved configuration its
	// session state was produced under.
	Config EngineConfig
	// Kind is the member-kind ordinal (0 = oracle, 1 = protocol).
	Kind uint8
	// Weight is the member's tick budget per fleet round (≥ 1).
	Weight int64
	// RNG is the opaque serialized state of the network's private PCG
	// stream (math/rand/v2 PCG.MarshalBinary).
	RNG []byte
	// Done, Target and Events are the member's tick clock, tick target
	// and applied-event counter. Done may lag Target when the checkpoint
	// was taken after a cancelled run.
	Done, Target, Events int64
	// Degree, Radius, Components and Energy are the network's per-tick
	// accumulator states.
	Degree, Radius, Components, Energy stats.Stream
	// Residual and EnergyVar are the battery accumulator states; zero
	// values in version-2 streams and on members without a battery model.
	Residual, EnergyVar stats.Stream
	// Session is the member session's full state.
	Session SessionState
}

// FleetState is the complete serializable state of a Fleet.
type FleetState struct {
	// Config is the base engine fingerprint the fleet was built on;
	// members whose fingerprint equals it restore onto the restoring
	// engine directly, the rest get derived engines.
	Config EngineConfig
	// Nets holds every member network in fleet order.
	Nets []NetworkState
}
