package codec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"cbtc/internal/core"
	"cbtc/internal/geom"
	"cbtc/internal/graph"
	"cbtc/internal/stats"
)

// maxRNGBytes bounds the opaque per-network RNG blob; PCG state is 20
// bytes, so anything large is corruption, not a bigger generator.
const maxRNGBytes = 256

// DecodeSession reads a session checkpoint from r. It returns a typed
// error — ErrBadMagic, ErrVersion, ErrWrongKind or ErrCorrupt — on any
// invalid input, and never panics. Decode memory stays proportional to
// the bytes r actually yields, so truncated or hostile length fields
// cannot force large allocations.
func DecodeSession(r io.Reader) (*SessionState, error) {
	d := newDecoder(r)
	if err := d.header(KindSession); err != nil {
		return nil, err
	}
	st := &SessionState{}
	d.engineConfig(&st.Config)
	d.sessionBody(st)
	d.footer()
	if d.err != nil {
		return nil, d.err
	}
	return st, nil
}

// DecodeFleet reads a fleet checkpoint from r, with the same totality
// guarantees as DecodeSession.
func DecodeFleet(r io.Reader) (*FleetState, error) {
	d := newDecoder(r)
	if err := d.header(KindFleet); err != nil {
		return nil, err
	}
	st := &FleetState{}
	d.engineConfig(&st.Config)
	m := d.count("network count")
	for i := 0; i < m && d.err == nil; i++ {
		var n NetworkState
		d.engineConfig(&n.Config)
		n.Kind = d.u8()
		if d.err == nil && n.Kind > 1 {
			d.corrupt("network %d: unknown member kind %d", i, n.Kind)
		}
		n.Weight = d.i64()
		if d.err == nil && n.Weight < 1 {
			d.corrupt("network %d: tick weight %d out of range", i, n.Weight)
		}
		n.RNG = d.blob(maxRNGBytes, "rng state")
		n.Done = d.i64()
		n.Target = d.i64()
		n.Events = d.i64()
		if d.err == nil && (n.Done < 0 || n.Done > n.Target) {
			d.corrupt("network %d: clock %d outside [0, target %d]", i, n.Done, n.Target)
		}
		d.stream(&n.Degree)
		d.stream(&n.Radius)
		d.stream(&n.Components)
		d.stream(&n.Energy)
		if d.ver >= 3 {
			d.stream(&n.Residual)
			d.stream(&n.EnergyVar)
		}
		n.Session.Config = n.Config
		d.sessionBody(&n.Session)
		if d.err == nil {
			st.Nets = append(st.Nets, n)
		}
	}
	d.footer()
	if d.err != nil {
		return nil, d.err
	}
	return st, nil
}

// decoder wraps a buffered reader with sticky-error primitive reads;
// once an error occurs every subsequent read returns zero values, so
// decoding code reads straight-line and checks d.err at the end.
type decoder struct {
	r   *bufio.Reader
	buf [8]byte
	err error
	// ver is the stream's format version, set by header; body readers
	// branch on it to decode the sections older versions lack.
	ver uint16
}

func newDecoder(r io.Reader) *decoder {
	return &decoder{r: bufio.NewReaderSize(r, 1<<16)}
}

// fail records the first error; subsequent reads are no-ops.
func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *decoder) corrupt(format string, args ...any) {
	d.fail(fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...)))
}

// read fills p exactly, mapping short reads to ErrCorrupt.
func (d *decoder) read(p []byte) {
	if d.err != nil {
		return
	}
	if _, err := io.ReadFull(d.r, p); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			d.corrupt("truncated")
			return
		}
		d.fail(err)
	}
}

func (d *decoder) u8() uint8 {
	d.read(d.buf[:1])
	return d.buf[0]
}

func (d *decoder) u16() uint16 {
	d.read(d.buf[:2])
	return binary.LittleEndian.Uint16(d.buf[:2])
}

func (d *decoder) u32() uint32 {
	d.read(d.buf[:4])
	return binary.LittleEndian.Uint32(d.buf[:4])
}

func (d *decoder) u64() uint64 {
	d.read(d.buf[:8])
	return binary.LittleEndian.Uint64(d.buf[:8])
}

func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) bool(what string) bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		if d.err == nil {
			d.corrupt("invalid %s flag", what)
		}
		return false
	}
}

// count reads a u32 element count and range-checks it against the int32
// id space.
func (d *decoder) count(what string) int {
	v := d.u32()
	if d.err == nil && v > math.MaxInt32 {
		d.corrupt("%s %d out of range", what, v)
		return 0
	}
	return int(v)
}

// blob reads a length-prefixed opaque byte section with a hard cap.
func (d *decoder) blob(max int, what string) []byte {
	n := d.count(what)
	if d.err != nil {
		return nil
	}
	if n > max {
		d.corrupt("%s length %d exceeds cap %d", what, n, max)
		return nil
	}
	p := make([]byte, n)
	d.read(p)
	if d.err != nil {
		return nil
	}
	return p
}

func (d *decoder) header(wantKind uint8) error {
	var m [4]byte
	d.read(m[:])
	if d.err != nil {
		return fmt.Errorf("%w: %v", ErrBadMagic, d.err)
	}
	if m != magic {
		return fmt.Errorf("%w: got %q", ErrBadMagic, m[:])
	}
	v := d.u16()
	kind := d.u8()
	if d.err != nil {
		return d.err
	}
	if v < MinVersion || v > Version {
		return fmt.Errorf("%w: got version %d, support %d–%d", ErrVersion, v, MinVersion, Version)
	}
	d.ver = v
	if kind != wantKind {
		return fmt.Errorf("%w: got kind %d, want %d", ErrWrongKind, kind, wantKind)
	}
	return nil
}

func (d *decoder) footer() {
	if v := d.u32(); d.err == nil && v != footer {
		d.corrupt("bad footer %#x", v)
	}
}

func (d *decoder) engineConfig(c *EngineConfig) {
	c.Alpha = d.f64()
	c.MaxRadius = d.f64()
	c.PathLossExponent = d.f64()
	c.ShrinkBack = d.bool("shrink-back")
	c.AsymmetricRemoval = d.bool("asymmetric-removal")
	c.PairwiseRemoval = d.bool("pairwise-removal")
	c.NonContributing = d.bool("non-contributing")
	c.PairwisePolicy = d.u8()
	c.ScheduleFactor = d.f64()
	if d.ver < 3 {
		// Version 2 predates the radio-identity fields: the stream was
		// always the pure power law with unit reference loss, no shadowing
		// and no battery.
		c.RefLoss = 1
		return
	}
	c.RefLoss = d.f64()
	c.RadioKind = d.u8()
	c.ShadowSigmaDB = d.f64()
	c.ShadowSeed = d.u64()
	c.BatteryCapacity = d.f64()
	c.BatteryDrain = d.f64()
	if d.err != nil {
		return
	}
	switch {
	case !finite(c.RefLoss) || c.RefLoss <= 0:
		d.corrupt("reference loss %v out of range", c.RefLoss)
	case c.RadioKind > 1:
		d.corrupt("unknown radio kind %d", c.RadioKind)
	case !finite(c.ShadowSigmaDB) || c.ShadowSigmaDB < 0:
		d.corrupt("shadowing sigma %v out of range", c.ShadowSigmaDB)
	case !finite(c.BatteryCapacity) || c.BatteryCapacity < 0:
		d.corrupt("battery capacity %v out of range", c.BatteryCapacity)
	case !finite(c.BatteryDrain) || c.BatteryDrain < 0:
		d.corrupt("battery drain %v out of range", c.BatteryDrain)
	}
}

func (d *decoder) stream(s *stats.Stream) {
	s.Count = d.i64()
	s.Mean = d.f64()
	s.M2 = d.f64()
	s.MinV = d.f64()
	s.MaxV = d.f64()
	if d.err == nil && s.Count < 0 {
		d.corrupt("negative stream count %d", s.Count)
	}
}

func (d *decoder) sessionBody(st *SessionState) {
	if d.err != nil {
		return
	}
	n := d.count("node count")
	st.Pos = d.points(n)
	st.Alive = d.bitset(n)

	grow := d.floats(n, "grow power")
	bounds := d.bitset(n)
	lens := d.rowLens(n, "discovery")
	if d.err != nil {
		return
	}
	nodes := make([]core.NodeResult, 0, growCap(n))
	for u := 0; u < n; u++ {
		nbrs := d.discoveries(int(lens[u]), n, u)
		if d.err != nil {
			return
		}
		nodes = append(nodes, core.NodeResult{
			Neighbors: nbrs,
			GrowPower: grow[u],
			Boundary:  bounds[u],
		})
	}
	st.Nodes = nodes

	st.Stats.Joins = d.i64()
	st.Stats.Leaves = d.i64()
	st.Stats.Moves = d.i64()
	st.Stats.AngleChanges = d.i64()
	st.Stats.Regrows = d.i64()
	st.Stats.Repairs = d.i64()
	for _, v := range []int64{st.Stats.Joins, st.Stats.Leaves, st.Stats.Moves, st.Stats.AngleChanges, st.Stats.Regrows, st.Stats.Repairs} {
		if d.err == nil && v < 0 {
			d.corrupt("negative session counter %d", v)
		}
	}

	if d.ver >= 3 && d.err == nil {
		if d.bool("battery presence") {
			st.Battery = d.floats(n, "battery")
			for i, b := range st.Battery {
				if d.err == nil && b < 0 {
					d.corrupt("battery %d negative", i)
				}
			}
		}
	}

	st.Incremental = d.bool("incremental")
	if d.err != nil || !st.Incremental {
		return
	}
	plens := d.rowLens(n, "pruned")
	if d.err != nil {
		return
	}
	st.Pruned = make([][]core.Discovery, n)
	for u := 0; u < n; u++ {
		st.Pruned[u] = d.discoveries(int(plens[u]), n, u)
		if d.err != nil {
			return
		}
	}
	st.Nalpha = d.digraph(n)
	st.G = d.graph(n)
	st.GR = d.graph(n)
	if d.err == nil {
		d.validateIncremental(st)
	}
}

// validateIncremental cross-checks invariants the graph-level validation
// cannot see: departed nodes must be isolated everywhere, so a restored
// session's derived metrics (live components, degree aggregates) mean
// what the original's meant.
func (d *decoder) validateIncremental(st *SessionState) {
	for u, alive := range st.Alive {
		if alive {
			continue
		}
		if len(st.Nodes[u].Neighbors) != 0 || len(st.Pruned[u]) != 0 ||
			st.Nalpha.OutDegree(u) != 0 || st.G.Degree(u) != 0 || st.GR.Degree(u) != 0 {
			d.corrupt("departed node %d is not isolated", u)
			return
		}
	}
}

func (d *decoder) points(n int) []geom.Point {
	out := growPoints(n)
	for i := 0; i < n; i++ {
		p := geom.Point{X: d.f64(), Y: d.f64()}
		if d.err != nil {
			return nil
		}
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
			d.corrupt("position %d not finite", i)
			return nil
		}
		out = append(out, p)
	}
	return out
}

func (d *decoder) floats(n int, what string) []float64 {
	out := make([]float64, 0, growCap(n))
	for i := 0; i < n; i++ {
		v := d.f64()
		if d.err != nil {
			return nil
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			d.corrupt("%s %d not finite", what, i)
			return nil
		}
		out = append(out, v)
	}
	return out
}

func (d *decoder) bitset(n int) []bool {
	out := make([]bool, 0, growCap(n))
	nb := (n + 7) / 8
	for i := 0; i < nb; i++ {
		b := d.u8()
		if d.err != nil {
			return nil
		}
		for j := 0; j < 8 && len(out) < n; j++ {
			out = append(out, b&(1<<j) != 0)
		}
	}
	return out
}

// rowLens reads one per-node row-length vector, capping each row at
// n-1: a row of distinct in-range ids can never be longer.
func (d *decoder) rowLens(n int, what string) []int32 {
	out := make([]int32, 0, growCap(n))
	for i := 0; i < n; i++ {
		l := d.u32()
		if d.err != nil {
			return nil
		}
		if int64(l) >= int64(n) {
			d.corrupt("%s row %d length %d out of range", what, i, l)
			return nil
		}
		out = append(out, int32(l))
	}
	return out
}

// discoveries reads one node's discovery row, validating ids (in range,
// not the node itself) and float finiteness.
func (d *decoder) discoveries(k, n, u int) []core.Discovery {
	out := make([]core.Discovery, 0, growCap(k))
	for i := 0; i < k; i++ {
		id := int32(d.u32())
		dist := d.f64()
		dir := d.f64()
		power := d.f64()
		if d.err != nil {
			return nil
		}
		if int(id) < 0 || int(id) >= n || int(id) == u {
			d.corrupt("node %d discovery %d: bad id %d", u, i, id)
			return nil
		}
		if !finite(dist) || !finite(dir) || !finite(power) {
			d.corrupt("node %d discovery %d: non-finite fields", u, i)
			return nil
		}
		out = append(out, core.Discovery{ID: int(id), Dist: dist, Dir: dir, Power: power})
	}
	return out
}

// graph reads one arena dump and rebuilds the symmetric graph through
// the validating loader.
func (d *decoder) graph(n int) *graph.Graph {
	lens, arena := d.arena(n)
	if d.err != nil {
		return nil
	}
	g, err := graph.NewFromDump(lens, arena)
	if err != nil {
		d.corrupt("%v", err)
		return nil
	}
	return g
}

func (d *decoder) digraph(n int) *graph.Digraph {
	lens, arena := d.arena(n)
	if d.err != nil {
		return nil
	}
	g, err := graph.NewDigraphFromDump(lens, arena)
	if err != nil {
		d.corrupt("%v", err)
		return nil
	}
	return g
}

// arena reads one graph dump: n row lengths, an entry count, and the
// packed int32 arena, read in chunks so a hostile count cannot force a
// large allocation.
func (d *decoder) arena(n int) (lens, arena []int32) {
	lens = d.rowLens(n, "graph")
	if d.err != nil {
		return nil, nil
	}
	var total int64
	for _, l := range lens {
		total += int64(l)
	}
	claimed := d.u64()
	if d.err != nil {
		return nil, nil
	}
	if claimed != uint64(total) {
		d.corrupt("arena length %d does not match row lengths %d", claimed, total)
		return nil, nil
	}
	arena = d.int32s(int(total))
	return lens, arena
}

// int32s bulk-reads k int32 values through a staging chunk, growing the
// output as bytes actually arrive.
func (d *decoder) int32s(k int) []int32 {
	out := make([]int32, 0, growCap(k))
	var chunk [4096]byte
	for len(out) < k {
		c := k - len(out)
		if c > len(chunk)/4 {
			c = len(chunk) / 4
		}
		d.read(chunk[:4*c])
		if d.err != nil {
			return nil
		}
		for i := 0; i < c; i++ {
			out = append(out, int32(binary.LittleEndian.Uint32(chunk[4*i:])))
		}
	}
	return out
}

// growCap bounds up-front allocation for attacker-controlled counts:
// allocate at most 64k elements eagerly and let append grow the rest as
// real bytes arrive.
func growCap(n int) int {
	if n < 0 {
		return 0
	}
	if n > 1<<16 {
		return 1 << 16
	}
	return n
}

func growPoints(n int) []geom.Point {
	return make([]geom.Point, 0, growCap(n))
}

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
