package netsim

import (
	"errors"
	"math"
	"testing"

	"cbtc/internal/geom"
	"cbtc/internal/radio"
)

// recorder is a Process that records everything it sees.
type recorder struct {
	inits      int
	deliveries []Delivery
	timers     []int
	onInit     func(ctx *Context)
	onRecv     func(ctx *Context, d Delivery)
	onTimer    func(ctx *Context, kind int, v float64)
}

func (r *recorder) Init(ctx *Context) {
	r.inits++
	if r.onInit != nil {
		r.onInit(ctx)
	}
}
func (r *recorder) Recv(ctx *Context, d Delivery) {
	r.deliveries = append(r.deliveries, d)
	if r.onRecv != nil {
		r.onRecv(ctx, d)
	}
}
func (r *recorder) Timer(ctx *Context, kind int, v float64) {
	r.timers = append(r.timers, kind)
	if r.onTimer != nil {
		r.onTimer(ctx, kind, v)
	}
}

func testModel() radio.Model { return radio.Default(500) }

func newSim(t *testing.T, pos []geom.Point, opts Options) (*Sim, []*recorder) {
	t.Helper()
	s, err := New(pos, opts)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]*recorder, len(pos))
	for i := range pos {
		recs[i] = &recorder{}
		s.SetProcess(i, recs[i])
	}
	return s, recs
}

func TestOptionsValidate(t *testing.T) {
	m := testModel()
	tests := []struct {
		name string
		opts Options
		ok   bool
	}{
		{"default", DefaultOptions(m), true},
		{"bad model", Options{Latency: 1}, false},
		{"zero latency", Options{Model: m}, false},
		{"negative jitter", Options{Model: m, Latency: 1, Jitter: -1}, false},
		{"drop prob 1", Options{Model: m, Latency: 1, DropProb: 1}, false},
		{"dup prob negative", Options{Model: m, Latency: 1, DupProb: -0.1}, false},
		{"noise negative", Options{Model: m, Latency: 1, AoANoise: -0.1}, false},
		{"lossy ok", Options{Model: m, Latency: 1, Jitter: 2, DropProb: 0.3, DupProb: 0.2, AoANoise: 0.01}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.opts.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate() = %v, ok=%v", err, tt.ok)
			}
			if err != nil && !errors.Is(err, ErrBadOptions) {
				t.Errorf("error must wrap ErrBadOptions: %v", err)
			}
		})
	}
}

func TestBroadcastRangeSemantics(t *testing.T) {
	m := testModel()
	// Node 1 at 100, node 2 at 300, node 3 at 501 from node 0.
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(300, 0), geom.Pt(501, 0)}
	s, recs := newSim(t, pos, DefaultOptions(m))

	s.ScheduleAt(1, func() {
		ctx := &Context{sim: s, id: 0}
		ctx.Broadcast(m.PowerFor(300), "hello")
	})
	if err := s.RunUntilQuiet(100); err != nil {
		t.Fatal(err)
	}

	if len(recs[1].deliveries) != 1 || len(recs[2].deliveries) != 1 {
		t.Errorf("nodes within range must receive exactly once: %d, %d",
			len(recs[1].deliveries), len(recs[2].deliveries))
	}
	if len(recs[3].deliveries) != 0 {
		t.Errorf("node beyond power range must not receive")
	}
	if len(recs[0].deliveries) != 0 {
		t.Errorf("sender must not receive its own broadcast")
	}

	d := recs[1].deliveries[0]
	if d.From != 0 || d.Payload != "hello" {
		t.Errorf("unexpected delivery: %+v", d)
	}
	if want := m.PowerFor(300); !almostEq(d.TxPower, want, 1e-9) {
		t.Errorf("TxPower = %v, want %v", d.TxPower, want)
	}
	// Reception power at distance 100 of a p(300) transmission.
	if want := m.ReceivedPower(m.PowerFor(300), 100); !almostEq(d.RxPower, want, 1e-9) {
		t.Errorf("RxPower = %v, want %v", d.RxPower, want)
	}
	// Needed power recovered from (tx, rx) equals p(100).
	if got := m.NeededPower(d.TxPower, d.RxPower); !almostEq(got, m.PowerFor(100), 1e-6) {
		t.Errorf("recovered needed power = %v, want p(100)", got)
	}
	// Bearing: node 1 sees node 0 to its west.
	if !almostEq(d.Bearing, math.Pi, 1e-9) {
		t.Errorf("Bearing = %v, want π", d.Bearing)
	}
}

func TestUnicastOnlyTarget(t *testing.T) {
	m := testModel()
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(200, 0)}
	s, recs := newSim(t, pos, DefaultOptions(m))

	s.ScheduleAt(1, func() {
		ctx := &Context{sim: s, id: 0}
		ctx.Unicast(2, m.MaxPower(), "direct")
	})
	if err := s.RunUntilQuiet(100); err != nil {
		t.Fatal(err)
	}
	if len(recs[1].deliveries) != 0 {
		t.Errorf("unicast must not deliver to bystanders")
	}
	if len(recs[2].deliveries) != 1 {
		t.Errorf("unicast target must receive")
	}
}

func TestUnicastOutOfRange(t *testing.T) {
	m := testModel()
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(400, 0)}
	s, recs := newSim(t, pos, DefaultOptions(m))
	s.ScheduleAt(1, func() {
		ctx := &Context{sim: s, id: 0}
		ctx.Unicast(1, m.PowerFor(100), "too weak")
	})
	if err := s.RunUntilQuiet(100); err != nil {
		t.Fatal(err)
	}
	if len(recs[1].deliveries) != 0 {
		t.Errorf("under-powered unicast must not deliver")
	}
}

func TestTimers(t *testing.T) {
	m := testModel()
	pos := []geom.Point{geom.Pt(0, 0)}
	s, recs := newSim(t, pos, DefaultOptions(m))
	var fireTime float64
	recs[0].onInit = func(ctx *Context) {
		ctx.SetTimer(5, 7, 0)
	}
	recs[0].onTimer = func(ctx *Context, kind int, v float64) {
		fireTime = ctx.Now()
	}
	if err := s.RunUntilQuiet(100); err != nil {
		t.Fatal(err)
	}
	if len(recs[0].timers) != 1 || recs[0].timers[0] != 7 {
		t.Fatalf("timers = %v, want [7]", recs[0].timers)
	}
	if !almostEq(fireTime, 5, 1e-9) {
		t.Errorf("timer fired at %v, want 5", fireTime)
	}
}

func TestCrashStopsEverything(t *testing.T) {
	m := testModel()
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0)}
	s, recs := newSim(t, pos, DefaultOptions(m))
	recs[0].onInit = func(ctx *Context) {
		ctx.SetTimer(10, 1, 0) // would fire after the crash
	}
	s.ScheduleAt(5, func() { s.Crash(0) })
	s.ScheduleAt(6, func() {
		ctx := &Context{sim: s, id: 1}
		ctx.Broadcast(m.MaxPower(), "are you there")
	})
	s.ScheduleAt(7, func() {
		// Crashed nodes cannot send either.
		ctx := &Context{sim: s, id: 0}
		ctx.Broadcast(m.MaxPower(), "ghost")
	})
	if err := s.RunUntilQuiet(100); err != nil {
		t.Fatal(err)
	}
	if len(recs[0].timers) != 0 {
		t.Errorf("crashed node processed a timer")
	}
	if len(recs[0].deliveries) != 0 {
		t.Errorf("crashed node received a message")
	}
	if len(recs[1].deliveries) != 0 {
		t.Errorf("a crashed node transmitted")
	}
	if !s.Crashed(0) || s.Crashed(1) {
		t.Errorf("crash flags wrong")
	}
}

func TestDropAndDuplicate(t *testing.T) {
	m := testModel()
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0)}
	const rounds = 2000

	run := func(drop, dup float64) (delivered int, stats Stats) {
		opts := DefaultOptions(m)
		opts.DropProb = drop
		opts.DupProb = dup
		opts.Seed = 99
		s, recs := newSim(t, pos, opts)
		for i := 0; i < rounds; i++ {
			at := float64(i + 1)
			s.ScheduleAt(at, func() {
				ctx := &Context{sim: s, id: 0}
				ctx.Broadcast(m.PowerFor(200), i)
			})
		}
		if err := s.RunUntilQuiet(1e9); err != nil {
			t.Fatal(err)
		}
		return len(recs[1].deliveries), s.Stats()
	}

	delivered, stats := run(0.3, 0)
	if delivered == rounds || delivered == 0 {
		t.Errorf("drop probability 0.3 delivered %d of %d", delivered, rounds)
	}
	ratio := float64(delivered) / rounds
	if ratio < 0.6 || ratio > 0.8 {
		t.Errorf("delivery ratio %v, want ≈ 0.7", ratio)
	}
	if stats.Dropped != rounds-delivered {
		t.Errorf("Dropped = %d, want %d", stats.Dropped, rounds-delivered)
	}

	delivered, stats = run(0, 0.25)
	if delivered <= rounds {
		t.Errorf("duplication must deliver more than %d, got %d", rounds, delivered)
	}
	if stats.Duplicated != delivered-rounds {
		t.Errorf("Duplicated = %d, want %d", stats.Duplicated, delivered-rounds)
	}
}

func TestDeterminism(t *testing.T) {
	m := testModel()
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(200, 50)}
	history := func(seed uint64) []Delivery {
		opts := DefaultOptions(m)
		opts.Jitter = 3
		opts.DropProb = 0.2
		opts.Seed = seed
		s, recs := newSim(t, pos, opts)
		// Every node broadcasts periodically and echoes on reception.
		for i := range pos {
			id := i
			recs[i].onInit = func(ctx *Context) { ctx.SetTimer(float64(id+1), 0, 0) }
			recs[i].onTimer = func(ctx *Context, kind int, v float64) {
				ctx.Broadcast(m.PowerFor(250), ctx.Now())
				if ctx.Now() < 50 {
					ctx.SetTimer(5, 0, 0)
				}
			}
		}
		if err := s.RunUntilQuiet(1e9); err != nil {
			t.Fatal(err)
		}
		var all []Delivery
		for _, r := range recs {
			all = append(all, r.deliveries...)
		}
		return all
	}

	a, b := history(7), history(7)
	if len(a) != len(b) {
		t.Fatalf("same seed, different delivery counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different delivery %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := history(8)
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("different seeds produced identical histories")
		}
	}
}

func TestMoveNodeAffectsLaterTransmissions(t *testing.T) {
	m := testModel()
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(1200, 0)}
	s, recs := newSim(t, pos, DefaultOptions(m))

	s.ScheduleAt(1, func() {
		ctx := &Context{sim: s, id: 0}
		ctx.Broadcast(m.MaxPower(), "before")
	})
	s.ScheduleAt(2, func() { s.MoveNode(1, geom.Pt(300, 0)) })
	s.ScheduleAt(3, func() {
		ctx := &Context{sim: s, id: 0}
		ctx.Broadcast(m.MaxPower(), "after")
	})
	if err := s.RunUntilQuiet(100); err != nil {
		t.Fatal(err)
	}
	if len(recs[1].deliveries) != 1 || recs[1].deliveries[0].Payload != "after" {
		t.Errorf("move must bring the node into range: %+v", recs[1].deliveries)
	}
	if got := s.Position(1); got != geom.Pt(300, 0) {
		t.Errorf("Position = %v, want (300,0)", got)
	}
}

func TestAoANoise(t *testing.T) {
	m := testModel()
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0)}
	opts := DefaultOptions(m)
	opts.AoANoise = 0.05
	opts.Seed = 3
	s, recs := newSim(t, pos, opts)
	for i := 0; i < 200; i++ {
		s.ScheduleAt(float64(i+1), func() {
			ctx := &Context{sim: s, id: 0}
			ctx.Broadcast(m.PowerFor(150), "ping")
		})
	}
	if err := s.RunUntilQuiet(1e9); err != nil {
		t.Fatal(err)
	}
	var spread, mean float64
	for _, d := range recs[1].deliveries {
		mean += geom.AngularDist(d.Bearing, math.Pi)
	}
	mean /= float64(len(recs[1].deliveries))
	for _, d := range recs[1].deliveries {
		dev := geom.AngularDist(d.Bearing, math.Pi)
		spread += (dev - mean) * (dev - mean)
	}
	if mean == 0 && spread == 0 {
		t.Errorf("AoA noise had no effect on measured bearings")
	}
	if mean > 0.2 {
		t.Errorf("mean AoA error %v too large for σ=0.05", mean)
	}
}

func TestRunStopsAtDeadline(t *testing.T) {
	m := testModel()
	pos := []geom.Point{geom.Pt(0, 0)}
	s, recs := newSim(t, pos, DefaultOptions(m))
	recs[0].onInit = func(ctx *Context) { ctx.SetTimer(10, 0, 0) }
	recs[0].onTimer = func(ctx *Context, kind int, v float64) {
		ctx.SetTimer(10, 0, 0) // forever
	}
	s.Run(35)
	if got := len(recs[0].timers); got != 3 {
		t.Errorf("timers fired = %d, want 3 (t=10,20,30)", got)
	}
	if err := s.RunUntilQuiet(50); err == nil {
		t.Errorf("RunUntilQuiet must fail for a non-converging schedule")
	}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// Same-time events run in scheduling order: the (time, sequence) total
// order makes simulations reproducible even under event ties.
func TestEventTieBreaking(t *testing.T) {
	m := testModel()
	pos := []geom.Point{geom.Pt(0, 0)}
	s, _ := newSim(t, pos, DefaultOptions(m))
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.ScheduleAt(5, func() { order = append(order, i) })
	}
	if err := s.RunUntilQuiet(100); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("tie order = %v, want ascending scheduling order", order)
		}
	}
}

// ScheduleAt in the past clamps to the current time instead of
// rewinding the clock.
func TestScheduleAtPastClamps(t *testing.T) {
	m := testModel()
	pos := []geom.Point{geom.Pt(0, 0)}
	s, _ := newSim(t, pos, DefaultOptions(m))
	s.Run(50)
	fired := -1.0
	s.ScheduleAt(10, func() { fired = s.Now() })
	if err := s.RunUntilQuiet(100); err != nil {
		t.Fatal(err)
	}
	if fired < 50 {
		t.Errorf("past event fired at %v, want ≥ 50", fired)
	}
}

// AddNode mid-run: the new node participates from its Init on.
func TestAddNodeMidRun(t *testing.T) {
	m := testModel()
	pos := []geom.Point{geom.Pt(0, 0)}
	s, recs := newSim(t, pos, DefaultOptions(m))
	s.Run(10)
	id := s.AddNode(geom.Pt(100, 0))
	if id != 1 {
		t.Fatalf("AddNode id = %d, want 1", id)
	}
	rec := &recorder{}
	s.SetProcess(id, rec)
	s.ScheduleAt(20, func() {
		ctx := &Context{sim: s, id: 0}
		ctx.Broadcast(m.PowerFor(200), "welcome")
	})
	if err := s.RunUntilQuiet(100); err != nil {
		t.Fatal(err)
	}
	if rec.inits != 1 {
		t.Errorf("new node inits = %d, want 1", rec.inits)
	}
	if len(rec.deliveries) != 1 || rec.deliveries[0].Payload != "welcome" {
		t.Errorf("new node deliveries = %+v", rec.deliveries)
	}
	if s.Energy(id) != 0 {
		t.Errorf("silent new node spent energy")
	}
	_ = recs
}
