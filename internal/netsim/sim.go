package netsim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand/v2"

	"cbtc/internal/geom"
	"cbtc/internal/radio"
	"cbtc/internal/spatial"
)

// Process is the behavior installed on each node. The simulator calls
// its methods sequentially; a process never runs concurrently with
// itself or any other process.
type Process interface {
	// Init runs once when the simulation starts (or when the node is
	// added to a running simulation).
	Init(ctx *Context)
	// Recv handles a delivered message.
	Recv(ctx *Context, d Delivery)
	// Timer handles an expired timer set through Context.SetTimer.
	Timer(ctx *Context, kind int, data interface{})
}

// Delivery is a received message together with the physical-layer
// measurements the paper assumes are available (§2): the transmission
// power (carried in the message), the reception power, and the measured
// angle of arrival.
type Delivery struct {
	// From is the sender's node ID.
	From int
	// TxPower is the power the message was transmitted with.
	TxPower float64
	// RxPower is the power the message arrived with after attenuation.
	RxPower float64
	// Bearing is the measured angle of arrival: the direction from the
	// receiver toward the sender, plus configured measurement noise.
	Bearing float64
	// Payload is the message body.
	Payload interface{}
}

// Stats counts simulator activity, for tests and reporting.
type Stats struct {
	Sent       int // transmit operations (broadcast or unicast)
	Delivered  int // successful deliveries
	Dropped    int // deliveries lost to the unreliable channel
	Duplicated int // extra deliveries injected by duplication
	Events     int // total events processed
}

// Sim is a deterministic discrete-event simulator.
type Sim struct {
	opts  Options
	rng   *rand.Rand
	now   float64
	seq   uint64
	queue eventHeap

	pos     []geom.Point
	procs   []Process
	crashed []bool

	grid    *spatial.Grid // cell ≈ R; nil only in NaiveDelivery mode
	scratch []int         // reusable Within result buffer

	stats     Stats
	energyTx  []float64
	interrupt func() bool
}

// ErrInterrupted reports that an installed interrupt callback stopped
// the event loop before the queue drained.
var ErrInterrupted = errors.New("netsim: interrupted")

// SetInterrupt installs a callback polled before each event; when it
// returns true, Run stops early and RunUntilQuiet fails with an error
// wrapping ErrInterrupted. It is how context cancellation reaches the
// event loop: the driver installs func() bool { return ctx.Err() != nil }.
func (s *Sim) SetInterrupt(fn func() bool) { s.interrupt = fn }

func (s *Sim) interrupted() bool { return s.interrupt != nil && s.interrupt() }

type event struct {
	at  float64
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// New builds a simulator over the given placement. Processes are
// installed with SetProcess before Run.
func New(pos []geom.Point, opts Options) (*Sim, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{
		opts:     opts,
		rng:      rand.New(rand.NewPCG(opts.Seed, 0x6a09e667f3bcc909)),
		pos:      append([]geom.Point(nil), pos...),
		procs:    make([]Process, len(pos)),
		crashed:  make([]bool, len(pos)),
		energyTx: make([]float64, len(pos)),
	}
	if !opts.NaiveDelivery {
		s.grid = spatial.New(s.pos, opts.Model.MaxRadius)
	}
	return s, nil
}

// Energy returns the cumulative transmission energy node id has spent:
// the sum of the powers of its transmit operations (each transmission
// lasts one unit). The §5 discussion compares the energy CBTC(α)
// expends during execution across cone angles.
func (s *Sim) Energy(id int) float64 {
	s.checkID(id)
	return s.energyTx[id]
}

// TotalEnergy returns the network-wide transmission energy.
func (s *Sim) TotalEnergy() float64 {
	var sum float64
	for _, e := range s.energyTx {
		sum += e
	}
	return sum
}

// SetProcess installs the behavior of node id. It must be called before
// the node participates; Init is scheduled at the current time.
func (s *Sim) SetProcess(id int, p Process) {
	s.checkID(id)
	s.procs[id] = p
	s.schedule(s.now, func() {
		if !s.crashed[id] && s.procs[id] != nil {
			s.procs[id].Init(&Context{sim: s, id: id})
		}
	})
}

// Len returns the number of nodes.
func (s *Sim) Len() int { return len(s.pos) }

// Now returns the current simulation time.
func (s *Sim) Now() float64 { return s.now }

// Position returns node id's current position.
func (s *Sim) Position(id int) geom.Point {
	s.checkID(id)
	return s.pos[id]
}

// Model returns the radio model in effect.
func (s *Sim) Model() radio.Model { return s.opts.Model }

// Stats returns activity counters.
func (s *Sim) Stats() Stats { return s.stats }

// Crash marks node id as crash-failed: it stops sending, receiving and
// processing timers, permanently.
func (s *Sim) Crash(id int) {
	s.checkID(id)
	s.crashed[id] = true
}

// Crashed reports whether node id has crash-failed.
func (s *Sim) Crashed(id int) bool {
	s.checkID(id)
	return s.crashed[id]
}

// MoveNode relocates node id immediately. In-flight messages are not
// re-routed: delivery sets are computed at transmission time, modeling
// signals already in the air.
func (s *Sim) MoveNode(id int, to geom.Point) {
	s.checkID(id)
	s.pos[id] = to
	if s.grid != nil {
		s.grid.Move(id, to)
	}
}

// AddNode introduces a new node at the given position while the
// simulation is running (§4: "new nodes may be added to the network").
// It returns the new node's ID; install its behavior with SetProcess.
// Until a process is installed the node neither sends nor receives.
func (s *Sim) AddNode(at geom.Point) int {
	id := len(s.pos)
	s.pos = append(s.pos, at)
	s.procs = append(s.procs, nil)
	s.crashed = append(s.crashed, false)
	s.energyTx = append(s.energyTx, 0)
	if s.grid != nil {
		s.grid.Add(id, at)
	}
	return id
}

// ScheduleAt runs fn at the given absolute time. Tests and scenario
// drivers use it to script crashes, moves, and assertions.
func (s *Sim) ScheduleAt(t float64, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.schedule(t, fn)
}

// Run processes events until the queue empties or the simulation clock
// passes `until`. It returns the number of events processed.
func (s *Sim) Run(until float64) int {
	processed := 0
	for s.queue.Len() > 0 {
		if s.queue[0].at > until || s.interrupted() {
			break
		}
		ev := heap.Pop(&s.queue).(event)
		s.now = ev.at
		ev.fn()
		processed++
		s.stats.Events++
	}
	if s.now < until {
		s.now = until
	}
	return processed
}

// RunUntilQuiet processes events until the queue drains, failing if the
// clock passes maxTime first (a protocol that never converges).
func (s *Sim) RunUntilQuiet(maxTime float64) error {
	for s.queue.Len() > 0 {
		if s.interrupted() {
			return fmt.Errorf("%w at time %v with %d events pending", ErrInterrupted, s.now, s.queue.Len())
		}
		if s.queue[0].at > maxTime {
			return fmt.Errorf("netsim: still %d events pending at time %v (limit %v)",
				s.queue.Len(), s.queue[0].at, maxTime)
		}
		ev := heap.Pop(&s.queue).(event)
		s.now = ev.at
		ev.fn()
		s.stats.Events++
	}
	return nil
}

func (s *Sim) schedule(at float64, fn func()) {
	heap.Push(&s.queue, event{at: at, seq: s.seq, fn: fn})
	s.seq++
}

func (s *Sim) checkID(id int) {
	if id < 0 || id >= len(s.pos) {
		panic(fmt.Sprintf("netsim: node %d out of range [0, %d)", id, len(s.pos)))
	}
}

// transmit implements both broadcast and unicast, applying the
// unreliable-channel model per receiver. Unicast (only ≥ 0) delivers
// directly to the target after a single reachability check. Broadcast
// queries the spatial index for the nodes within the transmission range
// instead of scanning the whole placement; because the index returns
// candidates in ascending id order — the order the naive scan visits
// them — the per-receiver drop/dup/jitter PRNG draws happen in exactly
// the same sequence and seeded histories are byte-identical.
func (s *Sim) transmit(from int, txPower float64, payload interface{}, only int) {
	if s.crashed[from] {
		return
	}
	s.stats.Sent++
	s.energyTx[from] += txPower
	if s.grid == nil {
		// NaiveDelivery: the pre-index reference implementation, including
		// its linear unicast scan.
		for to := range s.pos {
			if to == from || s.crashed[to] || s.procs[to] == nil {
				continue
			}
			if only >= 0 && to != only {
				continue
			}
			s.maybeDeliver(from, to, txPower, payload)
		}
		return
	}
	if only >= 0 {
		if only != from && only < len(s.pos) && !s.crashed[only] && s.procs[only] != nil {
			s.maybeDeliver(from, only, txPower, payload)
		}
		return
	}
	// Model.Reaches carries a 1e-12-scale relative power tolerance, so the
	// query radius is widened by QuerySlack and the exact predicate
	// re-applied in maybeDeliver — the candidate set is a tight superset.
	reach := s.opts.Model.RangeFor(txPower) * (1 + spatial.QuerySlack)
	s.scratch = s.grid.AppendWithin(s.scratch[:0], s.pos[from], reach)
	for _, to := range s.scratch {
		if to == from || s.crashed[to] || s.procs[to] == nil {
			continue
		}
		s.maybeDeliver(from, to, txPower, payload)
	}
}

// maybeDeliver applies the physical and unreliable-channel model for one
// receiver: the exact reachability predicate, then the drop and
// duplication draws. The PRNG is only consulted for receivers that pass
// the reachability check, preserving the naive scan's draw sequence.
func (s *Sim) maybeDeliver(from, to int, txPower float64, payload interface{}) {
	d := s.pos[from].Dist(s.pos[to])
	if !s.opts.Model.Reaches(txPower, d) {
		return
	}
	if s.opts.DropProb > 0 && s.rng.Float64() < s.opts.DropProb {
		s.stats.Dropped++
		return
	}
	s.deliverOnce(from, to, txPower, d, payload)
	if s.opts.DupProb > 0 && s.rng.Float64() < s.opts.DupProb {
		s.stats.Duplicated++
		s.deliverOnce(from, to, txPower, d, payload)
	}
}

func (s *Sim) deliverOnce(from, to int, txPower, dist float64, payload interface{}) {
	delay := s.opts.Latency
	if s.opts.Jitter > 0 {
		delay += s.rng.Float64() * s.opts.Jitter
	}
	bearing := s.pos[to].Bearing(s.pos[from])
	if s.opts.AoANoise > 0 {
		bearing = geom.Normalize(bearing + s.rng.NormFloat64()*s.opts.AoANoise)
	}
	del := Delivery{
		From:    from,
		TxPower: txPower,
		RxPower: s.opts.Model.ReceivedPower(txPower, dist),
		Bearing: bearing,
		Payload: payload,
	}
	s.schedule(s.now+delay, func() {
		if s.crashed[to] || s.procs[to] == nil {
			return
		}
		s.stats.Delivered++
		s.procs[to].Recv(&Context{sim: s, id: to}, del)
	})
}
