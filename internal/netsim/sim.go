package netsim

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"cbtc/internal/geom"
	"cbtc/internal/radio"
	"cbtc/internal/spatial"
)

// Process is the behavior installed on each node. The simulator calls
// its methods sequentially; a process never runs concurrently with
// itself or any other process. The Context passed to a callback is owned
// by the simulator and only valid for the duration of that callback —
// processes must not retain it.
type Process interface {
	// Init runs once when the simulation starts (or when the node is
	// added to a running simulation).
	Init(ctx *Context)
	// Recv handles a delivered message.
	Recv(ctx *Context, d Delivery)
	// Timer handles an expired timer set through Context.SetTimer; v is
	// the value passed at arming time.
	Timer(ctx *Context, kind int, v float64)
}

// Delivery is a received message together with the physical-layer
// measurements the paper assumes are available (§2): the transmission
// power (carried in the message), the reception power, and the measured
// angle of arrival.
type Delivery struct {
	// From is the sender's node ID.
	From int
	// TxPower is the power the message was transmitted with.
	TxPower float64
	// RxPower is the power the message arrived with after attenuation.
	RxPower float64
	// Bearing is the measured angle of arrival: the direction from the
	// receiver toward the sender, plus configured measurement noise.
	Bearing float64
	// Payload is the message body.
	Payload interface{}
}

// Stats counts simulator activity, for tests and reporting.
type Stats struct {
	Sent       int // transmit operations (broadcast or unicast)
	Delivered  int // successful deliveries
	Dropped    int // deliveries lost to the unreliable channel
	Duplicated int // extra deliveries injected by duplication
	Events     int // total events processed
}

// Sim is a deterministic discrete-event simulator.
type Sim struct {
	opts  Options
	rng   *rand.Rand
	now   float64
	seq   uint64
	queue eventHeap

	pos     []geom.Point
	procs   []Process
	crashed []bool

	grid    *spatial.Grid // cell ≈ R; nil only in NaiveDelivery mode
	scratch []int         // reusable Within result buffer
	cbuf    Context       // reusable callback context; see dispatch

	stats     Stats
	energyTx  []float64
	interrupt func() bool
}

// ErrInterrupted reports that an installed interrupt callback stopped
// the event loop before the queue drained.
var ErrInterrupted = errors.New("netsim: interrupted")

// SetInterrupt installs a callback polled before each event; when it
// returns true, Run stops early and RunUntilQuiet fails with an error
// wrapping ErrInterrupted. It is how context cancellation reaches the
// event loop: the driver installs func() bool { return ctx.Err() != nil }.
func (s *Sim) SetInterrupt(fn func() bool) { s.interrupt = fn }

func (s *Sim) interrupted() bool { return s.interrupt != nil && s.interrupt() }

// evKind discriminates the value-typed event union. Events used to carry
// a closure (`fn func()`), which allocated one capture block per
// scheduled event — the dominant allocation of large simulations. The
// protocol traffic (timers, deliveries, inits) is now described by plain
// fields dispatched in the loop; only explicitly scripted callbacks
// (ScheduleAt) still carry a closure.
type evKind uint8

const (
	// evFunc runs a scripted callback (ScheduleAt).
	evFunc evKind = iota
	// evInit delivers Process.Init to node.
	evInit
	// evTimer delivers Process.Timer(tkind, fv) to node.
	evTimer
	// evDeliver delivers del to node via Process.Recv.
	evDeliver
)

type event struct {
	at    float64
	seq   uint64
	kind  evKind
	node  int32    // target node for evInit/evTimer/evDeliver
	tkind int32    // timer kind for evTimer
	fv    float64  // timer value for evTimer
	del   Delivery // payload for evDeliver
	fn    func()   // callback for evFunc
}

// eventHeap is a binary min-heap over (at, seq), hand-rolled so pushes
// and pops move event values directly instead of boxing them through
// container/heap's interface{} — one allocation per event saved, and the
// backing array is reused across the whole simulation.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[last] = event{} // release the closure/payload references
	q = q[:last]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && q.less(l, smallest) {
			smallest = l
		}
		if r < last && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
	return top
}

// New builds a simulator over the given placement. Processes are
// installed with SetProcess before Run.
func New(pos []geom.Point, opts Options) (*Sim, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{
		opts:     opts,
		rng:      rand.New(rand.NewPCG(opts.Seed, 0x6a09e667f3bcc909)),
		pos:      append([]geom.Point(nil), pos...),
		procs:    make([]Process, len(pos)),
		crashed:  make([]bool, len(pos)),
		energyTx: make([]float64, len(pos)),
		// Pre-size the event heap for the steady state (every node with an
		// outstanding timer plus in-flight deliveries) so the growth
		// reallocations happen once, up front.
		queue: make(eventHeap, 0, max(64, 4*len(pos))),
	}
	s.cbuf.sim = s
	if !opts.NaiveDelivery {
		s.grid = spatial.New(s.pos, opts.Model.MaxLinkRadius())
	}
	return s, nil
}

// Energy returns the cumulative transmission energy node id has spent:
// the sum of the powers of its transmit operations (each transmission
// lasts one unit). The §5 discussion compares the energy CBTC(α)
// expends during execution across cone angles.
func (s *Sim) Energy(id int) float64 {
	s.checkID(id)
	return s.energyTx[id]
}

// TotalEnergy returns the network-wide transmission energy.
func (s *Sim) TotalEnergy() float64 {
	var sum float64
	for _, e := range s.energyTx {
		sum += e
	}
	return sum
}

// SetProcess installs the behavior of node id. It must be called before
// the node participates; Init is scheduled at the current time.
func (s *Sim) SetProcess(id int, p Process) {
	s.checkID(id)
	s.procs[id] = p
	s.scheduleEvent(event{at: s.now, kind: evInit, node: int32(id)})
}

// Len returns the number of nodes.
func (s *Sim) Len() int { return len(s.pos) }

// Now returns the current simulation time.
func (s *Sim) Now() float64 { return s.now }

// Position returns node id's current position.
func (s *Sim) Position(id int) geom.Point {
	s.checkID(id)
	return s.pos[id]
}

// Model returns the nominal power-law radio model in effect. The full
// propagation model (with any per-link effects) is Propagation.
func (s *Sim) Model() radio.Model { return s.opts.Model.Nominal() }

// Propagation returns the propagation model in effect.
func (s *Sim) Propagation() radio.Propagation { return s.opts.Model }

// Stats returns activity counters.
func (s *Sim) Stats() Stats { return s.stats }

// Crash marks node id as crash-failed: it stops sending, receiving and
// processing timers, permanently.
func (s *Sim) Crash(id int) {
	s.checkID(id)
	s.crashed[id] = true
}

// Crashed reports whether node id has crash-failed.
func (s *Sim) Crashed(id int) bool {
	s.checkID(id)
	return s.crashed[id]
}

// MoveNode relocates node id immediately. In-flight messages are not
// re-routed: delivery sets are computed at transmission time, modeling
// signals already in the air.
func (s *Sim) MoveNode(id int, to geom.Point) {
	s.checkID(id)
	s.pos[id] = to
	if s.grid != nil {
		s.grid.Move(id, to)
	}
}

// AddNode introduces a new node at the given position while the
// simulation is running (§4: "new nodes may be added to the network").
// It returns the new node's ID; install its behavior with SetProcess.
// Until a process is installed the node neither sends nor receives.
func (s *Sim) AddNode(at geom.Point) int {
	id := len(s.pos)
	s.pos = append(s.pos, at)
	s.procs = append(s.procs, nil)
	s.crashed = append(s.crashed, false)
	s.energyTx = append(s.energyTx, 0)
	if s.grid != nil {
		s.grid.Add(id, at)
	}
	return id
}

// ScheduleAt runs fn at the given absolute time. Tests and scenario
// drivers use it to script crashes, moves, and assertions.
func (s *Sim) ScheduleAt(t float64, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.schedule(t, fn)
}

// Run processes events until the queue empties or the simulation clock
// passes `until`. It returns the number of events processed.
func (s *Sim) Run(until float64) int {
	processed := 0
	for len(s.queue) > 0 {
		if s.queue[0].at > until || s.interrupted() {
			break
		}
		ev := s.queue.pop()
		s.now = ev.at
		s.dispatch(&ev)
		processed++
		s.stats.Events++
	}
	if s.now < until {
		s.now = until
	}
	return processed
}

// RunUntilQuiet processes events until the queue drains, failing if the
// clock passes maxTime first (a protocol that never converges).
func (s *Sim) RunUntilQuiet(maxTime float64) error {
	for len(s.queue) > 0 {
		if s.interrupted() {
			return fmt.Errorf("%w at time %v with %d events pending", ErrInterrupted, s.now, len(s.queue))
		}
		if s.queue[0].at > maxTime {
			return fmt.Errorf("netsim: still %d events pending at time %v (limit %v)",
				len(s.queue), s.queue[0].at, maxTime)
		}
		ev := s.queue.pop()
		s.now = ev.at
		s.dispatch(&ev)
		s.stats.Events++
	}
	return nil
}

// dispatch executes one popped event. The liveness checks happen here —
// at fire time, not at schedule time — preserving the semantics of the
// closure-based events: a node that crashed or was cleared after the
// event was scheduled silently absorbs it.
//
// The Context handed to callbacks is a single per-Sim value re-targeted
// for each dispatch. The event loop is strictly sequential and processes
// never retain the Context past their callback (the Process contract),
// so one buffer serves every event with zero allocations.
func (s *Sim) dispatch(ev *event) {
	switch ev.kind {
	case evFunc:
		ev.fn()
	case evInit:
		id := int(ev.node)
		if !s.crashed[id] && s.procs[id] != nil {
			s.cbuf.id = id
			s.procs[id].Init(&s.cbuf)
		}
	case evTimer:
		id := int(ev.node)
		if !s.crashed[id] && s.procs[id] != nil {
			s.cbuf.id = id
			s.procs[id].Timer(&s.cbuf, int(ev.tkind), ev.fv)
		}
	case evDeliver:
		to := int(ev.node)
		if s.crashed[to] || s.procs[to] == nil {
			return
		}
		s.stats.Delivered++
		s.cbuf.id = to
		s.procs[to].Recv(&s.cbuf, ev.del)
	}
}

func (s *Sim) schedule(at float64, fn func()) {
	s.scheduleEvent(event{at: at, kind: evFunc, fn: fn})
}

func (s *Sim) scheduleEvent(ev event) {
	ev.seq = s.seq
	s.seq++
	s.queue.push(ev)
}

func (s *Sim) checkID(id int) {
	if id < 0 || id >= len(s.pos) {
		panic(fmt.Sprintf("netsim: node %d out of range [0, %d)", id, len(s.pos)))
	}
}

// transmit implements both broadcast and unicast, applying the
// unreliable-channel model per receiver. Unicast (only ≥ 0) delivers
// directly to the target after a single reachability check. Broadcast
// queries the spatial index for the nodes within the transmission range
// instead of scanning the whole placement; because the index returns
// candidates in ascending id order — the order the naive scan visits
// them — the per-receiver drop/dup/jitter PRNG draws happen in exactly
// the same sequence and seeded histories are byte-identical.
func (s *Sim) transmit(from int, txPower float64, payload interface{}, only int) {
	if s.crashed[from] {
		return
	}
	s.stats.Sent++
	s.energyTx[from] += txPower
	if s.grid == nil {
		// NaiveDelivery: the pre-index reference implementation, including
		// its linear unicast scan.
		for to := range s.pos {
			if to == from || s.crashed[to] || s.procs[to] == nil {
				continue
			}
			if only >= 0 && to != only {
				continue
			}
			s.maybeDeliver(from, to, txPower, payload)
		}
		return
	}
	if only >= 0 {
		if only != from && only < len(s.pos) && !s.crashed[only] && s.procs[only] != nil {
			s.maybeDeliver(from, only, txPower, payload)
		}
		return
	}
	// LinkReaches carries a 1e-12-scale relative power tolerance, so the
	// model's conservative RangeBound is widened by QuerySlack and the
	// exact per-link predicate re-applied in maybeDeliver — the candidate
	// set is a tight superset.
	reach := s.opts.Model.RangeBound(txPower) * (1 + spatial.QuerySlack)
	s.scratch = s.grid.AppendWithin(s.scratch[:0], s.pos[from], reach)
	for _, to := range s.scratch {
		if to == from || s.crashed[to] || s.procs[to] == nil {
			continue
		}
		s.maybeDeliver(from, to, txPower, payload)
	}
}

// maybeDeliver applies the physical and unreliable-channel model for one
// receiver: the exact reachability predicate, then the drop and
// duplication draws. The PRNG is only consulted for receivers that pass
// the reachability check, preserving the naive scan's draw sequence.
func (s *Sim) maybeDeliver(from, to int, txPower float64, payload interface{}) {
	d := s.pos[from].Dist(s.pos[to])
	if !s.opts.Model.LinkReaches(from, to, txPower, d) {
		return
	}
	if s.opts.DropProb > 0 && s.rng.Float64() < s.opts.DropProb {
		s.stats.Dropped++
		return
	}
	s.deliverOnce(from, to, txPower, d, payload)
	if s.opts.DupProb > 0 && s.rng.Float64() < s.opts.DupProb {
		s.stats.Duplicated++
		s.deliverOnce(from, to, txPower, d, payload)
	}
}

func (s *Sim) deliverOnce(from, to int, txPower, dist float64, payload interface{}) {
	delay := s.opts.Latency
	if s.opts.Jitter > 0 {
		delay += s.rng.Float64() * s.opts.Jitter
	}
	bearing := s.pos[to].Bearing(s.pos[from])
	if s.opts.AoANoise > 0 {
		bearing = geom.Normalize(bearing + s.rng.NormFloat64()*s.opts.AoANoise)
	}
	s.scheduleEvent(event{
		at:   s.now + delay,
		kind: evDeliver,
		node: int32(to),
		del: Delivery{
			From:    from,
			TxPower: txPower,
			RxPower: s.opts.Model.LinkRxPower(from, to, txPower, dist),
			Bearing: bearing,
			Payload: payload,
		},
	})
}
