// Package netsim is a deterministic discrete-event simulator for
// wireless multi-hop networks. It provides the communication primitives
// the paper assumes (§2): power-bounded broadcast, unicast send, and
// receive with measurable reception power and angle-of-arrival — plus the
// failure modes of §4: crash failures, message loss, duplication, and
// node mobility.
//
// Determinism: all scheduling is driven by a seeded PRNG and a total
// (time, sequence) order on events, so a simulation is a pure function of
// its inputs. Two runs with the same seed produce identical histories.
package netsim

import (
	"errors"
	"fmt"

	"cbtc/internal/radio"
)

// ErrBadOptions reports an invalid simulator configuration.
var ErrBadOptions = errors.New("netsim: invalid options")

// Options configures the simulator.
type Options struct {
	// Model is the propagation model; delivery succeeds iff the
	// transmission power establishes the sender→receiver link. Any
	// radio.Propagation works — the power-law radio.Model for the paper's
	// uniform world, radio.LogDistance for per-link shadowing.
	Model radio.Propagation
	// Latency is the fixed portion of the delivery delay.
	Latency float64
	// Jitter adds a uniform random delay in [0, Jitter) per delivery.
	Jitter float64
	// DropProb is the probability that a delivery is lost (per receiver).
	DropProb float64
	// DupProb is the probability that a delivery is duplicated.
	DupProb float64
	// AoANoise is the standard deviation (radians) of Gaussian noise on
	// measured bearings, modeling imperfect angle-of-arrival hardware.
	AoANoise float64
	// Seed drives all randomness.
	Seed uint64
	// NaiveDelivery disables the spatial index and computes broadcast
	// delivery sets by scanning every node, as the pre-index simulator
	// did. It exists as the reference path for the naive-vs-grid
	// equivalence tests and benchmarks; seeded runs produce byte-identical
	// histories in both modes.
	NaiveDelivery bool
}

// DefaultOptions returns a reliable low-latency configuration for the
// given radio model.
func DefaultOptions(m radio.Model) Options {
	return Options{Model: m, Latency: 1, Jitter: 0}
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.Model == nil {
		return fmt.Errorf("%w: nil propagation model", ErrBadOptions)
	}
	if err := o.Model.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadOptions, err)
	}
	if o.Latency <= 0 {
		return fmt.Errorf("%w: latency %v must be > 0", ErrBadOptions, o.Latency)
	}
	if o.Jitter < 0 {
		return fmt.Errorf("%w: jitter %v must be ≥ 0", ErrBadOptions, o.Jitter)
	}
	if o.DropProb < 0 || o.DropProb >= 1 {
		return fmt.Errorf("%w: drop probability %v must be in [0, 1)", ErrBadOptions, o.DropProb)
	}
	if o.DupProb < 0 || o.DupProb >= 1 {
		return fmt.Errorf("%w: duplication probability %v must be in [0, 1)", ErrBadOptions, o.DupProb)
	}
	if o.AoANoise < 0 {
		return fmt.Errorf("%w: AoA noise %v must be ≥ 0", ErrBadOptions, o.AoANoise)
	}
	return nil
}

// MaxDelay returns the worst-case one-way delivery delay.
func (o Options) MaxDelay() float64 { return o.Latency + o.Jitter }
