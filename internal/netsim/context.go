package netsim

import (
	"math/rand/v2"

	"cbtc/internal/radio"
)

// Context is the node-side API surface handed to Process callbacks.
// It implements the paper's communication primitives:
//
//	bcast(u, p, m)   -> Broadcast
//	send(u, p, m, v) -> Unicast
//	recv(u, m, v)    -> Process.Recv
//
// The simulator owns the Context and re-targets one buffer per event, so
// a Context is only valid during the callback it was passed to; processes
// must not retain it.
type Context struct {
	sim *Sim
	id  int
}

// ID returns this node's ID.
func (c *Context) ID() int { return c.id }

// Now returns the current simulation time.
func (c *Context) Now() float64 { return c.sim.now }

// Model returns the nominal power-law radio model: the power curve
// node-side protocol logic (power schedules, distance estimation) runs
// on. Per-link propagation effects live in the simulator's delivery
// decisions, which is exactly the information asymmetry of a real
// deployment — nodes know their hardware's nominal curve, not the
// channel realization.
func (c *Context) Model() radio.Model { return c.sim.opts.Model.Nominal() }

// Rand returns the simulation PRNG. Processes must draw randomness only
// from here to keep runs reproducible.
func (c *Context) Rand() *rand.Rand { return c.sim.rng }

// Broadcast transmits payload with the given power; every live node
// within the power's range receives it (modulo channel loss). This is
// the paper's bcast primitive.
func (c *Context) Broadcast(power float64, payload interface{}) {
	c.sim.transmit(c.id, power, payload, -1)
}

// Unicast transmits payload with the given power to a single node,
// which receives it iff the power reaches its distance. This is the
// paper's send primitive.
func (c *Context) Unicast(to int, power float64, payload interface{}) {
	c.sim.checkID(to)
	c.sim.transmit(c.id, power, payload, to)
}

// SetTimer schedules a Timer callback on this node after delay time
// units, carrying the value v back to the callback (protocols tag round
// timers with the power they were armed at). Timers on crashed nodes
// never fire. The timer is a plain value event: arming one performs no
// allocation, which is what keeps the per-round/per-node timer traffic
// of large protocol runs off the allocator.
func (c *Context) SetTimer(delay float64, kind int, v float64) {
	s := c.sim
	s.scheduleEvent(event{
		at:    s.now + delay,
		kind:  evTimer,
		node:  int32(c.id),
		tkind: int32(kind),
		fv:    v,
	})
}
