package netsim

import (
	"testing"

	"cbtc/internal/workload"
)

// chatter is a steady-state traffic generator: every timer tick it
// broadcasts a pre-boxed payload and re-arms itself, so the simulator
// processes an endless stream of timer and delivery events.
type chatter struct {
	payload interface{} // boxed once, shared by every broadcast
	power   float64
}

func (c *chatter) Init(ctx *Context) { ctx.SetTimer(1, 1, c.power) }
func (c *chatter) Recv(ctx *Context, d Delivery) {
	_ = d.Payload
}
func (c *chatter) Timer(ctx *Context, kind int, v float64) {
	ctx.Broadcast(v, c.payload)
	ctx.SetTimer(1, 1, v)
}

type ping struct{}

// The tentpole allocation contract: once the event heap has reached its
// steady-state footprint, the loop itself — pop, dispatch, timer re-arm,
// broadcast delivery fan-out — performs (near) zero allocations per
// event. Value-typed events replaced the per-event closure captures, the
// hand-rolled heap replaced container/heap's interface boxing, and the
// callback Context is a single reused buffer.
func TestSteadyStateEventLoopAllocations(t *testing.T) {
	pos := workload.Grid(workload.Rand(11), 64, 3, 900, 900)
	m := testModel()
	opts := DefaultOptions(m)
	opts.Seed = 42
	s, err := New(pos, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pos {
		s.SetProcess(i, &chatter{payload: ping{}, power: m.MaxPower() / 4})
	}
	// Warm up: grow the heap and the delivery scratch to steady state.
	s.Run(50)
	start := s.Stats().Events

	horizon := s.Now()
	allocs := testing.AllocsPerRun(5, func() {
		horizon += 20
		s.Run(horizon)
	})
	events := s.Stats().Events - start
	if events < 1000 {
		t.Fatalf("workload too quiet: only %d events processed", events)
	}
	perEvent := allocs * 6 / float64(events) // 6 = AllocsPerRun rounds incl. warmup
	if perEvent > 0.02 {
		t.Fatalf("steady-state event loop allocates: %.4f allocs/event over %d events", perEvent, events)
	}
}
