package netsim

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"cbtc/internal/geom"
	"cbtc/internal/radio"
	"cbtc/internal/workload"
)

// flooder exercises every delivery path: it broadcasts on Init, floods
// received messages with a TTL, and unicasts an ack back to the sender.
type flooder struct {
	model radio.Model
	log   *[]string
}

type floodMsg struct {
	ttl   int
	ack   bool
	token int
}

func (f *flooder) Init(ctx *Context) {
	f.record(ctx, "init", Delivery{})
	ctx.Broadcast(f.model.MaxPower()/4, floodMsg{ttl: 1, token: ctx.ID()})
	ctx.SetTimer(3, 1, 0)
}

func (f *flooder) Recv(ctx *Context, d Delivery) {
	f.record(ctx, "recv", d)
	m := d.Payload.(floodMsg)
	if m.ack {
		return
	}
	if m.ttl > 0 {
		ctx.Broadcast(f.model.MaxPower()/2, floodMsg{ttl: m.ttl - 1, token: m.token})
	}
	ctx.Unicast(d.From, f.model.MaxPower(), floodMsg{ack: true, token: m.token})
}

func (f *flooder) Timer(ctx *Context, kind int, v float64) {
	f.record(ctx, "timer", Delivery{})
	ctx.Broadcast(f.model.MaxPower(), floodMsg{token: -ctx.ID()})
}

func (f *flooder) record(ctx *Context, what string, d Delivery) {
	*f.log = append(*f.log, fmt.Sprintf("t=%.9f id=%d %s from=%d tx=%.9f rx=%.9g bearing=%.9f payload=%v",
		ctx.Now(), ctx.ID(), what, d.From, d.TxPower, d.RxPower, d.Bearing, d.Payload))
}

// runFlood runs the flooding workload over the placement with scripted
// crashes, moves and a mid-run join, and returns the full event log,
// stats, and per-node energies.
func runFlood(t *testing.T, pos []geom.Point, opts Options) ([]string, Stats, []float64) {
	t.Helper()
	sim, err := New(pos, opts)
	if err != nil {
		t.Fatal(err)
	}
	var log []string
	nominal := opts.Model.Nominal()
	for i := range pos {
		sim.SetProcess(i, &flooder{model: nominal, log: &log})
	}
	sim.ScheduleAt(2, func() { sim.Crash(1) })
	sim.ScheduleAt(4, func() { sim.MoveNode(0, geom.Pt(pos[0].X+nominal.MaxRadius/2, pos[0].Y)) })
	sim.ScheduleAt(5, func() {
		id := sim.AddNode(geom.Pt(pos[2].X+1, pos[2].Y+1))
		sim.SetProcess(id, &flooder{model: nominal, log: &log})
	})
	sim.Run(60)
	energies := make([]float64, sim.Len())
	for i := range energies {
		energies[i] = sim.Energy(i)
	}
	return log, sim.Stats(), energies
}

// TestGridMatchesNaiveDelivery is the netsim half of the naive-vs-grid
// equivalence guarantee: seeded runs over the spatial index produce
// byte-identical histories — every delivery, every PRNG draw, every
// counter — to the naive full-scan delivery path, across densities and
// under channel noise.
func TestGridMatchesNaiveDelivery(t *testing.T) {
	m := radio.Default(workload.PaperRadius)
	noisy := Options{
		Model:    m,
		Latency:  1,
		Jitter:   0.5,
		DropProb: 0.2,
		DupProb:  0.15,
		AoANoise: 0.05,
	}
	clean := DefaultOptions(m)
	for _, tc := range []struct {
		name string
		n    int
		w    float64
		opts Options
	}{
		{"sparse-clean", 20, 4000, clean},
		{"paper-density-clean", 30, 1500, clean},
		{"dense-noisy", 25, 600, noisy},
		{"paper-density-noisy", 30, 1500, noisy},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(0); seed < 2; seed++ {
				pos := workload.Uniform(rand.New(rand.NewPCG(seed, 99)), tc.n, tc.w, tc.w)
				naive := tc.opts
				naive.Seed = seed
				naive.NaiveDelivery = true
				grid := naive
				grid.NaiveDelivery = false

				nLog, nStats, nEnergy := runFlood(t, pos, naive)
				gLog, gStats, gEnergy := runFlood(t, pos, grid)

				if nStats != gStats {
					t.Fatalf("seed %d: stats diverge: naive %+v, grid %+v", seed, nStats, gStats)
				}
				if len(nLog) != len(gLog) {
					t.Fatalf("seed %d: log lengths diverge: naive %d, grid %d", seed, len(nLog), len(gLog))
				}
				for i := range nLog {
					if nLog[i] != gLog[i] {
						t.Fatalf("seed %d: log entry %d diverges:\nnaive: %s\ngrid:  %s", seed, i, nLog[i], gLog[i])
					}
				}
				for i := range nEnergy {
					if nEnergy[i] != gEnergy[i] {
						t.Fatalf("seed %d: node %d energy diverges: naive %v, grid %v", seed, i, nEnergy[i], gEnergy[i])
					}
				}
			}
		})
	}
}

// TestUnicastDirectDelivery verifies the unicast fast path: no scan, one
// reachability check, identical channel semantics.
func TestUnicastDirectDelivery(t *testing.T) {
	m := radio.Default(10)
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 0), geom.Pt(50, 0)}
	for _, naive := range []bool{false, true} {
		opts := DefaultOptions(m)
		opts.NaiveDelivery = naive
		sim, err := New(pos, opts)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]int, 3)
		for i := range pos {
			i := i
			sim.SetProcess(i, &recorder{onRecv: func(ctx *Context, d Delivery) { got[i]++ }})
		}
		sim.ScheduleAt(1, func() {
			c := &Context{sim: sim, id: 0}
			c.Unicast(1, m.MaxPower(), "hi")   // in range: delivered
			c.Unicast(2, m.MaxPower(), "far")  // out of range: dropped silently
			c.Unicast(0, m.MaxPower(), "self") // self: never delivered
		})
		sim.Run(10)
		if got[0] != 0 || got[1] != 1 || got[2] != 0 {
			t.Fatalf("naive=%v: deliveries = %v, want [0 1 0]", naive, got)
		}
		if s := sim.Stats(); s.Sent != 3 || s.Delivered != 1 {
			t.Fatalf("naive=%v: stats = %+v", naive, s)
		}
	}
}
