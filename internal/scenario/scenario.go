// Package scenario runs scripted dynamic experiments against the
// distributed protocol: a JSON description of a placement plus a
// timeline of crash/move/add events, with checkpoints that compare the
// live topology against the ground-truth maximum-power graph. It powers
// cmd/dynsim and makes §4 reconfiguration experiments reproducible from
// a data file.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"cbtc/internal/core"
	"cbtc/internal/geom"
	"cbtc/internal/graph"
	"cbtc/internal/netsim"
	"cbtc/internal/proto"
	"cbtc/internal/radio"
)

// ErrBadScenario reports an invalid scenario description.
var ErrBadScenario = errors.New("scenario: invalid scenario")

// Op is an event kind in the scenario timeline.
type Op string

// Supported event operations.
const (
	// OpCrash crash-fails a node permanently.
	OpCrash Op = "crash"
	// OpMove teleports a node to (X, Y).
	OpMove Op = "move"
	// OpAdd introduces a brand-new node at (X, Y).
	OpAdd Op = "add"
	// OpCheck records a checkpoint: live topology vs ground truth.
	OpCheck Op = "check"
)

// Event is one timeline entry.
type Event struct {
	// At is the simulation time of the event.
	At float64 `json:"at"`
	// Op selects the operation.
	Op Op `json:"op"`
	// Node is the target node for crash/move.
	Node int `json:"node,omitempty"`
	// X, Y are the coordinates for move/add.
	X float64 `json:"x,omitempty"`
	Y float64 `json:"y,omitempty"`
	// Label annotates checkpoints in the report.
	Label string `json:"label,omitempty"`
}

// Scenario is a complete dynamic experiment description.
type Scenario struct {
	// Alpha is the cone angle; 0 means 5π/6.
	Alpha float64 `json:"alpha,omitempty"`
	// MaxRadius is R. Required.
	MaxRadius float64 `json:"maxRadius"`
	// Nodes holds the initial placement as [x, y] pairs.
	Nodes [][2]float64 `json:"nodes"`
	// BeaconPeriod and LeaveTimeout configure the NDP (0 = defaults).
	BeaconPeriod float64 `json:"beaconPeriod,omitempty"`
	LeaveTimeout float64 `json:"leaveTimeout,omitempty"`
	// Settle is how long to run before the first event (growing phase
	// convergence); 0 means 100.
	Settle float64 `json:"settle,omitempty"`
	// RunUntil is the total simulation horizon; 0 means last event +
	// 300.
	RunUntil float64 `json:"runUntil,omitempty"`
	// Seed drives simulator randomness.
	Seed uint64 `json:"seed,omitempty"`
	// DropProb optionally makes the channel lossy.
	DropProb float64 `json:"dropProb,omitempty"`
	// Events is the timeline, in any order (sorted by At before running).
	Events []Event `json:"events"`
}

// Parse reads and validates a JSON scenario.
func Parse(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadScenario, err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks structural consistency, including node references
// against the evolving node count (adds grow it).
func (s *Scenario) Validate() error {
	if s.MaxRadius <= 0 {
		return fmt.Errorf("%w: maxRadius must be positive", ErrBadScenario)
	}
	if len(s.Nodes) == 0 {
		return fmt.Errorf("%w: need at least one node", ErrBadScenario)
	}
	count := len(s.Nodes)
	events := s.SortedEvents()
	for i, ev := range events {
		if ev.At < 0 {
			return fmt.Errorf("%w: event %d has negative time", ErrBadScenario, i)
		}
		switch ev.Op {
		case OpCrash:
			if ev.Node < 0 || ev.Node >= count {
				return fmt.Errorf("%w: event %d crashes unknown node %d", ErrBadScenario, i, ev.Node)
			}
		case OpMove:
			if ev.Node < 0 || ev.Node >= count {
				return fmt.Errorf("%w: event %d moves unknown node %d", ErrBadScenario, i, ev.Node)
			}
		case OpAdd:
			count++
		case OpCheck:
			// always fine
		default:
			return fmt.Errorf("%w: event %d has unknown op %q", ErrBadScenario, i, ev.Op)
		}
	}
	return nil
}

// SortedEvents returns the timeline ordered by event time (stable for
// equal times), leaving the scenario unmodified.
func (s *Scenario) SortedEvents() []Event {
	events := append([]Event(nil), s.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events
}

// Checkpoint is the observation recorded by a check event (and by the
// implicit final check).
type Checkpoint struct {
	// At is the checkpoint time.
	At float64
	// Label echoes the event label ("final" for the implicit check).
	Label string
	// Components is the live topology's component count.
	Components int
	// Edges is the live topology's edge count.
	Edges int
	// PartitionOK reports whether the live topology induces the same
	// component partition as the ground-truth G_R over current positions
	// (crashed nodes isolated).
	PartitionOK bool
}

// Report is the outcome of running a scenario.
type Report struct {
	Checkpoints []Checkpoint
	// Joins, Leaves, AngleChanges, Regrows aggregate the reconfiguration
	// events observed across all nodes.
	Joins, Leaves, AngleChanges, Regrows int
	// FinalOK is the PartitionOK of the implicit final checkpoint.
	FinalOK bool
}

// Run executes the scenario and returns its report.
func Run(s *Scenario) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	m := radio.Default(s.MaxRadius)
	pos := make([]geom.Point, len(s.Nodes))
	for i, xy := range s.Nodes {
		pos[i] = geom.Pt(xy[0], xy[1])
	}
	simOpts := netsim.DefaultOptions(m)
	simOpts.Seed = s.Seed
	simOpts.DropProb = s.DropProb

	cfg := proto.Config{
		Alpha:        s.Alpha,
		EnableNDP:    true,
		BeaconPeriod: s.BeaconPeriod,
		LeaveTimeout: s.LeaveTimeout,
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = core.AlphaConnectivity
	}
	rt, err := proto.Start(pos, simOpts, cfg)
	if err != nil {
		return nil, err
	}

	settle := s.Settle
	if settle == 0 {
		settle = 100
	}
	report := &Report{}
	events := s.SortedEvents()
	for _, ev := range events {
		ev := ev
		at := settle + ev.At
		switch ev.Op {
		case OpCrash:
			rt.Sim.ScheduleAt(at, func() { rt.Sim.Crash(ev.Node) })
		case OpMove:
			rt.Sim.ScheduleAt(at, func() { rt.Sim.MoveNode(ev.Node, geom.Pt(ev.X, ev.Y)) })
		case OpAdd:
			rt.Sim.ScheduleAt(at, func() { rt.AddNode(geom.Pt(ev.X, ev.Y)) })
		case OpCheck:
			rt.Sim.ScheduleAt(at, func() {
				report.Checkpoints = append(report.Checkpoints, observe(rt, at, ev.Label))
			})
		}
	}

	horizon := s.RunUntil
	if horizon == 0 {
		last := 0.0
		if len(events) > 0 {
			last = events[len(events)-1].At
		}
		horizon = settle + last + 300
	}
	rt.Sim.Run(horizon)

	final := observe(rt, horizon, "final")
	report.Checkpoints = append(report.Checkpoints, final)
	report.FinalOK = final.PartitionOK
	for _, n := range rt.Nodes {
		report.Joins += n.Joins
		report.Leaves += n.Leaves
		report.AngleChanges += n.AngleChanges
		report.Regrows += n.Regrows
	}
	return report, nil
}

func observe(rt *proto.Runtime, at float64, label string) Checkpoint {
	live := rt.TableGraph()
	return Checkpoint{
		At:          at,
		Label:       label,
		Components:  graph.ComponentCount(live),
		Edges:       live.EdgeCount(),
		PartitionOK: graph.SamePartition(groundTruth(rt), live),
	}
}

// groundTruth is G_R over live positions with crashed nodes isolated.
func groundTruth(rt *proto.Runtime) *graph.Graph {
	pos := make([]geom.Point, rt.Sim.Len())
	for i := range pos {
		pos[i] = rt.Sim.Position(i)
	}
	gr := core.MaxPowerGraph(pos, rt.Sim.Model())
	for u := 0; u < gr.Len(); u++ {
		if rt.Sim.Crashed(u) {
			gr.IsolateNode(u)
		}
	}
	return gr
}
