package scenario

import (
	"errors"
	"strings"
	"testing"
)

func validScenario() *Scenario {
	return &Scenario{
		MaxRadius: 500,
		Nodes: [][2]float64{
			{0, 0}, {300, 0}, {600, 0}, {900, 0},
		},
		Events: []Event{
			{At: 50, Op: OpCheck, Label: "steady"},
			{At: 100, Op: OpCrash, Node: 1},
			{At: 300, Op: OpCheck, Label: "after crash"},
			{At: 400, Op: OpAdd, X: 300, Y: 50},
			{At: 700, Op: OpCheck, Label: "after replacement"},
		},
	}
}

func TestParseValid(t *testing.T) {
	js := `{
		"maxRadius": 500,
		"nodes": [[0,0],[300,0]],
		"events": [
			{"at": 10, "op": "move", "node": 1, "x": 100, "y": 0},
			{"at": 20, "op": "check", "label": "closer"}
		]
	}`
	s, err := Parse(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Nodes) != 2 || len(s.Events) != 2 {
		t.Errorf("parsed shape wrong: %+v", s)
	}
}

func TestParseRejections(t *testing.T) {
	tests := []struct {
		name string
		js   string
	}{
		{"unknown field", `{"maxRadius":500,"nodes":[[0,0]],"bogus":1}`},
		{"missing radius", `{"nodes":[[0,0]]}`},
		{"no nodes", `{"maxRadius":500,"nodes":[]}`},
		{"unknown op", `{"maxRadius":500,"nodes":[[0,0]],"events":[{"at":1,"op":"explode"}]}`},
		{"bad node ref", `{"maxRadius":500,"nodes":[[0,0]],"events":[{"at":1,"op":"crash","node":5}]}`},
		{"negative time", `{"maxRadius":500,"nodes":[[0,0]],"events":[{"at":-1,"op":"check"}]}`},
		{"not json", `hello`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(tt.js)); !errors.Is(err, ErrBadScenario) {
				t.Errorf("err = %v, want ErrBadScenario", err)
			}
		})
	}
}

func TestAddGrowsNodeSpace(t *testing.T) {
	// A crash referencing a node that only exists after an add must
	// validate (adds are counted in timeline order).
	s := &Scenario{
		MaxRadius: 500,
		Nodes:     [][2]float64{{0, 0}},
		Events: []Event{
			{At: 10, Op: OpAdd, X: 100, Y: 0},
			{At: 20, Op: OpCrash, Node: 1},
		},
	}
	if err := s.Validate(); err != nil {
		t.Errorf("add-then-crash must validate: %v", err)
	}
	// But not when the crash comes first.
	s.Events[0], s.Events[1] = Event{At: 10, Op: OpCrash, Node: 1}, Event{At: 20, Op: OpAdd, X: 100, Y: 0}
	if err := s.Validate(); err == nil {
		t.Errorf("crash-before-add must be rejected")
	}
}

func TestRunChainCrashAndReplace(t *testing.T) {
	report, err := Run(validScenario())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Checkpoints) != 4 { // 3 explicit + final
		t.Fatalf("checkpoints = %d, want 4", len(report.Checkpoints))
	}
	steady := report.Checkpoints[0]
	if steady.Components != 1 || !steady.PartitionOK {
		t.Errorf("steady state must be one correct component: %+v", steady)
	}
	afterCrash := report.Checkpoints[1]
	if afterCrash.Components < 2 {
		t.Errorf("crashing the chain's second node must split it: %+v", afterCrash)
	}
	if !afterCrash.PartitionOK {
		t.Errorf("split topology must still match ground truth: %+v", afterCrash)
	}
	final := report.Checkpoints[3]
	if !report.FinalOK {
		t.Errorf("final topology mismatch: %+v", final)
	}
	// The replacement node restores a single live component (crashed
	// node stays isolated).
	if final.Components != 2 {
		t.Errorf("final components = %d, want 2 (network + crashed node)", final.Components)
	}
	if report.Leaves == 0 || report.Joins == 0 {
		t.Errorf("expected reconfiguration events, got %+v", report)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(validScenario())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(validScenario())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Checkpoints) != len(b.Checkpoints) {
		t.Fatalf("nondeterministic checkpoint counts")
	}
	for i := range a.Checkpoints {
		if a.Checkpoints[i] != b.Checkpoints[i] {
			t.Errorf("checkpoint %d differs: %+v vs %+v", i, a.Checkpoints[i], b.Checkpoints[i])
		}
	}
}

func TestRunLossyScenario(t *testing.T) {
	s := validScenario()
	s.DropProb = 0.1
	s.Seed = 7
	s.RunUntil = 1500
	report, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !report.FinalOK {
		t.Errorf("lossy scenario must still converge: %+v", report)
	}
}
