package scenario

import (
	"strings"
	"testing"
)

// FuzzParse hardens the scenario JSON parser: arbitrary input must
// either parse into a scenario that validates, or produce an error —
// never panic.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`{"maxRadius":500,"nodes":[[0,0],[300,0]]}`,
		`{"maxRadius":500,"nodes":[[0,0]],"events":[{"at":1,"op":"check"}]}`,
		`{"maxRadius":500,"nodes":[[0,0]],"events":[{"at":1,"op":"add","x":5,"y":5},{"at":2,"op":"crash","node":1}]}`,
		`{"maxRadius":-1,"nodes":[[0,0]]}`,
		`{}`,
		`[]`,
		`{"maxRadius":500,"nodes":[[0,0]],"events":[{"at":-5,"op":"check"}]}`,
		"not json at all",
		`{"maxRadius":1e308,"nodes":[[1e308,-1e308]]}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		s, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		// Whatever parsed must re-validate cleanly.
		if err := s.Validate(); err != nil {
			t.Errorf("Parse accepted a scenario Validate rejects: %v", err)
		}
	})
}
