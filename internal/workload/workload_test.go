package workload

import (
	"math"
	"testing"
	"testing/quick"

	"cbtc/internal/geom"
)

func TestUniformInBounds(t *testing.T) {
	rng := Rand(1)
	pos := Uniform(rng, 500, 1500, 900)
	if len(pos) != 500 {
		t.Fatalf("got %d nodes, want 500", len(pos))
	}
	for i, p := range pos {
		if p.X < 0 || p.X >= 1500 || p.Y < 0 || p.Y >= 900 {
			t.Errorf("node %d out of bounds: %v", i, p)
		}
	}
}

func TestUniformDeterministic(t *testing.T) {
	a := Uniform(Rand(42), 50, 100, 100)
	b := Uniform(Rand(42), 50, 100, 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different placements at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := Uniform(Rand(43), 50, 100, 100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Errorf("different seeds produced identical placements")
	}
}

func TestPaperNetwork(t *testing.T) {
	pos := PaperNetwork(7)
	if len(pos) != PaperNodes {
		t.Fatalf("got %d nodes, want %d", len(pos), PaperNodes)
	}
	for i, p := range pos {
		if p.X < 0 || p.X > PaperRegionW || p.Y < 0 || p.Y > PaperRegionH {
			t.Errorf("node %d out of region: %v", i, p)
		}
	}
}

func TestClusteredInBounds(t *testing.T) {
	pos := Clustered(Rand(3), 200, 5, 50, 1000, 1000)
	if len(pos) != 200 {
		t.Fatalf("got %d nodes, want 200", len(pos))
	}
	for i, p := range pos {
		if p.X < 0 || p.X > 1000 || p.Y < 0 || p.Y > 1000 {
			t.Errorf("node %d out of bounds: %v", i, p)
		}
	}
}

func TestGrid(t *testing.T) {
	pos := Grid(Rand(5), 16, 0, 100, 100)
	if len(pos) != 16 {
		t.Fatalf("got %d nodes, want 16", len(pos))
	}
	// Zero jitter: nodes on a 4x4 lattice with spacing 20.
	if !almostEq(pos[0].X, 20, 1e-9) || !almostEq(pos[0].Y, 20, 1e-9) {
		t.Errorf("first grid point = %v, want (20,20)", pos[0])
	}
	if !almostEq(pos[15].X, 80, 1e-9) || !almostEq(pos[15].Y, 80, 1e-9) {
		t.Errorf("last grid point = %v, want (80,80)", pos[15])
	}
}

func TestChainAndRing(t *testing.T) {
	chain := Chain(5, 10)
	if len(chain) != 5 || chain[4] != geom.Pt(40, 0) {
		t.Errorf("Chain = %v", chain)
	}
	ring := Ring(8, 100, 1000, 1000)
	center := geom.Pt(500, 500)
	for i, p := range ring {
		if !almostEq(center.Dist(p), 100, 1e-9) {
			t.Errorf("ring node %d at distance %v, want 100", i, center.Dist(p))
		}
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(10, 100, 100); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	if err := Validate(-1, 100, 100); err == nil {
		t.Errorf("negative n accepted")
	}
	if err := Validate(10, 0, 100); err == nil {
		t.Errorf("zero width accepted")
	}
}

func TestExample21Geometry(t *testing.T) {
	alpha := 2*math.Pi/3 + 0.2 // ε = 0.1
	r := 500.0
	pos, err := Example21(alpha, r)
	if err != nil {
		t.Fatal(err)
	}
	u0, u1, u2, u3, v := pos[0], pos[1], pos[2], pos[3], pos[4]

	if !almostEq(u0.Dist(v), r, 1e-9) {
		t.Errorf("d(u0,v) = %v, want exactly r", u0.Dist(v))
	}
	// u1, u2 are strictly inside range of u0 but out of range of v.
	for i, u := range []geom.Point{u1, u2} {
		if d := u0.Dist(u); d >= r {
			t.Errorf("d(u0,u%d) = %v, want < r", i+1, d)
		}
		if d := v.Dist(u); d <= r {
			t.Errorf("d(v,u%d) = %v, want > r", i+1, d)
		}
	}
	if d := u0.Dist(u3); !almostEq(d, r/2, 1e-9) {
		t.Errorf("d(u0,u3) = %v, want r/2", d)
	}
	if d := v.Dist(u3); d <= r {
		t.Errorf("d(v,u3) = %v, want > r", d)
	}
	// The construction pins ∠v u0 u1 = α/2 on both sides.
	if got := geom.AngularDist(u0.Bearing(v), u0.Bearing(u1)); !almostEq(got, alpha/2, 1e-9) {
		t.Errorf("∠v u0 u1 = %v, want α/2 = %v", got, alpha/2)
	}
	if got := geom.AngularDist(u0.Bearing(v), u0.Bearing(u2)); !almostEq(got, alpha/2, 1e-9) {
		t.Errorf("∠v u0 u2 = %v, want α/2 = %v", got, alpha/2)
	}
}

func TestExample21Rejections(t *testing.T) {
	if _, err := Example21(2*math.Pi/3, 500); err == nil {
		t.Errorf("α = 2π/3 must be rejected (needs ε > 0)")
	}
	if _, err := Example21(5*math.Pi/6+0.1, 500); err == nil {
		t.Errorf("α > 5π/6 must be rejected")
	}
	if _, err := Example21(2.5, -1); err == nil {
		t.Errorf("negative radius must be rejected")
	}
}

func TestFigure5Geometry(t *testing.T) {
	for _, eps := range []float64{0.01, 0.05, 0.1, 0.3, 0.5} {
		pos, err := Figure5(eps, 500)
		if err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		if len(pos) != 8 {
			t.Fatalf("eps=%v: got %d nodes, want 8", eps, len(pos))
		}
		// The construction self-validates; spot-check the symmetry: the
		// v-cluster is the point reflection of the u-cluster.
		mid := pos[0].Midpoint(pos[4])
		for i := 0; i < 4; i++ {
			want := pos[i].ReflectThrough(mid)
			if pos[4+i].Dist(want) > 1e-6 {
				t.Errorf("eps=%v: v%d = %v, want reflection %v", eps, i, pos[4+i], want)
			}
		}
	}
}

func TestFigure5Rejections(t *testing.T) {
	if _, err := Figure5(0, 500); err == nil {
		t.Errorf("eps = 0 must be rejected")
	}
	if _, err := Figure5(math.Pi/6, 500); err == nil {
		t.Errorf("eps = π/6 must be rejected")
	}
	if _, err := Figure5(0.1, 0); err == nil {
		t.Errorf("zero radius must be rejected")
	}
}

// For every valid α the Example 2.1 construction keeps its invariants.
func TestExample21InvariantProperty(t *testing.T) {
	f := func(frac float64) bool {
		if math.IsNaN(frac) {
			return true
		}
		eps := math.Mod(math.Abs(frac), 1)*(math.Pi/12-1e-3) + 1e-3
		alpha := 2*math.Pi/3 + 2*eps
		pos, err := Example21(alpha, 100)
		if err != nil {
			return false
		}
		u0, v := pos[0], pos[4]
		// u1, u2 always strictly between u0 and out of v's reach.
		return pos[1].Dist(u0) < 100 && pos[1].Dist(v) > 100 &&
			pos[2].Dist(u0) < 100 && pos[2].Dist(v) > 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionScenario(t *testing.T) {
	const r = 500.0
	s := NewPartitionScenario(r)
	if len(s.Pos) != 6 || s.Half != 3 {
		t.Fatalf("unexpected scenario shape: %+v", s)
	}
	// Initially every cross-cluster pair is far out of range.
	for i := 0; i < s.Half; i++ {
		for j := s.Half; j < len(s.Pos); j++ {
			if d := s.Pos[i].Dist(s.Pos[j]); d <= 2*r {
				t.Errorf("cross pair (%d,%d) at %v, want > 2r", i, j, d)
			}
		}
	}
	moved := s.Moved()
	// The shift preserves intra-cluster geometry exactly.
	for i := s.Half; i < len(moved); i++ {
		for j := i + 1; j < len(moved); j++ {
			if !almostEq(moved[i].Dist(moved[j]), s.Pos[i].Dist(s.Pos[j]), 1e-9) {
				t.Errorf("intra-G2 distance changed by the shift")
			}
		}
	}
	// After the move at least one cross pair is within range, and the
	// nearest pair sits at 0.8r.
	minCross := math.Inf(1)
	for i := 0; i < s.Half; i++ {
		for j := s.Half; j < len(moved); j++ {
			if d := moved[i].Dist(moved[j]); d < minCross {
				minCross = d
			}
		}
	}
	if !almostEq(minCross, 0.8*r, 1e-6) {
		t.Errorf("nearest cross pair after move = %v, want 0.8r = %v", minCross, 0.8*r)
	}
}

func TestRandomWaypointTrace(t *testing.T) {
	rng := Rand(11)
	start := Uniform(rng, 5, 1000, 1000)
	trace := RandomWaypointTrace(rng, start, 1000, 1000, 50, 1, 10)
	if len(trace) != 5*10 {
		t.Fatalf("got %d waypoints, want 50", len(trace))
	}
	lastT := 0.0
	lastPos := append([]geom.Point{}, start...)
	for _, wp := range trace {
		if wp.At < lastT {
			t.Fatalf("trace not time-sorted")
		}
		lastT = wp.At
		if wp.Pos.X < 0 || wp.Pos.X > 1000 || wp.Pos.Y < 0 || wp.Pos.Y > 1000 {
			t.Errorf("waypoint out of bounds: %+v", wp)
		}
		// Max displacement per step is speed*step = 50.
		if d := lastPos[wp.Node].Dist(wp.Pos); d > 50+1e-6 {
			t.Errorf("node %d jumped %v > speed*step", wp.Node, d)
		}
		lastPos[wp.Node] = wp.Pos
	}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLargeNFamily(t *testing.T) {
	scs := LargeN()
	if len(scs) != 2*len(LargeNSizes) {
		t.Fatalf("LargeN() returned %d scenarios, want %d", len(scs), 2*len(LargeNSizes))
	}
	seen := map[string]bool{}
	for _, sc := range scs {
		if seen[sc.Name] {
			t.Fatalf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		pos := sc.Placement(1)
		if len(pos) != sc.N {
			t.Fatalf("%s: placement has %d nodes, want %d", sc.Name, len(pos), sc.N)
		}
		for i, p := range pos {
			if p.X < 0 || p.X > sc.Side || p.Y < 0 || p.Y > sc.Side {
				t.Fatalf("%s: node %d at %v outside [0,%v]²", sc.Name, i, p, sc.Side)
			}
		}
		again := sc.Placement(1)
		for i := range pos {
			if pos[i] != again[i] {
				t.Fatalf("%s: placement not deterministic at node %d", sc.Name, i)
			}
		}
		// Constant density: expected in-range neighbor count stays near the
		// paper's ~35 regardless of n.
		density := float64(sc.N) / (sc.Side * sc.Side)
		expectNbrs := density * math.Pi * sc.Radius * sc.Radius
		if expectNbrs < 20 || expectNbrs > 50 {
			t.Fatalf("%s: expected neighbor count %.1f drifted from the paper's density", sc.Name, expectNbrs)
		}
	}
}

func TestFleetScenario(t *testing.T) {
	sc := Fleet(8, 120, "uniform")
	if sc.Name != "uniform-m8-n120" {
		t.Fatalf("scenario name = %q", sc.Name)
	}
	if sc.Moves < 1 || sc.Jitter <= 0 {
		t.Fatalf("degenerate tick profile: %+v", sc)
	}
	placements := sc.Placements(9)
	if len(placements) != sc.M {
		t.Fatalf("got %d placements, want %d", len(placements), sc.M)
	}
	for i, pos := range placements {
		if len(pos) != sc.N {
			t.Fatalf("network %d has %d nodes, want %d", i, len(pos), sc.N)
		}
		for _, p := range pos {
			if p.X < 0 || p.X > sc.Side || p.Y < 0 || p.Y > sc.Side {
				t.Fatalf("network %d: node at %v outside [0,%v]²", i, p, sc.Side)
			}
		}
	}
	// Networks are independent draws: same index ⇒ same placement even
	// when M changes; distinct indices ⇒ distinct placements.
	smaller := Fleet(3, 120, "uniform").Placements(9)
	for i := range smaller {
		for j := range smaller[i] {
			if smaller[i][j] != placements[i][j] {
				t.Fatalf("network %d depends on fleet size M", i)
			}
		}
	}
	if placements[0][0] == placements[1][0] && placements[0][1] == placements[1][1] {
		t.Fatal("networks 0 and 1 look identical; per-network seeds not decorrelated")
	}
	clustered := Fleet(2, 200, "clustered").Placements(3)
	if len(clustered) != 2 || len(clustered[0]) != 200 {
		t.Fatalf("clustered fleet placements malformed")
	}
}

func TestMixDecorrelates(t *testing.T) {
	seen := map[uint64]bool{}
	for seed := uint64(0); seed < 4; seed++ {
		for stream := uint64(0); stream < 64; stream++ {
			v := Mix(seed, stream)
			if seen[v] {
				t.Fatalf("Mix collision at seed=%d stream=%d", seed, stream)
			}
			seen[v] = true
		}
	}
	if Mix(1, 2) != Mix(1, 2) {
		t.Fatal("Mix not deterministic")
	}
}
