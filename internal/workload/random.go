// Package workload generates the node placements the reproduction runs
// on: the uniform random networks of the paper's evaluation (§5), a few
// structured layouts for testing, the exact adversarial constructions of
// Example 2.1 and Figure 5, the §4 partition scenario, and a
// random-waypoint mobility model.
package workload

import (
	"fmt"
	"math/rand/v2"

	"cbtc/internal/geom"
)

// PaperRegionW, PaperRegionH and PaperRadius are the parameters of the
// paper's evaluation: 100-node networks in a 1500×1500 region with
// maximum transmission radius 500.
const (
	PaperRegionW = 1500.0
	PaperRegionH = 1500.0
	PaperRadius  = 500.0
	PaperNodes   = 100
)

// Rand returns a deterministic PRNG for the given seed. Every generator
// in this package takes an explicit *rand.Rand so experiments are
// reproducible from a seed alone.
func Rand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
}

// Uniform places n nodes independently and uniformly at random in the
// w×h rectangle — the placement model of the paper's §5.
func Uniform(rng *rand.Rand, n int, w, h float64) []geom.Point {
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Pt(rng.Float64()*w, rng.Float64()*h)
	}
	return pos
}

// PaperNetwork returns one network drawn from the paper's evaluation
// distribution: PaperNodes uniform nodes in the paper's region.
func PaperNetwork(seed uint64) []geom.Point {
	return Uniform(Rand(seed), PaperNodes, PaperRegionW, PaperRegionH)
}

// Clustered places n nodes in k Gaussian clusters with the given spread,
// clamped to the w×h rectangle. Cluster centers are uniform.
func Clustered(rng *rand.Rand, n, k int, spread, w, h float64) []geom.Point {
	if k < 1 {
		k = 1
	}
	centers := Uniform(rng, k, w, h)
	pos := make([]geom.Point, n)
	for i := range pos {
		c := centers[i%k]
		p := geom.Pt(c.X+rng.NormFloat64()*spread, c.Y+rng.NormFloat64()*spread)
		pos[i] = clamp(p, w, h)
	}
	return pos
}

// Grid places nodes on a ⌈√n⌉×⌈√n⌉ lattice filling the w×h rectangle,
// with uniform jitter of ±jitter in each coordinate.
func Grid(rng *rand.Rand, n int, jitter, w, h float64) []geom.Point {
	side := 1
	for side*side < n {
		side++
	}
	pos := make([]geom.Point, 0, n)
	dx, dy := w/float64(side+1), h/float64(side+1)
	for row := 0; row < side && len(pos) < n; row++ {
		for col := 0; col < side && len(pos) < n; col++ {
			p := geom.Pt(
				dx*float64(col+1)+(rng.Float64()*2-1)*jitter,
				dy*float64(row+1)+(rng.Float64()*2-1)*jitter,
			)
			pos = append(pos, clamp(p, w, h))
		}
	}
	return pos
}

// Chain places n nodes on a horizontal line with the given spacing —
// a worst case for topology control (every node is a boundary node).
func Chain(n int, spacing float64) []geom.Point {
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Pt(float64(i)*spacing, 0)
	}
	return pos
}

// Ring places n nodes evenly on a circle of the given radius centered in
// the w×h rectangle.
func Ring(n int, radius, w, h float64) []geom.Point {
	center := geom.Pt(w/2, h/2)
	pos := make([]geom.Point, n)
	for i := range pos {
		theta := geom.TwoPi * float64(i) / float64(n)
		pos[i] = center.Polar(radius, theta)
	}
	return pos
}

func clamp(p geom.Point, w, h float64) geom.Point {
	if p.X < 0 {
		p.X = 0
	}
	if p.X > w {
		p.X = w
	}
	if p.Y < 0 {
		p.Y = 0
	}
	if p.Y > h {
		p.Y = h
	}
	return p
}

// Validate sanity-checks generator parameters shared by callers.
func Validate(n int, w, h float64) error {
	if n < 0 {
		return fmt.Errorf("workload: negative node count %d", n)
	}
	if w <= 0 || h <= 0 {
		return fmt.Errorf("workload: non-positive region %vx%v", w, h)
	}
	return nil
}
