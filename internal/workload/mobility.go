package workload

import (
	"math/rand/v2"

	"cbtc/internal/geom"
)

// Waypoint is one scheduled position change: node Node is at position
// Pos from time At onward.
type Waypoint struct {
	At   float64
	Node int
	Pos  geom.Point
}

// RandomWaypointTrace generates a random-waypoint mobility trace for n
// nodes in a w×h region: each node repeatedly picks a destination
// uniformly at random and moves toward it at the given speed; its
// position is sampled every step time units until horizon. The returned
// waypoints are sorted by time (stable within a step).
//
// The trace is a discretized position schedule rather than a continuous
// model: the discrete-event simulator applies each update atomically,
// which is exactly how a position-oblivious protocol perceives motion.
func RandomWaypointTrace(rng *rand.Rand, start []geom.Point, w, h, speed, step, horizon float64) []Waypoint {
	type walker struct {
		at   geom.Point
		dest geom.Point
	}
	walkers := make([]walker, len(start))
	for i, p := range start {
		walkers[i] = walker{at: p, dest: geom.Pt(rng.Float64()*w, rng.Float64()*h)}
	}
	var trace []Waypoint
	for t := step; t <= horizon; t += step {
		for i := range walkers {
			wk := &walkers[i]
			remaining := wk.at.Dist(wk.dest)
			travel := speed * step
			for travel >= remaining {
				// Arrive and immediately pick the next destination.
				wk.at = wk.dest
				travel -= remaining
				wk.dest = geom.Pt(rng.Float64()*w, rng.Float64()*h)
				remaining = wk.at.Dist(wk.dest)
				if remaining == 0 {
					break
				}
			}
			if remaining > 0 && travel > 0 {
				dir := wk.at.Bearing(wk.dest)
				wk.at = wk.at.Polar(travel, dir)
			}
			trace = append(trace, Waypoint{At: t, Node: i, Pos: wk.at})
		}
	}
	return trace
}
