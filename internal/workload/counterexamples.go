package workload

import (
	"fmt"
	"math"

	"cbtc/internal/geom"
)

// Example21 builds the five-node configuration of Example 2.1 (Figure 2
// of the paper), which shows that the neighbor relation N_α is not
// symmetric for 2π/3 < α ≤ 5π/6: v discovers u0, but u0 finishes its
// growing phase before reaching v.
//
// Node indices: u0=0, u1=1, u2=2, u3=3, v=4. The construction places
// u1, u2 so that ∠v u0 u1 = ∠v u0 u2 = α/2 and ∠u1 v u0 = ∠u2 v u0 =
// π/3−ε with ε = α/2 − π/3, exactly as in the paper.
func Example21(alpha, r float64) ([]geom.Point, error) {
	eps := alpha/2 - math.Pi/3
	if eps <= 0 || eps > math.Pi/12 {
		return nil, fmt.Errorf("workload: Example 2.1 requires 2π/3 < α ≤ 5π/6, got %v", alpha)
	}
	if r <= 0 {
		return nil, fmt.Errorf("workload: radius must be positive, got %v", r)
	}
	u0 := geom.Pt(0, 0)
	v := geom.Pt(r, 0)
	// Triangle u0-v-u1: angle π/3+ε at u0, π/3-ε at v, hence π/3 at u1.
	// Law of sines gives d(u0,u1) = r·sin(π/3-ε)/sin(π/3) < r.
	d01 := r * math.Sin(math.Pi/3-eps) / math.Sin(math.Pi/3)
	u1 := u0.Polar(d01, math.Pi/3+eps)
	u2 := u0.Polar(d01, -(math.Pi/3 + eps))
	u3 := geom.Pt(-r/2, 0)
	return []geom.Point{u0, u1, u2, u3, v}, nil
}

// Figure5 builds the eight-node two-cluster configuration of Figure 5
// (Theorem 2.4): for α = 5π/6 + eps the only G_R edge between the
// clusters, (u0, v0), disappears from G_α, disconnecting the network.
//
// Node indices: u0=0, u1=1, u2=2, u3=3, v0=4, v1=5, v2=6, v3=7. The
// v-cluster is the point reflection of the u-cluster through the midpoint
// of u0v0, which realizes the symmetric construction in the paper.
// eps must be in (0, π/6) so that α < π.
func Figure5(eps, r float64) ([]geom.Point, error) {
	if eps <= 0 || eps >= math.Pi/6 {
		return nil, fmt.Errorf("workload: Figure 5 requires eps in (0, π/6), got %v", eps)
	}
	if r <= 0 {
		return nil, fmt.Errorf("workload: radius must be positive, got %v", r)
	}
	alpha := 5*math.Pi/6 + eps

	u0 := geom.Pt(0, 0)
	v0 := geom.Pt(r, 0)
	mid := u0.Midpoint(v0)

	// u3 sits on the horizontal line through s' = (r/2, -√3r/2) — the
	// lower intersection of the two radius-r circles — slightly to its
	// left, so that its bearing from u0 is -(π/3+δ') with δ' < eps. Then
	// ∠u3u0u1 = 5π/6+δ' < α and d(u0,u3) < r < d(v0,u3).
	deltaPrime := math.Min(0.8*eps, math.Pi/24)
	delta := r * (0.5 - (math.Sqrt(3)/2)/math.Tan(math.Pi/3+deltaPrime))
	u3 := geom.Pt(r/2-delta, -math.Sqrt(3)*r/2)

	// u1 is perpendicular above u0v0; its distance must be small enough
	// that u1 stays out of range of v3 (which sits near s, at distance
	// exactly r from u0). h < δ/√3 suffices; h = δ/4 leaves margin.
	h := delta / 4
	u1 := geom.Pt(0, h)

	// u2 is at angle min(α, π) counterclockwise from u0u1, at distance
	// r/2 (the paper's "for definiteness" choice).
	u2 := u0.Polar(r/2, math.Pi/2+alpha)

	// The v-cluster is the point reflection of the u-cluster.
	v1 := u1.ReflectThrough(mid)
	v2 := u2.ReflectThrough(mid)
	v3 := u3.ReflectThrough(mid)

	pos := []geom.Point{u0, u1, u2, u3, v0, v1, v2, v3}
	if err := validateFigure5(pos, r); err != nil {
		return nil, err
	}
	return pos, nil
}

// validateFigure5 checks the distance properties the proof of
// Theorem 2.4 relies on: within each cluster every node is within r of
// its cluster head, and the ONLY pair at distance ≤ r across clusters is
// (u0, v0), at distance exactly r.
func validateFigure5(pos []geom.Point, r float64) error {
	const uCluster, vCluster = 4, 4
	// Intra-cluster: cluster heads reach their members.
	for i := 1; i < uCluster; i++ {
		if d := pos[0].Dist(pos[i]); d >= r {
			return fmt.Errorf("workload: Figure 5 invariant broken: d(u0,u%d) = %v ≥ r", i, d)
		}
		if d := pos[4].Dist(pos[4+i]); d >= r {
			return fmt.Errorf("workload: Figure 5 invariant broken: d(v0,v%d) = %v ≥ r", i, d)
		}
	}
	// Cross-cluster: only (u0, v0) is within range.
	for i := 0; i < uCluster; i++ {
		for j := 0; j < vCluster; j++ {
			d := pos[i].Dist(pos[4+j])
			if i == 0 && j == 0 {
				if math.Abs(d-r) > 1e-9*r {
					return fmt.Errorf("workload: d(u0,v0) = %v, want exactly r = %v", d, r)
				}
				continue
			}
			if d <= r {
				return fmt.Errorf("workload: Figure 5 invariant broken: d(u%d,v%d) = %v ≤ r", i, j, d)
			}
		}
	}
	return nil
}

// PartitionScenario is the §4 beacon-power counterexample: two clusters
// out of range of each other whose boundary nodes have shrunk back to a
// reduced power P' < P. When cluster G2 later drifts into range as a
// whole — so that no node observes any leave or angle-change event, and
// nothing triggers a regrow — nodes beaconing with P' never hear each
// other and the network stays partitioned, while beaconing with the
// basic algorithm's power P reconnects it.
type PartitionScenario struct {
	// Pos holds the initial positions; the first Half nodes form cluster
	// G1, the rest G2.
	Pos []geom.Point
	// Half is the size of the first cluster.
	Half int
	// Shift is the translation applied to every G2 node at move time.
	// Translating the whole cluster keeps intra-cluster distances and
	// bearings unchanged: no join/leave/aChange fires inside G2.
	Shift geom.Point
}

// NewPartitionScenario builds the scenario for a maximum radius r. Each
// cluster is a compact triangle with side r/4; the initial gap between
// clusters is almost 4r, and after the shift the nearest cross-cluster
// pair sits at 0.8r — within radio range.
func NewPartitionScenario(r float64) PartitionScenario {
	d := r / 4
	g1 := []geom.Point{
		geom.Pt(0, 0),
		geom.Pt(d, 0),
		geom.Pt(d/2, d),
	}
	offset := 4 * r
	g2 := []geom.Point{
		geom.Pt(offset, 0),
		geom.Pt(offset+d, 0),
		geom.Pt(offset+d/2, d),
	}
	pos := append(append([]geom.Point{}, g1...), g2...)
	// Target: G2's leftmost node ends up 0.8r to the right of G1's
	// rightmost node at (d, 0).
	target := d + 0.8*r
	return PartitionScenario{
		Pos:   pos,
		Half:  len(g1),
		Shift: geom.Pt(target-offset, 0),
	}
}

// Moved returns the positions after applying the shift to cluster G2.
func (s PartitionScenario) Moved() []geom.Point {
	out := append([]geom.Point{}, s.Pos...)
	for i := s.Half; i < len(out); i++ {
		out[i] = out[i].Add(s.Shift)
	}
	return out
}
