package workload

import (
	"fmt"
	"math"

	"cbtc/internal/geom"
)

// LargeNSizes are the node counts of the large-scale scenario family the
// spatial-index benchmarks run on.
var LargeNSizes = []int{1000, 5000, 10000}

// LargeNScenario is one large-scale placement with its generation
// parameters, for the n ≥ 1000 regime where the naive Θ(n²) paths stop
// being interactive. The region grows as √n so the expected number of
// in-range neighbors stays at the paper's density (~35 for R = 500),
// which is the regime where grid acceleration pays off — and the honest
// one: shrinking density with n would make large networks artificially
// easy.
type LargeNScenario struct {
	// Name identifies the scenario (e.g. "uniform-5000").
	Name string
	// N is the node count.
	N int
	// Kind is "uniform" or "clustered".
	Kind string
	// Side is the square region's side length.
	Side float64
	// Radius is the maximum transmission radius to run with.
	Radius float64
}

// LargeNSide returns the side of the square region that keeps n nodes at
// the paper's evaluation density (PaperNodes in PaperRegionW×PaperRegionH).
func LargeNSide(n int) float64 {
	return PaperRegionW * math.Sqrt(float64(n)/float64(PaperNodes))
}

// LargeN returns the large-n scenario family: uniform and clustered
// placements at every LargeNSizes count, all at constant density with
// the paper's radius. Generate the actual placement with
// LargeNScenario.Placement.
func LargeN() []LargeNScenario {
	out := make([]LargeNScenario, 0, 2*len(LargeNSizes))
	for _, kind := range []string{"uniform", "clustered"} {
		for _, n := range LargeNSizes {
			out = append(out, LargeNScenario{
				Name:   fmt.Sprintf("%s-%d", kind, n),
				N:      n,
				Kind:   kind,
				Side:   LargeNSide(n),
				Radius: PaperRadius,
			})
		}
	}
	return out
}

// Placement draws the scenario's node placement from the given seed.
// Uniform scenarios are i.i.d. uniform over the region; clustered
// scenarios put nodes in Gaussian clusters (one cluster per ~50 nodes,
// spread R/2), a hotspot pattern whose dense cores are the worst case
// for the naive delivery scan and the stress case for a grid — many
// nodes share few cells.
func (sc LargeNScenario) Placement(seed uint64) []geom.Point {
	rng := Rand(seed)
	switch sc.Kind {
	case "clustered":
		k := sc.N / 50
		if k < 1 {
			k = 1
		}
		return Clustered(rng, sc.N, k, sc.Radius/2, sc.Side, sc.Side)
	default:
		return Uniform(rng, sc.N, sc.Side, sc.Side)
	}
}
