package workload

import (
	"fmt"

	"cbtc/internal/geom"
)

// FleetScenario describes one many-networks workload: M independent
// networks of N nodes each, all drawn at the paper's evaluation density
// (the region scales as √N, like LargeNScenario), plus the parameters
// of the synchronized per-tick churn every network experiences. The
// fleet workload class trades network size for network count — the
// regime of a simulation service driving many deployments at once —
// so M is typically large while each network stays protocol-sized.
type FleetScenario struct {
	// Name identifies the scenario (e.g. "uniform-m16-n250").
	Name string
	// M is the number of independent networks.
	M int
	// N is the node count of each network.
	N int
	// Kind is "uniform" or "clustered", as in LargeNScenario.
	Kind string
	// Side is each network's square region side length.
	Side float64
	// Radius is the maximum transmission radius to run with.
	Radius float64

	// Moves is the number of live nodes each tick jitters.
	Moves int
	// Jitter is the per-coordinate uniform drift amplitude (±Jitter).
	Jitter float64
	// JoinProb and LeaveProb are each tick's probability of one node
	// joining at a uniform position / one random live node departing.
	// With equal probabilities the expected node count is stationary.
	JoinProb, LeaveProb float64
}

// Fleet returns the standard fleet scenario for m networks of n nodes:
// constant paper density, ~1/16 of the nodes drifting R/8 per tick, and
// balanced membership churn. kind is "uniform" or "clustered".
func Fleet(m, n int, kind string) FleetScenario {
	moves := n / 16
	if moves < 1 {
		moves = 1
	}
	return FleetScenario{
		Name:      fmt.Sprintf("%s-m%d-n%d", kind, m, n),
		M:         m,
		N:         n,
		Kind:      kind,
		Side:      LargeNSide(n),
		Radius:    PaperRadius,
		Moves:     moves,
		Jitter:    PaperRadius / 8,
		JoinProb:  0.25,
		LeaveProb: 0.25,
	}
}

// Placements draws the scenario's M initial placements. Each network's
// placement derives from its own decorrelated seed, so a fleet's
// networks are independent draws and network i's placement does not
// depend on M.
func (fs FleetScenario) Placements(seed uint64) [][]geom.Point {
	out := make([][]geom.Point, fs.M)
	for i := range out {
		rng := Rand(Mix(seed, uint64(i)))
		switch fs.Kind {
		case "clustered":
			k := fs.N / 50
			if k < 1 {
				k = 1
			}
			out[i] = Clustered(rng, fs.N, k, fs.Radius/2, fs.Side, fs.Side)
		default:
			out[i] = Uniform(rng, fs.N, fs.Side, fs.Side)
		}
	}
	return out
}

// MemberSize describes one heterogeneous fleet member's shape: its node
// count, its region side (paper density unless overridden) and its tick
// budget per fleet round.
type MemberSize struct {
	// N is the member's node count.
	N int
	// Side is the member's square region side length.
	Side float64
	// Ticks is the member's tick budget per fleet round.
	Ticks int
}

// StragglerMix returns the straggler-skewed heterogeneous fleet shape
// used by the async-vs-lockstep benchmark and the scheduler tests: fast
// light networks of fastN nodes ticking fastTicks times per round, plus
// one heavyweight straggler of slowN nodes ticking once. Under the
// work-stealing scheduler the fast members' 4× tick budgets cost only
// their own wall-clock; under a lockstep barrier every fast tick waits
// for a straggler tick. All members sit at paper density.
func StragglerMix(fast, fastN, fastTicks, slowN int) []MemberSize {
	out := make([]MemberSize, 0, fast+1)
	for i := 0; i < fast; i++ {
		out = append(out, MemberSize{N: fastN, Side: LargeNSide(fastN), Ticks: fastTicks})
	}
	return append(out, MemberSize{N: slowN, Side: LargeNSide(slowN), Ticks: 1})
}

// MemberPlacement draws member i's initial uniform placement for a
// heterogeneous fleet: the same decorrelated per-member stream scheme
// as FleetScenario.Placements, at the member's own size.
func MemberPlacement(seed uint64, i int, sz MemberSize) []geom.Point {
	return Uniform(Rand(Mix(seed, uint64(i))), sz.N, sz.Side, sz.Side)
}

// Mix derives a decorrelated per-stream seed from a base seed and a
// stream index, via a splitmix64 finalization round. Fleet members use
// it so every network owns an independent deterministic RNG stream.
func Mix(seed, stream uint64) uint64 {
	z := seed + (stream+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
