package geom

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestMaxGap(t *testing.T) {
	tests := []struct {
		name string
		dirs []float64
		want float64
	}{
		{"empty", nil, TwoPi},
		{"single", []float64{1.0}, TwoPi},
		{"opposite pair", []float64{0, math.Pi}, math.Pi},
		{"quarter points", []float64{0, math.Pi / 2, math.Pi, 3 * math.Pi / 2}, math.Pi / 2},
		{"clustered", []float64{0, 0.1, 0.2}, TwoPi - 0.2},
		{"unsorted", []float64{math.Pi, 0, math.Pi / 2, 3 * math.Pi / 2}, math.Pi / 2},
		{"unnormalized", []float64{-math.Pi / 2, math.Pi / 2}, math.Pi},
		{"duplicates", []float64{1, 1, 1}, TwoPi},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := MaxGap(tt.dirs); !almostEq(got, tt.want, 1e-9) {
				t.Errorf("MaxGap(%v) = %v, want %v", tt.dirs, got, tt.want)
			}
		})
	}
}

func TestHasGap(t *testing.T) {
	third := TwoPi / 3
	dirs := []float64{0, third, 2 * third} // gaps of exactly 2π/3
	if HasGap(dirs, third) {
		t.Errorf("gap of exactly α must not count as an α-gap")
	}
	if !HasGap(dirs, third-0.01) {
		t.Errorf("gap of 2π/3 must count against α = 2π/3 - 0.01")
	}
	if !HasGap(nil, math.Pi) {
		t.Errorf("empty set must always have a gap")
	}
}

// MaxGap must be invariant under rotation of all directions and under
// permutation (it sorts internally, so shuffling tests the same entry
// points the algorithm uses).
func TestMaxGapRotationInvariantProperty(t *testing.T) {
	f := func(seed uint64, rot float64, n uint8) bool {
		if math.IsNaN(rot) {
			return true
		}
		// Large rotations destroy float precision in dirs[i]+rot without
		// testing anything new; keep the offset physically meaningful.
		rot = math.Mod(rot, 1e3)
		rng := rand.New(rand.NewPCG(seed, 17))
		k := int(n%16) + 2
		dirs := make([]float64, k)
		rotated := make([]float64, k)
		for i := range dirs {
			dirs[i] = rng.Float64() * TwoPi
			rotated[i] = dirs[i] + rot
		}
		return almostEq(MaxGap(dirs), MaxGap(rotated), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The sum of all consecutive gaps is 2π, so the max gap is at least
// 2π/k for k directions.
func TestMaxGapLowerBoundProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 23))
		k := int(n%32) + 1
		dirs := make([]float64, k)
		for i := range dirs {
			dirs[i] = rng.Float64() * TwoPi
		}
		return MaxGap(dirs) >= TwoPi/float64(k)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Adding a direction can never increase the maximum gap.
func TestMaxGapMonotoneProperty(t *testing.T) {
	f := func(seed uint64, n uint8, extra float64) bool {
		if math.IsNaN(extra) || math.IsInf(extra, 0) {
			return true
		}
		rng := rand.New(rand.NewPCG(seed, 31))
		k := int(n%16) + 1
		dirs := make([]float64, k)
		for i := range dirs {
			dirs[i] = rng.Float64() * TwoPi
		}
		before := MaxGap(dirs)
		after := MaxGap(append(dirs, Normalize(extra)))
		return after <= before+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkMaxGap(b *testing.B) {
	rng := rand.New(rand.NewPCG(42, 1))
	dirs := make([]float64, 64)
	for i := range dirs {
		dirs[i] = rng.Float64() * TwoPi
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxGap(dirs)
	}
}

func TestInsertSortedMatchesMaxGap(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 9))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(40)
		dirs := make([]float64, n)
		var sorted []float64
		for i := range dirs {
			dirs[i] = rng.Float64()*3*TwoPi - TwoPi // unnormalized on purpose
			sorted = InsertSorted(sorted, dirs[i])
			if got, want := MaxGapSorted(sorted), MaxGap(dirs[:i+1]); got != want {
				t.Fatalf("trial %d size %d: MaxGapSorted = %v, MaxGap = %v", trial, i+1, got, want)
			}
		}
	}
	if MaxGapSorted(nil) != TwoPi || MaxGapSorted([]float64{1}) != TwoPi {
		t.Fatal("degenerate direction sets must report a full-circle gap")
	}
}
