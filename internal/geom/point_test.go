package geom

import (
	"math"
	"testing"
	"testing/quick"
)

const testTol = 1e-9

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func pointsAlmostEq(p, q Point, tol float64) bool {
	return almostEq(p.X, q.X, tol) && almostEq(p.Y, q.Y, tol)
}

func TestPointArithmetic(t *testing.T) {
	tests := []struct {
		name string
		got  Point
		want Point
	}{
		{"add", Pt(1, 2).Add(Pt(3, -1)), Pt(4, 1)},
		{"sub", Pt(1, 2).Sub(Pt(3, -1)), Pt(-2, 3)},
		{"scale", Pt(1, -2).Scale(3), Pt(3, -6)},
		{"midpoint", Pt(0, 0).Midpoint(Pt(4, 6)), Pt(2, 3)},
		{"reflect", Pt(1, 1).ReflectThrough(Pt(2, 3)), Pt(3, 5)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !pointsAlmostEq(tt.got, tt.want, testTol) {
				t.Errorf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestDotCross(t *testing.T) {
	p, q := Pt(2, 1), Pt(-1, 3)
	if got := p.Dot(q); !almostEq(got, 1, testTol) {
		t.Errorf("Dot = %v, want 1", got)
	}
	if got := p.Cross(q); !almostEq(got, 7, testTol) {
		t.Errorf("Cross = %v, want 7", got)
	}
}

func TestDist(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Pt(0, 0), Pt(3, 4), 5},
		{Pt(1, 1), Pt(1, 1), 0},
		{Pt(-1, -1), Pt(2, 3), 5},
	}
	for _, tt := range tests {
		if got := tt.p.Dist(tt.q); !almostEq(got, tt.want, testTol) {
			t.Errorf("Dist(%v,%v) = %v, want %v", tt.p, tt.q, got, tt.want)
		}
		if got := tt.p.Dist2(tt.q); !almostEq(got, tt.want*tt.want, testTol) {
			t.Errorf("Dist2(%v,%v) = %v, want %v", tt.p, tt.q, got, tt.want*tt.want)
		}
	}
}

func TestBearing(t *testing.T) {
	o := Pt(0, 0)
	tests := []struct {
		q    Point
		want float64
	}{
		{Pt(1, 0), 0},
		{Pt(0, 1), math.Pi / 2},
		{Pt(-1, 0), math.Pi},
		{Pt(0, -1), 3 * math.Pi / 2},
		{Pt(1, 1), math.Pi / 4},
	}
	for _, tt := range tests {
		if got := o.Bearing(tt.q); !almostEq(got, tt.want, testTol) {
			t.Errorf("Bearing(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if got := o.Bearing(o); got != 0 {
		t.Errorf("Bearing to self = %v, want 0", got)
	}
}

func TestPolarRoundTrip(t *testing.T) {
	f := func(x, y, r, theta float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(r) || math.IsNaN(theta) {
			return true
		}
		r = math.Mod(math.Abs(r), 1e6) + 1e-3
		// Huge angles make libm's argument reduction and our 2π reduction
		// disagree at the last ulp scale; bearings are physical angles.
		theta = math.Mod(theta, 1e3)
		p := Pt(math.Mod(x, 1e6), math.Mod(y, 1e6))
		q := p.Polar(r, theta)
		return almostEq(p.Dist(q), r, 1e-6*r+1e-9) &&
			AngularDist(p.Bearing(q), Normalize(theta)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRotateAroundPreservesDistance(t *testing.T) {
	f := func(px, py, cx, cy, theta float64) bool {
		p := Pt(math.Mod(px, 1e5), math.Mod(py, 1e5))
		c := Pt(math.Mod(cx, 1e5), math.Mod(cy, 1e5))
		q := p.RotateAround(c, theta)
		return almostEq(c.Dist(p), c.Dist(q), 1e-6*(1+c.Dist(p)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReflectThroughInvolution(t *testing.T) {
	f := func(px, py, cx, cy float64) bool {
		p := Pt(math.Mod(px, 1e6), math.Mod(py, 1e6))
		c := Pt(math.Mod(cx, 1e6), math.Mod(cy, 1e6))
		return pointsAlmostEq(p.ReflectThrough(c).ReflectThrough(c), p, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a := Pt(math.Mod(ax, 1e4), math.Mod(ay, 1e4))
		b := Pt(math.Mod(bx, 1e4), math.Mod(by, 1e4))
		c := Pt(math.Mod(cx, 1e4), math.Mod(cy, 1e4))
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
