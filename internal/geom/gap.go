package geom

import "sort"

// MaxGap returns the largest counterclockwise angular gap between
// consecutive directions in dirs, considering the circular wrap-around.
//
// By convention an empty direction set has a gap of 2π (everything is
// uncovered) and a single direction also has a gap of 2π (the full sweep
// returns to itself). Directions need not be sorted or normalized.
func MaxGap(dirs []float64) float64 {
	switch len(dirs) {
	case 0:
		return TwoPi
	case 1:
		return TwoPi
	}
	sorted := make([]float64, len(dirs))
	for i, d := range dirs {
		sorted[i] = Normalize(d)
	}
	sort.Float64s(sorted)

	maxGap := TwoPi - sorted[len(sorted)-1] + sorted[0] // wrap-around gap
	for i := 1; i < len(sorted); i++ {
		if g := sorted[i] - sorted[i-1]; g > maxGap {
			maxGap = g
		}
	}
	return maxGap
}

// HasGap reports whether the direction set leaves some cone of degree
// alpha empty: it is the paper's gap-α test. A gap of exactly alpha does
// NOT count (strict inequality, with Eps tolerance), matching the
// constructions in §2 of the paper where adjacent neighbors subtend an
// angle of exactly α.
func HasGap(dirs []float64, alpha float64) bool {
	return MaxGap(dirs) > alpha+Eps
}

// InsertSorted inserts Normalize(dir) into the ascending slice sorted,
// returning the extended slice. It is the incremental form of MaxGap's
// normalize-then-sort preamble: growing a direction set one insertion at
// a time costs O(k) instead of re-sorting O(k log k) per query, which is
// what the oracle's growing phase does after every admitted distance
// group.
func InsertSorted(sorted []float64, dir float64) []float64 {
	d := Normalize(dir)
	i := sort.SearchFloat64s(sorted, d)
	sorted = append(sorted, 0)
	copy(sorted[i+1:], sorted[i:])
	sorted[i] = d
	return sorted
}

// MaxGapSorted is MaxGap over a slice already normalized and ascending
// (as maintained by InsertSorted). It performs exactly the arithmetic of
// MaxGap's final pass, so the two agree bit-for-bit on the same set.
func MaxGapSorted(sorted []float64) float64 {
	if len(sorted) < 2 {
		return TwoPi
	}
	maxGap := TwoPi - sorted[len(sorted)-1] + sorted[0] // wrap-around gap
	for i := 1; i < len(sorted); i++ {
		if g := sorted[i] - sorted[i-1]; g > maxGap {
			maxGap = g
		}
	}
	return maxGap
}

// HasGapSorted is HasGap over an InsertSorted-maintained direction set.
func HasGapSorted(sorted []float64, alpha float64) bool {
	return MaxGapSorted(sorted) > alpha+Eps
}
