package geom

import (
	"math"
	"testing"
)

// FuzzNormalize: the canonical range holds for every finite input.
func FuzzNormalize(f *testing.F) {
	for _, seed := range []float64{0, math.Pi, -math.Pi, TwoPi, -1e9, 1e9, 1e300, math.SmallestNonzeroFloat64} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, theta float64) {
		if math.IsNaN(theta) || math.IsInf(theta, 0) {
			return
		}
		n := Normalize(theta)
		if n < 0 || n >= TwoPi {
			t.Errorf("Normalize(%v) = %v out of [0, 2π)", theta, n)
		}
	})
}

// FuzzGapCoverageDuality: the gap test and arc coverage must agree for
// any direction multiset and cone angle.
func FuzzGapCoverageDuality(f *testing.F) {
	f.Add(0.5, 1.0, 2.0, 3.0, math.Pi/2)
	f.Add(0.0, 0.0, 0.0, 0.0, 2.0)
	f.Add(1.0, 2.5, 4.0, 5.5, 5*math.Pi/6)
	f.Fuzz(func(t *testing.T, d1, d2, d3, d4, alphaRaw float64) {
		for _, v := range []float64{d1, d2, d3, d4, alphaRaw} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return
			}
		}
		alpha := math.Mod(math.Abs(alphaRaw), TwoPi-0.02) + 0.01
		dirs := []float64{Normalize(d1), Normalize(d2), Normalize(d3), Normalize(d4)}
		full := Coverage(dirs, alpha).IsFull()
		gap := HasGap(dirs, alpha)
		if full == gap {
			t.Errorf("duality violated: alpha=%v dirs=%v full=%v gap=%v", alpha, dirs, full, gap)
		}
	})
}
