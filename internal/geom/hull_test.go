package geom

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestConvexHullSquare(t *testing.T) {
	pts := []Point{
		Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10), // corners
		Pt(5, 5), Pt(3, 7), // interior
		Pt(5, 0), // collinear on an edge: excluded
	}
	hull := ConvexHull(pts)
	want := map[int]bool{0: true, 1: true, 2: true, 3: true}
	if len(hull) != 4 {
		t.Fatalf("hull = %v, want the 4 corners", hull)
	}
	for _, id := range hull {
		if !want[id] {
			t.Errorf("unexpected hull vertex %d", id)
		}
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if got := ConvexHull(nil); got != nil {
		t.Errorf("empty hull = %v", got)
	}
	if got := ConvexHull([]Point{Pt(1, 1)}); len(got) != 1 {
		t.Errorf("single-point hull = %v", got)
	}
	if got := ConvexHull([]Point{Pt(1, 1), Pt(2, 2)}); len(got) != 2 {
		t.Errorf("two-point hull = %v", got)
	}
	// Coincident points collapse.
	if got := ConvexHull([]Point{Pt(1, 1), Pt(1, 1), Pt(1, 1)}); len(got) != 1 {
		t.Errorf("coincident hull = %v", got)
	}
	// Collinear points: the two extremes.
	got := ConvexHull([]Point{Pt(0, 0), Pt(1, 0), Pt(2, 0), Pt(3, 0)})
	if len(got) != 2 {
		t.Errorf("collinear hull = %v, want the 2 extremes", got)
	}
}

// Every input point lies inside or on the hull polygon, and the hull is
// convex (all turns counterclockwise).
func TestConvexHullInvariantsProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 61))
		n := int(nRaw%40) + 3
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*1000, rng.Float64()*1000)
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			return true // degenerate random input is vanishingly unlikely
		}
		// Convexity: consecutive triples turn left.
		for i := range hull {
			o, a, b := hull[i], hull[(i+1)%len(hull)], hull[(i+2)%len(hull)]
			if pts[a].Sub(pts[o]).Cross(pts[b].Sub(pts[o])) <= 0 {
				return false
			}
		}
		// Containment: every point is on the inner side of every edge.
		for p := range pts {
			for i := range hull {
				o, a := hull[i], hull[(i+1)%len(hull)]
				if pts[a].Sub(pts[o]).Cross(pts[p].Sub(pts[o])) < -1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
