package geom

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestCoverageBasics(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		s := Coverage(nil, math.Pi)
		if !s.IsEmpty() || s.IsFull() {
			t.Errorf("coverage of no directions must be empty, got %v", s)
		}
	})
	t.Run("full circle alpha", func(t *testing.T) {
		s := Coverage([]float64{1}, TwoPi)
		if !s.IsFull() {
			t.Errorf("alpha = 2π must cover everything, got %v", s)
		}
	})
	t.Run("single direction", func(t *testing.T) {
		s := Coverage([]float64{0}, math.Pi/2)
		if s.IsFull() || s.IsEmpty() {
			t.Fatalf("unexpected degenerate set: %v", s)
		}
		if !almostEq(s.TotalLength(), math.Pi/2, 1e-9) {
			t.Errorf("TotalLength = %v, want π/2", s.TotalLength())
		}
		for _, theta := range []float64{0, math.Pi / 4.01, TwoPi - math.Pi/4.01} {
			if !s.Contains(theta) {
				t.Errorf("expected %v covered", theta)
			}
		}
		for _, theta := range []float64{math.Pi / 2, math.Pi, 3 * math.Pi / 2} {
			if s.Contains(theta) {
				t.Errorf("expected %v uncovered", theta)
			}
		}
	})
	t.Run("overlap merges", func(t *testing.T) {
		s := Coverage([]float64{0, 0.1}, math.Pi/2)
		if got := s.TotalLength(); !almostEq(got, math.Pi/2+0.1, 1e-9) {
			t.Errorf("TotalLength = %v, want %v", got, math.Pi/2+0.1)
		}
	})
	t.Run("wraparound contains zero", func(t *testing.T) {
		s := Coverage([]float64{TwoPi - 0.05}, 0.4)
		if !s.Contains(0) || !s.Contains(0.1) || !s.Contains(TwoPi-0.2) {
			t.Errorf("wrap-around arc must cover the 0 bearing: %v", s)
		}
		if s.Contains(math.Pi) {
			t.Errorf("opposite bearing must be uncovered: %v", s)
		}
	})
}

func TestCoverageEqual(t *testing.T) {
	alpha := math.Pi / 3
	a := Coverage([]float64{0, 1, 2}, alpha)
	b := Coverage([]float64{2, 0, 1}, alpha)
	if !a.Equal(b, 1e-9) {
		t.Errorf("permutation must not change coverage: %v vs %v", a, b)
	}
	c := Coverage([]float64{0, 1}, alpha)
	if a.Equal(c, 1e-9) {
		t.Errorf("dropping a contributing direction must change coverage")
	}
	// A direction whose arc is inside another's does not change coverage.
	d := Coverage([]float64{0, 0.01}, alpha)
	e := Coverage([]float64{0}, alpha)
	if d.Equal(e, 1e-9) {
		t.Errorf("0.01 offset widens the union; sets must differ")
	}
	f := Coverage([]float64{0, 0}, alpha)
	if !f.Equal(e, 1e-9) {
		t.Errorf("duplicate directions must not change coverage")
	}
}

func TestCoverageWrapCanonical(t *testing.T) {
	// Same geometric set built from arcs that do and do not cross zero.
	alpha := 1.0
	a := Coverage([]float64{0}, alpha)
	b := Coverage([]float64{TwoPi}, alpha)
	if !a.Equal(b, 1e-9) {
		t.Errorf("0 and 2π are the same direction: %v vs %v", a, b)
	}
}

// Duality between the gap test and coverage: the circle is fully covered
// iff there is no α-gap. This is exactly the invariant the CBTC growing
// phase relies on.
func TestGapCoverageDualityProperty(t *testing.T) {
	f := func(seed uint64, n uint8, alphaFrac float64) bool {
		if math.IsNaN(alphaFrac) || math.IsInf(alphaFrac, 0) {
			return true
		}
		alpha := math.Mod(math.Abs(alphaFrac), 1)*TwoPi*0.99 + 0.01
		rng := rand.New(rand.NewPCG(seed, 7))
		k := int(n % 24)
		dirs := make([]float64, k)
		for i := range dirs {
			dirs[i] = rng.Float64() * TwoPi
		}
		full := Coverage(dirs, alpha).IsFull()
		gap := HasGap(dirs, alpha)
		return full == !gap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Coverage is monotone: adding directions can only grow the covered set.
func TestCoverageMonotoneProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 11))
		alpha := rng.Float64()*math.Pi + 0.1
		k := int(n%12) + 1
		dirs := make([]float64, k)
		for i := range dirs {
			dirs[i] = rng.Float64() * TwoPi
		}
		sub := Coverage(dirs[:k-1], alpha)
		all := Coverage(dirs, alpha)
		// Every probe covered by the subset must be covered by the superset.
		for probe := 0.0; probe < TwoPi; probe += 0.05 {
			if sub.Contains(probe) && !all.Contains(probe) {
				return false
			}
		}
		return all.TotalLength() >= sub.TotalLength()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSameCoverage(t *testing.T) {
	alpha := math.Pi / 2
	base := []float64{0, math.Pi / 2, math.Pi, 3 * math.Pi / 2}
	if !SameCoverage(base, base, alpha) {
		t.Errorf("identical sets must have same coverage")
	}
	// base covers the whole circle (gaps are exactly α = π/2); the set
	// plus an extra direction still covers the whole circle.
	withExtra := append(append([]float64{}, base...), 1.0)
	if !SameCoverage(base, withExtra, alpha) {
		t.Errorf("full circle plus extra direction is still the full circle")
	}
	if SameCoverage(base[:2], base, alpha) {
		t.Errorf("strict subset with less coverage must differ")
	}
}

func BenchmarkCoverage(b *testing.B) {
	rng := rand.New(rand.NewPCG(42, 2))
	dirs := make([]float64, 32)
	for i := range dirs {
		dirs[i] = rng.Float64() * TwoPi
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Coverage(dirs, math.Pi/3)
	}
}
