package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	tests := []struct {
		in, want float64
	}{
		{0, 0},
		{math.Pi, math.Pi},
		{TwoPi, 0},
		{-math.Pi / 2, 3 * math.Pi / 2},
		{5 * math.Pi, math.Pi},
		{-TwoPi, 0},
		{7.5 * TwoPi, math.Pi},
	}
	for _, tt := range tests {
		if got := Normalize(tt.in); !almostEq(got, tt.want, 1e-9) {
			t.Errorf("Normalize(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestNormalizeRangeProperty(t *testing.T) {
	f := func(theta float64) bool {
		if math.IsNaN(theta) || math.IsInf(theta, 0) {
			return true
		}
		n := Normalize(theta)
		return n >= 0 && n < TwoPi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeIdempotentProperty(t *testing.T) {
	f := func(theta float64) bool {
		if math.IsNaN(theta) || math.IsInf(theta, 0) {
			return true
		}
		n := Normalize(theta)
		return Normalize(n) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCCWDelta(t *testing.T) {
	tests := []struct {
		a, b, want float64
	}{
		{0, math.Pi / 2, math.Pi / 2},
		{math.Pi / 2, 0, 3 * math.Pi / 2},
		{3, 3, 0},
		{TwoPi - 0.1, 0.1, 0.2},
	}
	for _, tt := range tests {
		if got := CCWDelta(tt.a, tt.b); !almostEq(got, tt.want, 1e-9) {
			t.Errorf("CCWDelta(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestAngularDist(t *testing.T) {
	tests := []struct {
		a, b, want float64
	}{
		{0, math.Pi, math.Pi},
		{0, math.Pi / 4, math.Pi / 4},
		{math.Pi / 4, 0, math.Pi / 4},
		{0.1, TwoPi - 0.1, 0.2},
		{1, 1, 0},
	}
	for _, tt := range tests {
		if got := AngularDist(tt.a, tt.b); !almostEq(got, tt.want, 1e-9) {
			t.Errorf("AngularDist(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestAngularDistSymmetricProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		// Bound magnitudes so that b-a cannot overflow and the 2π
		// reduction stays meaningful.
		a, b = math.Mod(a, 1e6), math.Mod(b, 1e6)
		d1, d2 := AngularDist(a, b), AngularDist(b, a)
		return almostEq(d1, d2, 1e-9) && d1 >= 0 && d1 <= math.Pi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDegreesRadiansRoundTrip(t *testing.T) {
	f := func(deg float64) bool {
		if math.IsNaN(deg) || math.Abs(deg) > 1e12 {
			return true
		}
		return almostEq(Degrees(Radians(deg)), deg, 1e-6*(1+math.Abs(deg)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
