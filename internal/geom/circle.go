package geom

import "math"

// Circle is the circ(u, r) of the paper's proofs: the circle centered
// at Center with radius Radius.
type Circle struct {
	Center Point
	Radius float64
}

// Contains reports whether p lies inside or on the circle (within Eps
// of the boundary).
func (c Circle) Contains(p Point) bool {
	return c.Center.Dist(p) <= c.Radius*(1+Eps)+Eps
}

// StrictlyInside reports whether p lies strictly inside the circle.
func (c Circle) StrictlyInside(p Point) bool {
	return c.Center.Dist(p) < c.Radius*(1-Eps)
}

// Intersect returns the intersection points of two circles. The second
// return value is the count: 0 (disjoint or concentric), 1 (tangent),
// or 2. With two intersections, the first returned point is the one on
// the left of the directed line from c's center to o's center.
//
// The Figure 5 construction uses it to locate s and s′, the
// intersections of the two radius-R circles around the cluster heads.
func (c Circle) Intersect(o Circle) ([2]Point, int) {
	var out [2]Point
	d := c.Center.Dist(o.Center)
	if d == 0 {
		return out, 0 // concentric (coincident circles: infinite, report 0)
	}
	if d > c.Radius+o.Radius+Eps || d < math.Abs(c.Radius-o.Radius)-Eps {
		return out, 0
	}
	// Distance from c's center to the chord's midpoint along the center
	// line, clamped for tangency noise.
	a := (d*d + c.Radius*c.Radius - o.Radius*o.Radius) / (2 * d)
	h2 := c.Radius*c.Radius - a*a
	if h2 < 0 {
		h2 = 0
	}
	h := math.Sqrt(h2)
	dir := o.Center.Sub(c.Center).Scale(1 / d)
	mid := c.Center.Add(dir.Scale(a))
	if h <= Eps*(1+c.Radius) {
		out[0] = mid
		return out, 1
	}
	normal := Point{X: -dir.Y, Y: dir.X} // left of the center line
	out[0] = mid.Add(normal.Scale(h))
	out[1] = mid.Sub(normal.Scale(h))
	return out, 2
}
