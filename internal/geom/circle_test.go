package geom

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestCircleContains(t *testing.T) {
	c := Circle{Center: Pt(0, 0), Radius: 10}
	tests := []struct {
		p              Point
		contains       bool
		strictlyInside bool
	}{
		{Pt(0, 0), true, true},
		{Pt(5, 5), true, true},
		{Pt(10, 0), true, false}, // on the boundary
		{Pt(11, 0), false, false},
	}
	for _, tt := range tests {
		if got := c.Contains(tt.p); got != tt.contains {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.contains)
		}
		if got := c.StrictlyInside(tt.p); got != tt.strictlyInside {
			t.Errorf("StrictlyInside(%v) = %v, want %v", tt.p, got, tt.strictlyInside)
		}
	}
}

func TestCircleIntersectCases(t *testing.T) {
	a := Circle{Center: Pt(0, 0), Radius: 5}
	tests := []struct {
		name string
		b    Circle
		want int
	}{
		{"two points", Circle{Pt(6, 0), 5}, 2},
		{"external tangent", Circle{Pt(10, 0), 5}, 1},
		{"internal tangent", Circle{Pt(2, 0), 3}, 1},
		{"disjoint", Circle{Pt(20, 0), 5}, 0},
		{"contained", Circle{Pt(0.5, 0), 1}, 0},
		{"concentric", Circle{Pt(0, 0), 3}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pts, n := a.Intersect(tt.b)
			if n != tt.want {
				t.Fatalf("intersections = %d, want %d", n, tt.want)
			}
			for i := 0; i < n; i++ {
				if da := a.Center.Dist(pts[i]); math.Abs(da-a.Radius) > 1e-9 {
					t.Errorf("point %d not on circle a: dist %v", i, da)
				}
				if db := tt.b.Center.Dist(pts[i]); math.Abs(db-tt.b.Radius) > 1e-9 {
					t.Errorf("point %d not on circle b: dist %v", i, db)
				}
			}
		})
	}
}

// The Figure 5 anchor points: two radius-R circles whose centers are R
// apart intersect at s = (R/2, ±√3R/2) relative to the center line.
func TestCircleIntersectFigure5Anchors(t *testing.T) {
	const r = 500.0
	u0 := Circle{Pt(0, 0), r}
	v0 := Circle{Pt(r, 0), r}
	pts, n := u0.Intersect(v0)
	if n != 2 {
		t.Fatalf("intersections = %d, want 2", n)
	}
	wantS := Pt(r/2, math.Sqrt(3)*r/2)
	wantSPrime := Pt(r/2, -math.Sqrt(3)*r/2)
	if pts[0].Dist(wantS) > 1e-6 {
		t.Errorf("s = %v, want %v (left of u0->v0)", pts[0], wantS)
	}
	if pts[1].Dist(wantSPrime) > 1e-6 {
		t.Errorf("s' = %v, want %v", pts[1], wantSPrime)
	}
}

// Intersection points always lie on both circles; the count matches the
// center-distance classification.
func TestCircleIntersectProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 71))
		a := Circle{Pt(rng.Float64()*100, rng.Float64()*100), rng.Float64()*50 + 1}
		b := Circle{Pt(rng.Float64()*100, rng.Float64()*100), rng.Float64()*50 + 1}
		pts, n := a.Intersect(b)
		d := a.Center.Dist(b.Center)
		switch {
		case d > a.Radius+b.Radius+1e-9:
			if n != 0 {
				return false
			}
		case d < math.Abs(a.Radius-b.Radius)-1e-9:
			if n != 0 {
				return false
			}
		}
		for i := 0; i < n; i++ {
			if math.Abs(a.Center.Dist(pts[i])-a.Radius) > 1e-6 ||
				math.Abs(b.Center.Dist(pts[i])-b.Radius) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
