package geom

import "sort"

// ConvexHull returns the indices of the points on the convex hull of
// pts, in counterclockwise order starting from the lexicographically
// smallest point. Collinear points on hull edges are excluded (the hull
// is strictly convex). Degenerate inputs (fewer than 3 distinct points,
// or all collinear) return the extreme points.
//
// The reproduction uses it as an independent oracle for boundary nodes:
// a hull vertex has an empty outward half-plane, so its maximum angular
// gap is at least π and CBTC(α) with α < π must classify it as a
// boundary node regardless of the radio range.
func ConvexHull(pts []Point) []int {
	n := len(pts)
	if n == 0 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := pts[idx[a]], pts[idx[b]]
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		return pa.Y < pb.Y
	})
	// Deduplicate coincident points to keep the chain well-defined.
	uniq := idx[:0]
	for i, id := range idx {
		if i == 0 || pts[id] != pts[uniq[len(uniq)-1]] {
			uniq = append(uniq, id)
		}
	}
	idx = uniq
	if len(idx) == 1 {
		return []int{idx[0]}
	}
	if len(idx) == 2 {
		return []int{idx[0], idx[1]}
	}

	cross := func(o, a, b int) float64 {
		return pts[a].Sub(pts[o]).Cross(pts[b].Sub(pts[o]))
	}
	// Lower hull then upper hull (Andrew's monotone chain).
	var hull []int
	for _, id := range idx {
		for len(hull) >= 2 && cross(hull[len(hull)-2], hull[len(hull)-1], id) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, id)
	}
	lower := len(hull) + 1
	for i := len(idx) - 2; i >= 0; i-- {
		id := idx[i]
		for len(hull) >= lower && cross(hull[len(hull)-2], hull[len(hull)-1], id) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, id)
	}
	if len(hull) > 1 {
		hull = hull[:len(hull)-1] // last point repeats the first
	}
	return hull
}
