// Package geom provides the planar geometry substrate used by the
// cone-based topology control algorithm: points and vectors, angle
// arithmetic on the unit circle, angular-gap detection, cone membership
// tests, and circular-arc coverage sets.
//
// All angles are in radians. Directions (bearings) are normalized to
// [0, 2π). The package is purely computational and allocation-light; it
// has no dependencies outside the standard library.
package geom

import (
	"fmt"
	"math"
)

// Point is a location (or free vector) in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{k * p.X, k * p.Y} }

// Dot returns the dot product p · q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Norm2 returns the squared Euclidean length of p viewed as a vector.
func (p Point) Norm2() float64 { return p.X*p.X + p.Y*p.Y }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q.
// It avoids the square root and is the preferred comparison key.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Midpoint returns the midpoint of segment pq.
func (p Point) Midpoint(q Point) Point {
	return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2}
}

// Bearing returns the direction from p to q, normalized to [0, 2π).
// The bearing of a point to itself is 0 by convention.
func (p Point) Bearing(q Point) float64 {
	if p == q {
		return 0
	}
	return Normalize(math.Atan2(q.Y-p.Y, q.X-p.X))
}

// Polar returns the point at distance r from p in direction theta.
func (p Point) Polar(r, theta float64) Point {
	return Point{p.X + r*math.Cos(theta), p.Y + r*math.Sin(theta)}
}

// RotateAround returns p rotated by theta radians around center c.
func (p Point) RotateAround(c Point, theta float64) Point {
	s, co := math.Sin(theta), math.Cos(theta)
	v := p.Sub(c)
	return Point{c.X + v.X*co - v.Y*s, c.Y + v.X*s + v.Y*co}
}

// ReflectThrough returns the point reflection of p through center c,
// i.e. the point q with c as the midpoint of pq.
func (p Point) ReflectThrough(c Point) Point {
	return Point{2*c.X - p.X, 2*c.Y - p.Y}
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.6g, %.6g)", p.X, p.Y) }
