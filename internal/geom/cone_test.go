package geom

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestInCone(t *testing.T) {
	apex := Pt(0, 0)
	towards := Pt(1, 0)
	alpha := math.Pi / 2 // half-angle π/4

	tests := []struct {
		name string
		p    Point
		want bool
	}{
		{"on axis", Pt(2, 0), true},
		{"inside upper", Pt(1, 0.9), true},   // ~42° < 45°
		{"inside lower", Pt(1, -0.9), true},  // ~-42°
		{"boundary", Pt(1, 1), true},         // exactly 45°
		{"outside upper", Pt(1, 1.1), false}, // ~47.7°
		{"behind", Pt(-1, 0), false},
		{"perpendicular", Pt(0, 1), false},
		{"apex itself", Pt(0, 0), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := InCone(apex, alpha, towards, tt.p); got != tt.want {
				t.Errorf("InCone(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestInConeDegenerate(t *testing.T) {
	apex := Pt(1, 1)
	if InCone(apex, math.Pi, apex, Pt(2, 2)) {
		t.Errorf("cone with axis through its own apex is undefined; must be false")
	}
}

// A point is in cone(u, α, v) iff the angular distance between the
// bearings agrees with the direct computation; also, widening the cone
// never excludes points.
func TestInConeWideningProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		apex := Pt(rng.Float64()*100, rng.Float64()*100)
		towards := apex.Polar(1+rng.Float64()*10, rng.Float64()*TwoPi)
		p := apex.Polar(1+rng.Float64()*10, rng.Float64()*TwoPi)
		alpha := rng.Float64() * math.Pi
		if InCone(apex, alpha, towards, p) && !InCone(apex, alpha+0.3, towards, p) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Full-circle cones contain every point except the apex.
func TestInConeFullCircleProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		apex := Pt(rng.Float64()*100, rng.Float64()*100)
		towards := apex.Polar(1, rng.Float64()*TwoPi)
		p := apex.Polar(0.1+rng.Float64()*10, rng.Float64()*TwoPi)
		return InCone(apex, TwoPi, towards, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInConeDirMatchesInCone(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 9))
		apex := Pt(rng.Float64()*100, rng.Float64()*100)
		axis := rng.Float64() * TwoPi
		towards := apex.Polar(5, axis)
		p := apex.Polar(0.5+rng.Float64()*10, rng.Float64()*TwoPi)
		alpha := 0.1 + rng.Float64()*(math.Pi-0.2)
		return InCone(apex, alpha, towards, p) == InConeDir(apex, alpha, axis, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
