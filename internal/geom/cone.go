package geom

// InCone reports whether point p lies inside cone(apex, alpha, towards):
// the cone of degree alpha with its apex at apex, bisected by the ray
// from apex through towards (Figure 3 of the paper). Boundary points
// count as inside (within Eps).
//
// The apex itself and the degenerate case towards == apex return false.
func InCone(apex Point, alpha float64, towards, p Point) bool {
	if p == apex || towards == apex {
		return false
	}
	axis := apex.Bearing(towards)
	dir := apex.Bearing(p)
	return AngularDist(axis, dir) <= alpha/2+Eps
}

// InConeDir is InCone with the cone axis given directly as a bearing.
func InConeDir(apex Point, alpha, axis float64, p Point) bool {
	if p == apex {
		return false
	}
	dir := apex.Bearing(p)
	return AngularDist(axis, dir) <= alpha/2+Eps
}
