package geom

import (
	"fmt"
	"sort"
	"strings"
)

// arc is a closed interval [start, end] on the circle with
// 0 ≤ start ≤ end ≤ 2π. Arcs that cross the 0 bearing are stored split
// into two pieces, so a canonical ArcSet is a sorted list of disjoint,
// maximal arcs (except for the possible split at 0).
type arc struct {
	start, end float64
}

func (a arc) length() float64 { return a.end - a.start }

// ArcSet is a union of arcs on the unit circle. It represents
// cover_α(dir) from §3.1 of the paper: the set of bearings within α/2 of
// some direction in dir. The zero value is the empty set.
type ArcSet struct {
	full bool
	arcs []arc
}

// Coverage computes cover_α(dirs): the union over d ∈ dirs of the arc
// [d-α/2, d+α/2]. A non-positive alpha with no directions yields the
// empty set; alpha ≥ 2π or a direction set with no α-gap yields the full
// circle.
func Coverage(dirs []float64, alpha float64) ArcSet {
	if len(dirs) == 0 {
		return ArcSet{}
	}
	if alpha >= TwoPi {
		return ArcSet{full: true}
	}
	// Duality with the gap test: the circle is fully covered exactly when
	// no counterclockwise gap between consecutive directions exceeds α.
	if !HasGap(dirs, alpha) {
		return ArcSet{full: true}
	}

	half := alpha / 2
	raw := make([]arc, 0, len(dirs)+1)
	for _, d := range dirs {
		start := Normalize(d - half)
		end := start + alpha
		if end > TwoPi {
			raw = append(raw, arc{start, TwoPi}, arc{0, end - TwoPi})
		} else {
			raw = append(raw, arc{start, end})
		}
	}
	sort.Slice(raw, func(i, j int) bool { return raw[i].start < raw[j].start })

	merged := raw[:1]
	for _, a := range raw[1:] {
		last := &merged[len(merged)-1]
		if a.start <= last.end+Eps {
			if a.end > last.end {
				last.end = a.end
			}
		} else {
			merged = append(merged, a)
		}
	}
	return ArcSet{arcs: merged}
}

// IsFull reports whether the set covers the entire circle.
func (s ArcSet) IsFull() bool { return s.full }

// IsEmpty reports whether the set covers nothing.
func (s ArcSet) IsEmpty() bool { return !s.full && len(s.arcs) == 0 }

// TotalLength returns the total angular measure covered, in [0, 2π].
func (s ArcSet) TotalLength() float64 {
	if s.full {
		return TwoPi
	}
	var sum float64
	for _, a := range s.arcs {
		sum += a.length()
	}
	return sum
}

// Contains reports whether bearing theta is covered (within Eps).
func (s ArcSet) Contains(theta float64) bool {
	if s.full {
		return true
	}
	t := Normalize(theta)
	for _, a := range s.arcs {
		if t >= a.start-Eps && t <= a.end+Eps {
			return true
		}
	}
	return false
}

// Equal reports whether two arc sets cover the same bearings, up to the
// angular tolerance tol applied to each arc endpoint.
func (s ArcSet) Equal(o ArcSet, tol float64) bool {
	if s.full || o.full {
		return s.full == o.full
	}
	a, b := s.canonical(), o.canonical()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if absf(a[i].start-b[i].start) > tol || absf(a[i].end-b[i].end) > tol {
			return false
		}
	}
	return true
}

// canonical merges the wrap-around split so that structurally different
// but geometrically identical sets compare equal. A set that covers the
// 0 bearing is rotated so that its arc crossing 0 is expressed as a
// single arc starting at a negative angle.
func (s ArcSet) canonical() []arc {
	if len(s.arcs) < 2 {
		return s.arcs
	}
	first, last := s.arcs[0], s.arcs[len(s.arcs)-1]
	if first.start <= Eps && last.end >= TwoPi-Eps {
		merged := make([]arc, 0, len(s.arcs)-1)
		merged = append(merged, arc{last.start - TwoPi, first.end})
		merged = append(merged, s.arcs[1:len(s.arcs)-1]...)
		sort.Slice(merged, func(i, j int) bool { return merged[i].start < merged[j].start })
		return merged
	}
	return s.arcs
}

// String implements fmt.Stringer; bearings are printed in degrees.
func (s ArcSet) String() string {
	if s.full {
		return "{full circle}"
	}
	if len(s.arcs) == 0 {
		return "{}"
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, a := range s.arcs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "[%.2f°, %.2f°]", Degrees(a.start), Degrees(a.end))
	}
	b.WriteByte('}')
	return b.String()
}

// SameCoverage reports whether two direction sets yield identical
// α-coverage. It is the test the shrink-back optimization performs when
// deciding whether dropping high-power discoveries is safe.
func SameCoverage(dirsA, dirsB []float64, alpha float64) bool {
	return Coverage(dirsA, alpha).Equal(Coverage(dirsB, alpha), 10*Eps)
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
