package geom

import "math"

// TwoPi is the full circle in radians.
const TwoPi = 2 * math.Pi

// Eps is the default angular tolerance used throughout the package.
// The connectivity theorems compare gaps against α with strict
// inequalities; Eps absorbs floating-point noise so that constructions
// with gaps exactly equal to α (Example 2.1 of the paper) behave as the
// analysis prescribes.
const Eps = 1e-9

// Normalize maps an angle to the canonical range [0, 2π).
func Normalize(theta float64) float64 {
	theta = math.Mod(theta, TwoPi)
	if theta < 0 {
		theta += TwoPi
	}
	// Mod can return 2π for inputs like -1e-20 after the correction above.
	if theta >= TwoPi {
		theta -= TwoPi
	}
	return theta
}

// CCWDelta returns the counterclockwise angular distance from angle a to
// angle b, in [0, 2π).
func CCWDelta(a, b float64) float64 {
	return Normalize(b - a)
}

// AngularDist returns the absolute angular distance between a and b,
// i.e. the length of the shorter arc, in [0, π].
func AngularDist(a, b float64) float64 {
	d := CCWDelta(a, b)
	if d > math.Pi {
		d = TwoPi - d
	}
	return d
}

// Degrees converts radians to degrees. Intended for human-readable output.
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Radians converts degrees to radians.
func Radians(deg float64) float64 { return deg * math.Pi / 180 }
