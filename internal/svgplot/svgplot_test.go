package svgplot

import (
	"strconv"
	"strings"
	"testing"

	"cbtc/internal/geom"
	"cbtc/internal/graph"
)

func sampleTopology() (*graph.Graph, []geom.Point) {
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(100, 0), geom.Pt(50, 80)}
	g := graph.New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	return g, pos
}

func TestRenderWellFormed(t *testing.T) {
	g, pos := sampleTopology()
	svg := Render(g, pos, Style{Title: "test <graph>"})

	if !strings.HasPrefix(svg, `<svg xmlns="http://www.w3.org/2000/svg"`) {
		t.Errorf("missing svg root: %q", svg[:60])
	}
	if !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Errorf("unterminated svg document")
	}
	if got := strings.Count(svg, "<line "); got != 2 {
		t.Errorf("lines = %d, want 2 (one per edge)", got)
	}
	if got := strings.Count(svg, "<circle "); got != 3 {
		t.Errorf("circles = %d, want 3 (one per node)", got)
	}
	if strings.Contains(svg, "<graph>") {
		t.Errorf("title not escaped")
	}
	if !strings.Contains(svg, "&lt;graph&gt;") {
		t.Errorf("escaped title missing")
	}
}

func TestRenderLabels(t *testing.T) {
	g, pos := sampleTopology()
	svg := Render(g, pos, Style{Labels: true})
	if got := strings.Count(svg, "<text "); got != 3 {
		t.Errorf("labels = %d, want 3", got)
	}
	plain := Render(g, pos, Style{})
	if strings.Contains(plain, "<text ") {
		t.Errorf("labels drawn without Labels option")
	}
}

func TestRenderCoordinatesInCanvas(t *testing.T) {
	g, pos := sampleTopology()
	svg := Render(g, pos, Style{Width: 300, Height: 200, Margin: 10})
	// All coordinates must stay inside the canvas. Parse crudely.
	for _, line := range strings.Split(svg, "\n") {
		if !strings.HasPrefix(line, "<circle") {
			continue
		}
		cx, cy := circleCenter(t, line)
		if cx < 0 || cx > 300 || cy < 0 || cy > 200 {
			t.Errorf("node outside canvas: %q", line)
		}
	}
}

// circleCenter extracts cx and cy from a rendered circle element.
func circleCenter(t *testing.T, line string) (float64, float64) {
	t.Helper()
	attr := func(name string) float64 {
		key := name + `="`
		i := strings.Index(line, key)
		if i < 0 {
			t.Fatalf("attribute %q missing in %q", name, line)
		}
		rest := line[i+len(key):]
		j := strings.IndexByte(rest, '"')
		v, err := strconv.ParseFloat(rest[:j], 64)
		if err != nil {
			t.Fatalf("bad %s in %q: %v", name, line, err)
		}
		return v
	}
	return attr("cx"), attr("cy")
}

func TestRenderEmptyAndDegenerate(t *testing.T) {
	empty := Render(graph.New(0), nil, Style{})
	if !strings.Contains(empty, "</svg>") {
		t.Errorf("empty render must still be a document")
	}
	// All nodes at one point: no panic, no NaN coordinates.
	pos := []geom.Point{geom.Pt(5, 5), geom.Pt(5, 5)}
	g := graph.New(2)
	g.AddEdge(0, 1)
	svg := Render(g, pos, Style{})
	if strings.Contains(svg, "NaN") {
		t.Errorf("degenerate layout produced NaN coordinates")
	}
}
