// Package svgplot renders network topologies as standalone SVG
// documents, reproducing the visual panels of the paper's Figure 6 with
// only the standard library.
package svgplot

import (
	"fmt"
	"sort"
	"strings"

	"cbtc/internal/geom"
	"cbtc/internal/graph"
)

// Style configures the rendering.
type Style struct {
	// Width and Height are the SVG canvas size in pixels; zero means 600.
	Width, Height int
	// Margin is the canvas padding in pixels; zero means 20.
	Margin int
	// NodeRadius is the node dot radius in pixels; zero means 3.
	NodeRadius float64
	// EdgeColor and NodeColor are CSS colors; empty means #888 / #d33.
	EdgeColor, NodeColor string
	// Labels draws node indices next to the dots, as Figure 6 does.
	Labels bool
	// Title is drawn at the top of the canvas when non-empty.
	Title string
}

func (s Style) withDefaults() Style {
	if s.Width == 0 {
		s.Width = 600
	}
	if s.Height == 0 {
		s.Height = 600
	}
	if s.Margin == 0 {
		s.Margin = 20
	}
	if s.NodeRadius == 0 {
		s.NodeRadius = 3
	}
	if s.EdgeColor == "" {
		s.EdgeColor = "#888888"
	}
	if s.NodeColor == "" {
		s.NodeColor = "#d33030"
	}
	return s
}

// Render draws the graph over the placement and returns an SVG document.
// Coordinates are fitted to the canvas preserving the aspect ratio, with
// the Y axis flipped so the plot matches the usual mathematical
// orientation.
func Render(g *graph.Graph, pos []geom.Point, style Style) string {
	st := style.withDefaults()
	minX, minY, maxX, maxY := bounds(pos)
	spanX, spanY := maxX-minX, maxY-minY
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	innerW := float64(st.Width - 2*st.Margin)
	innerH := float64(st.Height - 2*st.Margin)
	scale := innerW / spanX
	if s := innerH / spanY; s < scale {
		scale = s
	}
	tx := func(p geom.Point) (float64, float64) {
		x := float64(st.Margin) + (p.X-minX)*scale
		y := float64(st.Height) - float64(st.Margin) - (p.Y-minY)*scale
		return x, y
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		st.Width, st.Height, st.Width, st.Height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if st.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="13">%s</text>`+"\n",
			st.Margin, 14, escape(st.Title))
	}

	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	for _, e := range edges {
		x1, y1 := tx(pos[e.U])
		x2, y2 := tx(pos[e.V])
		fmt.Fprintf(&b, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="1"/>`+"\n",
			x1, y1, x2, y2, st.EdgeColor)
	}
	for i, p := range pos {
		x, y := tx(p)
		fmt.Fprintf(&b, `<circle cx="%.2f" cy="%.2f" r="%.1f" fill="%s"/>`+"\n",
			x, y, st.NodeRadius, st.NodeColor)
		if st.Labels {
			fmt.Fprintf(&b, `<text x="%.2f" y="%.2f" font-family="sans-serif" font-size="8" fill="#333">%d</text>`+"\n",
				x+st.NodeRadius+1, y-st.NodeRadius-1, i)
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func bounds(pos []geom.Point) (minX, minY, maxX, maxY float64) {
	if len(pos) == 0 {
		return 0, 0, 1, 1
	}
	minX, minY = pos[0].X, pos[0].Y
	maxX, maxY = pos[0].X, pos[0].Y
	for _, p := range pos[1:] {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	return minX, minY, maxX, maxY
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
