package cbtc

import (
	"errors"
	"math"
	"testing"
)

func TestRunBaselineKinds(t *testing.T) {
	nodes := someNetwork(20, 80)
	for _, kind := range BaselineKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			res, err := RunBaseline(kind, nodes, paperConfig())
			if err != nil {
				t.Fatal(err)
			}
			if !res.PreservesConnectivity() {
				t.Errorf("%v must preserve the G_R partition", kind)
			}
			if !res.G.IsSubgraphOf(res.GR) {
				t.Errorf("%v must be a subgraph of G_R", kind)
			}
			if res.AvgDegree <= 0 || res.AvgRadius <= 0 {
				t.Errorf("%v produced empty metrics", kind)
			}
			for u, rad := range res.Radii {
				if math.Abs(res.Powers[u]-res.PowerCost(rad)) > 1e-6 {
					t.Errorf("%v node %d: power/radius inconsistent", kind, u)
				}
			}
		})
	}
}

func TestRunBaselineUnknownKind(t *testing.T) {
	if _, err := RunBaseline(BaselineKind(99), someNetwork(1, 5), paperConfig()); !errors.Is(err, ErrBadConfig) {
		t.Errorf("err = %v, want ErrBadConfig", err)
	}
	if got := BaselineKind(99).String(); got != "BaselineKind(99)" {
		t.Errorf("String = %q", got)
	}
}

// The comparison the paper's related-work discussion implies: CBTC with
// all optimizations achieves degree and radius in the same class as the
// position-based constructions, without any position information.
func TestCBTCCompetitiveWithBaselines(t *testing.T) {
	nodes := someNetwork(21, 100)
	cbtcRes, err := Run(nodes, paperConfig().AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	rng, err := RunBaseline(BaselineRNG, nodes, paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Within a factor 2 of RNG on both metrics (empirically ~1.1-1.3).
	if cbtcRes.AvgDegree > 2*rng.AvgDegree {
		t.Errorf("CBTC degree %v not competitive with RNG %v", cbtcRes.AvgDegree, rng.AvgDegree)
	}
	if cbtcRes.AvgRadius > 2*rng.AvgRadius {
		t.Errorf("CBTC radius %v not competitive with RNG %v", cbtcRes.AvgRadius, rng.AvgRadius)
	}
}

// The min-max-radius baseline is optimal for the max-radius objective;
// nothing beats its bottleneck.
func TestMinMaxRadiusOptimality(t *testing.T) {
	nodes := someNetwork(22, 60)
	mm, err := RunBaseline(BaselineMinMaxRadius, nodes, paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	cbtcRes, err := Run(nodes, paperConfig().AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	bottleneck := cbtcRes.BottleneckRadius()
	if mm.MaxRadius() < bottleneck-1e-9 {
		t.Errorf("min-max baseline %v beat the bottleneck %v (impossible)", mm.MaxRadius(), bottleneck)
	}
	if cbtcRes.MaxRadius() < bottleneck-1e-9 {
		t.Errorf("CBTC max radius %v beat the bottleneck %v (impossible)", cbtcRes.MaxRadius(), bottleneck)
	}
}

func TestInterferenceReduction(t *testing.T) {
	nodes := someNetwork(23, 100)
	maxp, err := MaxPowerTopology(nodes, paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Run(nodes, paperConfig().AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	if opt.AvgInterference() >= maxp.AvgInterference() {
		t.Errorf("topology control must reduce interference: %v vs %v",
			opt.AvgInterference(), maxp.AvgInterference())
	}
	if opt.MaxInterference() > maxp.MaxInterference() {
		t.Errorf("max interference must not grow: %v vs %v",
			opt.MaxInterference(), maxp.MaxInterference())
	}
}

func TestDiameterGrowsUnderSparsification(t *testing.T) {
	nodes := someNetwork(24, 100)
	maxp, err := MaxPowerTopology(nodes, paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Run(nodes, paperConfig().AllOptimizations())
	if err != nil {
		t.Fatal(err)
	}
	if opt.Diameter() < maxp.Diameter() {
		t.Errorf("removing edges cannot shrink the diameter: %d vs %d",
			opt.Diameter(), maxp.Diameter())
	}
	if opt.Diameter() == 0 {
		t.Errorf("connected 100-node topology must have a positive diameter")
	}
}

func TestBiconnectivityReporting(t *testing.T) {
	// A dense clique-ish placement is biconnected at max power.
	nodes := []Point{Pt(0, 0), Pt(100, 0), Pt(50, 80), Pt(60, 30)}
	maxp, err := MaxPowerTopology(nodes, Config{MaxRadius: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !maxp.IsBiconnected() {
		t.Errorf("4-clique must be biconnected")
	}
	if pts := maxp.ArticulationPoints(); len(pts) != 0 {
		t.Errorf("clique has no articulation points, got %v", pts)
	}
	// A chain is connected but not biconnected; every interior node cuts.
	chain := []Point{Pt(0, 0), Pt(400, 0), Pt(800, 0), Pt(1200, 0)}
	res, err := Run(chain, Config{MaxRadius: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.IsBiconnected() {
		t.Errorf("chain must not be biconnected")
	}
	if pts := res.ArticulationPoints(); len(pts) != 2 {
		t.Errorf("chain articulation points = %v, want the 2 interior nodes", pts)
	}
}

func TestRunBetaSkeletonPublicAPI(t *testing.T) {
	nodes := someNetwork(25, 60)
	gg, err := RunBaseline(BaselineGabriel, nodes, paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	b1, err := RunBetaSkeleton(1, nodes, paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !b1.G.Equal(gg.G) {
		t.Errorf("β=1 skeleton must equal the Gabriel graph")
	}
	rng, err := RunBaseline(BaselineRNG, nodes, paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	b2, err := RunBetaSkeleton(2, nodes, paperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !b2.G.Equal(rng.G) {
		t.Errorf("β=2 skeleton must equal the RNG")
	}
	if !b2.PreservesConnectivity() {
		t.Errorf("β=2 skeleton must preserve connectivity")
	}
	if _, err := RunBetaSkeleton(0.5, nodes, paperConfig()); !errors.Is(err, ErrBadConfig) {
		t.Errorf("β < 1 must be rejected, got %v", err)
	}
}
