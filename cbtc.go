// Package cbtc is a library implementation of the cone-based distributed
// topology control algorithm (CBTC) analyzed in:
//
//	Li Li, Joseph Y. Halpern, Paramvir Bahl, Yi-Min Wang, Roger
//	Wattenhofer. "Analysis of a Cone-Based Distributed Topology Control
//	Algorithm for Wireless Multi-hop Networks." PODC 2001.
//
// CBTC(α) lets every node of a wireless multi-hop network find the
// minimum transmission power such that every cone of degree α around it
// contains a reachable neighbor, using only directional (angle-of-
// arrival) information — no GPS. The paper proves α = 5π/6 is a tight
// bound for the resulting symmetric graph G_α to preserve the
// connectivity of the maximum-power graph G_R, and adds three
// power-reducing optimizations that keep the guarantee.
//
// # The Engine
//
// The primary entry point is the Engine, built once from functional
// options and then immutable and safe for concurrent use:
//
//	eng, err := cbtc.New(
//		cbtc.WithMaxRadius(500),
//		cbtc.WithAlpha(cbtc.AlphaConnectivity),
//		cbtc.WithAllOptimizations(),
//	)
//	res, err := eng.Run(ctx, nodes)
//
// An Engine offers three executors with one output type:
//
//   - Engine.Run computes the topology under the exact minimal-power
//     semantics of the paper's analysis (fast, deterministic; what the
//     evaluation harness uses).
//   - Engine.Simulate runs the actual distributed Hello/Ack protocol of
//     the paper's Figure 1 over a discrete-event radio simulator,
//     supporting lossy channels and angle-of-arrival noise.
//   - Engine.RunBatch fans many independent placements across a worker
//     pool — the shape of every Monte-Carlo experiment in the paper's §5.
//
// All executor methods honor context cancellation. Each returns a Result
// carrying the final graph and the per-node power assignment, plus the
// metrics the paper's Table 1 reports.
//
// # Sessions: dynamic reconfiguration (§4)
//
// Engine.NewSession maintains a long-lived, evolving topology under the
// paper's §4 reconfiguration semantics: Join, Leave and Move events
// repair the topology incrementally — only nodes whose neighborhood the
// event could have changed are recomputed — and Snapshot returns the
// live Result at any point. The maintained state always equals what a
// fresh Engine.Run over the current live placement would produce.
//
// # Legacy API
//
// The original one-shot functions Run, Simulate and MaxPowerTopology
// remain as thin wrappers that build a throwaway Engine from a Config;
// new code should construct an Engine once and reuse it.
package cbtc

import (
	"context"
	"errors"
	"fmt"
	"math"

	"cbtc/internal/core"
	"cbtc/internal/geom"
	"cbtc/internal/graph"
	"cbtc/internal/radio"
)

// Point is a node position in the plane.
type Point = geom.Point

// Graph is an undirected topology over node indices.
type Graph = graph.Graph

// Edge is an undirected edge between node indices.
type Edge = graph.Edge

// PairwisePolicy selects which redundant edges pairwise edge removal
// (§3.3) deletes; see the constants for the choices.
type PairwisePolicy = core.PairwisePolicy

// The pairwise edge removal policies of §3.3. Theorem 3.6 proves every
// subset of the redundant edges is safe to remove; the policies differ
// in the power/throughput trade-off.
const (
	// PairwiseLengthFiltered is the paper's practical rule: remove a
	// redundant edge only when it is longer than the longest
	// non-redundant edge at the detecting endpoint.
	PairwiseLengthFiltered = core.PairwiseLengthFiltered
	// PairwiseRemoveAll removes every redundant edge (Theorem 3.6).
	PairwiseRemoveAll = core.PairwiseRemoveAll
	// PairwiseEitherEndpoint removes a redundant edge that is longer than
	// the longest non-redundant edge at either endpoint.
	PairwiseEitherEndpoint = core.PairwiseEitherEndpoint
	// PairwiseBothEndpoints removes a redundant edge only when both
	// endpoints benefit.
	PairwiseBothEndpoints = core.PairwiseBothEndpoints
)

// The two cone angles the paper analyzes.
const (
	// AlphaConnectivity = 5π/6: the tight bound of Theorems 2.1/2.4.
	AlphaConnectivity = core.AlphaConnectivity
	// AlphaAsymmetric = 2π/3: the largest angle admitting asymmetric
	// edge removal (Theorem 3.2).
	AlphaAsymmetric = core.AlphaAsymmetric
)

// ErrBadConfig reports an invalid Config.
var ErrBadConfig = errors.New("cbtc: invalid config")

// Pt is shorthand for Point{X: x, Y: y}.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// Config selects the cone angle, the radio model, and the optimization
// stack. The zero value is not valid: MaxRadius must be positive.
//
// Config remains the configuration record behind the legacy one-shot
// functions and can seed an Engine through WithConfig; new code usually
// builds the Engine from individual options instead.
type Config struct {
	// Alpha is the cone angle in radians. Zero means AlphaConnectivity
	// (5π/6). Must be in (0, 2π]; connectivity is only guaranteed for
	// Alpha ≤ 5π/6.
	Alpha float64
	// MaxRadius is R: the distance reachable at maximum power. Required.
	MaxRadius float64
	// PathLossExponent is the power-law exponent n in p(d) = d^n.
	// Zero means 2 (free space).
	PathLossExponent float64

	// ShrinkBack enables optimization 1 (§3.1).
	ShrinkBack bool
	// AsymmetricRemoval enables optimization 2 (§3.2); requires
	// Alpha ≤ 2π/3.
	AsymmetricRemoval bool
	// PairwiseRemoval enables optimization 3 (§3.3); the policy is
	// selected by PairwisePolicy.
	PairwiseRemoval bool
	// PairwisePolicy selects the §3.3 removal rule; the zero value means
	// PairwiseLengthFiltered, the paper's practical rule.
	PairwisePolicy PairwisePolicy
	// RemoveAllRedundant switches PairwiseRemoval to delete every
	// redundant edge (the full Theorem 3.6 setting).
	//
	// Deprecated: set PairwisePolicy to PairwiseRemoveAll instead. The
	// field is still honored when PairwisePolicy is zero.
	RemoveAllRedundant bool
}

// resolvedPairwisePolicy returns the §3.3 policy in effect, merging the
// explicit PairwisePolicy field with the deprecated RemoveAllRedundant
// flag. Zero means the BuildTopology default (PairwiseLengthFiltered).
func (c Config) resolvedPairwisePolicy() PairwisePolicy {
	if c.PairwisePolicy != 0 {
		return c.PairwisePolicy
	}
	if c.RemoveAllRedundant {
		return PairwiseRemoveAll
	}
	return 0
}

// AllOptimizations returns cfg with every optimization applicable at its
// cone angle enabled — the paper's "with all opt" configuration. The
// pairwise policy is resolved the same way Run resolves it: an explicit
// PairwisePolicy wins, the deprecated RemoveAllRedundant flag maps to
// PairwiseRemoveAll, and the default is the paper's length-filtered
// rule.
func (c Config) AllOptimizations() Config {
	c.ShrinkBack = true
	c.PairwiseRemoval = true
	c.PairwisePolicy = c.resolvedPairwisePolicy()
	alpha := c.Alpha
	if alpha == 0 {
		alpha = AlphaConnectivity
	}
	c.AsymmetricRemoval = alpha <= AlphaAsymmetric+1e-9
	return c
}

func (c Config) resolve() (Config, radio.Model, core.Options, error) {
	if c.Alpha == 0 {
		c.Alpha = AlphaConnectivity
	}
	if c.PathLossExponent == 0 {
		c.PathLossExponent = radio.FreeSpaceExponent
	}
	if math.IsNaN(c.Alpha) || c.Alpha <= 0 || c.Alpha > 2*math.Pi {
		return c, radio.Model{}, core.Options{}, fmt.Errorf("%w: alpha %v not in (0, 2π]", ErrBadConfig, c.Alpha)
	}
	m, err := radio.NewModel(c.PathLossExponent, c.MaxRadius, 1)
	if err != nil {
		return c, radio.Model{}, core.Options{}, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	policy := c.resolvedPairwisePolicy()
	if policy < 0 || policy > PairwiseBothEndpoints {
		return c, radio.Model{}, core.Options{}, fmt.Errorf("%w: unknown pairwise policy %v", ErrBadConfig, policy)
	}
	opts := core.Options{
		ShrinkBack:        c.ShrinkBack,
		AsymmetricRemoval: c.AsymmetricRemoval,
		PairwiseRemoval:   c.PairwiseRemoval,
		PairwisePolicy:    policy,
	}
	if err := opts.Validate(c.Alpha); err != nil {
		return c, radio.Model{}, core.Options{}, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return c, m, opts, nil
}

// Run executes CBTC(α) on the placement under the exact minimal-power
// semantics of the paper's analysis and applies the configured
// optimization stack.
//
// Deprecated: build an Engine with New and call Engine.Run; it validates
// once, honors contexts, and is safe for concurrent reuse.
func Run(nodes []Point, cfg Config) (*Result, error) {
	eng, err := New(WithConfig(cfg))
	if err != nil {
		return nil, err
	}
	return eng.Run(context.Background(), nodes)
}

// SimOptions configures the distributed execution of Simulate.
type SimOptions struct {
	// Seed drives all simulator randomness. Same seed, same run.
	Seed uint64
	// Latency is the per-message delay; zero means 1 time unit.
	Latency float64
	// Jitter adds uniform random delay in [0, Jitter).
	Jitter float64
	// DropProb drops each delivery with this probability.
	DropProb float64
	// DupProb duplicates each delivery with this probability.
	DupProb float64
	// AoANoise is the bearing measurement noise (radians, std dev).
	AoANoise float64
	// InitialPower is p₀ of the growing phase; zero means MaxPower/1024.
	InitialPower float64
	// IncreaseFactor is the power growth multiplier per round; zero
	// means 2 (the paper's doubling).
	IncreaseFactor float64
}

// Simulate runs the distributed Hello/Ack protocol of the paper's
// Figure 1 on a discrete-event radio simulator and applies the
// configured optimization stack to the outcome.
//
// Deprecated: build an Engine with New and call Engine.Simulate.
func Simulate(nodes []Point, cfg Config, sim SimOptions) (*Result, error) {
	eng, err := New(WithConfig(cfg))
	if err != nil {
		return nil, err
	}
	return eng.Simulate(context.Background(), nodes, sim)
}

// MaxPowerTopology returns the Result of using no topology control at
// all: every node transmits at maximum power (the paper's baseline
// column in Table 1).
//
// Deprecated: build an Engine with New and call Engine.MaxPower.
func MaxPowerTopology(nodes []Point, cfg Config) (*Result, error) {
	eng, err := New(WithConfig(cfg))
	if err != nil {
		return nil, err
	}
	return eng.MaxPower(nodes)
}
