// Package cbtc is a library implementation of the cone-based distributed
// topology control algorithm (CBTC) analyzed in:
//
//	Li Li, Joseph Y. Halpern, Paramvir Bahl, Yi-Min Wang, Roger
//	Wattenhofer. "Analysis of a Cone-Based Distributed Topology Control
//	Algorithm for Wireless Multi-hop Networks." PODC 2001.
//
// CBTC(α) lets every node of a wireless multi-hop network find the
// minimum transmission power such that every cone of degree α around it
// contains a reachable neighbor, using only directional (angle-of-
// arrival) information — no GPS. The paper proves α = 5π/6 is a tight
// bound for the resulting symmetric graph G_α to preserve the
// connectivity of the maximum-power graph G_R, and adds three
// power-reducing optimizations that keep the guarantee.
//
// The package offers two executors with one output type:
//
//   - Run computes the topology under the exact minimal-power semantics
//     of the paper's analysis (fast, deterministic; what the evaluation
//     harness uses).
//   - Simulate runs the actual distributed Hello/Ack protocol of the
//     paper's Figure 1 over a discrete-event radio simulator, supporting
//     lossy channels and angle-of-arrival noise.
//
// Both return a Result carrying the final graph and the per-node power
// assignment, plus the metrics the paper's Table 1 reports.
package cbtc

import (
	"errors"
	"fmt"
	"math"

	"cbtc/internal/core"
	"cbtc/internal/geom"
	"cbtc/internal/graph"
	"cbtc/internal/netsim"
	"cbtc/internal/proto"
	"cbtc/internal/radio"
)

// Point is a node position in the plane.
type Point = geom.Point

// Graph is an undirected topology over node indices.
type Graph = graph.Graph

// Edge is an undirected edge between node indices.
type Edge = graph.Edge

// The two cone angles the paper analyzes.
const (
	// AlphaConnectivity = 5π/6: the tight bound of Theorems 2.1/2.4.
	AlphaConnectivity = core.AlphaConnectivity
	// AlphaAsymmetric = 2π/3: the largest angle admitting asymmetric
	// edge removal (Theorem 3.2).
	AlphaAsymmetric = core.AlphaAsymmetric
)

// ErrBadConfig reports an invalid Config.
var ErrBadConfig = errors.New("cbtc: invalid config")

// Pt is shorthand for Point{X: x, Y: y}.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// Config selects the cone angle, the radio model, and the optimization
// stack. The zero value is not valid: MaxRadius must be positive.
type Config struct {
	// Alpha is the cone angle in radians. Zero means AlphaConnectivity
	// (5π/6). Must be in (0, 2π]; connectivity is only guaranteed for
	// Alpha ≤ 5π/6.
	Alpha float64
	// MaxRadius is R: the distance reachable at maximum power. Required.
	MaxRadius float64
	// PathLossExponent is the power-law exponent n in p(d) = d^n.
	// Zero means 2 (free space).
	PathLossExponent float64

	// ShrinkBack enables optimization 1 (§3.1).
	ShrinkBack bool
	// AsymmetricRemoval enables optimization 2 (§3.2); requires
	// Alpha ≤ 2π/3.
	AsymmetricRemoval bool
	// PairwiseRemoval enables optimization 3 (§3.3) with the paper's
	// length-filtered policy.
	PairwiseRemoval bool
	// RemoveAllRedundant switches PairwiseRemoval to delete every
	// redundant edge (the full Theorem 3.6 setting) instead of only
	// power-relevant ones.
	RemoveAllRedundant bool
}

// AllOptimizations returns cfg with every optimization applicable at its
// cone angle enabled — the paper's "with all opt" configuration.
func (c Config) AllOptimizations() Config {
	c.ShrinkBack = true
	c.PairwiseRemoval = true
	alpha := c.Alpha
	if alpha == 0 {
		alpha = AlphaConnectivity
	}
	c.AsymmetricRemoval = alpha <= AlphaAsymmetric+1e-9
	return c
}

func (c Config) resolve() (Config, radio.Model, core.Options, error) {
	if c.Alpha == 0 {
		c.Alpha = AlphaConnectivity
	}
	if c.PathLossExponent == 0 {
		c.PathLossExponent = radio.FreeSpaceExponent
	}
	if math.IsNaN(c.Alpha) || c.Alpha <= 0 || c.Alpha > 2*math.Pi {
		return c, radio.Model{}, core.Options{}, fmt.Errorf("%w: alpha %v not in (0, 2π]", ErrBadConfig, c.Alpha)
	}
	m, err := radio.NewModel(c.PathLossExponent, c.MaxRadius, 1)
	if err != nil {
		return c, radio.Model{}, core.Options{}, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	opts := core.Options{
		ShrinkBack:        c.ShrinkBack,
		AsymmetricRemoval: c.AsymmetricRemoval,
		PairwiseRemoval:   c.PairwiseRemoval,
	}
	if c.RemoveAllRedundant {
		opts.PairwisePolicy = core.PairwiseRemoveAll
	}
	if err := opts.Validate(c.Alpha); err != nil {
		return c, radio.Model{}, core.Options{}, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return c, m, opts, nil
}

// Run executes CBTC(α) on the placement under the exact minimal-power
// semantics of the paper's analysis and applies the configured
// optimization stack.
func Run(nodes []Point, cfg Config) (*Result, error) {
	cfg, m, opts, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	exec, err := core.Run(nodes, m, cfg.Alpha)
	if err != nil {
		return nil, err
	}
	topo, err := core.BuildTopology(exec, opts)
	if err != nil {
		return nil, err
	}
	return newResult(nodes, m, topo), nil
}

// SimOptions configures the distributed execution of Simulate.
type SimOptions struct {
	// Seed drives all simulator randomness. Same seed, same run.
	Seed uint64
	// Latency is the per-message delay; zero means 1 time unit.
	Latency float64
	// Jitter adds uniform random delay in [0, Jitter).
	Jitter float64
	// DropProb drops each delivery with this probability.
	DropProb float64
	// DupProb duplicates each delivery with this probability.
	DupProb float64
	// AoANoise is the bearing measurement noise (radians, std dev).
	AoANoise float64
	// InitialPower is p₀ of the growing phase; zero means MaxPower/1024.
	InitialPower float64
	// IncreaseFactor is the power growth multiplier per round; zero
	// means 2 (the paper's doubling).
	IncreaseFactor float64
}

// Simulate runs the distributed Hello/Ack protocol of the paper's
// Figure 1 on a discrete-event radio simulator and applies the
// configured optimization stack to the outcome. Nodes act only on
// message powers and measured angles, exactly as the paper assumes.
func Simulate(nodes []Point, cfg Config, sim SimOptions) (*Result, error) {
	cfg, m, opts, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	simOpts := netsim.Options{
		Model:    m,
		Latency:  sim.Latency,
		Jitter:   sim.Jitter,
		DropProb: sim.DropProb,
		DupProb:  sim.DupProb,
		AoANoise: sim.AoANoise,
		Seed:     sim.Seed,
	}
	if simOpts.Latency == 0 {
		simOpts.Latency = 1
	}
	pcfg := proto.Config{
		Alpha:       cfg.Alpha,
		P0:          sim.InitialPower,
		AsymRemoval: cfg.AsymmetricRemoval,
	}
	if sim.IncreaseFactor != 0 {
		inc, err := radio.Multiplicative(sim.IncreaseFactor)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		pcfg.Increase = inc
	}
	exec, _, err := proto.RunCBTC(nodes, simOpts, pcfg)
	if err != nil {
		return nil, err
	}
	topo, err := core.BuildTopology(exec, opts)
	if err != nil {
		return nil, err
	}
	return newResult(nodes, m, topo), nil
}

// MaxPowerTopology returns the Result of using no topology control at
// all: every node transmits at maximum power (the paper's baseline
// column in Table 1).
func MaxPowerTopology(nodes []Point, cfg Config) (*Result, error) {
	cfg, m, _, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	gr := core.MaxPowerGraph(nodes, m)
	radii := make([]float64, len(nodes))
	powers := make([]float64, len(nodes))
	boundary := make([]bool, len(nodes))
	for i := range nodes {
		radii[i] = m.MaxRadius // the baseline transmits at R regardless
		powers[i] = m.MaxPower()
	}
	return &Result{
		G:         gr,
		GR:        gr,
		Pos:       append([]Point(nil), nodes...),
		Radii:     radii,
		Powers:    powers,
		Boundary:  boundary,
		AvgDegree: graph.AvgDegree(gr),
		AvgRadius: m.MaxRadius,
		model:     m,
	}, nil
}
