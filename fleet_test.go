package cbtc

import (
	"context"
	"errors"
	"math/rand/v2"
	"reflect"
	"sync/atomic"
	"testing"

	"cbtc/internal/workload"
)

func fleetEngine(t testing.TB, opts ...Option) *Engine {
	t.Helper()
	eng, err := New(append([]Option{WithMaxRadius(workload.PaperRadius), WithShrinkBack()}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func fleetTick(sc workload.FleetScenario) TickFunc {
	return DriftTick(TickProfile{
		Moves:     sc.Moves,
		Jitter:    sc.Jitter,
		JoinProb:  sc.JoinProb,
		LeaveProb: sc.LeaveProb,
		Width:     sc.Side,
		Height:    sc.Side,
	})
}

// The ISSUE's acceptance test: a 32-network fleet produces byte-identical
// per-shard snapshots and stats at every worker count.
func TestFleetWorkerCountInvariance(t *testing.T) {
	sc := workload.Fleet(32, 60, "uniform")
	placements := sc.Placements(3)
	tick := fleetTick(sc)
	ctx := context.Background()

	var want *FleetReport
	var wantGraphs []*Graph
	for _, workers := range []int{1, 2, 8} {
		fleet, err := fleetEngine(t).NewFleet(ctx, FleetConfig{Placements: placements, Seed: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := fleet.Run(ctx, 6, tick)
		if err != nil {
			t.Fatal(err)
		}
		graphs := make([]*Graph, fleet.Size())
		for i := range graphs {
			snap, err := fleet.Session(i).Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			graphs[i] = snap.G
		}
		if workers == 1 {
			want, wantGraphs = rep, graphs
			continue
		}
		if !reflect.DeepEqual(rep, want) {
			t.Errorf("workers=%d: fleet report differs from serial run", workers)
		}
		for i := range graphs {
			if !graphs[i].Equal(wantGraphs[i]) {
				t.Errorf("workers=%d: network %d topology differs from serial run", workers, i)
			}
		}
	}
	if want.Networks != 32 || want.Ticks != 6 {
		t.Fatalf("report shape: networks=%d ticks=%d", want.Networks, want.Ticks)
	}
	if want.Preserved != want.Networks {
		t.Errorf("only %d/%d networks preserve the ground-truth partition", want.Preserved, want.Networks)
	}
	if got := want.Degree.N(); got != int64(32*6) {
		t.Errorf("aggregate degree stream has %d observations, want %d", got, 32*6)
	}
	if want.DegreeDist.N() != int64(want.Live) {
		t.Errorf("degree distribution mass %d != live nodes %d", want.DegreeDist.N(), want.Live)
	}
}

// Fuzz-style randomized equivalence: a fleet of M networks must be
// edge-identical to M sequential Sessions driven by the same tick
// streams — for the incremental stack and for the pairwise (full
// rebuild) stack.
func TestFleetEqualsSequentialSessions(t *testing.T) {
	ctx := context.Background()
	meta := rand.New(rand.NewPCG(77, 1))
	for trial := 0; trial < 4; trial++ {
		m := 2 + meta.IntN(5)
		n := 25 + meta.IntN(35)
		ticks := 1 + meta.IntN(4)
		seed := meta.Uint64()
		var opts []Option
		if trial%2 == 1 {
			// Odd trials run the global pairwise stack, covering the
			// snapshot-rebuild Observe path.
			opts = append(opts, WithAllOptimizations())
		}
		eng := fleetEngine(t, opts...)
		sc := workload.Fleet(m, n, "uniform")
		placements := sc.Placements(seed)
		tick := fleetTick(sc)

		fleet, err := eng.NewFleet(ctx, FleetConfig{Placements: placements, Seed: seed, Workers: 1 + meta.IntN(7)})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := fleet.Run(ctx, ticks, tick)
		if err != nil {
			t.Fatal(err)
		}

		for i := 0; i < m; i++ {
			sess, err := eng.NewSession(ctx, placements[i])
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewPCG(seed, workload.Mix(seed, uint64(i))))
			for tk := 0; tk < ticks; tk++ {
				if _, err := sess.ApplyBatch(tick(i, tk, rng, sess)); err != nil {
					t.Fatal(err)
				}
			}
			want, err := sess.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			got, err := fleet.Session(i).Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !got.G.Equal(want.G) {
				t.Fatalf("trial %d network %d: fleet topology differs from sequential session", trial, i)
			}
			if !got.GR.Equal(want.GR) {
				t.Fatalf("trial %d network %d: fleet G_R differs from sequential session", trial, i)
			}
			if fleet.Session(i).Stats() != sess.Stats() {
				t.Fatalf("trial %d network %d: fleet stats %+v, sequential %+v",
					trial, i, fleet.Session(i).Stats(), sess.Stats())
			}
			if rep.PerNetwork[i].Final.Edges != want.G.EdgeCount() {
				t.Fatalf("trial %d network %d: reported %d edges, session has %d",
					trial, i, rep.PerNetwork[i].Final.Edges, want.G.EdgeCount())
			}
		}
	}
}

// Cancelling a fleet run mid-tick must drain cleanly: every session is
// left at a tick boundary (no partial shard progress corrupting later
// Snapshots), and finishing the remainder reproduces the uninterrupted
// run exactly.
func TestFleetCancellationMidTick(t *testing.T) {
	sc := workload.Fleet(8, 40, "uniform")
	placements := sc.Placements(11)
	tick := fleetTick(sc)
	ctx := context.Background()
	const ticks = 8

	ref, err := fleetEngine(t).NewFleet(ctx, FleetConfig{Placements: placements, Seed: 21, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantRep, err := ref.Run(ctx, ticks, tick)
	if err != nil {
		t.Fatal(err)
	}

	fleet, err := fleetEngine(t).NewFleet(ctx, FleetConfig{Placements: placements, Seed: 21, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cancelCtx, cancel := context.WithCancel(ctx)
	var calls atomic.Int32
	interrupting := func(net, tk int, rng *rand.Rand, s *Session) []Event {
		if calls.Add(1) == 20 {
			cancel() // mid-run: roughly a third of the fleet's ticks issued
		}
		return tick(net, tk, rng, s)
	}
	if _, err := fleet.Run(cancelCtx, ticks, interrupting); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted Run error = %v, want context.Canceled", err)
	}

	// Partial progress must not have corrupted any session: each one
	// still equals a fresh run over its live placement.
	for i := 0; i < fleet.Size(); i++ {
		requireSessionMatchesFreshRun(t, fleet.Session(i).Engine(), fleet.Session(i))
	}

	// Run(ctx, 0, fn) completes exactly the remainder of the cancelled
	// run; the drained fleet must be byte-identical to the
	// uninterrupted reference.
	gotRep, err := fleet.Run(ctx, 0, interrupting)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotRep, wantRep) {
		t.Errorf("drained fleet report differs from uninterrupted run")
	}
	for i := 0; i < fleet.Size(); i++ {
		want, err := ref.Session(i).Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		got, err := fleet.Session(i).Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !got.G.Equal(want.G) || !got.GR.Equal(want.GR) {
			t.Errorf("network %d: drained topology differs from uninterrupted run", i)
		}
	}
}

// A pre-cancelled context must abort before any tick applies.
func TestFleetPreCancelled(t *testing.T) {
	sc := workload.Fleet(3, 20, "uniform")
	fleet, err := fleetEngine(t).NewFleet(context.Background(), FleetConfig{Placements: sc.Placements(1), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fleet.Run(ctx, 3, fleetTick(sc)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Run error = %v, want context.Canceled", err)
	}
	rep, err := fleet.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ticks != 0 || rep.Events != 0 {
		t.Errorf("pre-cancelled fleet applied ticks=%d events=%d", rep.Ticks, rep.Events)
	}
}

// An emptied (or empty-from-birth) network must not crash the drift
// generator: with no live nodes DriftTick can only emit joins, and the
// fleet keeps running.
func TestFleetEmptyNetwork(t *testing.T) {
	ctx := context.Background()
	fleet, err := fleetEngine(t).NewFleet(ctx, FleetConfig{
		Placements: [][]Point{{}, {Pt(0, 0), Pt(100, 0)}},
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fleet.Run(ctx, 4, DriftTick(TickProfile{
		Moves: 3, Jitter: 50, JoinProb: 1, Width: 500, Height: 500,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerNetwork[0].Final.Live == 0 {
		t.Errorf("empty network gained no joins over %d ticks", rep.Ticks)
	}
	requireSessionMatchesFreshRun(t, fleet.Session(0).Engine(), fleet.Session(0))
}

func TestFleetValidation(t *testing.T) {
	eng := fleetEngine(t)
	ctx := context.Background()
	if _, err := eng.NewFleet(ctx, FleetConfig{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty fleet error = %v, want ErrBadConfig", err)
	}
	sc := workload.Fleet(2, 15, "uniform")
	if _, err := eng.NewFleet(ctx, FleetConfig{Placements: sc.Placements(1), Workers: -1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative workers error = %v, want ErrBadConfig", err)
	}
	fleet, err := eng.NewFleet(ctx, FleetConfig{Placements: sc.Placements(1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.Run(ctx, -1, fleetTick(sc)); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative ticks error = %v, want ErrBadConfig", err)
	}
	if fleet.Size() != 2 {
		t.Errorf("fleet size = %d, want 2", fleet.Size())
	}
}

// A -race soak: a sharded fleet run with concurrent direct session
// reads from outside the pool. Sessions serialize internally, shard
// slots are disjoint, and the report merge runs after the pool — the
// race detector sees the whole machinery under load.
func TestFleetRaceSoak(t *testing.T) {
	sc := workload.Fleet(12, 40, "clustered")
	fleet, err := fleetEngine(t).NewFleet(context.Background(), FleetConfig{Placements: sc.Placements(9), Seed: 9, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	reads := make(chan error, 1)
	go func() {
		defer close(reads)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < fleet.Size(); i++ {
				if _, err := fleet.Session(i).Observe(); err != nil {
					reads <- err
					return
				}
			}
		}
	}()
	if _, err := fleet.Run(context.Background(), 5, fleetTick(sc)); err != nil {
		t.Fatal(err)
	}
	close(stop)
	if err := <-reads; err != nil {
		t.Fatal(err)
	}
}
