package cbtc

import (
	"context"
	"errors"
	"math/rand/v2"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"cbtc/internal/workload"
)

func fleetEngine(t testing.TB, opts ...Option) *Engine {
	t.Helper()
	eng, err := New(append([]Option{WithMaxRadius(workload.PaperRadius), WithShrinkBack()}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func fleetTick(sc workload.FleetScenario) TickFunc {
	return DriftTick(TickProfile{
		Moves:     sc.Moves,
		Jitter:    sc.Jitter,
		JoinProb:  sc.JoinProb,
		LeaveProb: sc.LeaveProb,
		Width:     sc.Side,
		Height:    sc.Side,
	})
}

// zeroSched clears the wall-clock scheduling telemetry, the one
// non-deterministic part of a FleetReport, so reports can be compared
// byte-for-byte across worker counts and restore boundaries.
func zeroSched(rep *FleetReport) {
	for i := range rep.PerNetwork {
		rep.PerNetwork[i].Sched = MemberSchedStats{}
	}
}

// mixedMembers builds a deliberately heterogeneous member list: varying
// sizes, an oracle/protocol kind mix, per-member option overrides and
// tick weights 1–3.
func mixedMembers(t testing.TB, seed uint64) []MemberSpec {
	t.Helper()
	sizes := []int{40, 25, 60, 30, 45}
	members := make([]MemberSpec, len(sizes))
	for i, n := range sizes {
		sz := workload.MemberSize{N: n, Side: workload.LargeNSide(n)}
		members[i] = MemberSpec{
			Placement: workload.MemberPlacement(seed, i, sz),
			Ticks:     1 + i%3,
		}
	}
	members[1].Kind = MemberProtocol
	members[2].Options = []Option{WithAllOptimizations()}
	members[4].Kind = MemberProtocol
	members[4].Options = []Option{WithAlpha(AlphaAsymmetric), WithAsymmetricRemoval()}
	return members
}

// The redesigned determinism invariant, pinned: every member of a mixed
// oracle+protocol fleet — heterogeneous sizes, option stacks and tick
// weights — produces a byte-identical report slice and topology given
// its seed, at workers 1, 2 and 8. (The PR 5 fleet-wide lockstep
// invariant is retired; nothing here requires members to share a
// clock.)
func TestFleetWorkerCountInvariance(t *testing.T) {
	members := mixedMembers(t, 3)
	sc := workload.Fleet(len(members), 40, "uniform")
	tick := fleetTick(sc)
	ctx := context.Background()

	var want *FleetReport
	var wantGraphs []*Graph
	for _, workers := range []int{1, 2, 8} {
		fleet, err := fleetEngine(t).NewFleet(ctx, FleetConfig{Members: members, Seed: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := fleet.Run(ctx, 4, tick)
		if err != nil {
			t.Fatal(err)
		}
		zeroSched(rep)
		graphs := make([]*Graph, fleet.Size())
		for i := range graphs {
			snap, err := fleet.Session(i).Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			graphs[i] = snap.G
		}
		if workers == 1 {
			want, wantGraphs = rep, graphs
			continue
		}
		if !reflect.DeepEqual(rep, want) {
			t.Errorf("workers=%d: fleet report differs from serial run", workers)
		}
		for i := range graphs {
			if !graphs[i].Equal(wantGraphs[i]) {
				t.Errorf("workers=%d: network %d topology differs from serial run", workers, i)
			}
		}
	}
	// Weights 1–3 over 4 rounds: the watermarks span 4..12 and each
	// member's series carries one observation per completed tick.
	if want.Networks != len(members) || want.Watermarks.Min != 4 || want.Watermarks.Max != 12 {
		t.Fatalf("report shape: networks=%d watermarks=%+v", want.Networks, want.Watermarks)
	}
	var totalTicks int64
	for i, nr := range want.PerNetwork {
		if nr.Ticks != 4*(1+i%3) || nr.Ticks != nr.Target {
			t.Errorf("network %d: ticks=%d target=%d, want %d", i, nr.Ticks, nr.Target, 4*(1+i%3))
		}
		totalTicks += int64(nr.Ticks)
	}
	if want.Preserved != want.Networks {
		t.Errorf("only %d/%d networks preserve the ground-truth partition", want.Preserved, want.Networks)
	}
	if got := want.Series.Degree.N(); got != totalTicks {
		t.Errorf("aggregate degree stream has %d observations, want %d", got, totalTicks)
	}
	if want.DegreeDist.N() != int64(want.Live) {
		t.Errorf("degree distribution mass %d != live nodes %d", want.DegreeDist.N(), want.Live)
	}
}

// The deprecated Placements field must keep working: a Placements fleet
// is byte-identical to the equivalent homogeneous oracle Members fleet.
func TestFleetPlacementsShim(t *testing.T) {
	sc := workload.Fleet(6, 35, "uniform")
	placements := sc.Placements(13)
	tick := fleetTick(sc)
	ctx := context.Background()

	old, err := fleetEngine(t).NewFleet(ctx, FleetConfig{Placements: placements, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	members := make([]MemberSpec, len(placements))
	for i, p := range placements {
		members[i] = MemberSpec{Placement: p}
	}
	neu, err := fleetEngine(t).NewFleet(ctx, FleetConfig{Members: members, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	oldRep, err := old.Run(ctx, 5, tick)
	if err != nil {
		t.Fatal(err)
	}
	newRep, err := neu.Run(ctx, 5, tick)
	if err != nil {
		t.Fatal(err)
	}
	zeroSched(oldRep)
	zeroSched(newRep)
	if !reflect.DeepEqual(oldRep, newRep) {
		t.Error("Placements shim fleet report differs from explicit Members fleet")
	}
	if _, err := fleetEngine(t).NewFleet(ctx, FleetConfig{Placements: placements, Members: members}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("both Members and Placements error = %v, want ErrBadConfig", err)
	}
}

// Fuzz-style randomized equivalence: a fleet of M networks must be
// edge-identical to M sequential Sessions driven by the same tick
// streams — for the incremental stack and for the pairwise (full
// rebuild) stack.
func TestFleetEqualsSequentialSessions(t *testing.T) {
	ctx := context.Background()
	meta := rand.New(rand.NewPCG(77, 1))
	for trial := 0; trial < 4; trial++ {
		m := 2 + meta.IntN(5)
		n := 25 + meta.IntN(35)
		ticks := 1 + meta.IntN(4)
		seed := meta.Uint64()
		var opts []Option
		if trial%2 == 1 {
			// Odd trials run the global pairwise stack, covering the
			// snapshot-rebuild Observe path.
			opts = append(opts, WithAllOptimizations())
		}
		eng := fleetEngine(t, opts...)
		sc := workload.Fleet(m, n, "uniform")
		placements := sc.Placements(seed)
		tick := fleetTick(sc)

		fleet, err := eng.NewFleet(ctx, FleetConfig{Placements: placements, Seed: seed, Workers: 1 + meta.IntN(7)})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := fleet.Run(ctx, ticks, tick)
		if err != nil {
			t.Fatal(err)
		}

		for i := 0; i < m; i++ {
			sess, err := eng.NewSession(ctx, placements[i])
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewPCG(seed, workload.Mix(seed, uint64(i))))
			for tk := 0; tk < ticks; tk++ {
				if _, err := sess.ApplyBatch(tick(i, tk, rng, sess)); err != nil {
					t.Fatal(err)
				}
			}
			want, err := sess.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			got, err := fleet.Session(i).Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !got.G.Equal(want.G) {
				t.Fatalf("trial %d network %d: fleet topology differs from sequential session", trial, i)
			}
			if !got.GR.Equal(want.GR) {
				t.Fatalf("trial %d network %d: fleet G_R differs from sequential session", trial, i)
			}
			if fleet.Session(i).Stats() != sess.Stats() {
				t.Fatalf("trial %d network %d: fleet stats %+v, sequential %+v",
					trial, i, fleet.Session(i).Stats(), sess.Stats())
			}
			if rep.PerNetwork[i].Final.Edges != want.G.EdgeCount() {
				t.Fatalf("trial %d network %d: reported %d edges, session has %d",
					trial, i, rep.PerNetwork[i].Final.Edges, want.G.EdgeCount())
			}
		}
	}
}

// A mixed oracle+protocol fleet must be edge-identical to driving each
// member as a standalone session built the same way — NewSession for
// oracle members, NewProtocolSession (with the fleet's derived sim
// seed) for protocol members — under the same tick streams.
func TestFleetMixedEqualsSequential(t *testing.T) {
	const seed = 29
	ctx := context.Background()
	members := mixedMembers(t, seed)
	sc := workload.Fleet(len(members), 40, "uniform")
	tick := fleetTick(sc)

	fleet, err := fleetEngine(t).NewFleet(ctx, FleetConfig{Members: members, Seed: seed, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 3
	if _, err := fleet.Run(ctx, rounds, tick); err != nil {
		t.Fatal(err)
	}

	for i, spec := range members {
		eng := fleetEngine(t, spec.Options...)
		var sess *Session
		switch spec.Kind {
		case MemberProtocol:
			sess, err = eng.NewProtocolSession(ctx, spec.Placement, SimOptions{Seed: workload.Mix(seed, uint64(i))})
		default:
			sess, err = eng.NewSession(ctx, spec.Placement)
		}
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(seed, workload.Mix(seed, uint64(i))))
		for tk := 0; tk < rounds*spec.Ticks; tk++ {
			if _, err := sess.ApplyBatch(tick(i, tk, rng, sess)); err != nil {
				t.Fatal(err)
			}
		}
		want, err := sess.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		got, err := fleet.Session(i).Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !got.G.Equal(want.G) || !got.GR.Equal(want.GR) {
			t.Errorf("member %d (%s): fleet topology differs from sequential run", i, spec.Kind)
		}
		if fleet.Session(i).Stats() != sess.Stats() {
			t.Errorf("member %d (%s): fleet stats %+v, sequential %+v", i, spec.Kind, fleet.Session(i).Stats(), sess.Stats())
		}
	}
}

// Straggler isolation: a member whose tick blocks must not stall the
// other members' clocks — they run to their targets while the straggler
// sits at tick 0, which the lock-free Watermarks read observes mid-run.
// The straggler holds exactly one worker (its lease), so the rest of
// the pool keeps draining the ready queue.
func TestFleetStragglerIsolation(t *testing.T) {
	const seed, slow, rounds = 17, 4, 5
	ctx := context.Background()
	sc := workload.Fleet(5, 30, "uniform")
	placements := sc.Placements(seed)
	tick := fleetTick(sc)

	// Reference: the same fleet with no blocking. The block wrapper
	// consumes no randomness, so results must match exactly.
	ref, err := fleetEngine(t).NewFleet(ctx, FleetConfig{Placements: placements, Seed: seed, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantRep, err := ref.Run(ctx, rounds, tick)
	if err != nil {
		t.Fatal(err)
	}

	fleet, err := fleetEngine(t).NewFleet(ctx, FleetConfig{Placements: placements, Seed: seed, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	blocking := func(net, tk int, rng *rand.Rand, s *Session) []Event {
		if net == slow {
			<-release // blocks until released; instant afterwards
		}
		return tick(net, tk, rng, s)
	}
	done := make(chan struct{})
	var gotRep *FleetReport
	var runErr error
	go func() {
		defer close(done)
		gotRep, runErr = fleet.Run(ctx, rounds, blocking)
	}()

	// The fast members must reach their targets while the straggler is
	// still at tick 0 — bounded in-flight work means its stall costs one
	// worker, not the fleet.
	deadline := time.Now().Add(30 * time.Second)
	for {
		wm := fleet.Watermarks()
		fastDone := true
		for i, c := range wm.Members {
			if i != slow && c.Ticks < rounds {
				fastDone = false
			}
		}
		if fastDone {
			if c := wm.Members[slow]; c.Ticks != 0 {
				t.Errorf("straggler advanced to tick %d while blocked", c.Ticks)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("fast members did not finish while the straggler was blocked")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}

	// The straggler's first lease covered one tick (cold flow-rate
	// estimate), so finishing its remaining rounds requeued it at least
	// once.
	if rq := gotRep.PerNetwork[slow].Sched.Requeues; rq < 1 {
		t.Errorf("straggler requeues = %d, want >= 1", rq)
	}
	zeroSched(gotRep)
	zeroSched(wantRep)
	if !reflect.DeepEqual(gotRep, wantRep) {
		t.Error("straggler fleet report differs from unblocked reference")
	}
}

// The lease timeout path: a member that turns slow after building a
// fast flow-rate estimate (large tick quantum) must hit the per-lease
// time budget and be cut off early at a tick boundary.
func TestFleetLeaseTimeout(t *testing.T) {
	const seed = 23
	ctx := context.Background()
	sc := workload.Fleet(1, 25, "uniform")

	fleet, err := fleetEngine(t).NewFleet(ctx, FleetConfig{Placements: sc.Placements(seed), Seed: seed, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 24 event-less ticks build a microsecond-scale estimate, inflating
	// the quantum to its cap; then every tick sleeps 3ms, so the 8ms
	// lease budget trips after ~3 ticks with most of the quantum unused.
	slowAfter := func(net, tk int, rng *rand.Rand, s *Session) []Event {
		if tk >= 24 {
			time.Sleep(3 * time.Millisecond)
		}
		return nil
	}
	rep, err := fleet.Run(ctx, 40, slowAfter)
	if err != nil {
		t.Fatal(err)
	}
	sched := rep.PerNetwork[0].Sched
	if sched.Timeouts < 1 {
		t.Errorf("sched = %+v: no lease timed out despite the slow phase", sched)
	}
	if sched.Requeues < 1 {
		t.Errorf("sched = %+v: timed-out member was never requeued", sched)
	}
	if rep.PerNetwork[0].Ticks != 40 {
		t.Errorf("member finished at tick %d, want 40", rep.PerNetwork[0].Ticks)
	}
}

// Cancelling a fleet run mid-tick must drain cleanly: every session is
// left at a tick boundary (no partial shard progress corrupting later
// Snapshots), and finishing the remainder reproduces the uninterrupted
// run exactly.
func TestFleetCancellationMidTick(t *testing.T) {
	sc := workload.Fleet(8, 40, "uniform")
	placements := sc.Placements(11)
	tick := fleetTick(sc)
	ctx := context.Background()
	const ticks = 8

	ref, err := fleetEngine(t).NewFleet(ctx, FleetConfig{Placements: placements, Seed: 21, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	wantRep, err := ref.Run(ctx, ticks, tick)
	if err != nil {
		t.Fatal(err)
	}

	fleet, err := fleetEngine(t).NewFleet(ctx, FleetConfig{Placements: placements, Seed: 21, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	cancelCtx, cancel := context.WithCancel(ctx)
	var calls atomic.Int32
	interrupting := func(net, tk int, rng *rand.Rand, s *Session) []Event {
		if calls.Add(1) == 20 {
			cancel() // mid-run: roughly a third of the fleet's ticks issued
		}
		return tick(net, tk, rng, s)
	}
	if _, err := fleet.Run(cancelCtx, ticks, interrupting); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted Run error = %v, want context.Canceled", err)
	}

	// Partial progress must not have corrupted any session: each one
	// still equals a fresh run over its live placement. The retained
	// targets expose the raggedness.
	wm := fleet.Watermarks()
	for i := 0; i < fleet.Size(); i++ {
		if wm.Members[i].Target != ticks {
			t.Errorf("network %d: target %d after cancellation, want %d", i, wm.Members[i].Target, ticks)
		}
		requireSessionMatchesFreshRun(t, fleet.Session(i).Engine(), fleet.Session(i))
	}

	// Run(ctx, 0, fn) completes exactly the remainder of the cancelled
	// run; the drained fleet must be byte-identical to the
	// uninterrupted reference.
	gotRep, err := fleet.Run(ctx, 0, interrupting)
	if err != nil {
		t.Fatal(err)
	}
	zeroSched(gotRep)
	zeroSched(wantRep)
	if !reflect.DeepEqual(gotRep, wantRep) {
		t.Errorf("drained fleet report differs from uninterrupted run")
	}
	for i := 0; i < fleet.Size(); i++ {
		want, err := ref.Session(i).Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		got, err := fleet.Session(i).Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !got.G.Equal(want.G) || !got.GR.Equal(want.GR) {
			t.Errorf("network %d: drained topology differs from uninterrupted run", i)
		}
	}
}

// A pre-cancelled context must abort before any tick applies.
func TestFleetPreCancelled(t *testing.T) {
	sc := workload.Fleet(3, 20, "uniform")
	fleet, err := fleetEngine(t).NewFleet(context.Background(), FleetConfig{Placements: sc.Placements(1), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fleet.Run(ctx, 3, fleetTick(sc)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Run error = %v, want context.Canceled", err)
	}
	rep, err := fleet.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Watermarks.Max != 0 || rep.Events != 0 {
		t.Errorf("pre-cancelled fleet applied ticks=%+v events=%d", rep.Watermarks, rep.Events)
	}
}

// An emptied (or empty-from-birth) network must not crash the drift
// generator: with no live nodes DriftTick can only emit joins, and the
// fleet keeps running.
func TestFleetEmptyNetwork(t *testing.T) {
	ctx := context.Background()
	fleet, err := fleetEngine(t).NewFleet(ctx, FleetConfig{
		Placements: [][]Point{{}, {Pt(0, 0), Pt(100, 0)}},
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fleet.Run(ctx, 4, DriftTick(TickProfile{
		Moves: 3, Jitter: 50, JoinProb: 1, Width: 500, Height: 500,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerNetwork[0].Final.Live == 0 {
		t.Errorf("empty network gained no joins over %d ticks", rep.Watermarks.Min)
	}
	requireSessionMatchesFreshRun(t, fleet.Session(0).Engine(), fleet.Session(0))
}

func TestFleetValidation(t *testing.T) {
	eng := fleetEngine(t)
	ctx := context.Background()
	if _, err := eng.NewFleet(ctx, FleetConfig{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty fleet error = %v, want ErrBadConfig", err)
	}
	sc := workload.Fleet(2, 15, "uniform")
	if _, err := eng.NewFleet(ctx, FleetConfig{Placements: sc.Placements(1), Workers: -1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative workers error = %v, want ErrBadConfig", err)
	}
	bad := []MemberSpec{{Placement: sc.Placements(1)[0], Kind: MemberKind(9)}}
	if _, err := eng.NewFleet(ctx, FleetConfig{Members: bad}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("unknown member kind error = %v, want ErrBadConfig", err)
	}
	bad[0] = MemberSpec{Placement: sc.Placements(1)[0], Ticks: -2}
	if _, err := eng.NewFleet(ctx, FleetConfig{Members: bad}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative tick budget error = %v, want ErrBadConfig", err)
	}
	bad[0] = MemberSpec{Placement: sc.Placements(1)[0], Options: []Option{WithAlpha(-1)}}
	if _, err := eng.NewFleet(ctx, FleetConfig{Members: bad}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad member option error = %v, want ErrBadConfig", err)
	}
	fleet, err := eng.NewFleet(ctx, FleetConfig{Placements: sc.Placements(1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.Run(ctx, -1, fleetTick(sc)); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative ticks error = %v, want ErrBadConfig", err)
	}
	if fleet.Size() != 2 {
		t.Errorf("fleet size = %d, want 2", fleet.Size())
	}
	if _, err := fleet.NetworkReport(5); !errors.Is(err, ErrBadConfig) {
		t.Errorf("out-of-range NetworkReport error = %v, want ErrBadConfig", err)
	}
}

// A -race soak: a heterogeneous work-stealing run with concurrent
// direct session reads and lock-free Watermarks polls from outside the
// pool. Sessions serialize internally, member state is handed off
// through the ready queue, the clocks are atomics — the race detector
// sees the whole machinery under load.
func TestFleetRaceSoak(t *testing.T) {
	sc := workload.Fleet(12, 40, "clustered")
	placements := sc.Placements(9)
	members := make([]MemberSpec, len(placements))
	for i, p := range placements {
		members[i] = MemberSpec{Placement: p, Ticks: 1 + i%3}
	}
	members[3].Kind = MemberProtocol
	fleet, err := fleetEngine(t).NewFleet(context.Background(), FleetConfig{Members: members, Seed: 9, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	reads := make(chan error, 1)
	go func() {
		defer close(reads)
		for {
			select {
			case <-stop:
				return
			default:
			}
			wm := fleet.Watermarks()
			if len(wm.Members) != fleet.Size() {
				reads <- errors.New("short watermark read")
				return
			}
			for i := 0; i < fleet.Size(); i++ {
				if _, err := fleet.Session(i).Observe(); err != nil {
					reads <- err
					return
				}
			}
		}
	}()
	if _, err := fleet.Run(context.Background(), 5, fleetTick(sc)); err != nil {
		t.Fatal(err)
	}
	close(stop)
	if err := <-reads; err != nil {
		t.Fatal(err)
	}
}
