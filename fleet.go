package cbtc

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime/debug"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cbtc/internal/stats"
	"cbtc/internal/workload"
)

// MemberKind selects how a fleet member's initial topology is built.
type MemberKind uint8

const (
	// MemberOracle builds the member with the exact minimal-power oracle
	// (Engine.Run semantics) — the default.
	MemberOracle MemberKind = iota
	// MemberProtocol builds the member by actually running the paper's
	// distributed Figure 1 protocol on the discrete-event radio simulator
	// (Engine.Simulate semantics, seeded and deterministic). Subsequent §4
	// repairs use the same oracle machinery as every other member.
	MemberProtocol
)

func (k MemberKind) String() string {
	switch k {
	case MemberOracle:
		return "oracle"
	case MemberProtocol:
		return "protocol"
	default:
		return fmt.Sprintf("MemberKind(%d)", uint8(k))
	}
}

// MemberHealth is a fleet member's failure-domain state.
type MemberHealth uint8

const (
	// MemberHealthy means the member ticks normally.
	MemberHealthy MemberHealth = iota
	// MemberQuarantined means a tick of the member panicked: its clock is
	// frozen, the scheduler never leases it, event batches targeting it
	// are refused, and reports stop reading its session (which may be
	// mid-mutation). The panic and stack are retained in a
	// QuarantineRecord; Fleet.Readmit restores the member from a
	// checkpoint. Healthy members are unaffected — their results remain
	// byte-identical to a fleet where the casualty never panicked.
	MemberQuarantined
)

func (h MemberHealth) String() string {
	switch h {
	case MemberHealthy:
		return "healthy"
	case MemberQuarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("MemberHealth(%d)", uint8(h))
	}
}

// QuarantineRecord describes one member's quarantine: where its tick
// panicked and with what.
type QuarantineRecord struct {
	// Net is the member's index in the fleet.
	Net int
	// Tick is the member tick that panicked (the tick was not completed —
	// the member's clock stops just below it).
	Tick int
	// Err is the panic value, stringified.
	Err string
	// Stack is the panicking goroutine's stack trace.
	Stack string
}

// QuarantineError reports the members a fleet operation quarantined.
// It is returned — alongside whatever work completed on the healthy
// members — instead of poisoning the fleet: after a QuarantineError the
// fleet remains fully usable for every healthy member. Classify with
// errors.As; inspect the full health state with Fleet.Health.
type QuarantineError struct {
	// Casualties lists the members quarantined by this operation, in
	// fleet order.
	Casualties []QuarantineRecord
}

func (e *QuarantineError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cbtc: %d fleet member(s) quarantined:", len(e.Casualties))
	for _, c := range e.Casualties {
		fmt.Fprintf(&b, " [net %d tick %d: %s]", c.Net, c.Tick, c.Err)
	}
	return b.String()
}

// TickHook is an instrumentation hook invoked immediately before every
// member tick, on the scheduler worker driving the member, with the
// member index and the tick number about to run. It exists for fault
// injection and observation in tests and simulators (internal/chaos's
// Injector.Tick is a TickHook): a panic inside the hook is handled
// exactly like a panicking member tick — the member is quarantined —
// and a sleep delays only that member. To keep fleet results
// deterministic a hook must decide faults from its arguments alone,
// never from wall clock or shared mutable state.
type TickHook func(net, tick int)

// ObserveHook is an observation hook invoked immediately after every
// completed member tick, on the scheduler worker driving the member,
// with the member index, the tick number that just ran, and the
// TickStats the tick observed. Since Observe is O(changed), a per-tick
// hook costs the fleet essentially nothing — it is how drivers watch
// per-tick SLO-style conditions (cmd/fleetsim's -slo connected gate
// records the first tick a member partitions) without polling sessions.
// Calls for one member arrive in tick order; calls for different
// members arrive concurrently from different workers, so a hook must
// either use per-member state or synchronize. Like TickHook, a panic
// inside the hook quarantines the member.
type ObserveHook func(net, tick int, ts TickStats)

// MemberSpec describes one fleet member: its initial placement, how it
// is built, the engine options it overrides, and its tick budget. The
// zero value of everything but Placement gives the PR 5 behavior — an
// oracle member on the fleet engine's stack advancing one tick per
// round.
type MemberSpec struct {
	// Placement is the member's initial node placement.
	Placement []Point
	// Kind selects the oracle or the distributed-protocol constructor.
	Kind MemberKind
	// Options are per-member engine overrides, layered over the fleet
	// engine's configuration and revalidated as a whole — a member can run
	// its own α, optimization stack or density regime while the fleet
	// aggregates across all of them.
	Options []Option
	// Ticks is the member's tick budget per fleet round: Run(ctx, rounds,
	// fn) advances the member rounds×Ticks ticks. Zero means 1. A light
	// member can tick many times per round of a heavyweight one — the
	// heterogeneity the synchronized PR 5 barrier could not express.
	Ticks int
	// Sim configures the protocol constructor for MemberProtocol members.
	// A zero Sim.Seed derives a per-member seed from FleetConfig.Seed, so
	// a fleet remains reproducible from one seed; set it explicitly to
	// reproduce the member standalone with NewProtocolSession.
	Sim SimOptions
}

// FleetConfig configures Engine.NewFleet.
type FleetConfig struct {
	// Members are the fleet's M member specifications; member i starts
	// from Members[i]. At least one member is required (unless the
	// deprecated Placements field is used instead).
	Members []MemberSpec
	// Placements is the PR 5 membership surface: M homogeneous
	// oracle-built placements on the fleet engine's stack, one tick per
	// round each.
	//
	// Deprecated: populate Members instead. Placements is a shim that
	// builds the equivalent homogeneous []MemberSpec; setting both fields
	// is an error.
	Placements [][]Point
	// Seed derives every member's private tick RNG (a decorrelated
	// splitmix stream per member) and, for protocol members without an
	// explicit Sim.Seed, the protocol simulator seed — so a fleet is
	// reproducible from its member specs and one seed, at any worker
	// count.
	Seed uint64
	// Workers sizes the fleet's scheduler pool. Zero means the engine's
	// worker budget (WithWorkers; GOMAXPROCS by default); one drives the
	// fleet serially.
	Workers int
	// TickHook, when non-nil, is invoked before every member tick — the
	// fault-injection/instrumentation point. See TickHook.
	TickHook TickHook
	// ObserveHook, when non-nil, is invoked after every member tick with
	// the tick's observed stats — the per-tick SLO/telemetry point. See
	// ObserveHook.
	ObserveHook ObserveHook
}

// members resolves the Members/Placements surfaces into one spec list.
func (cfg *FleetConfig) members() ([]MemberSpec, error) {
	if len(cfg.Members) > 0 && len(cfg.Placements) > 0 {
		return nil, fmt.Errorf("%w: set FleetConfig.Members or the deprecated Placements, not both", ErrBadConfig)
	}
	specs := cfg.Members
	if len(specs) == 0 {
		specs = make([]MemberSpec, len(cfg.Placements))
		for i, p := range cfg.Placements {
			specs[i] = MemberSpec{Placement: p}
		}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("%w: fleet needs at least one member", ErrBadConfig)
	}
	out := append([]MemberSpec(nil), specs...)
	for i := range out {
		if out[i].Kind > MemberProtocol {
			return nil, fmt.Errorf("%w: member %d: unknown kind %d", ErrBadConfig, i, out[i].Kind)
		}
		if out[i].Ticks < 0 {
			return nil, fmt.Errorf("%w: member %d: negative tick budget %d", ErrBadConfig, i, out[i].Ticks)
		}
		if out[i].Ticks == 0 {
			out[i].Ticks = 1
		}
	}
	return out, nil
}

// TickFunc generates member net's events for the member's tick number
// tick. It must derive randomness only from rng — the member's private
// deterministic stream — and from the session's own observable state;
// under that contract each member's results are byte-identical given its
// seed at every worker count, and identical to driving the session
// alone. DriftTick builds the standard mobility/membership profile.
type TickFunc func(net, tick int, rng *rand.Rand, s *Session) []Event

// TickProfile parameterizes DriftTick, the standard
// mobility/membership tick. internal/workload's FleetScenario carries
// matching field values for its generated placements.
type TickProfile struct {
	// Moves is the number of random live nodes jittered per tick.
	Moves int
	// Jitter is the uniform per-coordinate drift amplitude (±Jitter).
	Jitter float64
	// JoinProb and LeaveProb are the per-tick probabilities of one node
	// joining at a uniform position / one random live node leaving.
	JoinProb, LeaveProb float64
	// Width and Height bound the region: joins draw from it and moved
	// nodes are clamped to it.
	Width, Height float64
}

// DriftTick returns the standard TickFunc: each tick jitters
// p.Moves random live nodes by up to ±p.Jitter per coordinate (clamped
// to the region), then joins a fresh uniform node with probability
// p.JoinProb, then removes a random live node with probability
// p.LeaveProb. Event order (moves, join, leave) is fixed so the RNG
// consumption — and with it each member's whole history — is
// deterministic.
func DriftTick(p TickProfile) TickFunc {
	return func(_, _ int, rng *rand.Rand, s *Session) []Event {
		events := make([]Event, 0, p.Moves+2)
		for k := 0; k < p.Moves; k++ {
			id := randomLive(rng, s)
			if id < 0 {
				break
			}
			q := s.Position(id)
			q.X = clampTo(q.X+(rng.Float64()*2-1)*p.Jitter, p.Width)
			q.Y = clampTo(q.Y+(rng.Float64()*2-1)*p.Jitter, p.Height)
			events = append(events, MoveEvent(id, q))
		}
		if p.JoinProb > 0 && rng.Float64() < p.JoinProb {
			events = append(events, JoinEvent(Pt(rng.Float64()*p.Width, rng.Float64()*p.Height)))
		}
		// The leave comes last so it can never invalidate an earlier
		// event of the same batch targeting the departing node.
		if p.LeaveProb > 0 && rng.Float64() < p.LeaveProb {
			if id := randomLive(rng, s); id >= 0 {
				events = append(events, LeaveEvent(id))
			}
		}
		return events
	}
}

// LifetimeTick returns the network-lifetime TickFunc: DriftTick's
// mobility/membership profile, followed by one LeaveEvent per live node
// whose battery has emptied (Session.Depleted). Deaths come after the
// drift events so they can never invalidate an earlier event of the
// same batch, and a node the drift already removes this tick is not
// Leave'd twice. Depletion is read from the session's observable state
// and consumes no randomness, so the contract of TickFunc — member
// histories byte-identical given the seed at any worker count — holds;
// on engines without a battery model LifetimeTick degenerates to
// DriftTick exactly.
func LifetimeTick(p TickProfile) TickFunc {
	drift := DriftTick(p)
	return func(net, tick int, rng *rand.Rand, s *Session) []Event {
		events := drift(net, tick, rng, s)
		dead := s.Depleted()
		if len(dead) == 0 {
			return events
		}
		leaving := -1 // DriftTick emits at most one leave, always last
		if k := len(events) - 1; k >= 0 && events[k].Kind == EventLeave {
			leaving = events[k].ID
		}
		for _, id := range dead {
			if id != leaving {
				events = append(events, LeaveEvent(id))
			}
		}
		return events
	}
}

// randomLive draws a uniformly random live node id, by rejection over
// the session's id space. It returns -1 when no live node turns up
// (an emptied network).
func randomLive(rng *rand.Rand, s *Session) int {
	n := s.Len()
	if n == 0 {
		return -1
	}
	for tries := 0; tries < 4*n+8; tries++ {
		id := rng.IntN(n)
		if s.Alive(id) {
			return id
		}
	}
	return -1
}

func clampTo(v, hi float64) float64 {
	if v < 0 {
		return 0
	}
	if v > hi {
		return hi
	}
	return v
}

// Fleet owns M independent evolving networks — one Session each — and
// drives their reconfiguration ticks on a work-stealing scheduler with
// per-member tick clocks. Members are heterogeneous: each has its own
// engine stack, construction kind (oracle or distributed protocol) and
// per-round tick budget, and each advances at its own pace — a slow or
// large member never stalls the others' clocks beyond one bounded lease.
// Members never share mutable state: each has a private RNG stream,
// private accumulators, and a session pinned to the shard plan's inner
// worker budget, so per-member results are byte-identical given the
// member's seed at any worker count. (The PR 5 fleet-wide lockstep
// invariant — all members always at the same tick — is retired; the
// per-member invariant is the one that holds and is tested.)
//
// A Fleet serializes its own operations (Run, TickEvents, Report,
// Checkpoint may be called from any goroutine, one at a time); the
// individual sessions remain independently safe for concurrent use, and
// Watermarks reads the per-member clocks without blocking a run in
// flight.
type Fleet struct {
	eng     *Engine
	workers int

	mu      sync.Mutex
	nets    []*fleetNetwork
	hook    TickHook
	obsHook ObserveHook
}

// fleetNetwork is one member slot. Mutable state is touched only by the
// scheduler worker currently holding the member's lease (handed off
// through the ready queue, which orders the accesses) or under the fleet
// lock when no run is in flight; the clocks are atomics so Watermarks
// can read them from outside.
type fleetNetwork struct {
	net    int
	sess   *Session
	eng    *Engine // member engine; == the fleet engine without overrides
	kind   MemberKind
	weight int // ticks per fleet round (MemberSpec.Ticks)

	// src is the member's private PCG stream and rng the Rand view over
	// it. The source is retained because rand.Rand is a stateless wrapper:
	// checkpointing serializes src's ~20-byte state directly, so a
	// restored fleet resumes the exact stream position.
	src *rand.PCG
	rng *rand.Rand

	done   atomic.Int64 // completed ticks — the member's clock
	target atomic.Int64 // tick target the scheduler drives the clock to

	// health is the member's failure-domain state, atomic so Watermarks
	// and Health read it lock-free mid-run. The quarantine record is
	// guarded by its own mutex: it is written once per quarantine on a
	// worker goroutine and read by lock-free observers.
	health atomic.Uint32
	quarMu sync.Mutex
	quar   QuarantineRecord

	events int64      // events applied across all ticks
	series TickSeries // per-tick TickStats accumulators

	sched schedState
}

// quarantined reports the member's health without any lock.
func (n *fleetNetwork) quarantined() bool {
	return MemberHealth(n.health.Load()) == MemberQuarantined
}

// quarantine freezes the member: the panic and stack are recorded, and
// the health flip stops the scheduler, reports and event ingestion from
// ever touching the session again (it may be mid-mutation — Session
// locks release on panic via defer, but the state behind them is
// suspect until Readmit replaces it).
func (n *fleetNetwork) quarantine(tick int, cause any) {
	n.quarMu.Lock()
	n.quar = QuarantineRecord{
		Net:   n.net,
		Tick:  tick,
		Err:   fmt.Sprint(cause),
		Stack: string(debug.Stack()),
	}
	n.quarMu.Unlock()
	n.health.Store(uint32(MemberQuarantined))
}

// quarRecord snapshots the quarantine record.
func (n *fleetNetwork) quarRecord() QuarantineRecord {
	n.quarMu.Lock()
	defer n.quarMu.Unlock()
	return n.quar
}

// errMemberQuarantined flows from a panicking tick to the scheduler: the
// member is out, but the fleet operation continues for everyone else.
var errMemberQuarantined = errors.New("cbtc: fleet member quarantined")

// schedState is one member's scheduling telemetry. It measures wall
// clock, so unlike everything else in a report it is NOT deterministic;
// it is excluded from checkpoints and zeroed before report-equality
// assertions.
type schedState struct {
	leases   int64
	requeues int64
	timeouts int64
	busyNs   int64
	ewmaNs   int64 // flow-rate estimate of one tick's cost
}

// Lease sizing for the work-stealing scheduler. A lease aims at
// leaseTargetNs of work — the flow-rate estimate sizes the tick quantum
// so fast members batch many cheap ticks per queue round-trip while
// expensive members take one — and is hard-bounded by leaseBudgetNs:
// when a member turns slow mid-lease (churn grew it, a batch hit an
// expensive repair), the lease times out at the next tick boundary and
// the member requeues behind the others instead of monopolizing its
// worker. Vars, not consts, so tests can tighten them.
var (
	leaseTargetNs int64 = 2e6
	leaseBudgetNs int64 = 8e6
)

// maxLeaseTicks caps a lease's tick quantum — the bounded in-flight work
// per member.
const maxLeaseTicks = 32

// quantum sizes the next lease from the member's flow rate.
func (n *fleetNetwork) quantum() int {
	ewma := n.sched.ewmaNs
	if ewma <= 0 {
		return 1
	}
	q := leaseTargetNs / ewma
	if q < 1 {
		return 1
	}
	if q > maxLeaseTicks {
		return maxLeaseTicks
	}
	return int(q)
}

// tickOnce advances the member's clock by one tick and folds the
// observation into its accumulators. A panic anywhere in the tick — the
// hook, the TickFunc, or the session repair itself — is recovered here:
// the member is quarantined with its clock frozen just below the
// panicking tick, and errMemberQuarantined tells the scheduler to drop
// the member without poisoning the rest of the fleet.
func (n *fleetNetwork) tickOnce(fn TickFunc, hook TickHook, obs ObserveHook) (err error) {
	start := time.Now()
	tick := int(n.done.Load())
	defer func() {
		if r := recover(); r != nil {
			n.quarantine(tick, r)
			err = errMemberQuarantined
		}
	}()
	if hook != nil {
		hook(n.net, tick)
	}
	events := fn(n.net, tick, n.rng, n.sess)
	_, ts, err := n.sess.Tick(events)
	if err != nil {
		return fmt.Errorf("network %d tick %d: %w", n.net, tick, err)
	}
	n.events += int64(len(events))
	n.series.Observe(ts)
	if obs != nil {
		obs(n.net, tick, ts)
	}
	n.done.Add(1)
	cost := time.Since(start).Nanoseconds()
	if n.sched.ewmaNs == 0 {
		n.sched.ewmaNs = cost
	} else {
		n.sched.ewmaNs += (cost - n.sched.ewmaNs) / 4
	}
	return nil
}

// lease runs one bounded scheduling lease on the member: up to quantum()
// ticks, aborted early at a tick boundary once the time budget is
// exceeded. It reports whether the member still has ticks outstanding
// (and must requeue).
func (n *fleetNetwork) lease(ctx context.Context, fn TickFunc, hook TickHook, obs ObserveHook) (again bool, err error) {
	n.sched.leases++
	quantum := n.quantum()
	start := time.Now()
	for k := 0; k < quantum && n.done.Load() < n.target.Load(); k++ {
		if err := ctx.Err(); err != nil {
			n.sched.busyNs += time.Since(start).Nanoseconds()
			return false, err
		}
		if err := n.tickOnce(fn, hook, obs); err != nil {
			n.sched.busyNs += time.Since(start).Nanoseconds()
			return false, err
		}
		if k+1 < quantum && time.Since(start).Nanoseconds() > leaseBudgetNs {
			n.sched.timeouts++
			break
		}
	}
	n.sched.busyNs += time.Since(start).Nanoseconds()
	if n.done.Load() < n.target.Load() {
		n.sched.requeues++
		return true, nil
	}
	return false, nil
}

// NewFleet builds a Fleet from the config's member specs, running the
// initial CBTC(α) construction of every member — oracle or protocol —
// across the shard pool. Per-member options are validated up front, so
// a bad override fails before any construction work. Cancelling ctx
// aborts construction.
func (e *Engine) NewFleet(ctx context.Context, cfg FleetConfig) (*Fleet, error) {
	specs, err := cfg.members()
	if err != nil {
		return nil, err
	}
	m := len(specs)
	workers := cfg.Workers
	if workers == 0 {
		workers = e.workers
	}
	if workers < 0 {
		return nil, fmt.Errorf("%w: negative fleet worker count %d", ErrBadConfig, cfg.Workers)
	}
	engines := make([]*Engine, m)
	for i := range specs {
		if engines[i], err = e.derive(specs[i].Options...); err != nil {
			return nil, fmt.Errorf("member %d options: %w", i, err)
		}
	}
	f := &Fleet{eng: e, workers: workers, nets: make([]*fleetNetwork, m), hook: cfg.TickHook, obsHook: cfg.ObserveHook}
	plan := planShards(workers, m)
	err = plan.run(ctx, m, func(ctx context.Context, i int) error {
		spec := specs[i]
		var sess *Session
		var err error
		switch spec.Kind {
		case MemberProtocol:
			sim := spec.Sim
			if sim.Seed == 0 {
				sim.Seed = workload.Mix(cfg.Seed, uint64(i))
			}
			sess, err = engines[i].newProtocolSession(ctx, spec.Placement, sim, plan.inner)
		default:
			sess, err = engines[i].newSession(ctx, spec.Placement, plan.inner)
		}
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return ctxErr
			}
			return fmt.Errorf("network %d: %w", i, err)
		}
		src := rand.NewPCG(cfg.Seed, workload.Mix(cfg.Seed, uint64(i)))
		f.nets[i] = &fleetNetwork{
			net: i, sess: sess, eng: engines[i],
			kind: spec.Kind, weight: spec.Ticks,
			src: src, rng: rand.New(src),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Size returns the number of members in the fleet.
func (f *Fleet) Size() int { return len(f.nets) }

// Session returns member i's Session, for direct inspection. The
// session is live — it keeps evolving with subsequent fleet ticks.
func (f *Fleet) Session(i int) *Session { return f.nets[i].sess }

// MemberClock is one member's tick-clock position.
type MemberClock struct {
	// Net is the member's index in the fleet.
	Net int
	// Kind and Weight echo the member's spec.
	Kind MemberKind
	// Weight is the member's tick budget per fleet round.
	Weight int
	// Ticks and Target are the member's completed ticks and current tick
	// target.
	Ticks, Target int
	// Health is the member's failure-domain state. A quarantined member's
	// clock is frozen: Ticks stops just below the panicking tick (Target
	// may sit above it — the work the member never completed).
	Health MemberHealth
}

// TickWatermarks summarizes ragged per-member progress: Min is the
// slowest member's completed ticks, Max the fastest's. Under the
// heterogeneous scheduler Min == Max only for homogeneous fleets at
// rest; anything reporting a single fleet "tick count" reports Min —
// what every member has completed at least.
type TickWatermarks struct {
	Min, Max int
}

// FleetWatermarks is the fleet's full clock state.
type FleetWatermarks struct {
	// Ticks holds the min/max completed-tick watermarks.
	Ticks TickWatermarks
	// Members lists every member's clock in fleet order.
	Members []MemberClock
}

// Watermarks reads every member's tick clock. It is safe to call at any
// time — including while a Run is in flight on another goroutine — and
// never blocks on the fleet lock: the clocks are atomics published at
// every tick boundary, which is how the straggler tests observe that
// fast members keep advancing while a slow member lags.
func (f *Fleet) Watermarks() FleetWatermarks {
	wm := FleetWatermarks{Members: make([]MemberClock, len(f.nets))}
	for i, net := range f.nets {
		c := MemberClock{
			Net: i, Kind: net.kind, Weight: net.weight,
			Ticks:  int(net.done.Load()),
			Target: int(net.target.Load()),
			Health: MemberHealth(net.health.Load()),
		}
		wm.Members[i] = c
		if i == 0 || c.Ticks < wm.Ticks.Min {
			wm.Ticks.Min = c.Ticks
		}
		if c.Ticks > wm.Ticks.Max {
			wm.Ticks.Max = c.Ticks
		}
	}
	return wm
}

// Advance advances every member by rounds fleet rounds — member i's
// tick target grows by rounds×Weight(i) — and drives all members to
// their targets on the work-stealing scheduler, without assembling a
// report. Run is Advance followed by Report.
//
// Per member the scheduler calls fn for each tick's events and applies
// them as one batched repair; members are leased to pool workers in
// bounded tick quanta sized by each member's measured flow rate, with a
// per-lease time budget that requeues a member that turns slow, so no
// member monopolizes a worker and fast members never wait for stragglers
// beyond one lease.
//
// Cancellation drains cleanly: workers stop at the next tick boundary
// and Advance returns ctx.Err(), leaving every session at a consistent
// repaired state (mid-tick progress never leaks — a tick either applied
// fully or not at all on each member). The tick targets are retained, so
// a later Advance first catches lagging members up before adding its own
// rounds; Advance(ctx, 0, fn) completes exactly the remainder of a
// cancelled run.
//
// Failure is isolated per member: a member whose tick panics is
// quarantined (MemberQuarantined — clock frozen, panic and stack
// recorded) while every healthy member still reaches its target, and
// Advance returns a *QuarantineError listing the new casualties. An
// already-quarantined member is skipped entirely: its target does not
// grow and it causes no further error. Errors that are returned rather
// than panicked (a TickFunc emitting invalid events) keep their
// fail-fast semantics.
func (f *Fleet) Advance(ctx context.Context, rounds int, fn TickFunc) error {
	if rounds < 0 {
		return fmt.Errorf("%w: negative round count %d", ErrBadConfig, rounds)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, net := range f.nets {
		if net.quarantined() {
			continue
		}
		net.target.Add(int64(rounds) * int64(net.weight))
	}
	return f.advanceLocked(ctx, fn)
}

// advanceLocked drives every member with outstanding ticks to its
// target on the work-stealing pool: members start on a ready queue,
// each pool worker leases one member at a time for a bounded quantum,
// and members with ticks still outstanding requeue at the tail. A
// member is held by at most one worker at a time, so its tick sequence
// is serial and its results scheduling-independent.
func (f *Fleet) advanceLocked(ctx context.Context, fn TickFunc) error {
	backlog := 0
	ready := make(chan *fleetNetwork, len(f.nets))
	for _, net := range f.nets {
		if !net.quarantined() && net.done.Load() < net.target.Load() {
			ready <- net
			backlog++
		}
	}
	if backlog == 0 {
		return ctx.Err()
	}
	var pending atomic.Int64
	pending.Store(int64(backlog))
	drained := make(chan struct{})

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	var (
		casMu      sync.Mutex
		casualties []*fleetNetwork
	)
	workers := planShards(f.workers, backlog).shards
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case <-drained:
					return
				case net := <-ready:
					again, err := net.lease(ctx, fn, f.hook, f.obsHook)
					if err == errMemberQuarantined {
						// The member is out, but the fleet is not: account it
						// as finished so the healthy members keep draining.
						casMu.Lock()
						casualties = append(casualties, net)
						casMu.Unlock()
						if pending.Add(-1) == 0 {
							close(drained)
						}
						continue
					}
					if err != nil {
						fail(err)
						return
					}
					if again {
						// Each member occupies at most one queue slot, so
						// the buffered send cannot block.
						ready <- net
					} else if pending.Add(-1) == 0 {
						close(drained)
					}
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return quarantineError(casualties)
}

// quarantineError assembles a *QuarantineError (typed nil-free: a plain
// nil error when there are no casualties) in fleet order.
func quarantineError(casualties []*fleetNetwork) error {
	if len(casualties) == 0 {
		return nil
	}
	qe := &QuarantineError{Casualties: make([]QuarantineRecord, 0, len(casualties))}
	for _, net := range casualties {
		qe.Casualties = append(qe.Casualties, net.quarRecord())
	}
	slices.SortFunc(qe.Casualties, func(a, b QuarantineRecord) int { return a.Net - b.Net })
	return qe
}

// Run advances every member by rounds fleet rounds (Advance) and returns
// the aggregated FleetReport. When the advance quarantines members, Run
// still assembles the report — the healthy members' slice of it is
// complete and exact — and returns it alongside the *QuarantineError,
// so a caller that chooses to tolerate casualties loses nothing.
func (f *Fleet) Run(ctx context.Context, rounds int, fn TickFunc) (*FleetReport, error) {
	advErr := f.Advance(ctx, rounds, fn)
	var qe *QuarantineError
	if advErr != nil && !errors.As(advErr, &qe) {
		return nil, advErr
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	rep, err := f.reportLocked(ctx)
	if err != nil {
		return nil, err
	}
	return rep, advErr
}

// TickEvents advances selected members by exactly one tick each,
// applying externally-supplied event batches instead of
// TickFunc-generated ones — the ingestion path of long-lived drivers
// (cmd/fleetd) that receive Join/Leave/Move traffic from outside.
// events must hold one slot per member (len(events) == Size). A nil
// batch skips its member — the clock does not move, which is how
// external traffic produces ragged per-member watermarks; a non-nil
// (even empty) batch counts as one tick for that member.
//
// Every batch is validated against its session's current state before
// anything is applied, so an invalid batch returns an ErrBadEvent error
// with the fleet untouched. Once started the tick is atomic: ctx is
// checked only at entry, each member's batch applies as one
// Session.Tick, and per-tick statistics fold into the same accumulators
// Run feeds.
//
// TickEvents requires each ticked member to be caught up to its tick
// target; after a cancelled Run or Advance, complete the remainder
// first with Advance(ctx, 0, fn). A non-nil batch for a quarantined
// member is refused up front (ErrBadEvent) with the fleet untouched —
// check Fleet.Health and route such traffic elsewhere. A member whose
// tick panics during the call is quarantined exactly as under Advance:
// the other ticked members complete their batches, and TickEvents
// returns a *QuarantineError naming the casualties (whose batches did
// not commit — their events must be considered lost until the member is
// readmitted or the state replayed).
func (f *Fleet) TickEvents(ctx context.Context, events [][]Event) error {
	if len(events) != len(f.nets) {
		return fmt.Errorf("%w: %d event batches for %d networks", ErrBadEvent, len(events), len(f.nets))
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var ticked []int
	for i, net := range f.nets {
		if events[i] == nil {
			continue
		}
		if net.quarantined() {
			return fmt.Errorf("%w: network %d is quarantined (%s); readmit it before sending it events", ErrBadEvent, i, net.quarRecord().Err)
		}
		if done, target := net.done.Load(), net.target.Load(); done != target {
			return fmt.Errorf("%w: network %d is at tick %d but its target is %d; finish the interrupted run first", ErrBadEvent, i, done, target)
		}
		if err := net.sess.ValidateBatch(events[i]); err != nil {
			return fmt.Errorf("network %d: %w", i, err)
		}
		ticked = append(ticked, i)
	}
	if len(ticked) == 0 {
		return nil
	}
	for _, i := range ticked {
		f.nets[i].target.Add(1)
	}
	var (
		casMu      sync.Mutex
		casualties []*fleetNetwork
	)
	plan := planShards(f.workers, len(ticked))
	// Background context: the pre-validated tick must complete atomically,
	// or a cancellation would strand members mid-batch with their external
	// events lost.
	err := plan.run(context.Background(), len(ticked), func(_ context.Context, k int) error {
		i := ticked[k]
		net := f.nets[i]
		if err := net.tickEvents(f.hook, f.obsHook, events[i]); err != nil {
			if err == errMemberQuarantined {
				casMu.Lock()
				casualties = append(casualties, net)
				casMu.Unlock()
				return nil
			}
			return err
		}
		return nil
	})
	if err != nil {
		return err
	}
	return quarantineError(casualties)
}

// tickEvents applies one externally-supplied batch as the member's next
// tick, with the same panic-quarantine envelope as tickOnce.
func (n *fleetNetwork) tickEvents(hook TickHook, obs ObserveHook, events []Event) (err error) {
	tick := int(n.done.Load())
	defer func() {
		if r := recover(); r != nil {
			n.quarantine(tick, r)
			err = errMemberQuarantined
		}
	}()
	if hook != nil {
		hook(n.net, tick)
	}
	_, ts, err := n.sess.Tick(events)
	if err != nil {
		return fmt.Errorf("network %d tick %d: %w", n.net, tick, err)
	}
	n.events += int64(len(events))
	n.series.Observe(ts)
	if obs != nil {
		obs(n.net, tick, ts)
	}
	n.done.Add(1)
	return nil
}

// MemberHealthStatus is one member's health slot in a FleetHealth.
type MemberHealthStatus struct {
	// Net is the member's index in the fleet.
	Net int
	// Health is the member's failure-domain state.
	Health MemberHealth
	// Quarantine holds the member's quarantine record when Health is
	// MemberQuarantined, nil otherwise.
	Quarantine *QuarantineRecord
}

// FleetHealth is the fleet's failure-domain summary.
type FleetHealth struct {
	// Healthy and Quarantined count members per health state.
	Healthy, Quarantined int
	// Members lists every member's status in fleet order.
	Members []MemberHealthStatus
}

// Health reads every member's failure-domain state. Like Watermarks it
// is lock-free and safe to call while a Run is in flight — it is how a
// driver notices casualties as they happen rather than at the end of
// the round.
func (f *Fleet) Health() FleetHealth {
	h := FleetHealth{Members: make([]MemberHealthStatus, len(f.nets))}
	for i, net := range f.nets {
		st := MemberHealthStatus{Net: i, Health: MemberHealth(net.health.Load())}
		if st.Health == MemberQuarantined {
			rec := net.quarRecord()
			st.Quarantine = &rec
			h.Quarantined++
		} else {
			h.Healthy++
		}
		h.Members[i] = st
	}
	return h
}

// SetTickHook installs (or, with nil, removes) the fleet's TickHook —
// the same hook FleetConfig.TickHook sets at construction, exposed as a
// setter so restored fleets (Engine.RestoreFleet) can be instrumented
// too. It must not be called while a Run, Advance or TickEvents is in
// flight.
func (f *Fleet) SetTickHook(h TickHook) {
	f.mu.Lock()
	f.hook = h
	f.mu.Unlock()
}

// SetObserveHook installs (or, with nil, removes) the fleet's
// ObserveHook — the same hook FleetConfig.ObserveHook sets at
// construction, exposed as a setter so restored fleets can be
// instrumented too. It must not be called while a Run, Advance or
// TickEvents is in flight.
func (f *Fleet) SetObserveHook(h ObserveHook) {
	f.mu.Lock()
	f.obsHook = h
	f.mu.Unlock()
}

// Observe sums every healthy member's current TickStats into one
// fleet-wide aggregate: Live, Edges, Components and Energy add across
// members (a fleet of m connected networks reports m components), the
// degree/radius averages are live-node-weighted means, and the battery
// fields pool across battery-model members only — Residual is the mean
// residual over their live nodes and EnergyVar the pooled population
// variance (within-member variance plus between-member mean spread), so
// a mixed fleet's non-battery members never drag the energy picture
// toward zero. Each member's read is the session's O(changed) Observe,
// so the whole call is cheap enough for liveness surfaces — cmd/fleetd's
// /healthz reports the component total through it on every probe.
// Quarantined members are skipped: their sessions are unreadable until
// readmitted.
func (f *Fleet) Observe() (TickStats, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var agg TickStats
	var radiusSum float64
	var batLive int
	var resSum, resSqSum float64 // Σ live·mean, Σ live·E[b²] over battery members
	for _, net := range f.nets {
		if net.quarantined() {
			continue
		}
		ts, err := net.sess.Observe()
		if err != nil {
			return TickStats{}, fmt.Errorf("network %d: %w", net.net, err)
		}
		agg.Live += ts.Live
		agg.Edges += ts.Edges
		agg.Components += ts.Components
		agg.Energy += ts.Energy
		radiusSum += ts.AvgRadius * float64(ts.Live)
		if net.eng.battery {
			batLive += ts.Live
			resSum += ts.Residual * float64(ts.Live)
			resSqSum += (ts.EnergyVar + ts.Residual*ts.Residual) * float64(ts.Live)
		}
	}
	if agg.Live > 0 {
		agg.AvgDegree = 2 * float64(agg.Edges) / float64(agg.Live)
		agg.AvgRadius = radiusSum / float64(agg.Live)
	}
	if batLive > 0 {
		mean := resSum / float64(batLive)
		agg.Residual = mean
		v := resSqSum/float64(batLive) - mean*mean
		if v < 0 { // floating-point cancellation on near-equal members
			v = 0
		}
		agg.EnergyVar = v
	}
	return agg, nil
}

// Report aggregates the fleet's current state into a FleetReport
// without advancing any ticks.
func (f *Fleet) Report() (*FleetReport, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reportLocked(context.Background())
}

// NetworkReport assembles member i's slice of the fleet report alone —
// the drill-down shape fleetd serves as GET /network/{i}, so the HTTP
// JSON and the Go API share field names exactly.
func (f *Fleet) NetworkReport(i int) (*FleetNetworkReport, error) {
	if i < 0 || i >= len(f.nets) {
		return nil, fmt.Errorf("%w: no network %d in a fleet of %d", ErrBadConfig, i, len(f.nets))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	nr, err := f.networkReportLocked(i)
	if err != nil {
		return nil, err
	}
	return &nr, nil
}

// networkReportLocked builds one member's report slot. A quarantined
// member's session is never touched — it may be mid-mutation from the
// panicking tick — so its slot carries the clock, the accumulated
// history (events, series) and the quarantine record, with the
// live-state fields (Final, Preserved, Stats, DegreeDist) zeroed.
func (f *Fleet) networkReportLocked(i int) (FleetNetworkReport, error) {
	net := f.nets[i]
	if net.quarantined() {
		rec := net.quarRecord()
		return FleetNetworkReport{
			Net:        i,
			Kind:       net.kind,
			Weight:     net.weight,
			Ticks:      int(net.done.Load()),
			Target:     int(net.target.Load()),
			Events:     int(net.events),
			Series:     net.series,
			Health:     MemberQuarantined,
			Quarantine: &rec,
			Sched: MemberSchedStats{
				Leases:   net.sched.leases,
				Requeues: net.sched.requeues,
				Timeouts: net.sched.timeouts,
				BusyNs:   net.sched.busyNs,
				TickNs:   net.sched.ewmaNs,
			},
		}, nil
	}
	snap, err := net.sess.Snapshot()
	if err != nil {
		return FleetNetworkReport{}, fmt.Errorf("network %d snapshot: %w", i, err)
	}
	ts, err := net.sess.Observe()
	if err != nil {
		return FleetNetworkReport{}, fmt.Errorf("network %d: %w", i, err)
	}
	nr := FleetNetworkReport{
		Net:       i,
		Kind:      net.kind,
		Weight:    net.weight,
		Ticks:     int(net.done.Load()),
		Target:    int(net.target.Load()),
		Events:    int(net.events),
		Final:     ts,
		Preserved: snap.PreservesConnectivity(),
		Stats:     net.sess.Stats(),
		Series:    net.series,
		Sched: MemberSchedStats{
			Leases:   net.sched.leases,
			Requeues: net.sched.requeues,
			Timeouts: net.sched.timeouts,
			BusyNs:   net.sched.busyNs,
			TickNs:   net.sched.ewmaNs,
		},
	}
	for id := 0; id < net.sess.Len(); id++ {
		if net.sess.Alive(id) {
			nr.DegreeDist.Add(snap.G.Degree(id))
		}
	}
	return nr, nil
}

// reportLocked assembles the report in two phases: the per-member
// snapshots fan across the shard pool into disjoint slots, then the
// aggregate accumulators merge serially in fleet order — so the merged
// floats, like everything else in the report except Sched, are
// independent of scheduling. Cancelling ctx aborts between snapshots
// (they can be full rebuilds on pairwise-stack members).
func (f *Fleet) reportLocked(ctx context.Context) (*FleetReport, error) {
	rep := &FleetReport{
		Networks:   len(f.nets),
		PerNetwork: make([]FleetNetworkReport, len(f.nets)),
	}
	plan := planShards(f.workers, len(f.nets))
	err := plan.run(ctx, len(f.nets), func(_ context.Context, i int) error {
		nr, err := f.networkReportLocked(i)
		if err != nil {
			return err
		}
		rep.PerNetwork[i] = nr
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range rep.PerNetwork {
		nr := &rep.PerNetwork[i]
		if i == 0 || nr.Ticks < rep.Watermarks.Min {
			rep.Watermarks.Min = nr.Ticks
		}
		if nr.Ticks > rep.Watermarks.Max {
			rep.Watermarks.Max = nr.Ticks
		}
		rep.Events += nr.Events
		if nr.Health == MemberQuarantined {
			// The member's completed history (Events, Series) is fact and
			// stays in the aggregate; its unreadable live state does not.
			rep.Quarantined++
		} else {
			rep.Live += nr.Final.Live
			rep.Edges += nr.Final.Edges
			if nr.Preserved {
				rep.Preserved++
			}
			rep.DegreeDist.Merge(&nr.DegreeDist)
		}
		rep.Series.Merge(&nr.Series)
	}
	return rep, nil
}

// FleetReport aggregates a fleet's state across members. Everything in
// it — the per-member slots and the merged accumulators — is a pure
// function of the fleet's configuration and tick schedule, independent
// of the worker count the fleet ran with, except the per-member Sched
// telemetry, which measures wall clock.
type FleetReport struct {
	// Networks is the fleet size M.
	Networks int
	// Watermarks holds the min/max completed-tick counts across members.
	// Under heterogeneous tick budgets there is no single fleet tick
	// count: Min is what every member has completed at least (the PR 5
	// Ticks field's implicit meaning, now explicit), Max the fastest
	// member's clock.
	Watermarks TickWatermarks
	// Events is the total number of events applied across all members.
	Events int
	// Live and Edges total the live nodes and topology edges at report
	// time.
	Live, Edges int
	// Preserved counts members whose snapshot preserves the ground-truth
	// partition (Theorem 2.1's guarantee). Quarantined members are never
	// counted.
	Preserved int
	// Quarantined counts members under quarantine at report time. Their
	// live-state fields are excluded from Live, Edges, Preserved and
	// DegreeDist; their completed history stays in Events and Series.
	Quarantined int
	// Series merges every member's per-tick TickStats series: one
	// observation per member per completed tick.
	Series TickSeries
	// DegreeDist is the distribution of live-node degrees at report
	// time, across all members.
	DegreeDist stats.IntHist
	// PerNetwork holds each member's report in fleet order.
	PerNetwork []FleetNetworkReport
}

// MemberSchedStats is one member's work-stealing telemetry: how the
// scheduler actually served it. It measures wall clock and is therefore
// not deterministic — it is excluded from checkpoints and must be
// zeroed before byte-identity comparisons of reports.
type MemberSchedStats struct {
	// Leases counts scheduling leases granted to the member.
	Leases int64
	// Requeues counts leases that ended with ticks still outstanding.
	Requeues int64
	// Timeouts counts leases aborted early because the member exceeded
	// the per-lease time budget — the straggler path.
	Timeouts int64
	// BusyNs is the total wall-clock time workers spent driving the
	// member.
	BusyNs int64
	// TickNs is the scheduler's flow-rate estimate (EWMA) of one tick's
	// cost.
	TickNs int64
}

// FleetNetworkReport is one member's slice of a FleetReport.
type FleetNetworkReport struct {
	// Net is the member's index in the fleet.
	Net int
	// Kind and Weight echo the member's spec.
	Kind MemberKind
	// Weight is the member's tick budget per fleet round.
	Weight int
	// Ticks and Target are the member's completed ticks and current tick
	// target (equal unless a run was cancelled mid-flight).
	Ticks, Target int
	// Events counts the member's applied events.
	Events int
	// Final is the member's topology metrics at report time.
	Final TickStats
	// Preserved reports whether the member's snapshot preserves the
	// ground-truth partition.
	Preserved bool
	// Stats are the session's cumulative §4 reconfiguration counts.
	Stats SessionStats
	// Series accumulates the member's per-tick TickStats series.
	Series TickSeries
	// DegreeDist is the member's live-node degree distribution at report
	// time.
	DegreeDist stats.IntHist
	// Health is the member's failure-domain state. When it is
	// MemberQuarantined the live-state fields (Final, Preserved, Stats,
	// DegreeDist) are zero — the session is not readable — and Quarantine
	// holds the record.
	Health MemberHealth
	// Quarantine is the member's quarantine record, nil while healthy.
	Quarantine *QuarantineRecord
	// Sched is the member's scheduling telemetry (wall clock — not
	// deterministic).
	Sched MemberSchedStats
}
