package cbtc

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"

	"cbtc/internal/stats"
	"cbtc/internal/workload"
)

// FleetConfig configures Engine.NewFleet.
type FleetConfig struct {
	// Placements are the M initial networks; network i starts from
	// Placements[i]. At least one placement is required.
	Placements [][]Point
	// Seed derives every network's private tick RNG (a decorrelated
	// splitmix stream per network), so a fleet is reproducible from its
	// placements and one seed, at any worker count.
	Seed uint64
	// Workers sizes the fleet's shard pool. Zero means the engine's
	// worker budget (WithWorkers; GOMAXPROCS by default); one drives
	// the fleet serially.
	Workers int
}

// TickFunc generates network net's events for synchronized tick number
// tick. It must derive randomness only from rng — the network's private
// deterministic stream — and from the session's own observable state;
// under that contract a fleet's per-network results are byte-identical
// at every worker count, and identical to driving each session alone.
// DriftTick builds the standard mobility/membership profile.
type TickFunc func(net, tick int, rng *rand.Rand, s *Session) []Event

// TickProfile parameterizes DriftTick, the standard synchronized
// mobility/membership tick. internal/workload's FleetScenario carries
// matching field values for its generated placements.
type TickProfile struct {
	// Moves is the number of random live nodes jittered per tick.
	Moves int
	// Jitter is the uniform per-coordinate drift amplitude (±Jitter).
	Jitter float64
	// JoinProb and LeaveProb are the per-tick probabilities of one node
	// joining at a uniform position / one random live node leaving.
	JoinProb, LeaveProb float64
	// Width and Height bound the region: joins draw from it and moved
	// nodes are clamped to it.
	Width, Height float64
}

// DriftTick returns the standard TickFunc: each tick jitters
// p.Moves random live nodes by up to ±p.Jitter per coordinate (clamped
// to the region), then joins a fresh uniform node with probability
// p.JoinProb, then removes a random live node with probability
// p.LeaveProb. Event order (moves, join, leave) is fixed so the RNG
// consumption — and with it the whole fleet — is deterministic.
func DriftTick(p TickProfile) TickFunc {
	return func(_, _ int, rng *rand.Rand, s *Session) []Event {
		events := make([]Event, 0, p.Moves+2)
		for k := 0; k < p.Moves; k++ {
			id := randomLive(rng, s)
			if id < 0 {
				break
			}
			q := s.Position(id)
			q.X = clampTo(q.X+(rng.Float64()*2-1)*p.Jitter, p.Width)
			q.Y = clampTo(q.Y+(rng.Float64()*2-1)*p.Jitter, p.Height)
			events = append(events, MoveEvent(id, q))
		}
		if p.JoinProb > 0 && rng.Float64() < p.JoinProb {
			events = append(events, JoinEvent(Pt(rng.Float64()*p.Width, rng.Float64()*p.Height)))
		}
		// The leave comes last so it can never invalidate an earlier
		// event of the same batch targeting the departing node.
		if p.LeaveProb > 0 && rng.Float64() < p.LeaveProb {
			if id := randomLive(rng, s); id >= 0 {
				events = append(events, LeaveEvent(id))
			}
		}
		return events
	}
}

// randomLive draws a uniformly random live node id, by rejection over
// the session's id space. It returns -1 when no live node turns up
// (an emptied network).
func randomLive(rng *rand.Rand, s *Session) int {
	n := s.Len()
	if n == 0 {
		return -1
	}
	for tries := 0; tries < 4*n+8; tries++ {
		id := rng.IntN(n)
		if s.Alive(id) {
			return id
		}
	}
	return -1
}

func clampTo(v, hi float64) float64 {
	if v < 0 {
		return 0
	}
	if v > hi {
		return hi
	}
	return v
}

// Fleet owns M independent evolving networks — one Session each — and
// drives synchronized reconfiguration ticks across them on a shard
// scheduler: every network advances through the same tick schedule,
// each tick applied as one Session.ApplyBatch repair, with cross-network
// statistics aggregated into a FleetReport through mergeable streaming
// accumulators. Networks never share mutable state: each has a private
// RNG stream, a private accumulator slot, and a session pinned to the
// shard plan's inner worker budget, so per-network results are
// byte-identical at any worker count.
//
// A Fleet serializes its own operations (Run and Report may be called
// from any goroutine, one at a time); the individual sessions remain
// independently safe for concurrent use.
type Fleet struct {
	eng     *Engine
	workers int

	mu     sync.Mutex
	nets   []*fleetNetwork
	target int // ticks every network must reach
}

// fleetNetwork is one shard slot: all mutable per-network state lives
// here, touched only by the single shard goroutine currently driving
// network i (shard slots are disjoint) or under the fleet lock.
type fleetNetwork struct {
	sess *Session
	// src is the network's private PCG stream and rng the Rand view over
	// it. The source is retained because rand.Rand is a stateless wrapper:
	// checkpointing serializes src's ~20-byte state directly, so a
	// restored fleet resumes the exact stream position.
	src    *rand.PCG
	rng    *rand.Rand
	done   int // completed ticks
	events int // events applied across all ticks

	degree, radius, comps, energy stats.Stream
}

// NewFleet builds a Fleet of len(cfg.Placements) networks, running the
// initial CBTC(α) computation of every network across the shard pool.
// Cancelling ctx aborts construction.
func (e *Engine) NewFleet(ctx context.Context, cfg FleetConfig) (*Fleet, error) {
	m := len(cfg.Placements)
	if m == 0 {
		return nil, fmt.Errorf("%w: fleet needs at least one placement", ErrBadConfig)
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = e.workers
	}
	if workers < 0 {
		return nil, fmt.Errorf("%w: negative fleet worker count %d", ErrBadConfig, cfg.Workers)
	}
	f := &Fleet{eng: e, workers: workers, nets: make([]*fleetNetwork, m)}
	plan := planShards(workers, m)
	err := plan.run(ctx, m, func(ctx context.Context, i int) error {
		sess, err := e.newSession(ctx, cfg.Placements[i], plan.inner)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return ctxErr
			}
			return fmt.Errorf("network %d: %w", i, err)
		}
		src := rand.NewPCG(cfg.Seed, workload.Mix(cfg.Seed, uint64(i)))
		f.nets[i] = &fleetNetwork{sess: sess, src: src, rng: rand.New(src)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Size returns the number of networks in the fleet.
func (f *Fleet) Size() int { return len(f.nets) }

// Session returns network i's Session, for direct inspection. The
// session is live — it keeps evolving with subsequent fleet ticks.
func (f *Fleet) Session(i int) *Session { return f.nets[i].sess }

// Run advances every network by ticks synchronized ticks and returns
// the aggregated FleetReport. Per tick and per network it calls fn for
// the tick's events, applies them as one batched repair, and folds the
// repaired topology's TickStats into the network's accumulators.
//
// Cancellation drains cleanly: shards stop at the next tick boundary
// and Run returns ctx.Err(), leaving every session at a consistent
// repaired state (mid-tick progress never leaks — a tick either applied
// fully or not at all on each network). The requested tick target is
// retained, so a later Run first catches lagging networks up before
// adding its own ticks; Run(ctx, 0, fn) completes exactly the remainder
// of a cancelled run.
func (f *Fleet) Run(ctx context.Context, ticks int, fn TickFunc) (*FleetReport, error) {
	if ticks < 0 {
		return nil, fmt.Errorf("%w: negative tick count %d", ErrBadConfig, ticks)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.target += ticks
	plan := planShards(f.workers, len(f.nets))
	err := plan.run(ctx, len(f.nets), func(ctx context.Context, i int) error {
		net := f.nets[i]
		for net.done < f.target {
			if err := ctx.Err(); err != nil {
				return err
			}
			events := fn(i, net.done, net.rng, net.sess)
			_, ts, err := net.sess.Tick(events)
			if err != nil {
				return fmt.Errorf("network %d tick %d: %w", i, net.done, err)
			}
			net.events += len(events)
			net.degree.Add(ts.AvgDegree)
			net.radius.Add(ts.AvgRadius)
			net.comps.Add(float64(ts.Components))
			net.energy.Add(ts.Energy)
			net.done++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return f.reportLocked(ctx)
}

// TickEvents advances every network by exactly one synchronized tick,
// applying externally-supplied event batches instead of TickFunc-generated
// ones — the ingestion path of long-lived drivers (cmd/fleetd) that
// receive Join/Leave/Move traffic from outside. events must hold one
// batch per network (len(events) == Size; empty batches are fine).
//
// Every batch is validated against its session's current state before
// anything is applied, so an invalid batch returns an ErrBadEvent error
// with the fleet untouched. Once started the tick is atomic: ctx is
// checked only at entry, each network's batch applies as one
// Session.Tick, and per-tick statistics fold into the same accumulators
// Run feeds — a fleet driven by TickEvents reports exactly like one
// driven by Run over the same event schedule, at any worker count.
//
// TickEvents requires every network to be caught up to the fleet's tick
// target; after a cancelled Run, complete the remainder first with
// Run(ctx, 0, fn).
func (f *Fleet) TickEvents(ctx context.Context, events [][]Event) error {
	if len(events) != len(f.nets) {
		return fmt.Errorf("%w: %d event batches for %d networks", ErrBadEvent, len(events), len(f.nets))
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, net := range f.nets {
		if net.done != f.target {
			return fmt.Errorf("%w: network %d is at tick %d but the fleet target is %d; finish the interrupted Run first", ErrBadEvent, i, net.done, f.target)
		}
		if err := net.sess.ValidateBatch(events[i]); err != nil {
			return fmt.Errorf("network %d: %w", i, err)
		}
	}
	f.target++
	plan := planShards(f.workers, len(f.nets))
	// Background context: the pre-validated tick must complete atomically,
	// or a cancellation would strand networks at different tick counts
	// with their external batches lost.
	err := plan.run(context.Background(), len(f.nets), func(_ context.Context, i int) error {
		net := f.nets[i]
		_, ts, err := net.sess.Tick(events[i])
		if err != nil {
			return fmt.Errorf("network %d tick %d: %w", i, net.done, err)
		}
		net.events += len(events[i])
		net.degree.Add(ts.AvgDegree)
		net.radius.Add(ts.AvgRadius)
		net.comps.Add(float64(ts.Components))
		net.energy.Add(ts.Energy)
		net.done++
		return nil
	})
	return err
}

// Report aggregates the fleet's current state into a FleetReport
// without advancing any ticks.
func (f *Fleet) Report() (*FleetReport, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reportLocked(context.Background())
}

// reportLocked assembles the report in two phases: the per-network
// snapshots fan across the shard pool into disjoint slots, then the
// aggregate accumulators merge serially in network order — so the
// merged floats, like everything else in the report, are independent
// of scheduling. Cancelling ctx aborts between snapshots (they can be
// full rebuilds on pairwise-stack fleets).
func (f *Fleet) reportLocked(ctx context.Context) (*FleetReport, error) {
	rep := &FleetReport{
		Networks:   len(f.nets),
		PerNetwork: make([]FleetNetworkReport, len(f.nets)),
	}
	plan := planShards(f.workers, len(f.nets))
	err := plan.run(ctx, len(f.nets), func(_ context.Context, i int) error {
		net := f.nets[i]
		snap, err := net.sess.Snapshot()
		if err != nil {
			return fmt.Errorf("network %d snapshot: %w", i, err)
		}
		ts, err := net.sess.Observe()
		if err != nil {
			return fmt.Errorf("network %d: %w", i, err)
		}
		nr := FleetNetworkReport{
			Net:        i,
			Ticks:      net.done,
			Events:     net.events,
			Final:      ts,
			Preserved:  snap.PreservesConnectivity(),
			Stats:      net.sess.Stats(),
			Degree:     net.degree,
			Radius:     net.radius,
			Components: net.comps,
			Energy:     net.energy,
		}
		for id := 0; id < net.sess.Len(); id++ {
			if net.sess.Alive(id) {
				nr.DegreeDist.Add(snap.G.Degree(id))
			}
		}
		rep.PerNetwork[i] = nr
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.Ticks = rep.PerNetwork[0].Ticks
	for i := range rep.PerNetwork {
		nr := &rep.PerNetwork[i]
		if nr.Ticks < rep.Ticks {
			rep.Ticks = nr.Ticks
		}
		rep.Events += nr.Events
		rep.Live += nr.Final.Live
		rep.Edges += nr.Final.Edges
		if nr.Preserved {
			rep.Preserved++
		}
		rep.Degree.Merge(&nr.Degree)
		rep.Radius.Merge(&nr.Radius)
		rep.Components.Merge(&nr.Components)
		rep.Energy.Merge(&nr.Energy)
		rep.DegreeDist.Merge(&nr.DegreeDist)
	}
	return rep, nil
}

// FleetReport aggregates a fleet's state across networks. Everything in
// it — the per-network slots and the merged accumulators — is a pure
// function of the fleet's configuration and tick schedule, independent
// of the worker count the fleet ran with.
type FleetReport struct {
	// Networks is the fleet size M.
	Networks int
	// Ticks is the number of completed synchronized ticks — of the
	// slowest network, when a cancelled Run left ragged progress.
	Ticks int
	// Events is the total number of events applied across all networks.
	Events int
	// Live and Edges total the live nodes and topology edges at report
	// time.
	Live, Edges int
	// Preserved counts networks whose snapshot preserves the
	// ground-truth partition (Theorem 2.1's guarantee).
	Preserved int
	// Degree, Radius, Components and Energy merge every network's
	// per-tick TickStats series: one observation per network per tick.
	Degree, Radius, Components, Energy stats.Stream
	// DegreeDist is the distribution of live-node degrees at report
	// time, across all networks.
	DegreeDist stats.IntHist
	// PerNetwork holds each network's report in fleet order.
	PerNetwork []FleetNetworkReport
}

// FleetNetworkReport is one network's slice of a FleetReport.
type FleetNetworkReport struct {
	// Net is the network's index in the fleet.
	Net int
	// Ticks and Events count the network's completed ticks and applied
	// events.
	Ticks, Events int
	// Final is the network's topology metrics at report time.
	Final TickStats
	// Preserved reports whether the network's snapshot preserves the
	// ground-truth partition.
	Preserved bool
	// Stats are the session's cumulative §4 reconfiguration counts.
	Stats SessionStats
	// Degree, Radius, Components and Energy accumulate the network's
	// per-tick TickStats series.
	Degree, Radius, Components, Energy stats.Stream
	// DegreeDist is the network's live-node degree distribution at
	// report time.
	DegreeDist stats.IntHist
}
