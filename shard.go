package cbtc

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// shardPlan resolves how n independent units of work — batch placements,
// fleet networks, comparison specs — spread across an engine's worker
// budget. Shards is the number of pool goroutines; Inner is the nested
// per-unit worker budget each shard may spend (on the parallel oracle,
// on session repair) without oversubscribing the scheduler. When there
// are at least as many units as workers the pool saturates on unit-level
// parallelism alone and Inner is 1; when there are fewer units than
// workers — a small batch on a big machine — the leftover cores are
// handed down so they are not wasted.
type shardPlan struct {
	shards int
	inner  int
}

// planShards sizes a shard pool for n units under a worker budget
// (workers <= 0 means GOMAXPROCS). The plan is deterministic in its
// inputs; because every nested consumer of Inner is worker-count
// invariant, the budget split never affects results, only throughput.
func planShards(workers, n int) shardPlan {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shards := workers
	if n > 0 && shards > n {
		shards = n
	}
	return shardPlan{shards: shards, inner: workers / shards}
}

// run executes fn(ctx, i) for every i in [0, n) across the plan's
// shard goroutines; results must be written to per-i slots, which
// keeps the output independent of scheduling. Indices are handed out
// through an atomic counter — a sharded work queue with no per-item
// channel traffic — so heterogeneous unit costs balance automatically.
// The first error cancels the pool and is returned; cancellation of
// ctx yields ctx.Err().
func (p shardPlan) run(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	workers := p.shards
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					return
				}
				if err := fn(ctx, i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
