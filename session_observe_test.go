package cbtc

import (
	"bytes"
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"

	"cbtc/internal/workload"
)

// observeStacks are the option stacks the O(changed) Observe path is
// proved equivalent under: the default incremental stack, incremental
// with asymmetric-edge removal, the bare basic algorithm, and the
// pairwise-removal stack that falls back to the snapshot scan.
var observeStacks = []struct {
	name string
	opts []Option
}{
	{"shrink-back", []Option{WithMaxRadius(500), WithShrinkBack()}},
	{"asym", []Option{WithMaxRadius(500), WithAlpha(AlphaAsymmetric), WithShrinkBack(), WithAsymmetricRemoval()}},
	{"plain", []Option{WithMaxRadius(500)}},
	{"pairwise", []Option{WithMaxRadius(500), WithAllOptimizations()}},
}

// referenceObserve computes TickStats the expensive way — a snapshot,
// a component BFS, and a fresh per-node radius fold — bypassing every
// maintained aggregate. The incremental path must match it exactly:
// integers with ==, floats bitwise.
func referenceObserve(t *testing.T, s *Session) TickStats {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, err := s.snapshotLocked()
	if err != nil {
		t.Fatal(err)
	}
	return observeGraph(snap.G, s.alive, s.pos, s.nodes)
}

func requireObserveMatches(t *testing.T, step string, s *Session) {
	t.Helper()
	got, err := s.Observe()
	if err != nil {
		t.Fatalf("%s: Observe: %v", step, err)
	}
	want := referenceObserve(t, s)
	if got != want {
		t.Fatalf("%s: Observe = %+v, reference = %+v", step, got, want)
	}
	if lc := s.LiveCount(); lc != want.Live {
		t.Fatalf("%s: LiveCount = %d, reference live = %d", step, lc, want.Live)
	}
}

// TestSessionObserveLockstep drives random Join/Leave/Move/ApplyBatch
// interleavings and asserts the maintained Observe equals the reference
// full scan after every event, on every option stack.
func TestSessionObserveLockstep(t *testing.T) {
	const side = 2000.0
	ctx := context.Background()
	for _, stack := range observeStacks {
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", stack.name, seed), func(t *testing.T) {
				t.Parallel()
				eng, err := New(stack.opts...)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewPCG(seed, 991))
				pts := workload.Uniform(rng, 40, side, side)
				s, err := eng.NewSession(ctx, pts)
				if err != nil {
					t.Fatal(err)
				}
				requireObserveMatches(t, "initial", s)

				randPoint := func() Point {
					return Point{X: rng.Float64() * side, Y: rng.Float64() * side}
				}
				liveIDs := func() []int {
					var ids []int
					for id := 0; id < s.Len(); id++ {
						if s.Alive(id) {
							ids = append(ids, id)
						}
					}
					return ids
				}
				randEvent := func() Event {
					ids := liveIDs()
					switch op := rng.IntN(6); {
					case op < 2 && len(ids) > 4:
						return LeaveEvent(ids[rng.IntN(len(ids))])
					case op < 4 && len(ids) > 0:
						return MoveEvent(ids[rng.IntN(len(ids))], randPoint())
					default:
						return JoinEvent(randPoint())
					}
				}
				for step := 0; step < 60; step++ {
					if rng.IntN(4) == 0 {
						// A batch tick: several events through one repair.
						events := make([]Event, 1+rng.IntN(4))
						for i := range events {
							events[i] = randEvent()
						}
						// Same-id collisions (move after leave) are
						// rejected up front; skip those batches.
						if s.ValidateBatch(events) != nil {
							continue
						}
						if _, err := s.ApplyBatch(events); err != nil {
							t.Fatalf("step %d: ApplyBatch: %v", step, err)
						}
						requireObserveMatches(t, fmt.Sprintf("step %d (batch)", step), s)
						continue
					}
					e := randEvent()
					var err error
					switch e.Kind {
					case EventJoin:
						_, _ = s.Join(e.Pos)
					case EventLeave:
						_, err = s.Leave(e.ID)
					case EventMove:
						_, err = s.Move(e.ID, e.Pos)
					}
					if err != nil {
						t.Fatalf("step %d: %v: %v", step, e.Kind, err)
					}
					requireObserveMatches(t, fmt.Sprintf("step %d (%v)", step, e.Kind), s)
				}
			})
		}
	}
}

// TestSessionObserveRestoreIdentity proves checkpoint→restore keeps
// Observe byte-identical: the restored session re-derives its
// maintained aggregates from the same graphs, so every field — floats
// included — must compare equal, before and after further events.
func TestSessionObserveRestoreIdentity(t *testing.T) {
	ctx := context.Background()
	for _, stack := range observeStacks {
		t.Run(stack.name, func(t *testing.T) {
			eng, err := New(stack.opts...)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewPCG(17, 3))
			s, err := eng.NewSession(ctx, workload.Uniform(rng, 60, 2000, 2000))
			if err != nil {
				t.Fatal(err)
			}
			// Dirty the session so the maintained state is mid-flight,
			// not fresh-from-construction.
			s.Join(Point{X: 120, Y: 340})
			if _, err := s.Leave(3); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Move(7, Point{X: 900, Y: 1100}); err != nil {
				t.Fatal(err)
			}
			before, err := s.Observe()
			if err != nil {
				t.Fatal(err)
			}

			var buf bytes.Buffer
			if err := s.Checkpoint(&buf); err != nil {
				t.Fatal(err)
			}
			r, err := eng.RestoreSession(&buf)
			if err != nil {
				t.Fatal(err)
			}
			after, err := r.Observe()
			if err != nil {
				t.Fatal(err)
			}
			if before != after {
				t.Fatalf("restore changed Observe: before %+v, after %+v", before, after)
			}
			// The restored session keeps the O(changed) invariants as it
			// keeps moving.
			r.Join(Point{X: 55, Y: 66})
			if _, err := r.Leave(10); err != nil {
				t.Fatal(err)
			}
			requireObserveMatches(t, "post-restore events", r)
		})
	}
}

// TestFleetObserveConcurrent is the -race soak: Observe (per-session
// and fleet-wide) hammered from reader goroutines while the fleet
// scheduler is mid-run, with an ObserveHook installed.
func TestFleetObserveConcurrent(t *testing.T) {
	ctx := context.Background()
	sc := workload.Fleet(6, 40, "uniform")
	eng, err := New(WithMaxRadius(sc.Radius), WithShrinkBack())
	if err != nil {
		t.Fatal(err)
	}
	members := make([]MemberSpec, 0, sc.M)
	for _, p := range sc.Placements(11) {
		members = append(members, MemberSpec{Placement: p})
	}
	var hookCalls int64
	var hookMu sync.Mutex
	fleet, err := eng.NewFleet(ctx, FleetConfig{
		Members: members,
		Seed:    11,
		Workers: 4,
		ObserveHook: func(net, tick int, ts TickStats) {
			if ts.Live <= 0 || ts.Components < 1 {
				panic(fmt.Sprintf("net %d tick %d: implausible stats %+v", net, tick, ts))
			}
			hookMu.Lock()
			hookCalls++
			hookMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if r%2 == 0 {
					if _, err := fleet.Observe(); err != nil {
						t.Error(err)
						return
					}
				} else {
					sess := fleet.Session(i % sc.M)
					if _, err := sess.Observe(); err != nil {
						t.Error(err)
						return
					}
					sess.LiveCount()
				}
			}
		}(r)
	}
	if _, err := fleet.Run(ctx, 12, fleetTick(sc)); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if hookCalls == 0 {
		t.Fatal("ObserveHook never fired")
	}
	// Quiescent cross-check: with ticking done, every member's Observe
	// must equal its reference, and the fleet aggregate must fold the
	// members exactly.
	var want TickStats
	var radiusSum, degreeSum float64
	for i := 0; i < sc.M; i++ {
		ts := referenceObserve(t, fleet.Session(i))
		requireObserveMatches(t, fmt.Sprintf("member %d", i), fleet.Session(i))
		want.Live += ts.Live
		want.Edges += ts.Edges
		want.Components += ts.Components
		want.Energy += ts.Energy
		radiusSum += ts.AvgRadius * float64(ts.Live)
		degreeSum += ts.AvgDegree * float64(ts.Live)
	}
	got, err := fleet.Observe()
	if err != nil {
		t.Fatal(err)
	}
	if got.Live != want.Live || got.Edges != want.Edges || got.Components != want.Components {
		t.Fatalf("fleet Observe = %+v, folded members = %+v", got, want)
	}
}
