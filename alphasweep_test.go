package cbtc

import (
	"math"
	"strings"
	"testing"
)

func TestAlphaSweepShape(t *testing.T) {
	rows, err := RunAlphaSweep(AlphaSweepParams{
		Alphas:   []float64{math.Pi / 3, math.Pi / 2, AlphaAsymmetric, AlphaConnectivity},
		Networks: 8,
		Nodes:    60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for i, r := range rows {
		// Theorem 2.1: everything at or below 5π/6 preserves the partition.
		if r.Connected != 1 {
			t.Errorf("alpha %.3f: connected frac = %v, want 1", r.Alpha, r.Connected)
		}
		if r.BoundaryFrac <= 0 || r.BoundaryFrac > 1 {
			t.Errorf("alpha %.3f: boundary frac %v out of range", r.Alpha, r.BoundaryFrac)
		}
		if i == 0 {
			continue
		}
		// Monotone trade-off in α (averaged over networks): wider cones
		// mean fewer neighbors and less power.
		if rows[i].AvgDegree > rows[i-1].AvgDegree+1e-9 {
			t.Errorf("degree must not increase with alpha: %v -> %v at %.3f",
				rows[i-1].AvgDegree, rows[i].AvgDegree, r.Alpha)
		}
		if rows[i].AvgRadius > rows[i-1].AvgRadius+1e-9 {
			t.Errorf("radius must not increase with alpha: %v -> %v at %.3f",
				rows[i-1].AvgRadius, rows[i].AvgRadius, r.Alpha)
		}
		// A wider cone is easier to close, so fewer nodes stay boundary.
		if rows[i].BoundaryFrac > rows[i-1].BoundaryFrac+1e-9 {
			t.Errorf("boundary fraction must not increase with alpha: %v -> %v at %.3f",
				rows[i-1].BoundaryFrac, rows[i].BoundaryFrac, r.Alpha)
		}
	}
}

func TestAlphaSweepDefaults(t *testing.T) {
	rows, err := RunAlphaSweep(AlphaSweepParams{Networks: 1, Nodes: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("default sweep rows = %d, want 12", len(rows))
	}
	if !almostEqF(rows[0].Alpha, math.Pi/6) || !almostEqF(rows[11].Alpha, AlphaConnectivity) {
		t.Errorf("default sweep range [%v, %v], want [π/6, 5π/6]", rows[0].Alpha, rows[11].Alpha)
	}
}

func TestRenderAlphaSweep(t *testing.T) {
	rows := []AlphaSweepRow{{Alpha: math.Pi / 2, AvgDegree: 10, AvgRadius: 300, BoundaryFrac: 0.4, Connected: 1}}
	out := RenderAlphaSweep(rows)
	for _, want := range []string{"1.571", "90.0", "10.00", "300.0", "0.400", "1.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func almostEqF(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
