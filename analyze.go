package cbtc

import "cbtc/internal/graph"

// Interference metrics quantify the paper's motivation that shorter and
// fewer edges disturb fewer bystanders: the interference of an edge
// {u,v} counts the other nodes within distance d(u,v) of either
// endpoint.

// AvgInterference returns the mean per-edge interference of the final
// topology.
func (r *Result) AvgInterference() float64 {
	return graph.AvgInterference(r.G, r.Pos)
}

// MaxInterference returns the worst per-edge interference of the final
// topology.
func (r *Result) MaxInterference() int {
	return graph.MaxInterference(r.G, r.Pos)
}

// Diameter returns the hop diameter of the final topology: the largest
// hop count between any connected pair. Sparser topologies trade power
// for longer routes; this measures the price.
func (r *Result) Diameter() int { return graph.Diameter(r.G) }

// IsBiconnected reports whether the final topology survives any single
// node failure. CBTC guarantees connectivity, not biconnectivity; the
// related work of Ramanathan & Rosales-Hain targets the stronger
// property, so the comparison harness reports it.
func (r *Result) IsBiconnected() bool { return graph.IsBiconnected(r.G) }

// ArticulationPoints returns the cut vertices of the final topology —
// the nodes whose failure would partition it.
func (r *Result) ArticulationPoints() []int { return graph.ArticulationPoints(r.G) }

// BottleneckRadius returns the smallest maximum transmission radius any
// connected topology over these positions could achieve (the max edge of
// the Euclidean minimum spanning forest of GR). CBTC's per-node radii
// can beat it individually but its maximum radius cannot.
func (r *Result) BottleneckRadius() float64 {
	return graph.BottleneckRadius(r.GR, graph.EuclideanWeight(r.Pos))
}

// MaxRadius returns the largest per-node transmission radius in the
// final topology.
func (r *Result) MaxRadius() float64 {
	var max float64
	for _, rad := range r.Radii {
		if rad > max {
			max = rad
		}
	}
	return max
}
