package cbtc

import (
	"context"
	"errors"
	"fmt"
)

// RunBatch executes CBTC(α) on every placement, fanning the independent
// networks across the engine's shard scheduler (GOMAXPROCS workers by
// default; see WithWorkers). The returned slice is aligned with
// placements: results[i] is the outcome of Run on placements[i]. When
// the batch is at least as large as the pool each placement runs
// serially inside its shard — batch-level parallelism already saturates
// the pool. A batch smaller than the pool hands the leftover cores down
// to each run's per-node parallelism instead of idling them; Run is
// worker-count invariant, so the split never changes the results.
//
// The first failure cancels the remaining work and is returned; if ctx
// ends first, RunBatch aborts mid-batch and returns ctx.Err(). Shards
// pull placements from a shared counter, so heterogeneous network sizes
// balance automatically.
func (e *Engine) RunBatch(ctx context.Context, placements [][]Point) ([]*Result, error) {
	results := make([]*Result, len(placements))
	plan := planShards(e.workers, len(placements))
	err := plan.run(ctx, len(placements), func(ctx context.Context, i int) error {
		res, err := e.run(ctx, placements[i], plan.inner)
		if err != nil {
			// Report a cancellation as the bare context error, not as a
			// placement failure.
			if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) {
				return ctxErr
			}
			return fmt.Errorf("placement %d: %w", i, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
