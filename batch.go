package cbtc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// RunBatch executes CBTC(α) on every placement, fanning the independent
// networks across a pool of worker goroutines (GOMAXPROCS by default;
// see WithWorkers). The returned slice is aligned with placements:
// results[i] is the outcome of Run on placements[i]. Each placement runs
// serially inside its worker — batch-level parallelism already saturates
// the pool, so multiplying it by Run's per-node parallelism would only
// oversubscribe the scheduler.
//
// The first failure cancels the remaining work and is returned; if ctx
// ends first, RunBatch aborts mid-batch and returns ctx.Err(). Workers
// pull placements from a shared counter, so heterogeneous network sizes
// balance automatically.
func (e *Engine) RunBatch(ctx context.Context, placements [][]Point) ([]*Result, error) {
	results := make([]*Result, len(placements))
	err := forEachParallel(ctx, len(placements), e.workers, func(ctx context.Context, i int) error {
		res, err := e.run(ctx, placements[i], 1)
		if err != nil {
			// Report a cancellation as the bare context error, not as a
			// placement failure.
			if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) {
				return ctxErr
			}
			return fmt.Errorf("placement %d: %w", i, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// forEachParallel runs fn(i) for every i in [0, n) across a pool of
// min(workers, n) goroutines (workers ≤ 0 means GOMAXPROCS). Indices
// are handed out through an atomic counter — a sharded work queue with
// no per-item channel traffic. The first error cancels the pool and is
// returned; cancellation of ctx yields ctx.Err().
func forEachParallel(ctx context.Context, n, workers int, fn func(context.Context, int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					return
				}
				if err := fn(ctx, i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
