package cbtc

import (
	"math"
	"testing"
)

// §1 cites a competitiveness result from the companion paper [16]: for
// α ≤ π/2 (and power cost p(d) ∝ d^n, i.e. k = 1), the most
// power-efficient route in G_α costs at most 1 + 2·sin(α/2) times the
// optimum in G_R. Verify the bound empirically across seeds and angles.
func TestPowerStretchCompetitiveBound(t *testing.T) {
	for _, alpha := range []float64{math.Pi / 3, math.Pi / 2} {
		bound := 1 + 2*math.Sin(alpha/2)
		for seed := uint64(30); seed < 40; seed++ {
			nodes := someNetwork(seed, 60)
			res, err := Run(nodes, Config{Alpha: alpha, MaxRadius: 500})
			if err != nil {
				t.Fatal(err)
			}
			got := res.PowerStretch()
			if math.IsInf(got, 1) {
				t.Fatalf("alpha=%.3f seed=%d: connectivity broken", alpha, seed)
			}
			if got > bound+1e-9 {
				t.Errorf("alpha=%.3f seed=%d: power stretch %.4f exceeds bound %.4f",
					alpha, seed, got, bound)
			}
		}
	}
}

// The stretch degrades gracefully as α grows: wider cones mean sparser
// graphs and longer routes. Monotonicity need not hold per-instance, but
// the α = 5π/6 stretch must stay modest (single digits) on the paper's
// workload — the qualitative claim behind "optimize performance metrics
// such as throughput".
func TestPowerStretchStaysModestAtTightBound(t *testing.T) {
	for seed := uint64(40); seed < 45; seed++ {
		nodes := someNetwork(seed, 60)
		res, err := Run(nodes, Config{MaxRadius: 500})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.PowerStretch(); got > 5 {
			t.Errorf("seed=%d: basic 5π/6 power stretch %.3f suspiciously large", seed, got)
		}
	}
}

// Optimizations trade power for route quality, but never break the
// stretch entirely: all-ops stretch stays finite and bounded on the
// paper's workload.
func TestAllOpsStretchBounded(t *testing.T) {
	for seed := uint64(50); seed < 55; seed++ {
		nodes := someNetwork(seed, 80)
		res, err := Run(nodes, paperConfig().AllOptimizations())
		if err != nil {
			t.Fatal(err)
		}
		ps, hs := res.PowerStretch(), res.HopStretch()
		if math.IsInf(ps, 1) || math.IsInf(hs, 1) {
			t.Fatalf("seed=%d: stretch infinite", seed)
		}
		if ps > 20 || hs > 30 {
			t.Errorf("seed=%d: stretch out of plausible range: power %.2f hops %.2f", seed, ps, hs)
		}
	}
}
