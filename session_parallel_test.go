package cbtc

import (
	"context"
	"testing"

	"cbtc/internal/workload"
)

// TestSessionParallelRepairSoak drives a dense session — affected
// regions well past the parallel-repair threshold — through a long mixed
// Join/Leave/Move stream with an 8-worker pool, checking the maintained
// fixed point (including the incrementally-patched arcs, symmetric graph
// and ground-truth G_R) against a fresh run at checkpoints. CI runs it
// under -race, which is what makes the phase-1 fan-out trustworthy.
func TestSessionParallelRepairSoak(t *testing.T) {
	stacks := []struct {
		name string
		opts []Option
	}{
		{"basic", []Option{WithMaxRadius(300), WithWorkers(8)}},
		{"shrink", []Option{WithMaxRadius(300), WithShrinkBack(), WithWorkers(8)}},
		{"auto-workers", []Option{WithMaxRadius(300), WithShrinkBack()}},
	}
	for _, st := range stacks {
		st := st
		t.Run(st.name, func(t *testing.T) {
			eng, err := New(st.opts...)
			if err != nil {
				t.Fatal(err)
			}
			// ~500 nodes at a density putting ~35 live nodes inside every
			// radius-R disc: every Move repair fans out across the pool.
			pos := workload.Uniform(workload.Rand(31), 500, 1500, 1500)
			sess, err := eng.NewSession(context.Background(), pos)
			if err != nil {
				t.Fatal(err)
			}
			rng := workload.Rand(77)
			for step := 0; step < 60; step++ {
				switch step % 4 {
				case 0, 1: // moves dominate mobility workloads
					ids, _ := sessionLiveMap(sess)
					id := ids[rng.IntN(len(ids))]
					if _, err := sess.Move(id, Pt(rng.Float64()*1500, rng.Float64()*1500)); err != nil {
						t.Fatal(err)
					}
				case 2:
					sess.Join(Pt(rng.Float64()*1500, rng.Float64()*1500))
				case 3:
					ids, _ := sessionLiveMap(sess)
					if _, err := sess.Leave(ids[rng.IntN(len(ids))]); err != nil {
						t.Fatal(err)
					}
				}
				if step%10 == 9 {
					requireSessionMatchesFreshRun(t, eng, sess)
				}
			}
			requireSessionMatchesFreshRun(t, eng, sess)
		})
	}
}

// Worker count must never leak into repaired state: the same event
// stream applied under 1 worker and 8 workers yields identical
// snapshots.
func TestSessionRepairWorkerCountInvariance(t *testing.T) {
	run := func(workers int) *Result {
		eng, err := New(WithMaxRadius(300), WithShrinkBack(), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		pos := workload.Uniform(workload.Rand(9), 400, 1400, 1400)
		sess, err := eng.NewSession(context.Background(), pos)
		if err != nil {
			t.Fatal(err)
		}
		rng := workload.Rand(13)
		for step := 0; step < 24; step++ {
			ids, _ := sessionLiveMap(sess)
			id := ids[rng.IntN(len(ids))]
			if _, err := sess.Move(id, Pt(rng.Float64()*1400, rng.Float64()*1400)); err != nil {
				t.Fatal(err)
			}
		}
		snap, err := sess.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	serial, parallel := run(1), run(8)
	if len(serial.Pos) != len(parallel.Pos) {
		t.Fatal("placement sizes diverged")
	}
	for u := range serial.Pos {
		if serial.Powers[u] != parallel.Powers[u] || serial.Boundary[u] != parallel.Boundary[u] ||
			serial.Radii[u] != parallel.Radii[u] {
			t.Fatalf("node %d state diverged between worker counts", u)
		}
	}
	if !serial.G.Equal(parallel.G) || !serial.GR.Equal(parallel.GR) {
		t.Fatal("graphs diverged between worker counts")
	}
}
