package cbtc

import (
	"context"
	"runtime"
	"testing"

	"cbtc/internal/workload"
)

func TestPlanShards(t *testing.T) {
	for _, tc := range []struct {
		workers, n    int
		shards, inner int
	}{
		{1, 8, 1, 1},   // serial: one shard, no leftover
		{8, 8, 8, 1},   // saturated: unit-level parallelism only
		{8, 100, 8, 1}, // oversubscribed units queue on the pool
		{8, 2, 2, 4},   // small batch, big machine: leftover cores go inner
		{8, 3, 3, 2},   // uneven split floors the budget (2 cores each; the 2 remainder cores idle)
		{4, 1, 1, 4},   // a single unit gets the whole budget
		{3, 0, 3, 1},   // empty work keeps a valid plan
	} {
		got := planShards(tc.workers, tc.n)
		if got.shards != tc.shards || got.inner != tc.inner {
			t.Errorf("planShards(%d, %d) = {shards: %d, inner: %d}, want {%d, %d}",
				tc.workers, tc.n, got.shards, got.inner, tc.shards, tc.inner)
		}
	}
	if p := planShards(0, 2); p.shards != min(2, runtime.GOMAXPROCS(0)) || p.inner < 1 {
		t.Errorf("planShards(0, 2) = %+v, want GOMAXPROCS-derived plan", p)
	}
}

// The leftover-core fix: a batch smaller than the pool hands spare
// workers to each run's inner parallelism, and the results must still
// be identical to the fully serial batch (Run is worker-count
// invariant).
func TestRunBatchLeftoverCoresEquivalence(t *testing.T) {
	placements := make([][]Point, 3)
	for i := range placements {
		placements[i] = workload.Uniform(workload.Rand(uint64(40+i)), 80, 1500, 1500)
	}
	ctx := context.Background()

	serial, err := New(WithMaxRadius(500), WithAllOptimizations(), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.RunBatch(ctx, placements)
	if err != nil {
		t.Fatal(err)
	}

	// 8 workers over 3 placements: plan{shards: 3, inner: 2} — each
	// inner run fans its cone tests across the leftover budget.
	wide, err := New(WithMaxRadius(500), WithAllOptimizations(), WithWorkers(8))
	if err != nil {
		t.Fatal(err)
	}
	got, err := wide.RunBatch(ctx, placements)
	if err != nil {
		t.Fatal(err)
	}
	for i := range placements {
		if !got[i].G.Equal(want[i].G) {
			t.Errorf("placement %d: leftover-core batch topology differs from serial", i)
		}
		if !got[i].GR.Equal(want[i].GR) {
			t.Errorf("placement %d: leftover-core batch G_R differs from serial", i)
		}
	}
}
