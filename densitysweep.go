package cbtc

import (
	"context"
	"fmt"

	"cbtc/internal/graph"
	"cbtc/internal/stats"
	"cbtc/internal/workload"
)

// DensitySweepParams configures a node-density sweep at fixed region
// size. The zero value sweeps 50–400 nodes over 10 paper-sized networks
// per density.
type DensitySweepParams struct {
	// NodeCounts are the densities to evaluate; nil means
	// {25, 50, 100, 200, 400}.
	NodeCounts []int
	// Networks is the number of random networks per density (0 = 10).
	Networks int
	// Width, Height, MaxRadius default to the paper's setup.
	Width     float64
	Height    float64
	MaxRadius float64
	// Seed is the base seed.
	Seed uint64
}

// DensitySweepRow is the measurement at one node count.
type DensitySweepRow struct {
	// Nodes is the network size.
	Nodes int
	// MaxPowerDegree is the average degree with no topology control —
	// it grows linearly with density.
	MaxPowerDegree float64
	// CBTCDegree is the average degree under CBTC(5π/6) with all
	// optimizations — the paper's motivation is that it stays bounded.
	CBTCDegree float64
	// CBTCRadius is the matching average radius; it shrinks with
	// density as nearer neighbors close the cones.
	CBTCRadius float64
	// Interference is the average link interference under CBTC.
	Interference float64
}

// RunDensitySweep sweeps with a background context; see
// RunDensitySweepContext.
func RunDensitySweep(params DensitySweepParams) ([]DensitySweepRow, error) {
	return RunDensitySweepContext(context.Background(), params)
}

// RunDensitySweepContext measures how topology control decouples node
// degree from deployment density: without control the degree grows
// linearly in the number of nodes; with CBTC it stays essentially
// constant while the per-node radius shrinks. This is the scalability
// argument of the paper's introduction. One Engine serves every
// density; each density's networks run through Engine.RunBatch.
func RunDensitySweepContext(ctx context.Context, params DensitySweepParams) ([]DensitySweepRow, error) {
	p := params
	if p.NodeCounts == nil {
		p.NodeCounts = []int{25, 50, 100, 200, 400}
	}
	if p.Networks == 0 {
		p.Networks = 10
	}
	if p.Width == 0 {
		p.Width = workload.PaperRegionW
	}
	if p.Height == 0 {
		p.Height = workload.PaperRegionH
	}
	if p.MaxRadius == 0 {
		p.MaxRadius = workload.PaperRadius
	}
	eng, err := New(
		WithMaxRadius(p.MaxRadius),
		WithShrinkBack(),
		WithPairwiseRemoval(PairwiseLengthFiltered),
	)
	if err != nil {
		return nil, err
	}

	rows := make([]DensitySweepRow, 0, len(p.NodeCounts))
	for _, n := range p.NodeCounts {
		placements := make([][]Point, p.Networks)
		for i := range placements {
			placements[i] = workload.Uniform(workload.Rand(p.Seed+uint64(i)), n, p.Width, p.Height)
		}
		batch, err := eng.RunBatch(ctx, placements)
		if err != nil {
			return nil, err
		}
		var maxDeg, deg, rad, intf stats.Sample
		for _, res := range batch {
			maxDeg.Add(graph.AvgDegree(res.GR))
			deg.Add(res.AvgDegree)
			rad.Add(res.AvgRadius)
			intf.Add(res.AvgInterference())
		}
		rows = append(rows, DensitySweepRow{
			Nodes:          n,
			MaxPowerDegree: maxDeg.Mean(),
			CBTCDegree:     deg.Mean(),
			CBTCRadius:     rad.Mean(),
			Interference:   intf.Mean(),
		})
	}
	return rows, nil
}

// RenderDensitySweep formats sweep rows as an aligned table.
func RenderDensitySweep(rows []DensitySweepRow) string {
	tb := stats.NewTable("nodes", "max-power degree", "CBTC degree", "CBTC radius", "CBTC interference")
	for _, r := range rows {
		tb.AddRow(
			fmt.Sprint(r.Nodes),
			stats.F(r.MaxPowerDegree, 1),
			stats.F(r.CBTCDegree, 2),
			stats.F(r.CBTCRadius, 1),
			stats.F(r.Interference, 1),
		)
	}
	return tb.String()
}
