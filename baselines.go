package cbtc

import (
	"context"
	"fmt"

	"cbtc/internal/baseline"
	"cbtc/internal/core"
	"cbtc/internal/graph"
	"cbtc/internal/radio"
)

// BaselineKind selects one of the position-based topology-control
// comparators from the paper's related-work section (§1). Unlike CBTC,
// all of them require exact node positions.
type BaselineKind int

const (
	// BaselineRNG is the relative neighborhood graph (Toussaint).
	BaselineRNG BaselineKind = iota + 1
	// BaselineGabriel is the Gabriel graph.
	BaselineGabriel
	// BaselineYao6 is the Yao (θ-) graph with 6 sectors — the
	// position-based analogue of the cone condition, connectivity-safe.
	BaselineYao6
	// BaselineMinMaxRadius is the centralized minimum-maximum-radius
	// assignment in the spirit of Ramanathan & Rosales-Hain.
	BaselineMinMaxRadius
	// BaselineEnergyMST is the centralized energy-balanced spanner: the
	// minimum spanning forest of the maximum-power graph under per-link
	// transmit power as the edge weight. Engine.EnergyBaseline is the
	// residual-aware variant a lifetime workload reconfigures with.
	BaselineEnergyMST
)

// String implements fmt.Stringer.
func (k BaselineKind) String() string {
	switch k {
	case BaselineRNG:
		return "rng"
	case BaselineGabriel:
		return "gabriel"
	case BaselineYao6:
		return "yao6"
	case BaselineMinMaxRadius:
		return "minmax-radius"
	case BaselineEnergyMST:
		return "energy-mst"
	default:
		return fmt.Sprintf("BaselineKind(%d)", int(k))
	}
}

// BaselineKinds lists every implemented comparator.
func BaselineKinds() []BaselineKind {
	return []BaselineKind{BaselineRNG, BaselineGabriel, BaselineYao6, BaselineMinMaxRadius, BaselineEnergyMST}
}

// Baseline builds the selected position-based topology over the
// placement, restricted to the engine's maximum-power graph. The Result
// carries the same metrics as a CBTC run, so the comparators slot into
// the same analyses. The engine's optimization stack does not apply —
// baselines have their own construction rules — but its propagation
// model does: on a shadowed engine the comparators see the same
// realized link set as the protocol.
func (e *Engine) Baseline(kind BaselineKind, nodes []Point) (*Result, error) {
	return e.baselineIndexed(kind, nodes, baseline.NewPropagationIndex(nodes, e.prop), nil)
}

// EnergyBaseline builds the energy-balanced spanning forest for a
// lifetime workload: the MST of the maximum-power graph under edge
// weight p(u,v)/min(residual[u], residual[v]) — transmit power paid per
// unit of the poorer endpoint's remaining energy — so links between
// drained nodes price themselves out and the forest reroutes around
// them. residual must hold one entry per node; a nil residual weighs by
// transmit power alone, which is exactly Baseline(BaselineEnergyMST,
// nodes). Nodes with no positive residual take no edges at all.
func (e *Engine) EnergyBaseline(nodes []Point, residual []float64) (*Result, error) {
	if residual != nil && len(residual) != len(nodes) {
		return nil, fmt.Errorf("%w: %d residuals for %d nodes", ErrBadConfig, len(residual), len(nodes))
	}
	ix := baseline.NewPropagationIndex(nodes, e.prop)
	g := ix.EnergyMST(residual)
	return baselineResultWithGR(nodes, e.model, g, core.MaxPowerGraph(nodes, e.prop)), nil
}

// baselineIndexed builds one comparator from a caller-shared spatial
// index; gr, if non-nil, is a precomputed ground-truth G_R reused across
// rows (CompareBaselines builds both once per placement).
func (e *Engine) baselineIndexed(kind BaselineKind, nodes []Point, ix *baseline.Index, gr *graph.Graph) (*Result, error) {
	var g *graph.Graph
	var err error
	switch kind {
	case BaselineRNG:
		g = ix.RNG()
	case BaselineGabriel:
		g = ix.Gabriel()
	case BaselineYao6:
		g, err = ix.YaoSymmetric(6)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
	case BaselineMinMaxRadius:
		g, _ = ix.MinMaxRadius()
	case BaselineEnergyMST:
		g = ix.EnergyMST(nil)
	default:
		return nil, fmt.Errorf("%w: unknown baseline %v", ErrBadConfig, kind)
	}
	if gr == nil {
		gr = core.MaxPowerGraph(nodes, e.prop)
	}
	return baselineResultWithGR(nodes, e.model, g, gr), nil
}

// BetaSkeleton builds the lune-based β-skeleton over the placement for
// β ≥ 1 — the G_β family the paper cites alongside the RNG (β = 2) and
// the Gabriel graph (β = 1). Connectivity of the max-power graph is
// preserved for β ≤ 2 (the skeleton then contains the Euclidean MST).
func (e *Engine) BetaSkeleton(beta float64, nodes []Point) (*Result, error) {
	g, err := baseline.BetaSkeleton(nodes, e.model.MaxRadius, beta)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return baselineResult(nodes, e.model, g), nil
}

// RunBaseline builds the selected position-based topology using a
// throwaway Engine.
//
// Deprecated: build an Engine with New and call Engine.Baseline.
func RunBaseline(kind BaselineKind, nodes []Point, cfg Config) (*Result, error) {
	eng, err := New(WithConfig(cfg))
	if err != nil {
		return nil, err
	}
	return eng.Baseline(kind, nodes)
}

// RunBetaSkeleton builds the β-skeleton using a throwaway Engine.
//
// Deprecated: build an Engine with New and call Engine.BetaSkeleton.
func RunBetaSkeleton(beta float64, nodes []Point, cfg Config) (*Result, error) {
	eng, err := New(WithConfig(cfg))
	if err != nil {
		return nil, err
	}
	return eng.BetaSkeleton(beta, nodes)
}

func baselineResult(nodes []Point, m radio.Model, g *graph.Graph) *Result {
	return baselineResultWithGR(nodes, m, g, core.MaxPowerGraph(nodes, m))
}

func baselineResultWithGR(nodes []Point, m radio.Model, g, gr *graph.Graph) *Result {
	n := len(nodes)
	res := &Result{
		G:        g,
		GR:       gr,
		Pos:      append([]Point(nil), nodes...),
		Radii:    make([]float64, n),
		Powers:   make([]float64, n),
		Boundary: make([]bool, n),
		model:    m,
	}
	for u := 0; u < n; u++ {
		res.Radii[u] = graph.NodeRadius(g, nodes, u)
		res.Powers[u] = m.PowerFor(res.Radii[u])
	}
	res.AvgDegree = graph.AvgDegree(g)
	var sum float64
	for _, r := range res.Radii {
		sum += r
	}
	if n > 0 {
		res.AvgRadius = sum / float64(n)
	}
	return res
}

// ComparisonRow is one topology in a CompareBaselines report.
type ComparisonRow struct {
	// Name labels the topology.
	Name string
	// NeedsPositions reports whether the construction requires exact
	// coordinates (every baseline does; CBTC does not).
	NeedsPositions bool
	// Result carries the topology and its metrics.
	Result *Result
}

// CompareBaselines runs CBTC (max power, basic 5π/6, all-ops at both
// cone angles) next to every position-based comparator on the same
// placement, fanning the independent constructions across the batch
// worker pool. Only cfg's radio-model fields are read — MaxRadius and
// PathLossExponent; Alpha and the optimization flags are ignored, as
// each row fixes its own cone angle and stack.
//
// The position-based rows share one spatial index and one ground-truth
// G_R built up front for the placement, so the per-row cost is the
// construction itself, not repeated quadratic scans; the returned
// baseline Results consequently share their GR graph (callers must not
// mutate it).
func CompareBaselines(ctx context.Context, nodes []Point, cfg Config) ([]ComparisonRow, error) {
	base := Config{MaxRadius: cfg.MaxRadius, PathLossExponent: cfg.PathLossExponent}
	cfg23 := base
	cfg23.Alpha = AlphaAsymmetric

	type spec struct {
		name           string
		needsPositions bool
		run            func(ctx context.Context, eng *Engine) (*Result, error)
		cfg            Config
	}
	specs := []spec{
		{"max power", false, func(_ context.Context, eng *Engine) (*Result, error) {
			return eng.MaxPower(nodes)
		}, base},
		{"CBTC basic 5π/6", false, func(ctx context.Context, eng *Engine) (*Result, error) {
			return eng.Run(ctx, nodes)
		}, base},
		{"CBTC all-ops 5π/6", false, func(ctx context.Context, eng *Engine) (*Result, error) {
			return eng.Run(ctx, nodes)
		}, base.AllOptimizations()},
		{"CBTC all-ops 2π/3", false, func(ctx context.Context, eng *Engine) (*Result, error) {
			return eng.Run(ctx, nodes)
		}, cfg23.AllOptimizations()},
	}
	refEng, refErr := New(WithConfig(base))
	if refErr != nil {
		return nil, refErr
	}
	ix := baseline.NewIndex(nodes, refEng.model.MaxRadius)
	gr := core.MaxPowerGraph(nodes, refEng.model)
	for _, kind := range BaselineKinds() {
		kind := kind
		specs = append(specs, spec{kind.String() + " (positions)", true,
			func(_ context.Context, eng *Engine) (*Result, error) {
				return eng.baselineIndexed(kind, nodes, ix, gr)
			}, base})
	}

	rows := make([]ComparisonRow, len(specs))
	plan := planShards(0, len(specs))
	err := plan.run(ctx, len(specs), func(ctx context.Context, i int) error {
		sp := specs[i]
		// Spec engines run inside the shard pool: give each the plan's
		// inner budget, not a full GOMAXPROCS pool of its own.
		eng, err := New(WithConfig(sp.cfg), WithWorkers(plan.inner))
		if err != nil {
			return fmt.Errorf("%s: %w", sp.name, err)
		}
		res, err := sp.run(ctx, eng)
		if err != nil {
			return fmt.Errorf("%s: %w", sp.name, err)
		}
		rows[i] = ComparisonRow{Name: sp.name, NeedsPositions: sp.needsPositions, Result: res}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
