package cbtc

import (
	"fmt"

	"cbtc/internal/baseline"
	"cbtc/internal/core"
	"cbtc/internal/graph"
	"cbtc/internal/radio"
)

// BaselineKind selects one of the position-based topology-control
// comparators from the paper's related-work section (§1). Unlike CBTC,
// all of them require exact node positions.
type BaselineKind int

const (
	// BaselineRNG is the relative neighborhood graph (Toussaint).
	BaselineRNG BaselineKind = iota + 1
	// BaselineGabriel is the Gabriel graph.
	BaselineGabriel
	// BaselineYao6 is the Yao (θ-) graph with 6 sectors — the
	// position-based analogue of the cone condition, connectivity-safe.
	BaselineYao6
	// BaselineMinMaxRadius is the centralized minimum-maximum-radius
	// assignment in the spirit of Ramanathan & Rosales-Hain.
	BaselineMinMaxRadius
)

// String implements fmt.Stringer.
func (k BaselineKind) String() string {
	switch k {
	case BaselineRNG:
		return "rng"
	case BaselineGabriel:
		return "gabriel"
	case BaselineYao6:
		return "yao6"
	case BaselineMinMaxRadius:
		return "minmax-radius"
	default:
		return fmt.Sprintf("BaselineKind(%d)", int(k))
	}
}

// BaselineKinds lists every implemented comparator.
func BaselineKinds() []BaselineKind {
	return []BaselineKind{BaselineRNG, BaselineGabriel, BaselineYao6, BaselineMinMaxRadius}
}

// RunBaseline builds the selected position-based topology over the
// placement, restricted to the maximum-power graph of cfg. The Result
// carries the same metrics as a CBTC run, so the comparators slot into
// the same analyses. Optimization flags in cfg are ignored — baselines
// have their own construction rules.
func RunBaseline(kind BaselineKind, nodes []Point, cfg Config) (*Result, error) {
	cfg, m, _, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	var g *graph.Graph
	switch kind {
	case BaselineRNG:
		g = baseline.RNG(nodes, m.MaxRadius)
	case BaselineGabriel:
		g = baseline.Gabriel(nodes, m.MaxRadius)
	case BaselineYao6:
		g, err = baseline.YaoSymmetric(nodes, m.MaxRadius, 6)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
	case BaselineMinMaxRadius:
		g, _ = baseline.MinMaxRadius(nodes, m.MaxRadius)
	default:
		return nil, fmt.Errorf("%w: unknown baseline %v", ErrBadConfig, kind)
	}
	return baselineResult(nodes, m, g), nil
}

func baselineResult(nodes []Point, m radio.Model, g *graph.Graph) *Result {
	n := len(nodes)
	res := &Result{
		G:        g,
		GR:       core.MaxPowerGraph(nodes, m),
		Pos:      append([]Point(nil), nodes...),
		Radii:    make([]float64, n),
		Powers:   make([]float64, n),
		Boundary: make([]bool, n),
		model:    m,
	}
	for u := 0; u < n; u++ {
		res.Radii[u] = graph.NodeRadius(g, nodes, u)
		res.Powers[u] = m.PowerFor(res.Radii[u])
	}
	res.AvgDegree = graph.AvgDegree(g)
	var sum float64
	for _, r := range res.Radii {
		sum += r
	}
	if n > 0 {
		res.AvgRadius = sum / float64(n)
	}
	return res
}

// RunBetaSkeleton builds the lune-based β-skeleton over the placement
// for β ≥ 1 — the G_β family the paper cites alongside the RNG (β = 2)
// and the Gabriel graph (β = 1). Connectivity of the max-power graph is
// preserved for β ≤ 2 (the skeleton then contains the Euclidean MST).
func RunBetaSkeleton(beta float64, nodes []Point, cfg Config) (*Result, error) {
	cfg, m, _, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	g, err := baseline.BetaSkeleton(nodes, m.MaxRadius, beta)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return baselineResult(nodes, m, g), nil
}
